#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer sweeps:
#   1. Release build + full ctest suite
#   2. AddressSanitizer build + full ctest suite
#   3. ThreadSanitizer build + the concurrency-sensitive tests
#
# Usage: scripts/check.sh [--fast]
#   --fast skips the sanitizer builds (tier-1 only).

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: release build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
ctest --test-dir build --output-on-failure

if [[ $FAST -eq 1 ]]; then
  echo "== done (fast mode: sanitizers skipped) =="
  exit 0
fi

echo "== asan: address-sanitized build + ctest =="
cmake -B build-asan -S . -DMAJIC_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j >/dev/null
# ASan inflates stack frames severalfold; the MaxCallDepth=4000 recursion
# guard (EngineBoundary.RunawayRecursionGuarded) needs a deeper C stack
# than the default 8 MB to reach the engine's own limit first.
( ulimit -s 65536 && ctest --test-dir build-asan --output-on-failure )

echo "== tsan: thread-sanitized build + concurrency tests =="
cmake -B build-tsan -S . -DMAJIC_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j >/dev/null
# hibernate_crash_test is deliberately absent from the filter: its
# fork()+SIGKILL harness is incompatible with TSan's runtime.
# native_test is absent too: it dlopens generated (uninstrumented) .so
# files, which TSan's runtime rejects. It runs in the release and ASan
# sweeps above; the native suites inside fuzz_test and service_test
# self-gate with #ifndef __SANITIZE_THREAD__ for the same reason.
ctest --test-dir build-tsan --output-on-failure \
  -R "async_compile_test|robustness_test|fuzz_test|support_test|kernel_test|repo_store_test|obs_test|service_test|value_serialize_test"

echo "== all checks passed =="
