//===- types/Type.h - The MaJIC type system --------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of Section 2.2: the Cartesian product
///   T = Li x Ls x Ls x Ll
/// of the intrinsic type lattice Li (bot < bool < int < real < cplx < top,
/// bot < strg < top), the shape lattice Ls (rows x cols ordered
/// component-wise) appearing twice because MaJIC tracks lower *and* upper
/// shape bounds, and the range lattice Ll (real intervals).
///
/// Ranges are defined only for real numbers; strings and complex values have
/// no range (represented as the range lattice top here).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_TYPES_TYPE_H
#define MAJIC_TYPES_TYPE_H

#include "runtime/Value.h"

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace majic {

//===----------------------------------------------------------------------===//
// Li: intrinsic types
//===----------------------------------------------------------------------===//

enum class IntrinsicType : uint8_t {
  Bottom,
  Bool,
  Int,
  Real,
  Complex,
  String,
  Top,
};

const char *intrinsicName(IntrinsicType T);

/// Partial order of Li: bot <= bool <= int <= real <= cplx <= top and
/// bot <= strg <= top (strings are incomparable with the numeric chain).
bool intrinsicLE(IntrinsicType A, IntrinsicType B);
IntrinsicType intrinsicJoin(IntrinsicType A, IntrinsicType B);

/// The intrinsic type of a runtime class tag.
IntrinsicType intrinsicOfClass(MClass C);

//===----------------------------------------------------------------------===//
// Ls: shapes
//===----------------------------------------------------------------------===//

/// One element of the shape lattice: a (rows, cols) pair where kUnknownDim
/// stands for the lattice's infinity. Ordered component-wise.
struct ShapeBound {
  static constexpr uint64_t kUnknownDim =
      std::numeric_limits<uint64_t>::max();

  uint64_t Rows = 0;
  uint64_t Cols = 0;

  static ShapeBound bottom() { return {0, 0}; }
  static ShapeBound top() { return {kUnknownDim, kUnknownDim}; }
  static ShapeBound scalar() { return {1, 1}; }
  static ShapeBound exact(uint64_t R, uint64_t C) { return {R, C}; }

  bool operator==(const ShapeBound &O) const = default;

  /// Component-wise <=: <a,b> sub <c,d> iff a <= c and b <= d.
  bool le(const ShapeBound &O) const { return Rows <= O.Rows && Cols <= O.Cols; }

  ShapeBound joinUpper(const ShapeBound &O) const {
    return {std::max(Rows, O.Rows), std::max(Cols, O.Cols)};
  }
  ShapeBound joinLower(const ShapeBound &O) const {
    return {std::min(Rows, O.Rows), std::min(Cols, O.Cols)};
  }

  bool isKnown() const {
    return Rows != kUnknownDim && Cols != kUnknownDim;
  }
  uint64_t numel() const {
    return isKnown() ? Rows * Cols : kUnknownDim;
  }
};

//===----------------------------------------------------------------------===//
// Ll: ranges
//===----------------------------------------------------------------------===//

/// A closed real interval [Lo, Hi]. Bottom is <nan, nan>, top <-inf, +inf>.
/// Range propagation is the generalization of constant propagation for real
/// scalars (Section 2.4): a value is a constant when Lo == Hi.
struct Range {
  double Lo;
  double Hi;

  static Range bottom() {
    double NaN = std::numeric_limits<double>::quiet_NaN();
    return {NaN, NaN};
  }
  static Range top() {
    double Inf = std::numeric_limits<double>::infinity();
    return {-Inf, Inf};
  }
  static Range constant(double V) { return {V, V}; }
  static Range interval(double Lo, double Hi) { return {Lo, Hi}; }
  static Range nonNegative() {
    return {0.0, std::numeric_limits<double>::infinity()};
  }

  bool isBottom() const { return Lo != Lo; } // NaN check
  bool isTop() const {
    return !isBottom() && Lo == -std::numeric_limits<double>::infinity() &&
           Hi == std::numeric_limits<double>::infinity();
  }
  bool isConstant() const { return !isBottom() && Lo == Hi; }

  bool operator==(const Range &O) const {
    if (isBottom() || O.isBottom())
      return isBottom() && O.isBottom();
    return Lo == O.Lo && Hi == O.Hi;
  }

  /// <a,b> sub <c,d> iff <a,b> is bottom or (c <= a and b <= d).
  bool le(const Range &O) const {
    if (isBottom())
      return true;
    if (O.isBottom())
      return false;
    return O.Lo <= Lo && Hi <= O.Hi;
  }

  Range join(const Range &O) const {
    if (isBottom())
      return O;
    if (O.isBottom())
      return *this;
    return {std::min(Lo, O.Lo), std::max(Hi, O.Hi)};
  }

  //===--------------------------------------------------------------------===
  // Interval arithmetic (used by the transfer functions)
  //===--------------------------------------------------------------------===

  Range add(const Range &O) const;
  Range sub(const Range &O) const;
  Range mul(const Range &O) const;
  Range div(const Range &O) const;
  Range neg() const;
  /// x^k for a constant integer exponent (even exponents yield >= 0).
  Range powConst(double Exp) const;
  /// Rounds the bounds outward to integers (after floor/ceil/round).
  Range floorRange() const;
  Range ceilRange() const;
  /// Range of abs().
  Range absRange() const;
};

//===----------------------------------------------------------------------===//
// T = Li x Ls x Ls x Ll
//===----------------------------------------------------------------------===//

class Type {
public:
  /// Bottom: the type of unreached / undefined expressions.
  Type()
      : Intrinsic(IntrinsicType::Bottom), MinShape(ShapeBound::bottom()),
        MaxShape(ShapeBound::bottom()), R(Range::bottom()) {}

  Type(IntrinsicType IT, ShapeBound Min, ShapeBound Max, Range R)
      : Intrinsic(IT), MinShape(Min), MaxShape(Max), R(R) {}

  static Type bottom() { return Type(); }
  static Type top() {
    return Type(IntrinsicType::Top, ShapeBound::bottom(), ShapeBound::top(),
                Range::top());
  }
  /// A scalar of intrinsic type \p IT with range \p R.
  static Type scalar(IntrinsicType IT, Range R = Range::top()) {
    return Type(IT, ShapeBound::scalar(), ShapeBound::scalar(), R);
  }
  static Type constant(double V) {
    bool Integral = V == static_cast<long long>(V) && std::abs(V) < 1e15;
    return scalar(Integral ? IntrinsicType::Int : IntrinsicType::Real,
                  Range::constant(V));
  }
  /// A matrix of unknown shape with intrinsic type \p IT.
  static Type matrix(IntrinsicType IT) {
    return Type(IT, ShapeBound::bottom(), ShapeBound::top(), Range::top());
  }
  static Type exactMatrix(IntrinsicType IT, uint64_t Rows, uint64_t Cols,
                          Range R = Range::top()) {
    return Type(IT, ShapeBound::exact(Rows, Cols),
                ShapeBound::exact(Rows, Cols), R);
  }

  /// The type of a concrete runtime value; the seed of JIT type inference
  /// ("the type signature of the code, derived directly from the input
  /// values of the runtime invocation", Section 2.4).
  static Type ofValue(const Value &V);

  IntrinsicType intrinsic() const { return Intrinsic; }
  ShapeBound minShape() const { return MinShape; }
  ShapeBound maxShape() const { return MaxShape; }
  Range range() const { return R; }

  void setIntrinsic(IntrinsicType IT) { Intrinsic = IT; }
  void setRange(Range NewR) { R = NewR; }
  void setShape(ShapeBound Min, ShapeBound Max) {
    MinShape = Min;
    MaxShape = Max;
  }

  bool isBottom() const { return Intrinsic == IntrinsicType::Bottom; }

  /// Provably a 1x1 value.
  bool isScalar() const {
    return MinShape == ShapeBound::scalar() && MaxShape == ShapeBound::scalar();
  }
  /// Exactly determined shape: lower and upper bounds agree (Section 2.4,
  /// "exact shape inference").
  std::optional<ShapeBound> exactShape() const {
    if (MinShape == MaxShape && MaxShape.isKnown())
      return MaxShape;
    return std::nullopt;
  }
  /// A known constant: real scalar with a degenerate range.
  std::optional<double> constantValue() const {
    if (isScalar() && R.isConstant() &&
        intrinsicLE(Intrinsic, IntrinsicType::Real))
      return R.Lo;
    return std::nullopt;
  }

  /// True when this type can only hold real (non-complex, non-string)
  /// numeric values.
  bool isRealNumeric() const {
    return intrinsicLE(Intrinsic, IntrinsicType::Real);
  }

  bool le(const Type &O) const;
  Type join(const Type &O) const;
  bool operator==(const Type &O) const {
    return Intrinsic == O.Intrinsic && MinShape == O.MinShape &&
           MaxShape == O.MaxShape && R == O.R;
  }

  /// "int [1x1,1x1] (3,3)" style rendering for tests and dumps.
  std::string str() const;

private:
  IntrinsicType Intrinsic;
  ShapeBound MinShape; ///< Lower bound: the value's shape is >= this.
  ShapeBound MaxShape; ///< Upper bound: the value's shape is <= this.
  Range R;
};

} // namespace majic

#endif // MAJIC_TYPES_TYPE_H
