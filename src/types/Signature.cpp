//===- types/Signature.cpp - Type signatures ----------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "types/Signature.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace majic;

TypeSignature TypeSignature::ofValues(const std::vector<ValuePtr> &Args) {
  std::vector<Type> Types;
  Types.reserve(Args.size());
  for (const ValuePtr &V : Args)
    Types.push_back(Type::ofValue(*V));
  return TypeSignature(std::move(Types));
}

TypeSignature TypeSignature::generic(size_t N) {
  return TypeSignature(std::vector<Type>(N, Type::top()));
}

bool TypeSignature::safeFor(const TypeSignature &CodeSig) const {
  if (Types.size() != CodeSig.Types.size())
    return false;
  for (size_t I = 0; I != Types.size(); ++I)
    if (!Types[I].le(CodeSig.Types[I]))
      return false;
  return true;
}

/// Per-component looseness of \p CodeT relative to the (tighter) actual
/// \p ActualT: 0 when identical, growing as the compiled code assumed less.
static double componentDistance(const Type &ActualT, const Type &CodeT) {
  double D = 0;
  // Intrinsic: lattice-rank slack.
  D += std::abs(static_cast<int>(CodeT.intrinsic()) -
                static_cast<int>(ActualT.intrinsic()));
  // Shape: one unit per dimension bound the code left open.
  auto DimSlack = [](uint64_t Actual, uint64_t Code) -> double {
    if (Code == Actual)
      return 0;
    if (Code == ShapeBound::kUnknownDim)
      return 1;
    return 0.5; // known but looser bound
  };
  D += DimSlack(ActualT.maxShape().Rows, CodeT.maxShape().Rows);
  D += DimSlack(ActualT.maxShape().Cols, CodeT.maxShape().Cols);
  D += DimSlack(ActualT.minShape().Rows, CodeT.minShape().Rows);
  D += DimSlack(ActualT.minShape().Cols, CodeT.minShape().Cols);
  // Range: constants beat intervals beat top.
  if (!(CodeT.range() == ActualT.range()))
    D += CodeT.range().isTop() ? 1 : 0.5;
  return D;
}

double TypeSignature::distance(const TypeSignature &CodeSig) const {
  assert(Types.size() == CodeSig.Types.size() && "arity mismatch");
  double D = 0;
  for (size_t I = 0; I != Types.size(); ++I)
    D += componentDistance(Types[I], CodeSig.Types[I]);
  return D;
}

std::string TypeSignature::str() const {
  std::string Out = "(";
  for (size_t I = 0; I != Types.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Types[I].str();
  }
  return Out + ")";
}

TypeSignature TypeSignature::generalized() const {
  std::vector<Type> Out;
  Out.reserve(Types.size());
  for (const Type &T : Types) {
    if (T.isScalar()) {
      Out.push_back(Type::scalar(T.intrinsic()));
      continue;
    }
    Out.push_back(Type::matrix(T.intrinsic()));
  }
  return TypeSignature(std::move(Out));
}
