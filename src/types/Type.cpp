//===- types/Type.cpp - The MaJIC type system --------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace majic;

const char *majic::intrinsicName(IntrinsicType T) {
  switch (T) {
  case IntrinsicType::Bottom:
    return "bot";
  case IntrinsicType::Bool:
    return "bool";
  case IntrinsicType::Int:
    return "int";
  case IntrinsicType::Real:
    return "real";
  case IntrinsicType::Complex:
    return "cplx";
  case IntrinsicType::String:
    return "strg";
  case IntrinsicType::Top:
    return "top";
  }
  majic_unreachable("invalid intrinsic type");
}

bool majic::intrinsicLE(IntrinsicType A, IntrinsicType B) {
  if (A == IntrinsicType::Bottom || B == IntrinsicType::Top)
    return true;
  if (B == IntrinsicType::Bottom || A == IntrinsicType::Top)
    return A == B;
  // Strings are only comparable with themselves along the string chain.
  if (A == IntrinsicType::String || B == IntrinsicType::String)
    return A == B;
  return static_cast<int>(A) <= static_cast<int>(B);
}

IntrinsicType majic::intrinsicJoin(IntrinsicType A, IntrinsicType B) {
  if (intrinsicLE(A, B))
    return B;
  if (intrinsicLE(B, A))
    return A;
  // Incomparable: one numeric, one string.
  return IntrinsicType::Top;
}

IntrinsicType majic::intrinsicOfClass(MClass C) {
  switch (C) {
  case MClass::Bool:
    return IntrinsicType::Bool;
  case MClass::Int:
    return IntrinsicType::Int;
  case MClass::Real:
    return IntrinsicType::Real;
  case MClass::Complex:
    return IntrinsicType::Complex;
  case MClass::String:
    return IntrinsicType::String;
  }
  majic_unreachable("invalid class");
}

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

Range Range::add(const Range &O) const {
  if (isBottom() || O.isBottom())
    return bottom();
  return {Lo + O.Lo, Hi + O.Hi};
}

Range Range::sub(const Range &O) const {
  if (isBottom() || O.isBottom())
    return bottom();
  return {Lo - O.Hi, Hi - O.Lo};
}

Range Range::mul(const Range &O) const {
  if (isBottom() || O.isBottom())
    return bottom();
  double P[4] = {Lo * O.Lo, Lo * O.Hi, Hi * O.Lo, Hi * O.Hi};
  double NewLo = P[0], NewHi = P[0];
  for (double X : P) {
    // 0 * inf produces NaN; treat it conservatively as unbounded.
    if (X != X)
      return top();
    NewLo = std::min(NewLo, X);
    NewHi = std::max(NewHi, X);
  }
  return {NewLo, NewHi};
}

Range Range::div(const Range &O) const {
  if (isBottom() || O.isBottom())
    return bottom();
  // Division through zero can produce +-inf.
  if (O.Lo <= 0 && O.Hi >= 0)
    return top();
  double P[4] = {Lo / O.Lo, Lo / O.Hi, Hi / O.Lo, Hi / O.Hi};
  double NewLo = P[0], NewHi = P[0];
  for (double X : P) {
    if (X != X)
      return top();
    NewLo = std::min(NewLo, X);
    NewHi = std::max(NewHi, X);
  }
  return {NewLo, NewHi};
}

Range Range::neg() const {
  if (isBottom())
    return bottom();
  return {-Hi, -Lo};
}

Range Range::powConst(double Exp) const {
  if (isBottom())
    return bottom();
  bool IntExp = Exp == std::floor(Exp);
  if (!IntExp) {
    // Non-integral exponent: defined (real) only for non-negative bases.
    if (Lo >= 0)
      return {std::pow(Lo, Exp), std::pow(Hi, Exp)};
    return top();
  }
  bool Even = std::fmod(Exp, 2.0) == 0.0;
  if (Exp < 0)
    return top(); // keep it simple; negative powers rarely drive checks
  if (Even) {
    double A = std::pow(std::abs(Lo), Exp), B = std::pow(std::abs(Hi), Exp);
    double MaxV = std::max(A, B);
    double MinV = (Lo <= 0 && Hi >= 0) ? 0.0 : std::min(A, B);
    return {MinV, MaxV};
  }
  return {std::pow(Lo, Exp), std::pow(Hi, Exp)};
}

Range Range::floorRange() const {
  if (isBottom())
    return bottom();
  return {std::floor(Lo), std::floor(Hi)};
}

Range Range::ceilRange() const {
  if (isBottom())
    return bottom();
  return {std::ceil(Lo), std::ceil(Hi)};
}

Range Range::absRange() const {
  if (isBottom())
    return bottom();
  double A = std::abs(Lo), B = std::abs(Hi);
  double MaxV = std::max(A, B);
  double MinV = (Lo <= 0 && Hi >= 0) ? 0.0 : std::min(A, B);
  return {MinV, MaxV};
}

//===----------------------------------------------------------------------===//
// Type
//===----------------------------------------------------------------------===//

Type Type::ofValue(const Value &V) {
  IntrinsicType IT = intrinsicOfClass(V.mclass());
  ShapeBound S = ShapeBound::exact(V.rows(), V.cols());
  Range R = Range::top();
  // Ranges exist only for real numbers; a numeric scalar's range is exact,
  // making JIT inference a constant propagator (Section 2.4).
  if (V.isScalar() && V.isNumeric() && !V.isComplex())
    R = Range::constant(V.re(0));
  return Type(IT, S, S, R);
}

bool Type::le(const Type &O) const {
  if (isBottom())
    return true;
  if (!intrinsicLE(Intrinsic, O.Intrinsic))
    return false;
  // Shape: the value's shape must lie within [O.Min, O.Max]; ours lies
  // within [Min, Max], so require O.Min <= Min and Max <= O.Max.
  if (!O.MinShape.le(MinShape) || !MaxShape.le(O.MaxShape))
    return false;
  return R.le(O.R);
}

Type Type::join(const Type &O) const {
  if (isBottom())
    return O;
  if (O.isBottom())
    return *this;
  return Type(intrinsicJoin(Intrinsic, O.Intrinsic),
              MinShape.joinLower(O.MinShape), MaxShape.joinUpper(O.MaxShape),
              R.join(O.R));
}

static std::string dimStr(uint64_t D) {
  if (D == ShapeBound::kUnknownDim)
    return "*";
  return format("%llu", static_cast<unsigned long long>(D));
}

std::string Type::str() const {
  if (isBottom())
    return "bot";
  std::string Out = intrinsicName(Intrinsic);
  Out += format(" [%sx%s,%sx%s]", dimStr(MinShape.Rows).c_str(),
                dimStr(MinShape.Cols).c_str(), dimStr(MaxShape.Rows).c_str(),
                dimStr(MaxShape.Cols).c_str());
  if (R.isBottom())
    Out += " <>";
  else if (!R.isTop())
    Out += format(" <%g,%g>", R.Lo, R.Hi);
  return Out;
}
