//===- types/Signature.h - Type signatures ---------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type signatures (Section 2.2.1): the types assigned to a compiled code
/// version's formal parameters. An invocation with actual types Q is safe
/// against compiled code with signature T iff Qi <= Ti for all i. When
/// several safe versions exist, the repository picks the best match by a
/// Manhattan-like distance between the signatures.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_TYPES_SIGNATURE_H
#define MAJIC_TYPES_SIGNATURE_H

#include "types/Type.h"

#include <vector>

namespace majic {

class TypeSignature {
public:
  TypeSignature() = default;
  explicit TypeSignature(std::vector<Type> Types) : Types(std::move(Types)) {}

  /// The signature of a concrete invocation.
  static TypeSignature ofValues(const std::vector<ValuePtr> &Args);

  /// The fully generic signature of arity \p N (every parameter top).
  static TypeSignature generic(size_t N);

  size_t size() const { return Types.size(); }
  bool empty() const { return Types.empty(); }
  const Type &operator[](size_t I) const { return Types[I]; }
  const std::vector<Type> &types() const { return Types; }

  /// Safety: invocation *this may run code compiled for \p CodeSig.
  bool safeFor(const TypeSignature &CodeSig) const;

  /// Manhattan-like distance used by the function locator to rank multiple
  /// safe candidates; smaller is a tighter (better-optimized) match.
  double distance(const TypeSignature &CodeSig) const;

  /// A widened copy: intrinsic types and scalar-ness are kept, but value
  /// ranges and exact array shapes are erased. The engine compiles this
  /// version when repeated invocations miss with the same "skeleton" but
  /// different constants (e.g. recursive calls), so the repository holds
  /// one general version instead of one per argument value.
  TypeSignature generalized() const;

  bool operator==(const TypeSignature &O) const { return Types == O.Types; }

  std::string str() const;

private:
  std::vector<Type> Types;
};

} // namespace majic

#endif // MAJIC_TYPES_SIGNATURE_H
