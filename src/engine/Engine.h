//===- engine/Engine.h - The MaJIC engine ----------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MaJIC system (Section 2): the MATLAB-like front end (interpreter +
/// interactive workspace), the code repository, the snooping speculative
/// compiler, and the invocation path that ties them together:
///
///   invocation -> repository lookup (signature safety + best match)
///              -> hit:   run compiled code in the register VM
///              -> miss:  compile (policy-dependent) or interpret
///
/// Compilation policies model the paper's four measured configurations:
///   InterpretOnly - the MATLAB-6 baseline (t_i)
///   Mcc           - batch generic compilation without type inference
///   Falcon        - batch optimized compilation, "peeking" at inputs
///   Jit           - just-in-time compilation on first invocation
///   Speculative   - ahead-of-time speculative compilation + JIT fallback
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_ENGINE_ENGINE_H
#define MAJIC_ENGINE_ENGINE_H

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/Compiler.h"
#include "backend/VM.h"
#include "interp/Interpreter.h"
#include "native/NativeCompiler.h"
#include "native/NativeRuntime.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "repo/RepoStore.h"
#include "repo/Repository.h"
#include "repo/SharedCache.h"
#include "repo/Snooper.h"
#include "runtime/ValueSerialize.h"
#include "support/ResourceGuard.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace majic {

enum class CompilePolicy : uint8_t {
  InterpretOnly,
  Mcc,
  Falcon,
  Jit,
  Speculative,
};

const char *compilePolicyName(CompilePolicy P);

/// Cooperative resource limits for one engine. All default to 0
/// (unlimited). Breaches surface as ordinary MatlabErrors on the thread
/// running the program; the engine (workspace, repository, statistics)
/// stays intact and usable afterwards.
struct ExecutionLimits {
  /// Maximum live matrix elements across all values (each element is one
  /// double, plus another for complex storage).
  uint64_t MaxLiveElements = 0;
  /// Maximum live matrix-storage bytes. When both element and byte limits
  /// are set, the stricter one wins.
  uint64_t MaxAllocBytes = 0;
  /// Operation budget per top-level invocation (VM instructions plus
  /// interpreted statements); bounds runaway loops.
  uint64_t MaxOps = 0;
  /// Wall-clock budget per top-level invocation, in milliseconds; bounds
  /// programs whose per-op cost is large (huge matmuls in a loop). Sampled
  /// every ~512 op-budget polls, so enforcement granularity is coarse by
  /// design.
  uint64_t MaxWallMillis = 0;
};

struct EngineOptions {
  CompilePolicy Policy = CompilePolicy::Jit;
  PlatformModel Platform = PlatformModel::sparc();
  InferOptions Infer;
  RegAllocOptions RegAlloc;
  /// Inline small user functions before compiling (Section 2.6.1).
  bool InlineCalls = true;
  /// Fuse elementwise expression trees into single-pass loops (one loop,
  /// one memory pass, zero intermediate temporaries). Results stay
  /// bit-identical to the unfused interpreter. The MAJIC_NO_FUSION
  /// environment variable (any non-empty value) forces this off, for
  /// A/B measurement without recompiling the embedder.
  bool FuseElementwise = true;
  uint64_t RandSeed = 0x9e3779b97f4a7c15ull;
  /// Third execution tier above the register VM: hot compiled functions
  /// are rendered to C, compiled out of process by the system C compiler,
  /// and dlopen'd; subsequent invocations run machine code. Off by
  /// default (tier-1 behavior is unchanged); the MAJIC_NATIVE environment
  /// variable (any non-empty value) turns it on without recompiling the
  /// embedder. Every native-tier failure - missing compiler, compile
  /// error, load error, runtime deopt - degrades transparently to the VM.
  bool NativeTier = false;
  /// C compiler driver for the native tier. Empty falls back to the
  /// MAJIC_NATIVE_CC environment variable, then to "cc". An unusable
  /// compiler leaves the tier dormant: everything runs on the VM.
  std::string NativeCC;
  /// Recorded invocations of a function (FunctionProfiles counts,
  /// including counts persisted from previous sessions) before a compiled
  /// version is promoted to the native tier. The MAJIC_NATIVE_HOT
  /// environment variable (a positive integer) overrides.
  unsigned NativeHotThreshold = 3;
  /// C-stack protection for recursive MATLAB programs.
  unsigned MaxCallDepth = 4000;
  /// Background speculative-compilation workers (Section 2.5: compilation
  /// latency is hidden from the user). 0 compiles speculation synchronously
  /// on the calling thread (the pre-async behavior, and what deterministic
  /// measurement configurations want).
  unsigned BackgroundCompileThreads = 1;
  /// Compute threads for the runtime's dense kernels (support/Parallel.h).
  /// 0 keeps the process-wide default: the MAJIC_COMPUTE_THREADS
  /// environment variable when set, otherwise the hardware concurrency.
  /// Nonzero pins the count (kernel results are bit-identical either way).
  unsigned ComputeThreads = 0;
  /// Resource limits (0 = unlimited). By default the memory limits are
  /// applied process-wide (matrix storage uses a global tracking
  /// allocator), so only one engine at a time should set them; with
  /// PerSessionLimits they bind to this engine's own account instead and
  /// any number of engines can carry independent budgets.
  ExecutionLimits Limits;
  /// Scope the memory limit and the interrupt to this engine: the byte
  /// budget charges an engine-owned mem::Account (installed thread-locally
  /// around each top-level invocation and propagated into parallelFor
  /// chunks), and requestInterrupt() raises an engine-owned exec::Token
  /// instead of the process-wide flag. This is what makes N sessions in
  /// one process unable to exhaust - or interrupt - each other.
  bool PerSessionLimits = false;
  /// Compile speculation and store saves on this externally owned pool
  /// instead of spawning workers (BackgroundCompileThreads is ignored when
  /// set). The pool must outlive the engine; the multi-session service
  /// multiplexes every session's background work onto one idle pool.
  ThreadPool *SharedSpecPool = nullptr;
  /// Process-wide compiled-code cache consulted before every compile and
  /// published to after (one compile serves every session hitting the same
  /// source + signature + configuration). Null = no sharing.
  std::shared_ptr<SharedCodeCache> SharedCache;
  /// When false, the MAJIC_TRACE / MAJIC_METRICS / MAJIC_REPO_DIR /
  /// MAJIC_PROFILE_DIR environment fallbacks are ignored (the explicit
  /// option fields still work). The service disables them for session
  /// engines so N sessions cannot race dumps into one file.
  bool EnvFallbacks = true;
  /// Cap on compiled versions kept per function; the least-used version is
  /// evicted when a new one would exceed it. 0 = unlimited.
  unsigned MaxVersionsPerFunction = 8;
  /// Directory for the persistent code repository (warm start). Empty
  /// falls back to the MAJIC_REPO_DIR environment variable; when both are
  /// empty the repository is in-memory only. Compiled objects are written
  /// crash-safely on the background pool and validated (checksum, build
  /// stamp, source hash) before being served on the next start; any
  /// invalid entry degrades to a recompile.
  std::string RepoDir;
  /// Directory for the persisted profile summary (hot-first warm starts).
  /// Empty falls back to the MAJIC_PROFILE_DIR environment variable, then
  /// to the repository directory, so by default the profile file sits
  /// beside the .mjo entries. The summary (per function: invocation count
  /// and the top-K observed signatures with call counts) is written
  /// CRC32-checksummed and atomically at engine destruction and merged
  /// into the in-memory profiles at construction, so a warm-started
  /// session speculates hot-first on what the user actually ran last
  /// session. Corrupt files are quarantined exactly like .mjo entries.
  std::string ProfileDir;
  /// Chrome-trace output path (chrome://tracing / Perfetto JSON). Empty
  /// falls back to the MAJIC_TRACE environment variable; when both are
  /// empty, tracing stays runtime-disabled and every trace site costs one
  /// relaxed atomic load. The file is written when the engine is
  /// destroyed.
  std::string TracePath;
  /// Metrics-dump output path. Empty falls back to MAJIC_METRICS; when
  /// set, the engine writes metricsJson() there at destruction. Metrics
  /// recording itself is always on (lock-free counters).
  std::string MetricsPath;
};

/// Responsiveness counters for the background speculation subsystem.
struct SpeculationStats {
  uint64_t Queued = 0;    ///< tasks handed to the worker pool
  uint64_t Completed = 0; ///< tasks whose object was published
  uint64_t Dropped = 0;   ///< tasks discarded (compile failed or source
                          ///< invalidated while the compile was in flight)
  uint64_t DedupedRequests = 0;   ///< requests already in flight
  uint64_t InFlightInterpreted = 0; ///< invocations interpreted because a
                                    ///< compile for the function was still
                                    ///< in flight
  uint64_t Promoted = 0; ///< queued compiles moved to the front because an
                         ///< invocation was waiting on them
  uint64_t Failed = 0;   ///< compiles that raised an exception (including
                         ///< injected faults); the function is quarantined
                         ///< until its source changes
  /// Seconds of compilation performed off the caller's thread.
  double BackgroundCompileSeconds = 0;
  /// Seconds from engine construction to the first completed top-level
  /// invocation (negative until one completes). The paper's responsiveness
  /// claim is that this stays near the interpreted cost even when total
  /// compile seconds are large.
  double TimeToFirstResultSeconds = -1;
};

class Engine : public CallResolver {
public:
  explicit Engine(EngineOptions Opts = EngineOptions());
  ~Engine() override;

  /// Quiesces the engine: drains or cancels this engine's background work
  /// (owned pool: drain and join; shared pool: cancel queued tasks, wait
  /// out running ones - never blocking on other sessions' work), persists
  /// profiles, writes the final observability dumps, and lifts any
  /// process-wide limit this engine installed. Idempotent; the destructor
  /// calls it. After shutdown the engine serves no further invocations'
  /// speculation (synchronous execution still works).
  void shutdown();

  /// Hash of the codegen-relevant options: two engines whose hashes match
  /// produce interchangeable compiled objects for identical source and
  /// signature. This is the CfgHash component of SharedCodeCache keys, so
  /// mixed-option engines sharing one cache can never serve each other
  /// mismatched code.
  static uint64_t sharedCacheConfigHash(const EngineOptions &Opts);

  //===--------------------------------------------------------------------===
  // Loading sources
  //===--------------------------------------------------------------------===

  /// Parses and registers \p Source as module \p Name (function file or
  /// script). Returns false (with diagnostics()) on parse errors.
  bool addSource(const std::string &Name, const std::string &Source);

  /// Loads one .m file.
  bool loadFile(const std::string &Path);

  /// Watches a directory of .m files; scan() picks them up.
  void watchDirectory(const std::string &Dir);

  /// Scans watched directories: loads new/changed files and, under the
  /// Speculative policy, compiles them ahead of time.
  unsigned snoop();

  //===--------------------------------------------------------------------===
  // Execution
  //===--------------------------------------------------------------------===

  /// Invokes function \p Name: the repository/compile/interpret path.
  std::vector<ValuePtr> callFunction(const std::string &Name,
                                     std::vector<ValuePtr> Args,
                                     size_t NumOuts, SourceLoc Loc) override;

  bool knowsFunction(const std::string &Name) override;

  /// Runs \p Source as a script in the persistent interactive workspace,
  /// returning what it printed. Scripts are interpreted (the front end);
  /// the functions they call go through the repository.
  std::string runScript(const std::string &Source);

  /// The value of interactive workspace variable \p Name, or null.
  ValuePtr workspaceVar(const std::string &Name) const;

  /// Snapshot of the interactive session for hibernation: every function
  /// definition submitted through runScript (in submission order) plus the
  /// workspace variables, sorted by name so identical workspaces encode to
  /// identical bytes. Values are shared, not copied - the image must be
  /// consumed before the session mutates again. Engine-thread only.
  ser::WorkspaceImage workspaceImage() const;

  /// Rebuilds an interactive session from \p W on a fresh engine: replays
  /// the recorded definitions through runScript (compiled code comes back
  /// from the shared cache, not from scratch) and installs the workspace
  /// variables. Engine-thread only; meant for an engine that has run
  /// nothing yet.
  void restoreWorkspaceImage(const ser::WorkspaceImage &W);

  //===--------------------------------------------------------------------===
  // Ahead-of-time entry points for the measured configurations
  //===--------------------------------------------------------------------===

  /// Falcon-style batch compilation: "peeks" at sample inputs to seed type
  /// inference, excluded from measured runtime.
  bool precompileWithArgs(const std::string &Name,
                          const std::vector<ValuePtr> &SampleArgs);

  /// Speculative compilation of one function (Section 2.5), synchronously
  /// on the calling thread (measurement configurations exclude this time
  /// explicitly).
  bool precompileSpeculative(const std::string &Name);

  /// Queues a speculative compilation of \p Name on the background worker
  /// pool; returns false when the function cannot be compiled, a compile
  /// for it is already in flight, or no pool is configured (in which case
  /// the caller should use precompileSpeculative). The worker prefers the
  /// most-called observed signature over the backward-hint guess (pass
  /// \p SigOverride to force one, e.g. re-speculation after repeated
  /// deopts or repository misses). The compiled object is published to
  /// the repository when the worker finishes; use drainCompiles() to wait
  /// for that deterministically.
  bool speculateAsync(const std::string &Name,
                      const TypeSignature *SigOverride = nullptr);

  /// Blocks until every queued background compilation has been published
  /// or dropped. Tests and benchmarks use this for determinism.
  void drainCompiles();

  /// True when a background compile of \p Name is queued or running.
  bool speculationInFlight(const std::string &Name) const;

  /// Moves \p Name's still-queued speculative compile to the front of the
  /// compile queue (ROADMAP "compile-priority heuristics": an invocation
  /// that misses on a queued function is evidence the user wants it next,
  /// so it should not wait behind the snooper's FIFO backlog). Returns
  /// false when no compile of \p Name is queued - including when one is
  /// already running, which needs no help.
  bool promoteSpeculation(const std::string &Name);

  /// Pause/resume the background compile workers (running compiles finish;
  /// queued ones hold). Tests use this to stage a deterministic backlog.
  /// No-ops on a shared pool: one session must not be able to pause every
  /// other session's background work (the service pauses the shared pool
  /// itself when shedding load).
  void pauseBackgroundCompiles();
  void resumeBackgroundCompiles();

  /// Names whose compiles are queued but not yet started, in the order the
  /// workers will pick them up.
  std::vector<std::string> queuedSpeculations() const;

  /// Snapshot of the background-speculation counters.
  SpeculationStats speculationStats() const;

  /// mcc-style generic compilation (no type inference).
  bool precompileGeneric(const std::string &Name, size_t Arity);

  //===--------------------------------------------------------------------===
  // Robustness: interrupts and compile-failure quarantine
  //===--------------------------------------------------------------------===

  /// Requests cooperative interruption of the running program (safe from
  /// any thread, e.g. a SIGINT handler). The program stops at the next
  /// poll point with a clean MatlabError; the engine stays usable. With
  /// PerSessionLimits this raises the engine's own token, so only this
  /// engine's work stops; otherwise it raises the process-wide flag.
  void requestInterrupt();

  /// Clears a pending interrupt request.
  void clearInterrupt();

  /// True when \p Name's compiler crashed and the engine has stopped
  /// retrying it (every invocation interprets) until its source changes.
  bool isQuarantined(const std::string &Name) const;

  /// Number of currently quarantined functions.
  size_t quarantineCount() const;

  /// Counters of the persistent store (all zero when no RepoDir is set):
  /// saves, load/quarantine outcomes of the startup validation ladder,
  /// warm-start adoptions, and swept temp files.
  RepoStoreStats repoStoreStats() const;

  /// Blocks until background store saves queued so far have finished
  /// (tests/benchmarks; implies drainCompiles-like determinism for the
  /// on-disk state).
  void flushRepoStore();

  //===--------------------------------------------------------------------===
  // Introspection
  //===--------------------------------------------------------------------===

  Context &context() { return Ctx; }
  Repository &repository() { return Repo; }
  PhaseTimes &phases() { return Phases; }
  const EngineOptions &options() const { return Opts; }
  std::string diagnostics() const { return Diags.render(SM); }
  uint64_t vmInstructions() const { return Machine->instructionsExecuted(); }

  /// The speculated signature of \p Name (tests/inspection).
  TypeSignature speculated(const std::string &Name);

  /// Number of invocations that fell back to the interpreter / the JIT.
  uint64_t interpreterFallbacks() const { return InterpFallbacks.value(); }
  uint64_t jitCompiles() const { return JitCompiles.value(); }
  /// Number of deoptimizations (guard failures causing a recompile).
  uint64_t deoptimizations() const { return Deopts.value(); }

  /// Native-tier counters (also published as native.* metrics): system-
  /// compiler invocations that produced a module, failures at any stage,
  /// guard failures inside machine code, and invocations served natively.
  uint64_t nativeCompiles() const { return NativeCompiles.value(); }
  uint64_t nativeFailures() const { return NativeFailures.value(); }
  uint64_t nativeDeopts() const { return NativeDeopts.value(); }
  uint64_t nativeHits() const { return NativeHits.value(); }

  /// True when the native tier is on and its C compiler probed usable.
  bool nativeTierAvailable() const {
    return NativeComp && NativeComp->available();
  }

  //===--------------------------------------------------------------------===
  // Observability
  //===--------------------------------------------------------------------===

  /// The engine's metrics registry (counters, gauges, latency histograms).
  /// Point-in-time gauges (repo store, fault sites, compute pool,
  /// quarantine count) are refreshed by sampleMetrics(); everything else
  /// records continuously.
  obs::MetricsRegistry &metrics() { return Metrics; }

  /// Refreshes the sampled gauges and returns a snapshot of every
  /// instrument.
  obs::MetricsSnapshot sampleMetrics();

  /// Human-readable dump: every metric (after a sampleMetrics()) plus the
  /// most-invoked per-function profiles.
  std::string statsReport();

  /// Machine dump: {"metrics": {...}, "profiles": [...]} — what
  /// MAJIC_METRICS / EngineOptions::MetricsPath writes at destruction.
  std::string metricsJson();

  /// The recorded profile of \p Name: invocation count, VM vs interpreter
  /// time, compile count/time, warm-start adoptions, observed argument
  /// type signatures. Zeroed when the function was never invoked.
  obs::FunctionProfile profile(const std::string &Name) const {
    return Profiles.profile(Name);
  }

  /// Every function profile, most-invoked first.
  std::vector<obs::FunctionProfile> profiles() const {
    return Profiles.snapshot();
  }

private:
  struct LoadedFunction {
    Function *F = nullptr;
    Module *M = nullptr;
    /// Shared so in-flight background compiles keep the analysis (and the
    /// inlined clone it points into) alive after the function is reloaded.
    std::shared_ptr<FunctionInfo> Info;
    /// The inlined clone used for compilation (built lazily).
    std::shared_ptr<Function> InlinedF;
    std::shared_ptr<FunctionInfo> InlinedInfo;
    /// One observed argument signature with its cached rendering and call
    /// count. The cache keeps the invocation hot path to a linear scan
    /// over the one or two signatures a function sees in practice (not a
    /// render per call); the counts drive observed-signature speculation.
    struct SigObs {
      TypeSignature Sig;
      std::string Str;
      uint64_t Count = 0;
    };
    /// Observed signatures, capped at obs::FunctionProfiles::kMaxSignatures
    /// entries (overflow renders fresh per call). Engine-thread only; the
    /// most-called signature is published into ObservedSigByFn (under
    /// SpecMutex) for the background workers.
    std::vector<SigObs> Obs;
    size_t BestIdx = SIZE_MAX; ///< index into Obs of the published best
    uint64_t BestCount = 0;    ///< its call count at publish time
    /// Rendering scratch for signatures past the Obs cap.
    std::string OverflowSig;
    /// Deopt count and consecutive repository-miss streak feeding the
    /// re-speculation triggers. Engine-thread only.
    uint64_t DeoptCount = 0;
    uint64_t SigMissStreak = 0;
    /// The last signature re-speculation was triggered for (so a stable
    /// mismatch pattern triggers once, not per call).
    TypeSignature RespecSig;
    bool RespecValid = false;
  };

  LoadedFunction *find(const std::string &Name);
  /// The analysis view compilation uses (inlined when enabled). Must run
  /// on the engine's thread: building the view mutates the LoadedFunction.
  const std::shared_ptr<FunctionInfo> &compileView(LoadedFunction &LF);

  /// Compiles \p Name for \p Sig in \p Mode and inserts into the
  /// repository. Returns the inserted object or null. \p Optimistic
  /// controls guarded real-domain math (disabled when recompiling after a
  /// deoptimization).
  CompiledObjectPtr compileAndInsert(const std::string &Name,
                                     const TypeSignature &Sig,
                                     CodeGenMode Mode,
                                     CompiledObject::Origin From,
                                     bool Optimistic = true);

  /// Builds the compile request for \p FI (shared across the synchronous
  /// and background paths).
  CompileRequest makeRequest(const FunctionInfo *FI, const TypeSignature &Sig,
                             CodeGenMode Mode, bool Optimistic) const;

  /// Worker-side body of speculateAsync: picks the signature (override,
  /// then most-called observed, then backward-hint guess), compiles, and
  /// publishes unless the source generation moved (invalidate/reload)
  /// while in flight.
  void backgroundCompile(std::string Name,
                         std::shared_ptr<const FunctionInfo> FI,
                         std::shared_ptr<const Function> KeepAlive,
                         uint64_t Gen, std::optional<TypeSignature> Forced);

  /// The most-called observed signature of \p Name when one was published
  /// and its arity matches \p Arity (an arity mismatch means the profile
  /// is stale against the live source - fall back to the hint pass).
  bool observedSignatureFor(const std::string &Name, size_t Arity,
                            TypeSignature &Out) const;

  /// Seeds a freshly registered \p LF with the persisted observed
  /// signatures of \p Name (arity-checked against the live source) and
  /// publishes the most-called one for the speculation workers.
  void seedObservedSignatures(const std::string &Name, LoadedFunction &LF);

  /// Composes the persisted profile summaries and writes them through the
  /// profile store (destructor, after the workers are joined).
  void saveProfilesToStore();

  /// Invalidates \p Name's compiled code and bumps its source generation
  /// so in-flight background compiles of the old source are dropped.
  /// Also lifts any quarantine: new source gets a fresh chance to compile.
  void invalidateFunction(const std::string &Name);

  /// Records a compile failure for \p Name at source generation \p Gen and
  /// quarantines the function (no recompile attempts until the source
  /// changes). Pass the generation the failing compile started from so a
  /// failure racing a reload cannot quarantine the fresh source.
  void noteCompileFailure(const std::string &Name, uint64_t Gen);

  /// Records the time-to-first-result counter (top-level calls only).
  void recordFirstResult();

  /// Runs the source-hash rung of the validation ladder over \p Name's
  /// pending warm-start entries: matching entries are published to the
  /// repository, drifted ones are discarded from disk.
  void adoptWarmEntries(const std::string &Name, uint64_t SrcHash);

  /// Persists \p Obj to the on-disk store, on the idle pool when one
  /// exists. Never throws; a failed save only costs a future recompile.
  void saveToStore(const CompiledObject &Obj);

  /// The body of one store save (pool task or synchronous fallback):
  /// honors the erased-function tombstone on both sides of the write, so
  /// a save racing a source removal can never leave an entry on disk.
  void runStoreSave(RepoStore &S, const CompiledObject &Obj,
                    uint64_t SrcHash);

  /// Reacts to the snooper reporting a deleted .m file: the functions it
  /// defined stop resolving and their compiled versions - in memory and on
  /// disk - are invalidated rather than served stale.
  void handleRemovedSource(const SourceSnooper::Change &C);

  std::vector<ValuePtr> runCompiled(const CompiledObject &Obj,
                                    std::vector<ValuePtr> Args,
                                    size_t NumOuts);
  std::vector<ValuePtr> interpretCall(LoadedFunction &LF,
                                      std::vector<ValuePtr> Args,
                                      size_t NumOuts);

  //===--------------------------------------------------------------------===
  // Native tier internals
  //===--------------------------------------------------------------------===

  /// Map key of one native version: function name + '\0' + signature hash
  /// (same hash the store's file names use).
  static std::string nativeKey(const std::string &Name,
                               const TypeSignature &Sig);

  /// The ready native module for \p Obj, or null. Tracks per-version
  /// promotion: once the function's recorded invocations reach the
  /// hotness threshold, queues a native compile on the background pool
  /// (or compiles synchronously without one) - so the first sighting
  /// after the threshold still runs on the VM while cc works off-thread.
  std::shared_ptr<native::NativeModule> nativeModuleFor(
      const CompiledObject &Obj);

  /// The native-tier leg of runCompiled: runs \p Obj's promoted module if
  /// one is ready, handling deopt/fault degradation. Returns true with
  /// \p Out filled when the native tier served the call. Deliberately
  /// never inlined: runCompiled sits on the VM's call-recursion cycle,
  /// and keeping this leg's locals and exception machinery out of that
  /// frame keeps the MaxCallDepth guard reachable on sanitizer stacks.
  [[gnu::noinline]] bool runNativeTier(const CompiledObject &Obj,
                                       const std::vector<ValuePtr> &Args,
                                       size_t NumOuts, const Rng &SavedRand,
                                       size_t OutputMark,
                                       std::vector<ValuePtr> &Out);

  /// Emits C for \p Code, drives the system compiler, loads the result,
  /// publishes the module, and persists the .so bytes beside the .mjo.
  /// Never throws: any failure marks the version Failed (VM from then on).
  void buildNative(const std::string &Name, const TypeSignature &Sig,
                   std::shared_ptr<const IRFunction> Code);

  /// Drops one native version after a runtime failure (deopt, injected
  /// fault): the module is discarded, the version pinned to the VM, and
  /// the function's on-disk .mjn entries erased so the next session does
  /// not resurrect the bad code.
  void quarantineNative(const std::string &Name, const TypeSignature &Sig);

  /// Records one observation of \p Sig on \p LF (count bump, publishing
  /// the most-called signature for the speculation workers) and returns
  /// its cached rendering for the profile layer.
  const std::string &observeSignature(LoadedFunction &LF,
                                      const TypeSignature &Sig);

  //===--------------------------------------------------------------------===
  // Observability. Declared before every other member: components register
  // their own counters here (Repository) or receive pointers to
  // registry-owned instruments (SpecPool), so the registry must be
  // constructed first and destroyed last. The destructor body writes the
  // final dumps while all members are still alive.
  //===--------------------------------------------------------------------===

  obs::MetricsRegistry Metrics;
  obs::FunctionProfiles Profiles;
  /// Hot-path histograms resolved once at construction (registry-owned).
  struct {
    obs::Histogram *CompileSeconds = nullptr;
    obs::Histogram *InferSeconds = nullptr;
    obs::Histogram *CodeGenSeconds = nullptr;
    obs::Histogram *VmRunSeconds = nullptr;
    obs::Histogram *InterpRunSeconds = nullptr;
    /// Elementwise-fusion outcomes, accumulated across every compile
    /// (foreground and speculative) from CompileResult::Fusion.
    obs::Counter *FusionGroups = nullptr;
    obs::Counter *FusionOpsFused = nullptr;
    obs::Counter *FusionTempsElided = nullptr;
  } Inst;
  std::string TraceFile;   ///< trace JSON destination; empty = tracing off
  std::string MetricsFile; ///< metrics JSON destination; empty = no dump

  EngineOptions Opts;
  SourceManager SM;
  Diagnostics Diags;
  Context Ctx;
  Repository Repo;
  SourceSnooper Snooper;
  std::unique_ptr<VM> Machine;
  std::unique_ptr<Interpreter> Interp;
  PhaseTimes Phases;

  std::vector<std::unique_ptr<Module>> Modules;
  std::unordered_map<std::string, LoadedFunction> Functions;

  // Interactive workspace (scripts).
  std::unordered_map<std::string, ValuePtr> WorkspaceByName;
  /// Function definitions submitted interactively through runScript, in
  /// order, deduplicated by exact text (replaying later-wins redefinitions
  /// in order reaches the same state) - the replay half of a hibernation
  /// snapshot.
  std::vector<ser::WorkspaceImage::SourceDef> InteractiveDefs;
  /// Function names registered by the most recent addSource/loadFile (the
  /// snooper speculates on these; a file's stem need not match them).
  std::vector<std::string> LastLoadedNames;

  unsigned CallDepth = 0;
  obs::Counter InterpFallbacks; ///< registered as "engine.interp_fallbacks"
  obs::Counter JitCompiles;     ///< registered as "engine.jit_compiles"
  obs::Counter Deopts;          ///< registered as "engine.deopts"
  obs::Counter NativeCompiles;  ///< registered as "native.compiles"
  obs::Counter NativeFailures;  ///< registered as "native.failures"
  obs::Counter NativeDeopts;    ///< registered as "native.deopts"
  obs::Counter NativeHits;      ///< registered as "native.hits"

  //===--------------------------------------------------------------------===
  // Native tier state
  //===--------------------------------------------------------------------===

  /// Bridges Opcode::CallU from machine code back into the engine's own
  /// dispatch (repository lookup, tiering, interpreter fallback).
  struct NativeHostBridge : native::NativeHost {
    Engine *E = nullptr;
    std::vector<ValuePtr> callFunction(const std::string &Name,
                                       std::vector<ValuePtr> Args,
                                       size_t NumOuts) override;
  } NativeHostAdapter;
  /// Present when NativeTier is on (even if the compiler probe failed -
  /// available() distinguishes). Null when the tier is off.
  std::unique_ptr<native::NativeCompiler> NativeComp;
  /// One (function, signature) version's place in the tier. Guarded by
  /// SpecMutex: workers publish Ready modules, the engine thread reads.
  struct NativeVersion {
    enum class State { Pending, Ready, Failed } St = State::Pending;
    std::shared_ptr<native::NativeModule> Module;
  };
  std::unordered_map<std::string, NativeVersion> NativeVersions;
  /// Validated .mjn entries waiting for their source (and its hash) to be
  /// loaded, exactly like PendingWarm. Engine-thread only.
  std::unordered_map<std::string, std::vector<RepoStore::NativeEntry>>
      PendingNativeWarm;
  /// Pool task ids of native compiles still in the queue; shutdown on a
  /// shared pool cancels through these. Guarded by SpecMutex.
  std::unordered_set<ThreadPool::TaskId> QueuedNativeIds;
  /// Native compiles queued or running on the pool. Guarded by SpecMutex;
  /// drainCompiles/flushRepoStore/shutdown wait on it via SpecIdleCv.
  unsigned PendingNative = 0;
  /// True when this engine installed the process-wide memory limit (so the
  /// destructor knows to lift it).
  bool OwnsMemLimit = false;

  //===--------------------------------------------------------------------===
  // Persistent repository (warm start). Declared before SpecPool: save
  // tasks run on the pool and touch the store, so the store must outlive
  // the workers.
  //===--------------------------------------------------------------------===

  /// Open when RepoDir (option or MAJIC_REPO_DIR) names a directory.
  std::unique_ptr<RepoStore> Store;
  /// Separate store instance when ProfileDir differs from RepoDir (used
  /// only for the profile summary file).
  std::unique_ptr<RepoStore> OwnedProfileStore;
  /// Where the profile summary is loaded from / saved to: Store when the
  /// directories coincide, OwnedProfileStore otherwise, null when neither
  /// directory is configured.
  RepoStore *ProfileStore = nullptr;
  /// Persisted observed signatures per function, waiting for the source
  /// to be loaded so they can seed LoadedFunction::Obs (arity-checked
  /// against the live source at that point). Engine-thread only.
  std::unordered_map<std::string, std::vector<RepoStore::ProfileSig>>
      PendingProfileSigs;
  /// Entries loaded from disk at startup, keyed by function name, waiting
  /// for their source to be loaded so the source-hash rung of the
  /// validation ladder can run (adoptWarmEntries).
  std::unordered_map<std::string, std::vector<RepoStore::Entry>> PendingWarm;
  /// Content hash of each function's current source text. Guarded by
  /// SpecMutex: background save tasks read it.
  std::unordered_map<std::string, uint64_t> SourceHashByFn;
  /// Functions whose on-disk entries were erased because their source was
  /// deleted (cleared when the name is loaded again). Guarded by SpecMutex.
  /// A save queued before the removal consults this tombstone around its
  /// write, so the deleted function cannot resurrect on the next warm
  /// start however the save and the erase interleave.
  std::unordered_set<std::string> ErasedFns;
  /// Function names each loaded file defined; snooper removal invalidates
  /// through this (a file's stem need not match its function names).
  std::unordered_map<std::string, std::vector<std::string>> FileFunctions;

  //===--------------------------------------------------------------------===
  // Background speculation (the compile queue). All fields below are
  // guarded by SpecMutex except the pool itself. The engine's public API
  // remains single-threaded; only Repository, PhaseTimes and this block
  // are touched from workers.
  //===--------------------------------------------------------------------===

  /// Owned workers when no shared pool is configured (null otherwise).
  /// Only the engine thread touches the unique_ptr itself.
  std::unique_ptr<ThreadPool> OwnedSpecPool;
  /// The pool speculation and saves run on: OwnedSpecPool.get() or
  /// Opts.SharedSpecPool. Written only on the engine thread (constructor
  /// and shutdown); engine-thread reads are plain, worker reads go through
  /// SpecMutex, where shutdown's clearing write is also made - that
  /// ordering is what fixes the old teardown race, where workers read the
  /// unique_ptr member while the destructor nulled it.
  ThreadPool *SpecPool = nullptr;
  /// Engine-thread only: shutdown() already ran.
  bool ShutdownDone = false;
  mutable std::mutex SpecMutex;
  std::condition_variable SpecIdleCv;
  /// Guarded by SpecMutex. While draining (shutdown), workers persist
  /// synchronously instead of enqueueing onto a pool that may be paused or
  /// mid-teardown, and no new speculation is accepted.
  bool Draining = false;
  /// Pool task ids of store saves still sitting in the queue (erased when
  /// a worker starts one); shutdown on a shared pool cancels through
  /// these. Guarded by SpecMutex.
  std::unordered_set<ThreadPool::TaskId> QueuedSaveIds;
  /// Per-session byte budget and interrupt token (PerSessionLimits);
  /// internally synchronized.
  mem::Account MemAccount;
  exec::Token IntrToken;
  /// sharedCacheConfigHash(Opts), resolved once at construction.
  uint64_t CfgHash = 0;
  /// Functions queued or compiling: the in-flight dedup set. Keyed by
  /// name (one speculative compile per function at a time) because the
  /// speculated signature is only computed on the worker.
  std::vector<std::string> InFlight;
  /// Pool task ids of compiles still sitting in the queue (erased when a
  /// worker starts the task); promoteSpeculation reorders through these.
  std::unordered_map<std::string, ThreadPool::TaskId> QueuedIds;
  /// The same queued compiles in worker pick-up order (mirrors the pool's
  /// queue; inspection + promotion bookkeeping).
  std::vector<std::string> QueuedOrder;
  /// Source generation per function; bumped on invalidation so stale
  /// in-flight results are dropped instead of published.
  std::unordered_map<std::string, uint64_t> SourceGeneration;
  /// Functions whose compiler raised an exception, mapped to the source
  /// generation that failed. While the generation is unchanged the engine
  /// interprets them instead of retrying the compiler; a reload clears the
  /// entry.
  std::unordered_map<std::string, uint64_t> Quarantined;
  /// The most-called observed signature per function, published by the
  /// engine thread when a signature overtakes the previous best and read
  /// by the workers when picking what to speculate. Guarded by SpecMutex.
  std::unordered_map<std::string, TypeSignature> ObservedSigByFn;
  unsigned PendingCompiles = 0;
  /// Store saves still queued or running on the pool (flushRepoStore).
  unsigned PendingSaves = 0;
  /// The speculation counters, migrated onto the registry ("spec.*");
  /// speculationStats() composes the legacy struct from them. The
  /// double-valued timers stay plain and SpecMutex-guarded.
  struct {
    obs::Counter Queued, Completed, Dropped, DedupedRequests,
        InFlightInterpreted, Promoted, Failed;
    /// Speculative compiles whose signature came from observation (live
    /// or persisted) rather than the backward-hint guess.
    obs::Counter ObservedSigCompiles;
  } Spec;
  double SpecBackgroundSeconds = 0;     ///< guarded by SpecMutex
  double TimeToFirstResultSeconds = -1; ///< guarded by SpecMutex
  /// Engine birth, the zero point of TimeToFirstResultSeconds.
  Timer BirthTimer;
};

} // namespace majic

#endif // MAJIC_ENGINE_ENGINE_H
