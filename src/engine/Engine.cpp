//===- engine/Engine.cpp - The MaJIC engine --------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "analysis/Inliner.h"
#include "backend/CEmitter.h"
#include "infer/Speculate.h"
#include "ir/Serialize.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace majic;

const char *majic::compilePolicyName(CompilePolicy P) {
  switch (P) {
  case CompilePolicy::InterpretOnly:
    return "interpret";
  case CompilePolicy::Mcc:
    return "mcc";
  case CompilePolicy::Falcon:
    return "falcon";
  case CompilePolicy::Jit:
    return "jit";
  case CompilePolicy::Speculative:
    return "spec";
  }
  majic_unreachable("invalid policy");
}

namespace {

/// Reads a nonnegative integer environment knob; 0 when unset or invalid.
uint64_t envLimit(const char *Name) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(V, &End, 10);
  return (End && *End == '\0') ? N : 0;
}

/// The profile-layer signature for invocations that never compute one
/// (InterpretOnly policy, scripts).
const std::string UntypedSig = "(untyped)";

/// Re-speculation thresholds: consecutive repository misses against
/// existing versions, and cumulative deopts, before the engine asks the
/// background queue to recompile on the newly observed signature.
constexpr uint64_t kRespeculateMissStreak = 2;
constexpr uint64_t kRespeculateDeopts = 2;

} // namespace

Engine::Engine(EngineOptions OptsIn) : Opts(std::move(OptsIn)) {
  // Arm the fault-injection schedule from MAJIC_FAULTS once per process;
  // later engines leave whatever schedule the tests armed via the API.
  static bool FaultEnvLoaded = (faults::loadEnv(), true);
  (void)FaultEnvLoaded;
  // Environment knobs fill in limits the embedder left unset.
  if (!Opts.Limits.MaxAllocBytes)
    Opts.Limits.MaxAllocBytes = envLimit("MAJIC_MAX_ALLOC_BYTES");
  if (!Opts.Limits.MaxOps)
    Opts.Limits.MaxOps = envLimit("MAJIC_MAX_OPS");
  if (!Opts.Limits.MaxWallMillis)
    Opts.Limits.MaxWallMillis = envLimit("MAJIC_MAX_WALL_MILLIS");

  Ctx.Rand.reseed(Opts.RandSeed);
  Ctx.Exec.OpBudget = Opts.Limits.MaxOps;
  Ctx.Exec.TimeBudgetNs = Opts.Limits.MaxWallMillis * 1000000ull;
  uint64_t ByteLimit = Opts.Limits.MaxAllocBytes;
  if (Opts.Limits.MaxLiveElements) {
    uint64_t ElemBytes = Opts.Limits.MaxLiveElements * sizeof(double);
    ByteLimit = ByteLimit ? std::min(ByteLimit, ElemBytes) : ElemBytes;
  }
  if (ByteLimit) {
    if (Opts.PerSessionLimits) {
      // The budget binds to this engine's own account, installed around
      // each top-level invocation: any number of engines can carry
      // independent budgets in one process.
      MemAccount.setLimit(ByteLimit);
    } else {
      // Matrix storage is charged against a process-wide account (the
      // tracking allocator cannot see engine state), so apply the stricter
      // of the two limits globally and lift it again at shutdown.
      mem::setLimitBytes(ByteLimit);
      OwnsMemLimit = true;
    }
  }
  // Native-tier knobs resolve before the config hash computes: the tier
  // flag is part of the shared-cache key. MAJIC_NATIVE opts in without
  // recompiling the embedder (the same pattern as MAJIC_NO_FUSION).
  if (const char *Env = std::getenv("MAJIC_NATIVE"); Env && *Env)
    Opts.NativeTier = true;
  if (Opts.NativeCC.empty()) {
    if (const char *Env = std::getenv("MAJIC_NATIVE_CC"); Env && *Env)
      Opts.NativeCC = Env;
    else
      Opts.NativeCC = "cc";
  }
  if (uint64_t Hot = envLimit("MAJIC_NATIVE_HOT"))
    Opts.NativeHotThreshold = static_cast<unsigned>(Hot);
  CfgHash = sharedCacheConfigHash(Opts);
  Repo.setVersionCap(Opts.MaxVersionsPerFunction);
  // Wire the observability subsystem. The repository's hit/miss/eviction
  // counters and the engine's own counters register as externally-owned
  // instruments; member order guarantees the registry outlives them. The
  // hot-path histograms are registry-owned, resolved once here.
  Repo.registerMetrics(Metrics);
  Metrics.registerCounter("engine.interp_fallbacks", InterpFallbacks);
  Metrics.registerCounter("engine.jit_compiles", JitCompiles);
  Metrics.registerCounter("engine.deopts", Deopts);
  Metrics.registerCounter("native.compiles", NativeCompiles);
  Metrics.registerCounter("native.failures", NativeFailures);
  Metrics.registerCounter("native.deopts", NativeDeopts);
  Metrics.registerCounter("native.hits", NativeHits);
  Metrics.registerCounter("spec.queued", Spec.Queued);
  Metrics.registerCounter("spec.completed", Spec.Completed);
  Metrics.registerCounter("spec.dropped", Spec.Dropped);
  Metrics.registerCounter("spec.deduped_requests", Spec.DedupedRequests);
  Metrics.registerCounter("spec.inflight_interpreted",
                          Spec.InFlightInterpreted);
  Metrics.registerCounter("spec.promoted", Spec.Promoted);
  Metrics.registerCounter("spec.failed", Spec.Failed);
  Metrics.registerCounter("spec.observed_sig_compiles",
                          Spec.ObservedSigCompiles);
  Inst.CompileSeconds = &Metrics.histogram("compile.seconds");
  Inst.InferSeconds = &Metrics.histogram("compile.infer.seconds");
  Inst.CodeGenSeconds = &Metrics.histogram("compile.codegen.seconds");
  Inst.VmRunSeconds = &Metrics.histogram("vm.run.seconds");
  Inst.InterpRunSeconds = &Metrics.histogram("interp.run.seconds");
  Inst.FusionGroups = &Metrics.counter("fusion.groups");
  Inst.FusionOpsFused = &Metrics.counter("fusion.ops_fused");
  Inst.FusionTempsElided = &Metrics.counter("fusion.temps_elided");
  // Trace/metrics destinations: option first, environment knob second
  // (environment fallbacks only when EnvFallbacks - service sessions must
  // not all dump into one file). Tracing is enabled only when a
  // destination exists - the disabled path is one relaxed atomic load per
  // site.
  TraceFile = Opts.TracePath;
  if (TraceFile.empty() && Opts.EnvFallbacks)
    if (const char *Env = std::getenv("MAJIC_TRACE"); Env && *Env)
      TraceFile = Env;
  if (!TraceFile.empty())
    obs::setTraceEnabled(true);
  MetricsFile = Opts.MetricsPath;
  if (MetricsFile.empty() && Opts.EnvFallbacks)
    if (const char *Env = std::getenv("MAJIC_METRICS"); Env && *Env)
      MetricsFile = Env;
  // Environment kill switch for elementwise fusion (A/B measurement).
  if (const char *Env = std::getenv("MAJIC_NO_FUSION"); Env && *Env)
    Opts.FuseElementwise = false;
  // Pin the dense-kernel thread count when the embedder asked for one;
  // 0 leaves the process-wide default (env override, then hardware).
  if (Opts.ComputeThreads)
    par::setComputeThreads(Opts.ComputeThreads);
  Machine = std::make_unique<VM>(Ctx, *this);
  Interp = std::make_unique<Interpreter>(Ctx, *this);
  // Third tier: probe the system C compiler once (out of process, with a
  // deadline). An unprobeable compiler leaves available() false and the
  // engine permanently on the VM - opting in never risks correctness.
  NativeHostAdapter.E = this;
  if (Opts.NativeTier)
    NativeComp = std::make_unique<native::NativeCompiler>(Opts.NativeCC);
  // Open the persistent repository (warm start): sweep temp files a crashed
  // save left behind, then read and validate every entry. Entries wait in
  // PendingWarm until their source is loaded - only then can the source
  // hash confirm the compiled code still matches the .m text.
  std::string RepoDir = Opts.RepoDir;
  if (RepoDir.empty() && Opts.EnvFallbacks)
    if (const char *Env = std::getenv("MAJIC_REPO_DIR"); Env && *Env)
      RepoDir = Env;
  if (!RepoDir.empty()) {
    Store = std::make_unique<RepoStore>(RepoDir);
    Store->sweepTemps();
    for (RepoStore::Entry &E : Store->loadAll())
      PendingWarm[E.Obj.FunctionName].push_back(std::move(E));
    if (NativeComp && NativeComp->available()) {
      // Native payloads carry a narrower stamp: the ABI version plus the
      // compiler's identification line fold into the extra, so a cc
      // upgrade or an ABI bump turns last session's .so files into
      // routine skew rather than loadable code. With the compiler absent
      // the .mjn files are left untouched - their provenance cannot be
      // re-validated, and the tier is dormant anyway.
      struct {
        uint32_t Abi;
        uint32_t Zero;
        uint64_t CompilerId;
      } StampFacts = {native::kNativeABIVersion, 0,
                      hashing::fnv1a(NativeComp->compilerId())};
      Store->setNativeStampExtra(hashing::fnv1a(
          &StampFacts, sizeof(StampFacts), hashing::fnv1a("majic-native")));
      for (RepoStore::NativeEntry &E : Store->loadAllNative())
        PendingNativeWarm[E.FunctionName].push_back(std::move(E));
    }
  }
  // The profile summary lives beside the .mjo entries unless an explicit
  // profile directory points elsewhere. Persisted counts merge into the
  // in-memory profiles right away (so the snooper ranks hot-first before
  // anything runs); the observed signatures wait in PendingProfileSigs
  // until their source is loaded and the arity can be checked.
  std::string ProfDir = Opts.ProfileDir;
  if (ProfDir.empty() && Opts.EnvFallbacks)
    if (const char *Env = std::getenv("MAJIC_PROFILE_DIR"); Env && *Env)
      ProfDir = Env;
  if (ProfDir.empty())
    ProfDir = RepoDir;
  if (!ProfDir.empty()) {
    if (Store && ProfDir == RepoDir) {
      ProfileStore = Store.get();
    } else {
      OwnedProfileStore = std::make_unique<RepoStore>(ProfDir);
      OwnedProfileStore->sweepTemps();
      ProfileStore = OwnedProfileStore.get();
    }
    for (RepoStore::ProfileSummary &PS : ProfileStore->loadProfiles()) {
      Profiles.mergePersisted(PS.Name, PS.Invocations, PS.OtherSignatures);
      for (const RepoStore::ProfileSig &Sg : PS.Sigs)
        Profiles.mergeSignatureCount(PS.Name, Sg.SigStr, Sg.Count);
      if (!PS.Sigs.empty())
        PendingProfileSigs[PS.Name] = std::move(PS.Sigs);
    }
  }
  // Background workers for speculation and store saves. A shared pool (the
  // multi-session service) takes precedence; otherwise idle-priority
  // workers are spawned so background compilation only consumes cycles the
  // interactive thread leaves free - responsiveness holds even on a
  // single-core machine (the paper's "the user never waits"). An owned
  // pool records into registry-owned instruments ("pool.spec.*"); a shared
  // pool's instruments belong to its owner.
  if (Opts.SharedSpecPool) {
    SpecPool = Opts.SharedSpecPool;
  } else if (Opts.BackgroundCompileThreads > 0) {
    ThreadPool::MetricsSink Sink;
    Sink.Enqueued = &Metrics.counter("pool.spec.enqueued");
    Sink.Finished = &Metrics.counter("pool.spec.finished");
    Sink.Promoted = &Metrics.counter("pool.spec.promoted");
    Sink.QueueDepth = &Metrics.gauge("pool.spec.queue_depth");
    Sink.QueueSeconds = &Metrics.histogram("pool.spec.queue_seconds");
    Sink.RunSeconds = &Metrics.histogram("pool.spec.run_seconds");
    OwnedSpecPool = std::make_unique<ThreadPool>(
        Opts.BackgroundCompileThreads, ThreadPool::Priority::Idle, &Sink);
    SpecPool = OwnedSpecPool.get();
  }
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  if (ShutdownDone)
    return;
  ShutdownDone = true;
  if (OwnedSpecPool) {
    // Workers observe Draining under SpecMutex and persist synchronously
    // from then on, so nothing re-enqueues while the pool tears down (the
    // old destructor nulled the pool member before joining, which raced
    // the workers' own reads of it).
    {
      std::lock_guard<std::mutex> L(SpecMutex);
      Draining = true;
    }
    // A paused pool would never drain its queue; the pool destructor joins
    // after finishing queued tasks, so un-pause first. In-flight tasks
    // touch the repository and the speculation bookkeeping, which must
    // outlive them - hence join before anything else is torn down.
    OwnedSpecPool->setPaused(false);
    OwnedSpecPool.reset();
    std::lock_guard<std::mutex> L(SpecMutex);
    SpecPool = nullptr;
  } else if (SpecPool) {
    // Shared pool: it outlives this engine and may be serving other
    // sessions, so never drain or pause it. Cancel this engine's
    // still-queued tasks (doing the bookkeeping their bodies would have),
    // then wait out only the ones already running.
    std::unique_lock<std::mutex> L(SpecMutex);
    Draining = true;
    for (auto It = QueuedIds.begin(); It != QueuedIds.end();) {
      if (!SpecPool->cancel(It->second)) {
        ++It; // already running; its body does its own bookkeeping
        continue;
      }
      const std::string &Name = It->first;
      auto QIt = std::find(QueuedOrder.begin(), QueuedOrder.end(), Name);
      if (QIt != QueuedOrder.end())
        QueuedOrder.erase(QIt);
      auto FIt = std::find(InFlight.begin(), InFlight.end(), Name);
      if (FIt != InFlight.end())
        InFlight.erase(FIt);
      --PendingCompiles;
      Spec.Dropped.inc();
      It = QueuedIds.erase(It);
    }
    for (auto It = QueuedSaveIds.begin(); It != QueuedSaveIds.end();) {
      if (SpecPool->cancel(*It)) {
        --PendingSaves;
        It = QueuedSaveIds.erase(It);
      } else {
        ++It;
      }
    }
    for (auto It = QueuedNativeIds.begin(); It != QueuedNativeIds.end();) {
      if (SpecPool->cancel(*It)) {
        --PendingNative;
        It = QueuedNativeIds.erase(It);
      } else {
        ++It;
      }
    }
    SpecIdleCv.wait(L, [this] {
      return PendingCompiles == 0 && PendingSaves == 0 && PendingNative == 0;
    });
    SpecPool = nullptr;
  }
  // Persist the profile summary now that all recording is quiesced; the
  // next session's snooper ranks its speculation queue by these counts.
  saveProfilesToStore();
  // Final observability dumps, with every member still alive and all
  // recording quiesced (this engine's workers are joined or waited out).
  if (!MetricsFile.empty()) {
    std::ofstream Out(MetricsFile);
    if (Out)
      Out << metricsJson() << "\n";
  }
  if (!TraceFile.empty())
    obs::writeTraceJson(TraceFile);
  if (OwnsMemLimit) {
    mem::setLimitBytes(0);
    OwnsMemLimit = false;
  }
}

uint64_t Engine::sharedCacheConfigHash(const EngineOptions &Opts) {
  // Renders every option that changes generated code, then hashes the
  // rendering. Policy, limits, pool sizes and directories are
  // deliberately absent: they steer *when* compilation happens, not what
  // it produces.
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%s|%u|%u|%u|%d|%u|%d|%d|%d|%u|%d|%d|%d|%d",
                Opts.Platform.Name.c_str(), Opts.Platform.NumFRegs,
                Opts.Platform.NumIRegs, Opts.Platform.NumPRegs,
                int(Opts.Platform.JitUnrollsSmallVectors),
                Opts.Platform.NativeOptRounds, int(Opts.Infer.EnableRanges),
                int(Opts.Infer.EnableMinShapes),
                int(Opts.Infer.OptimisticRealMath), Opts.Infer.MaxPasses,
                int(Opts.RegAlloc.SpillEverything), int(Opts.InlineCalls),
                int(Opts.FuseElementwise), int(Opts.NativeTier));
  return hashing::fnv1a(Buf);
}

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

bool Engine::addSource(const std::string &Name, const std::string &Source) {
  obs::TraceScope Span("addSource", "engine", Name);
  // Diagnostics report the most recent load only; stale errors from an
  // earlier bad file must not poison this parse.
  Diags.clear();
  std::unique_ptr<Module> Mod;
  {
    obs::TraceScope ParseSpan("parse", "compile", Name);
    ScopedPhaseTimer T(Phases, Phase::Parse);
    Mod = parseModule(Name, Source, SM, Diags);
  }
  if (!Mod)
    return false;

  Module *M = Mod.get();
  Modules.push_back(std::move(Mod));
  ScopedPhaseTimer T(Phases, Phase::Disambiguate);
  LastLoadedNames.clear();
  uint64_t SrcHash = hashing::fnv1a(Source);
  for (const auto &F : M->functions()) {
    LoadedFunction LF;
    LF.F = F.get();
    LF.M = M;
    LF.Info = disambiguate(*F, *M);
    // New source shadows any previous definition; drop stale code and
    // make sure in-flight background compiles of the old source are
    // dropped rather than published.
    invalidateFunction(F->name());
    Functions[F->name()] = std::move(LF);
    seedObservedSignatures(F->name(), Functions[F->name()]);
    LastLoadedNames.push_back(F->name());
    {
      std::lock_guard<std::mutex> L(SpecMutex);
      SourceHashByFn[F->name()] = SrcHash;
      ErasedFns.erase(F->name());
    }
    adoptWarmEntries(F->name(), SrcHash);
  }
  return true;
}

bool Engine::loadFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), format("cannot open '%s'", Path.c_str()));
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  // Module name = basename without extension.
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  if (endsWith(Base, ".m"))
    Base = Base.substr(0, Base.size() - 2);
  if (!addSource(Base, SS.str()))
    return false;
  // Remember which functions this file defined: when the snooper reports
  // the file deleted, exactly these must be invalidated (stem aside).
  FileFunctions[Path] = LastLoadedNames;
  return true;
}

void Engine::watchDirectory(const std::string &Dir) {
  Snooper.watchDirectory(Dir);
}

unsigned Engine::snoop() {
  obs::TraceScope Span("snoop", "engine");
  unsigned Loaded = 0;
  // Load in the scanner's deterministic path order, but speculate
  // hot-first: the profile's invocation counts (live plus persisted from
  // the last session) say what the user actually runs, so the most-called
  // function's compile goes first. Never-run functions tie at zero and
  // keep source-recency order - the file the user just saved is the one
  // they will most likely run next.
  struct Candidate {
    uint64_t Invocations;
    int64_t MTime;
    std::string Fn;
  };
  std::vector<Candidate> ToSpeculate;
  for (const SourceSnooper::Change &C : Snooper.scan()) {
    if (C.K == SourceSnooper::Change::Kind::Removed) {
      handleRemovedSource(C);
      continue;
    }
    if (!loadFile(C.Path))
      continue;
    ++Loaded;
    if (Opts.Policy == CompilePolicy::Speculative)
      for (const std::string &Fn : LastLoadedNames)
        ToSpeculate.push_back({Profiles.invocations(Fn), C.MTime, Fn});
  }
  std::stable_sort(ToSpeculate.begin(), ToSpeculate.end(),
                   [](const Candidate &A, const Candidate &B) {
                     return A.Invocations != B.Invocations
                                ? A.Invocations > B.Invocations
                                : A.MTime > B.MTime;
                   });
  for (const auto &[Invocations, MTime, Fn] : ToSpeculate) {
    // With a worker pool the compile happens off this thread ("the user
    // never waits for the compiler"); without one, fall back to the
    // synchronous pre-async behavior.
    if (SpecPool)
      speculateAsync(Fn);
    else
      precompileSpeculative(Fn);
  }
  return Loaded;
}

//===----------------------------------------------------------------------===//
// Compilation plumbing
//===----------------------------------------------------------------------===//

Engine::LoadedFunction *Engine::find(const std::string &Name) {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : &It->second;
}

const std::shared_ptr<FunctionInfo> &Engine::compileView(LoadedFunction &LF) {
  if (!Opts.InlineCalls)
    return LF.Info;
  if (LF.InlinedInfo)
    return LF.InlinedInfo;

  ScopedPhaseTimer T(Phases, Phase::Disambiguate);
  FunctionResolver Resolve = [this](const std::string &Callee) -> const Function * {
    LoadedFunction *C = find(Callee);
    return C ? C->F : nullptr;
  };
  LF.InlinedF = inlineFunctionCalls(*LF.F, LF.M->context(), Resolve);
  // Inlining invalidates the symbol table (Section 2: "which then
  // necessitates the re-building of the symbol table").
  LF.InlinedInfo = disambiguate(*LF.InlinedF, *LF.M);
  return LF.InlinedInfo;
}

CompileRequest Engine::makeRequest(const FunctionInfo *FI,
                                   const TypeSignature &Sig, CodeGenMode Mode,
                                   bool Optimistic) const {
  CompileRequest Req;
  Req.FI = FI;
  Req.Sig = Sig;
  Req.Mode = Mode;
  Req.Platform = Opts.Platform;
  Req.Infer = Opts.Infer;
  Req.Infer.OptimisticRealMath &= Optimistic;
  Req.RegAlloc = Opts.RegAlloc;
  Req.UnrollSmallVectors =
      Mode == CodeGenMode::Jit ? Opts.Platform.JitUnrollsSmallVectors : true;
  Req.FuseElementwise = Opts.FuseElementwise;
  return Req;
}

CompiledObjectPtr Engine::compileAndInsert(const std::string &Name,
                                           const TypeSignature &Sig,
                                           CodeGenMode Mode,
                                           CompiledObject::Origin From,
                                           bool Optimistic) {
  LoadedFunction *LF = find(Name);
  if (!LF || LF->F->isScript())
    return nullptr;
  if (isQuarantined(Name))
    return nullptr;
  const std::shared_ptr<FunctionInfo> &FI = compileView(*LF);
  if (FI->HasAmbiguousSymbols)
    return nullptr;

  uint64_t Gen;
  uint64_t SrcHash = 0;
  bool HaveSrcHash = false;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    Gen = SourceGeneration[Name];
    auto HIt = SourceHashByFn.find(Name);
    if (HIt != SourceHashByFn.end()) {
      SrcHash = HIt->second;
      HaveSrcHash = true;
    }
  }
  // Cross-session reuse: another session may already have compiled exactly
  // this (source, signature, configuration). A hit clones the immutable
  // code body into this engine's repository - zero compile work.
  std::string CacheKey;
  if (Opts.SharedCache && HaveSrcHash) {
    CacheKey =
        SharedCodeCache::key(Name, SrcHash, CfgHash, Mode, Optimistic, Sig);
    if (CompiledObjectPtr Cached = Opts.SharedCache->lookup(CacheKey)) {
      try {
        CompiledObject Obj;
        Obj.FunctionName = Name;
        Obj.Sig = Cached->Sig;
        Obj.Code = Cached->Code;
        Obj.Mode = Cached->Mode;
        Obj.CompileSeconds = 0; // this session spent nothing
        Obj.From = Cached->From;
        Repo.insert(std::move(Obj));
        CompiledObjectPtr Adopted = Repo.lookup(Name, Sig);
        if (Adopted)
          return Adopted;
      } catch (...) {
        // An injected repo-insert fault costs one compile; fall through.
      }
    }
  }
  // The compiler must never take the engine down: any exception escaping
  // the pipeline (injected faults included; MatlabError does not derive
  // from std::exception, hence catch-all) quarantines the function and the
  // caller transparently falls back to the interpreter.
  try {
    Timer Total;
    CompileRequest Req = makeRequest(FI.get(), Sig, Mode, Optimistic);
    std::optional<CompileResult> Result = compileFunction(Req);
    if (!Result)
      return nullptr;

    Phases.add(Phase::TypeInference, Result->TypeInferSeconds);
    Phases.add(Phase::CodeGen, Result->CodeGenSeconds);
    Inst.InferSeconds->observe(Result->TypeInferSeconds);
    Inst.CodeGenSeconds->observe(Result->CodeGenSeconds);
    Inst.FusionGroups->inc(Result->Fusion.Groups);
    Inst.FusionOpsFused->inc(Result->Fusion.OpsFused);
    Inst.FusionTempsElided->inc(Result->Fusion.TempsElided);

    CompiledObject Obj;
    Obj.FunctionName = Name;
    Obj.Sig = Sig;
    Obj.Code = std::move(Result->Code);
    Obj.Mode = Mode;
    Obj.CompileSeconds = Total.seconds();
    Obj.From = From;
    Inst.CompileSeconds->observe(Obj.CompileSeconds);
    Profiles.recordCompile(Name, Obj.CompileSeconds);
    Repo.insert(std::move(Obj));
    CompiledObjectPtr Inserted = Repo.lookup(Name, Sig);
    if (Inserted) {
      saveToStore(*Inserted);
      if (Opts.SharedCache && !CacheKey.empty())
        Opts.SharedCache->publish(CacheKey, Inserted, SrcHash);
    }
    return Inserted;
  } catch (...) {
    noteCompileFailure(Name, Gen);
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Persistent repository (warm start)
//===----------------------------------------------------------------------===//

void Engine::adoptWarmEntries(const std::string &Name, uint64_t SrcHash) {
  if (!Store)
    return;
  auto It = PendingWarm.find(Name);
  if (It == PendingWarm.end())
    return;
  std::vector<RepoStore::Entry> Entries = std::move(It->second);
  PendingWarm.erase(It);
  for (RepoStore::Entry &E : Entries) {
    if (E.SourceHash != SrcHash) {
      // The .m text changed since this was compiled: the final rung of the
      // validation ladder fails, and the entry must not shadow the new
      // source. Delete the file; the new source recompiles on demand.
      Store->discardStale(E.Path);
      continue;
    }
    try {
      Repo.insert(std::move(E.Obj));
      Store->noteAdopted();
      Profiles.recordWarmAdoption(Name);
      obs::traceInstant("warm.adopt", "repo", Name);
    } catch (...) {
      // An injected repo-insert fault while adopting costs one recompile;
      // loading must never take the engine down.
    }
  }
  // The native half of the warm start: a validated .mjn whose source hash
  // still matches dlopens straight into a Ready version - machine code
  // with zero compiler invocations. Any loader refusal (injected fault,
  // ABI drift the stamp missed) discards the file and the function simply
  // stays on the VM until re-promoted.
  auto NIt = PendingNativeWarm.find(Name);
  if (NIt == PendingNativeWarm.end())
    return;
  std::vector<RepoStore::NativeEntry> NEntries = std::move(NIt->second);
  PendingNativeWarm.erase(NIt);
  for (RepoStore::NativeEntry &E : NEntries) {
    if (E.SourceHash != SrcHash) {
      Store->discardStale(E.Path);
      continue;
    }
    try {
      std::vector<uint8_t> So(E.SoBytes.begin(), E.SoBytes.end());
      std::shared_ptr<native::NativeModule> Mod =
          native::NativeCompiler::load(So, E.FunctionName, E.NumOuts);
      std::lock_guard<std::mutex> L(SpecMutex);
      NativeVersion &NV = NativeVersions[nativeKey(Name, E.Sig)];
      NV.St = NativeVersion::State::Ready;
      NV.Module = std::move(Mod);
      obs::traceInstant("warm.adopt_native", "native", Name);
    } catch (...) {
      NativeFailures.inc();
      Store->discardStale(E.Path);
    }
  }
}

void Engine::saveToStore(const CompiledObject &Obj) {
  if (!Store || !Obj.Code)
    return;
  uint64_t SrcHash;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    auto It = SourceHashByFn.find(Obj.FunctionName);
    if (It == SourceHashByFn.end())
      return;
    SrcHash = It->second;
  }
  // Clone for the task: CompiledObject is move-only (atomic hit counter)
  // and the repository keeps the original. The IR itself is shared.
  auto Clone = std::make_shared<CompiledObject>();
  Clone->FunctionName = Obj.FunctionName;
  Clone->Sig = Obj.Sig;
  Clone->Code = Obj.Code;
  Clone->Mode = Obj.Mode;
  Clone->CompileSeconds = Obj.CompileSeconds;
  Clone->From = Obj.From;
  RepoStore *S = Store.get();
  {
    // Persisting rides the idle-priority pool like speculative compiles:
    // the interactive thread never waits for the disk. The pool pointer is
    // read under SpecMutex because this path runs on workers, which must
    // observe shutdown's Draining/clearing writes - while draining, save
    // synchronously instead of enqueueing onto a pool that is mid-teardown
    // (owned) or possibly paused (shared).
    std::unique_lock<std::mutex> L(SpecMutex);
    if (SpecPool && !Draining) {
      ++PendingSaves;
      // Enqueueing while holding SpecMutex (the established SpecMutex ->
      // pool-mutex order) makes id tracking race-free: the worker's first
      // action in the task body is to take SpecMutex, so the id is in
      // QueuedSaveIds - and in the box - before the body can look.
      auto IdBox = std::make_shared<ThreadPool::TaskId>(0);
      try {
        ThreadPool::TaskId Id =
            SpecPool->enqueue([this, S, Clone, SrcHash, IdBox] {
              {
                std::lock_guard<std::mutex> L2(SpecMutex);
                QueuedSaveIds.erase(*IdBox);
              }
              runStoreSave(*S, *Clone, SrcHash);
              {
                std::lock_guard<std::mutex> L2(SpecMutex);
                --PendingSaves;
              }
              SpecIdleCv.notify_all();
            });
        *IdBox = Id;
        QueuedSaveIds.insert(Id);
        return;
      } catch (...) {
        // Injected pool-enqueue fault: undo the pending count and fall
        // back to the synchronous path (save() itself never throws).
        --PendingSaves;
      }
    }
  }
  runStoreSave(*S, *Clone, SrcHash);
}

void Engine::runStoreSave(RepoStore &S, const CompiledObject &Obj,
                          uint64_t SrcHash) {
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    if (ErasedFns.count(Obj.FunctionName))
      return;
  }
  S.save(Obj, SrcHash);
  // Re-check after the write: handleRemovedSource sets the tombstone
  // before calling Store->erase, so if we do not see it here, our file
  // landed before the erase scanned the directory and the eraser removes
  // it; if we do see it, the erase may have run first and missed the file,
  // and we take it back out ourselves. Either way nothing survives.
  bool Erased;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    Erased = ErasedFns.count(Obj.FunctionName) != 0;
  }
  if (Erased)
    S.erase(Obj.FunctionName);
}

void Engine::flushRepoStore() {
  // A compile still in flight may yet queue a save, so wait out both.
  // Native compile tasks save their .so inline, so they count too.
  std::unique_lock<std::mutex> L(SpecMutex);
  SpecIdleCv.wait(L, [this] {
    return PendingSaves == 0 && PendingCompiles == 0 && PendingNative == 0;
  });
}

RepoStoreStats Engine::repoStoreStats() const {
  RepoStoreStats S = Store ? Store->stats() : RepoStoreStats();
  if (OwnedProfileStore) {
    // The profile file lives in its own store instance; fold its counters
    // in so one snapshot covers both directories.
    RepoStoreStats P = OwnedProfileStore->stats();
    S.ProfilesSaved += P.ProfilesSaved;
    S.ProfileSaveFailures += P.ProfileSaveFailures;
    S.ProfilesLoaded += P.ProfilesLoaded;
    S.ProfilesQuarantined += P.ProfilesQuarantined;
    S.ProfilesSkewed += P.ProfilesSkewed;
    S.SweptTemps += P.SweptTemps;
  }
  return S;
}

void Engine::handleRemovedSource(const SourceSnooper::Change &C) {
  // Which functions did that file define? Fall back to the stem for files
  // loaded by an embedder directly rather than through loadFile.
  std::vector<std::string> Names;
  auto It = FileFunctions.find(C.Path);
  if (It != FileFunctions.end()) {
    Names = std::move(It->second);
    FileFunctions.erase(It);
  } else {
    Names.push_back(C.FunctionName);
  }
  for (const std::string &Fn : Names) {
    // Same teardown as a reload - drop compiled versions, bump the source
    // generation so in-flight compiles are discarded - plus: the function
    // stops resolving, and its on-disk entries go too (a deleted source
    // must not resurrect on the next warm start).
    invalidateFunction(Fn);
    Functions.erase(Fn);
    PendingWarm.erase(Fn);
    PendingProfileSigs.erase(Fn);
    {
      std::lock_guard<std::mutex> L(SpecMutex);
      SourceHashByFn.erase(Fn);
      // A deleted function must not keep steering speculation either.
      ObservedSigByFn.erase(Fn);
      // Tombstone before erasing the files: a background save queued
      // before this removal must not recreate them (runStoreSave checks
      // the tombstone on both sides of its write).
      if (Store)
        ErasedFns.insert(Fn);
    }
    if (Store)
      Store->erase(Fn);
  }
}

bool Engine::precompileWithArgs(const std::string &Name,
                                const std::vector<ValuePtr> &SampleArgs) {
  return compileAndInsert(Name, TypeSignature::ofValues(SampleArgs),
                          CodeGenMode::Optimized,
                          CompiledObject::Origin::Batch) != nullptr;
}

bool Engine::precompileSpeculative(const std::string &Name) {
  LoadedFunction *LF = find(Name);
  if (!LF || LF->F->isScript())
    return false;
  const std::shared_ptr<FunctionInfo> &FI = compileView(*LF);
  if (FI->HasAmbiguousSymbols)
    return false;
  // What users actually call beats what the hint pass guesses; the guess
  // stays as the cold-start fallback.
  TypeSignature SpecSig;
  if (observedSignatureFor(Name, LF->F->params().size(), SpecSig))
    Spec.ObservedSigCompiles.inc();
  else
    SpecSig = speculateSignature(*FI, Opts.Infer);
  return compileAndInsert(Name, SpecSig, CodeGenMode::Optimized,
                          CompiledObject::Origin::Speculative) != nullptr;
}

//===----------------------------------------------------------------------===//
// Background speculation (the compile queue)
//===----------------------------------------------------------------------===//

bool Engine::speculateAsync(const std::string &Name,
                            const TypeSignature *SigOverride) {
  if (!SpecPool)
    return false;
  LoadedFunction *LF = find(Name);
  if (!LF || LF->F->isScript())
    return false;
  if (isQuarantined(Name))
    return false;
  // The analysis view is built here, on the engine's thread (it mutates
  // the LoadedFunction); speculative inference and the compile pipeline -
  // both pure over the FunctionInfo - run on the worker, keeping the
  // interactive thread's share of the request to parse + disambiguate.
  const std::shared_ptr<FunctionInfo> &View = compileView(*LF);
  if (View->HasAmbiguousSymbols)
    return false;

  std::shared_ptr<const FunctionInfo> FI = View;
  std::shared_ptr<const Function> KeepAlive = LF->InlinedF;
  std::optional<TypeSignature> Forced;
  if (SigOverride)
    Forced = *SigOverride;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    if (Draining)
      return false;
    if (std::find(InFlight.begin(), InFlight.end(), Name) != InFlight.end()) {
      Spec.DedupedRequests.inc();
      return false;
    }
    InFlight.push_back(Name);
    uint64_t Gen = SourceGeneration[Name];
    // Enqueue under SpecMutex so the task id lands in QueuedIds before any
    // promoteSpeculation can look for it. Safe against the workers: they
    // release the pool lock before running a task, so SpecMutex ->
    // pool-mutex is the only order these two locks are ever taken in.
    // Count the request only once the pool accepted it: a throwing enqueue
    // (injected pool-enqueue fault) must leave no bookkeeping behind, or
    // drainCompiles would wait forever on a task that does not exist.
    ThreadPool::TaskId Id;
    try {
      Id = SpecPool->enqueue([this, Name, FI, KeepAlive, Gen, Forced] {
        backgroundCompile(Name, FI, KeepAlive, Gen, Forced);
      });
    } catch (...) {
      InFlight.pop_back();
      Spec.Failed.inc();
      return false;
    }
    Spec.Queued.inc();
    ++PendingCompiles;
    QueuedIds[Name] = Id;
    QueuedOrder.push_back(Name);
  }
  obs::traceInstant("speculate.queue", "engine", Name);
  return true;
}

bool Engine::promoteSpeculation(const std::string &Name) {
  if (!SpecPool)
    return false;
  std::lock_guard<std::mutex> L(SpecMutex);
  auto It = QueuedIds.find(Name);
  if (It == QueuedIds.end())
    return false;
  // The pool may have handed the task to a worker that hasn't erased its
  // bookkeeping yet; promote() refuses once the task left the queue.
  if (!SpecPool->promote(It->second))
    return false;
  auto QIt = std::find(QueuedOrder.begin(), QueuedOrder.end(), Name);
  if (QIt != QueuedOrder.end() && QIt != QueuedOrder.begin()) {
    QueuedOrder.erase(QIt);
    QueuedOrder.insert(QueuedOrder.begin(), Name);
  }
  Spec.Promoted.inc();
  return true;
}

void Engine::pauseBackgroundCompiles() {
  // Owned pool only: pausing a shared pool would stall every other
  // session's background work, and no session may have that power.
  if (OwnedSpecPool)
    OwnedSpecPool->setPaused(true);
}

void Engine::resumeBackgroundCompiles() {
  if (OwnedSpecPool)
    OwnedSpecPool->setPaused(false);
}

std::vector<std::string> Engine::queuedSpeculations() const {
  std::lock_guard<std::mutex> L(SpecMutex);
  return QueuedOrder;
}

void Engine::backgroundCompile(std::string Name,
                               std::shared_ptr<const FunctionInfo> FI,
                               std::shared_ptr<const Function> KeepAlive,
                               uint64_t Gen,
                               std::optional<TypeSignature> Forced) {
  // KeepAlive pins the inlined clone FI's nodes point into; reloading the
  // function on the main thread must not pull it out from under us.
  (void)KeepAlive;
  {
    // No longer queued: promotion from here on is a no-op.
    std::lock_guard<std::mutex> L(SpecMutex);
    QueuedIds.erase(Name);
    auto It = std::find(QueuedOrder.begin(), QueuedOrder.end(), Name);
    if (It != QueuedOrder.end())
      QueuedOrder.erase(It);
  }
  Timer Total;
  // A worker exception must never escape into the pool (it would be
  // swallowed there, silently losing the bookkeeping below); capture it
  // and convert it into a Failed + quarantine record instead.
  std::optional<CompileResult> Result;
  TypeSignature Sig;
  bool Crashed = false;
  CompiledObjectPtr CacheHit;
  std::string CacheKey;
  uint64_t SrcHash = 0;
  try {
    // Signature pick order: an explicit override (re-speculation), then
    // the most-called observed signature, then the backward-hint guess.
    // Arity is checked against the live analysis view so a stale persisted
    // profile can never force a wrong-arity compile.
    size_t Arity = FI->F->params().size();
    if (Forced && Forced->size() == Arity) {
      Sig = std::move(*Forced);
      Spec.ObservedSigCompiles.inc();
    } else if (observedSignatureFor(Name, Arity, Sig)) {
      Spec.ObservedSigCompiles.inc();
    } else {
      Sig = speculateSignature(*FI, Opts.Infer);
    }
    // Cross-session reuse on the background path too: a sibling session's
    // speculative compile of the same (source, signature, configuration)
    // serves this one for free.
    if (Opts.SharedCache) {
      bool HaveSrcHash = false;
      {
        std::lock_guard<std::mutex> L(SpecMutex);
        auto HIt = SourceHashByFn.find(Name);
        if (HIt != SourceHashByFn.end()) {
          SrcHash = HIt->second;
          HaveSrcHash = true;
        }
      }
      if (HaveSrcHash) {
        CacheKey = SharedCodeCache::key(Name, SrcHash, CfgHash,
                                        CodeGenMode::Optimized,
                                        /*Optimistic=*/true, Sig);
        CacheHit = Opts.SharedCache->lookup(CacheKey);
      }
    }
    if (!CacheHit) {
      CompileRequest Req = makeRequest(FI.get(), Sig, CodeGenMode::Optimized,
                                       /*Optimistic=*/true);
      Result = compileFunction(Req);
    }
  } catch (...) {
    Crashed = true;
  }
  double Seconds = Total.seconds();

  CompiledObject Obj;
  if (CacheHit) {
    Obj.FunctionName = Name;
    Obj.Sig = CacheHit->Sig;
    Obj.Code = CacheHit->Code;
    Obj.Mode = CacheHit->Mode;
    Obj.CompileSeconds = 0; // this session spent nothing
    Obj.From = CacheHit->From;
  } else if (Result) {
    Phases.add(Phase::TypeInference, Result->TypeInferSeconds);
    Phases.add(Phase::CodeGen, Result->CodeGenSeconds);
    Inst.InferSeconds->observe(Result->TypeInferSeconds);
    Inst.CodeGenSeconds->observe(Result->CodeGenSeconds);
    Inst.FusionGroups->inc(Result->Fusion.Groups);
    Inst.FusionOpsFused->inc(Result->Fusion.OpsFused);
    Inst.FusionTempsElided->inc(Result->Fusion.TempsElided);
    Inst.CompileSeconds->observe(Seconds);
    Profiles.recordCompile(Name, Seconds);
    Obj.FunctionName = Name;
    Obj.Sig = Sig;
    Obj.Code = std::move(Result->Code);
    Obj.Mode = CodeGenMode::Optimized;
    Obj.CompileSeconds = Seconds;
    Obj.From = CompiledObject::Origin::Speculative;
  }
  CompiledObjectPtr Published;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    SpecBackgroundSeconds += Seconds;
    // Publish only when the source generation is unchanged: an invalidate
    // or reload while we compiled makes this object stale.
    bool Stale = SourceGeneration[Name] != Gen;
    if ((Result || CacheHit) && !Stale) {
      try {
        Repo.insert(std::move(Obj));
        Published = Repo.lookup(Name, Sig);
        Spec.Completed.inc();
      } catch (...) {
        Crashed = true;
        Spec.Dropped.inc();
      }
    } else {
      Spec.Dropped.inc();
    }
    // Quarantine on a crash, but only against the generation we compiled:
    // if the source was reloaded meanwhile, the fresh source keeps its
    // chance to compile.
    if (Crashed) {
      Spec.Failed.inc();
      if (!Stale)
        Quarantined[Name] = Gen;
    }
  }
  // Queue the persist before releasing the compile's pending count (and
  // outside SpecMutex, which saveToStore takes): a drainCompiles() +
  // flushRepoStore() sequence must find either PendingCompiles or
  // PendingSaves nonzero until the object is actually on disk. Freshly
  // compiled (not cache-served) objects are also published for the
  // sibling sessions.
  if (Published) {
    saveToStore(*Published);
    if (Result && Opts.SharedCache && !CacheKey.empty())
      Opts.SharedCache->publish(CacheKey, Published, SrcHash);
  }
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    InFlight.erase(std::find(InFlight.begin(), InFlight.end(), Name));
    --PendingCompiles;
  }
  SpecIdleCv.notify_all();
}

void Engine::drainCompiles() {
  // Native compiles count as compiles: tests that drain before asserting
  // on tier state must not race the background cc invocation.
  std::unique_lock<std::mutex> L(SpecMutex);
  SpecIdleCv.wait(
      L, [this] { return PendingCompiles == 0 && PendingNative == 0; });
}

bool Engine::speculationInFlight(const std::string &Name) const {
  std::lock_guard<std::mutex> L(SpecMutex);
  return std::find(InFlight.begin(), InFlight.end(), Name) != InFlight.end();
}

SpeculationStats Engine::speculationStats() const {
  SpeculationStats S;
  S.Queued = Spec.Queued.value();
  S.Completed = Spec.Completed.value();
  S.Dropped = Spec.Dropped.value();
  S.DedupedRequests = Spec.DedupedRequests.value();
  S.InFlightInterpreted = Spec.InFlightInterpreted.value();
  S.Promoted = Spec.Promoted.value();
  S.Failed = Spec.Failed.value();
  std::lock_guard<std::mutex> L(SpecMutex);
  S.BackgroundCompileSeconds = SpecBackgroundSeconds;
  S.TimeToFirstResultSeconds = TimeToFirstResultSeconds;
  return S;
}

void Engine::invalidateFunction(const std::string &Name) {
  // Bumping the generation and dropping published code under the same
  // lock the workers publish under: a worker finishing now either sees
  // the new generation (and drops its result) or published before the
  // invalidate (and its object is erased here).
  std::lock_guard<std::mutex> L(SpecMutex);
  ++SourceGeneration[Name];
  // New source gets a fresh chance: the quarantine recorded a crash of the
  // old generation's compile.
  Quarantined.erase(Name);
  Repo.invalidate(Name);
  // Native versions compiled from the old source must not serve the new
  // one. Warm .mjn entries stay pending: like PendingWarm above them,
  // they carry the source hash they were compiled from, and adoption
  // discards the stale ones itself.
  std::string Prefix = Name + '\0';
  for (auto It = NativeVersions.begin(); It != NativeVersions.end();) {
    if (It->first.rfind(Prefix, 0) == 0)
      It = NativeVersions.erase(It);
    else
      ++It;
  }
}

void Engine::noteCompileFailure(const std::string &Name, uint64_t Gen) {
  std::lock_guard<std::mutex> L(SpecMutex);
  Spec.Failed.inc();
  if (SourceGeneration[Name] == Gen)
    Quarantined[Name] = Gen;
}

bool Engine::isQuarantined(const std::string &Name) const {
  std::lock_guard<std::mutex> L(SpecMutex);
  return Quarantined.count(Name) != 0;
}

size_t Engine::quarantineCount() const {
  std::lock_guard<std::mutex> L(SpecMutex);
  return Quarantined.size();
}

void Engine::requestInterrupt() {
  if (Opts.PerSessionLimits)
    IntrToken.request();
  else
    exec::requestInterrupt();
}

void Engine::clearInterrupt() {
  if (Opts.PerSessionLimits)
    IntrToken.clear();
  else
    exec::clearInterrupt();
}

void Engine::recordFirstResult() {
  if (CallDepth != 1)
    return;
  std::lock_guard<std::mutex> L(SpecMutex);
  if (TimeToFirstResultSeconds < 0)
    TimeToFirstResultSeconds = BirthTimer.seconds();
}

bool Engine::precompileGeneric(const std::string &Name, size_t Arity) {
  return compileAndInsert(Name, TypeSignature::generic(Arity),
                          CodeGenMode::Generic,
                          CompiledObject::Origin::Generic) != nullptr;
}

TypeSignature Engine::speculated(const std::string &Name) {
  LoadedFunction *LF = find(Name);
  if (!LF)
    return TypeSignature();
  return speculateSignature(*compileView(*LF), Opts.Infer);
}

//===----------------------------------------------------------------------===//
// Observability
//===----------------------------------------------------------------------===//

const std::string &Engine::observeSignature(LoadedFunction &LF,
                                            const TypeSignature &Sig) {
  for (LoadedFunction::SigObs &O : LF.Obs) {
    if (!(O.Sig == Sig))
      continue;
    ++O.Count;
    if (O.Count > LF.BestCount) {
      size_t Idx = static_cast<size_t>(&O - LF.Obs.data());
      LF.BestCount = O.Count;
      if (Idx != LF.BestIdx) {
        // A different signature overtook the best: publish it for the
        // workers. Same-signature bumps skip this, so the steady state
        // pays no extra locking.
        LF.BestIdx = Idx;
        std::lock_guard<std::mutex> L(SpecMutex);
        ObservedSigByFn[LF.F->name()] = O.Sig;
      }
    }
    return O.Str;
  }
  if (LF.Obs.size() < obs::FunctionProfiles::kMaxSignatures) {
    LF.Obs.push_back({Sig, Sig.str(), 1});
    LoadedFunction::SigObs &O = LF.Obs.back();
    if (O.Count > LF.BestCount) {
      LF.BestCount = O.Count;
      LF.BestIdx = LF.Obs.size() - 1;
      std::lock_guard<std::mutex> L(SpecMutex);
      ObservedSigByFn[LF.F->name()] = O.Sig;
    }
    return O.Str;
  }
  // Megamorphic overflow: past the cap the rendering is not cached (the
  // profile layer folds these calls into its own overflow counter anyway).
  LF.OverflowSig = Sig.str();
  return LF.OverflowSig;
}

bool Engine::observedSignatureFor(const std::string &Name, size_t Arity,
                                  TypeSignature &Out) const {
  std::lock_guard<std::mutex> L(SpecMutex);
  auto It = ObservedSigByFn.find(Name);
  if (It == ObservedSigByFn.end() || It->second.size() != Arity)
    return false;
  Out = It->second;
  return true;
}

void Engine::seedObservedSignatures(const std::string &Name,
                                    LoadedFunction &LF) {
  auto It = PendingProfileSigs.find(Name);
  if (It == PendingProfileSigs.end() || LF.F->isScript())
    return;
  size_t Arity = LF.F->params().size();
  for (const RepoStore::ProfileSig &PS : It->second) {
    // Persisted signatures whose arity drifted from the live source are
    // stale; dropping them here means they can never win best-observed.
    if (PS.Sig.size() != Arity ||
        LF.Obs.size() >= obs::FunctionProfiles::kMaxSignatures)
      continue;
    LF.Obs.push_back({PS.Sig, PS.SigStr, PS.Count});
    if (PS.Count > LF.BestCount) {
      LF.BestCount = PS.Count;
      LF.BestIdx = LF.Obs.size() - 1;
    }
  }
  if (LF.BestIdx != SIZE_MAX) {
    std::lock_guard<std::mutex> L(SpecMutex);
    ObservedSigByFn[Name] = LF.Obs[LF.BestIdx].Sig;
  }
}

void Engine::saveProfilesToStore() {
  if (!ProfileStore)
    return;
  // Compose the persisted summaries from the profile layer's counts (live
  // plus what was merged at startup) and the engine-side signature caches,
  // which hold the TypeSignature for each rendered string. Untyped
  // invocations (scripts, InterpretOnly) carry counts but no signature.
  std::vector<RepoStore::ProfileSummary> Out;
  for (obs::FunctionProfile &P : Profiles.snapshot()) {
    RepoStore::ProfileSummary S;
    S.Name = P.Name;
    S.Invocations = P.Invocations;
    S.OtherSignatures = P.OtherSignatures;
    const LoadedFunction *LF = find(P.Name);
    auto PendingIt = PendingProfileSigs.find(P.Name);
    for (const auto &[Str, Count] : P.ArgSignatures) {
      if (Str == UntypedSig)
        continue;
      TypeSignature Sig;
      bool Found = false;
      if (LF)
        for (const LoadedFunction::SigObs &O : LF->Obs)
          if (O.Str == Str) {
            Sig = O.Sig;
            Found = true;
            break;
          }
      if (!Found && PendingIt != PendingProfileSigs.end())
        for (const RepoStore::ProfileSig &PS : PendingIt->second)
          if (PS.SigStr == Str) {
            Sig = PS.Sig;
            Found = true;
            break;
          }
      if (Found && S.Sigs.size() < RepoStore::kProfileTopK)
        S.Sigs.push_back({Sig, Str, Count});
    }
    if (S.Invocations == 0 && S.Sigs.empty())
      continue;
    Out.push_back(std::move(S));
  }
  ProfileStore->saveProfiles(Out);
}

obs::MetricsSnapshot Engine::sampleMetrics() {
  // Point-in-time levels live in their components; mirror them into
  // gauges at snapshot time instead of threading writes through the hot
  // paths.
  RepoStoreStats SS = repoStoreStats();
  Metrics.gauge("repo.store.saved").set(int64_t(SS.Saved));
  Metrics.gauge("repo.store.save_failures").set(int64_t(SS.SaveFailures));
  Metrics.gauge("repo.store.loaded").set(int64_t(SS.Loaded));
  Metrics.gauge("repo.store.quarantined").set(int64_t(SS.Quarantined));
  Metrics.gauge("repo.store.skewed").set(int64_t(SS.Skewed));
  Metrics.gauge("repo.store.stale_source").set(int64_t(SS.StaleSource));
  Metrics.gauge("repo.store.adopted").set(int64_t(SS.Adopted));
  Metrics.gauge("repo.store.swept_temps").set(int64_t(SS.SweptTemps));
  Metrics.gauge("repo.store.profiles_saved").set(int64_t(SS.ProfilesSaved));
  Metrics.gauge("repo.store.profile_save_failures")
      .set(int64_t(SS.ProfileSaveFailures));
  Metrics.gauge("repo.store.profiles_loaded").set(int64_t(SS.ProfilesLoaded));
  Metrics.gauge("repo.store.profiles_quarantined")
      .set(int64_t(SS.ProfilesQuarantined));
  Metrics.gauge("repo.store.profiles_skewed").set(int64_t(SS.ProfilesSkewed));
  Metrics.gauge("repo.store.native_saved").set(int64_t(SS.NativeSaved));
  Metrics.gauge("repo.store.native_save_failures")
      .set(int64_t(SS.NativeSaveFailures));
  Metrics.gauge("repo.store.native_loaded").set(int64_t(SS.NativeLoaded));
  Metrics.gauge("repo.store.native_quarantined")
      .set(int64_t(SS.NativeQuarantined));
  Metrics.gauge("repo.store.native_skewed").set(int64_t(SS.NativeSkewed));
  Metrics.gauge("repo.store.native_untrusted").set(int64_t(SS.NativeUntrusted));
  Metrics.gauge("repo.objects").set(int64_t(Repo.totalObjects()));
  Metrics.gauge("engine.quarantined").set(int64_t(quarantineCount()));
  par::ComputePoolSample CP = par::sampleComputePool();
  Metrics.gauge("pool.compute.threads").set(int64_t(CP.Threads));
  Metrics.gauge("pool.compute.enqueued").set(int64_t(CP.TasksEnqueued));
  Metrics.gauge("pool.compute.finished").set(int64_t(CP.TasksFinished));
  Metrics.gauge("pool.compute.queue_depth").set(CP.QueueDepth);
  // Fault-injection site counters, so a fault-sweep run can report which
  // sites actually fired (all zero when no schedule is armed).
  for (unsigned S = 0; S != faults::kNumSites; ++S) {
    auto Site = static_cast<faults::Site>(S);
    faults::SiteStats FS = faults::stats(Site);
    std::string Base = std::string("faults.") + faults::siteName(Site);
    Metrics.gauge(Base + ".hits").set(int64_t(FS.Hits));
    Metrics.gauge(Base + ".fired").set(int64_t(FS.Fired));
  }
  return Metrics.snapshot();
}

std::string Engine::statsReport() {
  sampleMetrics();
  std::string Out = Metrics.renderTable();
  Out += "\n";
  Out += Profiles.renderTable();
  return Out;
}

std::string Engine::metricsJson() {
  sampleMetrics();
  std::string Out = "{\"metrics\": ";
  Out += Metrics.json();
  Out += ", \"profiles\": ";
  Out += Profiles.json();
  Out += "}";
  return Out;
}


//===----------------------------------------------------------------------===//
// Invocation
//===----------------------------------------------------------------------===//

namespace {
struct DepthGuard {
  unsigned &Depth;
  explicit DepthGuard(unsigned &Depth) : Depth(Depth) { ++Depth; }
  ~DepthGuard() { --Depth; }
};
} // namespace

std::vector<ValuePtr> Engine::callFunction(const std::string &Name,
                                           std::vector<ValuePtr> Args,
                                           size_t NumOuts, SourceLoc Loc) {
  LoadedFunction *LF = find(Name);
  if (!LF)
    throw MatlabError(format("undefined function '%s'", Name.c_str()), Loc);
  if (!LF->F->isScript() && Args.size() > LF->F->params().size())
    throw MatlabError(format("too many input arguments to '%s'", Name.c_str()),
                      Loc);
  if (NumOuts > std::max<size_t>(LF->F->outs().size(), 1))
    throw MatlabError(format("too many output arguments from '%s'",
                             Name.c_str()),
                      Loc);
  if (CallDepth >= Opts.MaxCallDepth)
    throw MatlabError("maximum recursion depth exceeded", Loc);
  // A fresh top-level invocation gets a fresh op budget; nested calls
  // (including scripts' callees) spend their caller's. Per-session limits
  // install the engine's own memory account and interrupt token for the
  // whole invocation (parallelFor propagates both into its chunks).
  std::optional<mem::ScopedAccount> AcctScope;
  std::optional<exec::ScopedToken> TokenScope;
  if (CallDepth == 0) {
    Ctx.Exec.reset();
    if (Opts.PerSessionLimits) {
      AcctScope.emplace(&MemAccount);
      TokenScope.emplace(&IntrToken);
    }
  }
  DepthGuard Guard(CallDepth);

  if (Opts.Policy == CompilePolicy::InterpretOnly || LF->F->isScript()) {
    Profiles.recordInvocation(Name, UntypedSig);
    auto R = interpretCall(*LF, std::move(Args), NumOuts);
    recordFirstResult();
    return R;
  }

  TypeSignature Sig = TypeSignature::ofValues(Args);
  Profiles.recordInvocation(Name, observeSignature(*LF, Sig));
  CompiledObjectPtr Obj = Repo.lookup(Name, Sig);
  if (Obj)
    LF->SigMissStreak = 0;
  if (!Obj && Opts.Policy == CompilePolicy::Speculative &&
      speculationInFlight(Name)) {
    // A background compile of this function is still in flight: interpret
    // this one invocation instead of duplicating the compiler's work on
    // the hot path; the next call picks up the published object. An actual
    // invocation is the strongest priority signal we have, so if the
    // compile is still sitting in the queue, move it to the front - the
    // snooper enqueues in discovery order, not in the order the user ends
    // up calling things.
    promoteSpeculation(Name);
    InterpFallbacks.inc();
    Spec.InFlightInterpreted.inc();
    auto R = interpretCall(*LF, std::move(Args), NumOuts);
    recordFirstResult();
    return R;
  }
  if (!Obj) {
    // Miss: compile according to policy. When a version with the same
    // skeleton already exists (recursive calls with different constants),
    // compile the generalized signature so the repository converges.
    TypeSignature CompileSig = Sig;
    TypeSignature General = Sig.generalized();
    if (Repo.versionCount(Name) != 0 && !(General == Sig) &&
        Sig.safeFor(General))
      CompileSig = General;

    // Repeated misses against existing compiled versions mean speculation
    // guessed wrong for what the user actually calls: re-speculate on the
    // newly observed signature (once per distinct signature, so a stable
    // pattern does not churn the background queue). The JIT below still
    // serves this invocation; the background compile upgrades the hot
    // signature to optimized code.
    if (Opts.Policy == CompilePolicy::Speculative && SpecPool &&
        Repo.versionCount(Name) != 0 &&
        ++LF->SigMissStreak >= kRespeculateMissStreak &&
        (!LF->RespecValid || !(LF->RespecSig == CompileSig))) {
      LF->RespecSig = CompileSig;
      LF->RespecValid = true;
      speculateAsync(Name, &CompileSig);
    }

    switch (Opts.Policy) {
    case CompilePolicy::Jit:
    case CompilePolicy::Speculative:
      Obj = compileAndInsert(Name, CompileSig, CodeGenMode::Jit,
                             CompiledObject::Origin::Jit);
      if (Obj)
        JitCompiles.inc();
      break;
    case CompilePolicy::Falcon:
      Obj = compileAndInsert(Name, CompileSig, CodeGenMode::Optimized,
                             CompiledObject::Origin::Batch);
      break;
    case CompilePolicy::Mcc:
      Obj = compileAndInsert(Name, TypeSignature::generic(Args.size()),
                             CodeGenMode::Generic,
                             CompiledObject::Origin::Generic);
      break;
    case CompilePolicy::InterpretOnly:
      break;
    }
  }
  if (!Obj) {
    InterpFallbacks.inc();
    auto R = interpretCall(*LF, std::move(Args), NumOuts);
    recordFirstResult();
    return R;
  }
  // Obj is a shared handle: even if a background recompile replaces this
  // version in the repository mid-execution, the object stays alive.
  auto R = runCompiled(*Obj, std::move(Args), NumOuts);
  recordFirstResult();
  return R;
}

bool Engine::knowsFunction(const std::string &Name) {
  return Functions.count(Name) != 0;
}

std::string Engine::nativeKey(const std::string &Name,
                              const TypeSignature &Sig) {
  ser::ByteWriter W;
  ser::writeTypeSignature(W, Sig);
  return Name + '\0' +
         format("%016llx",
                static_cast<unsigned long long>(hashing::fnv1a(W.bytes())));
}

std::vector<ValuePtr> Engine::NativeHostBridge::callFunction(
    const std::string &Name, std::vector<ValuePtr> Args, size_t NumOuts) {
  return E->callFunction(Name, std::move(Args), NumOuts, SourceLoc());
}

std::shared_ptr<native::NativeModule>
Engine::nativeModuleFor(const CompiledObject &Obj) {
  std::string Key = nativeKey(Obj.FunctionName, Obj.Sig);
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    auto It = NativeVersions.find(Key);
    if (It != NativeVersions.end())
      return It->second.St == NativeVersion::State::Ready ? It->second.Module
                                                          : nullptr;
  }
  if (!NativeComp->available())
    return nullptr;
  // Promotion is profile-guided: the function must have earned the
  // hotness threshold (counting invocations persisted from previous
  // sessions, so a warm start re-promotes immediately).
  if (Profiles.invocations(Obj.FunctionName) < Opts.NativeHotThreshold)
    return nullptr;
  std::shared_ptr<const IRFunction> Code = Obj.Code;
  {
    std::unique_lock<std::mutex> L(SpecMutex);
    if (Draining)
      return nullptr;
    auto [It, New] = NativeVersions.emplace(Key, NativeVersion());
    if (!New)
      return It->second.St == NativeVersion::State::Ready ? It->second.Module
                                                          : nullptr;
    // Compile off-thread when a pool exists: the invocation that crossed
    // the threshold still runs on the VM while cc works in the
    // background (the paper's "the user never waits", applied to a
    // compiler we do not control). The id bookkeeping mirrors
    // saveToStore so shutdown can cancel queued tasks.
    if (SpecPool && !Draining) {
      ++PendingNative;
      auto IdBox = std::make_shared<ThreadPool::TaskId>(0);
      try {
        ThreadPool::TaskId Id = SpecPool->enqueue(
            [this, Name = Obj.FunctionName, Sig = Obj.Sig, Code, IdBox] {
              {
                std::lock_guard<std::mutex> L2(SpecMutex);
                QueuedNativeIds.erase(*IdBox);
              }
              buildNative(Name, Sig, Code);
              {
                std::lock_guard<std::mutex> L2(SpecMutex);
                --PendingNative;
              }
              SpecIdleCv.notify_all();
            });
        *IdBox = Id;
        QueuedNativeIds.insert(Id);
        return nullptr;
      } catch (...) {
        // Injected pool-enqueue fault: fall through to the synchronous
        // path below.
        --PendingNative;
      }
    }
  }
  buildNative(Obj.FunctionName, Obj.Sig, Code);
  std::lock_guard<std::mutex> L(SpecMutex);
  auto It = NativeVersions.find(Key);
  if (It != NativeVersions.end() && It->second.St == NativeVersion::State::Ready)
    return It->second.Module;
  return nullptr;
}

void Engine::buildNative(const std::string &Name, const TypeSignature &Sig,
                         std::shared_ptr<const IRFunction> Code) {
  std::string Key = nativeKey(Name, Sig);
  std::shared_ptr<native::NativeModule> Mod;
  std::vector<uint8_t> So;
  try {
    std::string CSource = emitCSource(*Code, Sig);
    So = NativeComp->compile(CSource, Name);
    Mod = native::NativeCompiler::load(So, Name, Code->NumOuts);
  } catch (...) {
    // Compiler crash, timeout, -Werror rejection, loader refusal,
    // injected fault: the version pins to the VM tier, and the engine
    // does not retry until the source changes. The native tier must
    // never take the engine down or change observable results.
    NativeFailures.inc();
    obs::traceInstant("native.fail", "native", Name);
    std::lock_guard<std::mutex> L(SpecMutex);
    NativeVersions[Key].St = NativeVersion::State::Failed;
    return;
  }
  NativeCompiles.inc();
  obs::traceInstant("native.promote", "native", Name);
  uint32_t NumOuts = static_cast<uint32_t>(Mod->numOuts());
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    NativeVersion &NV = NativeVersions[Key];
    NV.St = NativeVersion::State::Ready;
    NV.Module = std::move(Mod);
  }
  // Persist the .so beside the .mjo so the next session warm-starts into
  // machine code with zero compiler invocations. Same erased-function
  // tombstone discipline as runStoreSave.
  if (!Store)
    return;
  uint64_t SrcHash;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    if (ErasedFns.count(Name))
      return;
    auto It = SourceHashByFn.find(Name);
    if (It == SourceHashByFn.end())
      return;
    SrcHash = It->second;
  }
  Store->saveNative(Name, Sig, NumOuts,
                    std::string(So.begin(), So.end()), SrcHash);
  bool Erased;
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    Erased = ErasedFns.count(Name) != 0;
  }
  if (Erased)
    Store->eraseNative(Name);
}

void Engine::quarantineNative(const std::string &Name,
                              const TypeSignature &Sig) {
  {
    std::lock_guard<std::mutex> L(SpecMutex);
    NativeVersion &NV = NativeVersions[nativeKey(Name, Sig)];
    NV.St = NativeVersion::State::Failed;
    NV.Module.reset();
  }
  // Drop the on-disk entries too: code that failed at run time must not
  // resurrect on the next warm start.
  if (Store)
    Store->eraseNative(Name);
  obs::traceInstant("native.quarantine", "native", Name);
}

bool Engine::runNativeTier(const CompiledObject &Obj,
                           const std::vector<ValuePtr> &Args, size_t NumOuts,
                           const Rng &SavedRand, size_t OutputMark,
                           std::vector<ValuePtr> &Out) {
  std::shared_ptr<native::NativeModule> Mod = nativeModuleFor(Obj);
  if (!Mod)
    return false;
  // Genuine MATLAB errors propagate exactly as from the VM; everything
  // else the tier can fail with - deopt guards, injected faults -
  // restores the snapshots and degrades to the VM, so the tiers are
  // distinguishable only by speed.
  try {
    if (CallDepth == 1) {
      ScopedPhaseTimer T(Phases, Phase::Execute);
      Timer Run;
      Out = native::runNative(Mod->entry(), Obj.FunctionName, Mod->numOuts(),
                              Ctx, NativeHostAdapter, Args, NumOuts);
      Profiles.recordNativeRun(Obj.FunctionName, Run.seconds());
      // Counted only after the call returns: deopts and quarantined runs
      // must not inflate native.hits relative to native.deopts/failures.
      NativeHits.inc();
      return true;
    }
    Out = native::runNative(Mod->entry(), Obj.FunctionName, Mod->numOuts(),
                            Ctx, NativeHostAdapter, Args, NumOuts);
    NativeHits.inc();
    return true;
  } catch (const DeoptError &) {
    // An optimistic guard failed inside machine code. Quarantine the
    // module and fall back to the VM: it re-runs with identical state,
    // and its own DeoptError handling performs the pessimistic recompile
    // when the guard fails there too.
    NativeDeopts.inc();
    quarantineNative(Obj.FunctionName, Obj.Sig);
    Ctx.Rand = SavedRand;
    Ctx.truncateOutput(OutputMark);
  } catch (const MatlabError &) {
    // The program's own error (bad subscript, undefined variable,
    // interrupt, resource limit): the VM would raise it identically.
    throw;
  } catch (...) {
    // Injected fault or native-side surprise: never let the tier take
    // the engine down - quarantine and serve from the VM.
    NativeFailures.inc();
    quarantineNative(Obj.FunctionName, Obj.Sig);
    Ctx.Rand = SavedRand;
    Ctx.truncateOutput(OutputMark);
  }
  return false;
}

std::vector<ValuePtr> Engine::runCompiled(const CompiledObject &Obj,
                                          std::vector<ValuePtr> Args,
                                          size_t NumOuts) {
  // Snapshot the PRNG and buffered output so a deoptimization retry does
  // identical work.
  Rng SavedRand = Ctx.Rand;
  size_t OutputMark = Ctx.output().size();
  // Third tier: machine code when this (function, signature) version has
  // been promoted. Outlined (never inlined) so the tier's locals and
  // exception tables stay off runCompiled's frame - this function is on
  // the VM's call-recursion cycle and its frame size bounds how deep the
  // MaxCallDepth guard can actually be reached.
  if (NativeComp) {
    std::vector<ValuePtr> NativeOut;
    if (runNativeTier(Obj, Args, NumOuts, SavedRand, OutputMark, NativeOut))
      return NativeOut;
  }
  try {
    if (CallDepth == 1) {
      ScopedPhaseTimer T(Phases, Phase::Execute);
      Timer Run;
      auto R = Machine->run(*Obj.Code, Args, NumOuts);
      double Seconds = Run.seconds();
      Inst.VmRunSeconds->observe(Seconds);
      Profiles.recordVmRun(Obj.FunctionName, Seconds);
      return R;
    }
    return Machine->run(*Obj.Code, Args, NumOuts);
  } catch (const DeoptError &) {
    // An optimistic guard failed (sqrt of a negative value, ...): undo the
    // attempt, replace the compiled version with a pessimistic one, retry.
    Deopts.inc();
    Profiles.recordDeopt(Obj.FunctionName);
    obs::traceInstant("deopt", "engine", Obj.FunctionName);
    // Repeated deopts say the speculated types were wrong for the live
    // call pattern. When the observed signature differs from the one that
    // deopted, queue an optimized recompile for it; same-signature deopts
    // are already handled by the pessimistic replacement below (and must
    // not be re-speculated optimistically, which would just deopt again).
    if (Opts.Policy == CompilePolicy::Speculative && SpecPool) {
      if (LoadedFunction *DLF = find(Obj.FunctionName))
        if (++DLF->DeoptCount == kRespeculateDeopts) {
          TypeSignature Observed;
          if (observedSignatureFor(Obj.FunctionName, Obj.Sig.size(),
                                   Observed) &&
              !(Observed == Obj.Sig))
            speculateAsync(Obj.FunctionName, &Observed);
        }
    }
    Ctx.Rand = SavedRand;
    Ctx.truncateOutput(OutputMark);
    std::string Name = Obj.FunctionName;
    TypeSignature Sig = Obj.Sig;
    CodeGenMode Mode = Obj.Mode;
    CompiledObject::Origin From = Obj.From;
    CompiledObjectPtr Repl =
        compileAndInsert(Name, Sig, Mode, From, /*Optimistic=*/false);
    if (!Repl) {
      InterpFallbacks.inc();
      LoadedFunction *LF = find(Name);
      if (!LF)
        throw MatlabError("deoptimization of unknown function '" + Name + "'");
      return interpretCall(*LF, std::move(Args), NumOuts);
    }
    // Pessimistic code selects no optimistic guards; a second DeoptError
    // cannot occur from this object.
    if (CallDepth == 1) {
      ScopedPhaseTimer T(Phases, Phase::Execute);
      Timer Run;
      auto R = Machine->run(*Repl->Code, std::move(Args), NumOuts);
      double Seconds = Run.seconds();
      Inst.VmRunSeconds->observe(Seconds);
      Profiles.recordVmRun(Repl->FunctionName, Seconds);
      return R;
    }
    return Machine->run(*Repl->Code, std::move(Args), NumOuts);
  }
}

std::vector<ValuePtr> Engine::interpretCall(LoadedFunction &LF,
                                            std::vector<ValuePtr> Args,
                                            size_t NumOuts) {
  if (CallDepth == 1) {
    ScopedPhaseTimer T(Phases, Phase::Execute);
    Timer Run;
    auto R = Interp->run(*LF.F, std::move(Args), NumOuts);
    double Seconds = Run.seconds();
    Inst.InterpRunSeconds->observe(Seconds);
    Profiles.recordInterpRun(LF.F->name(), Seconds);
    return R;
  }
  return Interp->run(*LF.F, std::move(Args), NumOuts);
}

//===----------------------------------------------------------------------===//
// Interactive scripts
//===----------------------------------------------------------------------===//

std::string Engine::runScript(const std::string &Source) {
  obs::TraceScope Span("script", "engine");
  size_t OutputMark = Ctx.output().size();

  std::string Name = format("session%zu", Modules.size());
  Diags.clear();
  std::unique_ptr<Module> Mod;
  {
    obs::TraceScope ParseSpan("parse", "compile", Name);
    ScopedPhaseTimer T(Phases, Phase::Parse);
    Mod = parseModule(Name, Source, SM, Diags);
  }
  if (!Mod) {
    std::string Err = Diags.render(SM);
    Diags.clear();
    return "??? " + Err;
  }
  Function *Script = Mod->mainFunction();
  if (!Script->isScript()) {
    // Defining functions interactively: register them instead of running.
    // Hibernation replays these definitions verbatim, so record the text
    // (once per distinct text; re-submitting an identical definition is
    // idempotent and replaying the survivor in order reaches the same
    // final state).
    bool Known = false;
    for (const auto &D : InteractiveDefs)
      Known |= D.Text == Source;
    if (!Known)
      InteractiveDefs.push_back({Name, Source});
    Modules.push_back(std::move(Mod));
    Module *M = Modules.back().get();
    uint64_t SrcHash = hashing::fnv1a(Source);
    for (const auto &F : M->functions()) {
      LoadedFunction LF;
      LF.F = F.get();
      LF.M = M;
      LF.Info = disambiguate(*F, *M);
      invalidateFunction(F->name());
      Functions[F->name()] = std::move(LF);
      seedObservedSignatures(F->name(), Functions[F->name()]);
      {
        std::lock_guard<std::mutex> L(SpecMutex);
        SourceHashByFn[F->name()] = SrcHash;
      }
      adoptWarmEntries(F->name(), SrcHash);
    }
    return "";
  }

  // Pre-existing workspace variables are in scope.
  std::vector<std::string> Predefined;
  for (const auto &[VarName, V] : WorkspaceByName)
    if (V)
      Predefined.push_back(VarName);
  std::unique_ptr<FunctionInfo> Info;
  {
    ScopedPhaseTimer T(Phases, Phase::Disambiguate);
    Info = disambiguate(*Script, *Mod, &Predefined);
  }

  // Map workspace values into the script's slots.
  std::vector<ValuePtr> Slots(Info->Symbols.numSlots());
  for (unsigned S = 0; S != Info->Symbols.numSlots(); ++S) {
    auto It = WorkspaceByName.find(Info->Symbols.nameOfSlot(S));
    if (It != WorkspaceByName.end())
      Slots[S] = It->second;
  }

  try {
    ScopedPhaseTimer T(Phases, Phase::Execute);
    // The script itself is a top-level invocation: it gets a fresh op
    // budget (and, per-session, the engine's memory account and interrupt
    // token), and the depth guard keeps callFunction (depth >= 1 from
    // here) from resetting the budget mid-script.
    Ctx.Exec.reset();
    std::optional<mem::ScopedAccount> AcctScope;
    std::optional<exec::ScopedToken> TokenScope;
    if (CallDepth == 0 && Opts.PerSessionLimits) {
      AcctScope.emplace(&MemAccount);
      TokenScope.emplace(&IntrToken);
    }
    DepthGuard Guard(CallDepth);
    Interp->runScript(*Script, Slots);
    recordFirstResult();
  } catch (const MatlabError &E) {
    Ctx.print("??? " + E.message() + "\n");
  }

  // Write the workspace back.
  for (unsigned S = 0; S != Info->Symbols.numSlots(); ++S) {
    const std::string &VarName = Info->Symbols.nameOfSlot(S);
    if (Slots[S])
      WorkspaceByName[VarName] = Slots[S];
    else
      WorkspaceByName.erase(VarName);
  }
  Modules.push_back(std::move(Mod));

  return Ctx.output().substr(OutputMark);
}

ValuePtr Engine::workspaceVar(const std::string &Name) const {
  auto It = WorkspaceByName.find(Name);
  return It == WorkspaceByName.end() ? nullptr : It->second;
}

ser::WorkspaceImage Engine::workspaceImage() const {
  ser::WorkspaceImage W;
  W.Sources = InteractiveDefs;
  W.Vars.reserve(WorkspaceByName.size());
  for (const auto &[Name, V] : WorkspaceByName)
    if (V)
      W.Vars.push_back({Name, V});
  std::sort(W.Vars.begin(), W.Vars.end(),
            [](const ser::WorkspaceImage::VarDef &A,
               const ser::WorkspaceImage::VarDef &B) { return A.Name < B.Name; });
  return W;
}

void Engine::restoreWorkspaceImage(const ser::WorkspaceImage &W) {
  // Replaying through runScript re-registers the functions exactly the way
  // the original definitions did (and re-records them for the next
  // hibernation); the text parsed when it was snapshotted, and the decode
  // ladder vouches for the bytes, so a parse failure here means a writer
  // bug - surface it rather than restore half a session.
  for (const ser::WorkspaceImage::SourceDef &S : W.Sources) {
    std::string Out = runScript(S.Text);
    if (Out.compare(0, 4, "??? ") == 0)
      throw ser::SerializeError("snapshotted definition failed to replay: " +
                                Out.substr(4));
  }
  for (const ser::WorkspaceImage::VarDef &Var : W.Vars)
    if (Var.V)
      WorkspaceByName[Var.Name] = Var.V;
}
