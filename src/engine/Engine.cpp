//===- engine/Engine.cpp - The MaJIC engine --------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "analysis/Inliner.h"
#include "infer/Speculate.h"
#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace majic;

const char *majic::compilePolicyName(CompilePolicy P) {
  switch (P) {
  case CompilePolicy::InterpretOnly:
    return "interpret";
  case CompilePolicy::Mcc:
    return "mcc";
  case CompilePolicy::Falcon:
    return "falcon";
  case CompilePolicy::Jit:
    return "jit";
  case CompilePolicy::Speculative:
    return "spec";
  }
  majic_unreachable("invalid policy");
}

Engine::Engine(EngineOptions OptsIn) : Opts(std::move(OptsIn)) {
  Ctx.Rand.reseed(Opts.RandSeed);
  Machine = std::make_unique<VM>(Ctx, *this);
  Interp = std::make_unique<Interpreter>(Ctx, *this);
}

Engine::~Engine() = default;

//===----------------------------------------------------------------------===//
// Loading
//===----------------------------------------------------------------------===//

bool Engine::addSource(const std::string &Name, const std::string &Source) {
  // Diagnostics report the most recent load only; stale errors from an
  // earlier bad file must not poison this parse.
  Diags.clear();
  std::unique_ptr<Module> Mod;
  {
    ScopedPhaseTimer T(Phases, Phase::Parse);
    Mod = parseModule(Name, Source, SM, Diags);
  }
  if (!Mod)
    return false;

  Module *M = Mod.get();
  Modules.push_back(std::move(Mod));
  ScopedPhaseTimer T(Phases, Phase::Disambiguate);
  LastLoadedNames.clear();
  for (const auto &F : M->functions()) {
    LoadedFunction LF;
    LF.F = F.get();
    LF.M = M;
    LF.Info = disambiguate(*F, *M);
    // New source shadows any previous definition; drop stale code.
    Repo.invalidate(F->name());
    Functions[F->name()] = std::move(LF);
    LastLoadedNames.push_back(F->name());
  }
  return true;
}

bool Engine::loadFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), format("cannot open '%s'", Path.c_str()));
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  // Module name = basename without extension.
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  if (endsWith(Base, ".m"))
    Base = Base.substr(0, Base.size() - 2);
  return addSource(Base, SS.str());
}

void Engine::watchDirectory(const std::string &Dir) {
  Snooper.watchDirectory(Dir);
}

unsigned Engine::snoop() {
  unsigned Loaded = 0;
  for (const SourceSnooper::Change &C : Snooper.scan()) {
    if (!loadFile(C.Path))
      continue;
    ++Loaded;
    if (Opts.Policy == CompilePolicy::Speculative)
      for (const std::string &Fn : LastLoadedNames)
        precompileSpeculative(Fn);
  }
  return Loaded;
}

//===----------------------------------------------------------------------===//
// Compilation plumbing
//===----------------------------------------------------------------------===//

Engine::LoadedFunction *Engine::find(const std::string &Name) {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : &It->second;
}

FunctionInfo *Engine::compileView(LoadedFunction &LF) {
  if (!Opts.InlineCalls)
    return LF.Info.get();
  if (LF.InlinedInfo)
    return LF.InlinedInfo.get();

  ScopedPhaseTimer T(Phases, Phase::Disambiguate);
  FunctionResolver Resolve = [this](const std::string &Callee) -> const Function * {
    LoadedFunction *C = find(Callee);
    return C ? C->F : nullptr;
  };
  LF.InlinedF = inlineFunctionCalls(*LF.F, LF.M->context(), Resolve);
  // Inlining invalidates the symbol table (Section 2: "which then
  // necessitates the re-building of the symbol table").
  LF.InlinedInfo = disambiguate(*LF.InlinedF, *LF.M);
  return LF.InlinedInfo.get();
}

const CompiledObject *Engine::compileAndInsert(const std::string &Name,
                                               const TypeSignature &Sig,
                                               CodeGenMode Mode,
                                               CompiledObject::Origin From,
                                               bool Optimistic) {
  LoadedFunction *LF = find(Name);
  if (!LF || LF->F->isScript())
    return nullptr;
  FunctionInfo *FI = compileView(*LF);
  if (FI->HasAmbiguousSymbols)
    return nullptr;

  Timer Total;
  CompileRequest Req;
  Req.FI = FI;
  Req.Sig = Sig;
  Req.Mode = Mode;
  Req.Platform = Opts.Platform;
  Req.Infer = Opts.Infer;
  Req.Infer.OptimisticRealMath &= Optimistic;
  Req.RegAlloc = Opts.RegAlloc;
  Req.UnrollSmallVectors =
      Mode == CodeGenMode::Jit ? Opts.Platform.JitUnrollsSmallVectors : true;
  std::optional<CompileResult> Result = compileFunction(Req);
  if (!Result)
    return nullptr;

  Phases.add(Phase::TypeInference, Result->TypeInferSeconds);
  Phases.add(Phase::CodeGen, Result->CodeGenSeconds);

  CompiledObject Obj;
  Obj.FunctionName = Name;
  Obj.Sig = Sig;
  Obj.Code = std::move(Result->Code);
  Obj.Mode = Mode;
  Obj.CompileSeconds = Total.seconds();
  Obj.From = From;
  Repo.insert(std::move(Obj));
  return Repo.lookup(Name, Sig);
}

bool Engine::precompileWithArgs(const std::string &Name,
                                const std::vector<ValuePtr> &SampleArgs) {
  return compileAndInsert(Name, TypeSignature::ofValues(SampleArgs),
                          CodeGenMode::Optimized,
                          CompiledObject::Origin::Batch) != nullptr;
}

bool Engine::precompileSpeculative(const std::string &Name) {
  LoadedFunction *LF = find(Name);
  if (!LF || LF->F->isScript())
    return false;
  FunctionInfo *FI = compileView(*LF);
  if (FI->HasAmbiguousSymbols)
    return false;
  TypeSignature Spec = speculateSignature(*FI, Opts.Infer);
  return compileAndInsert(Name, Spec, CodeGenMode::Optimized,
                          CompiledObject::Origin::Speculative) != nullptr;
}

bool Engine::precompileGeneric(const std::string &Name, size_t Arity) {
  return compileAndInsert(Name, TypeSignature::generic(Arity),
                          CodeGenMode::Generic,
                          CompiledObject::Origin::Generic) != nullptr;
}

TypeSignature Engine::speculated(const std::string &Name) {
  LoadedFunction *LF = find(Name);
  if (!LF)
    return TypeSignature();
  return speculateSignature(*compileView(*LF), Opts.Infer);
}

//===----------------------------------------------------------------------===//
// Invocation
//===----------------------------------------------------------------------===//

namespace {
struct DepthGuard {
  unsigned &Depth;
  explicit DepthGuard(unsigned &Depth) : Depth(Depth) { ++Depth; }
  ~DepthGuard() { --Depth; }
};
} // namespace

std::vector<ValuePtr> Engine::callFunction(const std::string &Name,
                                           std::vector<ValuePtr> Args,
                                           size_t NumOuts, SourceLoc Loc) {
  LoadedFunction *LF = find(Name);
  if (!LF)
    throw MatlabError(format("undefined function '%s'", Name.c_str()), Loc);
  if (!LF->F->isScript() && Args.size() > LF->F->params().size())
    throw MatlabError(format("too many input arguments to '%s'", Name.c_str()),
                      Loc);
  if (NumOuts > std::max<size_t>(LF->F->outs().size(), 1))
    throw MatlabError(format("too many output arguments from '%s'",
                             Name.c_str()),
                      Loc);
  if (CallDepth >= Opts.MaxCallDepth)
    throw MatlabError("maximum recursion depth exceeded", Loc);
  DepthGuard Guard(CallDepth);

  if (Opts.Policy == CompilePolicy::InterpretOnly || LF->F->isScript())
    return interpretCall(*LF, std::move(Args), NumOuts);

  TypeSignature Sig = TypeSignature::ofValues(Args);
  const CompiledObject *Obj = Repo.lookup(Name, Sig);
  if (!Obj) {
    // Miss: compile according to policy. When a version with the same
    // skeleton already exists (recursive calls with different constants),
    // compile the generalized signature so the repository converges.
    TypeSignature CompileSig = Sig;
    TypeSignature General = Sig.generalized();
    if (Repo.versions(Name) && !Repo.versions(Name)->empty() &&
        !(General == Sig) && Sig.safeFor(General))
      CompileSig = General;

    switch (Opts.Policy) {
    case CompilePolicy::Jit:
    case CompilePolicy::Speculative:
      Obj = compileAndInsert(Name, CompileSig, CodeGenMode::Jit,
                             CompiledObject::Origin::Jit);
      if (Obj)
        ++JitCompiles;
      break;
    case CompilePolicy::Falcon:
      Obj = compileAndInsert(Name, CompileSig, CodeGenMode::Optimized,
                             CompiledObject::Origin::Batch);
      break;
    case CompilePolicy::Mcc:
      Obj = compileAndInsert(Name, TypeSignature::generic(Args.size()),
                             CodeGenMode::Generic,
                             CompiledObject::Origin::Generic);
      break;
    case CompilePolicy::InterpretOnly:
      break;
    }
  }
  if (!Obj) {
    ++InterpFallbacks;
    return interpretCall(*LF, std::move(Args), NumOuts);
  }
  return runCompiled(*Obj, std::move(Args), NumOuts);
}

bool Engine::knowsFunction(const std::string &Name) {
  return Functions.count(Name) != 0;
}

std::vector<ValuePtr> Engine::runCompiled(const CompiledObject &Obj,
                                          std::vector<ValuePtr> Args,
                                          size_t NumOuts) {
  // Snapshot the PRNG and buffered output so a deoptimization retry does
  // identical work.
  Rng SavedRand = Ctx.Rand;
  size_t OutputMark = Ctx.output().size();
  try {
    if (CallDepth == 1) {
      ScopedPhaseTimer T(Phases, Phase::Execute);
      return Machine->run(*Obj.Code, Args, NumOuts);
    }
    return Machine->run(*Obj.Code, Args, NumOuts);
  } catch (const DeoptError &) {
    // An optimistic guard failed (sqrt of a negative value, ...): undo the
    // attempt, replace the compiled version with a pessimistic one, retry.
    ++Deopts;
    Ctx.Rand = SavedRand;
    Ctx.truncateOutput(OutputMark);
    std::string Name = Obj.FunctionName;
    TypeSignature Sig = Obj.Sig;
    CodeGenMode Mode = Obj.Mode;
    CompiledObject::Origin From = Obj.From;
    const CompiledObject *Repl =
        compileAndInsert(Name, Sig, Mode, From, /*Optimistic=*/false);
    if (!Repl) {
      ++InterpFallbacks;
      LoadedFunction *LF = find(Name);
      if (!LF)
        throw MatlabError("deoptimization of unknown function '" + Name + "'");
      return interpretCall(*LF, std::move(Args), NumOuts);
    }
    // Pessimistic code selects no optimistic guards; a second DeoptError
    // cannot occur from this object.
    if (CallDepth == 1) {
      ScopedPhaseTimer T(Phases, Phase::Execute);
      return Machine->run(*Repl->Code, std::move(Args), NumOuts);
    }
    return Machine->run(*Repl->Code, std::move(Args), NumOuts);
  }
}

std::vector<ValuePtr> Engine::interpretCall(LoadedFunction &LF,
                                            std::vector<ValuePtr> Args,
                                            size_t NumOuts) {
  if (CallDepth == 1) {
    ScopedPhaseTimer T(Phases, Phase::Execute);
    return Interp->run(*LF.F, std::move(Args), NumOuts);
  }
  return Interp->run(*LF.F, std::move(Args), NumOuts);
}

//===----------------------------------------------------------------------===//
// Interactive scripts
//===----------------------------------------------------------------------===//

std::string Engine::runScript(const std::string &Source) {
  size_t OutputMark = Ctx.output().size();

  std::string Name = format("session%zu", Modules.size());
  Diags.clear();
  std::unique_ptr<Module> Mod;
  {
    ScopedPhaseTimer T(Phases, Phase::Parse);
    Mod = parseModule(Name, Source, SM, Diags);
  }
  if (!Mod) {
    std::string Err = Diags.render(SM);
    Diags.clear();
    return "??? " + Err;
  }
  Function *Script = Mod->mainFunction();
  if (!Script->isScript()) {
    // Defining functions interactively: register them instead of running.
    Modules.push_back(std::move(Mod));
    Module *M = Modules.back().get();
    for (const auto &F : M->functions()) {
      LoadedFunction LF;
      LF.F = F.get();
      LF.M = M;
      LF.Info = disambiguate(*F, *M);
      Repo.invalidate(F->name());
      Functions[F->name()] = std::move(LF);
    }
    return "";
  }

  // Pre-existing workspace variables are in scope.
  std::vector<std::string> Predefined;
  for (const auto &[VarName, V] : WorkspaceByName)
    if (V)
      Predefined.push_back(VarName);
  std::unique_ptr<FunctionInfo> Info;
  {
    ScopedPhaseTimer T(Phases, Phase::Disambiguate);
    Info = disambiguate(*Script, *Mod, &Predefined);
  }

  // Map workspace values into the script's slots.
  std::vector<ValuePtr> Slots(Info->Symbols.numSlots());
  for (unsigned S = 0; S != Info->Symbols.numSlots(); ++S) {
    auto It = WorkspaceByName.find(Info->Symbols.nameOfSlot(S));
    if (It != WorkspaceByName.end())
      Slots[S] = It->second;
  }

  try {
    ScopedPhaseTimer T(Phases, Phase::Execute);
    Interp->runScript(*Script, Slots);
  } catch (const MatlabError &E) {
    Ctx.print("??? " + E.message() + "\n");
  }

  // Write the workspace back.
  for (unsigned S = 0; S != Info->Symbols.numSlots(); ++S) {
    const std::string &VarName = Info->Symbols.nameOfSlot(S);
    if (Slots[S])
      WorkspaceByName[VarName] = Slots[S];
    else
      WorkspaceByName.erase(VarName);
  }
  Modules.push_back(std::move(Mod));

  return Ctx.output().substr(OutputMark);
}

ValuePtr Engine::workspaceVar(const std::string &Name) const {
  auto It = WorkspaceByName.find(Name);
  return It == WorkspaceByName.end() ? nullptr : It->second;
}
