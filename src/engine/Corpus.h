//===- engine/Corpus.h - The benchmark corpus ------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 16 MATLAB benchmarks of Table 1, with their paper metadata (origin,
/// problem size, lines, interpreted runtime on the paper's SPARC reference)
/// and the scaled problem sizes this reproduction runs (the original sizes
/// target a 400MHz UltraSparc and minutes-long interpreted runs).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_ENGINE_CORPUS_H
#define MAJIC_ENGINE_CORPUS_H

#include "runtime/Value.h"

#include <string>
#include <vector>

namespace majic {

struct BenchmarkSpec {
  std::string Name;
  std::string Source;      ///< Origin per Table 1 (Mathews, Garcia, ...).
  std::string Description; ///< Functional description per Table 1.
  std::string PaperProblemSize;
  unsigned PaperLines;     ///< Lines of code reported in Table 1.
  double PaperRuntime;     ///< MATLAB 6 runtime on the paper's SPARC (s).
  /// The paper's benchmark categories (Section 3.1).
  enum class Category : uint8_t { Scalar, Builtin, SmallArray, Recursive } Cat;
  /// Scaled arguments this reproduction invokes the function with.
  std::vector<double> Args;
  std::string ScaledProblemSize;
};

/// The corpus, in Table 1 order.
const std::vector<BenchmarkSpec> &benchmarkCorpus();

/// Finds a benchmark by name (null when unknown).
const BenchmarkSpec *findBenchmark(const std::string &Name);

/// Boxes a spec's scaled arguments for an invocation.
std::vector<ValuePtr> corpusArgs(const BenchmarkSpec &Spec);

/// Directory holding the corpus .m files (configured by CMake).
std::string mlibDirectory();

const char *categoryName(BenchmarkSpec::Category C);

} // namespace majic

#endif // MAJIC_ENGINE_CORPUS_H
