//===- engine/Corpus.cpp - The benchmark corpus -----------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Corpus.h"

#include "engine/MlibPath.h"

using namespace majic;

const char *majic::categoryName(BenchmarkSpec::Category C) {
  switch (C) {
  case BenchmarkSpec::Category::Scalar:
    return "scalar";
  case BenchmarkSpec::Category::Builtin:
    return "builtin";
  case BenchmarkSpec::Category::SmallArray:
    return "array";
  case BenchmarkSpec::Category::Recursive:
    return "recursive";
  }
  return "?";
}

const std::vector<BenchmarkSpec> &majic::benchmarkCorpus() {
  using Cat = BenchmarkSpec::Category;
  static const std::vector<BenchmarkSpec> Corpus = {
      {"adapt", "Mathews", "adaptive quadrature", "approx. 2500", 81, 5.24,
       Cat::SmallArray, {1e-14, 2000000}, "tol 1e-14"},
      {"cgopt", "Templates", "conjugate gradient w. diagonal preconditioner",
       "420 x 420", 38, 0.43, Cat::Builtin, {1200, 800}, "1200 x 1200"},
      {"crnich", "Mathews", "Crank-Nicholson heat equation solver",
       "321 x 321", 40, 16.33, Cat::Scalar, {1, 3, 321, 321}, "321 x 321 (paper size)"},
      {"dirich", "Mathews", "Dirichlet solution to Laplace's equation",
       "134 x 134", 34, 277.89, Cat::Scalar, {134, 1e-4, 100}, "134 x 134 (paper size)"},
      {"finedif", "Mathews", "finite difference solution to the wave equation",
       "1000 x 1000", 21, 57.81, Cat::Scalar, {1, 1, 1, 500, 500},
       "500 x 500"},
      {"galrkn", "Garcia", "Galerkin's method (finite element method)",
       "40 x 40", 43, 8.02, Cat::Scalar, {30000}, "30000 elements"},
      {"icn", "R. Bramley", "incomplete Cholesky factorization", "400 x 400",
       29, 7.72, Cat::Scalar, {400}, "400 x 400 (paper size)"},
      {"mei", "unknown", "fractal landscape generator", "31 x 14", 24, 10.77,
       Cat::Builtin, {513, 257}, "513 x 257"},
      {"orbec", "Garcia", "Euler-Cromer method for 1-body problem",
       "62400 points", 24, 19.10, Cat::SmallArray, {62400}, "62400 points"},
      {"orbrk", "Garcia", "Runge-Kutta method for 1-body problem",
       "5000 points", 52, 9.30, Cat::SmallArray, {10000}, "10000 points"},
      {"qmr", "Templates", "linear equation system solver, QMR method",
       "420 x 420", 119, 5.29, Cat::Builtin, {840, 400}, "840 x 840"},
      {"sor", "Templates", "lin. eq. sys. solver, successive overrelaxation",
       "420 x 420", 29, 4.77, Cat::Builtin, {420, 1.2, 60}, "420 x 420 (paper size)"},
      {"ackermann", "authors", "Ackermann's function", "ackermann(3,5)", 15,
       3.84, Cat::Recursive, {3, 6}, "ackermann(3,6)"},
      {"fractal", "authors", "Barnsley fern generator", "25000 points", 35,
       26.55, Cat::SmallArray, {25000}, "25000 points"},
      {"mandel", "authors", "Mandelbrot set generator", "200 x 200", 16, 8.64,
       Cat::Scalar, {200, 100}, "200 x 200 (paper size)"},
      {"fibonacci", "authors", "recursive Fibonacci function",
       "fibonacci(20)", 10, 1.29, Cat::Recursive, {25}, "fibonacci(25)"},
  };
  return Corpus;
}

const BenchmarkSpec *majic::findBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &Spec : benchmarkCorpus())
    if (Spec.Name == Name)
      return &Spec;
  return nullptr;
}

std::vector<ValuePtr> majic::corpusArgs(const BenchmarkSpec &Spec) {
  std::vector<ValuePtr> Args;
  for (double A : Spec.Args) {
    // Integral sizes arrive as int scalars, tolerances as reals, exactly
    // like literals typed at the MATLAB prompt.
    if (A == static_cast<long long>(A))
      Args.push_back(makeValue(Value::intScalar(A)));
    else
      Args.push_back(makeScalar(A));
  }
  return Args;
}

std::string majic::mlibDirectory() { return MAJIC_MLIB_DIR; }
