//===- native/NativeRuntime.h - Host side of the native tier ----*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host half of the native execution tier: the C prelude text
/// (`majic_mlf.h`) that generated sources include, the callback table
/// that backs it, and `runNative` - the wrapper that marshals ValuePtr
/// arguments into ABI boxes, runs a compiled entry point under a
/// setjmp/longjmp error trampoline, and maps the results back with the
/// register VM's exact return semantics.
///
/// Error discipline: compiled modules are plain C and cannot unwind C++
/// exceptions. Every callback in the MajicNativeApi table catches at the
/// boundary, parks the exception_ptr in the active NativeFrame, and
/// longjmps back to runNative's setjmp (the jump crosses only C frames),
/// which rethrows on the host side - so MatlabError text, DeoptError
/// deopt routing, injected faults, and bad_alloc all survive the tier
/// transition with their identity intact.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_NATIVE_NATIVERUNTIME_H
#define MAJIC_NATIVE_NATIVERUNTIME_H

#include "native/NativeABI.h"
#include "runtime/Value.h"

#include <string>
#include <vector>

namespace majic {

class Context;

namespace native {

/// What the native tier needs from its embedder to run user-function
/// calls (Opcode::CallU) - the engine implements this against its own
/// dispatch, keeping the runtime free of an engine dependency.
class NativeHost {
public:
  virtual ~NativeHost() = default;
  virtual std::vector<ValuePtr> callFunction(const std::string &Name,
                                             std::vector<ValuePtr> Args,
                                             size_t NumOuts) = 0;
};

/// The contents of `majic_mlf.h`: mxValue/MajicNativeApi in C, the
/// `majic_native_init` definition, and every `mlf*` macro the emitter
/// targets. Written beside each generated source before compiling.
const std::string &preludeSource();

/// The host's callback table, injected into modules at load time.
const MajicNativeApi &hostApiTable();

/// Runs one natively compiled function with the VM's calling convention:
/// \p FnNumOuts is the function's declared output count (IRFunction
/// NumOuts), \p NumOuts the caller's nargout. Mirrors VM::run's Ret
/// semantics (optional first output at nargout 0, "too many output
/// arguments", "output argument N not assigned") and rethrows anything a
/// callback trapped. Reentrant: a native function may call back into the
/// engine and land in another native frame.
std::vector<ValuePtr> runNative(NativeEntryFn Entry, const std::string &Name,
                                size_t FnNumOuts, Context &Ctx,
                                NativeHost &Host,
                                const std::vector<ValuePtr> &Args,
                                size_t NumOuts);

} // namespace native
} // namespace majic

#endif // MAJIC_NATIVE_NATIVERUNTIME_H
