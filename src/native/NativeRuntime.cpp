//===- native/NativeRuntime.cpp - Host side of the native tier -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Boxes, the callback table, the setjmp/longjmp error trampoline, and the
// C prelude. Every callback body mirrors the corresponding VM.cpp opcode
// case verbatim (through the helpers both share in backend/ExecShared.h),
// so the two tiers produce bit-identical values and byte-identical error
// messages.
//
// Shim discipline: a callback does all C++ work inside a try block
// (delegating anything nontrivial to a host* helper so the C++ unwinder
// cleans up its locals), parks the exception in the frame, and only then
// longjmps - at that point the shim's own frame holds no live object with
// a destructor, so the jump crosses plain-C frames only, which C++
// explicitly permits.
//
//===----------------------------------------------------------------------===//

#include "native/NativeRuntime.h"

#include "backend/ExecShared.h"
#include "obs/Trace.h"
#include "runtime/Blas.h"
#include "runtime/Builtins.h"
#include "runtime/Context.h"
#include "runtime/Ops.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cmath>
#include <csetjmp>
#include <cstdarg>
#include <deque>

using namespace majic;
using namespace majic::native;
using rt::Indexer;

// The prelude bakes these numeric values into generated C (mlfPlus -> 0,
// klass 3 = complex, ...); a drifted enum must fail the build, not
// corrupt arithmetic.
static_assert(static_cast<int>(rt::BinOp::Add) == 0 &&
                  static_cast<int>(rt::BinOp::Or) == 17,
              "rt::BinOp layout is baked into the native prelude");
static_assert(static_cast<int>(MClass::Bool) == 0 &&
                  static_cast<int>(MClass::Int) == 1 &&
                  static_cast<int>(MClass::Real) == 2 &&
                  static_cast<int>(MClass::Complex) == 3 &&
                  static_cast<int>(MClass::String) == 4,
              "MClass layout is baked into the native prelude");

namespace {

/// A boxed value: the C-visible prefix plus the owning reference. Boxes
/// live in the frame's deque, so their addresses stay stable for the
/// whole native call however many the program allocates.
struct Box {
  MxPub Pub;
  ValuePtr V;
};

struct NativeFrame {
  std::jmp_buf Jb;
  std::exception_ptr Err;
  std::deque<Box> Boxes;
  Context *Ctx = nullptr;
  NativeHost *Host = nullptr;
  NativeFrame *Prev = nullptr;

  MxPub *box(ValuePtr P);
};

/// The active frame of this thread; a chain through Prev supports native
/// -> engine -> native reentrancy.
thread_local NativeFrame *CurFrame = nullptr;

struct FrameGuard {
  explicit FrameGuard(NativeFrame *F) {
    F->Prev = CurFrame;
    CurFrame = F;
  }
  ~FrameGuard() { CurFrame = CurFrame->Prev; }
};

Box *boxOf(MxPub *P) { return reinterpret_cast<Box *>(P); }
MxPub *pubOf(Box *B) { return &B->Pub; }

/// Recomputes a box's public prefix from its Value. The write-cache class
/// is valid only while this box holds the sole reference (no copy-on-
/// write needed) and the class is at most Real (no imaginary half to
/// clear, no string guard) - exactly the preconditions under which the
/// VM's StoreEl sequence (makeUnique + promoteClass + storeDirect)
/// degenerates to one array store.
void refresh(Box *B) {
  Value &V = *B->V;
  B->Pub.Re = V.reData();
  B->Pub.Rows = static_cast<long long>(V.rows());
  B->Pub.Cols = static_cast<long long>(V.cols());
  B->Pub.Numel = static_cast<long long>(V.numel());
  int K = static_cast<int>(V.mclass());
  B->Pub.Klass = K;
  B->Pub.WClass =
      (B->V.use_count() == 1 && K <= static_cast<int>(MClass::Real)) ? K : -1;
}

MxPub *NativeFrame::box(ValuePtr P) {
  if (!P)
    return nullptr; // null registers stay null pointers, as in the VM
  Boxes.emplace_back();
  Box &B = Boxes.back();
  B.V = std::move(P);
  refresh(&B);
  return pubOf(&B);
}

/// The requireValue twin for ABI pointers.
Value &val(MxPub *P) {
  if (!P)
    throw MatlabError("internal: use of an empty value register");
  return *boxOf(P)->V;
}

//===----------------------------------------------------------------------===//
// Helpers for the variadic callbacks. These run under the shim's try
// block, so they may use C++ freely - exceptions unwind their frames
// normally before the shim longjmps.
//===----------------------------------------------------------------------===//

MxPub *hostCat(NativeFrame *Fr, int Horz, int N, va_list Ap) {
  std::vector<const Value *> Parts;
  Parts.reserve(static_cast<size_t>(N));
  for (int K = 0; K != N; ++K)
    Parts.push_back(&val(va_arg(Ap, MxPub *)));
  return Fr->box(
      makeValue(Horz ? rt::horzcat(Parts) : rt::vertcat(Parts)));
}

std::vector<Indexer> gatherIndexers(const Value &Base, int N, va_list Ap) {
  MxPub *Ents[2] = {nullptr, nullptr};
  if (N < 1 || N > 2)
    throw MatlabError("internal: bad native index arity");
  for (int K = 0; K != N; ++K)
    Ents[K] = va_arg(Ap, MxPub *);
  std::vector<Indexer> Idx;
  for (int K = 0; K != N; ++K) {
    size_t DimLen =
        N == 1 ? Base.numel() : (K == 0 ? Base.rows() : Base.cols());
    if (Ents[K] == kColonSentinel)
      Idx.push_back(Indexer::colon());
    else
      Idx.push_back(Indexer::fromValue(val(Ents[K]), DimLen));
  }
  return Idx;
}

MxPub *hostIndexLoad(NativeFrame *Fr, MxPub *BaseP, int N, va_list Ap) {
  const Value &Base = val(BaseP);
  std::vector<Indexer> Idx = gatherIndexers(Base, N, Ap);
  return Fr->box(makeValue(N == 1 ? rt::index1(Base, Idx[0])
                                  : rt::index2(Base, Idx[0], Idx[1])));
}

void hostIndexAssign(NativeFrame *Fr, MxPub **BasePP, MxPub *RhsP, int N,
                     va_list Ap) {
  if (!*BasePP)
    *BasePP = Fr->box(makeValue(Value()));
  Box *B = boxOf(*BasePP);
  Value &Base = makeUnique(B->V);
  std::vector<Indexer> Idx = gatherIndexers(Base, N, Ap);
  if (N == 1)
    rt::indexAssign1(Base, Idx[0], val(RhsP));
  else
    rt::indexAssign2(Base, Idx[0], Idx[1], val(RhsP));
  refresh(B);
}

MxPub *hostEwAlloc(NativeFrame *Fr, int NOps, va_list Ap) {
  std::vector<const Value *> Ops(static_cast<size_t>(NOps));
  for (int K = 0; K != NOps; ++K) {
    MxPub *P = va_arg(Ap, MxPub *);
    Ops[K] = P ? boxOf(P)->V.get() : nullptr;
  }
  int Len = va_arg(Ap, int);
  const int *Prog = va_arg(Ap, const int *);
  exec::EwPlan Plan =
      exec::ewSimulate(Ops.data(), NOps, Prog, static_cast<size_t>(Len));
  return Fr->box(makeValue(Value::uninit(Plan.Rows, Plan.Cols, Plan.Class)));
}

void hostCallBuiltin(NativeFrame *Fr, const char *Name, int Stmt, int NDsts,
                     va_list Ap) {
  std::vector<MxPub **> Dsts(static_cast<size_t>(NDsts));
  for (int K = 0; K != NDsts; ++K)
    Dsts[K] = va_arg(Ap, MxPub **);
  int NArgs = va_arg(Ap, int);
  std::vector<const Value *> Ptrs;
  Ptrs.reserve(static_cast<size_t>(NArgs));
  for (int K = 0; K != NArgs; ++K) {
    MxPub *P = va_arg(Ap, MxPub *);
    if (!P)
      throw MatlabError("internal: null argument value");
    Ptrs.push_back(boxOf(P)->V.get());
  }
  const BuiltinDef *Def = BuiltinTable::instance().lookup(Name);
  if (!Def)
    throw MatlabError(format("unknown builtin '%s'", Name));
  std::vector<Value> Rs = BuiltinTable::call(
      *Def, *Fr->Ctx, Ptrs, Stmt ? 0 : static_cast<size_t>(NDsts));
  for (int K = 0; K != NDsts; ++K) {
    if (static_cast<size_t>(K) >= Rs.size()) {
      if (Stmt) {
        *Dsts[K] = nullptr; // optional output absent
        continue;
      }
      throw MatlabError(
          format("builtin '%s' returned too few values", Def->Name.c_str()));
    }
    *Dsts[K] = Fr->box(makeValue(std::move(Rs[K])));
  }
}

void hostCallFunction(NativeFrame *Fr, const char *Name, int Stmt, int NDsts,
                      va_list Ap) {
  std::vector<MxPub **> Dsts(static_cast<size_t>(NDsts));
  for (int K = 0; K != NDsts; ++K)
    Dsts[K] = va_arg(Ap, MxPub **);
  int NArgs = va_arg(Ap, int);
  std::vector<MxPub *> ArgPs(static_cast<size_t>(NArgs));
  std::vector<ValuePtr> CallArgs;
  CallArgs.reserve(static_cast<size_t>(NArgs));
  for (int K = 0; K != NArgs; ++K) {
    ArgPs[K] = va_arg(Ap, MxPub *);
    if (!ArgPs[K])
      throw MatlabError("internal: null argument value");
    CallArgs.push_back(boxOf(ArgPs[K])->V);
  }
  std::vector<ValuePtr> Rs = Fr->Host->callFunction(
      Name, std::move(CallArgs), Stmt ? 0 : static_cast<size_t>(NDsts));
  for (int K = 0; K != NDsts; ++K) {
    if (static_cast<size_t>(K) >= Rs.size()) {
      if (Stmt) {
        *Dsts[K] = nullptr;
        continue;
      }
      throw MatlabError("not enough output arguments");
    }
    *Dsts[K] = Fr->box(Rs[K]);
  }
  // The callee may have retained references to the arguments (their
  // use counts changed under us): recompute the write caches.
  for (int K = 0; K != NArgs; ++K)
    refresh(boxOf(ArgPs[K]));
}

//===----------------------------------------------------------------------===//
// The callbacks. MLF_SHIM_END is the error trampoline tail: by the time
// the longjmp runs, the catch has finished and the shim frame holds only
// trivially destructible locals.
//===----------------------------------------------------------------------===//

#define MLF_SHIM_END                                                           \
  catch (...) { Fr->Err = std::current_exception(); }                          \
  std::longjmp(Fr->Jb, 1)

MxPub *shimBoxF(double X) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeScalar(X));
  }
  MLF_SHIM_END;
}

MxPub *shimBoxI(long long X) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(Value::intScalar(static_cast<double>(X))));
  }
  MLF_SHIM_END;
}

MxPub *shimBoxB(long long X) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeBool(X != 0));
  }
  MLF_SHIM_END;
}

MxPub *shimBoxC(double Re, double Im) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(Value::complexScalar(Re, Im)));
  }
  MLF_SHIM_END;
}

MxPub *shimStringConst(const char *S) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(Value::str(S)));
  }
  MLF_SHIM_END;
}

MxPub *shimRetain(MxPub *P) {
  NativeFrame *Fr = CurFrame;
  try {
    if (!P)
      return nullptr;
    Box *Old = boxOf(P);
    MxPub *Copy = Fr->box(Old->V);
    refresh(Old); // now shared: both boxes drop to slow-path stores
    return Copy;
  }
  MLF_SHIM_END;
}

double shimGetScalar(MxPub *P) {
  NativeFrame *Fr = CurFrame;
  try {
    return exec::requireRealData(val(P)).scalarValue();
  }
  MLF_SHIM_END;
}

long long shimGetIntScalar(MxPub *P) {
  NativeFrame *Fr = CurFrame;
  try {
    double X = exec::requireRealData(val(P)).scalarValue();
    double R = std::round(X);
    if (std::abs(X - R) > 1e-8)
      throw MatlabError(format("expected an integer value, got %g", X));
    return static_cast<long long>(R);
  }
  MLF_SHIM_END;
}

void shimGetComplex(MxPub *P, double *Re, double *Im) {
  NativeFrame *Fr = CurFrame;
  try {
    const Value &V = val(P);
    if (!V.isScalar())
      throw MatlabError("expected a scalar value");
    *Re = V.re(0);
    *Im = V.im(0);
    return;
  }
  MLF_SHIM_END;
}

long long shimIsTrue(MxPub *P) {
  NativeFrame *Fr = CurFrame;
  try {
    return val(P).isTrue() ? 1 : 0;
  }
  MLF_SHIM_END;
}

long long shimCheckSubscript(double X) {
  NativeFrame *Fr = CurFrame;
  try {
    return static_cast<long long>(rt::checkSubscript(X));
  }
  MLF_SHIM_END;
}

void shimCheckDefined(MxPub *P, const char *Name) {
  NativeFrame *Fr = CurFrame;
  try {
    if (!P)
      throw MatlabError(
          format("undefined function or variable '%s'", Name));
    return;
  }
  MLF_SHIM_END;
}

double shimGuard(int Intr, double X) {
  NativeFrame *Fr = CurFrame;
  try {
    exec::checkIntrinsicGuard(static_cast<ScalarIntrinsic>(Intr), X);
    return X;
  }
  MLF_SHIM_END;
}

double shimPowDeopt(double X, double Y) {
  NativeFrame *Fr = CurFrame;
  (void)Y;
  try {
    // Negative base, non-integral exponent: the result is complex, which
    // generated code cannot represent - replay in the general tiers.
    throw DeoptError{ScalarIntrinsic::None, X};
  }
  MLF_SHIM_END;
}

double *shimDeoptComplex(void) {
  NativeFrame *Fr = CurFrame;
  try {
    throw DeoptError{ScalarIntrinsic::None, 0.0};
  }
  MLF_SHIM_END;
}

long long shimNullLen(void) {
  NativeFrame *Fr = CurFrame;
  try {
    throw MatlabError("internal: use of an empty value register");
  }
  MLF_SHIM_END;
}

MxPub *shimZeros(long long R, long long C, int Klass) {
  NativeFrame *Fr = CurFrame;
  try {
    long long Rc = R < 0 ? 0 : R, Cc = C < 0 ? 0 : C;
    return Fr->box(makeValue(Value::zeros(static_cast<size_t>(Rc),
                                          static_cast<size_t>(Cc),
                                          static_cast<MClass>(Klass))));
  }
  MLF_SHIM_END;
}

void shimFill(MxPub *P, double X) {
  NativeFrame *Fr = CurFrame;
  try {
    val(P); // null check with the VM's error
    Box *B = boxOf(P);
    Value &V = makeUnique(B->V);
    std::fill(V.reData(), V.reData() + V.numel(), X);
    refresh(B);
    return;
  }
  MLF_SHIM_END;
}

double shimLoadChk(MxPub *P, long long I) {
  NativeFrame *Fr = CurFrame;
  try {
    const Value &V = exec::requireRealData(val(P));
    if (I < 0 || static_cast<size_t>(I) >= V.numel())
      throw MatlabError(format("index out of bounds: %lld exceeds numel %zu",
                               static_cast<long long>(I + 1), V.numel()));
    return V.re(static_cast<size_t>(I));
  }
  MLF_SHIM_END;
}

double shimLoad2Chk(MxPub *P, long long R, long long C) {
  NativeFrame *Fr = CurFrame;
  try {
    const Value &V = exec::requireRealData(val(P));
    if (R < 0 || C < 0 || static_cast<size_t>(R) >= V.rows() ||
        static_cast<size_t>(C) >= V.cols())
      throw MatlabError(format("index (%lld, %lld) out of bounds for "
                               "%zux%zu matrix",
                               static_cast<long long>(R + 1),
                               static_cast<long long>(C + 1), V.rows(),
                               V.cols()));
    return V.at(static_cast<size_t>(R), static_cast<size_t>(C));
  }
  MLF_SHIM_END;
}

void shimStoreSlow(MxPub **PP, long long I, double X, int Klass) {
  NativeFrame *Fr = CurFrame;
  try {
    val(*PP);
    Box *B = boxOf(*PP);
    Value &V = makeUnique(B->V);
    exec::promoteClass(V, static_cast<MClass>(Klass));
    exec::storeDirect(V, static_cast<size_t>(I), X);
    refresh(B);
    return;
  }
  MLF_SHIM_END;
}

void shimStoreGrow(MxPub **PP, long long I, double X, int Klass) {
  NativeFrame *Fr = CurFrame;
  try {
    if (!*PP)
      *PP = Fr->box(makeValue(Value()));
    Box *B = boxOf(*PP);
    Value &V = makeUnique(B->V);
    if (I < 0)
      throw MatlabError("subscript indices must be positive integers");
    if (static_cast<size_t>(I) < V.numel()) {
      exec::promoteClass(V, static_cast<MClass>(Klass));
      exec::storeDirect(V, static_cast<size_t>(I), X);
    } else {
      Value RHS = Value::scalar(X);
      RHS.setClass(static_cast<MClass>(Klass));
      rt::indexAssign1(V, Indexer::single(static_cast<size_t>(I)), RHS);
    }
    refresh(B);
    return;
  }
  MLF_SHIM_END;
}

void shimStore2Slow(MxPub **PP, long long R, long long C, double X,
                    int Klass) {
  NativeFrame *Fr = CurFrame;
  try {
    val(*PP);
    Box *B = boxOf(*PP);
    Value &V = makeUnique(B->V);
    exec::promoteClass(V, static_cast<MClass>(Klass));
    exec::storeDirect(V,
                      static_cast<size_t>(C) * V.rows() +
                          static_cast<size_t>(R),
                      X);
    refresh(B);
    return;
  }
  MLF_SHIM_END;
}

void shimStore2Grow(MxPub **PP, long long R, long long C, double X,
                    int Klass) {
  NativeFrame *Fr = CurFrame;
  try {
    if (!*PP)
      *PP = Fr->box(makeValue(Value()));
    Box *B = boxOf(*PP);
    Value &V = makeUnique(B->V);
    if (R < 0 || C < 0)
      throw MatlabError("subscript indices must be positive integers");
    if (static_cast<size_t>(R) < V.rows() &&
        static_cast<size_t>(C) < V.cols()) {
      exec::promoteClass(V, static_cast<MClass>(Klass));
      exec::storeDirect(V,
                        static_cast<size_t>(C) * V.rows() +
                            static_cast<size_t>(R),
                        X);
    } else {
      Value RHS = Value::scalar(X);
      RHS.setClass(static_cast<MClass>(Klass));
      rt::indexAssign2(V, Indexer::single(static_cast<size_t>(R)),
                       Indexer::single(static_cast<size_t>(C)), RHS);
    }
    refresh(B);
    return;
  }
  MLF_SHIM_END;
}

MxPub *shimRtBin(int Op, MxPub *A, MxPub *B) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(
        rt::binary(static_cast<rt::BinOp>(Op), val(A), val(B))));
  }
  MLF_SHIM_END;
}

MxPub *shimRtUn(int Op, MxPub *A) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(rt::unary(static_cast<rt::UnOp>(Op), val(A))));
  }
  MLF_SHIM_END;
}

MxPub *shimColSlice(MxPub *P, long long C) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(rt::index2(
        val(P), Indexer::colon(), Indexer::single(static_cast<size_t>(C)))));
  }
  MLF_SHIM_END;
}

MxPub *shimRange3(double A, double S, double B) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(Value::range(A, S, B)));
  }
  MLF_SHIM_END;
}

MxPub *shimColonV(MxPub *A, MxPub *S, MxPub *B) {
  NativeFrame *Fr = CurFrame;
  try {
    return Fr->box(makeValue(rt::colon(val(A), val(S), val(B))));
  }
  MLF_SHIM_END;
}

MxPub *shimCat(int Horz, int N, ...) {
  NativeFrame *Fr = CurFrame;
  va_list Ap;
  va_start(Ap, N);
  try {
    MxPub *R = hostCat(Fr, Horz, N, Ap);
    va_end(Ap);
    return R;
  } catch (...) {
    Fr->Err = std::current_exception();
  }
  va_end(Ap);
  std::longjmp(Fr->Jb, 1);
}

MxPub *shimIndexLoad(MxPub *Base, int N, ...) {
  NativeFrame *Fr = CurFrame;
  va_list Ap;
  va_start(Ap, N);
  try {
    MxPub *R = hostIndexLoad(Fr, Base, N, Ap);
    va_end(Ap);
    return R;
  } catch (...) {
    Fr->Err = std::current_exception();
  }
  va_end(Ap);
  std::longjmp(Fr->Jb, 1);
}

void shimIndexAssign(MxPub **Base, MxPub *Rhs, int N, ...) {
  NativeFrame *Fr = CurFrame;
  va_list Ap;
  va_start(Ap, N);
  try {
    hostIndexAssign(Fr, Base, Rhs, N, Ap);
    va_end(Ap);
    return;
  } catch (...) {
    Fr->Err = std::current_exception();
  }
  va_end(Ap);
  std::longjmp(Fr->Jb, 1);
}

MxPub *shimEwAlloc(int NOps, ...) {
  NativeFrame *Fr = CurFrame;
  va_list Ap;
  va_start(Ap, NOps);
  try {
    MxPub *R = hostEwAlloc(Fr, NOps, Ap);
    va_end(Ap);
    return R;
  } catch (...) {
    Fr->Err = std::current_exception();
  }
  va_end(Ap);
  std::longjmp(Fr->Jb, 1);
}

MxPub *shimGemv(MxPub *AP, MxPub *XP) {
  NativeFrame *Fr = CurFrame;
  try {
    const Value &A = val(AP);
    const Value &X = val(XP);
    if (!A.isComplex() && !X.isComplex() && X.isColVector() &&
        A.cols() == X.rows()) {
      Value Y = Value::zeros(A.rows(), 1);
      blas::dgemv(A.rows(), A.cols(), 1.0, A.reData(), X.reData(), 0.0,
                  Y.reData());
      return Fr->box(makeValue(std::move(Y)));
    }
    return Fr->box(makeValue(rt::binary(rt::BinOp::MatMul, A, X)));
  }
  MLF_SHIM_END;
}

MxPub *shimAxpy(double A, MxPub *XP, MxPub *YP) {
  NativeFrame *Fr = CurFrame;
  try {
    const Value &X = val(XP);
    const Value &Y = val(YP);
    if (!X.isComplex() && !Y.isComplex() && X.rows() == Y.rows() &&
        X.cols() == Y.cols()) {
      Value Out = Value::zeros(X.rows(), X.cols());
      blas::daxpyz(X.numel(), A, X.reData(), Y.reData(), Out.reData());
      return Fr->box(makeValue(std::move(Out)));
    }
    Value Scaled = rt::binary(rt::BinOp::MatMul, Value::scalar(A), X);
    return Fr->box(makeValue(rt::binary(rt::BinOp::Add, Scaled, Y)));
  }
  MLF_SHIM_END;
}

void shimCallBuiltin(const char *Name, int Stmt, int NDsts, ...) {
  NativeFrame *Fr = CurFrame;
  va_list Ap;
  va_start(Ap, NDsts);
  try {
    hostCallBuiltin(Fr, Name, Stmt, NDsts, Ap);
    va_end(Ap);
    return;
  } catch (...) {
    Fr->Err = std::current_exception();
  }
  va_end(Ap);
  std::longjmp(Fr->Jb, 1);
}

void shimCallFunction(const char *Name, int Stmt, int NDsts, ...) {
  NativeFrame *Fr = CurFrame;
  va_list Ap;
  va_start(Ap, NDsts);
  try {
    hostCallFunction(Fr, Name, Stmt, NDsts, Ap);
    va_end(Ap);
    return;
  } catch (...) {
    Fr->Err = std::current_exception();
  }
  va_end(Ap);
  std::longjmp(Fr->Jb, 1);
}

void shimDisplay(MxPub *P, const char *Name) {
  NativeFrame *Fr = CurFrame;
  try {
    // A null register is an absent optional output: nothing to display.
    if (P)
      Fr->Ctx->print(rt::displayValue(*boxOf(P)->V, Name));
    return;
  }
  MLF_SHIM_END;
}

void shimPoll(long long N) {
  NativeFrame *Fr = CurFrame;
  try {
    Fr->Ctx->Exec.consume(static_cast<uint64_t>(N));
    return;
  }
  MLF_SHIM_END;
}

/// Minimal-frame setjmp wrapper: keeping the setjmp in a function whose
/// locals are all parameters sidesteps -Wclobbered and keeps the
/// longjmp's reentry point trivial. Returns -1 when a callback trapped
/// an error (parked in Fr.Err).
int invokeEntry(NativeFrame &Fr, NativeEntryFn Entry, MxPub **ArgPs,
                int NArgs, MxPub **OutPs, int NOuts) {
  if (setjmp(Fr.Jb) != 0)
    return -1;
  return Entry(ArgPs, NArgs, OutPs, NOuts);
}

} // namespace

const MajicNativeApi &majic::native::hostApiTable() {
  static const MajicNativeApi Api = {
      shimBoxF,        shimBoxI,        shimBoxB,       shimBoxC,
      shimStringConst, shimRetain,      shimGetScalar,  shimGetIntScalar,
      shimGetComplex,  shimIsTrue,      shimCheckSubscript,
      shimCheckDefined, shimGuard,      shimPowDeopt,   shimDeoptComplex,
      shimNullLen,     shimZeros,       shimFill,       shimLoadChk,
      shimLoad2Chk,    shimStoreSlow,   shimStoreGrow,  shimStore2Slow,
      shimStore2Grow,  shimRtBin,       shimRtUn,       shimColSlice,
      shimRange3,      shimColonV,      shimCat,        shimIndexLoad,
      shimIndexAssign, shimEwAlloc,     shimGemv,       shimAxpy,
      shimCallBuiltin, shimCallFunction, shimDisplay,   shimPoll,
  };
  return Api;
}

std::vector<ValuePtr> majic::native::runNative(
    NativeEntryFn Entry, const std::string &Name, size_t FnNumOuts,
    Context &Ctx, NativeHost &Host, const std::vector<ValuePtr> &Args,
    size_t NumOuts) {
  // The fault site fires before any observable side effect, so the
  // engine can treat an injected native-run fault as "tier unavailable"
  // and replay in the VM with identical results.
  faults::killPoint(faults::Site::NativeRun);
  faults::maybeThrow(faults::Site::NativeRun);
  obs::TraceScope Span("native.run", "exec", Name.c_str());

  NativeFrame Frame;
  Frame.Ctx = &Ctx;
  Frame.Host = &Host;
  FrameGuard G(&Frame);

  std::vector<MxPub *> ArgPs;
  ArgPs.reserve(Args.size());
  for (const ValuePtr &A : Args)
    ArgPs.push_back(Frame.box(A));
  std::vector<MxPub *> OutPs(std::max<size_t>(FnNumOuts, 1), nullptr);

  int Rc = invokeEntry(Frame, Entry, ArgPs.data(),
                       static_cast<int>(Args.size()), OutPs.data(),
                       static_cast<int>(FnNumOuts));
  if (Rc != 0) {
    if (Frame.Err)
      std::rethrow_exception(Frame.Err);
    // An entry point returning nonzero without a parked error has no
    // defined meaning; treat it as a deopt so the VM re-runs the call.
    throw DeoptError{ScalarIntrinsic::None, 0.0};
  }

  // VM::run's Ret semantics, verbatim.
  if (NumOuts == 0) {
    if (FnNumOuts > 0 && OutPs[0])
      return {boxOf(OutPs[0])->V};
    return {};
  }
  if (NumOuts > std::max<size_t>(FnNumOuts, 1))
    throw MatlabError(
        format("too many output arguments from '%s'", Name.c_str()));
  std::vector<ValuePtr> Outs;
  Outs.reserve(NumOuts);
  for (size_t K = 0; K != NumOuts; ++K) {
    if (K >= FnNumOuts || !OutPs[K])
      throw MatlabError(format("output argument %zu of '%s' not assigned",
                               K + 1, Name.c_str()));
    Outs.push_back(boxOf(OutPs[K])->V);
  }
  return Outs;
}

const std::string &majic::native::preludeSource() {
  static const std::string Text = format(R"MLF(/* majic_mlf.h - the mlf-style runtime interface for MaJIC-generated C.
 * Emitted by the host engine beside each generated source. The layouts of
 * mxValue and MajicNativeApi mirror native/NativeABI.h field for field
 * (native ABI version %d); the numeric operator/class codes baked into
 * the macros are pinned by static_asserts in NativeRuntime.cpp.
 */
#ifndef MAJIC_MLF_H
#define MAJIC_MLF_H

#include <math.h>
#include <string.h>

/* The public prefix of a boxed value. wclass caches the value's class
 * while an element store may write the array directly (unique reference,
 * class <= real); -1 forces the slow path through the host. */
typedef struct mxValue {
  double *re;
  long long rows;
  long long cols;
  long long numel;
  int wclass;
  int klass; /* 0 bool, 1 int, 2 real, 3 complex, 4 string */
} mxValue;

typedef struct MajicNativeApi {
  mxValue *(*box_f)(double);
  mxValue *(*box_i)(long long);
  mxValue *(*box_b)(long long);
  mxValue *(*box_c)(double, double);
  mxValue *(*string_const)(const char *);
  mxValue *(*retain)(mxValue *);
  double (*get_scalar)(mxValue *);
  long long (*get_int_scalar)(mxValue *);
  void (*get_complex)(mxValue *, double *, double *);
  long long (*is_true)(mxValue *);
  long long (*check_subscript)(double);
  void (*check_defined)(mxValue *, const char *);
  double (*guard)(int, double);
  double (*pow_deopt)(double, double);
  double *(*deopt_complex)(void);
  long long (*null_len)(void);
  mxValue *(*zeros)(long long, long long, int);
  void (*fill)(mxValue *, double);
  double (*load_chk)(mxValue *, long long);
  double (*load2_chk)(mxValue *, long long, long long);
  void (*store_slow)(mxValue **, long long, double, int);
  void (*store_grow)(mxValue **, long long, double, int);
  void (*store2_slow)(mxValue **, long long, long long, double, int);
  void (*store2_grow)(mxValue **, long long, long long, double, int);
  mxValue *(*rt_bin)(int, mxValue *, mxValue *);
  mxValue *(*rt_un)(int, mxValue *);
  mxValue *(*col_slice)(mxValue *, long long);
  mxValue *(*range3)(double, double, double);
  mxValue *(*colonv)(mxValue *, mxValue *, mxValue *);
  mxValue *(*cat)(int, int, ...);
  mxValue *(*index_load)(mxValue *, int, ...);
  void (*index_assign)(mxValue **, mxValue *, int, ...);
  mxValue *(*ew_alloc)(int, ...);
  mxValue *(*gemv)(mxValue *, mxValue *);
  mxValue *(*axpy)(double, mxValue *, mxValue *);
  void (*call_builtin)(const char *, int, int, ...);
  void (*call_function)(const char *, int, int, ...);
  void (*display)(mxValue *, const char *);
  void (*poll)(long long);
} MajicNativeApi;

static const MajicNativeApi *mlf_api;

int majic_native_init(const MajicNativeApi *api, int abi_version) {
  if (abi_version != %d)
    return 1;
  mlf_api = api;
  return 0;
}

/* Bit-exact double from its IEEE-754 image: the emitter uses this for
 * inf/nan literals, and mlf_rem for MATLAB's canonical quiet NaN. */
static inline double mlf_f64bits(unsigned long long b) {
  double d;
  memcpy(&d, &b, sizeof d);
  return d;
}

/* Colon sentinel for index argument lists. */
#define MLF_COLON ((mxValue *)1)

/* Scalar math kept bit-identical to the host's evalScalarIntrinsic:
 * min/max use the interpreter's comparison form (NOT fmin/fmax, whose
 * NaN handling differs), rem's y==0 case is the canonical quiet NaN
 * (NOT 0.0/0.0, which is -nan on x86). */
#define mlf_sign(x) ((x) > 0 ? 1.0 : ((x) < 0 ? -1.0 : 0.0))
#define mlf_mod(x, y) ((y) == 0 ? (x) : (x)-floor((x) / (y)) * (y))
#define mlf_rem(x, y)                                                      \
  ((y) == 0 ? mlf_f64bits(0x7ff8000000000000ull)                           \
            : (x)-trunc((x) / (y)) * (y))
#define mlf_min2(x, y) ((y) < (x) ? (y) : (x))
#define mlf_max2(x, y) ((x) < (y) ? (y) : (x))

/* Guarded elementwise power: a negative base with a non-integral
 * exponent escalates to a complex result, which only the general tiers
 * can produce - deoptimize through the host. */
#define mlf_powg(x, y)                                                     \
  (((x) < 0 && (y) != floor(y)) ? mlf_api->pow_deopt((x), (y))             \
                                : pow((x), (y)))

/* Data access. Reading a complex (or absent) value through the real view
 * would drop the imaginary half, so it deoptimizes instead. */
#define mxRe(p)                                                            \
  (((p) == 0 || (p)->klass == 3) ? mlf_api->deopt_complex() : (p)->re)
#define mxRows(p) ((p) ? (p)->rows : mlf_api->null_len())
#define mxCols(p) ((p) ? (p)->cols : mlf_api->null_len())
#define mxNumel(p) ((p) ? (p)->numel : mlf_api->null_len())
#define mxRetain(p) (mlf_api->retain(p))

/* Element stores: one compare + one move when the write cache allows,
 * host slow path (copy-on-write, class promotion, growth) otherwise. */
#define mlfStore(pp, i, x, cls)                                            \
  do {                                                                     \
    if (*(pp) && (*(pp))->wclass >= (cls))                                 \
      (*(pp))->re[(i)] = (x);                                              \
    else                                                                   \
      mlf_api->store_slow((pp), (i), (x), (cls));                          \
  } while (0)
#define mlfStoreGrow(pp, i, x, cls)                                        \
  do {                                                                     \
    if (*(pp) && (*(pp))->wclass >= (cls) && (i) >= 0 &&                   \
        (i) < (*(pp))->numel)                                              \
      (*(pp))->re[(i)] = (x);                                              \
    else                                                                   \
      mlf_api->store_grow((pp), (i), (x), (cls));                          \
  } while (0)
#define mlfStore2(pp, r, c, x, cls)                                        \
  do {                                                                     \
    if (*(pp) && (*(pp))->wclass >= (cls))                                 \
      (*(pp))->re[(c) * (*(pp))->rows + (r)] = (x);                        \
    else                                                                   \
      mlf_api->store2_slow((pp), (r), (c), (x), (cls));                    \
  } while (0)
#define mlfStore2Grow(pp, r, c, x, cls)                                    \
  do {                                                                     \
    if (*(pp) && (*(pp))->wclass >= (cls) && (r) >= 0 &&                   \
        (r) < (*(pp))->rows && (c) >= 0 && (c) < (*(pp))->cols)            \
      (*(pp))->re[(c) * (*(pp))->rows + (r)] = (x);                        \
    else                                                                   \
      mlf_api->store2_grow((pp), (r), (c), (x), (cls));                    \
  } while (0)

/* Checked loads: fast path in bounds on a real array, host otherwise
 * (identical out-of-bounds messages, complex deopt). */
#define mlfLoadChecked(p, i)                                               \
  (((p) && (p)->klass != 3 && (i) >= 0 && (i) < (p)->numel)                \
       ? (p)->re[(i)]                                                      \
       : mlf_api->load_chk((p), (i)))
#define mlfLoad2Checked(p, r, c)                                           \
  (((p) && (p)->klass != 3 && (r) >= 0 && (r) < (p)->rows && (c) >= 0 &&   \
    (c) < (p)->cols)                                                       \
       ? (p)->re[(c) * (p)->rows + (r)]                                    \
       : mlf_api->load2_chk((p), (r), (c)))

/* Fused elementwise support. */
#define mlfEwAlloc(...) (mlf_api->ew_alloc(__VA_ARGS__))
#define mlfEwLoad(p, k) ((p)->numel == 1 ? (p)->re[0] : (p)->re[k])
#define mlfEwGuard(i, x) (mlf_api->guard((i), (x)))

/* Boxing / unboxing / checks. */
#define mlfScalar(x) (mlf_api->box_f(x))
#define mlfIntScalar(x) (mlf_api->box_i(x))
#define mlfLogicalScalar(x) (mlf_api->box_b(x))
#define mlfComplexScalar(re_, im_) (mlf_api->box_c((re_), (im_)))
#define mlfString(s) (mlf_api->string_const(s))
#define mlfGetScalar(p) (mlf_api->get_scalar(p))
#define mlfGetIntScalar(p) (mlf_api->get_int_scalar(p))
#define mlfGetComplexScalar(p, re_, im_)                                   \
  (mlf_api->get_complex((p), (re_), (im_)))
#define mlfIsTrue(p) (mlf_api->is_true(p))
#define mlfCheckSubscript(x) (mlf_api->check_subscript(x))
#define mlfCheckDefined(p, name) (mlf_api->check_defined((p), (name)))

/* Whole-value operations. */
#define mlfZeros(r, c, cls) (mlf_api->zeros((r), (c), (cls)))
#define mlfFill(p, x) (mlf_api->fill((p), (x)))
#define mlfColumn(p, c) (mlf_api->col_slice((p), (c)))
#define mlfColon(a, s, b) (mlf_api->range3((a), (s), (b)))
#define mlfColonV(a, s, b) (mlf_api->colonv((a), (s), (b)))
#define mlfUnary(op, p) (mlf_api->rt_un((op), (p)))
#define mlfHorzcat(...) (mlf_api->cat(1, __VA_ARGS__))
#define mlfVertcat(...) (mlf_api->cat(0, __VA_ARGS__))
#define mlfIndex(...) (mlf_api->index_load(__VA_ARGS__))
#define mlfIndexAssign(...) (mlf_api->index_assign(__VA_ARGS__))
#define mlfDgemv(a, x) (mlf_api->gemv((a), (x)))
#define mlfDaxpy(a, x, y) (mlf_api->axpy((a), (x), (y)))

/* Generic binary operators (rt::BinOp codes). */
#define mlfPlus(a, b) (mlf_api->rt_bin(0, (a), (b)))
#define mlfMinus(a, b) (mlf_api->rt_bin(1, (a), (b)))
#define mlfTimes(a, b) (mlf_api->rt_bin(2, (a), (b)))
#define mlfDotTimes(a, b) (mlf_api->rt_bin(3, (a), (b)))
#define mlfRdivide(a, b) (mlf_api->rt_bin(4, (a), (b)))
#define mlfDotRdivide(a, b) (mlf_api->rt_bin(5, (a), (b)))
#define mlfLdivide(a, b) (mlf_api->rt_bin(6, (a), (b)))
#define mlfDotLdivide(a, b) (mlf_api->rt_bin(7, (a), (b)))
#define mlfPower(a, b) (mlf_api->rt_bin(8, (a), (b)))
#define mlfDotPower(a, b) (mlf_api->rt_bin(9, (a), (b)))
#define mlfLt(a, b) (mlf_api->rt_bin(10, (a), (b)))
#define mlfLe(a, b) (mlf_api->rt_bin(11, (a), (b)))
#define mlfGt(a, b) (mlf_api->rt_bin(12, (a), (b)))
#define mlfGe(a, b) (mlf_api->rt_bin(13, (a), (b)))
#define mlfEq(a, b) (mlf_api->rt_bin(14, (a), (b)))
#define mlfNe(a, b) (mlf_api->rt_bin(15, (a), (b)))
#define mlfAnd(a, b) (mlf_api->rt_bin(16, (a), (b)))
#define mlfOr(a, b) (mlf_api->rt_bin(17, (a), (b)))

/* Calls, display, cooperative polling. */
#define mlfCallBuiltin(...) (mlf_api->call_builtin(__VA_ARGS__))
#define mlfCallFunction(...) (mlf_api->call_function(__VA_ARGS__))
#define mlfDisplay(p, name) (mlf_api->display((p), (name)))
#define mlfPoll(n) (mlf_api->poll(n))

#endif /* MAJIC_MLF_H */
)MLF",
                                         kNativeABIVersion,
                                         kNativeABIVersion);
  return Text;
}
