//===- native/NativeABI.h - The native-tier C ABI ---------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed ABI between the engine and natively compiled functions. A
/// native module is a shared object built by the system C compiler from
/// `emitCSource` output; it knows nothing about C++ - it sees boxed
/// values only through the public prefix below and calls back into the
/// host through a table of plain function pointers injected at load time
/// (`majic_native_init`), so the `.so` needs no symbols from the host
/// process and the host needs no `-rdynamic`.
///
/// Layout contract: `MxPub` is the first member of the host's Box (see
/// NativeRuntime.cpp), and the prelude's `struct mxValue` is its textual
/// twin. The `wclass` write-cache field lets generated code store
/// elements with one compare and one move: it holds the value's MClass
/// while the box's reference is unique and the class is at most Real,
/// and -1 whenever a store must take the slow path (copy-on-write,
/// class promotion, complex/string payloads, aliased boxes).
///
/// Versioning: bump kNativeABIVersion for ANY change to MxPub, to
/// MajicNativeApi (order included - modules index the table by layout),
/// or to the semantics the prelude macros bake in. The repository stamps
/// native payloads with this version plus the compiler identification,
/// so a stale `.so` is discarded, never called.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_NATIVE_NATIVEABI_H
#define MAJIC_NATIVE_NATIVEABI_H

namespace majic {
namespace native {

constexpr int kNativeABIVersion = 1;

/// The C-visible public prefix of a boxed value ("mxValue" on the C
/// side). All fields are caches of the underlying Value, refreshed by
/// every host shim that may reallocate or retag the payload.
struct MxPub {
  double *Re;      ///< real data (never dereferenced when Klass is Complex)
  long long Rows;
  long long Cols;
  long long Numel;
  int WClass;      ///< fast-store class cache, -1 = slow path required
  int Klass;       ///< MClass as an int (Complex = 3 triggers deopt reads)
};

/// The sentinel generated code passes for a colon (`:`) index argument.
inline MxPub *const kColonSentinel = reinterpret_cast<MxPub *>(1);

/// The callback table handed to a module via majic_native_init. The
/// member ORDER is the ABI: the prelude declares the identical struct in
/// C and indexes it by layout. Errors never cross this boundary as C++
/// exceptions - every callback traps them and longjmps back to the host
/// wrapper's setjmp, which rethrows on the C++ side.
struct MajicNativeApi {
  // Boxing.
  MxPub *(*box_f)(double X);
  MxPub *(*box_i)(long long X);
  MxPub *(*box_b)(long long X);
  MxPub *(*box_c)(double Re, double Im);
  MxPub *(*string_const)(const char *S);
  MxPub *(*retain)(MxPub *P);

  // Unboxing.
  double (*get_scalar)(MxPub *P);
  long long (*get_int_scalar)(MxPub *P);
  void (*get_complex)(MxPub *P, double *Re, double *Im);
  long long (*is_true)(MxPub *P);

  // Checks and guards.
  long long (*check_subscript)(double X);
  void (*check_defined)(MxPub *P, const char *Name);
  double (*guard)(int Intr, double X);
  double (*pow_deopt)(double X, double Y);
  double *(*deopt_complex)(void);
  long long (*null_len)(void);

  // Allocation and element access.
  MxPub *(*zeros)(long long R, long long C, int Klass);
  void (*fill)(MxPub *P, double X);
  double (*load_chk)(MxPub *P, long long I);
  double (*load2_chk)(MxPub *P, long long R, long long C);
  void (*store_slow)(MxPub **PP, long long I, double X, int Klass);
  void (*store_grow)(MxPub **PP, long long I, double X, int Klass);
  void (*store2_slow)(MxPub **PP, long long R, long long C, double X,
                      int Klass);
  void (*store2_grow)(MxPub **PP, long long R, long long C, double X,
                      int Klass);

  // Whole-value operations.
  MxPub *(*rt_bin)(int Op, MxPub *A, MxPub *B);
  MxPub *(*rt_un)(int Op, MxPub *A);
  MxPub *(*col_slice)(MxPub *V, long long C);
  MxPub *(*range3)(double A, double S, double B);
  MxPub *(*colonv)(MxPub *A, MxPub *S, MxPub *B);
  MxPub *(*cat)(int Horz, int N, ...);             // N operands
  MxPub *(*index_load)(MxPub *Base, int N, ...);   // N indexers
  void (*index_assign)(MxPub **Base, MxPub *Rhs, int N, ...);
  MxPub *(*ew_alloc)(int NOps, ...); // NOps operands, int len, const int *prog
  MxPub *(*gemv)(MxPub *A, MxPub *X);
  MxPub *(*axpy)(double A, MxPub *X, MxPub *Y);

  // Calls, display, polling.
  void (*call_builtin)(const char *Name, int Stmt, int NDsts, ...);
  void (*call_function)(const char *Name, int Stmt, int NDsts, ...);
  void (*display)(MxPub *P, const char *Name);
  void (*poll)(long long N);
};

/// `<fn>_compiled`: the module entry point. Returns 0 on a normal Ret;
/// errors leave through the host's setjmp, never through this value.
using NativeEntryFn = int (*)(MxPub **Args, int NArgs, MxPub **Outs,
                              int NOuts);

/// `majic_native_init`: called once after dlopen; returns nonzero when
/// the module was built against a different ABI version.
using NativeInitFn = int (*)(const MajicNativeApi *Api, int AbiVersion);

} // namespace native
} // namespace majic

#endif // MAJIC_NATIVE_NATIVEABI_H
