//===- native/NativeCompiler.h - Out-of-process C compilation ---*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the system C compiler to turn `emitCSource` output into loadable
/// shared objects, and loads the resulting bytes without touching the
/// filesystem (memfd + /proc/self/fd). The compiler runs out of process
/// with a hard deadline, so a hung or crashing `cc` costs one native
/// compilation, never the engine. All failures throw MatlabError; callers
/// (the engine's tiering logic) treat any throw as "this function stays
/// on the VM tier".
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_NATIVE_NATIVECOMPILER_H
#define MAJIC_NATIVE_NATIVECOMPILER_H

#include "native/NativeABI.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace majic {
namespace native {

/// A loaded native module. Owns the dlopen handle and the memfd behind
/// the /proc/self/fd path it was loaded from; the entry pointer is valid
/// for the lifetime of this object. The fd must stay open as long as the
/// module is loaded: dlopen deduplicates by pathname, so releasing the
/// number would let a later load's /proc/self/fd/<N> path silently alias
/// this module instead of mapping its own bytes.
class NativeModule {
public:
  NativeModule(void *Handle, NativeEntryFn Entry, std::string Name,
               size_t NumOuts, int MemFd = -1)
      : Handle(Handle), Entry(Entry), Name(std::move(Name)),
        NumOuts(NumOuts), MemFd(MemFd) {}
  NativeModule(const NativeModule &) = delete;
  NativeModule &operator=(const NativeModule &) = delete;
  ~NativeModule();

  NativeEntryFn entry() const { return Entry; }
  const std::string &name() const { return Name; }
  size_t numOuts() const { return NumOuts; }

private:
  void *Handle;
  NativeEntryFn Entry;
  std::string Name;
  size_t NumOuts;
  int MemFd;
};

/// The entry-point symbol `emitCSource` gives a function - both sides of
/// the dlsym handshake derive it from the same sanitized name.
std::string entrySymbol(const std::string &FnName);

class NativeCompiler {
public:
  /// Probes \p CompilerPath ("cc --version"); an unprobeable compiler
  /// leaves the instance unavailable and every compile() failing, which
  /// the engine's fallback turns into "VM tier only".
  explicit NativeCompiler(std::string CompilerPath,
                          int64_t TimeoutMs = 30000);

  bool available() const { return !Id.empty(); }
  const std::string &compilerPath() const { return Path; }

  /// First line of `cc --version`, empty when unavailable. Folded into
  /// the repository build stamp so a compiler upgrade invalidates cached
  /// native payloads.
  const std::string &compilerId() const { return Id; }

  /// Compiles \p CSource (which includes "majic_mlf.h"; the prelude is
  /// written beside it) with `-std=c11 -Wall -Werror -O2 -fPIC -shared
  /// -fno-math-errno -ffp-contract=off` and returns the shared-object
  /// bytes. Throws MatlabError with a stderr excerpt on any failure.
  std::vector<uint8_t> compile(const std::string &CSource,
                               const std::string &FnName) const;

  /// Loads shared-object bytes through an anonymous memfd, resolves
  /// majic_native_init and the entry symbol, and injects the host API
  /// table. Throws MatlabError on loader failure or ABI-version refusal.
  static std::unique_ptr<NativeModule>
  load(const std::vector<uint8_t> &SoBytes, const std::string &FnName,
       size_t NumOuts);

private:
  std::string Path;
  std::string Id;
  int64_t TimeoutMs;
};

} // namespace native
} // namespace majic

#endif // MAJIC_NATIVE_NATIVECOMPILER_H
