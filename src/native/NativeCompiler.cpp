//===- native/NativeCompiler.cpp - Out-of-process C compilation ------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "native/NativeCompiler.h"

#include "native/NativeRuntime.h"
#include "obs/Trace.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>

#include <dlfcn.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace majic;
using namespace majic::native;

NativeModule::~NativeModule() {
  if (Handle)
    dlclose(Handle);
  if (MemFd >= 0)
    close(MemFd);
}

std::string majic::native::entrySymbol(const std::string &FnName) {
  return cIdentifier(FnName) + "_compiled";
}

namespace {

int64_t monotonicMs() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<int64_t>(Ts.tv_sec) * 1000 + Ts.tv_nsec / 1000000;
}

struct RunResult {
  int ExitCode = -1;
  bool TimedOut = false;
  std::string Output; // stdout + stderr, interleaved
};

/// Runs \p Argv directly (no shell), captures combined stdout/stderr, and
/// SIGKILLs the child when the deadline passes. Never throws: a spawn
/// failure reports as exit 127 with a message in Output.
RunResult runCommand(const std::vector<std::string> &Argv, int64_t TimeoutMs) {
  RunResult R;
  int Fds[2];
  if (pipe(Fds) != 0) {
    R.ExitCode = 127;
    R.Output = format("pipe: %s", std::strerror(errno));
    return R;
  }

  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);

  pid_t Pid = fork();
  if (Pid < 0) {
    close(Fds[0]);
    close(Fds[1]);
    R.ExitCode = 127;
    R.Output = format("fork: %s", std::strerror(errno));
    return R;
  }
  if (Pid == 0) {
    // Child: pipe carries both streams; exec failure exits 127 like sh.
    dup2(Fds[1], STDOUT_FILENO);
    dup2(Fds[1], STDERR_FILENO);
    close(Fds[0]);
    close(Fds[1]);
    execvp(Args[0], Args.data());
    _exit(127);
  }

  close(Fds[1]);
  int64_t Deadline = monotonicMs() + TimeoutMs;
  bool Eof = false;
  while (!Eof) {
    int64_t Left = Deadline - monotonicMs();
    if (Left <= 0) {
      kill(Pid, SIGKILL);
      R.TimedOut = true;
      break;
    }
    pollfd Pfd = {Fds[0], POLLIN, 0};
    int Pr = poll(&Pfd, 1, static_cast<int>(Left > 200 ? 200 : Left));
    if (Pr > 0) {
      char Buf[4096];
      ssize_t N = read(Fds[0], Buf, sizeof Buf);
      if (N > 0)
        R.Output.append(Buf, static_cast<size_t>(N));
      else
        Eof = true; // writer closed (child exited or closed its streams)
    }
  }
  close(Fds[0]);

  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR)
    ;
  if (R.TimedOut)
    R.ExitCode = -1;
  else if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  else
    R.ExitCode = 128 + (WIFSIGNALED(Status) ? WTERMSIG(Status) : 0);
  return R;
}

/// mkdtemp-backed scratch directory, removed (with known contents) on
/// scope exit.
struct TempDir {
  std::string Path;
  std::vector<std::string> Files;

  TempDir() {
    char Tmpl[] = "/tmp/majic-native-XXXXXX";
    if (!mkdtemp(Tmpl))
      throw MatlabError(
          format("native compile: mkdtemp: %s", std::strerror(errno)));
    Path = Tmpl;
  }
  ~TempDir() {
    for (const std::string &F : Files)
      unlink(F.c_str());
    rmdir(Path.c_str());
  }

  std::string write(const std::string &Name, const std::string &Contents) {
    std::string Full = Path + "/" + Name;
    Files.push_back(Full);
    FILE *Fp = fopen(Full.c_str(), "wb");
    if (!Fp)
      throw MatlabError(
          format("native compile: cannot write %s", Full.c_str()));
    size_t N = fwrite(Contents.data(), 1, Contents.size(), Fp);
    if (fclose(Fp) != 0 || N != Contents.size())
      throw MatlabError(
          format("native compile: short write to %s", Full.c_str()));
    return Full;
  }
};

std::string readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  FILE *Fp = fopen(Path.c_str(), "rb");
  if (!Fp)
    return format("cannot open %s", Path.c_str());
  fseek(Fp, 0, SEEK_END);
  long Size = ftell(Fp);
  fseek(Fp, 0, SEEK_SET);
  if (Size < 0) {
    fclose(Fp);
    return format("cannot size %s", Path.c_str());
  }
  Out.resize(static_cast<size_t>(Size));
  size_t N = Out.empty() ? 0 : fread(Out.data(), 1, Out.size(), Fp);
  fclose(Fp);
  if (N != Out.size())
    return format("short read from %s", Path.c_str());
  return std::string();
}

std::string firstLine(const std::string &S) {
  size_t Pos = S.find('\n');
  return Pos == std::string::npos ? S : S.substr(0, Pos);
}

/// Trims compiler stderr to something a MatlabError can carry.
std::string excerpt(const std::string &S) {
  const size_t Max = 500;
  if (S.size() <= Max)
    return S;
  return S.substr(0, Max) + "...";
}

} // namespace

NativeCompiler::NativeCompiler(std::string CompilerPath, int64_t TimeoutMs)
    : Path(std::move(CompilerPath)), TimeoutMs(TimeoutMs) {
  if (Path.empty())
    return;
  RunResult R = runCommand({Path, "--version"}, 5000);
  if (R.ExitCode == 0 && !R.Output.empty())
    Id = firstLine(R.Output);
}

std::vector<uint8_t>
NativeCompiler::compile(const std::string &CSource,
                        const std::string &FnName) const {
  faults::killPoint(faults::Site::NativeCompile);
  faults::maybeThrow(faults::Site::NativeCompile);
  obs::TraceScope Span("native.compile", "native", FnName.c_str());

  if (!available())
    throw MatlabError(
        format("native compile: compiler '%s' unavailable", Path.c_str()));

  TempDir Dir;
  Dir.write("majic_mlf.h", preludeSource());
  std::string CFile = Dir.write(cIdentifier(FnName) + ".c", CSource);
  std::string SoFile = Dir.Path + "/" + cIdentifier(FnName) + ".so";
  Dir.Files.push_back(SoFile); // clean up even on a partial compile

  // -ffp-contract=off: generated arithmetic must round exactly like the
  // host tiers (no fused multiply-add). -fno-math-errno frees the
  // compiler to inline sqrt and friends; their IEEE results are
  // unchanged. No -ffast-math: reassociation would break bit-identity.
  RunResult R = runCommand({Path, "-std=c11", "-Wall", "-Werror", "-O2",
                            "-fPIC", "-shared", "-fno-math-errno",
                            "-ffp-contract=off", "-o", SoFile, CFile},
                           TimeoutMs);
  if (R.TimedOut)
    throw MatlabError(format("native compile of '%s' timed out after %lldms",
                             FnName.c_str(),
                             static_cast<long long>(TimeoutMs)));
  if (R.ExitCode != 0)
    throw MatlabError(format("native compile of '%s' failed (exit %d): %s",
                             FnName.c_str(), R.ExitCode,
                             excerpt(R.Output).c_str()));

  std::vector<uint8_t> SoBytes;
  std::string Err = readFileBytes(SoFile, SoBytes);
  if (!Err.empty() || SoBytes.empty())
    throw MatlabError(format("native compile of '%s' produced no object: %s",
                             FnName.c_str(), Err.c_str()));
  return SoBytes;
}

std::unique_ptr<NativeModule>
NativeCompiler::load(const std::vector<uint8_t> &SoBytes,
                     const std::string &FnName, size_t NumOuts) {
  faults::killPoint(faults::Site::NativeLoad);
  faults::maybeThrow(faults::Site::NativeLoad);
  obs::TraceScope Span("native.load", "native", FnName.c_str());

  int Fd = memfd_create("majic-native", MFD_CLOEXEC);
  if (Fd < 0)
    throw MatlabError(
        format("native load: memfd_create: %s", std::strerror(errno)));
  size_t Off = 0;
  while (Off < SoBytes.size()) {
    ssize_t N = write(Fd, SoBytes.data() + Off, SoBytes.size() - Off);
    if (N <= 0) {
      close(Fd);
      throw MatlabError(
          format("native load: write: %s", std::strerror(errno)));
    }
    Off += static_cast<size_t>(N);
  }

  // The fd is NOT closed after dlopen: glibc deduplicates dlopen by
  // pathname, so if this fd number were released and reused by a later
  // load, its /proc/self/fd/<N> path would resolve to this already-loaded
  // module and the caller would silently run the wrong machine code.
  // Keeping the fd open for the module's lifetime keeps every live
  // module's load path unique (a live fd number cannot be reallocated).
  std::string FdPath = format("/proc/self/fd/%d", Fd);
  void *Handle = dlopen(FdPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    // dlerror() clears the pending error, so it must be called exactly
    // once: a second call would return NULL and std::string(nullptr) is
    // undefined behavior.
    const char *E = dlerror();
    std::string Err = E ? E : "unknown dlopen error";
    close(Fd);
    throw MatlabError(
        format("native load of '%s' failed: %s", FnName.c_str(), Err.c_str()));
  }

  auto Fail = [&](const std::string &Msg) -> MatlabError {
    dlclose(Handle);
    close(Fd);
    return MatlabError(Msg);
  };
  auto Init = reinterpret_cast<NativeInitFn>(
      dlsym(Handle, "majic_native_init"));
  if (!Init)
    throw Fail(format("native load of '%s': no majic_native_init",
                      FnName.c_str()));
  std::string Sym = entrySymbol(FnName);
  auto Entry = reinterpret_cast<NativeEntryFn>(dlsym(Handle, Sym.c_str()));
  if (!Entry)
    throw Fail(format("native load of '%s': no entry symbol '%s'",
                      FnName.c_str(), Sym.c_str()));
  if (Init(&hostApiTable(), kNativeABIVersion) != 0)
    throw Fail(format("native load of '%s': ABI version mismatch",
                      FnName.c_str()));
  return std::make_unique<NativeModule>(Handle, Entry, FnName, NumOuts, Fd);
}
