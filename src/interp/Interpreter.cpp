//===- interp/Interpreter.cpp - Tree-walking interpreter ---------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "obs/Trace.h"
#include "runtime/Builtins.h"
#include "runtime/Ops.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace majic;
using rt::Indexer;

namespace majic {

/// One activation record: the slot file plus the evaluation logic.
class InterpFrame {
public:
  InterpFrame(Interpreter &I, const Function &F, std::vector<ValuePtr> &Slots)
      : I(I), F(F), Slots(Slots) {}

  enum class Flow : uint8_t { Normal, Break, Continue, Return };

  Flow execBlock(const Block &B);
  Flow execStmt(const Stmt *S);

  ValuePtr evalExpr(const Expr *E);

private:
  /// How a symbol occurrence resolves right now (ambiguous symbols are
  /// decided here, at runtime, as the paper prescribes).
  enum class DynKind { Variable, Builtin, UserFunction };
  DynKind resolveDynamic(const IdentExpr *Id) const;

  ValuePtr &slot(int SlotIdx) {
    assert(SlotIdx >= 0 && static_cast<size_t>(SlotIdx) < Slots.size());
    return Slots[static_cast<size_t>(SlotIdx)];
  }

  /// Variable access through the dynamic symbol table: MATLAB 6 resolved
  /// every occurrence by name at runtime, so the faithful front end pays a
  /// hash lookup per access (Section 2.1). The value storage stays in the
  /// slot file either way.
  ValuePtr &varAccess(const std::string &Name, int SlotIdx) {
    if (I.DynamicNameLookup) {
      auto [It, Inserted] = DynTable.try_emplace(Name, SlotIdx);
      return slot(It->second);
    }
    return slot(SlotIdx);
  }

  ValuePtr evalIdent(const IdentExpr *Id);
  ValuePtr evalIndexOrCall(const IndexOrCallExpr *IC);
  std::vector<ValuePtr> evalCall(const IndexOrCallExpr *IC, size_t NumOuts);
  Value evalIndexRead(const Value &Base, const std::vector<Expr *> &Args);
  Indexer evalIndexer(const Expr *Arg, const Value &Base, size_t Dim,
                      size_t NumDims);
  ValuePtr evalMatrix(const MatrixExpr *M);

  void execAssign(const AssignStmt *A);
  void assignTo(const LValue &LV, ValuePtr V);
  void display(const std::string &Name, const Value &V);

  Interpreter &I;
  const Function &F;
  std::vector<ValuePtr> &Slots;

  /// Binding for 'end' while evaluating a subscript expression.
  const Value *EndBase = nullptr;
  size_t EndLen = 0;

  /// The dynamic symbol table (name -> slot) used in faithful mode.
  std::unordered_map<std::string, int> DynTable;
};

} // namespace majic

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::vector<ValuePtr> Interpreter::run(const Function &F,
                                       std::vector<ValuePtr> Args,
                                       size_t NumOuts) {
  obs::TraceScope Span("interp.run", "exec", F.name());
  if (Args.size() > F.params().size())
    throw MatlabError(format("too many input arguments to '%s'",
                             F.name().c_str()));
  std::vector<ValuePtr> Slots(F.numSlots());
  for (size_t A = 0; A != Args.size(); ++A) {
    int SlotIdx = F.paramSlots()[A];
    if (SlotIdx >= 0)
      Slots[SlotIdx] = std::move(Args[A]); // CoW: no copy for read-only use
  }
  InterpFrame Frame(*this, F, Slots);
  Frame.execBlock(F.body());

  // nargout = 0 (statement context): no output is required, but the first
  // declared output is returned when assigned so the caller can display it.
  if (NumOuts == 0) {
    if (!F.outs().empty() && F.outSlots()[0] >= 0 && Slots[F.outSlots()[0]])
      return {Slots[F.outSlots()[0]]};
    return {};
  }

  std::vector<ValuePtr> Outs;
  for (size_t O = 0; O != NumOuts; ++O) {
    if (O >= F.outs().size())
      throw MatlabError(format("too many output arguments from '%s'",
                               F.name().c_str()));
    int SlotIdx = F.outSlots()[O];
    ValuePtr V = SlotIdx >= 0 ? Slots[SlotIdx] : nullptr;
    if (!V)
      throw MatlabError(format("output argument '%s' of '%s' not assigned",
                               F.outs()[O].c_str(), F.name().c_str()));
    Outs.push_back(std::move(V));
  }
  return Outs;
}

void Interpreter::runScript(const Function &F,
                            std::vector<ValuePtr> &Workspace) {
  obs::TraceScope Span("interp.script", "exec", F.name());
  Workspace.resize(F.numSlots());
  InterpFrame Frame(*this, F, Workspace);
  Frame.execBlock(F.body());
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

InterpFrame::Flow InterpFrame::execBlock(const Block &B) {
  for (const Stmt *S : B) {
    Flow FlowResult = execStmt(S);
    if (FlowResult != Flow::Normal)
      return FlowResult;
  }
  return Flow::Normal;
}

InterpFrame::Flow InterpFrame::execStmt(const Stmt *S) {
  // Execution-limit poll (op budget + cooperative interrupt): the
  // interpreter's statement granularity is its natural cancellation point.
  I.Ctx.Exec.consume(1);
  switch (S->getKind()) {
  case Stmt::Kind::Expr: {
    const auto *ES = cast<ExprStmt>(S);
    // A bare call with zero desired outputs is effect-only (disp, plot...).
    if (const auto *IC = dyn_cast<IndexOrCallExpr>(ES->expr())) {
      if (resolveDynamic(IC->base()) != DynKind::Variable) {
        // Statement context is nargout = 0: void functions run fine, and a
        // produced first output displays as ans when not suppressed.
        std::vector<ValuePtr> Rs = evalCall(IC, 0);
        if (ES->displays() && !Rs.empty())
          display("ans", *Rs.front());
        return Flow::Normal;
      }
    }
    ValuePtr V = evalExpr(ES->expr());
    if (ES->displays())
      display("ans", *V);
    return Flow::Normal;
  }

  case Stmt::Kind::Assign:
    execAssign(cast<AssignStmt>(S));
    return Flow::Normal;

  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    for (const IfStmt::Branch &Br : If->branches())
      if (evalExpr(Br.Cond)->isTrue())
        return execBlock(Br.Body);
    return execBlock(If->elseBlock());
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    while (evalExpr(W->cond())->isTrue()) {
      // Charge each iteration, not just each body statement: an empty-body
      // `while 1, end` must still hit the op budget / interrupt poll.
      I.Ctx.Exec.consume(1);
      Flow FlowResult = execBlock(W->body());
      if (FlowResult == Flow::Break)
        break;
      if (FlowResult == Flow::Return)
        return Flow::Return;
    }
    return Flow::Normal;
  }

  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    ValuePtr Iterand = evalExpr(For->iterand());
    const Value &It = *Iterand;
    int VarSlot = For->loopVarSlot();
    assert(VarSlot >= 0 && "loop variable without a slot");
    // MATLAB iterates over the columns of the iterand.
    size_t NumIter = It.isEmpty() ? 0 : It.cols();
    for (size_t J = 0; J != NumIter; ++J) {
      I.Ctx.Exec.consume(1); // empty-body loops must still poll (see While)
      ValuePtr &LoopVar = varAccess(For->loopVar(), VarSlot);
      if (It.rows() == 1) {
        Value V = Value::scalar(It.re(J));
        if (It.isComplex()) {
          V = Value::complexScalar(It.re(J), It.im(J));
        } else {
          V.setClass(It.mclass() == MClass::String ? MClass::Real
                                                   : It.mclass());
        }
        LoopVar = makeValue(std::move(V));
      } else {
        LoopVar =
            makeValue(rt::index2(It, Indexer::colon(), Indexer::single(J)));
      }
      Flow FlowResult = execBlock(For->body());
      if (FlowResult == Flow::Break)
        break;
      if (FlowResult == Flow::Return)
        return Flow::Return;
    }
    return Flow::Normal;
  }

  case Stmt::Kind::Break:
    return Flow::Break;
  case Stmt::Kind::Continue:
    return Flow::Continue;
  case Stmt::Kind::Return:
    return Flow::Return;

  case Stmt::Kind::Clear: {
    const auto *C = cast<ClearStmt>(S);
    if (C->names().empty()) {
      for (ValuePtr &V : Slots)
        V = nullptr;
      return Flow::Normal;
    }
    // Specific names were resolved to slots by the disambiguator; names
    // that never denote variables are ignored, like MATLAB does.
    for (int SlotIdx : C->slots())
      if (SlotIdx >= 0)
        slot(SlotIdx) = nullptr;
    return Flow::Normal;
  }
  }
  majic_unreachable("invalid statement kind");
}

void InterpFrame::execAssign(const AssignStmt *A) {
  if (A->isMulti()) {
    const auto *IC = dyn_cast<IndexOrCallExpr>(A->rhs());
    if (!IC || resolveDynamic(IC->base()) == DynKind::Variable)
      throw MatlabError("multiple assignment requires a function call on the "
                        "right-hand side");
    std::vector<ValuePtr> Rs = evalCall(IC, A->targets().size());
    if (Rs.size() < A->targets().size())
      throw MatlabError("not enough output arguments");
    for (size_t T = 0; T != A->targets().size(); ++T) {
      assignTo(A->targets()[T], Rs[T]);
      if (A->displays())
        display(A->targets()[T].Name, *Rs[T]);
    }
    return;
  }
  ValuePtr V = evalExpr(A->rhs());
  assignTo(A->targets().front(), V);
  if (A->displays()) {
    const LValue &LV = A->targets().front();
    display(LV.Name, *slot(LV.VarSlot));
  }
}

void InterpFrame::assignTo(const LValue &LV, ValuePtr V) {
  assert(LV.VarSlot >= 0 && "assignment target without a slot");
  ValuePtr &Dest = varAccess(LV.Name, LV.VarSlot);
  if (!LV.HasParens) {
    Dest = std::move(V);
    return;
  }
  // Indexed assignment with resize-on-write semantics.
  if (!Dest)
    Dest = makeValue(Value()); // auto-vivify as []
  Value &Base = makeUnique(Dest);
  if (LV.Indices.size() == 1) {
    Indexer I = evalIndexer(LV.Indices[0], Base, 0, 1);
    rt::indexAssign1(Base, I, *V);
  } else if (LV.Indices.size() == 2) {
    Indexer R = evalIndexer(LV.Indices[0], Base, 0, 2);
    Indexer C = evalIndexer(LV.Indices[1], Base, 1, 2);
    rt::indexAssign2(Base, R, C, *V);
  } else {
    throw MatlabError("only 1-D and 2-D subscripts are supported");
  }
}

void InterpFrame::display(const std::string &Name, const Value &V) {
  I.Ctx.print(rt::displayValue(V, Name.empty() ? "ans" : Name));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

InterpFrame::DynKind InterpFrame::resolveDynamic(const IdentExpr *Id) const {
  switch (Id->symKind()) {
  case SymKind::Variable:
    return DynKind::Variable;
  case SymKind::Builtin:
    return DynKind::Builtin;
  case SymKind::UserFunction:
    return DynKind::UserFunction;
  case SymKind::Ambiguous: {
    // The runtime decision the compiler deferred (Section 2.1): a live
    // variable wins, then builtins, then user functions.
    int SlotIdx = Id->varSlot();
    if (SlotIdx >= 0 && Slots[SlotIdx])
      return DynKind::Variable;
    if (BuiltinTable::instance().contains(Id->name()))
      return DynKind::Builtin;
    return DynKind::UserFunction;
  }
  case SymKind::Unresolved:
    break;
  }
  majic_unreachable("unresolved symbol reached the interpreter");
}

ValuePtr InterpFrame::evalIdent(const IdentExpr *Id) {
  switch (resolveDynamic(Id)) {
  case DynKind::Variable: {
    ValuePtr V = varAccess(Id->name(), Id->varSlot());
    if (!V)
      throw MatlabError(
          format("undefined function or variable '%s'", Id->name().c_str()),
          Id->getLoc());
    return V;
  }
  case DynKind::Builtin: {
    const BuiltinDef *Def = BuiltinTable::instance().lookup(Id->name());
    std::vector<Value> Rs = BuiltinTable::call(*Def, I.Ctx, {}, 1);
    if (Rs.empty())
      throw MatlabError(format("builtin '%s' returns no value",
                               Id->name().c_str()));
    return makeValue(std::move(Rs.front()));
  }
  case DynKind::UserFunction: {
    std::vector<ValuePtr> Rs =
        I.Resolver.callFunction(Id->name(), {}, 1, Id->getLoc());
    if (Rs.empty())
      throw MatlabError(format("function '%s' returns no value",
                               Id->name().c_str()));
    return Rs.front();
  }
  }
  majic_unreachable("invalid dynamic kind");
}

Indexer InterpFrame::evalIndexer(const Expr *Arg, const Value &Base,
                                 size_t Dim, size_t NumDims) {
  if (isa<ColonWildcardExpr>(Arg))
    return Indexer::colon();
  size_t DimLen;
  if (NumDims == 1)
    DimLen = Base.numel();
  else
    DimLen = Dim == 0 ? Base.rows() : Base.cols();
  // 'end' in this subscript position resolves to DimLen; evaluate with a
  // scoped binding.
  ValuePtr IdxV = [&] {
    struct EndScope {
      InterpFrame &Frame;
      const Value *Saved;
      size_t SavedLen;
      EndScope(InterpFrame &Frame, const Value *B, size_t L)
          : Frame(Frame), Saved(Frame.EndBase), SavedLen(Frame.EndLen) {
        Frame.EndBase = B;
        Frame.EndLen = L;
      }
      ~EndScope() {
        Frame.EndBase = Saved;
        Frame.EndLen = SavedLen;
      }
    } Scope(*this, &Base, DimLen);
    return evalExpr(Arg);
  }();
  return Indexer::fromValue(*IdxV, DimLen);
}

Value InterpFrame::evalIndexRead(const Value &Base,
                                 const std::vector<Expr *> &Args) {
  if (Args.empty())
    return Base; // x() is x
  if (Args.size() == 1) {
    Indexer I1 = evalIndexer(Args[0], Base, 0, 1);
    return rt::index1(Base, I1);
  }
  if (Args.size() == 2) {
    Indexer R = evalIndexer(Args[0], Base, 0, 2);
    Indexer C = evalIndexer(Args[1], Base, 1, 2);
    return rt::index2(Base, R, C);
  }
  throw MatlabError("only 1-D and 2-D subscripts are supported");
}

std::vector<ValuePtr> InterpFrame::evalCall(const IndexOrCallExpr *IC,
                                            size_t NumOuts) {
  std::vector<ValuePtr> Args;
  Args.reserve(IC->args().size());
  for (const Expr *A : IC->args()) {
    if (isa<ColonWildcardExpr>(A) || isa<EndRefExpr>(A))
      throw MatlabError("':' and 'end' are only valid inside subscripts",
                        A->getLoc());
    Args.push_back(evalExpr(A));
  }

  DynKind DK = resolveDynamic(IC->base());
  if (DK == DynKind::Builtin) {
    const BuiltinDef *Def = BuiltinTable::instance().lookup(IC->base()->name());
    std::vector<const Value *> Ptrs;
    Ptrs.reserve(Args.size());
    for (const ValuePtr &P : Args)
      Ptrs.push_back(P.get());
    std::vector<Value> Rs = BuiltinTable::call(*Def, I.Ctx, Ptrs, NumOuts);
    std::vector<ValuePtr> Out;
    for (Value &V : Rs)
      Out.push_back(makeValue(std::move(V)));
    return Out;
  }
  assert(DK == DynKind::UserFunction && "evalCall on a variable");
  return I.Resolver.callFunction(IC->base()->name(), std::move(Args), NumOuts,
                                 IC->getLoc());
}

ValuePtr InterpFrame::evalIndexOrCall(const IndexOrCallExpr *IC) {
  if (resolveDynamic(IC->base()) == DynKind::Variable) {
    ValuePtr Base = varAccess(IC->base()->name(), IC->base()->varSlot());
    if (!Base)
      throw MatlabError(format("undefined function or variable '%s'",
                               IC->base()->name().c_str()),
                        IC->getLoc());
    return makeValue(evalIndexRead(*Base, IC->args()));
  }
  std::vector<ValuePtr> Rs = evalCall(IC, 1);
  if (Rs.empty())
    throw MatlabError(format("function '%s' returns no value",
                             IC->base()->name().c_str()),
                      IC->getLoc());
  return Rs.front();
}

ValuePtr InterpFrame::evalMatrix(const MatrixExpr *M) {
  std::vector<Value> RowValues;
  std::vector<ValuePtr> Keep; // own element results during concatenation
  RowValues.reserve(M->rows().size());
  for (const auto &Row : M->rows()) {
    std::vector<const Value *> Parts;
    std::vector<ValuePtr> RowKeep;
    for (const Expr *Elem : Row) {
      RowKeep.push_back(evalExpr(Elem));
      Parts.push_back(RowKeep.back().get());
    }
    RowValues.push_back(rt::horzcat(Parts));
  }
  if (RowValues.empty())
    return makeValue(Value()); // []
  if (RowValues.size() == 1)
    return makeValue(std::move(RowValues.front()));
  std::vector<const Value *> Parts;
  for (const Value &V : RowValues)
    Parts.push_back(&V);
  return makeValue(rt::vertcat(Parts));
}

ValuePtr InterpFrame::evalExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::Number: {
    const auto *N = cast<NumberExpr>(E);
    if (N->isImaginary())
      return makeValue(Value::complexScalar(0.0, N->value()));
    if (N->isIntegral())
      return makeValue(Value::intScalar(N->value()));
    return makeScalar(N->value());
  }
  case Expr::Kind::String:
    return makeValue(Value::str(cast<StringExpr>(E)->value()));
  case Expr::Kind::Ident:
    return evalIdent(cast<IdentExpr>(E));
  case Expr::Kind::ColonWildcard:
    throw MatlabError("':' is only valid inside subscripts", E->getLoc());
  case Expr::Kind::EndRef: {
    if (!EndBase)
      throw MatlabError("'end' is only valid inside subscripts", E->getLoc());
    return makeValue(Value::intScalar(static_cast<double>(EndLen)));
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    ValuePtr V = evalExpr(U->operand());
    rt::UnOp Op;
    switch (U->op()) {
    case UnaryOpKind::Neg:
      Op = rt::UnOp::Neg;
      break;
    case UnaryOpKind::Plus:
      Op = rt::UnOp::Plus;
      break;
    case UnaryOpKind::Not:
      Op = rt::UnOp::Not;
      break;
    case UnaryOpKind::CTranspose:
      Op = rt::UnOp::CTranspose;
      break;
    case UnaryOpKind::Transpose:
      Op = rt::UnOp::Transpose;
      break;
    }
    return makeValue(rt::unary(Op, *V));
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    ValuePtr L = evalExpr(B->lhs());
    ValuePtr R = evalExpr(B->rhs());
    return makeValue(rt::binary(B->op(), *L, *R));
  }
  case Expr::Kind::ShortCircuit: {
    const auto *B = cast<ShortCircuitExpr>(E);
    bool LTrue = evalExpr(B->lhs())->isTrue();
    if (B->isAnd() && !LTrue)
      return makeBool(false);
    if (!B->isAnd() && LTrue)
      return makeBool(true);
    return makeBool(evalExpr(B->rhs())->isTrue());
  }
  case Expr::Kind::Range: {
    const auto *R = cast<RangeExpr>(E);
    ValuePtr Lo = evalExpr(R->lo());
    ValuePtr Hi = evalExpr(R->hi());
    if (R->step()) {
      ValuePtr Step = evalExpr(R->step());
      return makeValue(rt::colon(*Lo, *Step, *Hi));
    }
    return makeValue(rt::colon(*Lo, *Hi));
  }
  case Expr::Kind::Matrix:
    return evalMatrix(cast<MatrixExpr>(E));
  case Expr::Kind::IndexOrCall:
    return evalIndexOrCall(cast<IndexOrCallExpr>(E));
  }
  majic_unreachable("invalid expression kind");
}

