//===- interp/Interpreter.h - Tree-walking interpreter ---------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MATLAB-compatible tree-walking interpreter: MaJIC's interactive front
/// end, which "can execute MATLAB code at approximately MATLAB's original
/// speed" (Section 2). Every operation is dynamically dispatched over boxed
/// Values with full runtime checking — the overhead that compilation
/// removes, and the t_i baseline of every speedup in Section 3.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_INTERP_INTERPRETER_H
#define MAJIC_INTERP_INTERPRETER_H

#include "ast/AST.h"
#include "runtime/CallResolver.h"
#include "runtime/Context.h"

#include <vector>

namespace majic {

class Interpreter {
public:
  /// \p DynamicNameLookup reproduces the MATLAB-6 interpreter's dynamic
  /// symbol table (Section 2.1: a symbol is a variable "if it has an entry
  /// in the dynamic symbol table of the interpreter"): every variable
  /// access pays a name-hash lookup, as the original front end did. Turning
  /// it off uses pre-resolved slots directly (a faster-than-MATLAB
  /// interpreter, useful for harness comparisons).
  Interpreter(Context &Ctx, CallResolver &Resolver,
              bool DynamicNameLookup = true)
      : Ctx(Ctx), Resolver(Resolver), DynamicNameLookup(DynamicNameLookup) {}

  /// Executes the disambiguated function \p F with \p Args, returning
  /// \p NumOuts outputs. Throws MatlabError on runtime errors (bad
  /// subscripts, undefined variables, shape mismatches, ...).
  std::vector<ValuePtr> run(const Function &F, std::vector<ValuePtr> Args,
                            size_t NumOuts);

  /// Executes \p F as a script over an externally owned workspace of
  /// \p F.numSlots() slots (the interactive session's variables).
  void runScript(const Function &F, std::vector<ValuePtr> &Workspace);

private:
  friend class InterpFrame;
  Context &Ctx;
  CallResolver &Resolver;
  bool DynamicNameLookup;
};

} // namespace majic

#endif // MAJIC_INTERP_INTERPRETER_H
