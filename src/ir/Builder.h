//===- ir/Builder.h - IR construction helper -------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental construction of IRFunctions: virtual register allocation,
/// label creation/binding with branch patching, and operand-pool helpers.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_IR_BUILDER_H
#define MAJIC_IR_BUILDER_H

#include "ir/Instr.h"

#include <cassert>

namespace majic {

class IRBuilder {
public:
  explicit IRBuilder(IRFunction &F) : F(F) {}

  IRFunction &function() { return F; }

  //===--------------------------------------------------------------------===
  // Virtual registers
  //===--------------------------------------------------------------------===

  int32_t newF() { return static_cast<int32_t>(F.NumF++); }
  int32_t newI() { return static_cast<int32_t>(F.NumI++); }
  int32_t newP() { return static_cast<int32_t>(F.NumP++); }

  //===--------------------------------------------------------------------===
  // Emission
  //===--------------------------------------------------------------------===

  size_t emit(Instr In) {
    F.Code.push_back(In);
    return F.Code.size() - 1;
  }

  size_t emit(Opcode Op, int32_t A = -1, int32_t B = -1, int32_t C = -1,
              int32_t D = -1) {
    return emit(Instr::make(Op, A, B, C, D));
  }

  size_t emitImmF(Opcode Op, double Imm, int32_t A = -1, int32_t B = -1,
                  int32_t C = -1, int32_t D = -1) {
    Instr In = Instr::make(Op, A, B, C, D);
    In.Imm.F = Imm;
    return emit(In);
  }

  size_t emitImmI(Opcode Op, int64_t Imm, int32_t A = -1, int32_t B = -1,
                  int32_t C = -1, int32_t D = -1) {
    Instr In = Instr::make(Op, A, B, C, D);
    In.Imm.I = Imm;
    return emit(In);
  }

  /// F constant convenience: returns a fresh F register holding \p V.
  int32_t fconst(double V) {
    int32_t R = newF();
    emitImmF(Opcode::FConst, V, R);
    return R;
  }
  int32_t iconst(int64_t V) {
    int32_t R = newI();
    emitImmI(Opcode::IConst, V, R);
    return R;
  }

  //===--------------------------------------------------------------------===
  // Labels: create, branch-to, bind. Unbound targets are patched on bind.
  //===--------------------------------------------------------------------===

  struct Label {
    int32_t Id = -1;
  };

  Label newLabel() {
    Labels.push_back({-1, {}});
    return {static_cast<int32_t>(Labels.size() - 1)};
  }

  void br(Label L) { branchTo(Opcode::Br, L, -1); }
  void brz(int32_t CondI, Label L) { branchTo(Opcode::Brz, L, CondI); }
  void brnz(int32_t CondI, Label L) { branchTo(Opcode::Brnz, L, CondI); }

  void bind(Label L) {
    LabelInfo &Info = Labels[L.Id];
    assert(Info.Target < 0 && "label bound twice");
    Info.Target = static_cast<int32_t>(F.Code.size());
    for (size_t Idx : Info.Pending)
      F.Code[Idx].A = Info.Target;
    Info.Pending.clear();
  }

  /// The bound position of \p L; only valid after bind().
  int32_t target(Label L) const { return Labels[L.Id].Target; }

  /// Asserts every label was bound (called when construction finishes).
  void finish() {
#ifndef NDEBUG
    for (const LabelInfo &Info : Labels)
      assert(Info.Target >= 0 && Info.Pending.empty() && "unbound label");
#endif
  }

  //===--------------------------------------------------------------------===
  // Operand pools
  //===--------------------------------------------------------------------===

  /// Appends \p Regs to the pool, returning the starting offset.
  int32_t pool(const std::vector<int32_t> &Regs) {
    int32_t Off = static_cast<int32_t>(F.Pool.size());
    F.Pool.insert(F.Pool.end(), Regs.begin(), Regs.end());
    return Off;
  }

private:
  void branchTo(Opcode Op, Label L, int32_t CondI) {
    LabelInfo &Info = Labels[L.Id];
    size_t Idx = emit(Op, /*A=*/Info.Target, /*B=*/CondI);
    if (Info.Target < 0)
      Info.Pending.push_back(Idx);
  }

  struct LabelInfo {
    int32_t Target = -1;
    std::vector<size_t> Pending;
  };

  IRFunction &F;
  std::vector<LabelInfo> Labels;
};

} // namespace majic

#endif // MAJIC_IR_BUILDER_H
