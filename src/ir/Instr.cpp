//===- ir/Instr.cpp - The vcode-like low-level IR ------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instr.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace majic;

const char *majic::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::FConst:
    return "fconst";
  case Opcode::IConst:
    return "iconst";
  case Opcode::SConst:
    return "sconst";
  case Opcode::MovF:
    return "movf";
  case Opcode::MovI:
    return "movi";
  case Opcode::MovP:
    return "movp";
  case Opcode::IToF:
    return "itof";
  case Opcode::FToI:
    return "ftoi";
  case Opcode::FToIdx:
    return "ftoidx";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::FPow:
    return "fpow";
  case Opcode::FCmp:
    return "fcmp";
  case Opcode::FIntr1:
    return "fintr1";
  case Opcode::FIntr2:
    return "fintr2";
  case Opcode::IAdd:
    return "iadd";
  case Opcode::ISub:
    return "isub";
  case Opcode::IMul:
    return "imul";
  case Opcode::INeg:
    return "ineg";
  case Opcode::ICmp:
    return "icmp";
  case Opcode::IAnd:
    return "iand";
  case Opcode::IOr:
    return "ior";
  case Opcode::INot:
    return "inot";
  case Opcode::Br:
    return "br";
  case Opcode::Brz:
    return "brz";
  case Opcode::Brnz:
    return "brnz";
  case Opcode::Ret:
    return "ret";
  case Opcode::BoxF:
    return "boxf";
  case Opcode::BoxI:
    return "boxi";
  case Opcode::BoxB:
    return "boxb";
  case Opcode::BoxC:
    return "boxc";
  case Opcode::UnboxF:
    return "unboxf";
  case Opcode::UnboxI:
    return "unboxi";
  case Opcode::UnboxReIm:
    return "unboxreim";
  case Opcode::CheckDef:
    return "checkdef";
  case Opcode::NewMat:
    return "newmat";
  case Opcode::FillF:
    return "fillf";
  case Opcode::LoadEl:
    return "loadel";
  case Opcode::LoadElChk:
    return "loadel.chk";
  case Opcode::LoadEl2:
    return "loadel2";
  case Opcode::LoadEl2Chk:
    return "loadel2.chk";
  case Opcode::StoreEl:
    return "storeel";
  case Opcode::StoreElChk:
    return "storeel.chk";
  case Opcode::StoreEl2:
    return "storeel2";
  case Opcode::StoreEl2Chk:
    return "storeel2.chk";
  case Opcode::LenRows:
    return "lenrows";
  case Opcode::LenCols:
    return "lencols";
  case Opcode::LenNumel:
    return "lennumel";
  case Opcode::ColSlice:
    return "colslice";
  case Opcode::MakeRange:
    return "makerange";
  case Opcode::MakeRangeG:
    return "makerange.g";
  case Opcode::RtBin:
    return "rtbin";
  case Opcode::RtUn:
    return "rtun";
  case Opcode::IsTrue:
    return "istrue";
  case Opcode::HorzCat:
    return "horzcat";
  case Opcode::VertCat:
    return "vertcat";
  case Opcode::LoadIdxG:
    return "loadidx.g";
  case Opcode::StoreIdxG:
    return "storeidx.g";
  case Opcode::CallB:
    return "callb";
  case Opcode::CallU:
    return "callu";
  case Opcode::Display:
    return "display";
  case Opcode::Gemv:
    return "gemv";
  case Opcode::Axpy:
    return "axpy";
  case Opcode::EwFuse:
    return "ewfuse";
  case Opcode::LoadParam:
    return "loadparam";
  case Opcode::StoreOut:
    return "storeout";
  case Opcode::FSpLd:
    return "fsp.ld";
  case Opcode::FSpSt:
    return "fsp.st";
  case Opcode::ISpLd:
    return "isp.ld";
  case Opcode::ISpSt:
    return "isp.st";
  case Opcode::PSpLd:
    return "psp.ld";
  case Opcode::PSpSt:
    return "psp.st";
  }
  majic_unreachable("invalid opcode");
}

int32_t IRFunction::internName(const std::string &N) {
  auto It = std::find(Names.begin(), Names.end(), N);
  if (It != Names.end())
    return static_cast<int32_t>(It - Names.begin());
  Names.push_back(N);
  return static_cast<int32_t>(Names.size() - 1);
}

int32_t IRFunction::internString(const std::string &S) {
  Strings.push_back(S);
  return static_cast<int32_t>(Strings.size() - 1);
}

std::string IRFunction::print() const {
  std::string Out = format("function %s (params=%zu outs=%zu F=%u I=%u P=%u%s)\n",
                           Name.c_str(), NumParams, NumOuts, NumF, NumI, NumP,
                           Allocated ? " allocated" : "");
  for (size_t Idx = 0; Idx != Code.size(); ++Idx) {
    const Instr &In = Code[Idx];
    Out += format("%4zu: %-12s", Idx, opcodeName(In.Op));
    if (In.A != -1)
      Out += format(" A=%d", In.A);
    if (In.B != -1)
      Out += format(" B=%d", In.B);
    if (In.C != -1)
      Out += format(" C=%d", In.C);
    if (In.D != -1)
      Out += format(" D=%d", In.D);
    switch (In.Op) {
    case Opcode::FConst:
    case Opcode::FillF:
      Out += format(" imm=%g", In.Imm.F);
      break;
    case Opcode::Nop:
      break;
    default:
      if (In.Imm.I != 0)
        Out += format(" imm=%lld", static_cast<long long>(In.Imm.I));
      break;
    }
    Out += "\n";
  }
  return Out;
}
