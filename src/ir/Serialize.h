//===- ir/Serialize.h - IR binary (de)serialization ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary (de)serialization of compiled code for the persistent code
/// repository (Section 2: the repository is "a database of compiled code"
/// that outlives a session). The encoding is a flat little-endian byte
/// stream: fixed-width scalars, length-prefixed strings and arrays.
///
/// The deserializer is written for hostile input: every length is checked
/// against the bytes that remain, every enum against its valid range, and
/// any violation raises SerializeError - it must never crash, overflow, or
/// allocate unboundedly, because the repository store feeds it bytes that
/// may have been torn or rotted on disk (the store's checksum catches
/// virtually all corruption first; this is the second layer of the
/// validation ladder).
///
/// Decoded code is additionally validated structurally (validateIRFunction)
/// so the register VM can execute it without per-dispatch bounds checks:
/// every register operand is inside its register file, every pool / name /
/// string / spill index is in range, every branch lands on an instruction,
/// and control flow cannot fall off the end of the code array. What this
/// does NOT re-prove are dynamic-value invariants the compiler established
/// through type inference (e.g. that an unchecked element load is in
/// bounds for the array that reaches it at run time); those rungs of trust
/// rest on the checksum and build-stamp checks that gate admission.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_IR_SERIALIZE_H
#define MAJIC_IR_SERIALIZE_H

#include "ir/Instr.h"
#include "types/Signature.h"

#include <cstdint>
#include <stdexcept>
#include <string>

namespace majic {
namespace ser {

/// Version of the serialized-code ABI: the IR opcode set and operand
/// layout, the register-allocation contract, and the VM's execution
/// semantics. Bump it whenever a change anywhere in the compile pipeline
/// alters what serialized code *means*; the persistent store discards
/// entries whose stamp differs rather than decode them. Deliberately a
/// hand-maintained constant and not a build timestamp: incremental builds
/// reuse object files, so a timestamp both churns without a semantic
/// change and - worse - stays fixed when a semantic change lands in a
/// different translation unit.
constexpr uint32_t kCodeABIVersion = 3; // v3: EwFuse fused elementwise op

/// Raised by the readers on any malformed input.
class SerializeError : public std::runtime_error {
public:
  explicit SerializeError(const std::string &What)
      : std::runtime_error("serialize: " + What) {}
};

/// Appends little-endian fixed-width values to a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V);
  /// Length-prefixed (u32) byte string.
  void str(const std::string &S);

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader over a byte buffer; throws SerializeError on any
/// read past the end.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Len)
      : P(static_cast<const unsigned char *>(Data)), End(P + Len) {}
  explicit ByteReader(const std::string &Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64();
  std::string str();

  /// An array length that claims more elements than the remaining bytes
  /// could hold (at \p MinElemBytes each) is corrupt; reject it before
  /// allocating.
  uint32_t arrayLen(size_t MinElemBytes);

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }

private:
  void need(size_t N);
  const unsigned char *P;
  const unsigned char *End;
};

//===----------------------------------------------------------------------===//
// Type signatures and IR functions
//===----------------------------------------------------------------------===//

void writeTypeSignature(ByteWriter &W, const TypeSignature &Sig);
TypeSignature readTypeSignature(ByteReader &R);

void writeIRFunction(ByteWriter &W, const IRFunction &F);
/// Validates opcode ranges and structural counts; throws SerializeError on
/// any malformed encoding. The returned function has passed
/// validateIRFunction.
IRFunction readIRFunction(ByteReader &R);

/// Structural validation of \p F against the VM's execution model: code is
/// non-empty and ends in a terminator (Ret or an unconditional Br), branch
/// targets are instruction indices, every register operand fits its
/// register file, every pool range / name / string / spill / output /
/// parameter index is in bounds, and every immediate-encoded enum
/// (condition codes, intrinsics, classes, runtime ops) is in range.
/// Throws SerializeError on any violation.
void validateIRFunction(const IRFunction &F);

} // namespace ser
} // namespace majic

#endif // MAJIC_IR_SERIALIZE_H
