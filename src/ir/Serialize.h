//===- ir/Serialize.h - IR binary (de)serialization ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary (de)serialization of compiled code for the persistent code
/// repository (Section 2: the repository is "a database of compiled code"
/// that outlives a session). The encoding is a flat little-endian byte
/// stream: fixed-width scalars, length-prefixed strings and arrays.
///
/// The deserializer is written for hostile input: every length is checked
/// against the bytes that remain, every enum against its valid range, and
/// any violation raises SerializeError - it must never crash, overflow, or
/// allocate unboundedly, because the repository store feeds it bytes that
/// may have been torn or rotted on disk (the store's checksum catches
/// virtually all corruption first; this is the second layer of the
/// validation ladder).
///
/// Decoded code is additionally validated structurally (validateIRFunction)
/// so the register VM can execute it without per-dispatch bounds checks:
/// every register operand is inside its register file, every pool / name /
/// string / spill index is in range, every branch lands on an instruction,
/// and control flow cannot fall off the end of the code array. What this
/// does NOT re-prove are dynamic-value invariants the compiler established
/// through type inference (e.g. that an unchecked element load is in
/// bounds for the array that reaches it at run time); those rungs of trust
/// rest on the checksum and build-stamp checks that gate admission.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_IR_SERIALIZE_H
#define MAJIC_IR_SERIALIZE_H

#include "ir/Instr.h"
#include "support/ByteStream.h"
#include "types/Signature.h"

#include <cstdint>
#include <string>

namespace majic {
namespace ser {

/// Version of the serialized-code ABI: the IR opcode set and operand
/// layout, the register-allocation contract, and the VM's execution
/// semantics. Bump it whenever a change anywhere in the compile pipeline
/// alters what serialized code *means*; the persistent store discards
/// entries whose stamp differs rather than decode them. Deliberately a
/// hand-maintained constant and not a build timestamp: incremental builds
/// reuse object files, so a timestamp both churns without a semantic
/// change and - worse - stays fixed when a semantic change lands in a
/// different translation unit.
constexpr uint32_t kCodeABIVersion = 3; // v3: EwFuse fused elementwise op

// SerializeError / ByteWriter / ByteReader live in support/ByteStream.h so
// the runtime's workspace serializer (runtime/ValueSerialize) can share
// them; this header re-exports the names for its historical clients.

//===----------------------------------------------------------------------===//
// Type signatures and IR functions
//===----------------------------------------------------------------------===//

void writeTypeSignature(ByteWriter &W, const TypeSignature &Sig);
TypeSignature readTypeSignature(ByteReader &R);

void writeIRFunction(ByteWriter &W, const IRFunction &F);
/// Validates opcode ranges and structural counts; throws SerializeError on
/// any malformed encoding. The returned function has passed
/// validateIRFunction.
IRFunction readIRFunction(ByteReader &R);

/// Structural validation of \p F against the VM's execution model: code is
/// non-empty and ends in a terminator (Ret or an unconditional Br), branch
/// targets are instruction indices, every register operand fits its
/// register file, every pool range / name / string / spill / output /
/// parameter index is in bounds, and every immediate-encoded enum
/// (condition codes, intrinsics, classes, runtime ops) is in range.
/// Throws SerializeError on any violation.
void validateIRFunction(const IRFunction &F);

} // namespace ser
} // namespace majic

#endif // MAJIC_IR_SERIALIZE_H
