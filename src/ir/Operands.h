//===- ir/Operands.h - Instruction operand metadata ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Def/use metadata for every opcode, shared by the optimizer (liveness,
/// DCE, LICM) and the register allocator (intervals, spill rewriting).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_IR_OPERANDS_H
#define MAJIC_IR_OPERANDS_H

#include "ir/Instr.h"

namespace majic {

enum class OperandKind : uint8_t {
  None,
  DefF,
  UseF,
  DefI,
  UseI,
  DefP,
  UseP,
  UseDefP, ///< In-place array mutation targets (StoreEl, FillF, ...).
};

struct InstrOperands {
  OperandKind Fields[4] = {OperandKind::None, OperandKind::None,
                           OperandKind::None, OperandKind::None};
  /// CallB/CallU: pool[A..A+B) are P defs and pool[C..C+D) are P uses.
  bool PoolCall = false;
  /// HorzCat/VertCat/LoadIdxG/StoreIdxG: pool entries >= 0 are P uses.
  bool PoolUses = false;
};

/// Operand semantics of \p Op.
const InstrOperands &instrOperands(Opcode Op);

/// Pool-resident P-register operand ranges of an instruction.
struct PoolRanges {
  int32_t UseOff = 0, UseCount = 0; ///< P uses (entries < 0 are ':').
  int32_t DefOff = 0, DefCount = 0; ///< P defs (call results).
};

/// Returns where \p In keeps pooled operands (zero counts when none).
PoolRanges poolRanges(const Instr &In);

/// True when the instruction has no side effects beyond writing its
/// destination registers: safe to delete when all destinations are dead.
bool isPureInstr(Opcode Op);

/// True when the instruction is a candidate for loop-invariant code
/// motion: pure and independent of boxed array contents.
bool isHoistableInstr(Opcode Op);

} // namespace majic

#endif // MAJIC_IR_OPERANDS_H
