//===- ir/Instr.h - The vcode-like low-level IR ----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The low-level IR both code generators target (Section 2.6). It is a
/// RISC-like three-address register language in the spirit of vcode
/// (Engler '96), with three register classes:
///
///   F - unboxed double registers
///   I - unboxed 64-bit integer registers (indices, counters, booleans)
///   P - boxed Value handles (matrices, strings, anything dynamic)
///
/// Before execution, the linear-scan register allocator maps virtual
/// registers onto the platform's fixed physical register files and inserts
/// spill traffic (Section 2.6: "register allocation is done using the
/// linear-scan register allocator").
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_IR_INSTR_H
#define MAJIC_IR_INSTR_H

#include "runtime/Ops.h"
#include "types/Signature.h"

#include <cstdint>
#include <string>
#include <vector>

namespace majic {

enum class Opcode : uint8_t {
  Nop,

  // Constants and moves.
  FConst, // F[A] = Imm.F
  IConst, // I[A] = Imm.I
  SConst, // P[A] = string pool [Imm.I]
  MovF,   // F[A] = F[B]
  MovI,   // I[A] = I[B]
  MovP,   // P[A] = P[B]
  IToF,   // F[A] = double(I[B])
  FToI,   // I[A] = trunc(F[B])
  FToIdx, // I[A] = checked 1-based subscript F[B] minus 1 (throws if invalid)

  // Double arithmetic.
  FAdd, // F[A] = F[B] + F[C]
  FSub,
  FMul,
  FDiv,
  FNeg,  // F[A] = -F[B]
  FPow,  // F[A] = pow(F[B], F[C])
  FCmp,  // I[A] = F[B] <cc Imm.I> F[C]
  FIntr1, // F[A] = intr(Imm.I)(F[B])
  FIntr2, // F[A] = intr(Imm.I)(F[B], F[C])

  // Integer arithmetic / logic.
  IAdd, // I[A] = I[B] + I[C]
  ISub,
  IMul,
  INeg,
  ICmp, // I[A] = I[B] <cc Imm.I> I[C]
  IAnd, // I[A] = (I[B] != 0) & (I[C] != 0)
  IOr,
  INot, // I[A] = I[B] == 0

  // Control flow. Branch targets (A) are instruction indices, patched by
  // the builder when labels are bound.
  Br,   // goto A
  Brz,  // if (I[B] == 0) goto A
  Brnz, // if (I[B] != 0) goto A
  Ret,

  // Boxing and unboxing.
  BoxF,      // P[A] = scalar(F[B])
  BoxI,      // P[A] = int scalar(I[B])
  BoxB,      // P[A] = logical scalar(I[B] != 0)
  BoxC,      // P[A] = complex scalar(F[B], F[C])
  UnboxF,    // F[A] = P[B].scalarValue()  (throws unless numeric scalar)
  UnboxI,    // I[A] = integral scalar of P[B] (throws otherwise)
  UnboxReIm, // F[A] = re(P[C]), F[B] = im(P[C]) (scalar)
  CheckDef,  // throw "undefined variable <names[Imm.I]>" if P[A] is null

  // Unboxed array element access. Indices are 0-based and linear (LoadEl /
  // StoreEl) or (row, col) pairs (LoadEl2 / StoreEl2). The *Chk variants
  /// carry the MATLAB subscript check; stores additionally take the
  // resize-on-write slow path when out of bounds.
  NewMat,      // P[A] = zeros(I[B], I[C]) with class Imm.I
  FillF,       // fill P[A] elements with Imm.F
  LoadEl,      // F[A] = P[B].re[I[C]]
  LoadElChk,   // same plus bounds check
  LoadEl2,     // F[A] = P[B].at(I[C], I[D])
  LoadEl2Chk,  // same plus bounds check
  StoreEl,     // P[A].re[I[B]] = F[C]   (CoW-unique first)
  StoreElChk,  // same, with bounds + grow path; Imm.I = stored class
  StoreEl2,    // P[A].at(I[B], I[C]) = F[D]
  StoreEl2Chk, // same, with bounds + grow path
  LenRows,     // I[A] = rows(P[B])
  LenCols,
  LenNumel,
  ColSlice, // P[A] = P[B](:, I[C])  (0-based column)

  // Boxed (generic) operations: the "implicit default rule" fallback.
  MakeRange,  // P[A] = colon(F[B], F[C], F[D])
  MakeRangeG, // P[A] = colon(P[B], P[C], P[D]) (boxed operands, first-element rule)
  RtBin,     // P[A] = binary(Imm.I as BinOp, P[B], P[C])
  RtUn,      // P[A] = unary(Imm.I as UnOp, P[B])
  IsTrue,    // I[A] = isTrue(P[B])
  HorzCat,   // P[A] = horzcat(pool[B..B+C))
  VertCat,   // P[A] = vertcat(pool[B..B+C))
  LoadIdxG,  // P[A] = P[B](indices); indices in pool[C..C+D), -1 = ':'
  StoreIdxG, // P[A](indices) = P[B]; indices in pool[C..C+D), -1 = ':'
  CallB,     // builtin names[Imm.I]: dsts pool[A..A+B), args pool[C..C+D)
  CallU,     // user function names[Imm.I]: same layout as CallB
  Display,   // print "names[Imm.I] = <P[A]>"

  // Fused library kernels (Section 2.6.1's dgemv code selection).
  Gemv, // P[A] = P[B] * P[C]  (real matrix x real vector via BLAS dgemv)
  Axpy, // P[A] = F[B] * P[C] + P[D]  (real vectors, fused)

  // Fused elementwise expression tree: one loop, one memory pass, zero
  // intermediate Values. P[A] = program applied elementwise over the
  // operands pool[B..B+C); the postfix program lives in pool[D..D+Imm.I)
  // (see namespace ew below). Operand shapes/classes are resolved at run
  // time exactly as the interpreter would resolve the unfused chain, so
  // results (values, classes, and error messages) stay bit-identical.
  EwFuse,

  // Calling convention: arguments and outputs live outside the register
  // files so allocation cannot disturb them.
  LoadParam, // P[A] = args[Imm.I]
  StoreOut,  // outs[Imm.I] = P[A]

  // Spill traffic inserted by the register allocator.
  FSpLd, // F[A] = fspill[Imm.I]
  FSpSt, // fspill[Imm.I] = F[A]
  ISpLd,
  ISpSt,
  PSpLd,
  PSpSt,
};

const char *opcodeName(Opcode Op);

/// Encoding of the EwFuse per-element bytecode program. Each program entry
/// is one int32 in the pool: the low 8 bits select the operation, the rest
/// carry its argument. The program is postfix over a small evaluation
/// stack of per-element doubles; fusable trees deeper than kMaxEwStack are
/// split at codegen, so the executor's stack is a fixed-size array.
///
/// Op-order identity: the program encodes the *exact* per-element dataflow
/// of the unfused expression tree (operands pushed left-to-right, each
/// binary/unary applied in source order, no reassociation), which is why a
/// fused evaluation is bit-identical to the interpreter's temporaries.
namespace ew {

enum class EwOp : int32_t {
  Push, ///< push operand[arg] (broadcast if scalar) onto the stack
  Bin,  ///< pop RHS, pop LHS, push LHS <arg as rt::BinOp> RHS
  Neg,  ///< negate the stack top (arg unused)
  Intr, ///< apply arity-1 scalar intrinsic [arg] to the stack top
};

/// Maximum evaluation-stack depth of a fused program.
constexpr int32_t kMaxEwStack = 8;

constexpr int32_t encode(EwOp Op, int32_t Arg = 0) {
  return static_cast<int32_t>(Op) | (Arg << 8);
}
constexpr EwOp opOf(int32_t Entry) {
  return static_cast<EwOp>(Entry & 0xff);
}
constexpr int32_t argOf(int32_t Entry) { return Entry >> 8; }

/// Binary operators a fused program may carry. MatMul/MatRDiv appear only
/// when codegen proved one side scalar (where MATLAB's * and / degenerate
/// to the elementwise op); the executor re-applies the interpreter's own
/// broadcast and class rules at run time, so the distinction stays
/// observable in error messages.
constexpr bool isFusableBinOp(rt::BinOp Op) {
  return Op == rt::BinOp::Add || Op == rt::BinOp::Sub ||
         Op == rt::BinOp::MatMul || Op == rt::BinOp::ElemMul ||
         Op == rt::BinOp::MatRDiv || Op == rt::BinOp::ElemRDiv ||
         Op == rt::BinOp::ElemPow;
}

} // namespace ew

/// CallB/CallU Imm flag: the call is a statement (MATLAB nargout = 0).
/// Destination registers receive the optional outputs or null.
constexpr int64_t kStatementCallFlag = int64_t(1) << 30;

/// Condition codes for FCmp/ICmp (Imm.I).
enum class CondCode : int64_t { LT, LE, GT, GE, EQ, NE };

struct Instr {
  Opcode Op = Opcode::Nop;
  int32_t A = -1;
  int32_t B = -1;
  int32_t C = -1;
  int32_t D = -1;
  union {
    double F;
    int64_t I;
  } Imm = {0.0};

  static Instr make(Opcode Op, int32_t A = -1, int32_t B = -1, int32_t C = -1,
                    int32_t D = -1) {
    Instr In;
    In.Op = Op;
    In.A = A;
    In.B = B;
    In.C = C;
    In.D = D;
    return In;
  }
};

/// Register classes of the machine.
enum class RegClass : uint8_t { F, I, P };

/// Metadata for a counted loop emitted by the code generator, consumed by
/// the optimizer's unroller. Instruction indices are kept valid by the
/// passes that use them (the unroller runs before allocation).
struct LoopMeta {
  uint32_t HeaderIndex;  ///< Index of the loop-condition check (ICmp).
  uint32_t BodyBegin;    ///< First body instruction.
  uint32_t LatchIndex;   ///< The counter-increment IAdd.
  uint32_t ExitIndex;    ///< First instruction after the loop.
  int32_t CounterReg;    ///< I register holding the counter.
  int32_t TripReg;       ///< I register holding the trip count.
};

/// One compiled function in the low-level IR. Before register allocation,
/// register operands denote virtual registers (NumVirt* of each class);
/// after allocation they denote physical registers and spill slots.
class IRFunction {
public:
  std::string Name;
  size_t NumParams = 0;
  size_t NumOuts = 0;

  std::vector<Instr> Code;
  std::vector<int32_t> Pool;        ///< Operand lists for call-like ops.
  std::vector<std::string> Names;   ///< Builtin/user/variable names.
  std::vector<std::string> Strings; ///< String literals.

  unsigned NumF = 0, NumI = 0, NumP = 0; ///< Register counts (virt or phys).
  unsigned NumFSpill = 0, NumISpill = 0, NumPSpill = 0;
  bool Allocated = false;

  std::vector<LoopMeta> Loops;

  /// Interns \p N into Names, returning its id.
  int32_t internName(const std::string &N);
  int32_t internString(const std::string &S);

  /// Renders the function as text for tests and debugging.
  std::string print() const;
};

} // namespace majic

#endif // MAJIC_IR_INSTR_H
