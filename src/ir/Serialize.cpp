//===- ir/Serialize.cpp - IR binary (de)serialization ----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Serialize.h"

#include "runtime/Builtins.h"

#include <cstring>

using namespace majic;
using namespace majic::ser;

//===----------------------------------------------------------------------===//
// Type signatures
//===----------------------------------------------------------------------===//

namespace {

// Per-element encoded sizes (the arrayLen sanity floor).
constexpr size_t kTypeBytes = 1 + 4 * 8 + 2 * 8;  // intrinsic, 2 shapes, range
constexpr size_t kInstrBytes = 1 + 4 * 4 + 8;     // op, A..D, imm
constexpr size_t kLoopBytes = 4 * 4 + 2 * 4;      // 4 indices, 2 registers

void writeType(ByteWriter &W, const Type &T) {
  W.u8(static_cast<uint8_t>(T.intrinsic()));
  W.u64(T.minShape().Rows);
  W.u64(T.minShape().Cols);
  W.u64(T.maxShape().Rows);
  W.u64(T.maxShape().Cols);
  W.f64(T.range().Lo);
  W.f64(T.range().Hi);
}

Type readType(ByteReader &R) {
  uint8_t Raw = R.u8();
  if (Raw > static_cast<uint8_t>(IntrinsicType::Top))
    throw SerializeError("invalid intrinsic type");
  ShapeBound Min{R.u64(), R.u64()};
  ShapeBound Max{R.u64(), R.u64()};
  double Lo = R.f64(), Hi = R.f64();
  return Type(static_cast<IntrinsicType>(Raw), Min, Max,
              Range::interval(Lo, Hi));
}

} // namespace

void majic::ser::writeTypeSignature(ByteWriter &W, const TypeSignature &Sig) {
  W.u32(static_cast<uint32_t>(Sig.size()));
  for (const Type &T : Sig.types())
    writeType(W, T);
}

TypeSignature majic::ser::readTypeSignature(ByteReader &R) {
  uint32_t N = R.arrayLen(kTypeBytes);
  std::vector<Type> Types;
  Types.reserve(N);
  for (uint32_t I = 0; I != N; ++I)
    Types.push_back(readType(R));
  return TypeSignature(std::move(Types));
}

//===----------------------------------------------------------------------===//
// IR functions
//===----------------------------------------------------------------------===//

void majic::ser::writeIRFunction(ByteWriter &W, const IRFunction &F) {
  W.str(F.Name);
  W.u64(F.NumParams);
  W.u64(F.NumOuts);

  W.u32(static_cast<uint32_t>(F.Code.size()));
  for (const Instr &In : F.Code) {
    W.u8(static_cast<uint8_t>(In.Op));
    W.i32(In.A);
    W.i32(In.B);
    W.i32(In.C);
    W.i32(In.D);
    W.i64(In.Imm.I);
  }

  W.u32(static_cast<uint32_t>(F.Pool.size()));
  for (int32_t V : F.Pool)
    W.i32(V);
  W.u32(static_cast<uint32_t>(F.Names.size()));
  for (const std::string &N : F.Names)
    W.str(N);
  W.u32(static_cast<uint32_t>(F.Strings.size()));
  for (const std::string &S : F.Strings)
    W.str(S);

  W.u32(F.NumF);
  W.u32(F.NumI);
  W.u32(F.NumP);
  W.u32(F.NumFSpill);
  W.u32(F.NumISpill);
  W.u32(F.NumPSpill);
  W.u8(F.Allocated ? 1 : 0);

  W.u32(static_cast<uint32_t>(F.Loops.size()));
  for (const LoopMeta &L : F.Loops) {
    W.u32(L.HeaderIndex);
    W.u32(L.BodyBegin);
    W.u32(L.LatchIndex);
    W.u32(L.ExitIndex);
    W.i32(L.CounterReg);
    W.i32(L.TripReg);
  }
}

IRFunction majic::ser::readIRFunction(ByteReader &R) {
  IRFunction F;
  F.Name = R.str();
  F.NumParams = R.u64();
  F.NumOuts = R.u64();
  if (F.NumParams > (1u << 20) || F.NumOuts > (1u << 20))
    throw SerializeError("implausible parameter count");

  uint32_t NumInstr = R.arrayLen(kInstrBytes);
  F.Code.reserve(NumInstr);
  constexpr uint8_t MaxOp = static_cast<uint8_t>(Opcode::PSpSt);
  for (uint32_t I = 0; I != NumInstr; ++I) {
    Instr In;
    uint8_t Op = R.u8();
    if (Op > MaxOp)
      throw SerializeError("invalid opcode");
    In.Op = static_cast<Opcode>(Op);
    In.A = R.i32();
    In.B = R.i32();
    In.C = R.i32();
    In.D = R.i32();
    In.Imm.I = R.i64();
    F.Code.push_back(In);
  }

  uint32_t NumPool = R.arrayLen(4);
  F.Pool.reserve(NumPool);
  for (uint32_t I = 0; I != NumPool; ++I)
    F.Pool.push_back(R.i32());
  uint32_t NumNames = R.arrayLen(4);
  F.Names.reserve(NumNames);
  for (uint32_t I = 0; I != NumNames; ++I)
    F.Names.push_back(R.str());
  uint32_t NumStrings = R.arrayLen(4);
  F.Strings.reserve(NumStrings);
  for (uint32_t I = 0; I != NumStrings; ++I)
    F.Strings.push_back(R.str());

  F.NumF = R.u32();
  F.NumI = R.u32();
  F.NumP = R.u32();
  F.NumFSpill = R.u32();
  F.NumISpill = R.u32();
  F.NumPSpill = R.u32();
  if (F.NumF > (1u << 24) || F.NumI > (1u << 24) || F.NumP > (1u << 24) ||
      F.NumFSpill > (1u << 24) || F.NumISpill > (1u << 24) ||
      F.NumPSpill > (1u << 24))
    throw SerializeError("implausible register count");
  F.Allocated = R.u8() != 0;

  uint32_t NumLoops = R.arrayLen(kLoopBytes);
  F.Loops.reserve(NumLoops);
  for (uint32_t I = 0; I != NumLoops; ++I) {
    LoopMeta L;
    L.HeaderIndex = R.u32();
    L.BodyBegin = R.u32();
    L.LatchIndex = R.u32();
    L.ExitIndex = R.u32();
    L.CounterReg = R.i32();
    L.TripReg = R.i32();
    F.Loops.push_back(L);
  }
  validateIRFunction(F);
  return F;
}

//===----------------------------------------------------------------------===//
// Structural validation
//===----------------------------------------------------------------------===//

void majic::ser::validateIRFunction(const IRFunction &F) {
  const uint32_t NumInstr = static_cast<uint32_t>(F.Code.size());
  // The VM dispatches in an unbounded `Code[PC]` loop that only stops on
  // Ret, so empty code - or any path that falls past the last instruction -
  // reads off the end of the array.
  if (NumInstr == 0)
    throw SerializeError("empty code array");

  auto RegF = [&](int32_t R) {
    if (R < 0 || static_cast<uint32_t>(R) >= F.NumF)
      throw SerializeError("F register out of range");
  };
  auto RegI = [&](int32_t R) {
    if (R < 0 || static_cast<uint32_t>(R) >= F.NumI)
      throw SerializeError("I register out of range");
  };
  auto RegP = [&](int32_t R) {
    if (R < 0 || static_cast<uint32_t>(R) >= F.NumP)
      throw SerializeError("P register out of range");
  };
  auto Target = [&](int32_t T) {
    if (T < 0 || static_cast<uint32_t>(T) >= NumInstr)
      throw SerializeError("branch target out of range");
  };
  auto Index = [&](int64_t I, size_t N, const char *What) {
    if (I < 0 || static_cast<uint64_t>(I) >= N)
      throw SerializeError(What);
  };
  // A pool-backed operand list: offset Off, length Len, every entry a P
  // register. A zero-length list may carry any offset (codegen leaves the
  // field at its -1 default when there is nothing to point at).
  auto PoolP = [&](int32_t Off, int32_t Len) {
    if (Len < 0)
      throw SerializeError("negative pool operand count");
    if (Len == 0)
      return;
    if (Off < 0 || static_cast<uint64_t>(Off) + static_cast<uint64_t>(Len) >
                       F.Pool.size())
      throw SerializeError("pool range out of bounds");
    for (int32_t K = 0; K != Len; ++K)
      RegP(F.Pool[Off + K]);
  };
  // The index list of LoadIdxG/StoreIdxG: one or two subscripts, each a P
  // register or -1 for ':'.
  auto PoolIdx = [&](int32_t Off, int32_t Len) {
    if (Len != 1 && Len != 2)
      throw SerializeError("invalid subscript count");
    if (Off < 0 || static_cast<uint64_t>(Off) + static_cast<uint64_t>(Len) >
                       F.Pool.size())
      throw SerializeError("pool range out of bounds");
    for (int32_t K = 0; K != Len; ++K)
      if (F.Pool[Off + K] != -1)
        RegP(F.Pool[Off + K]);
  };
  auto Cond = [&](int64_t I) {
    if (I < 0 || I > static_cast<int64_t>(CondCode::NE))
      throw SerializeError("invalid condition code");
  };
  auto Intr = [&](int64_t I, unsigned Arity) {
    if (I < 0 || I > static_cast<int64_t>(ScalarIntrinsic::Hypot) ||
        scalarIntrinsicArity(static_cast<ScalarIntrinsic>(I)) != Arity)
      throw SerializeError("invalid scalar intrinsic");
  };
  auto Class = [&](int64_t I) {
    if (I < 0 || I > static_cast<int64_t>(MClass::String))
      throw SerializeError("invalid matrix class");
  };

  for (const Instr &In : F.Code) {
    switch (In.Op) {
    case Opcode::Nop:
    case Opcode::Ret:
      break;
    case Opcode::FConst:
      RegF(In.A);
      break;
    case Opcode::IConst:
      RegI(In.A);
      break;
    case Opcode::SConst:
      RegP(In.A);
      Index(In.Imm.I, F.Strings.size(), "string index out of range");
      break;
    case Opcode::MovF:
    case Opcode::FNeg:
      RegF(In.A);
      RegF(In.B);
      break;
    case Opcode::MovI:
    case Opcode::INeg:
    case Opcode::INot:
      RegI(In.A);
      RegI(In.B);
      break;
    case Opcode::MovP:
      RegP(In.A);
      RegP(In.B);
      break;
    case Opcode::IToF:
      RegF(In.A);
      RegI(In.B);
      break;
    case Opcode::FToI:
    case Opcode::FToIdx:
      RegI(In.A);
      RegF(In.B);
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv:
    case Opcode::FPow:
      RegF(In.A);
      RegF(In.B);
      RegF(In.C);
      break;
    case Opcode::FCmp:
      RegI(In.A);
      RegF(In.B);
      RegF(In.C);
      Cond(In.Imm.I);
      break;
    case Opcode::FIntr1:
      RegF(In.A);
      RegF(In.B);
      Intr(In.Imm.I, 1);
      break;
    case Opcode::FIntr2:
      RegF(In.A);
      RegF(In.B);
      RegF(In.C);
      Intr(In.Imm.I, 2);
      break;
    case Opcode::IAdd:
    case Opcode::ISub:
    case Opcode::IMul:
    case Opcode::IAnd:
    case Opcode::IOr:
      RegI(In.A);
      RegI(In.B);
      RegI(In.C);
      break;
    case Opcode::ICmp:
      RegI(In.A);
      RegI(In.B);
      RegI(In.C);
      Cond(In.Imm.I);
      break;
    case Opcode::Br:
      Target(In.A);
      break;
    case Opcode::Brz:
    case Opcode::Brnz:
      Target(In.A);
      RegI(In.B);
      break;
    case Opcode::BoxF:
      RegP(In.A);
      RegF(In.B);
      break;
    case Opcode::BoxI:
    case Opcode::BoxB:
      RegP(In.A);
      RegI(In.B);
      break;
    case Opcode::BoxC:
      RegP(In.A);
      RegF(In.B);
      RegF(In.C);
      break;
    case Opcode::UnboxF:
      RegF(In.A);
      RegP(In.B);
      break;
    case Opcode::UnboxI:
      RegI(In.A);
      RegP(In.B);
      break;
    case Opcode::UnboxReIm:
      RegF(In.A);
      RegF(In.B);
      RegP(In.C);
      break;
    case Opcode::CheckDef:
      RegP(In.A);
      Index(In.Imm.I, F.Names.size(), "name index out of range");
      break;
    case Opcode::NewMat:
      RegP(In.A);
      RegI(In.B);
      RegI(In.C);
      Class(In.Imm.I);
      break;
    case Opcode::FillF:
      RegP(In.A);
      break;
    case Opcode::LoadEl:
    case Opcode::LoadElChk:
      RegF(In.A);
      RegP(In.B);
      RegI(In.C);
      break;
    case Opcode::LoadEl2:
    case Opcode::LoadEl2Chk:
      RegF(In.A);
      RegP(In.B);
      RegI(In.C);
      RegI(In.D);
      break;
    case Opcode::StoreEl:
    case Opcode::StoreElChk:
      RegP(In.A);
      RegI(In.B);
      RegF(In.C);
      Class(In.Imm.I);
      break;
    case Opcode::StoreEl2:
    case Opcode::StoreEl2Chk:
      RegP(In.A);
      RegI(In.B);
      RegI(In.C);
      RegF(In.D);
      Class(In.Imm.I);
      break;
    case Opcode::LenRows:
    case Opcode::LenCols:
    case Opcode::LenNumel:
    case Opcode::IsTrue:
      RegI(In.A);
      RegP(In.B);
      break;
    case Opcode::ColSlice:
      RegP(In.A);
      RegP(In.B);
      RegI(In.C);
      break;
    case Opcode::MakeRange:
      RegP(In.A);
      RegF(In.B);
      RegF(In.C);
      RegF(In.D);
      break;
    case Opcode::MakeRangeG:
      RegP(In.A);
      RegP(In.B);
      RegP(In.C);
      RegP(In.D);
      break;
    case Opcode::RtBin:
      RegP(In.A);
      RegP(In.B);
      RegP(In.C);
      if (In.Imm.I < 0 || In.Imm.I > static_cast<int64_t>(rt::BinOp::Or))
        throw SerializeError("invalid binary op");
      break;
    case Opcode::RtUn:
      RegP(In.A);
      RegP(In.B);
      if (In.Imm.I < 0 ||
          In.Imm.I > static_cast<int64_t>(rt::UnOp::Transpose))
        throw SerializeError("invalid unary op");
      break;
    case Opcode::HorzCat:
    case Opcode::VertCat:
      RegP(In.A);
      PoolP(In.B, In.C);
      break;
    case Opcode::LoadIdxG:
    case Opcode::StoreIdxG:
      RegP(In.A);
      RegP(In.B);
      PoolIdx(In.C, In.D);
      break;
    case Opcode::CallB:
    case Opcode::CallU:
      Index(In.Imm.I & ~kStatementCallFlag, F.Names.size(),
            "call name index out of range");
      PoolP(In.A, In.B); // destinations
      PoolP(In.C, In.D); // arguments
      break;
    case Opcode::Display:
      RegP(In.A);
      Index(In.Imm.I, F.Names.size(), "name index out of range");
      break;
    case Opcode::Gemv:
      RegP(In.A);
      RegP(In.B);
      RegP(In.C);
      break;
    case Opcode::Axpy:
      RegP(In.A);
      RegF(In.B);
      RegP(In.C);
      RegP(In.D);
      break;
    case Opcode::EwFuse: {
      RegP(In.A);
      PoolP(In.B, In.C); // operand table: all P registers
      // The postfix program must be well formed before the VM may run it:
      // simulate it against the fixed-depth evaluation stack.
      int64_t ProgLen = In.Imm.I;
      if (ProgLen < 2)
        throw SerializeError("fused program too short");
      if (In.D < 0 || static_cast<uint64_t>(In.D) +
                              static_cast<uint64_t>(ProgLen) >
                          F.Pool.size())
        throw SerializeError("fused program out of bounds");
      int32_t Sp = 0;
      for (int64_t K = 0; K != ProgLen; ++K) {
        int32_t Entry = F.Pool[In.D + K];
        int32_t Arg = ew::argOf(Entry);
        switch (ew::opOf(Entry)) {
        case ew::EwOp::Push:
          if (Arg < 0 || Arg >= In.C)
            throw SerializeError("fused operand index out of range");
          if (++Sp > ew::kMaxEwStack)
            throw SerializeError("fused program overflows stack");
          break;
        case ew::EwOp::Bin:
          if (Arg < 0 || Arg > static_cast<int32_t>(rt::BinOp::ElemPow) ||
              !ew::isFusableBinOp(static_cast<rt::BinOp>(Arg)))
            throw SerializeError("invalid fused binary op");
          if (Sp < 2)
            throw SerializeError("fused program underflows stack");
          --Sp;
          break;
        case ew::EwOp::Neg:
          if (Sp < 1)
            throw SerializeError("fused program underflows stack");
          break;
        case ew::EwOp::Intr:
          Intr(Arg, /*Arity=*/1);
          if (Sp < 1)
            throw SerializeError("fused program underflows stack");
          break;
        default:
          throw SerializeError("invalid fused program entry");
        }
      }
      if (Sp != 1)
        throw SerializeError("fused program leaves stack unbalanced");
      break;
    }
    case Opcode::LoadParam:
      RegP(In.A);
      Index(In.Imm.I, F.NumParams, "parameter index out of range");
      break;
    case Opcode::StoreOut:
      RegP(In.A);
      Index(In.Imm.I, F.NumOuts, "output index out of range");
      break;
    case Opcode::FSpLd:
    case Opcode::FSpSt:
      RegF(In.A);
      Index(In.Imm.I, F.NumFSpill, "F spill slot out of range");
      break;
    case Opcode::ISpLd:
    case Opcode::ISpSt:
      RegI(In.A);
      Index(In.Imm.I, F.NumISpill, "I spill slot out of range");
      break;
    case Opcode::PSpLd:
    case Opcode::PSpSt:
      RegP(In.A);
      Index(In.Imm.I, F.NumPSpill, "P spill slot out of range");
      break;
    }
  }

  // The only ways not to fall through an instruction are Ret and an
  // unconditional Br (whose target is validated above); anything else as
  // the final instruction would run the VM off the code array.
  Opcode Last = F.Code.back().Op;
  if (Last != Opcode::Ret && Last != Opcode::Br)
    throw SerializeError("code does not end in a terminator");
}
