//===- ir/Operands.cpp - Instruction operand metadata ---------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Operands.h"

#include <array>

using namespace majic;

namespace {

using OK = OperandKind;

InstrOperands make(OK A, OK B = OK::None, OK C = OK::None, OK D = OK::None,
                   bool PoolCall = false, bool PoolUses = false) {
  InstrOperands Ops;
  Ops.Fields[0] = A;
  Ops.Fields[1] = B;
  Ops.Fields[2] = C;
  Ops.Fields[3] = D;
  Ops.PoolCall = PoolCall;
  Ops.PoolUses = PoolUses;
  return Ops;
}

struct Table {
  std::array<InstrOperands, 256> Entries;

  Table() {
    auto Set = [this](Opcode Op, InstrOperands Ops) {
      Entries[static_cast<size_t>(Op)] = Ops;
    };
    Set(Opcode::Nop, make(OK::None));
    Set(Opcode::FConst, make(OK::DefF));
    Set(Opcode::IConst, make(OK::DefI));
    Set(Opcode::SConst, make(OK::DefP));
    Set(Opcode::MovF, make(OK::DefF, OK::UseF));
    Set(Opcode::MovI, make(OK::DefI, OK::UseI));
    Set(Opcode::MovP, make(OK::DefP, OK::UseP));
    Set(Opcode::IToF, make(OK::DefF, OK::UseI));
    Set(Opcode::FToI, make(OK::DefI, OK::UseF));
    Set(Opcode::FToIdx, make(OK::DefI, OK::UseF));
    for (Opcode Op : {Opcode::FAdd, Opcode::FSub, Opcode::FMul, Opcode::FDiv,
                      Opcode::FPow, Opcode::FIntr2})
      Set(Op, make(OK::DefF, OK::UseF, OK::UseF));
    Set(Opcode::FNeg, make(OK::DefF, OK::UseF));
    Set(Opcode::FIntr1, make(OK::DefF, OK::UseF));
    Set(Opcode::FCmp, make(OK::DefI, OK::UseF, OK::UseF));
    for (Opcode Op : {Opcode::IAdd, Opcode::ISub, Opcode::IMul, Opcode::ICmp,
                      Opcode::IAnd, Opcode::IOr})
      Set(Op, make(OK::DefI, OK::UseI, OK::UseI));
    Set(Opcode::INeg, make(OK::DefI, OK::UseI));
    Set(Opcode::INot, make(OK::DefI, OK::UseI));
    Set(Opcode::Br, make(OK::None));
    Set(Opcode::Brz, make(OK::None, OK::UseI));
    Set(Opcode::Brnz, make(OK::None, OK::UseI));
    Set(Opcode::Ret, make(OK::None));
    Set(Opcode::BoxF, make(OK::DefP, OK::UseF));
    Set(Opcode::BoxI, make(OK::DefP, OK::UseI));
    Set(Opcode::BoxB, make(OK::DefP, OK::UseI));
    Set(Opcode::BoxC, make(OK::DefP, OK::UseF, OK::UseF));
    Set(Opcode::UnboxF, make(OK::DefF, OK::UseP));
    Set(Opcode::UnboxI, make(OK::DefI, OK::UseP));
    Set(Opcode::UnboxReIm, make(OK::DefF, OK::DefF, OK::UseP));
    Set(Opcode::CheckDef, make(OK::UseP));
    Set(Opcode::NewMat, make(OK::DefP, OK::UseI, OK::UseI));
    Set(Opcode::FillF, make(OK::UseDefP));
    Set(Opcode::LoadEl, make(OK::DefF, OK::UseP, OK::UseI));
    Set(Opcode::LoadElChk, make(OK::DefF, OK::UseP, OK::UseI));
    Set(Opcode::LoadEl2, make(OK::DefF, OK::UseP, OK::UseI, OK::UseI));
    Set(Opcode::LoadEl2Chk, make(OK::DefF, OK::UseP, OK::UseI, OK::UseI));
    Set(Opcode::StoreEl, make(OK::UseDefP, OK::UseI, OK::UseF));
    Set(Opcode::StoreElChk, make(OK::UseDefP, OK::UseI, OK::UseF));
    Set(Opcode::StoreEl2, make(OK::UseDefP, OK::UseI, OK::UseI, OK::UseF));
    Set(Opcode::StoreEl2Chk, make(OK::UseDefP, OK::UseI, OK::UseI, OK::UseF));
    Set(Opcode::LenRows, make(OK::DefI, OK::UseP));
    Set(Opcode::LenCols, make(OK::DefI, OK::UseP));
    Set(Opcode::LenNumel, make(OK::DefI, OK::UseP));
    Set(Opcode::ColSlice, make(OK::DefP, OK::UseP, OK::UseI));
    Set(Opcode::MakeRange, make(OK::DefP, OK::UseF, OK::UseF, OK::UseF));
    Set(Opcode::MakeRangeG, make(OK::DefP, OK::UseP, OK::UseP, OK::UseP));
    Set(Opcode::RtBin, make(OK::DefP, OK::UseP, OK::UseP));
    Set(Opcode::RtUn, make(OK::DefP, OK::UseP));
    Set(Opcode::IsTrue, make(OK::DefI, OK::UseP));
    Set(Opcode::HorzCat, make(OK::DefP, OK::None, OK::None, OK::None,
                              /*PoolCall=*/false, /*PoolUses=*/true));
    Set(Opcode::VertCat, make(OK::DefP, OK::None, OK::None, OK::None, false,
                              true));
    Set(Opcode::LoadIdxG,
        make(OK::DefP, OK::UseP, OK::None, OK::None, false, true));
    Set(Opcode::StoreIdxG,
        make(OK::UseDefP, OK::UseP, OK::None, OK::None, false, true));
    Set(Opcode::CallB,
        make(OK::None, OK::None, OK::None, OK::None, /*PoolCall=*/true));
    Set(Opcode::CallU, make(OK::None, OK::None, OK::None, OK::None, true));
    Set(Opcode::Display, make(OK::UseP));
    Set(Opcode::Gemv, make(OK::DefP, OK::UseP, OK::UseP));
    Set(Opcode::Axpy, make(OK::DefP, OK::UseF, OK::UseP, OK::UseP));
    Set(Opcode::EwFuse, make(OK::DefP, OK::None, OK::None, OK::None,
                             /*PoolCall=*/false, /*PoolUses=*/true));
    Set(Opcode::LoadParam, make(OK::DefP));
    Set(Opcode::StoreOut, make(OK::UseP));
    Set(Opcode::FSpLd, make(OK::DefF));
    Set(Opcode::FSpSt, make(OK::UseF));
    Set(Opcode::ISpLd, make(OK::DefI));
    Set(Opcode::ISpSt, make(OK::UseI));
    Set(Opcode::PSpLd, make(OK::DefP));
    Set(Opcode::PSpSt, make(OK::UseP));
  }
};

} // namespace

const InstrOperands &majic::instrOperands(Opcode Op) {
  static const Table T;
  return T.Entries[static_cast<size_t>(Op)];
}

PoolRanges majic::poolRanges(const Instr &In) {
  PoolRanges R;
  switch (In.Op) {
  case Opcode::CallB:
  case Opcode::CallU:
    R.DefOff = In.A;
    R.DefCount = In.B;
    R.UseOff = In.C;
    R.UseCount = In.D;
    break;
  case Opcode::HorzCat:
  case Opcode::VertCat:
    R.UseOff = In.B;
    R.UseCount = In.C;
    break;
  case Opcode::EwFuse:
    // Only the operand table [B, B+C) names registers; the postfix program
    // at [D, D+Imm.I) is bytecode, not register uses.
    R.UseOff = In.B;
    R.UseCount = In.C;
    break;
  case Opcode::LoadIdxG:
  case Opcode::StoreIdxG:
    R.UseOff = In.C;
    R.UseCount = In.D;
    break;
  default:
    break;
  }
  return R;
}

bool majic::isPureInstr(Opcode Op) {
  switch (Op) {
  case Opcode::FConst:
  case Opcode::IConst:
  case Opcode::SConst:
  case Opcode::MovF:
  case Opcode::MovI:
  case Opcode::MovP:
  case Opcode::IToF:
  case Opcode::FToI:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FPow:
  case Opcode::FCmp:
  case Opcode::FIntr1:
  case Opcode::FIntr2:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::INeg:
  case Opcode::ICmp:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::INot:
  case Opcode::BoxF:
  case Opcode::BoxI:
  case Opcode::BoxB:
  case Opcode::BoxC:
  case Opcode::NewMat:
  case Opcode::LoadEl:
  case Opcode::LoadEl2:
  case Opcode::LenRows:
  case Opcode::LenCols:
  case Opcode::LenNumel:
  case Opcode::LoadParam:
    return true;
  default:
    return false;
  }
}

bool majic::isHoistableInstr(Opcode Op) {
  switch (Op) {
  case Opcode::FConst:
  case Opcode::IConst:
  case Opcode::MovF:
  case Opcode::MovI:
  case Opcode::IToF:
  case Opcode::FToI:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FPow:
  case Opcode::FCmp:
  case Opcode::FIntr1:
  case Opcode::FIntr2:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::INeg:
  case Opcode::ICmp:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::INot:
  case Opcode::BoxF:
  case Opcode::BoxI:
  case Opcode::BoxB:
    return true;
  default:
    return false;
  }
}
