//===- runtime/LinAlg.h - Dense linear algebra -----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense linear algebra used by builtins: LU solve (mldivide), Cholesky
/// factorization (chol), symmetric eigenvalues via cyclic Jacobi (eig),
/// and matrix inverse (inv). Real matrices only; the benchmark corpus does
/// not require complex factorizations.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_LINALG_H
#define MAJIC_RUNTIME_LINALG_H

#include "runtime/Value.h"

namespace majic {
namespace linalg {

/// Solves A * X = B via LU with partial pivoting; A must be square and
/// non-singular (throws MatlabError when numerically singular).
Value luSolve(const Value &A, const Value &B);

/// Upper-triangular Cholesky factor R with R' * R = A; throws when A is not
/// (numerically) symmetric positive definite.
Value cholesky(const Value &A);

/// Eigenvalues of a symmetric matrix, ascending, as a column vector.
/// Uses the cyclic Jacobi method. When \p Vectors is non-null, it receives
/// the orthonormal eigenvector matrix (columns match the eigenvalue order).
Value symEig(const Value &A, Value *Vectors = nullptr);

/// Matrix inverse via LU solve against the identity.
Value inverse(const Value &A);

/// Determinant via LU factorization.
double determinant(const Value &A);

} // namespace linalg
} // namespace majic

#endif // MAJIC_RUNTIME_LINALG_H
