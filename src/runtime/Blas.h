//===- runtime/Blas.h - BLAS-like dense kernels ----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal BLAS-like kernels over column-major double arrays. These are the
/// "precompiled library" side of MATLAB that compilation cannot accelerate
/// (Section 3.4: builtin-heavy benchmarks barely benefit), and the fusion
/// targets of the dgemv code-selection rule (Section 2.6.1).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_BLAS_H
#define MAJIC_RUNTIME_BLAS_H

#include <cstddef>

namespace majic {
namespace blas {

/// dot(x, y) over n elements.
double ddot(size_t N, const double *X, const double *Y);

/// y += a * x over n elements.
void daxpy(size_t N, double A, const double *X, double *Y);

/// x *= a over n elements.
void dscal(size_t N, double A, double *X);

/// y = alpha * A * x + beta * y, A is MxN column-major.
void dgemv(size_t M, size_t N, double Alpha, const double *A, const double *X,
           double Beta, double *Y);

/// C = alpha * A * B + beta * C; A is MxK, B is KxN, C is MxN, column-major.
void dgemm(size_t M, size_t N, size_t K, double Alpha, const double *A,
           const double *B, double Beta, double *C);

/// Euclidean norm of an n-vector.
double dnrm2(size_t N, const double *X);

} // namespace blas
} // namespace majic

#endif // MAJIC_RUNTIME_BLAS_H
