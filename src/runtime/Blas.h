//===- runtime/Blas.h - BLAS-like dense kernels ----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BLAS-like kernels over column-major double arrays. These are the
/// "precompiled library" side of MATLAB that compilation cannot accelerate
/// (Section 3.4: builtin-heavy benchmarks barely benefit), and the fusion
/// targets of the dgemv code-selection rule (Section 2.6.1).
///
/// The implementation is split across two translation units with different
/// floating-point contracts:
///
///  - BlasKernels.cpp (dgemm/dgemv/zgemm): cache-blocked, vectorized, and
///    multithreaded; built with the host's full instruction set (FMA is
///    allowed because the interpreter and the VM reach matrix products
///    through these same entry points, so both see identical results).
///    Threaded kernels partition work into fixed-size panels whose
///    per-element computation order does not depend on the thread count -
///    results are bit-identical for any ComputeThreads setting.
///
///  - Blas.cpp (ddot/daxpy/daxpyz/dscal/dnrm2 and the small-size naive
///    fallbacks): built without extra arch flags so no FMA contraction
///    occurs. The VM's fused Axpy op must match the interpreter's separate
///    multiply-then-add element-wise sequence to the last bit, which a
///    contracted fused multiply-add would break.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_BLAS_H
#define MAJIC_RUNTIME_BLAS_H

#include <cstddef>

namespace majic {
namespace blas {

/// dot(x, y) over n elements.
double ddot(size_t N, const double *X, const double *Y);

/// y += a * x over n elements.
void daxpy(size_t N, double A, const double *X, double *Y);

/// z = a * x + y over n elements (single-pass fused form of the VM's Axpy
/// op; z may not alias x but may equal y). Computes round(round(a*x) + y)
/// exactly like daxpy - never FMA-contracted.
void daxpyz(size_t N, double A, const double *X, const double *Y, double *Z);

/// x *= a over n elements.
void dscal(size_t N, double A, double *X);

/// y = alpha * A * x + beta * y, A is MxN column-major.
void dgemv(size_t M, size_t N, double Alpha, const double *A, const double *X,
           double Beta, double *Y);

/// C = alpha * A * B + beta * C; A is MxK, B is KxN, C is MxN, column-major.
/// Small products use the naive seed kernel; larger ones the blocked,
/// multithreaded kernel. N == 1 delegates to dgemv so the VM's fused Gemv
/// op and the interpreter's general matrix product stay bit-identical.
void dgemm(size_t M, size_t N, size_t K, double Alpha, const double *A,
           const double *B, double Beta, double *C);

/// Complex C = A * B over split real/imaginary planes; A is MxK, B is KxN,
/// C is MxN, column-major. A null AIm/BIm means that operand is purely real
/// (the plane is implicitly zero), so real-by-complex products never
/// materialize a zero imaginary plane. CRe and CIm must both be non-null
/// and are fully overwritten. Internally four (or fewer) dgemm calls.
void zgemm(size_t M, size_t N, size_t K, const double *ARe, const double *AIm,
           const double *BRe, const double *BIm, double *CRe, double *CIm);

/// Euclidean norm of an n-vector.
double dnrm2(size_t N, const double *X);

/// Cache-blocking parameters the blocked dgemm runs with. MC and KC are
/// sized from the host's L1/L2 data caches at first use; NC is the width of
/// the column panels the parallel kernel distributes over threads.
/// MAJIC_GEMM_MC / MAJIC_GEMM_KC / MAJIC_GEMM_NC override each field.
struct GemmBlocking {
  size_t MC, KC, NC;
};

/// The process-wide blocking configuration (resolved once, then cached).
const GemmBlocking &gemmBlocking();

namespace detail {

/// The seed's reference kernels, kept verbatim (axpy-style, zero-skip) in
/// the no-arch-flags TU. The public entry points fall back to these below
/// the blocking cutoff so small products - everything the golden tests
/// print - are byte-for-byte identical with the seed runtime.
void naiveDgemm(size_t M, size_t N, size_t K, double Alpha, const double *A,
                const double *B, double Beta, double *C);
void naiveDgemv(size_t M, size_t N, double Alpha, const double *A,
                const double *X, double Beta, double *Y);

} // namespace detail

} // namespace blas
} // namespace majic

#endif // MAJIC_RUNTIME_BLAS_H
