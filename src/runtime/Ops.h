//===- runtime/Ops.h - Polymorphic MATLAB operations ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The polymorphic operation library: every MATLAB operator implemented over
/// dynamic Values, with full runtime type/shape checking. This is what the
/// interpreter calls on every AST node, and what generated code falls back to
/// under the "implicit default rule" (Section 2.6.1: un-inferred operands are
/// treated as complex matrices and handled by the runtime library — the
/// mlfPlus/mlfTimes calls of Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_OPS_H
#define MAJIC_RUNTIME_OPS_H

#include "runtime/Value.h"

#include <span>
#include <vector>

namespace majic {
namespace rt {

/// Binary operator kinds, shared by the AST, the interpreter and the
/// generic-call opcode of the register VM.
enum class BinOp : uint8_t {
  Add,      // +
  Sub,      // -
  MatMul,   // *
  ElemMul,  // .*
  MatRDiv,  // /
  ElemRDiv, // ./
  MatLDiv,  // backslash
  ElemLDiv, // .\  (rarely used; included for completeness)
  MatPow,   // ^
  ElemPow,  // .^
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And, // element-wise &
  Or,  // element-wise |
};

enum class UnOp : uint8_t {
  Neg,        // unary -
  Plus,       // unary +
  Not,        // ~
  CTranspose, // ' (conjugate transpose)
  Transpose,  // .'
};

const char *binOpName(BinOp Op);
const char *unOpName(UnOp Op);

/// Evaluates a binary operator with full MATLAB semantics (broadcasting of
/// scalars, class promotion, complex arithmetic, string->double conversion).
/// Throws MatlabError on shape/class violations.
Value binary(BinOp Op, const Value &A, const Value &B);

Value unary(UnOp Op, const Value &A);

/// The colon operator a:b / a:s:b. Imaginary parts of the operands are
/// silently ignored (Section 2.5's first speculation hint relies on this).
Value colon(const Value &A, const Value &B);
Value colon(const Value &A, const Value &S, const Value &B);

/// Horizontal/vertical concatenation for the bracket operator [ ... ].
Value horzcat(std::span<const Value *const> Parts);
Value vertcat(std::span<const Value *const> Parts);

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

/// A resolved subscript for one dimension: either ":" or an explicit list of
/// 0-based indices. Logical (Bool class) index vectors select nonzero
/// positions, numeric ones must be positive integers.
class Indexer {
public:
  static Indexer colon() {
    Indexer I;
    I.IsColon = true;
    return I;
  }

  /// Resolves \p V into explicit indices. \p DimLen is the subscripted
  /// dimension's length, needed to validate logical subscripts.
  static Indexer fromValue(const Value &V, size_t DimLen);

  /// A single already-validated 0-based index (fast path).
  static Indexer single(size_t Idx0) {
    Indexer I;
    I.Zero.push_back(Idx0);
    return I;
  }

  bool isColon() const { return IsColon; }
  const std::vector<size_t> &indices() const { return Zero; }

  /// Number of selected elements given the dimension length.
  size_t count(size_t DimLen) const { return IsColon ? DimLen : Zero.size(); }

  /// Largest selected index + 1 (the dimension length the array must have).
  size_t requiredLen(size_t DimLen) const;

private:
  bool IsColon = false;
  std::vector<size_t> Zero;
};

/// A(I): linear indexing. The result has the shape MATLAB gives it (same
/// orientation as I for vector A, etc.).
Value index1(const Value &A, const Indexer &I);

/// A(R, C): two-dimensional indexing.
Value index2(const Value &A, const Indexer &R, const Indexer &C);

/// A(I) = RHS with resize-on-write. Growing a matrix (non-vector) through a
/// linear subscript is an error, matching MATLAB.
void indexAssign1(Value &A, const Indexer &I, const Value &RHS);

/// A(R, C) = RHS with resize-on-write in both dimensions.
void indexAssign2(Value &A, const Indexer &R, const Indexer &C,
                  const Value &RHS);

//===----------------------------------------------------------------------===//
// Helpers shared with builtins and display
//===----------------------------------------------------------------------===//

/// Converts a string value to its double char-code row vector; numeric
/// values pass through unchanged.
Value asNumeric(const Value &V);

/// Non-copying variant: returns \p V itself unless it is a string, in which
/// case the conversion is materialized into \p Scratch. The hot paths
/// (indexing, element-wise kernels) must use this form — copying a large
/// matrix per scalar element access would be quadratic.
const Value &asNumericView(const Value &V, Value &Scratch);

/// Element-wise real binary map with scalar broadcasting; complex operands
/// are an error. Used by two-argument math builtins (mod, rem, atan2).
Value elemwiseReal2(const Value &A, const Value &B, const char *Name,
                    double (*Fn)(double, double));

/// Checks a MATLAB 1-based subscript: positive and integral (within round-off
/// tolerance). Returns the 0-based index; throws MatlabError otherwise.
size_t checkSubscript(double X);

/// Renders a value the way the MATLAB command window displays "Name = ...".
std::string displayValue(const Value &V, const std::string &Name);

/// Result class of an arithmetic operation over \p A and \p B; \p Preserving
/// is true for operations that keep integers integral (+, -, *).
MClass arithResultClass(const Value &A, const Value &B, bool Preserving);

} // namespace rt
} // namespace majic

#endif // MAJIC_RUNTIME_OPS_H
