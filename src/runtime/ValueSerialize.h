//===- runtime/ValueSerialize.h - Workspace snapshots ----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary (de)serialization of interactive workspaces for session
/// hibernation: when the service's live-session cap is hit, an idle
/// session's state is snapshotted to disk (`.mjws`) and its slot freed; a
/// later request resurrects it transparently. MaJIC's responsiveness story
/// assumes an interactive session whose state survives the compiler's
/// adventures, so the snapshot gets the same crash-safety discipline as
/// the `.mjo` code store: a validation ladder of
///
///   magic -> format version -> payload size -> CRC32 -> bounds-checked
///   decode
///
/// where any rung's failure classifies the snapshot as corrupt (quarantine
/// on disk, session restarts empty with a loud error) rather than ever
/// admitting a torn workspace. A version-skew failure is its own verdict:
/// an old snapshot after an upgrade is routine turnover, deleted silently.
///
/// The payload is self-contained: the session's interactive function
/// definitions (source text, replayed through the engine so compiled code
/// comes back from the shared cache) followed by the workspace variables.
/// Values round-trip bit-identically - doubles are moved as raw IEEE bits,
/// so NaN payloads and signed zeros survive - because the acceptance bar
/// for hibernation is that a resurrected session is indistinguishable from
/// one that never left memory.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_VALUESERIALIZE_H
#define MAJIC_RUNTIME_VALUESERIALIZE_H

#include "runtime/Value.h"
#include "support/ByteStream.h"

#include <cstdint>
#include <string>
#include <vector>

namespace majic {
namespace ser {

/// "MJWS" little-endian, the workspace snapshot magic.
constexpr uint32_t kWorkspaceMagic = 0x53574a4d;

/// Version of the snapshot encoding itself. Unlike compiled code, a
/// workspace carries no ABI beyond the Value model, so this only bumps
/// when the byte layout below changes.
constexpr uint32_t kWorkspaceFormatVersion = 1;

/// Raised when a snapshot's format version differs from ours: not
/// corruption but turnover, so stores delete rather than quarantine.
class WorkspaceSkew : public SerializeError {
public:
  explicit WorkspaceSkew(uint32_t Found)
      : SerializeError("workspace format version " + std::to_string(Found) +
                       " (want " + std::to_string(kWorkspaceFormatVersion) +
                       ")") {}
};

/// Everything a session needs to come back from disk: the interactive
/// function definitions in submission order and the workspace variables
/// (sorted by name so identical workspaces encode to identical bytes).
struct WorkspaceImage {
  struct SourceDef {
    std::string Name; ///< module name at definition time (diagnostic only)
    std::string Text; ///< the source replayed on resurrect
  };
  struct VarDef {
    std::string Name;
    ValuePtr V;
  };
  std::vector<SourceDef> Sources;
  std::vector<VarDef> Vars;
};

/// Encodes one Value. Exposed (with readValue) so the fuzz tests can
/// attack the per-value layout directly.
void writeValue(ByteWriter &W, const Value &V);

/// Decodes one Value; throws SerializeError on any malformed encoding
/// (bad class, shape overflow, data overrunning the buffer, an imaginary
/// flag disagreeing with the class).
Value readValue(ByteReader &R);

/// Full snapshot: ladder header + payload.
std::string encodeWorkspaceImage(const WorkspaceImage &W);

/// Walks the full ladder; throws WorkspaceSkew on a version mismatch and
/// SerializeError on everything else (bad magic, size mismatch, checksum
/// mismatch, malformed payload, trailing bytes).
WorkspaceImage decodeWorkspaceImage(const std::string &Bytes);

} // namespace ser
} // namespace majic

#endif // MAJIC_RUNTIME_VALUESERIALIZE_H
