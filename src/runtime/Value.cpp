//===- runtime/Value.cpp - The MATLAB value -------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace majic;

namespace {

/// Maps an allocation failure (real or injected, including a live-byte
/// limit breach) to the recoverable MATLAB error every execution path
/// already knows how to unwind.
[[noreturn]] void throwOutOfMemory(size_t R, size_t C) {
  throw MatlabError(format("out of memory allocating a %zux%zu matrix", R, C));
}

} // namespace

const char *majic::mclassName(MClass C) {
  switch (C) {
  case MClass::Bool:
    return "logical";
  case MClass::Int:
    return "int";
  case MClass::Real:
    return "double";
  case MClass::Complex:
    return "complex";
  case MClass::String:
    return "char";
  }
  majic_unreachable("invalid MClass");
}

Value Value::zeros(size_t R, size_t C, MClass Cls) {
  Value V;
  V.reshapeUninit(R, C, Cls == MClass::Complex);
  std::fill(V.ReData.begin(), V.ReData.end(), 0.0);
  std::fill(V.ImData.begin(), V.ImData.end(), 0.0);
  V.Class = Cls;
  return V;
}

Value Value::uninit(size_t R, size_t C, MClass Cls) {
  Value V;
  V.reshapeUninit(R, C, /*WithImag=*/false);
  V.Class = Cls;
  return V;
}

Value Value::range(double First, double Step, double Last) {
  Value V;
  if (Step == 0)
    throw MatlabError("colon operands must define a nonzero increment");
  double Span = (Last - First) / Step;
  size_t N = Span < 0 ? 0 : static_cast<size_t>(std::floor(Span + 1e-10)) + 1;
  V.reshapeUninit(1, N, /*WithImag=*/false);
  for (size_t I = 0; I != N; ++I)
    V.ReData[I] = First + static_cast<double>(I) * Step;
  bool Integral = First == std::floor(First) && Step == std::floor(Step);
  V.Class = Integral ? MClass::Int : MClass::Real;
  return V;
}

bool Value::allImagZero() const {
  for (double X : ImData)
    if (X != 0.0)
      return false;
  return true;
}

double Value::scalarValue() const {
  if (isString()) {
    if (Str.size() == 1)
      return static_cast<double>(static_cast<unsigned char>(Str[0]));
    throw MatlabError("expected a scalar value, got a string");
  }
  if (!isScalar())
    throw MatlabError(format("expected a scalar value, got a %zux%zu matrix",
                             NumRows, NumCols));
  return ReData[0];
}

bool Value::isTrue() const {
  if (isEmpty())
    return false;
  if (isString()) {
    for (char Ch : Str)
      if (Ch == 0)
        return false;
    return true;
  }
  for (size_t I = 0, E = numel(); I != E; ++I)
    if (ReData[I] == 0.0)
      return false;
  return true;
}

void Value::reshapeUninit(size_t R, size_t C, bool WithImag) {
  // Commit the new shape only after the storage exists: a failed resize
  // must leave the value self-consistent (numel() never exceeds storage).
  // The injected fault fires inside the try so it takes the exact same
  // recovery path as a real allocation failure.
  try {
    faults::maybeThrowOom(faults::Site::ValueAlloc);
    ReData.resize(R * C);
    ImData.resize(WithImag ? R * C : 0);
  } catch (const std::bad_alloc &) {
    throwOutOfMemory(R, C);
  }
  NumRows = R;
  NumCols = C;
  Str.clear();
}

void Value::resizeErase(size_t R, size_t C, bool WithImag) {
  reshapeUninit(R, C, WithImag);
  std::fill(ReData.begin(), ReData.end(), 0.0);
  std::fill(ImData.begin(), ImData.end(), 0.0);
  if (Class == MClass::String)
    Class = MClass::Real;
}

void Value::growTo(size_t R, size_t C) {
  if (isString())
    throw MatlabError("cannot grow a string by indexed assignment");
  size_t NewR = std::max(R, NumRows), NewC = std::max(C, NumCols);
  if (NewR == NumRows && NewC == NumCols)
    return;

  bool WithImag = !ImData.empty();
  // Fast path: a column vector growing in rows, or any matrix gaining
  // columns only, keeps its column-major layout; grow in place. Apply the
  // paper's ~10% oversizing so that loop-driven growth amortizes.
  bool InPlace = (NumCols <= 1 && NewC <= 1) || (NewR == NumRows);
  if (InPlace) {
    size_t Needed = NewR * NewC;
    try {
      faults::maybeThrowOom(faults::Site::ValueAlloc);
      if (Needed > ReData.capacity()) {
        size_t Oversized = Needed + Needed / 10 + 4;
        ReData.reserve(Oversized);
        if (WithImag)
          ImData.reserve(Oversized);
      }
      ReData.resize(Needed, 0.0);
      if (WithImag)
        ImData.resize(Needed, 0.0);
    } catch (const std::bad_alloc &) {
      throwOutOfMemory(NewR, NewC);
    }
    NumRows = NewR;
    NumCols = NewC;
    return;
  }

  // General case: re-stride into a fresh buffer. Large arrays are never
  // oversized (Section 2.6.1).
  TrackedDoubles NewRe, NewIm;
  try {
    faults::maybeThrowOom(faults::Site::ValueAlloc);
    NewRe.assign(NewR * NewC, 0.0);
    NewIm.assign(WithImag ? NewR * NewC : 0, 0.0);
  } catch (const std::bad_alloc &) {
    throwOutOfMemory(NewR, NewC);
  }
  for (size_t CIdx = 0; CIdx != NumCols; ++CIdx) {
    for (size_t RIdx = 0; RIdx != NumRows; ++RIdx) {
      NewRe[CIdx * NewR + RIdx] = ReData[CIdx * NumRows + RIdx];
      if (WithImag)
        NewIm[CIdx * NewR + RIdx] = ImData[CIdx * NumRows + RIdx];
    }
  }
  ReData = std::move(NewRe);
  ImData = std::move(NewIm);
  NumRows = NewR;
  NumCols = NewC;
}

void Value::makeComplex() {
  if (isString())
    throw MatlabError("cannot convert a string to complex");
  if (ImData.empty()) {
    try {
      faults::maybeThrowOom(faults::Site::ValueAlloc);
      ImData.assign(numel(), 0.0);
    } catch (const std::bad_alloc &) {
      throwOutOfMemory(NumRows, NumCols);
    }
  }
  Class = MClass::Complex;
}

bool Value::demoteComplexIfReal() {
  if (Class != MClass::Complex || !allImagZero())
    return false;
  ImData.clear();
  Class = MClass::Real;
  return true;
}

Value &majic::makeUnique(ValuePtr &P) {
  assert(P && "null value");
  if (P.use_count() > 1)
    P = std::make_shared<Value>(*P);
  return *P;
}
