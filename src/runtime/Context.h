//===- runtime/Context.h - Shared execution context ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State shared by every execution path (interpreter, register VM, generic
/// compiled code): the PRNG behind rand(), and the output sink for
/// disp/fprintf. Sharing one context keeps results bit-identical across
/// paths, which the soundness tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_CONTEXT_H
#define MAJIC_RUNTIME_CONTEXT_H

#include "support/Rng.h"

#include <functional>
#include <string>

namespace majic {

class Context {
public:
  Rng Rand;

  /// Emits program output (disp, fprintf, unterminated expressions).
  /// Defaults to accumulating into OutputBuffer.
  void print(const std::string &S) {
    if (Sink)
      Sink(S);
    else
      OutputBuffer += S;
  }

  /// Installs an output callback; pass nullptr to restore buffering.
  void setSink(std::function<void(const std::string &)> NewSink) {
    Sink = std::move(NewSink);
  }

  const std::string &output() const { return OutputBuffer; }
  void clearOutput() { OutputBuffer.clear(); }

  /// Rolls buffered output back to \p Size (deoptimization retries undo
  /// partial output; a custom sink cannot be rolled back).
  void truncateOutput(size_t Size) {
    if (OutputBuffer.size() > Size)
      OutputBuffer.resize(Size);
  }

private:
  std::function<void(const std::string &)> Sink;
  std::string OutputBuffer;
};

} // namespace majic

#endif // MAJIC_RUNTIME_CONTEXT_H
