//===- runtime/Context.h - Shared execution context ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State shared by every execution path (interpreter, register VM, generic
/// compiled code): the PRNG behind rand(), the output sink for
/// disp/fprintf, and the execution-control block (op budget + cooperative
/// interrupt) that bounds runaway programs. Sharing one context keeps
/// results bit-identical across paths, which the soundness tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_CONTEXT_H
#define MAJIC_RUNTIME_CONTEXT_H

#include "support/Error.h"
#include "support/ResourceGuard.h"
#include "support/Rng.h"

#include <chrono>
#include <functional>
#include <string>

namespace majic {

/// Cooperative execution limits, polled from the VM dispatch loop (every
/// 256 instructions), the interpreter (every statement) and parallelFor
/// chunk boundaries. "Ops" are VM instructions plus interpreted statements:
/// an architecture-neutral cost proxy, reset by the engine at every
/// top-level invocation so the budget bounds one user request at a time.
class ExecControl {
public:
  uint64_t OpBudget = 0;     ///< 0 = unlimited
  uint64_t TimeBudgetNs = 0; ///< wall-clock cap per invocation; 0 = unlimited

  void reset() {
    Used = 0;
    Checks = 0;
    if (TimeBudgetNs)
      Start = std::chrono::steady_clock::now();
  }
  uint64_t used() const { return Used; }

  /// Accounts \p N ops; throws a clean MatlabError on interrupt or budget
  /// exhaustion. Engine state stays intact: callers unwind through the
  /// normal MATLAB-error path. The wall-clock budget is only sampled every
  /// ~512 consume() calls: a steady_clock read on every VM poll would cost
  /// more than the dispatch it guards.
  void consume(uint64_t N) {
    Used += N;
    exec::pollInterrupt();
    if (OpBudget && Used > OpBudget)
      throw MatlabError("operation budget exceeded (limit " +
                        std::to_string(OpBudget) + " ops)");
    if (TimeBudgetNs && (++Checks & 511u) == 0) {
      auto Elapsed = std::chrono::steady_clock::now() - Start;
      if (uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       Elapsed)
                       .count()) > TimeBudgetNs)
        throw MatlabError(
            "time budget exceeded (limit " +
            std::to_string(TimeBudgetNs / 1000000) + " ms)");
    }
  }

private:
  uint64_t Used = 0;
  uint64_t Checks = 0;
  std::chrono::steady_clock::time_point Start{};
};

class Context {
public:
  Rng Rand;
  ExecControl Exec;

  /// Emits program output (disp, fprintf, unterminated expressions).
  /// Defaults to accumulating into OutputBuffer.
  void print(const std::string &S) {
    if (Sink)
      Sink(S);
    else
      OutputBuffer += S;
  }

  /// Installs an output callback; pass nullptr to restore buffering.
  void setSink(std::function<void(const std::string &)> NewSink) {
    Sink = std::move(NewSink);
  }

  const std::string &output() const { return OutputBuffer; }
  void clearOutput() { OutputBuffer.clear(); }

  /// Rolls buffered output back to \p Size (deoptimization retries undo
  /// partial output; a custom sink cannot be rolled back).
  void truncateOutput(size_t Size) {
    if (OutputBuffer.size() > Size)
      OutputBuffer.resize(Size);
  }

private:
  std::function<void(const std::string &)> Sink;
  std::string OutputBuffer;
};

} // namespace majic

#endif // MAJIC_RUNTIME_CONTEXT_H
