//===- runtime/Blas.cpp - Exact-FP vector kernels --------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// This TU is built WITHOUT extra architecture flags (see
// src/runtime/CMakeLists.txt): the kernels here must round every multiply
// and add separately, because the VM's fused ops are checked bit-for-bit
// against the interpreter's unfused element-wise sequences. The blocked
// matrix kernels, where FMA is safe, live in BlasKernels.cpp.
//
//===----------------------------------------------------------------------===//

#include "runtime/Blas.h"

#include <cmath>

using namespace majic;

double blas::ddot(size_t N, const double *X, const double *Y) {
  // Four-lane unroll with a fixed combination order: the result is a
  // deterministic function of the inputs (no vectorization-dependent
  // reassociation), just not the same order as the seed's single chain.
  double S0 = 0, S1 = 0, S2 = 0, S3 = 0;
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    S0 += X[I] * Y[I];
    S1 += X[I + 1] * Y[I + 1];
    S2 += X[I + 2] * Y[I + 2];
    S3 += X[I + 3] * Y[I + 3];
  }
  double Sum = (S0 + S1) + (S2 + S3);
  for (; I != N; ++I)
    Sum += X[I] * Y[I];
  return Sum;
}

void blas::daxpy(size_t N, double A, const double *X, double *Y) {
  for (size_t I = 0; I != N; ++I)
    Y[I] += A * X[I];
}

void blas::daxpyz(size_t N, double A, const double *X, const double *Y,
                  double *Z) {
  for (size_t I = 0; I != N; ++I)
    Z[I] = A * X[I] + Y[I];
}

void blas::dscal(size_t N, double A, double *X) {
  for (size_t I = 0; I != N; ++I)
    X[I] *= A;
}

void blas::detail::naiveDgemv(size_t M, size_t N, double Alpha,
                              const double *A, const double *X, double Beta,
                              double *Y) {
  if (Beta == 0.0) {
    for (size_t I = 0; I != M; ++I)
      Y[I] = 0.0;
  } else if (Beta != 1.0) {
    dscal(M, Beta, Y);
  }
  // Column-major traversal: accumulate one column at a time.
  for (size_t J = 0; J != N; ++J) {
    double Scale = Alpha * X[J];
    if (Scale == 0.0)
      continue;
    const double *Col = A + J * M;
    for (size_t I = 0; I != M; ++I)
      Y[I] += Scale * Col[I];
  }
}

void blas::detail::naiveDgemm(size_t M, size_t N, size_t K, double Alpha,
                              const double *A, const double *B, double Beta,
                              double *C) {
  for (size_t J = 0; J != N; ++J) {
    double *CCol = C + J * M;
    if (Beta == 0.0) {
      for (size_t I = 0; I != M; ++I)
        CCol[I] = 0.0;
    } else if (Beta != 1.0) {
      dscal(M, Beta, CCol);
    }
    const double *BCol = B + J * K;
    for (size_t P = 0; P != K; ++P) {
      double Scale = Alpha * BCol[P];
      if (Scale == 0.0)
        continue;
      const double *ACol = A + P * M;
      for (size_t I = 0; I != M; ++I)
        CCol[I] += Scale * ACol[I];
    }
  }
}

double blas::dnrm2(size_t N, const double *X) {
  // Scaled accumulation avoids overflow for large magnitudes.
  double Scale = 0.0, SumSq = 1.0;
  for (size_t I = 0; I != N; ++I) {
    double AbsX = std::fabs(X[I]);
    if (AbsX == 0.0)
      continue;
    if (Scale < AbsX) {
      double Ratio = Scale / AbsX;
      SumSq = 1.0 + SumSq * Ratio * Ratio;
      Scale = AbsX;
    } else {
      double Ratio = AbsX / Scale;
      SumSq += Ratio * Ratio;
    }
  }
  return Scale * std::sqrt(SumSq);
}
