//===- runtime/Blas.cpp - BLAS-like dense kernels --------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Blas.h"

#include <cmath>

using namespace majic;

double blas::ddot(size_t N, const double *X, const double *Y) {
  double Sum = 0;
  for (size_t I = 0; I != N; ++I)
    Sum += X[I] * Y[I];
  return Sum;
}

void blas::daxpy(size_t N, double A, const double *X, double *Y) {
  for (size_t I = 0; I != N; ++I)
    Y[I] += A * X[I];
}

void blas::dscal(size_t N, double A, double *X) {
  for (size_t I = 0; I != N; ++I)
    X[I] *= A;
}

void blas::dgemv(size_t M, size_t N, double Alpha, const double *A,
                 const double *X, double Beta, double *Y) {
  if (Beta == 0.0) {
    for (size_t I = 0; I != M; ++I)
      Y[I] = 0.0;
  } else if (Beta != 1.0) {
    dscal(M, Beta, Y);
  }
  // Column-major traversal: accumulate one column at a time.
  for (size_t J = 0; J != N; ++J) {
    double Scale = Alpha * X[J];
    if (Scale == 0.0)
      continue;
    const double *Col = A + J * M;
    for (size_t I = 0; I != M; ++I)
      Y[I] += Scale * Col[I];
  }
}

void blas::dgemm(size_t M, size_t N, size_t K, double Alpha, const double *A,
                 const double *B, double Beta, double *C) {
  for (size_t J = 0; J != N; ++J) {
    double *CCol = C + J * M;
    if (Beta == 0.0) {
      for (size_t I = 0; I != M; ++I)
        CCol[I] = 0.0;
    } else if (Beta != 1.0) {
      dscal(M, Beta, CCol);
    }
    const double *BCol = B + J * K;
    for (size_t P = 0; P != K; ++P) {
      double Scale = Alpha * BCol[P];
      if (Scale == 0.0)
        continue;
      const double *ACol = A + P * M;
      for (size_t I = 0; I != M; ++I)
        CCol[I] += Scale * ACol[I];
    }
  }
}

double blas::dnrm2(size_t N, const double *X) {
  // Scaled accumulation avoids overflow for large magnitudes.
  double Scale = 0.0, SumSq = 1.0;
  for (size_t I = 0; I != N; ++I) {
    double AbsX = std::fabs(X[I]);
    if (AbsX == 0.0)
      continue;
    if (Scale < AbsX) {
      double Ratio = Scale / AbsX;
      SumSq = 1.0 + SumSq * Ratio * Ratio;
      Scale = AbsX;
    } else {
      double Ratio = AbsX / Scale;
      SumSq += Ratio * Ratio;
    }
  }
  return Scale * std::sqrt(SumSq);
}
