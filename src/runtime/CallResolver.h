//===- runtime/CallResolver.h - User-function call interface ---*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface through which executing code (the interpreter or compiled
/// code in the register VM) invokes user functions. The engine implements it
/// on top of the code repository: an invocation is matched against compiled
/// versions, possibly triggering JIT compilation, or falls back to the
/// interpreter (Section 2: the front end "defers computationally complex
/// tasks ... to the code repository").
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_CALLRESOLVER_H
#define MAJIC_RUNTIME_CALLRESOLVER_H

#include "runtime/Value.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace majic {

class CallResolver {
public:
  virtual ~CallResolver() = default;

  /// Invokes user function \p Name with \p Args, requesting \p NumOuts
  /// outputs. Throws MatlabError when the function is unknown or fails.
  virtual std::vector<ValuePtr> callFunction(const std::string &Name,
                                             std::vector<ValuePtr> Args,
                                             size_t NumOuts,
                                             SourceLoc Loc) = 0;

  /// True when \p Name resolves to a user function visible to the resolver
  /// (used by dynamic resolution of ambiguous symbols).
  virtual bool knowsFunction(const std::string &Name) = 0;
};

} // namespace majic

#endif // MAJIC_RUNTIME_CALLRESOLVER_H
