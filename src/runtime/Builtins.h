//===- runtime/Builtins.h - MATLAB builtin functions -----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The builtin ("precompiled library") function table. Builtins are the
/// functions the interpreter resolves after variables (Section 2.1), and the
/// library calls that compiled code falls back to. Scalar math builtins also
/// expose an intrinsic id so the code generator can inline them as single
/// VM instructions (Section 2.6.1: "MaJIC inlines ... elementary math
/// functions").
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_BUILTINS_H
#define MAJIC_RUNTIME_BUILTINS_H

#include "runtime/Context.h"
#include "runtime/Value.h"

#include <span>
#include <string>
#include <vector>

namespace majic {

/// Scalar math operations the register VM can execute as one instruction.
/// Guarded intrinsics (Sqrt, Log) are only selected when type inference can
/// prove the real-domain precondition; otherwise the generic builtin call
/// (which escalates to complex) is used.
enum class ScalarIntrinsic : uint8_t {
  None,
  Abs,
  Sqrt, // requires arg >= 0
  Exp,
  Log, // requires arg > 0
  Log2,
  Log10,
  Sin,
  Cos,
  Tan,
  Asin, // requires |arg| <= 1
  Acos, // requires |arg| <= 1
  Atan,
  Sinh,
  Cosh,
  Tanh,
  Floor,
  Ceil,
  Round,
  Fix,
  Sign,
  // Two-argument intrinsics.
  Atan2,
  Mod,
  Rem,
  Min2,
  Max2,
  Hypot,
};

/// Evaluates a one-argument scalar intrinsic on a double.
double evalScalarIntrinsic1(ScalarIntrinsic Op, double X);
/// Evaluates a two-argument scalar intrinsic.
double evalScalarIntrinsic2(ScalarIntrinsic Op, double X, double Y);
/// Number of arguments (1 or 2) the intrinsic takes; 0 for None.
unsigned scalarIntrinsicArity(ScalarIntrinsic Op);
/// True when the intrinsic needs a domain precondition (Sqrt, Log, ...).
bool scalarIntrinsicNeedsGuard(ScalarIntrinsic Op);

/// Descriptor of one builtin function.
struct BuiltinDef {
  std::string Name;
  int MinArgs;
  int MaxArgs; // -1 = unbounded (fprintf)
  int MaxOuts; // number of output values the builtin can produce
  /// The implementation; returns MaxOuts or fewer values (>= 1 unless the
  /// builtin is effect-only like disp).
  std::vector<Value> (*Impl)(Context &Ctx, std::span<const Value *const> Args,
                             size_t NumOuts);
  /// Non-None when the builtin maps to a scalar VM intrinsic.
  ScalarIntrinsic Intrinsic = ScalarIntrinsic::None;
  /// True for functions like rand/fprintf/disp/error whose calls cannot be
  /// reordered or eliminated.
  bool HasSideEffects = false;
};

/// The builtin table; a process-wide singleton built on first use.
class BuiltinTable {
public:
  static const BuiltinTable &instance();

  /// Returns the builtin named \p Name, or nullptr.
  const BuiltinDef *lookup(const std::string &Name) const;

  bool contains(const std::string &Name) const { return lookup(Name); }

  const std::vector<BuiltinDef> &all() const { return Defs; }

  /// Invokes \p Def with arity checking; throws MatlabError on bad arity.
  static std::vector<Value> call(const BuiltinDef &Def, Context &Ctx,
                                 std::span<const Value *const> Args,
                                 size_t NumOuts);

private:
  BuiltinTable();
  std::vector<BuiltinDef> Defs; // sorted by name
};

} // namespace majic

#endif // MAJIC_RUNTIME_BUILTINS_H
