//===- runtime/Builtins.cpp - MATLAB builtin functions ---------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Builtins.h"

#include "runtime/Blas.h"
#include "support/Parallel.h"
#include "runtime/LinAlg.h"
#include "runtime/Ops.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <numeric>

using namespace majic;
using namespace majic::rt;

using Cplx = std::complex<double>;
using Args = std::span<const Value *const>;

//===----------------------------------------------------------------------===//
// Scalar intrinsics
//===----------------------------------------------------------------------===//

double majic::evalScalarIntrinsic1(ScalarIntrinsic Op, double X) {
  switch (Op) {
  case ScalarIntrinsic::Abs:
    return std::fabs(X);
  case ScalarIntrinsic::Sqrt:
    return std::sqrt(X);
  case ScalarIntrinsic::Exp:
    return std::exp(X);
  case ScalarIntrinsic::Log:
    return std::log(X);
  case ScalarIntrinsic::Log2:
    return std::log2(X);
  case ScalarIntrinsic::Log10:
    return std::log10(X);
  case ScalarIntrinsic::Sin:
    return std::sin(X);
  case ScalarIntrinsic::Cos:
    return std::cos(X);
  case ScalarIntrinsic::Tan:
    return std::tan(X);
  case ScalarIntrinsic::Asin:
    return std::asin(X);
  case ScalarIntrinsic::Acos:
    return std::acos(X);
  case ScalarIntrinsic::Atan:
    return std::atan(X);
  case ScalarIntrinsic::Sinh:
    return std::sinh(X);
  case ScalarIntrinsic::Cosh:
    return std::cosh(X);
  case ScalarIntrinsic::Tanh:
    return std::tanh(X);
  case ScalarIntrinsic::Floor:
    return std::floor(X);
  case ScalarIntrinsic::Ceil:
    return std::ceil(X);
  case ScalarIntrinsic::Round:
    return std::round(X);
  case ScalarIntrinsic::Fix:
    return std::trunc(X);
  case ScalarIntrinsic::Sign:
    return X > 0 ? 1.0 : X < 0 ? -1.0 : 0.0;
  default:
    majic_unreachable("not a unary scalar intrinsic");
  }
}

double majic::evalScalarIntrinsic2(ScalarIntrinsic Op, double X, double Y) {
  switch (Op) {
  case ScalarIntrinsic::Atan2:
    return std::atan2(X, Y);
  case ScalarIntrinsic::Mod:
    return Y == 0 ? X : X - std::floor(X / Y) * Y;
  case ScalarIntrinsic::Rem:
    return Y == 0 ? std::numeric_limits<double>::quiet_NaN()
                  : X - std::trunc(X / Y) * Y;
  case ScalarIntrinsic::Min2:
    return std::min(X, Y);
  case ScalarIntrinsic::Max2:
    return std::max(X, Y);
  case ScalarIntrinsic::Hypot:
    return std::hypot(X, Y);
  default:
    majic_unreachable("not a binary scalar intrinsic");
  }
}

unsigned majic::scalarIntrinsicArity(ScalarIntrinsic Op) {
  switch (Op) {
  case ScalarIntrinsic::None:
    return 0;
  case ScalarIntrinsic::Atan2:
  case ScalarIntrinsic::Mod:
  case ScalarIntrinsic::Rem:
  case ScalarIntrinsic::Min2:
  case ScalarIntrinsic::Max2:
  case ScalarIntrinsic::Hypot:
    return 2;
  default:
    return 1;
  }
}

bool majic::scalarIntrinsicNeedsGuard(ScalarIntrinsic Op) {
  return Op == ScalarIntrinsic::Sqrt || Op == ScalarIntrinsic::Log ||
         Op == ScalarIntrinsic::Log2 || Op == ScalarIntrinsic::Log10 ||
         Op == ScalarIntrinsic::Asin || Op == ScalarIntrinsic::Acos;
}

//===----------------------------------------------------------------------===//
// Builtin implementations
//===----------------------------------------------------------------------===//

namespace {

std::vector<Value> one(Value V) {
  std::vector<Value> R;
  R.push_back(std::move(V));
  return R;
}

/// Shape arguments of zeros/ones/rand/eye: (), (n), (n, m).
void creatorShape(Args A, size_t &R, size_t &C) {
  if (A.empty()) {
    R = C = 1;
    return;
  }
  double N = A[0]->scalarValue();
  if (N < 0)
    N = 0;
  if (A.size() == 1) {
    R = C = static_cast<size_t>(N);
    return;
  }
  double M = A[1]->scalarValue();
  if (M < 0)
    M = 0;
  R = static_cast<size_t>(N);
  C = static_cast<size_t>(M);
}

std::vector<Value> bZeros(Context &, Args A, size_t) {
  size_t R, C;
  creatorShape(A, R, C);
  return one(Value::zeros(R, C));
}

std::vector<Value> bOnes(Context &, Args A, size_t) {
  size_t R, C;
  creatorShape(A, R, C);
  Value V = Value::zeros(R, C);
  std::fill(V.reData(), V.reData() + V.numel(), 1.0);
  V.setClass(MClass::Int);
  return one(std::move(V));
}

std::vector<Value> bEye(Context &, Args A, size_t) {
  size_t R, C;
  creatorShape(A, R, C);
  Value V = Value::zeros(R, C);
  for (size_t I = 0; I != std::min(R, C); ++I)
    V.reRef(I * R + I) = 1.0;
  V.setClass(MClass::Int);
  return one(std::move(V));
}

std::vector<Value> bRand(Context &Ctx, Args A, size_t) {
  size_t R, C;
  creatorShape(A, R, C);
  Value V = Value::zeros(R, C);
  // Column-major fill order is part of the reproducibility contract.
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    V.reRef(I) = Ctx.Rand.nextDouble();
  return one(std::move(V));
}

std::vector<Value> bSize(Context &, Args A, size_t NumOuts) {
  const Value &V = *A[0];
  if (A.size() == 2) {
    double Dim = A[1]->scalarValue();
    size_t D = checkSubscript(Dim);
    double Len = D == 0 ? V.rows() : D == 1 ? V.cols() : 1;
    return one(Value::intScalar(Len));
  }
  if (NumOuts >= 2) {
    std::vector<Value> Out;
    Out.push_back(Value::intScalar(static_cast<double>(V.rows())));
    Out.push_back(Value::intScalar(static_cast<double>(V.cols())));
    return Out;
  }
  Value S = Value::zeros(1, 2, MClass::Int);
  S.reRef(0) = static_cast<double>(V.rows());
  S.reRef(1) = static_cast<double>(V.cols());
  return one(std::move(S));
}

std::vector<Value> bLength(Context &, Args A, size_t) {
  const Value &V = *A[0];
  double L = V.isEmpty() ? 0 : static_cast<double>(std::max(V.rows(), V.cols()));
  return one(Value::intScalar(L));
}

std::vector<Value> bNumel(Context &, Args A, size_t) {
  return one(Value::intScalar(static_cast<double>(A[0]->numel())));
}

std::vector<Value> bIsempty(Context &, Args A, size_t) {
  return one(Value::boolScalar(A[0]->isEmpty()));
}

std::vector<Value> bIsreal(Context &, Args A, size_t) {
  return one(Value::boolScalar(!A[0]->isComplex()));
}

std::vector<Value> bIsscalar(Context &, Args A, size_t) {
  return one(Value::boolScalar(A[0]->isScalar()));
}

//===----------------------------------------------------------------------===//
// Element-wise math
//===----------------------------------------------------------------------===//

/// Applies a real and a complex kernel element-wise. \p EscalatePred says
/// whether a real input element forces a complex result (sqrt/log of
/// negative values).
template <typename RealFn, typename CplxFn, typename Pred>
Value mapMath(const Value &VIn, RealFn RF, CplxFn CF, Pred EscalatePred) {
  Value Scratch;
  const Value &V = asNumericView(VIn, Scratch);
  size_t N = V.numel();
  bool NeedComplex = V.isComplex();
  if (!NeedComplex) {
    for (size_t I = 0; I != N && !NeedComplex; ++I)
      NeedComplex = EscalatePred(V.re(I));
  }
  if (!NeedComplex) {
    Value Out = Value::zeros(V.rows(), V.cols());
    for (size_t I = 0; I != N; ++I)
      Out.reRef(I) = RF(V.re(I));
    return Out;
  }
  Value Out = Value::zeros(V.rows(), V.cols(), MClass::Complex);
  for (size_t I = 0; I != N; ++I) {
    Cplx R = CF(Cplx(V.re(I), V.im(I)));
    Out.reRef(I) = R.real();
    Out.imRef(I) = R.imag();
  }
  Out.demoteComplexIfReal();
  return Out;
}

/// Real-only element-wise map; complex inputs are an error.
template <typename RealFn>
Value mapReal(const Value &VIn, const char *Name, RealFn RF) {
  Value Scratch;
  const Value &V = asNumericView(VIn, Scratch);
  if (V.isComplex())
    throw MatlabError(format("%s requires a real argument", Name));
  Value Out = Value::zeros(V.rows(), V.cols());
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    Out.reRef(I) = RF(V.re(I));
  return Out;
}

std::vector<Value> bAbs(Context &, Args A, size_t) {
  Value Scratch;
  const Value &V = asNumericView(*A[0], Scratch);
  Value Out = Value::zeros(V.rows(), V.cols());
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    Out.reRef(I) = V.isComplex() ? std::hypot(V.re(I), V.im(I))
                                 : std::fabs(V.re(I));
  return one(std::move(Out));
}

std::vector<Value> bSqrt(Context &, Args A, size_t) {
  return one(mapMath(
      *A[0], [](double X) { return std::sqrt(X); },
      [](Cplx X) { return std::sqrt(X); }, [](double X) { return X < 0; }));
}

std::vector<Value> bExp(Context &, Args A, size_t) {
  return one(mapMath(
      *A[0], [](double X) { return std::exp(X); },
      [](Cplx X) { return std::exp(X); }, [](double) { return false; }));
}

std::vector<Value> bLog(Context &, Args A, size_t) {
  return one(mapMath(
      *A[0], [](double X) { return std::log(X); },
      [](Cplx X) { return std::log(X); }, [](double X) { return X < 0; }));
}

std::vector<Value> bReal(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  Value Out = Value::zeros(V.rows(), V.cols());
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    Out.reRef(I) = V.re(I);
  return one(std::move(Out));
}

std::vector<Value> bImag(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  Value Out = Value::zeros(V.rows(), V.cols());
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    Out.reRef(I) = V.im(I);
  return one(std::move(Out));
}

std::vector<Value> bConj(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  if (!V.isComplex())
    return one(std::move(V));
  Value Out = V;
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    Out.imRef(I) = -V.im(I);
  return one(std::move(Out));
}

std::vector<Value> bAngle(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  Value Out = Value::zeros(V.rows(), V.cols());
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    Out.reRef(I) = std::atan2(V.im(I), V.re(I));
  return one(std::move(Out));
}

//===----------------------------------------------------------------------===//
// Reductions
//===----------------------------------------------------------------------===//

/// Applies a column-wise reduction: vectors reduce to a scalar, matrices to
/// a row vector (MATLAB's dimension convention).
/// Fixed partial-reduction chunk width for long vectors. The chunking (and
/// therefore the combination order, and the floating-point result) depends
/// only on the element count, never on the thread count: every chunk's
/// partial is folded from Init identically, and the partials are merged
/// sequentially in chunk order - bit-identical for any ComputeThreads.
constexpr size_t ReduceChunk = 16384;

template <typename Fn>
Value reduceColumns(const Value &VIn, double Init, Fn Step) {
  Value Scratch;
  const Value &V = asNumericView(VIn, Scratch);
  if (V.isComplex())
    throw MatlabError("complex reductions are not supported in this subset");
  if (V.isEmpty())
    return Value::scalar(Init);
  if (V.isVector()) {
    const double *P = V.reData();
    size_t N = V.numel();
    if (N >= 2 * ReduceChunk) {
      // Chunked: valid because Init is Step's identity and Step itself
      // merges two partial accumulations (sum, prod, any, all all qualify).
      size_t NumChunks = (N + ReduceChunk - 1) / ReduceChunk;
      std::vector<double> Partials(NumChunks);
      par::parallelFor(NumChunks, 1, [&](size_t C0, size_t C1) {
        for (size_t C = C0; C != C1; ++C) {
          double Acc = Init;
          size_t End = std::min(N, (C + 1) * ReduceChunk);
          for (size_t I = C * ReduceChunk; I != End; ++I)
            Acc = Step(Acc, P[I]);
          Partials[C] = Acc;
        }
      });
      double Acc = Init;
      for (double Partial : Partials)
        Acc = Step(Acc, Partial);
      return Value::scalar(Acc);
    }
    double Acc = Init;
    for (size_t I = 0; I != N; ++I)
      Acc = Step(Acc, P[I]);
    return Value::scalar(Acc);
  }
  Value Out = Value::zeros(1, V.cols());
  // Each column folds sequentially exactly as in the serial code; threads
  // only decide which columns they own, so results cannot depend on them.
  const double *P = V.reData();
  double *PO = Out.reData();
  size_t Rows = V.rows();
  par::parallelFor(V.cols(), std::max<size_t>(1, ReduceChunk / Rows),
                   [&](size_t C0, size_t C1) {
                     for (size_t C = C0; C != C1; ++C) {
                       double Acc = Init;
                       const double *Col = P + C * Rows;
                       for (size_t R = 0; R != Rows; ++R)
                         Acc = Step(Acc, Col[R]);
                       PO[C] = Acc;
                     }
                   });
  return Out;
}

std::vector<Value> bSum(Context &, Args A, size_t) {
  return one(reduceColumns(*A[0], 0.0,
                           [](double Acc, double X) { return Acc + X; }));
}

std::vector<Value> bProd(Context &, Args A, size_t) {
  return one(reduceColumns(*A[0], 1.0,
                           [](double Acc, double X) { return Acc * X; }));
}

std::vector<Value> bMean(Context &, Args A, size_t) {
  const Value &V = *A[0];
  if (V.isEmpty())
    throw MatlabError("mean of an empty array");
  Value Sum = reduceColumns(V, 0.0,
                            [](double Acc, double X) { return Acc + X; });
  double Den = V.isVector() ? static_cast<double>(V.numel())
                            : static_cast<double>(V.rows());
  return one(binary(BinOp::MatRDiv, Sum, Value::scalar(Den)));
}

/// max/min: one-argument (reduction, optional index output) and two-argument
/// (element-wise) forms.
std::vector<Value> minMax(Args A, size_t NumOuts, bool IsMax) {
  auto Better = [IsMax](double X, double Y) { return IsMax ? X > Y : X < Y; };
  if (A.size() == 2) {
    Value R = rt::binary(IsMax ? BinOp::Ge : BinOp::Le, *A[0], *A[1]);
    // Element-wise select via the comparison mask.
    Value X = asNumeric(*A[0]), Y = asNumeric(*A[1]);
    size_t N = std::max(X.numel(), Y.numel());
    size_t Rows = X.isScalar() ? Y.rows() : X.rows();
    size_t Cols = X.isScalar() ? Y.cols() : X.cols();
    Value Out = Value::zeros(Rows, Cols);
    for (size_t I = 0; I != N; ++I) {
      double Xv = X.re(X.isScalar() ? 0 : I), Yv = Y.re(Y.isScalar() ? 0 : I);
      Out.reRef(I) = Better(Xv, Yv) || Xv == Yv ? Xv : Yv;
    }
    return one(std::move(Out));
  }

  Value V = asNumeric(*A[0]);
  if (V.isComplex())
    throw MatlabError("complex max/min is not supported in this subset");
  if (V.isEmpty())
    return one(Value());
  if (V.isVector()) {
    size_t BestIdx = 0;
    for (size_t I = 1, E = V.numel(); I != E; ++I)
      if (Better(V.re(I), V.re(BestIdx)))
        BestIdx = I;
    std::vector<Value> Out;
    Out.push_back(Value::scalar(V.re(BestIdx)));
    if (NumOuts >= 2)
      Out.push_back(Value::intScalar(static_cast<double>(BestIdx + 1)));
    return Out;
  }
  Value M = Value::zeros(1, V.cols());
  Value Idx = Value::zeros(1, V.cols(), MClass::Int);
  for (size_t C = 0; C != V.cols(); ++C) {
    size_t BestIdx = 0;
    for (size_t R = 1; R != V.rows(); ++R)
      if (Better(V.at(R, C), V.at(BestIdx, C)))
        BestIdx = R;
    M.reRef(C) = V.at(BestIdx, C);
    Idx.reRef(C) = static_cast<double>(BestIdx + 1);
  }
  std::vector<Value> Out;
  Out.push_back(std::move(M));
  if (NumOuts >= 2)
    Out.push_back(std::move(Idx));
  return Out;
}

std::vector<Value> bMax(Context &, Args A, size_t NumOuts) {
  return minMax(A, NumOuts, /*IsMax=*/true);
}
std::vector<Value> bMin(Context &, Args A, size_t NumOuts) {
  return minMax(A, NumOuts, /*IsMax=*/false);
}

std::vector<Value> bNorm(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  double P = 2;
  bool Fro = false, IsInf = false;
  if (A.size() == 2) {
    if (A[1]->isString()) {
      if (A[1]->stringValue() == "fro")
        Fro = true;
      else if (A[1]->stringValue() == "inf")
        IsInf = true;
      else
        throw MatlabError("unknown norm type");
    } else {
      P = A[1]->scalarValue();
      IsInf = std::isinf(P);
    }
  }
  if (V.isComplex()) {
    // norm over |elements| for vectors.
    if (!V.isVector() && !Fro)
      throw MatlabError("complex matrix norms are not supported");
    double Sum = 0;
    for (size_t I = 0, E = V.numel(); I != E; ++I) {
      double Mag = std::hypot(V.re(I), V.im(I));
      Sum += Mag * Mag;
    }
    return one(Value::scalar(std::sqrt(Sum)));
  }
  if (V.isVector() || Fro) {
    if (Fro || (P == 2 && !IsInf))
      return one(Value::scalar(blas::dnrm2(V.numel(), V.reData())));
    if (IsInf) {
      double M = 0;
      for (size_t I = 0, E = V.numel(); I != E; ++I)
        M = std::max(M, std::fabs(V.re(I)));
      return one(Value::scalar(M));
    }
    double Sum = 0;
    for (size_t I = 0, E = V.numel(); I != E; ++I)
      Sum += std::pow(std::fabs(V.re(I)), P);
    return one(Value::scalar(std::pow(Sum, 1.0 / P)));
  }
  // Matrix norms: 1 (max column sum), inf (max row sum), 2 (spectral).
  if (P == 1 || IsInf) {
    double M = 0;
    if (P == 1) {
      for (size_t C = 0; C != V.cols(); ++C) {
        double S = 0;
        for (size_t R = 0; R != V.rows(); ++R)
          S += std::fabs(V.at(R, C));
        M = std::max(M, S);
      }
    } else {
      for (size_t R = 0; R != V.rows(); ++R) {
        double S = 0;
        for (size_t C = 0; C != V.cols(); ++C)
          S += std::fabs(V.at(R, C));
        M = std::max(M, S);
      }
    }
    return one(Value::scalar(M));
  }
  // Spectral norm: sqrt(max eig(A' * A)).
  Value AtA = binary(BinOp::MatMul, unary(UnOp::CTranspose, V), V);
  Value Eigs = linalg::symEig(AtA);
  double MaxEig = Eigs.isEmpty() ? 0.0 : Eigs.re(Eigs.numel() - 1);
  return one(Value::scalar(std::sqrt(std::max(0.0, MaxEig))));
}

std::vector<Value> bDot(Context &, Args A, size_t) {
  Value X = asNumeric(*A[0]), Y = asNumeric(*A[1]);
  if (X.numel() != Y.numel())
    throw MatlabError("dot requires vectors of the same length");
  if (!X.isComplex() && !Y.isComplex())
    return one(Value::scalar(blas::ddot(X.numel(), X.reData(), Y.reData())));
  Cplx Sum = 0;
  for (size_t I = 0, E = X.numel(); I != E; ++I)
    Sum += std::conj(Cplx(X.re(I), X.im(I))) * Cplx(Y.re(I), Y.im(I));
  return one(Value::complexScalar(Sum.real(), Sum.imag()));
}

//===----------------------------------------------------------------------===//
// Structure / search
//===----------------------------------------------------------------------===//

std::vector<Value> bFind(Context &, Args A, size_t) {
  Value Scratch;
  const Value &V = asNumericView(*A[0], Scratch);
  std::vector<double> Hits;
  for (size_t I = 0, E = V.numel(); I != E; ++I)
    if (V.re(I) != 0.0 || V.im(I) != 0.0)
      Hits.push_back(static_cast<double>(I + 1));
  bool Row = V.isRowVector();
  Value Out = Value::zeros(Row ? 1 : Hits.size(), Row ? Hits.size()
                                                      : (Hits.empty() ? 0 : 1),
                           MClass::Int);
  for (size_t I = 0; I != Hits.size(); ++I)
    Out.reRef(I) = Hits[I];
  return one(std::move(Out));
}

std::vector<Value> bAny(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  Value R = reduceColumns(V, 0.0, [](double Acc, double X) {
    return Acc != 0.0 || X != 0.0 ? 1.0 : 0.0;
  });
  R.setClass(MClass::Bool);
  return one(std::move(R));
}

std::vector<Value> bAll(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  Value R = reduceColumns(V, 1.0, [](double Acc, double X) {
    return Acc != 0.0 && X != 0.0 ? 1.0 : 0.0;
  });
  R.setClass(MClass::Bool);
  return one(std::move(R));
}

std::vector<Value> bSort(Context &, Args A, size_t NumOuts) {
  Value V = asNumeric(*A[0]);
  if (!V.isVector() && !V.isEmpty())
    throw MatlabError("sort supports only vectors in this subset");
  std::vector<size_t> Order(V.numel());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t X, size_t Y) { return V.re(X) < V.re(Y); });
  Value Out = Value::zeros(V.rows(), V.cols());
  Value Idx = Value::zeros(V.rows(), V.cols(), MClass::Int);
  for (size_t I = 0; I != Order.size(); ++I) {
    Out.reRef(I) = V.re(Order[I]);
    Idx.reRef(I) = static_cast<double>(Order[I] + 1);
  }
  std::vector<Value> R;
  R.push_back(std::move(Out));
  if (NumOuts >= 2)
    R.push_back(std::move(Idx));
  return R;
}

std::vector<Value> bLinspace(Context &, Args A, size_t) {
  double Lo = A[0]->scalarValue(), Hi = A[1]->scalarValue();
  size_t N = A.size() == 3 ? static_cast<size_t>(A[2]->scalarValue()) : 100;
  Value Out = Value::zeros(1, N);
  for (size_t I = 0; I != N; ++I)
    Out.reRef(I) =
        N == 1 ? Hi : Lo + (Hi - Lo) * static_cast<double>(I) / (N - 1);
  return one(std::move(Out));
}

std::vector<Value> bDiag(Context &, Args A, size_t) {
  Value V = asNumeric(*A[0]);
  if (V.isVector()) {
    size_t N = V.numel();
    Value Out = Value::zeros(N, N, V.isComplex() ? MClass::Complex : V.mclass());
    for (size_t I = 0; I != N; ++I) {
      Out.reRef(I * N + I) = V.re(I);
      if (V.isComplex())
        Out.imRef(I * N + I) = V.im(I);
    }
    return one(std::move(Out));
  }
  size_t N = std::min(V.rows(), V.cols());
  Value Out = Value::zeros(N, N ? 1 : 0,
                           V.isComplex() ? MClass::Complex : V.mclass());
  for (size_t I = 0; I != N; ++I) {
    Out.reRef(I) = V.at(I, I);
    if (V.isComplex())
      Out.imRef(I) = V.atIm(I, I);
  }
  return one(std::move(Out));
}

std::vector<Value> bTrace(Context &, Args A, size_t) {
  const Value &V = *A[0];
  double Sum = 0, SumIm = 0;
  for (size_t I = 0, E = std::min(V.rows(), V.cols()); I != E; ++I) {
    Sum += V.at(I, I);
    SumIm += V.atIm(I, I);
  }
  if (SumIm != 0)
    return one(Value::complexScalar(Sum, SumIm));
  return one(Value::scalar(Sum));
}

//===----------------------------------------------------------------------===//
// Linear algebra builtins
//===----------------------------------------------------------------------===//

std::vector<Value> bEig(Context &, Args A, size_t NumOuts) {
  Value V = asNumeric(*A[0]);
  if (V.isComplex())
    throw MatlabError("complex eig is not supported in this subset");
  if (NumOuts >= 2) {
    Value Vectors;
    Value Eigs = linalg::symEig(V, &Vectors);
    // [V, D] = eig(A): D is the diagonal eigenvalue matrix.
    size_t N = Eigs.numel();
    Value D = Value::zeros(N, N);
    for (size_t I = 0; I != N; ++I)
      D.reRef(I * N + I) = Eigs.re(I);
    std::vector<Value> Out;
    Out.push_back(std::move(Vectors));
    Out.push_back(std::move(D));
    return Out;
  }
  return one(linalg::symEig(V));
}

std::vector<Value> bChol(Context &, Args A, size_t) {
  return one(linalg::cholesky(asNumeric(*A[0])));
}

std::vector<Value> bInv(Context &, Args A, size_t) {
  return one(linalg::inverse(asNumeric(*A[0])));
}

std::vector<Value> bDet(Context &, Args A, size_t) {
  return one(Value::scalar(linalg::determinant(asNumeric(*A[0]))));
}

//===----------------------------------------------------------------------===//
// Constants
//===----------------------------------------------------------------------===//

std::vector<Value> bPi(Context &, Args, size_t) {
  return one(Value::scalar(3.14159265358979323846));
}
std::vector<Value> bInf(Context &, Args, size_t) {
  return one(Value::scalar(std::numeric_limits<double>::infinity()));
}
std::vector<Value> bNan(Context &, Args, size_t) {
  return one(Value::scalar(std::numeric_limits<double>::quiet_NaN()));
}
std::vector<Value> bEps(Context &, Args, size_t) {
  return one(Value::scalar(std::numeric_limits<double>::epsilon()));
}
std::vector<Value> bImagUnit(Context &, Args, size_t) {
  return one(Value::complexScalar(0.0, 1.0));
}

//===----------------------------------------------------------------------===//
// I/O and diagnostics
//===----------------------------------------------------------------------===//

std::vector<Value> bDisp(Context &Ctx, Args A, size_t) {
  const Value &V = *A[0];
  if (V.isString())
    Ctx.print(V.stringValue() + "\n");
  else {
    std::string S = rt::displayValue(V, "");
    // Strip the " =" prefix displayValue adds.
    Ctx.print(S.substr(S.find('=') + 2));
  }
  return {};
}

/// Formats printf-style with MATLAB conventions: the format cycles over the
/// remaining arguments; matrices feed their elements one at a time.
std::string formatPrintf(const std::string &Fmt, Args A) {
  // Flatten arguments into a stream of scalars/strings.
  struct Item {
    bool IsString;
    double Num;
    std::string Str;
  };
  std::vector<Item> Items;
  for (const Value *V : A) {
    if (V->isString()) {
      Items.push_back({true, 0, V->stringValue()});
      continue;
    }
    for (size_t I = 0, E = V->numel(); I != E; ++I)
      Items.push_back({false, V->re(I), {}});
  }

  std::string Out;
  size_t Next = 0;
  do {
    for (size_t I = 0; I != Fmt.size(); ++I) {
      char Ch = Fmt[I];
      if (Ch == '\\' && I + 1 < Fmt.size()) {
        char Esc = Fmt[++I];
        Out += Esc == 'n' ? '\n' : Esc == 't' ? '\t' : Esc;
        continue;
      }
      if (Ch != '%') {
        Out += Ch;
        continue;
      }
      if (I + 1 < Fmt.size() && Fmt[I + 1] == '%') {
        Out += '%';
        ++I;
        continue;
      }
      // Scan the conversion spec.
      size_t SpecEnd = I + 1;
      while (SpecEnd < Fmt.size() &&
             std::string("0123456789.+- #").find(Fmt[SpecEnd]) !=
                 std::string::npos)
        ++SpecEnd;
      if (SpecEnd >= Fmt.size())
        throw MatlabError("invalid format string");
      char Conv = Fmt[SpecEnd];
      std::string Spec = Fmt.substr(I, SpecEnd - I + 1);
      I = SpecEnd;
      if (Next >= Items.size()) {
        // Not enough arguments: MATLAB stops at the last complete pass.
        return Out;
      }
      const Item &It = Items[Next++];
      if (Conv == 's') {
        Out += format(Spec.c_str(), It.IsString ? It.Str.c_str() : "");
      } else if (Conv == 'd' || Conv == 'i') {
        Spec.back() = 'd';
        Spec.insert(Spec.size() - 1, "ll");
        Out += format(Spec.c_str(), static_cast<long long>(It.Num));
      } else if (Conv == 'f' || Conv == 'g' || Conv == 'e' || Conv == 'E' ||
                 Conv == 'G') {
        Out += format(Spec.c_str(), It.Num);
      } else {
        throw MatlabError(format("unsupported conversion '%%%c'", Conv));
      }
    }
  } while (Next < Items.size() && Fmt.find('%') != std::string::npos);
  return Out;
}

std::vector<Value> bFprintf(Context &Ctx, Args A, size_t) {
  if (A.empty() || !A[0]->isString())
    throw MatlabError("fprintf requires a format string");
  Ctx.print(formatPrintf(A[0]->stringValue(), A.subspan(1)));
  return {};
}

std::vector<Value> bSprintf(Context &, Args A, size_t) {
  if (A.empty() || !A[0]->isString())
    throw MatlabError("sprintf requires a format string");
  return one(Value::str(formatPrintf(A[0]->stringValue(), A.subspan(1))));
}

std::vector<Value> bNum2str(Context &, Args A, size_t) {
  return one(Value::str(formatDouble(A[0]->scalarValue())));
}

std::vector<Value> bError(Context &, Args A, size_t) {
  std::string Msg = "error";
  if (!A.empty())
    Msg = A[0]->isString() ? A[0]->stringValue()
                           : formatDouble(A[0]->scalarValue());
  if (A.size() > 1)
    Msg = formatPrintf(Msg, A.subspan(1));
  throw MatlabError(Msg);
}

std::vector<Value> bWarning(Context &Ctx, Args A, size_t) {
  if (!A.empty() && A[0]->isString())
    Ctx.print("Warning: " + A[0]->stringValue() + "\n");
  return {};
}

std::vector<Value> bMod(Context &, Args A, size_t) {
  return one(elemwiseReal2(*A[0], *A[1], "mod", [](double X, double Y) {
    return evalScalarIntrinsic2(ScalarIntrinsic::Mod, X, Y);
  }));
}

std::vector<Value> bRem(Context &, Args A, size_t) {
  return one(elemwiseReal2(*A[0], *A[1], "rem", [](double X, double Y) {
    return evalScalarIntrinsic2(ScalarIntrinsic::Rem, X, Y);
  }));
}

std::vector<Value> bAtan2(Context &, Args A, size_t) {
  return one(elemwiseReal2(*A[0], *A[1], "atan2",
                           [](double X, double Y) { return std::atan2(X, Y); }));
}

//===----------------------------------------------------------------------===//
// Trigonometric / rounding maps
//===----------------------------------------------------------------------===//

#define MAJIC_MAP_COMPLEX(NAME, STDFN, ESCALATE)                               \
  std::vector<Value> NAME(Context &, Args A, size_t) {                         \
    return one(mapMath(                                                        \
        *A[0], [](double X) { return STDFN(X); },                              \
        [](Cplx X) { return STDFN(X); }, ESCALATE));                           \
  }

MAJIC_MAP_COMPLEX(bSin, std::sin, [](double) { return false; })
MAJIC_MAP_COMPLEX(bCos, std::cos, [](double) { return false; })
MAJIC_MAP_COMPLEX(bTan, std::tan, [](double) { return false; })
MAJIC_MAP_COMPLEX(bAsin, std::asin, [](double X) { return std::fabs(X) > 1; })
MAJIC_MAP_COMPLEX(bAcos, std::acos, [](double X) { return std::fabs(X) > 1; })
MAJIC_MAP_COMPLEX(bSinh, std::sinh, [](double) { return false; })
MAJIC_MAP_COMPLEX(bCosh, std::cosh, [](double) { return false; })
MAJIC_MAP_COMPLEX(bTanh, std::tanh, [](double) { return false; })
#undef MAJIC_MAP_COMPLEX

std::vector<Value> bAtan(Context &, Args A, size_t) {
  return one(mapReal(*A[0], "atan", [](double X) { return std::atan(X); }));
}

std::vector<Value> bLog2(Context &, Args A, size_t) {
  return one(mapMath(
      *A[0], [](double X) { return std::log2(X); },
      [](Cplx X) { return std::log(X) / std::log(2.0); },
      [](double X) { return X < 0; }));
}

std::vector<Value> bLog10(Context &, Args A, size_t) {
  return one(mapMath(
      *A[0], [](double X) { return std::log10(X); },
      [](Cplx X) { return std::log10(X); }, [](double X) { return X < 0; }));
}

std::vector<Value> bFloor(Context &, Args A, size_t) {
  return one(mapReal(*A[0], "floor", [](double X) { return std::floor(X); }));
}
std::vector<Value> bCeil(Context &, Args A, size_t) {
  return one(mapReal(*A[0], "ceil", [](double X) { return std::ceil(X); }));
}
std::vector<Value> bRound(Context &, Args A, size_t) {
  return one(mapReal(*A[0], "round", [](double X) { return std::round(X); }));
}
std::vector<Value> bFix(Context &, Args A, size_t) {
  return one(mapReal(*A[0], "fix", [](double X) { return std::trunc(X); }));
}
std::vector<Value> bSign(Context &, Args A, size_t) {
  return one(mapReal(*A[0], "sign", [](double X) {
    return X > 0 ? 1.0 : X < 0 ? -1.0 : 0.0;
  }));
}

} // namespace

//===----------------------------------------------------------------------===//
// Table construction
//===----------------------------------------------------------------------===//

BuiltinTable::BuiltinTable() {
  auto Add = [this](const char *Name, int MinA, int MaxA, int MaxO,
                    std::vector<Value> (*Impl)(Context &, Args, size_t),
                    ScalarIntrinsic Intr = ScalarIntrinsic::None,
                    bool Effects = false) {
    Defs.push_back({Name, MinA, MaxA, MaxO, Impl, Intr, Effects});
  };

  // Creators.
  Add("zeros", 0, 2, 1, bZeros);
  Add("ones", 0, 2, 1, bOnes);
  Add("eye", 0, 2, 1, bEye);
  Add("rand", 0, 2, 1, bRand, ScalarIntrinsic::None, /*Effects=*/true);
  Add("linspace", 2, 3, 1, bLinspace);

  // Shape queries.
  Add("size", 1, 2, 2, bSize);
  Add("length", 1, 1, 1, bLength);
  Add("numel", 1, 1, 1, bNumel);
  Add("isempty", 1, 1, 1, bIsempty);
  Add("isreal", 1, 1, 1, bIsreal);
  Add("isscalar", 1, 1, 1, bIsscalar);

  // Element-wise math. Where a ScalarIntrinsic exists, the code generator
  // can inline the call on scalar real arguments.
  Add("abs", 1, 1, 1, bAbs, ScalarIntrinsic::Abs);
  Add("sqrt", 1, 1, 1, bSqrt, ScalarIntrinsic::Sqrt);
  Add("exp", 1, 1, 1, bExp, ScalarIntrinsic::Exp);
  Add("log", 1, 1, 1, bLog, ScalarIntrinsic::Log);
  Add("real", 1, 1, 1, bReal);
  Add("imag", 1, 1, 1, bImag);
  Add("conj", 1, 1, 1, bConj);
  Add("angle", 1, 1, 1, bAngle);
  Add("mod", 2, 2, 1, bMod, ScalarIntrinsic::Mod);
  Add("rem", 2, 2, 1, bRem, ScalarIntrinsic::Rem);
  Add("atan2", 2, 2, 1, bAtan2, ScalarIntrinsic::Atan2);
  Add("sin", 1, 1, 1, bSin, ScalarIntrinsic::Sin);
  Add("cos", 1, 1, 1, bCos, ScalarIntrinsic::Cos);
  Add("tan", 1, 1, 1, bTan, ScalarIntrinsic::Tan);
  Add("asin", 1, 1, 1, bAsin, ScalarIntrinsic::Asin);
  Add("acos", 1, 1, 1, bAcos, ScalarIntrinsic::Acos);
  Add("atan", 1, 1, 1, bAtan, ScalarIntrinsic::Atan);
  Add("sinh", 1, 1, 1, bSinh, ScalarIntrinsic::Sinh);
  Add("cosh", 1, 1, 1, bCosh, ScalarIntrinsic::Cosh);
  Add("tanh", 1, 1, 1, bTanh, ScalarIntrinsic::Tanh);
  Add("log2", 1, 1, 1, bLog2, ScalarIntrinsic::Log2);
  Add("log10", 1, 1, 1, bLog10, ScalarIntrinsic::Log10);
  Add("floor", 1, 1, 1, bFloor, ScalarIntrinsic::Floor);
  Add("ceil", 1, 1, 1, bCeil, ScalarIntrinsic::Ceil);
  Add("round", 1, 1, 1, bRound, ScalarIntrinsic::Round);
  Add("fix", 1, 1, 1, bFix, ScalarIntrinsic::Fix);
  Add("sign", 1, 1, 1, bSign, ScalarIntrinsic::Sign);

  // Reductions and search.
  Add("sum", 1, 1, 1, bSum);
  Add("prod", 1, 1, 1, bProd);
  Add("mean", 1, 1, 1, bMean);
  Add("max", 1, 2, 2, bMax, ScalarIntrinsic::Max2);
  Add("min", 1, 2, 2, bMin, ScalarIntrinsic::Min2);
  Add("norm", 1, 2, 1, bNorm);
  Add("dot", 2, 2, 1, bDot);
  Add("find", 1, 1, 1, bFind);
  Add("any", 1, 1, 1, bAny);
  Add("all", 1, 1, 1, bAll);
  Add("sort", 1, 1, 2, bSort);
  Add("diag", 1, 1, 1, bDiag);
  Add("trace", 1, 1, 1, bTrace);

  // Linear algebra.
  Add("eig", 1, 1, 2, bEig);
  Add("chol", 1, 1, 1, bChol);
  Add("inv", 1, 1, 1, bInv);
  Add("det", 1, 1, 1, bDet);

  // Constants.
  Add("pi", 0, 0, 1, bPi);
  Add("Inf", 0, 0, 1, bInf);
  Add("inf", 0, 0, 1, bInf);
  Add("NaN", 0, 0, 1, bNan);
  Add("nan", 0, 0, 1, bNan);
  Add("eps", 0, 0, 1, bEps);
  Add("i", 0, 0, 1, bImagUnit);
  Add("j", 0, 0, 1, bImagUnit);

  // I/O and diagnostics.
  Add("disp", 1, 1, 0, bDisp, ScalarIntrinsic::None, true);
  Add("fprintf", 1, -1, 0, bFprintf, ScalarIntrinsic::None, true);
  Add("sprintf", 1, -1, 1, bSprintf);
  Add("num2str", 1, 1, 1, bNum2str);
  Add("error", 0, -1, 0, bError, ScalarIntrinsic::None, true);
  Add("warning", 0, -1, 0, bWarning, ScalarIntrinsic::None, true);

  std::sort(Defs.begin(), Defs.end(),
            [](const BuiltinDef &A, const BuiltinDef &B) {
              return A.Name < B.Name;
            });
}

const BuiltinTable &BuiltinTable::instance() {
  static BuiltinTable Table;
  return Table;
}

const BuiltinDef *BuiltinTable::lookup(const std::string &Name) const {
  auto It = std::lower_bound(Defs.begin(), Defs.end(), Name,
                             [](const BuiltinDef &D, const std::string &N) {
                               return D.Name < N;
                             });
  if (It == Defs.end() || It->Name != Name)
    return nullptr;
  return &*It;
}

std::vector<Value> BuiltinTable::call(const BuiltinDef &Def, Context &Ctx,
                                      Args ArgsIn, size_t NumOuts) {
  int N = static_cast<int>(ArgsIn.size());
  if (N < Def.MinArgs || (Def.MaxArgs >= 0 && N > Def.MaxArgs))
    throw MatlabError(format("wrong number of arguments to builtin '%s'",
                             Def.Name.c_str()));
  return Def.Impl(Ctx, ArgsIn, NumOuts);
}
