//===- runtime/ValueSerialize.cpp - Workspace snapshots --------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ValueSerialize.h"

#include "support/Hashing.h"

#include <limits>

using namespace majic;
using namespace majic::ser;

namespace {

// arrayLen sanity floors: the smallest possible encoding of one element.
constexpr size_t kSourceBytes = 4 + 4;  // two length-prefixed strings
constexpr size_t kVarBytes = 4 + 1 + 5; // name prefix + class + string value

/// Workspace variable names come from the parser, so anything else in a
/// snapshot is corruption that slipped past the checksum.
bool validIdentifier(const std::string &S) {
  if (S.empty())
    return false;
  auto Word = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
  };
  if (!Word(S[0]))
    return false;
  for (char C : S.substr(1))
    if (!Word(C) && !(C >= '0' && C <= '9'))
      return false;
  return true;
}

} // namespace

void majic::ser::writeValue(ByteWriter &W, const Value &V) {
  W.u8(static_cast<uint8_t>(V.mclass()));
  if (V.isString()) {
    // Shape is derivable (1 x len, or 0 x 0 when empty), so only the text
    // is encoded; Value::str() reconstructs the rest.
    W.str(V.stringValue());
    return;
  }
  W.u64(V.rows());
  W.u64(V.cols());
  W.u8(V.isComplex() ? 1 : 0);
  size_t N = V.numel();
  for (size_t I = 0; I != N; ++I)
    W.f64(V.re(I));
  if (V.isComplex())
    for (size_t I = 0; I != N; ++I)
      W.f64(V.im(I));
}

Value majic::ser::readValue(ByteReader &R) {
  uint8_t Raw = R.u8();
  if (Raw > static_cast<uint8_t>(MClass::String))
    throw SerializeError("invalid value class");
  MClass Cls = static_cast<MClass>(Raw);
  if (Cls == MClass::String)
    return Value::str(R.str());

  uint64_t Rows = R.u64();
  uint64_t Cols = R.u64();
  if (Rows && Cols > std::numeric_limits<uint64_t>::max() / Rows)
    throw SerializeError("value shape overflows");
  uint64_t N = Rows * Cols;
  uint8_t Flags = R.u8();
  if (Flags & ~uint8_t(1))
    throw SerializeError("invalid value flags");
  bool HasImag = Flags & 1;
  // The imaginary plane exists exactly when the class is Complex; a
  // CRC-passing snapshot can only disagree through a writer bug, but the
  // decoder still refuses to construct the impossible Value.
  if (HasImag != (Cls == MClass::Complex))
    throw SerializeError("imaginary flag does not match value class");
  uint64_t Planes = HasImag ? 2 : 1;
  if (N > std::numeric_limits<uint64_t>::max() / 8 / Planes ||
      N * 8 * Planes > R.remaining())
    throw SerializeError("value data exceeds remaining bytes");

  Value V = Value::zeros(static_cast<size_t>(Rows),
                         static_cast<size_t>(Cols), Cls);
  size_t Count = static_cast<size_t>(N);
  double *Re = V.reData();
  for (size_t I = 0; I != Count; ++I)
    Re[I] = R.f64();
  if (HasImag) {
    double *Im = V.imData();
    for (size_t I = 0; I != Count; ++I)
      Im[I] = R.f64();
  }
  return V;
}

std::string majic::ser::encodeWorkspaceImage(const WorkspaceImage &W) {
  ByteWriter P;
  P.u32(static_cast<uint32_t>(W.Sources.size()));
  for (const WorkspaceImage::SourceDef &S : W.Sources) {
    P.str(S.Name);
    P.str(S.Text);
  }
  P.u32(static_cast<uint32_t>(W.Vars.size()));
  for (const WorkspaceImage::VarDef &Var : W.Vars) {
    P.str(Var.Name);
    writeValue(P, *Var.V);
  }
  std::string Payload = P.take();

  ByteWriter H;
  H.u32(kWorkspaceMagic);
  H.u32(kWorkspaceFormatVersion);
  H.u64(Payload.size());
  H.u32(hashing::crc32(Payload));
  std::string Out = H.take();
  Out += Payload;
  return Out;
}

WorkspaceImage majic::ser::decodeWorkspaceImage(const std::string &Bytes) {
  ByteReader R(Bytes);
  if (R.u32() != kWorkspaceMagic)
    throw SerializeError("bad workspace magic");
  uint32_t Version = R.u32();
  if (Version != kWorkspaceFormatVersion)
    throw WorkspaceSkew(Version);
  uint64_t PayloadSize = R.u64();
  uint32_t Crc = R.u32();
  if (PayloadSize != R.remaining())
    throw SerializeError("payload size disagrees with file size");
  if (hashing::crc32(static_cast<const void *>(
                         Bytes.data() + (Bytes.size() - R.remaining())),
                     R.remaining()) != Crc)
    throw SerializeError("checksum mismatch");

  WorkspaceImage W;
  uint32_t NSources = R.arrayLen(kSourceBytes);
  W.Sources.reserve(NSources);
  for (uint32_t I = 0; I != NSources; ++I) {
    WorkspaceImage::SourceDef S;
    S.Name = R.str();
    S.Text = R.str();
    W.Sources.push_back(std::move(S));
  }
  uint32_t NVars = R.arrayLen(kVarBytes);
  W.Vars.reserve(NVars);
  for (uint32_t I = 0; I != NVars; ++I) {
    WorkspaceImage::VarDef Var;
    Var.Name = R.str();
    if (!validIdentifier(Var.Name))
      throw SerializeError("workspace variable name is not an identifier");
    Var.V = std::make_shared<Value>(readValue(R));
    W.Vars.push_back(std::move(Var));
  }
  if (!R.atEnd())
    throw SerializeError("trailing bytes after workspace payload");
  return W;
}
