//===- runtime/Ops.cpp - Polymorphic MATLAB operations --------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Ops.h"

#include "runtime/Blas.h"
#include "runtime/LinAlg.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <complex>

using namespace majic;
using namespace majic::rt;

const char *rt::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::MatMul:
    return "*";
  case BinOp::ElemMul:
    return ".*";
  case BinOp::MatRDiv:
    return "/";
  case BinOp::ElemRDiv:
    return "./";
  case BinOp::MatLDiv:
    return "\\";
  case BinOp::ElemLDiv:
    return ".\\";
  case BinOp::MatPow:
    return "^";
  case BinOp::ElemPow:
    return ".^";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "~=";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  }
  majic_unreachable("invalid BinOp");
}

const char *rt::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "-";
  case UnOp::Plus:
    return "+";
  case UnOp::Not:
    return "~";
  case UnOp::CTranspose:
    return "'";
  case UnOp::Transpose:
    return ".'";
  }
  majic_unreachable("invalid UnOp");
}

const Value &rt::asNumericView(const Value &V, Value &Scratch) {
  if (!V.isString())
    return V;
  Scratch = asNumeric(V);
  return Scratch;
}

Value rt::asNumeric(const Value &V) {
  if (!V.isString())
    return V;
  const std::string &S = V.stringValue();
  Value Out = Value::zeros(S.empty() ? 0 : 1, S.size());
  for (size_t I = 0; I != S.size(); ++I)
    Out.reRef(I) = static_cast<double>(static_cast<unsigned char>(S[I]));
  return Out;
}

MClass rt::arithResultClass(const Value &A, const Value &B, bool Preserving) {
  if (A.isComplex() || B.isComplex())
    return MClass::Complex;
  auto IsIntLike = [](const Value &V) {
    return V.mclass() == MClass::Int || V.mclass() == MClass::Bool;
  };
  if (Preserving && IsIntLike(A) && IsIntLike(B))
    return MClass::Int;
  return MClass::Real;
}

//===----------------------------------------------------------------------===//
// Element-wise kernels
//===----------------------------------------------------------------------===//

namespace {

using Cplx = std::complex<double>;

/// Scalar power with MATLAB's complex escalation: negative base with a
/// non-integral exponent yields a complex result.
Cplx scalarPow(Cplx A, Cplx B, bool &IsComplex) {
  if (A.imag() == 0 && B.imag() == 0) {
    double Ar = A.real(), Br = B.real();
    if (Ar >= 0 || Br == std::floor(Br)) {
      IsComplex = false;
      return Cplx(std::pow(Ar, Br), 0.0);
    }
  }
  IsComplex = true;
  return std::pow(A, B);
}

struct Shape {
  size_t R, C;
};

/// Broadcast result shape for element-wise ops: equal shapes, or one operand
/// scalar. Throws on mismatch.
Shape broadcastShape(const Value &A, const Value &B, const char *OpName) {
  if (A.isScalar())
    return {B.rows(), B.cols()};
  if (B.isScalar())
    return {A.rows(), A.cols()};
  if (A.rows() == B.rows() && A.cols() == B.cols())
    return {A.rows(), A.cols()};
  throw MatlabError(format(
      "matrix dimensions must agree for operator '%s' (%zux%zu vs %zux%zu)",
      OpName, A.rows(), A.cols(), B.rows(), B.cols()));
}

inline Cplx elemAt(const Value &V, size_t I, bool Scalar) {
  size_t Idx = Scalar ? 0 : I;
  return Cplx(V.re(Idx), V.im(Idx));
}

/// Minimum elements before an element-wise loop goes parallel. These loops
/// are memory-bound, so below ~a few L2's worth of data the fork/join
/// handshake costs more than the loop.
constexpr size_t ElemGrain = 32768;

/// Runs an element-wise kernel over [0, N) in parallel with the scalar
/// operand hoisted: one of three specializations of \p Fn(I, X, Y) is
/// chosen once, outside the loop, instead of re-deriving `SA ? 0 : I` per
/// element. \p Fn receives the element index and both real operand values.
template <typename Fn>
void forEachRealPair(size_t N, const double *PA, bool SA, const double *PB,
                     bool SB, Fn F) {
  if (SA && !SB) {
    double X = PA[0];
    par::parallelFor(N, ElemGrain, [&](size_t I0, size_t I1) {
      for (size_t I = I0; I != I1; ++I)
        F(I, X, PB[I]);
    });
  } else if (SB && !SA) {
    double Y = PB[0];
    par::parallelFor(N, ElemGrain, [&](size_t I0, size_t I1) {
      for (size_t I = I0; I != I1; ++I)
        F(I, PA[I], Y);
    });
  } else { // same shape (or both scalar)
    par::parallelFor(N, ElemGrain, [&](size_t I0, size_t I1) {
      for (size_t I = I0; I != I1; ++I)
        F(I, PA[I], PB[I]);
    });
  }
}

/// Generic element-wise arithmetic: applies \p RealFn on doubles when both
/// operands are real, \p CplxFn otherwise.
template <typename RealFn, typename CplxFn>
Value elemArith(const Value &AIn, const Value &BIn, const char *Name,
                bool IntPreserving, RealFn RF, CplxFn CF) {
  Value ScratchA, ScratchB;
  const Value &A = asNumericView(AIn, ScratchA);
  const Value &B = asNumericView(BIn, ScratchB);
  Shape S = broadcastShape(A, B, Name);
  MClass Cls = arithResultClass(A, B, IntPreserving);
  Value Out = Value::zeros(S.R, S.C, Cls);
  size_t N = Out.numel();
  bool SA = A.isScalar(), SB = B.isScalar();
  if (Cls != MClass::Complex) {
    double *PO = Out.reData();
    forEachRealPair(N, A.reData(), SA, B.reData(), SB,
                    [&RF, PO](size_t I, double X, double Y) { PO[I] = RF(X, Y); });
    return Out;
  }
  for (size_t I = 0; I != N; ++I) {
    Cplx R = CF(elemAt(A, I, SA), elemAt(B, I, SB));
    Out.reRef(I) = R.real();
    Out.imRef(I) = R.imag();
  }
  return Out;
}

/// Element-wise comparison; Lt/Le/Gt/Ge disregard imaginary parts, Eq/Ne
/// compare full complex values.
Value elemCompare(BinOp Op, const Value &AIn, const Value &BIn) {
  Value ScratchA, ScratchB;
  const Value &A = asNumericView(AIn, ScratchA);
  const Value &B = asNumericView(BIn, ScratchB);
  Shape S = broadcastShape(A, B, binOpName(Op));
  Value Out = Value::zeros(S.R, S.C, MClass::Bool);
  size_t N = Out.numel();
  bool SA = A.isScalar(), SB = B.isScalar();
  // Imaginary parts only participate in Eq/Ne, and only when present.
  bool NeedIm =
      (Op == BinOp::Eq || Op == BinOp::Ne) && (A.isComplex() || B.isComplex());
  if (NeedIm) {
    for (size_t I = 0; I != N; ++I) {
      double Ar = A.re(SA ? 0 : I), Br = B.re(SB ? 0 : I);
      bool Same = Ar == Br && A.im(SA ? 0 : I) == B.im(SB ? 0 : I);
      Out.reRef(I) = (Op == BinOp::Eq ? Same : !Same) ? 1.0 : 0.0;
    }
    return Out;
  }
  // Real fast path: hoist the operator dispatch out of the loop and run the
  // raw-pointer compare in parallel.
  double *PO = Out.reData();
  auto Run = [&](auto Cmp) {
    forEachRealPair(N, A.reData(), SA, B.reData(), SB,
                    [&Cmp, PO](size_t I, double X, double Y) {
                      PO[I] = Cmp(X, Y) ? 1.0 : 0.0;
                    });
  };
  switch (Op) {
  case BinOp::Lt:
    Run([](double X, double Y) { return X < Y; });
    break;
  case BinOp::Le:
    Run([](double X, double Y) { return X <= Y; });
    break;
  case BinOp::Gt:
    Run([](double X, double Y) { return X > Y; });
    break;
  case BinOp::Ge:
    Run([](double X, double Y) { return X >= Y; });
    break;
  case BinOp::Eq:
    Run([](double X, double Y) { return X == Y; });
    break;
  case BinOp::Ne:
    Run([](double X, double Y) { return X != Y; });
    break;
  default:
    majic_unreachable("not a comparison");
  }
  return Out;
}

Value elemLogical(BinOp Op, const Value &AIn, const Value &BIn) {
  Value ScratchA, ScratchB;
  const Value &A = asNumericView(AIn, ScratchA);
  const Value &B = asNumericView(BIn, ScratchB);
  if (A.isComplex() || B.isComplex())
    throw MatlabError("operands to & and | must be real");
  Shape S = broadcastShape(A, B, binOpName(Op));
  Value Out = Value::zeros(S.R, S.C, MClass::Bool);
  size_t N = Out.numel();
  bool SA = A.isScalar(), SB = B.isScalar();
  double *PO = Out.reData();
  bool IsAnd = Op == BinOp::And;
  forEachRealPair(N, A.reData(), SA, B.reData(), SB,
                  [IsAnd, PO](size_t I, double X, double Y) {
                    bool Ab = X != 0.0, Bb = Y != 0.0;
                    PO[I] = (IsAnd ? (Ab && Bb) : (Ab || Bb)) ? 1.0 : 0.0;
                  });
  return Out;
}

Value matMul(const Value &AIn, const Value &BIn) {
  Value ScratchA, ScratchB;
  const Value &A = asNumericView(AIn, ScratchA);
  const Value &B = asNumericView(BIn, ScratchB);
  if (A.isScalar() || B.isScalar())
    return elemArith(
        A, B, "*", /*IntPreserving=*/true,
        [](double X, double Y) { return X * Y; },
        [](Cplx X, Cplx Y) { return X * Y; });
  if (A.cols() != B.rows())
    throw MatlabError(format("inner matrix dimensions must agree for '*' "
                             "(%zux%zu times %zux%zu)",
                             A.rows(), A.cols(), B.rows(), B.cols()));
  size_t M = A.rows(), K = A.cols(), N = B.cols();
  if (!A.isComplex() && !B.isComplex()) {
    Value Out = Value::zeros(M, N, arithResultClass(A, B, true));
    blas::dgemm(M, N, K, 1.0, A.reData(), B.reData(), 0.0, Out.reData());
    return Out;
  }
  // Complex product over split planes; a real operand passes a null
  // imaginary plane instead of materializing a zero one, and zgemm reduces
  // the product to the plane combinations that actually exist.
  Value Out = Value::zeros(M, N, MClass::Complex);
  blas::zgemm(M, N, K, A.reData(), A.isComplex() ? A.imData() : nullptr,
              B.reData(), B.isComplex() ? B.imData() : nullptr, Out.reData(),
              Out.imData());
  return Out;
}

/// Element-wise power; escalates to a complex result when any element pair
/// is a negative real base with a non-integral exponent.
Value elemPow(const Value &AIn, const Value &BIn) {
  Value ScratchA, ScratchB;
  const Value &A = asNumericView(AIn, ScratchA);
  const Value &B = asNumericView(BIn, ScratchB);
  Shape S = broadcastShape(A, B, ".^");
  bool SA = A.isScalar(), SB = B.isScalar();
  size_t N = S.R * S.C;
  bool NeedComplex = A.isComplex() || B.isComplex();
  if (!NeedComplex) {
    for (size_t I = 0; I != N && !NeedComplex; ++I) {
      double X = A.re(SA ? 0 : I), Y = B.re(SB ? 0 : I);
      NeedComplex = X < 0 && Y != std::floor(Y);
    }
  }
  Value Out =
      Value::zeros(S.R, S.C, NeedComplex ? MClass::Complex : MClass::Real);
  for (size_t I = 0; I != N; ++I) {
    bool C;
    Cplx R = scalarPow(elemAt(A, I, SA), elemAt(B, I, SB), C);
    Out.reRef(I) = R.real();
    if (NeedComplex)
      Out.imRef(I) = R.imag();
  }
  return Out;
}

Value matPow(const Value &A, const Value &B) {
  if (A.isScalar() && B.isScalar())
    return elemPow(A, B);
  if (B.isScalar()) {
    double E = B.scalarValue();
    if (E != std::floor(E) || E < 0)
      throw MatlabError("matrix power requires a non-negative integer "
                        "exponent in this subset");
    if (A.rows() != A.cols())
      throw MatlabError("matrix power requires a square matrix");
    // Exponentiation by squaring over matMul.
    Value Result = Value::zeros(A.rows(), A.cols());
    for (size_t I = 0; I != A.rows(); ++I)
      Result.reRef(I * A.rows() + I) = 1.0;
    Result.setClass(MClass::Int);
    Value Base = A;
    auto N = static_cast<unsigned long long>(E);
    while (N) {
      if (N & 1)
        Result = matMul(Result, Base);
      N >>= 1;
      if (N)
        Base = matMul(Base, Base);
    }
    return Result;
  }
  throw MatlabError("unsupported operands for '^'");
}

Value matLDiv(const Value &A, const Value &B) {
  if (A.isScalar())
    return elemArith(
        A, B, "\\", /*IntPreserving=*/false,
        [](double X, double Y) { return Y / X; },
        [](Cplx X, Cplx Y) { return Y / X; });
  if (A.isComplex() || B.isComplex())
    throw MatlabError("complex linear solves are not supported");
  if (A.rows() != A.cols())
    throw MatlabError("mldivide requires a square system in this subset");
  if (A.rows() != B.rows())
    throw MatlabError("matrix dimensions must agree for '\\'");
  return linalg::luSolve(A, B);
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

Value rt::binary(BinOp Op, const Value &A, const Value &B) {
  switch (Op) {
  case BinOp::Add:
    return elemArith(
        A, B, "+", true, [](double X, double Y) { return X + Y; },
        [](Cplx X, Cplx Y) { return X + Y; });
  case BinOp::Sub:
    return elemArith(
        A, B, "-", true, [](double X, double Y) { return X - Y; },
        [](Cplx X, Cplx Y) { return X - Y; });
  case BinOp::ElemMul:
    return elemArith(
        A, B, ".*", true, [](double X, double Y) { return X * Y; },
        [](Cplx X, Cplx Y) { return X * Y; });
  case BinOp::ElemRDiv:
    return elemArith(
        A, B, "./", false, [](double X, double Y) { return X / Y; },
        [](Cplx X, Cplx Y) { return X / Y; });
  case BinOp::ElemLDiv:
    return elemArith(
        A, B, ".\\", false, [](double X, double Y) { return Y / X; },
        [](Cplx X, Cplx Y) { return Y / X; });
  case BinOp::ElemPow:
    return elemPow(A, B);
  case BinOp::MatMul:
    return matMul(A, B);
  case BinOp::MatPow:
    return matPow(A, B);
  case BinOp::MatRDiv:
    if (B.isScalar())
      return elemArith(
          A, B, "/", false, [](double X, double Y) { return X / Y; },
          [](Cplx X, Cplx Y) { return X / Y; });
    // A/B == (B' \ A')'.
    return unary(UnOp::CTranspose,
                 matLDiv(unary(UnOp::CTranspose, B), unary(UnOp::CTranspose, A)));
  case BinOp::MatLDiv:
    return matLDiv(A, B);
  case BinOp::Lt:
  case BinOp::Le:
  case BinOp::Gt:
  case BinOp::Ge:
  case BinOp::Eq:
  case BinOp::Ne:
    return elemCompare(Op, A, B);
  case BinOp::And:
  case BinOp::Or:
    return elemLogical(Op, A, B);
  }
  majic_unreachable("invalid BinOp");
}

Value rt::unary(UnOp Op, const Value &VIn) {
  Value Scratch;
  const Value &V = asNumericView(VIn, Scratch);
  switch (Op) {
  case UnOp::Plus:
    return V;
  case UnOp::Neg: {
    Value Out = V;
    if (Out.mclass() == MClass::Bool)
      Out.setClass(MClass::Int);
    for (size_t I = 0, E = Out.numel(); I != E; ++I) {
      Out.reRef(I) = -Out.re(I);
      if (Out.isComplex())
        Out.imRef(I) = -Out.im(I);
    }
    return Out;
  }
  case UnOp::Not: {
    if (V.isComplex())
      throw MatlabError("operand to ~ must be real");
    Value Out = Value::zeros(V.rows(), V.cols(), MClass::Bool);
    for (size_t I = 0, E = V.numel(); I != E; ++I)
      Out.reRef(I) = V.re(I) == 0.0 ? 1.0 : 0.0;
    return Out;
  }
  case UnOp::CTranspose:
  case UnOp::Transpose: {
    bool Conj = Op == UnOp::CTranspose && V.isComplex();
    Value Out = Value::zeros(V.cols(), V.rows(),
                             V.isComplex() ? MClass::Complex : V.mclass());
    for (size_t C = 0; C != V.cols(); ++C) {
      for (size_t R = 0; R != V.rows(); ++R) {
        Out.reRef(R * V.cols() + C) = V.at(R, C);
        if (V.isComplex())
          Out.imRef(R * V.cols() + C) = Conj ? -V.atIm(R, C) : V.atIm(R, C);
      }
    }
    return Out;
  }
  }
  majic_unreachable("invalid UnOp");
}

Value rt::colon(const Value &A, const Value &B) {
  // Only the real part of the first element is used; indices are rounded
  // (this is the behavior Section 2.5's colon hint is built on).
  return Value::range(A.isEmpty() ? 0 : A.re(0), 1.0, B.isEmpty() ? 0 : B.re(0));
}

Value rt::colon(const Value &A, const Value &S, const Value &B) {
  return Value::range(A.isEmpty() ? 0 : A.re(0), S.isEmpty() ? 1 : S.re(0),
                      B.isEmpty() ? 0 : B.re(0));
}

Value rt::elemwiseReal2(const Value &AIn, const Value &BIn, const char *Name,
                        double (*Fn)(double, double)) {
  Value ScratchA, ScratchB;
  const Value &A = asNumericView(AIn, ScratchA);
  const Value &B = asNumericView(BIn, ScratchB);
  if (A.isComplex() || B.isComplex())
    throw MatlabError(format("%s requires real arguments", Name));
  Shape S = broadcastShape(A, B, Name);
  Value Out = Value::zeros(S.R, S.C);
  bool SA = A.isScalar(), SB = B.isScalar();
  for (size_t I = 0, E = Out.numel(); I != E; ++I)
    Out.reRef(I) = Fn(A.re(SA ? 0 : I), B.re(SB ? 0 : I));
  return Out;
}

//===----------------------------------------------------------------------===//
// Concatenation
//===----------------------------------------------------------------------===//

static MClass concatClass(std::span<const Value *const> Parts) {
  MClass Cls = MClass::Bool;
  for (const Value *P : Parts) {
    MClass C = P->isString() ? MClass::Real : P->mclass();
    if (C == MClass::Complex)
      return MClass::Complex;
    if (static_cast<int>(C) > static_cast<int>(Cls))
      Cls = C;
  }
  return Cls;
}

Value rt::horzcat(std::span<const Value *const> Parts) {
  // All-string concatenation produces a string.
  bool AllStrings = !Parts.empty();
  for (const Value *P : Parts)
    AllStrings &= P->isString();
  if (AllStrings) {
    std::string S;
    for (const Value *P : Parts)
      S += P->stringValue();
    return Value::str(std::move(S));
  }

  size_t Rows = 0, Cols = 0;
  std::vector<Value> Numeric;
  Numeric.reserve(Parts.size());
  for (const Value *P : Parts) {
    Numeric.push_back(asNumeric(*P));
    const Value &V = Numeric.back();
    if (V.isEmpty())
      continue;
    if (Rows == 0)
      Rows = V.rows();
    else if (V.rows() != Rows)
      throw MatlabError("horizontal concatenation requires equal row counts");
    Cols += V.cols();
  }
  Value Out = Value::zeros(Rows, Cols, concatClass(Parts));
  size_t ColBase = 0;
  for (const Value &V : Numeric) {
    if (V.isEmpty())
      continue;
    for (size_t C = 0; C != V.cols(); ++C) {
      for (size_t R = 0; R != Rows; ++R) {
        Out.reRef((ColBase + C) * Rows + R) = V.at(R, C);
        if (Out.isComplex())
          Out.imRef((ColBase + C) * Rows + R) = V.atIm(R, C);
      }
    }
    ColBase += V.cols();
  }
  return Out;
}

Value rt::vertcat(std::span<const Value *const> Parts) {
  size_t Rows = 0, Cols = 0;
  std::vector<Value> Numeric;
  Numeric.reserve(Parts.size());
  for (const Value *P : Parts) {
    Numeric.push_back(asNumeric(*P));
    const Value &V = Numeric.back();
    if (V.isEmpty())
      continue;
    if (Cols == 0)
      Cols = V.cols();
    else if (V.cols() != Cols)
      throw MatlabError("vertical concatenation requires equal column counts");
    Rows += V.rows();
  }
  Value Out = Value::zeros(Rows, Cols, concatClass(Parts));
  size_t RowBase = 0;
  for (const Value &V : Numeric) {
    if (V.isEmpty())
      continue;
    for (size_t C = 0; C != Cols; ++C) {
      for (size_t R = 0; R != V.rows(); ++R) {
        Out.reRef(C * Rows + RowBase + R) = V.at(R, C);
        if (Out.isComplex())
          Out.imRef(C * Rows + RowBase + R) = V.atIm(R, C);
      }
    }
    RowBase += V.rows();
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

size_t rt::checkSubscript(double X) {
  double R = std::round(X);
  if (std::abs(X - R) > 1e-8 || R < 1)
    throw MatlabError(
        format("subscript indices must be positive integers (got %g)", X));
  return static_cast<size_t>(R) - 1;
}

Indexer Indexer::fromValue(const Value &V, size_t DimLen) {
  Indexer I;
  if (V.mclass() == MClass::Bool) {
    if (V.numel() > DimLen)
      throw MatlabError("logical index is longer than the indexed dimension");
    for (size_t K = 0, E = V.numel(); K != E; ++K)
      if (V.re(K) != 0.0)
        I.Zero.push_back(K);
    return I;
  }
  Value Scratch;
  const Value &Num = asNumericView(V, Scratch);
  I.Zero.reserve(Num.numel());
  for (size_t K = 0, E = Num.numel(); K != E; ++K)
    I.Zero.push_back(checkSubscript(Num.re(K)));
  return I;
}

size_t Indexer::requiredLen(size_t DimLen) const {
  if (IsColon)
    return DimLen;
  size_t Max = 0;
  for (size_t X : Zero)
    Max = std::max(Max, X + 1);
  return Max;
}

static void checkInRange(const Indexer &I, size_t DimLen, const char *What) {
  if (I.isColon())
    return;
  for (size_t X : I.indices())
    if (X >= DimLen)
      throw MatlabError(format("index out of bounds: %s index %zu exceeds "
                               "dimension length %zu",
                               What, X + 1, DimLen));
}

Value rt::index1(const Value &AIn, const Indexer &I) {
  Value Scratch;
  const Value &A = asNumericView(AIn, Scratch);
  size_t N = A.numel();
  checkInRange(I, N, "linear");
  size_t Count = I.count(N);

  // Shape rule: A(:) is a column; indexing a vector preserves its
  // orientation; otherwise the result is a row.
  size_t OutR, OutC;
  if (I.isColon()) {
    OutR = Count;
    OutC = Count ? 1 : 0;
  } else if (A.isColVector() && !A.isScalar()) {
    OutR = Count;
    OutC = Count ? 1 : 0;
  } else {
    OutR = Count ? 1 : 0;
    OutC = Count;
  }
  Value Out =
      Value::zeros(OutR, OutC, A.isComplex() ? MClass::Complex : A.mclass());
  for (size_t K = 0; K != Count; ++K) {
    size_t Src = I.isColon() ? K : I.indices()[K];
    Out.reRef(K) = A.re(Src);
    if (A.isComplex())
      Out.imRef(K) = A.im(Src);
  }
  return Out;
}

Value rt::index2(const Value &AIn, const Indexer &R, const Indexer &C) {
  Value Scratch;
  const Value &A = asNumericView(AIn, Scratch);
  checkInRange(R, A.rows(), "row");
  checkInRange(C, A.cols(), "column");
  size_t NR = R.count(A.rows()), NC = C.count(A.cols());
  Value Out =
      Value::zeros(NR, NC, A.isComplex() ? MClass::Complex : A.mclass());
  for (size_t J = 0; J != NC; ++J) {
    size_t SrcC = C.isColon() ? J : C.indices()[J];
    for (size_t K = 0; K != NR; ++K) {
      size_t SrcR = R.isColon() ? K : R.indices()[K];
      Out.reRef(J * NR + K) = A.at(SrcR, SrcC);
      if (A.isComplex())
        Out.imRef(J * NR + K) = A.atIm(SrcR, SrcC);
    }
  }
  return Out;
}

/// Promotes A's storage/class so that elements of RHS can be stored into it.
static void promoteForAssign(Value &A, const Value &RHS) {
  if (RHS.isComplex() && !A.isComplex())
    A.makeComplex();
  if (!RHS.isComplex()) {
    auto Rank = [](MClass C) { return static_cast<int>(C); };
    if (!A.isComplex() && Rank(RHS.mclass()) > Rank(A.mclass()))
      A.setClass(RHS.mclass());
  }
}

void rt::indexAssign1(Value &A, const Indexer &I, const Value &RHSIn) {
  Value Scratch;
  const Value &RHS = asNumericView(RHSIn, Scratch);
  size_t Count = I.count(A.numel());
  if (!RHS.isScalar() && RHS.numel() != Count)
    throw MatlabError("in an assignment A(I) = B, the number of elements in "
                      "B and I must be the same");

  size_t Required = I.requiredLen(A.numel());
  if (Required > A.numel()) {
    // Scalars and empties grow into row vectors, like MATLAB.
    if (A.isEmpty() || A.isScalar() || A.isRowVector())
      A.growTo(1, Required);
    else if (A.isColVector())
      A.growTo(Required, 1);
    else
      throw MatlabError("in an assignment A(I) = B, a matrix A cannot be "
                        "resized through a linear index");
  }
  promoteForAssign(A, RHS);
  bool SR = RHS.isScalar();
  for (size_t K = 0; K != Count; ++K) {
    size_t Dst = I.isColon() ? K : I.indices()[K];
    A.reRef(Dst) = RHS.re(SR ? 0 : K);
    if (A.isComplex())
      A.imRef(Dst) = RHS.im(SR ? 0 : K);
  }
}

void rt::indexAssign2(Value &A, const Indexer &R, const Indexer &C,
                      const Value &RHSIn) {
  Value Scratch;
  const Value &RHS = asNumericView(RHSIn, Scratch);
  // Colon extents refer to the pre-growth dimensions.
  size_t NR = R.count(A.rows()), NC = C.count(A.cols());
  if (!RHS.isScalar() && RHS.numel() != NR * NC)
    throw MatlabError("subscripted assignment dimension mismatch");

  size_t ReqR = R.requiredLen(A.rows()), ReqC = C.requiredLen(A.cols());
  if (A.isEmpty() && (R.isColon() || C.isColon())) {
    // A(:,j) = v with empty A adopts the RHS extent for the colon dimension.
    if (R.isColon())
      NR = ReqR = RHS.isScalar() ? 1 : RHS.numel() / std::max<size_t>(NC, 1);
    if (C.isColon())
      NC = ReqC = RHS.isScalar() ? 1 : RHS.numel() / std::max<size_t>(NR, 1);
  }
  if (ReqR > A.rows() || ReqC > A.cols())
    A.growTo(ReqR, ReqC);
  promoteForAssign(A, RHS);

  bool SR = RHS.isScalar();
  size_t Rows = A.rows();
  for (size_t J = 0; J != NC; ++J) {
    size_t DstC = C.isColon() ? J : C.indices()[J];
    for (size_t K = 0; K != NR; ++K) {
      size_t DstR = R.isColon() ? K : R.indices()[K];
      size_t Dst = DstC * Rows + DstR;
      size_t Src = SR ? 0 : J * NR + K;
      A.reRef(Dst) = RHS.re(Src);
      if (A.isComplex())
        A.imRef(Dst) = RHS.im(Src);
    }
  }
}

//===----------------------------------------------------------------------===//
// Display
//===----------------------------------------------------------------------===//

std::string rt::displayValue(const Value &V, const std::string &Name) {
  std::string Out = Name + " =";
  if (V.isString())
    return Out + " '" + V.stringValue() + "'\n";
  if (V.isEmpty())
    return Out + " []\n";
  auto Elem = [&](size_t R, size_t C) {
    std::string S = formatDouble(V.at(R, C));
    if (V.isComplex()) {
      double Im = V.atIm(R, C);
      S += (Im < 0 ? " - " : " + ") + formatDouble(std::abs(Im)) + "i";
    }
    return S;
  };
  if (V.isScalar())
    return Out + " " + Elem(0, 0) + "\n";
  Out += "\n";
  for (size_t R = 0; R != V.rows(); ++R) {
    Out += "  ";
    for (size_t C = 0; C != V.cols(); ++C) {
      Out += " " + Elem(R, C);
    }
    Out += "\n";
  }
  return Out;
}
