//===- runtime/LinAlg.cpp - Dense linear algebra ---------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/LinAlg.h"

#include "runtime/Blas.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace majic;

namespace {

/// In-place LU factorization with partial pivoting over a copy of A.
/// Returns false when a pivot underflows (singular matrix).
/// Perm[i] records row swaps; NumSwaps counts them (for determinants).
bool luFactor(std::vector<double> &LU, size_t N, std::vector<size_t> &Perm,
              unsigned &NumSwaps) {
  Perm.resize(N);
  for (size_t I = 0; I != N; ++I)
    Perm[I] = I;
  NumSwaps = 0;

  for (size_t K = 0; K != N; ++K) {
    // Partial pivoting: find the largest magnitude in column K at/below K.
    size_t Pivot = K;
    double Best = std::fabs(LU[K * N + K]);
    for (size_t I = K + 1; I != N; ++I) {
      double Mag = std::fabs(LU[K * N + I]);
      if (Mag > Best) {
        Best = Mag;
        Pivot = I;
      }
    }
    if (Best < 1e-300)
      return false;
    if (Pivot != K) {
      for (size_t J = 0; J != N; ++J)
        std::swap(LU[J * N + K], LU[J * N + Pivot]);
      std::swap(Perm[K], Perm[Pivot]);
      ++NumSwaps;
    }
    double Diag = LU[K * N + K];
    // The multiplier column LU[K*N + K+1 .. K*N + N) is contiguous in
    // column-major storage.
    double *Mult = LU.data() + K * N;
    for (size_t I = K + 1; I != N; ++I)
      Mult[I] /= Diag;
    // Rank-1 update of the trailing block, one contiguous column at a time
    // (the seed iterated rows here, striding by N on every access). Each
    // element still receives the single update Mult[I] * LU[J*N+K], so the
    // factorization is unchanged; columns are independent, so the update
    // parallelizes without affecting results.
    size_t Rem = N - K - 1;
    if (Rem != 0)
      par::parallelFor(Rem, std::max<size_t>(1, 32768 / (Rem + 1)),
                       [&](size_t J0, size_t J1) {
                         for (size_t J = K + 1 + J0; J != K + 1 + J1; ++J) {
                           double Ujk = LU[J * N + K];
                           if (Ujk == 0.0)
                             continue;
                           blas::daxpy(Rem, -Ujk, Mult + K + 1,
                                       LU.data() + J * N + K + 1);
                         }
                       });
  }
  return true;
}

} // namespace

Value linalg::luSolve(const Value &A, const Value &B) {
  assert(A.rows() == A.cols() && A.rows() == B.rows() && "bad solve shape");
  size_t N = A.rows(), NRhs = B.cols();
  std::vector<double> LU(A.reData(), A.reData() + N * N);
  std::vector<size_t> Perm;
  unsigned NumSwaps;
  if (!luFactor(LU, N, Perm, NumSwaps))
    throw MatlabError("matrix is singular to working precision");

  Value X = Value::zeros(N, NRhs);
  const double *BD = B.reData();
  double *XD = X.reData();
  // Right-hand sides are independent (inv() solves N of them at once), so
  // each thread takes a contiguous block of columns; per-column arithmetic
  // is unchanged from the serial code.
  par::parallelFor(
      NRhs, std::max<size_t>(1, 32768 / (N * N + 1)),
      [&](size_t R0, size_t R1) {
        for (size_t R = R0; R != R1; ++R) {
          double *Col = XD + R * N;
          // Apply the row permutation to the right-hand side.
          for (size_t I = 0; I != N; ++I)
            Col[I] = BD[R * N + Perm[I]];
          // Forward substitution (L has unit diagonal).
          for (size_t I = 1; I != N; ++I) {
            double Sum = Col[I];
            for (size_t J = 0; J != I; ++J)
              Sum -= LU[J * N + I] * Col[J];
            Col[I] = Sum;
          }
          // Backward substitution.
          for (size_t IPlus = N; IPlus != 0; --IPlus) {
            size_t I = IPlus - 1;
            double Sum = Col[I];
            for (size_t J = I + 1; J != N; ++J)
              Sum -= LU[J * N + I] * Col[J];
            Col[I] = Sum / LU[I * N + I];
          }
        }
      });
  return X;
}

Value linalg::cholesky(const Value &A) {
  if (A.rows() != A.cols())
    throw MatlabError("chol requires a square matrix");
  size_t N = A.rows();
  Value R = Value::zeros(N, N);
  double *RD = R.reData();
  const double *AD = A.reData();
  // Column-major upper Cholesky: R(i,j) at RD[j*N+i], i <= j.
  for (size_t J = 0; J != N; ++J) {
    for (size_t I = 0; I <= J; ++I) {
      double Sum = AD[J * N + I];
      for (size_t K = 0; K != I; ++K)
        Sum -= RD[I * N + K] * RD[J * N + K];
      if (I == J) {
        if (Sum <= 0.0)
          throw MatlabError("matrix must be positive definite");
        RD[J * N + I] = std::sqrt(Sum);
      } else {
        RD[J * N + I] = Sum / RD[I * N + I];
      }
    }
  }
  return R;
}

Value linalg::symEig(const Value &A, Value *Vectors) {
  if (A.rows() != A.cols())
    throw MatlabError("eig requires a square matrix");
  size_t N = A.rows();
  // Verify (numerical) symmetry; the subset only supports symmetric eig.
  for (size_t I = 0; I != N; ++I)
    for (size_t J = I + 1; J != N; ++J)
      if (std::fabs(A.at(I, J) - A.at(J, I)) >
          1e-9 * (1.0 + std::fabs(A.at(I, J))))
        throw MatlabError("eig in this subset requires a symmetric matrix");

  std::vector<double> M(A.reData(), A.reData() + N * N);
  std::vector<double> V;
  if (Vectors) {
    V.assign(N * N, 0.0);
    for (size_t I = 0; I != N; ++I)
      V[I * N + I] = 1.0;
  }
  auto At = [&](size_t I, size_t J) -> double & { return M[J * N + I]; };

  // Cyclic Jacobi sweeps.
  for (unsigned Sweep = 0; Sweep != 64; ++Sweep) {
    double Off = 0;
    for (size_t I = 0; I != N; ++I)
      for (size_t J = I + 1; J != N; ++J)
        Off += At(I, J) * At(I, J);
    if (Off < 1e-24)
      break;
    for (size_t P = 0; P != N; ++P) {
      for (size_t Q = P + 1; Q != N; ++Q) {
        double Apq = At(P, Q);
        if (std::fabs(Apq) < 1e-300)
          continue;
        double Theta = (At(Q, Q) - At(P, P)) / (2.0 * Apq);
        double T = (Theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(Theta) + std::sqrt(Theta * Theta + 1.0));
        double C = 1.0 / std::sqrt(T * T + 1.0);
        double S = T * C;
        // Apply the rotation G(p,q,theta) on both sides.
        for (size_t K = 0; K != N; ++K) {
          double Akp = At(K, P), Akq = At(K, Q);
          At(K, P) = C * Akp - S * Akq;
          At(K, Q) = S * Akp + C * Akq;
        }
        for (size_t K = 0; K != N; ++K) {
          double Apk = At(P, K), Aqk = At(Q, K);
          At(P, K) = C * Apk - S * Aqk;
          At(Q, K) = S * Apk + C * Aqk;
        }
        if (Vectors) {
          for (size_t K = 0; K != N; ++K) {
            double Vkp = V[P * N + K], Vkq = V[Q * N + K];
            V[P * N + K] = C * Vkp - S * Vkq;
            V[Q * N + K] = S * Vkp + C * Vkq;
          }
        }
      }
    }
  }

  // Sort eigenvalues ascending, permuting vectors to match.
  std::vector<size_t> Order(N);
  for (size_t I = 0; I != N; ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(),
            [&](size_t X, size_t Y) { return At(X, X) < At(Y, Y); });

  Value Eig = Value::zeros(N, 1);
  for (size_t I = 0; I != N; ++I)
    Eig.reRef(I) = At(Order[I], Order[I]);
  if (Vectors) {
    *Vectors = Value::zeros(N, N);
    for (size_t I = 0; I != N; ++I)
      for (size_t K = 0; K != N; ++K)
        Vectors->reRef(I * N + K) = V[Order[I] * N + K];
  }
  return Eig;
}

Value linalg::inverse(const Value &A) {
  if (A.rows() != A.cols())
    throw MatlabError("inv requires a square matrix");
  size_t N = A.rows();
  Value Eye = Value::zeros(N, N);
  for (size_t I = 0; I != N; ++I)
    Eye.reRef(I * N + I) = 1.0;
  return luSolve(A, Eye);
}

double linalg::determinant(const Value &A) {
  if (A.rows() != A.cols())
    throw MatlabError("det requires a square matrix");
  size_t N = A.rows();
  std::vector<double> LU(A.reData(), A.reData() + N * N);
  std::vector<size_t> Perm;
  unsigned NumSwaps;
  if (!luFactor(LU, N, Perm, NumSwaps))
    return 0.0;
  double Det = NumSwaps % 2 ? -1.0 : 1.0;
  for (size_t I = 0; I != N; ++I)
    Det *= LU[I * N + I];
  return Det;
}
