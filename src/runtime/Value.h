//===- runtime/Value.h - The MATLAB value (mxArray equivalent) -*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic MATLAB value: a 2-D column-major matrix of doubles (optionally
/// with an imaginary part) or a string, tagged with a class. This plays the
/// role of the mxArray in the paper's generated code (Figure 3).
///
/// Resize-on-write: assigning past the end of an array grows it, and vectors
/// are "oversized" by ~10% (Section 2.6.1) so that repeated growth in a loop
/// does not reallocate every time. Oversizing is invisible to size()/numel().
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_RUNTIME_VALUE_H
#define MAJIC_RUNTIME_VALUE_H

#include "support/Error.h"
#include "support/ResourceGuard.h"

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace majic {

/// The dynamic class of a Value. Mirrors the intrinsic type lattice's
/// concrete elements (Section 2.2): bool < int < real < cplx, and string.
enum class MClass : uint8_t { Bool, Int, Real, Complex, String };

const char *mclassName(MClass C);

class Value;
using ValuePtr = std::shared_ptr<Value>;

/// Value element storage: accounted against the process-wide live-byte
/// limit (support/ResourceGuard.h), so a runaway workspace surfaces as a
/// recoverable out-of-memory MatlabError instead of an OOM kill.
using TrackedDoubles = std::vector<double, mem::TrackingAllocator<double>>;

/// A MATLAB value: an R x C column-major matrix of doubles (with optional
/// imaginary parts) or a string. Bool/Int values are stored as doubles, as
/// MATLAB itself does; the class tag records the most specific known class.
class Value {
public:
  /// Creates the empty 0x0 real matrix ([]).
  Value() = default;

  //===--------------------------------------------------------------------===
  // Factories
  //===--------------------------------------------------------------------===

  static Value scalar(double X) {
    Value V;
    V.reshapeUninit(1, 1, /*WithImag=*/false);
    V.ReData[0] = X;
    V.Class = MClass::Real;
    return V;
  }

  static Value intScalar(double X) {
    Value V = scalar(X);
    V.Class = MClass::Int;
    return V;
  }

  static Value boolScalar(bool X) {
    Value V = scalar(X ? 1.0 : 0.0);
    V.Class = MClass::Bool;
    return V;
  }

  static Value complexScalar(double Re, double Im) {
    Value V;
    V.reshapeUninit(1, 1, /*WithImag=*/true);
    V.ReData[0] = Re;
    V.ImData[0] = Im;
    V.Class = MClass::Complex;
    return V;
  }

  /// An R x C matrix of zeros with class \p C (no imaginary part unless
  /// \p C is Complex).
  static Value zeros(size_t R, size_t C, MClass Cls = MClass::Real);

  /// An R x C real-plane matrix whose elements are left UNINITIALIZED.
  /// For kernels that overwrite every element in one pass (the fused
  /// elementwise executor) the zero-fill of zeros() would be a second,
  /// wasted memory sweep. \p Cls must not be Complex.
  static Value uninit(size_t R, size_t C, MClass Cls = MClass::Real);

  static Value str(std::string S) {
    Value V;
    V.Class = MClass::String;
    V.Str = std::move(S);
    V.NumRows = V.Str.empty() ? 0 : 1;
    V.NumCols = V.Str.size();
    return V;
  }

  /// Builds a row vector [First : Step : Last]; empty when the range is.
  static Value range(double First, double Step, double Last);

  //===--------------------------------------------------------------------===
  // Shape and class queries
  //===--------------------------------------------------------------------===

  MClass mclass() const { return Class; }
  void setClass(MClass C) { Class = C; }

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t numel() const { return NumRows * NumCols; }
  bool isEmpty() const { return numel() == 0; }
  bool isScalar() const { return NumRows == 1 && NumCols == 1; }
  bool isVector() const { return NumRows == 1 || NumCols == 1; }
  bool isRowVector() const { return NumRows == 1 && NumCols >= 1; }
  bool isColVector() const { return NumCols == 1 && NumRows >= 1; }
  bool isString() const { return Class == MClass::String; }
  bool isComplex() const { return Class == MClass::Complex; }
  bool isNumeric() const { return Class != MClass::String; }

  /// True when every imaginary part is exactly zero (trivially true for
  /// non-complex values).
  bool allImagZero() const;

  //===--------------------------------------------------------------------===
  // Element access (0-based internally; MATLAB-level indexing lives in Ops)
  //===--------------------------------------------------------------------===

  double re(size_t Linear) const {
    assert(Linear < numel() && "element index out of range");
    return ReData[Linear];
  }
  double im(size_t Linear) const {
    assert(Linear < numel() && "element index out of range");
    return ImData.empty() ? 0.0 : ImData[Linear];
  }
  double &reRef(size_t Linear) {
    assert(Linear < numel() && "element index out of range");
    return ReData[Linear];
  }
  double &imRef(size_t Linear) {
    assert(!ImData.empty() && Linear < numel() && "no imaginary storage");
    return ImData[Linear];
  }

  double at(size_t R, size_t C) const { return ReData[C * NumRows + R]; }
  double atIm(size_t R, size_t C) const {
    return ImData.empty() ? 0.0 : ImData[C * NumRows + R];
  }

  /// Raw column-major storage, used by the register VM for unboxed access.
  double *reData() { return ReData.data(); }
  const double *reData() const { return ReData.data(); }
  double *imData() { return ImData.data(); }
  const double *imData() const { return ImData.data(); }

  const std::string &stringValue() const {
    assert(isString() && "not a string");
    return Str;
  }

  /// The scalar double value; throws MatlabError when not a numeric scalar.
  double scalarValue() const;

  /// Truthiness for if/while: true iff non-empty and all elements non-zero.
  /// Imaginary parts are disregarded, as MATLAB's conditions do (Section 2.5).
  bool isTrue() const;

  //===--------------------------------------------------------------------===
  // Mutation
  //===--------------------------------------------------------------------===

  /// Reallocates to R x C without preserving contents; fills with zeros.
  void resizeErase(size_t R, size_t C, bool WithImag);

  /// Grows to at least R x C, preserving existing elements and zero-filling
  /// new ones. MATLAB array-resizing semantics for out-of-range writes.
  /// Applies ~10% oversizing to growing vectors (Section 2.6.1).
  void growTo(size_t R, size_t C);

  /// Ensures imaginary storage exists (zero-filled), switching to Complex.
  void makeComplex();

  /// Drops the imaginary part if all zero, demoting Complex to Real.
  /// Returns true if a demotion happened.
  bool demoteComplexIfReal();

  /// Total elements of allocated (oversized) storage; tests use this to
  /// verify oversizing happens and that it is invisible to numel().
  size_t capacityElems() const { return ReData.capacity(); }

private:
  void reshapeUninit(size_t R, size_t C, bool WithImag);

  MClass Class = MClass::Real;
  size_t NumRows = 0;
  size_t NumCols = 0;
  TrackedDoubles ReData;
  TrackedDoubles ImData;
  std::string Str;
};

/// Copy-on-write helper: makes \p P uniquely owned (cloning if shared) and
/// returns a mutable reference. Implements MATLAB's call-by-value semantics
/// without eagerly copying read-only arguments (Section 2.6.1 notes MaJIC
/// avoids copying read-only formals; CoW gives the same effect).
Value &makeUnique(ValuePtr &P);

/// Convenience shared_ptr factories.
inline ValuePtr makeValue(Value V) { return std::make_shared<Value>(std::move(V)); }
inline ValuePtr makeScalar(double X) { return makeValue(Value::scalar(X)); }
inline ValuePtr makeBool(bool X) { return makeValue(Value::boolScalar(X)); }

} // namespace majic

#endif // MAJIC_RUNTIME_VALUE_H
