//===- runtime/BlasKernels.cpp - Blocked, threaded matrix kernels ----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The cache-blocked dgemm, the unrolled dgemv, and the split-plane zgemm.
// This TU is built with the host's full instruction set (-march=native when
// available, see src/runtime/CMakeLists.txt): FMA contraction is safe here
// because every consumer - interpreter, VM, builtins - reaches matrix
// products through these same entry points.
//
// dgemm follows the classic GotoBLAS/BLIS decomposition (compare the tiled
// kernels in the gigagrad related repo):
//
//   for Jc in steps of NC:                 // C column panel,  unit of
//     for Pc in steps of KC:               //   thread distribution
//       pack B[Pc:Pc+KC, Jc:Jc+NC]         // L2/L3-resident, NR-col slivers
//       for Ic in steps of MC:
//         pack A[Ic:Ic+MC, Pc:Pc+KC]       // L2-resident, MR-row slivers
//         for each MRxNR tile: microkernel // registers
//
// The microkernel keeps an MRxNR accumulator block in vector registers
// (GCC vector extensions, so the same source compiles to AVX-512, AVX, or
// SSE2 code) and both packing routines zero-pad partial slivers, so edge
// tiles run the full-speed kernel and the writeback just clips.
//
// Determinism: the parallel loop distributes fixed-width NC column panels;
// each output element is computed by exactly one panel task whose
// arithmetic does not depend on how panels are assigned to threads, so
// results are bit-identical for every ComputeThreads value.
//
//===----------------------------------------------------------------------===//

#include "runtime/Blas.h"

#include "support/Error.h"
#include "support/Parallel.h"
#include "support/ResourceGuard.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace majic;

namespace {

#if defined(__AVX512F__)
constexpr size_t VW = 8;
#elif defined(__AVX__)
constexpr size_t VW = 4;
#else
constexpr size_t VW = 2; // baseline x86-64 SSE2 / generic 128-bit
#endif
typedef double Vec __attribute__((vector_size(VW * sizeof(double))));

constexpr size_t MR = 2 * VW; // microtile rows: two vector registers
constexpr size_t NR = 6;      // microtile columns

/// Products below this M*N*K volume stay on the seed's naive kernel: the
/// blocked path's packing overhead dominates, and keeping the seed
/// arithmetic for small operands keeps golden-test output byte-identical.
constexpr size_t SmallProduct = 32768;

size_t envBlockSize(const char *Name) {
  const char *E = std::getenv(Name);
  if (!E)
    return 0;
  long V = std::strtol(E, nullptr, 10);
  return V > 0 ? static_cast<size_t>(V) : 0;
}

size_t roundDownTo(size_t V, size_t Unit) {
  return std::max(Unit, V - V % Unit);
}

/// Packs the Mc x Kc block of A (leading dimension Lda) into MR-row
/// slivers, column by column, zero-padding the last sliver to MR rows.
void packA(size_t Mc, size_t Kc, const double *A, size_t Lda, double *Buf) {
  for (size_t I0 = 0; I0 < Mc; I0 += MR) {
    size_t Mr = std::min(MR, Mc - I0);
    for (size_t P = 0; P != Kc; ++P) {
      const double *Col = A + P * Lda + I0;
      size_t I = 0;
      for (; I != Mr; ++I)
        *Buf++ = Col[I];
      for (; I != MR; ++I)
        *Buf++ = 0.0;
    }
  }
}

/// Packs the Kc x Nc block of B (leading dimension Ldb) into NR-column
/// slivers, row by row, zero-padding the last sliver to NR columns.
void packB(size_t Kc, size_t Nc, const double *B, size_t Ldb, double *Buf) {
  for (size_t J0 = 0; J0 < Nc; J0 += NR) {
    size_t Nr = std::min(NR, Nc - J0);
    for (size_t P = 0; P != Kc; ++P) {
      size_t J = 0;
      for (; J != Nr; ++J)
        *Buf++ = B[(J0 + J) * Ldb + P];
      for (; J != NR; ++J)
        *Buf++ = 0.0;
    }
  }
}

/// MRxNR microkernel: AB = sum over Kc of A-sliver column x B-sliver row.
/// A and B point at packed slivers; AB is a dense MRxNR column-major tile.
inline void micro(size_t Kc, const double *__restrict A,
                  const double *__restrict B, double *__restrict AB) {
  Vec Acc[2][NR];
  for (size_t J = 0; J != NR; ++J) {
    Acc[0][J] = Vec{};
    Acc[1][J] = Vec{};
  }
  for (size_t P = 0; P != Kc; ++P) {
    Vec A0, A1;
    std::memcpy(&A0, A + P * MR, sizeof(Vec));
    std::memcpy(&A1, A + P * MR + VW, sizeof(Vec));
    const double *b = B + P * NR;
    for (size_t J = 0; J != NR; ++J) {
      Vec Bj = Vec{} + b[J]; // broadcast
      Acc[0][J] += A0 * Bj;
      Acc[1][J] += A1 * Bj;
    }
  }
  for (size_t J = 0; J != NR; ++J) {
    std::memcpy(AB + J * MR, &Acc[0][J], sizeof(Vec));
    std::memcpy(AB + J * MR + VW, &Acc[1][J], sizeof(Vec));
  }
}

/// One NC-wide column panel of the blocked product: C[:, Jc:Jc+Nc].
/// ABuf/BBuf are caller-provided packing buffers (reused across panels).
void gemmPanel(size_t M, size_t K, double Alpha, const double *A,
               const double *B, double Beta, double *C, size_t LdC,
               size_t Nc, const blas::GemmBlocking &BK, double *ABuf,
               double *BBuf) {
  alignas(64) double AB[MR * NR];
  for (size_t Pc = 0; Pc < K; Pc += BK.KC) {
    size_t Kc = std::min(BK.KC, K - Pc);
    // The first K-block applies Beta to C; later blocks accumulate.
    bool First = Pc == 0;
    packB(Kc, Nc, B + Pc, K, BBuf);
    for (size_t Ic = 0; Ic < M; Ic += BK.MC) {
      size_t Mc = std::min(BK.MC, M - Ic);
      packA(Mc, Kc, A + Pc * M + Ic, M, ABuf);
      for (size_t Jr = 0; Jr < Nc; Jr += NR) {
        size_t Nr = std::min(NR, Nc - Jr);
        for (size_t Ir = 0; Ir < Mc; Ir += MR) {
          size_t Mr = std::min(MR, Mc - Ir);
          micro(Kc, ABuf + (Ir / MR) * (MR * Kc), BBuf + (Jr / NR) * (NR * Kc),
                AB);
          double *CTile = C + Jr * LdC + Ic + Ir;
          for (size_t J = 0; J != Nr; ++J)
            for (size_t I = 0; I != Mr; ++I) {
              double V = Alpha * AB[J * MR + I];
              double *P = CTile + J * LdC + I;
              if (First)
                *P = (Beta == 0.0 ? 0.0 : Beta * *P) + V;
              else
                *P += V;
            }
        }
      }
    }
  }
}

/// dgemv over the row range [R0, R1): four-column unrolled, column-major
/// friendly. Per-element arithmetic depends only on the row index, so the
/// threaded driver below is bit-identical for any chunking.
void gemvRows(size_t M, size_t N, double Alpha, const double *A,
              const double *X, double Beta, double *Y, size_t R0, size_t R1) {
  if (Beta == 0.0) {
    for (size_t I = R0; I != R1; ++I)
      Y[I] = 0.0;
  } else if (Beta != 1.0) {
    for (size_t I = R0; I != R1; ++I)
      Y[I] *= Beta;
  }
  size_t J = 0;
  for (; J + 4 <= N; J += 4) {
    double S0 = Alpha * X[J], S1 = Alpha * X[J + 1];
    double S2 = Alpha * X[J + 2], S3 = Alpha * X[J + 3];
    const double *C0 = A + J * M, *C1 = C0 + M, *C2 = C1 + M, *C3 = C2 + M;
    for (size_t I = R0; I != R1; ++I)
      Y[I] += S0 * C0[I] + S1 * C1[I] + S2 * C2[I] + S3 * C3[I];
  }
  for (; J != N; ++J) {
    double S = Alpha * X[J];
    const double *Col = A + J * M;
    for (size_t I = R0; I != R1; ++I)
      Y[I] += S * Col[I];
  }
}

void betaScaleColumns(size_t M, size_t N, double Beta, double *C) {
  if (Beta == 1.0)
    return;
  if (Beta == 0.0) {
    std::memset(C, 0, M * N * sizeof(double));
    return;
  }
  blas::dscal(M * N, Beta, C);
}

} // namespace

const blas::GemmBlocking &blas::gemmBlocking() {
  static GemmBlocking BK = [] {
    long L1 = -1, L2 = -1;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
    L1 = sysconf(_SC_LEVEL1_DCACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
    L2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
    if (L1 <= 0)
      L1 = 32 * 1024;
    if (L2 <= 0)
      L2 = 1024 * 1024;
    // KC: one packed MRxKC A sliver should fill most of L1 while its
    // NR-wide B sliver streams (32 KiB L1 with MR = 16 gives KC = 256).
    size_t KC = static_cast<size_t>(L1) / (MR * sizeof(double));
    KC = std::clamp(roundDownTo(KC, 8), size_t(64), size_t(512));
    // MC: the packed MCxKC A block should occupy about half of L2.
    size_t MC = static_cast<size_t>(L2) / 2 / (KC * sizeof(double));
    MC = std::clamp(roundDownTo(MC, MR), MR, size_t(1024));
    // NC: width of the column panels distributed across threads. Fixed
    // rather than cache-derived - panel boundaries define the threaded
    // kernel's work units, and a modest width gives enough panels to
    // balance 4+ threads at common sizes (512 cols = 5 panels).
    size_t NC = 120;
    if (size_t V = envBlockSize("MAJIC_GEMM_KC"))
      KC = roundDownTo(V, 8);
    if (size_t V = envBlockSize("MAJIC_GEMM_MC"))
      MC = roundDownTo(V, MR);
    if (size_t V = envBlockSize("MAJIC_GEMM_NC"))
      NC = roundDownTo(V, NR);
    return GemmBlocking{MC, KC, NC};
  }();
  return BK;
}

void blas::dgemv(size_t M, size_t N, double Alpha, const double *A,
                 const double *X, double Beta, double *Y) {
  if (M == 0)
    return;
  if (M * N < 16384) {
    detail::naiveDgemv(M, N, Alpha, A, X, Beta, Y);
    return;
  }
  // Memory-bound: thread only when each chunk still covers a full page's
  // worth of rows, otherwise run the unrolled kernel in one piece.
  par::parallelFor(M, 1024, [&](size_t R0, size_t R1) {
    gemvRows(M, N, Alpha, A, X, Beta, Y, R0, R1);
  });
}

void blas::dgemm(size_t M, size_t N, size_t K, double Alpha, const double *A,
                 const double *B, double Beta, double *C) {
  if (M == 0 || N == 0)
    return;
  // Keep the fused-Gemv VM op and the interpreter's general product on one
  // code path: a single output column IS a matrix-vector product.
  if (N == 1) {
    dgemv(M, K, Alpha, A, B, Beta, C);
    return;
  }
  if (K == 0 || Alpha == 0.0) {
    betaScaleColumns(M, N, Beta, C);
    return;
  }
  if (M * N * K < SmallProduct) {
    detail::naiveDgemm(M, N, K, Alpha, A, B, Beta, C);
    return;
  }
  const GemmBlocking &BK = gemmBlocking();
  size_t NumPanels = (N + BK.NC - 1) / BK.NC;
  size_t ASlivers = (BK.MC + MR - 1) / MR, BSlivers = (BK.NC + NR - 1) / NR;
  try {
    par::parallelFor(NumPanels, 1, [&](size_t P0, size_t P1) {
      // Per-task packing buffers, reused across this task's panels; tracked
      // so a live-byte limit covers scratch memory, not just values.
      std::vector<double, mem::TrackingAllocator<double>> ABuf(ASlivers * MR *
                                                               BK.KC);
      std::vector<double, mem::TrackingAllocator<double>> BBuf(BSlivers * NR *
                                                               BK.KC);
      for (size_t Panel = P0; Panel != P1; ++Panel) {
        size_t Jc = Panel * BK.NC;
        size_t Nc = std::min(BK.NC, N - Jc);
        gemmPanel(M, K, Alpha, A, B + Jc * K, Beta, C + Jc * M, M, Nc, BK,
                  ABuf.data(), BBuf.data());
      }
    });
  } catch (const std::bad_alloc &) {
    throw MatlabError("out of memory in matrix multiply");
  }
}

void blas::zgemm(size_t M, size_t N, size_t K, const double *ARe,
                 const double *AIm, const double *BRe, const double *BIm,
                 double *CRe, double *CIm) {
  if (M == 0 || N == 0)
    return;
  // Re(C) = Re(A)Re(B) - Im(A)Im(B); Im(C) = Re(A)Im(B) + Im(A)Re(B).
  // Null imaginary planes drop their terms instead of multiplying zeros.
  dgemm(M, N, K, 1.0, ARe, BRe, 0.0, CRe);
  if (AIm && BIm)
    dgemm(M, N, K, -1.0, AIm, BIm, 1.0, CRe);
  if (BIm)
    dgemm(M, N, K, 1.0, ARe, BIm, 0.0, CIm);
  if (AIm)
    dgemm(M, N, K, 1.0, AIm, BRe, BIm ? 1.0 : 0.0, CIm);
  if (!AIm && !BIm)
    std::memset(CIm, 0, M * N * sizeof(double));
}
