//===- ast/ASTPrinter.h - AST pretty printer -------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back to MATLAB source. Used by tests (round-tripping) and
/// for inspecting the inliner's output.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_AST_ASTPRINTER_H
#define MAJIC_AST_ASTPRINTER_H

#include "ast/AST.h"

#include <string>

namespace majic {

std::string printExpr(const Expr *E);
std::string printStmt(const Stmt *S, unsigned Indent = 0);
std::string printBlock(const Block &B, unsigned Indent = 0);
std::string printFunction(const Function &F);

} // namespace majic

#endif // MAJIC_AST_ASTPRINTER_H
