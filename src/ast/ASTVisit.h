//===- ast/ASTVisit.h - Generic AST traversal helpers ----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small traversal helpers shared by the analyses: pre-order expression
/// walks and statement walks.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_AST_ASTVISIT_H
#define MAJIC_AST_ASTVISIT_H

#include "ast/AST.h"

#include <functional>

namespace majic {

/// Pre-order walk over \p E and all subexpressions.
void visitExpr(Expr *E, const std::function<void(Expr *)> &Visit);

/// Invokes \p Visit on every expression directly contained in \p S (RHS,
/// subscripts, conditions, iterands) without descending into nested
/// statements.
void visitStmtExprs(const Stmt *S, const std::function<void(Expr *)> &Visit);

/// Pre-order walk over every statement in \p B, descending into nested
/// blocks.
void visitStmts(const Block &B, const std::function<void(const Stmt *)> &Visit);

} // namespace majic

#endif // MAJIC_AST_ASTVISIT_H
