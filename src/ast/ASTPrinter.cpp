//===- ast/ASTPrinter.cpp - AST pretty printer ------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include "support/StringUtils.h"

using namespace majic;
using rt::BinOp;

namespace {

std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }

const char *unaryOpSpelling(UnaryOpKind Op) {
  switch (Op) {
  case UnaryOpKind::Neg:
    return "-";
  case UnaryOpKind::Plus:
    return "+";
  case UnaryOpKind::Not:
    return "~";
  case UnaryOpKind::CTranspose:
    return "'";
  case UnaryOpKind::Transpose:
    return ".'";
  }
  majic_unreachable("invalid unary op");
}

} // namespace

std::string majic::printExpr(const Expr *E) {
  if (!E)
    return "";
  switch (E->getKind()) {
  case Expr::Kind::Number: {
    const auto *N = cast<NumberExpr>(E);
    return formatDouble(N->value()) + (N->isImaginary() ? "i" : "");
  }
  case Expr::Kind::String:
    return "'" + cast<StringExpr>(E)->value() + "'";
  case Expr::Kind::Ident:
    return cast<IdentExpr>(E)->name();
  case Expr::Kind::ColonWildcard:
    return ":";
  case Expr::Kind::EndRef:
    return "end";
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->op() == UnaryOpKind::CTranspose || U->op() == UnaryOpKind::Transpose)
      return "(" + printExpr(U->operand()) + ")" + unaryOpSpelling(U->op());
    return std::string(unaryOpSpelling(U->op())) + "(" +
           printExpr(U->operand()) + ")";
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return "(" + printExpr(B->lhs()) + " " + rt::binOpName(B->op()) + " " +
           printExpr(B->rhs()) + ")";
  }
  case Expr::Kind::ShortCircuit: {
    const auto *B = cast<ShortCircuitExpr>(E);
    return "(" + printExpr(B->lhs()) + (B->isAnd() ? " && " : " || ") +
           printExpr(B->rhs()) + ")";
  }
  case Expr::Kind::Range: {
    const auto *R = cast<RangeExpr>(E);
    if (R->step())
      return printExpr(R->lo()) + ":" + printExpr(R->step()) + ":" +
             printExpr(R->hi());
    return printExpr(R->lo()) + ":" + printExpr(R->hi());
  }
  case Expr::Kind::Matrix: {
    const auto *M = cast<MatrixExpr>(E);
    std::string Out = "[";
    for (size_t R = 0; R != M->rows().size(); ++R) {
      if (R)
        Out += "; ";
      const auto &Row = M->rows()[R];
      for (size_t C = 0; C != Row.size(); ++C) {
        if (C)
          Out += ", ";
        Out += printExpr(Row[C]);
      }
    }
    return Out + "]";
  }
  case Expr::Kind::IndexOrCall: {
    const auto *IC = cast<IndexOrCallExpr>(E);
    std::string Out = IC->base()->name() + "(";
    for (size_t I = 0; I != IC->args().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(IC->args()[I]);
    }
    return Out + ")";
  }
  }
  majic_unreachable("invalid expression kind");
}

std::string majic::printStmt(const Stmt *S, unsigned Indent) {
  std::string Pad = indentStr(Indent);
  switch (S->getKind()) {
  case Stmt::Kind::Expr: {
    const auto *ES = cast<ExprStmt>(S);
    return Pad + printExpr(ES->expr()) + (ES->displays() ? "\n" : ";\n");
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    std::string LHS;
    if (A->isMulti()) {
      LHS = "[";
      for (size_t I = 0; I != A->targets().size(); ++I) {
        if (I)
          LHS += ", ";
        LHS += A->targets()[I].Name;
      }
      LHS += "]";
    } else {
      const LValue &LV = A->targets().front();
      LHS = LV.Name;
      if (LV.HasParens) {
        LHS += "(";
        for (size_t I = 0; I != LV.Indices.size(); ++I) {
          if (I)
            LHS += ", ";
          LHS += printExpr(LV.Indices[I]);
        }
        LHS += ")";
      }
    }
    return Pad + LHS + " = " + printExpr(A->rhs()) +
           (A->displays() ? "\n" : ";\n");
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    std::string Out;
    bool First = true;
    for (const IfStmt::Branch &Br : If->branches()) {
      Out += Pad + (First ? "if " : "elseif ") + printExpr(Br.Cond) + "\n";
      Out += printBlock(Br.Body, Indent + 1);
      First = false;
    }
    if (!If->elseBlock().empty()) {
      Out += Pad + "else\n";
      Out += printBlock(If->elseBlock(), Indent + 1);
    }
    return Out + Pad + "end\n";
  }
  case Stmt::Kind::While:
    return Pad + "while " + printExpr(cast<WhileStmt>(S)->cond()) + "\n" +
           printBlock(cast<WhileStmt>(S)->body(), Indent + 1) + Pad + "end\n";
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    return Pad + "for " + F->loopVar() + " = " + printExpr(F->iterand()) +
           "\n" + printBlock(F->body(), Indent + 1) + Pad + "end\n";
  }
  case Stmt::Kind::Break:
    return Pad + "break;\n";
  case Stmt::Kind::Continue:
    return Pad + "continue;\n";
  case Stmt::Kind::Return:
    return Pad + "return;\n";
  case Stmt::Kind::Clear: {
    std::string Out = Pad + "clear";
    for (const std::string &N : cast<ClearStmt>(S)->names())
      Out += " " + N;
    return Out + ";\n";
  }
  }
  majic_unreachable("invalid statement kind");
}

std::string majic::printBlock(const Block &B, unsigned Indent) {
  std::string Out;
  for (const Stmt *S : B)
    Out += printStmt(S, Indent);
  return Out;
}

std::string majic::printFunction(const Function &F) {
  std::string Out;
  if (!F.isScript()) {
    Out = "function ";
    if (F.outs().size() == 1) {
      Out += F.outs()[0] + " = ";
    } else if (F.outs().size() > 1) {
      Out += "[";
      for (size_t I = 0; I != F.outs().size(); ++I) {
        if (I)
          Out += ", ";
        Out += F.outs()[I];
      }
      Out += "] = ";
    }
    Out += F.name() + "(";
    for (size_t I = 0; I != F.params().size(); ++I) {
      if (I)
        Out += ", ";
      Out += F.params()[I];
    }
    Out += ")\n";
  }
  Out += printBlock(F.body(), 1);
  if (!F.isScript())
    Out += "end\n";
  return Out;
}
