//===- ast/Lexer.h - MATLAB lexer ------------------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MATLAB lexer. Newlines are significant (statement and matrix-row
/// separators) and each token records whether whitespace preceded it, which
/// the parser needs to resolve the classic [1 -2] vs [1 - 2] ambiguity.
/// The quote character is disambiguated here: after an identifier, a number,
/// a closing bracket or another transpose it is the transpose operator;
/// anywhere else it opens a string literal.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_AST_LEXER_H
#define MAJIC_AST_LEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace majic {

enum class TokKind : uint8_t {
  Eof,
  Newline,
  Identifier,
  Number, // carries NumValue / IsImaginary
  String,

  // Keywords.
  KwFunction,
  KwIf,
  KwElseif,
  KwElse,
  KwEnd,
  KwFor,
  KwWhile,
  KwBreak,
  KwContinue,
  KwReturn,
  KwClear,

  // Punctuation.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Assign, // =

  // Operators.
  Plus,
  Minus,
  Star,     // *
  Slash,    // /
  Backslash,
  Caret,    // ^
  DotStar,  // .*
  DotSlash, // ./
  DotBackslash,
  DotCaret,     // .^
  Quote,        // ' as transpose
  DotQuote,     // .'
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq, // ~=
  Amp,
  Pipe,
  AmpAmp,
  PipePipe,
  Tilde, // ~
};

const char *tokKindName(TokKind K);

struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string Text;         // identifier / string contents
  double NumValue = 0;      // number
  bool IsImaginary = false; // 2i / 2j
  bool SpaceBefore = false; // whitespace (not newline) immediately before
};

/// Tokenizes one buffer. Errors are reported to \p Diags; lexing continues
/// after errors so the parser can report more issues.
std::vector<Token> lex(const std::string &Source, uint32_t FileId,
                       Diagnostics &Diags);

} // namespace majic

#endif // MAJIC_AST_LEXER_H
