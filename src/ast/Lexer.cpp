//===- ast/Lexer.cpp - MATLAB lexer ----------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Lexer.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <cstring>

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace majic;

const char *majic::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Newline:
    return "newline";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::String:
    return "string";
  case TokKind::KwFunction:
    return "'function'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElseif:
    return "'elseif'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwEnd:
    return "'end'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwWhile:
    return "'while'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwClear:
    return "'clear'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Backslash:
    return "'\\'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::DotStar:
    return "'.*'";
  case TokKind::DotSlash:
    return "'./'";
  case TokKind::DotBackslash:
    return "'.\\'";
  case TokKind::DotCaret:
    return "'.^'";
  case TokKind::Quote:
    return "transpose";
  case TokKind::DotQuote:
    return "'.''";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'~='";
  case TokKind::Amp:
    return "'&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Tilde:
    return "'~'";
  }
  majic_unreachable("invalid token kind");
}

namespace {

class LexerImpl {
public:
  LexerImpl(const std::string &Source, uint32_t FileId, Diagnostics &Diags)
      : Src(Source), FileId(FileId), Diags(Diags) {}

  std::vector<Token> run();

private:
  SourceLoc loc() const { return {FileId, Line, Col}; }

  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char advance() {
    char Ch = Src[Pos++];
    if (Ch == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return Ch;
  }

  void push(TokKind K, SourceLoc Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    T.SpaceBefore = PendingSpace;
    PendingSpace = false;
    Toks.push_back(std::move(T));
  }

  /// True if the previous token allows a postfix quote (transpose).
  bool quoteIsTranspose() const {
    if (Toks.empty())
      return false;
    // Whitespace before the quote means string context: [a ' '] etc.
    switch (Toks.back().Kind) {
    case TokKind::Identifier:
    case TokKind::Number:
    case TokKind::RParen:
    case TokKind::RBracket:
    case TokKind::Quote:
    case TokKind::DotQuote:
    case TokKind::KwEnd:
      return !PendingSpace;
    default:
      return false;
    }
  }

  void lexNumber();
  void lexIdentifier();
  void lexString();

  const std::string &Src;
  uint32_t FileId;
  Diagnostics &Diags;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
  bool PendingSpace = false;
  std::vector<Token> Toks;
};

void LexerImpl::lexNumber() {
  SourceLoc Loc = loc();
  std::string Digits;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits += advance();
  // A '.' begins a fraction only if not an operator like '.*' or '..'.
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    Digits += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
  } else if (peek() == '.' && !std::strchr("*/\\^'.", peek(1))) {
    Digits += advance(); // trailing '.': "3." is a valid literal
  }
  if (peek() == 'e' || peek() == 'E') {
    char Next = peek(1);
    if (std::isdigit(static_cast<unsigned char>(Next)) ||
        ((Next == '+' || Next == '-') &&
         std::isdigit(static_cast<unsigned char>(peek(2))))) {
      Digits += advance(); // e
      if (peek() == '+' || peek() == '-')
        Digits += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits += advance();
    }
  }
  bool Imag = false;
  if (peek() == 'i' || peek() == 'j') {
    // Imaginary suffix only when not followed by more identifier chars.
    char After = peek(1);
    if (!std::isalnum(static_cast<unsigned char>(After)) && After != '_') {
      advance();
      Imag = true;
    }
  }
  Token T;
  T.Kind = TokKind::Number;
  T.Loc = Loc;
  T.NumValue = std::strtod(Digits.c_str(), nullptr);
  T.IsImaginary = Imag;
  T.SpaceBefore = PendingSpace;
  PendingSpace = false;
  Toks.push_back(std::move(T));
}

void LexerImpl::lexIdentifier() {
  SourceLoc Loc = loc();
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Name += advance();

  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"function", TokKind::KwFunction}, {"if", TokKind::KwIf},
      {"elseif", TokKind::KwElseif},     {"else", TokKind::KwElse},
      {"end", TokKind::KwEnd},           {"for", TokKind::KwFor},
      {"while", TokKind::KwWhile},       {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue}, {"return", TokKind::KwReturn},
      {"clear", TokKind::KwClear},
  };
  auto It = Keywords.find(Name);
  Token T;
  T.Kind = It == Keywords.end() ? TokKind::Identifier : It->second;
  T.Loc = Loc;
  T.Text = std::move(Name);
  T.SpaceBefore = PendingSpace;
  PendingSpace = false;
  Toks.push_back(std::move(T));
}

void LexerImpl::lexString() {
  SourceLoc Loc = loc();
  advance(); // opening quote
  std::string S;
  while (true) {
    char Ch = peek();
    if (Ch == '\0' || Ch == '\n') {
      Diags.error(Loc, "unterminated string literal");
      break;
    }
    advance();
    if (Ch == '\'') {
      if (peek() == '\'') { // '' is an escaped quote
        S += '\'';
        advance();
        continue;
      }
      break;
    }
    S += Ch;
  }
  Token T;
  T.Kind = TokKind::String;
  T.Loc = Loc;
  T.Text = std::move(S);
  T.SpaceBefore = PendingSpace;
  PendingSpace = false;
  Toks.push_back(std::move(T));
}

std::vector<Token> LexerImpl::run() {
  while (Pos < Src.size()) {
    char Ch = peek();
    SourceLoc Loc = loc();

    if (Ch == ' ' || Ch == '\t' || Ch == '\r') {
      advance();
      PendingSpace = true;
      continue;
    }
    if (Ch == '\n') {
      advance();
      push(TokKind::Newline, Loc);
      continue;
    }
    if (Ch == '%') { // comment to end of line
      while (peek() && peek() != '\n')
        advance();
      continue;
    }
    if (Ch == '.' && peek(1) == '.' && peek(2) == '.') {
      // Line continuation: swallow through the newline.
      while (peek() && peek() != '\n')
        advance();
      if (peek() == '\n')
        advance();
      PendingSpace = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(Ch)) ||
        (Ch == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      lexNumber();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      lexIdentifier();
      continue;
    }
    if (Ch == '\'') {
      if (quoteIsTranspose()) {
        advance();
        push(TokKind::Quote, Loc);
      } else {
        lexString();
      }
      continue;
    }

    advance();
    switch (Ch) {
    case '(':
      push(TokKind::LParen, Loc);
      break;
    case ')':
      push(TokKind::RParen, Loc);
      break;
    case '[':
      push(TokKind::LBracket, Loc);
      break;
    case ']':
      push(TokKind::RBracket, Loc);
      break;
    case ',':
      push(TokKind::Comma, Loc);
      break;
    case ';':
      push(TokKind::Semi, Loc);
      break;
    case ':':
      push(TokKind::Colon, Loc);
      break;
    case '+':
      push(TokKind::Plus, Loc);
      break;
    case '-':
      push(TokKind::Minus, Loc);
      break;
    case '*':
      push(TokKind::Star, Loc);
      break;
    case '/':
      push(TokKind::Slash, Loc);
      break;
    case '\\':
      push(TokKind::Backslash, Loc);
      break;
    case '^':
      push(TokKind::Caret, Loc);
      break;
    case '=':
      if (peek() == '=') {
        advance();
        push(TokKind::EqEq, Loc);
      } else {
        push(TokKind::Assign, Loc);
      }
      break;
    case '<':
      if (peek() == '=') {
        advance();
        push(TokKind::Le, Loc);
      } else {
        push(TokKind::Lt, Loc);
      }
      break;
    case '>':
      if (peek() == '=') {
        advance();
        push(TokKind::Ge, Loc);
      } else {
        push(TokKind::Gt, Loc);
      }
      break;
    case '~':
      if (peek() == '=') {
        advance();
        push(TokKind::NotEq, Loc);
      } else {
        push(TokKind::Tilde, Loc);
      }
      break;
    case '&':
      if (peek() == '&') {
        advance();
        push(TokKind::AmpAmp, Loc);
      } else {
        push(TokKind::Amp, Loc);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        push(TokKind::PipePipe, Loc);
      } else {
        push(TokKind::Pipe, Loc);
      }
      break;
    case '.':
      switch (peek()) {
      case '*':
        advance();
        push(TokKind::DotStar, Loc);
        break;
      case '/':
        advance();
        push(TokKind::DotSlash, Loc);
        break;
      case '\\':
        advance();
        push(TokKind::DotBackslash, Loc);
        break;
      case '^':
        advance();
        push(TokKind::DotCaret, Loc);
        break;
      case '\'':
        advance();
        push(TokKind::DotQuote, Loc);
        break;
      default:
        Diags.error(Loc, "unexpected character '.'");
        break;
      }
      break;
    default:
      Diags.error(Loc, format("unexpected character '%c'", Ch));
      break;
    }
  }
  Token T;
  T.Kind = TokKind::Eof;
  T.Loc = loc();
  Toks.push_back(std::move(T));
  return std::move(Toks);
}

} // namespace

std::vector<Token> majic::lex(const std::string &Source, uint32_t FileId,
                              Diagnostics &Diags) {
  return LexerImpl(Source, FileId, Diags).run();
}
