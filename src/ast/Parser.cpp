//===- ast/Parser.cpp - MATLAB parser --------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Parser.h"

#include "ast/Lexer.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <initializer_list>

using namespace majic;
using rt::BinOp;

namespace {

class Parser {
public:
  Parser(std::string Name, std::vector<Token> Tokens, Diagnostics &Diags)
      : ModName(std::move(Name)), Toks(std::move(Tokens)), Diags(Diags),
        Mod(std::make_unique<Module>(ModName)) {}

  std::unique_ptr<Module> run();

private:
  //===--------------------------------------------------------------------===
  // Token helpers
  //===--------------------------------------------------------------------===

  const Token &cur() const { return Toks[Pos]; }
  const Token &next(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  TokKind kind() const { return cur().Kind; }
  SourceLoc loc() const { return cur().Loc; }

  Token eat() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  bool is(TokKind K) const { return kind() == K; }

  bool accept(TokKind K) {
    if (!is(K))
      return false;
    eat();
    return true;
  }

  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    Diags.error(loc(), format("expected %s %s, got %s", tokKindName(K),
                              Context, tokKindName(kind())));
    return false;
  }

  void skipNewlines() {
    while (is(TokKind::Newline))
      eat();
  }

  /// Skips to the next statement boundary after an error.
  void recover() {
    while (!is(TokKind::Eof) && !is(TokKind::Newline) && !is(TokKind::Semi))
      eat();
  }

  template <typename T, typename... ArgTys> T *make(ArgTys &&...Args) {
    return Mod->context().create<T>(std::forward<ArgTys>(Args)...);
  }

  //===--------------------------------------------------------------------===
  // Productions
  //===--------------------------------------------------------------------===

  std::unique_ptr<Function> parseFunction();
  void parseScript();
  Block parseBlock(std::initializer_list<TokKind> Terminators);
  Stmt *parseStatement();
  Stmt *parseSimpleStatement();
  Stmt *finishAssignOrExpr();
  bool exprToLValues(Expr *E, std::vector<LValue> &Out);

  Expr *parseExpr() { return parseOrOr(); }
  Expr *parseOrOr();
  Expr *parseAndAnd();
  Expr *parseElemOr();
  Expr *parseElemAnd();
  Expr *parseComparison();
  Expr *parseRange();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePower();
  Expr *parsePostfix();
  Expr *parsePrimary();
  Expr *parseMatrixLiteral();
  std::vector<Expr *> parseCallArgs();
  Expr *parseIndexArg();

  /// True when a +/- token in matrix context acts as an element separator
  /// ([1 -2] has two elements; [1 - 2] and [1-2] have one).
  bool plusMinusStartsNewElement() const {
    if (MatrixDepth == 0 || ParenDepth != 0)
      return false;
    if (!is(TokKind::Plus) && !is(TokKind::Minus))
      return false;
    return cur().SpaceBefore && !next().SpaceBefore &&
           next().Kind != TokKind::Newline && next().Kind != TokKind::Eof;
  }

  /// True when the current token can begin an expression.
  bool startsExpr() const {
    switch (kind()) {
    case TokKind::Number:
    case TokKind::String:
    case TokKind::Identifier:
    case TokKind::LParen:
    case TokKind::LBracket:
    case TokKind::Plus:
    case TokKind::Minus:
    case TokKind::Tilde:
      return true;
    case TokKind::KwEnd:
      return IndexDepth > 0;
    case TokKind::Colon:
      return IndexDepth > 0;
    default:
      return false;
    }
  }

  std::string ModName;
  std::vector<Token> Toks;
  Diagnostics &Diags;
  std::unique_ptr<Module> Mod;
  size_t Pos = 0;
  int MatrixDepth = 0; ///< Nesting inside [ ... ] element parsing.
  int ParenDepth = 0;  ///< Nesting inside ( ... ) within a matrix element.
  int IndexDepth = 0;  ///< Nesting inside subscript argument lists.
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> Parser::run() {
  skipNewlines();
  if (is(TokKind::KwFunction)) {
    while (is(TokKind::KwFunction)) {
      auto F = parseFunction();
      if (F)
        Mod->addFunction(std::move(F));
      skipNewlines();
    }
    if (!is(TokKind::Eof))
      Diags.error(loc(), format("unexpected %s after last function",
                                tokKindName(kind())));
  } else {
    parseScript();
  }
  if (Diags.hasErrors())
    return nullptr;
  return std::move(Mod);
}

void Parser::parseScript() {
  auto F = std::make_unique<Function>(ModName, std::vector<std::string>{},
                                      std::vector<std::string>{},
                                      /*IsScript=*/true);
  unsigned StartLine = loc().Line;
  F->body() = parseBlock({TokKind::Eof});
  F->setNumLines(loc().Line - StartLine + 1);
  Mod->addFunction(std::move(F));
}

std::unique_ptr<Function> Parser::parseFunction() {
  unsigned StartLine = loc().Line;
  expect(TokKind::KwFunction, "to begin function");

  std::vector<std::string> Outs;
  std::string Name;

  // Three header forms:
  //   function name(...)         function out = name(...)
  //   function [o1, o2] = name(...)
  if (is(TokKind::LBracket)) {
    eat();
    while (is(TokKind::Identifier)) {
      Outs.push_back(eat().Text);
      if (!accept(TokKind::Comma))
        break;
    }
    expect(TokKind::RBracket, "after output list");
    expect(TokKind::Assign, "after output list");
    if (is(TokKind::Identifier))
      Name = eat().Text;
    else
      Diags.error(loc(), "expected function name");
  } else if (is(TokKind::Identifier)) {
    std::string First = eat().Text;
    if (accept(TokKind::Assign)) {
      Outs.push_back(First);
      if (is(TokKind::Identifier))
        Name = eat().Text;
      else
        Diags.error(loc(), "expected function name");
    } else {
      Name = First;
    }
  } else {
    Diags.error(loc(), "expected function name");
    recover();
  }

  std::vector<std::string> Params;
  if (accept(TokKind::LParen)) {
    while (is(TokKind::Identifier)) {
      Params.push_back(eat().Text);
      if (!accept(TokKind::Comma))
        break;
    }
    expect(TokKind::RParen, "after parameter list");
  }

  auto F = std::make_unique<Function>(Name, std::move(Params), std::move(Outs),
                                      /*IsScript=*/false);
  F->body() = parseBlock({TokKind::KwFunction, TokKind::KwEnd, TokKind::Eof});
  // A function may optionally be terminated by 'end'.
  if (is(TokKind::KwEnd))
    eat();
  F->setNumLines(loc().Line - StartLine + 1);
  return F;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Block Parser::parseBlock(std::initializer_list<TokKind> Terminators) {
  Block B;
  while (true) {
    // Skip statement separators.
    while (is(TokKind::Newline) || is(TokKind::Semi) || is(TokKind::Comma))
      eat();
    bool AtTerminator = is(TokKind::Eof);
    for (TokKind T : Terminators)
      AtTerminator |= is(T);
    if (AtTerminator)
      return B;
    if (Stmt *S = parseStatement())
      B.push_back(S);
    else
      recover();
  }
}

Stmt *Parser::parseStatement() {
  SourceLoc Loc = loc();
  switch (kind()) {
  case TokKind::KwIf: {
    eat();
    std::vector<IfStmt::Branch> Branches;
    Expr *Cond = parseExpr();
    Block Body = parseBlock({TokKind::KwElseif, TokKind::KwElse, TokKind::KwEnd});
    Branches.push_back({Cond, std::move(Body)});
    while (is(TokKind::KwElseif)) {
      eat();
      Expr *C = parseExpr();
      Block ElifBody =
          parseBlock({TokKind::KwElseif, TokKind::KwElse, TokKind::KwEnd});
      Branches.push_back({C, std::move(ElifBody)});
    }
    Block Else;
    if (accept(TokKind::KwElse))
      Else = parseBlock({TokKind::KwEnd});
    expect(TokKind::KwEnd, "to close 'if'");
    return make<IfStmt>(std::move(Branches), std::move(Else), Loc);
  }
  case TokKind::KwWhile: {
    eat();
    Expr *Cond = parseExpr();
    Block Body = parseBlock({TokKind::KwEnd});
    expect(TokKind::KwEnd, "to close 'while'");
    return make<WhileStmt>(Cond, std::move(Body), Loc);
  }
  case TokKind::KwFor: {
    eat();
    std::string Var;
    if (is(TokKind::Identifier))
      Var = eat().Text;
    else
      Diags.error(loc(), "expected loop variable after 'for'");
    expect(TokKind::Assign, "after loop variable");
    Expr *Iterand = parseExpr();
    Block Body = parseBlock({TokKind::KwEnd});
    expect(TokKind::KwEnd, "to close 'for'");
    return make<ForStmt>(std::move(Var), Iterand, std::move(Body), Loc);
  }
  case TokKind::KwBreak:
    eat();
    return make<BreakStmt>(Loc);
  case TokKind::KwContinue:
    eat();
    return make<ContinueStmt>(Loc);
  case TokKind::KwReturn:
    eat();
    return make<ReturnStmt>(Loc);
  case TokKind::KwClear: {
    eat();
    std::vector<std::string> Names;
    while (is(TokKind::Identifier))
      Names.push_back(eat().Text);
    return make<ClearStmt>(std::move(Names), Loc);
  }
  default:
    return finishAssignOrExpr();
  }
}

/// Converts a parsed LHS expression into assignment targets.
bool Parser::exprToLValues(Expr *E, std::vector<LValue> &Out) {
  auto FromOne = [&](Expr *Target) -> bool {
    if (auto *Id = dyn_cast<IdentExpr>(Target)) {
      Out.push_back({Id->name(), -1, {}, false, Id->getLoc()});
      return true;
    }
    if (auto *IC = dyn_cast<IndexOrCallExpr>(Target)) {
      Out.push_back(
          {IC->base()->name(), -1, IC->args(), true, IC->getLoc()});
      return true;
    }
    return false;
  };

  if (auto *M = dyn_cast<MatrixExpr>(E)) {
    if (M->rows().size() != 1)
      return false;
    for (Expr *Elem : M->rows().front())
      if (!FromOne(Elem))
        return false;
    return !Out.empty();
  }
  return FromOne(E);
}

Stmt *Parser::finishAssignOrExpr() {
  SourceLoc Loc = loc();
  if (!startsExpr()) {
    Diags.error(Loc, format("unexpected %s", tokKindName(kind())));
    return nullptr;
  }
  Expr *E = parseExpr();
  if (!E)
    return nullptr;

  bool IsAssign = is(TokKind::Assign);
  std::vector<LValue> Targets;
  if (IsAssign) {
    if (!exprToLValues(E, Targets)) {
      Diags.error(Loc, "invalid assignment target");
      return nullptr;
    }
    eat(); // '='
    Expr *RHS = parseExpr();
    if (!RHS)
      return nullptr;
    bool Display = !is(TokKind::Semi);
    return make<AssignStmt>(std::move(Targets), RHS, Display, Loc);
  }
  bool Display = !is(TokKind::Semi);
  return make<ExprStmt>(E, Display, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseOrOr() {
  Expr *L = parseAndAnd();
  while (is(TokKind::PipePipe)) {
    SourceLoc Loc = eat().Loc;
    Expr *R = parseAndAnd();
    L = make<ShortCircuitExpr>(/*IsAnd=*/false, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseAndAnd() {
  Expr *L = parseElemOr();
  while (is(TokKind::AmpAmp)) {
    SourceLoc Loc = eat().Loc;
    Expr *R = parseElemOr();
    L = make<ShortCircuitExpr>(/*IsAnd=*/true, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseElemOr() {
  Expr *L = parseElemAnd();
  while (is(TokKind::Pipe)) {
    SourceLoc Loc = eat().Loc;
    L = make<BinaryExpr>(BinOp::Or, L, parseElemAnd(), Loc);
  }
  return L;
}

Expr *Parser::parseElemAnd() {
  Expr *L = parseComparison();
  while (is(TokKind::Amp)) {
    SourceLoc Loc = eat().Loc;
    L = make<BinaryExpr>(BinOp::And, L, parseComparison(), Loc);
  }
  return L;
}

Expr *Parser::parseComparison() {
  Expr *L = parseRange();
  while (true) {
    BinOp Op;
    switch (kind()) {
    case TokKind::Lt:
      Op = BinOp::Lt;
      break;
    case TokKind::Le:
      Op = BinOp::Le;
      break;
    case TokKind::Gt:
      Op = BinOp::Gt;
      break;
    case TokKind::Ge:
      Op = BinOp::Ge;
      break;
    case TokKind::EqEq:
      Op = BinOp::Eq;
      break;
    case TokKind::NotEq:
      Op = BinOp::Ne;
      break;
    default:
      return L;
    }
    SourceLoc Loc = eat().Loc;
    L = make<BinaryExpr>(Op, L, parseRange(), Loc);
  }
}

Expr *Parser::parseRange() {
  Expr *Lo = parseAdditive();
  if (!is(TokKind::Colon))
    return Lo;
  SourceLoc Loc = eat().Loc;
  Expr *Mid = parseAdditive();
  if (is(TokKind::Colon)) {
    eat();
    Expr *Hi = parseAdditive();
    return make<RangeExpr>(Lo, Mid, Hi, Loc);
  }
  return make<RangeExpr>(Lo, /*Step=*/nullptr, Mid, Loc);
}

Expr *Parser::parseAdditive() {
  Expr *L = parseMultiplicative();
  while (is(TokKind::Plus) || is(TokKind::Minus)) {
    if (plusMinusStartsNewElement())
      return L;
    BinOp Op = is(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
    SourceLoc Loc = eat().Loc;
    L = make<BinaryExpr>(Op, L, parseMultiplicative(), Loc);
  }
  return L;
}

Expr *Parser::parseMultiplicative() {
  Expr *L = parseUnary();
  while (true) {
    BinOp Op;
    switch (kind()) {
    case TokKind::Star:
      Op = BinOp::MatMul;
      break;
    case TokKind::Slash:
      Op = BinOp::MatRDiv;
      break;
    case TokKind::Backslash:
      Op = BinOp::MatLDiv;
      break;
    case TokKind::DotStar:
      Op = BinOp::ElemMul;
      break;
    case TokKind::DotSlash:
      Op = BinOp::ElemRDiv;
      break;
    case TokKind::DotBackslash:
      Op = BinOp::ElemLDiv;
      break;
    default:
      return L;
    }
    SourceLoc Loc = eat().Loc;
    L = make<BinaryExpr>(Op, L, parseUnary(), Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = loc();
  if (accept(TokKind::Plus))
    return make<UnaryExpr>(UnaryOpKind::Plus, parseUnary(), Loc);
  if (accept(TokKind::Minus))
    return make<UnaryExpr>(UnaryOpKind::Neg, parseUnary(), Loc);
  if (accept(TokKind::Tilde))
    return make<UnaryExpr>(UnaryOpKind::Not, parseUnary(), Loc);
  return parsePower();
}

Expr *Parser::parsePower() {
  Expr *L = parsePostfix();
  while (is(TokKind::Caret) || is(TokKind::DotCaret)) {
    BinOp Op = is(TokKind::Caret) ? BinOp::MatPow : BinOp::ElemPow;
    SourceLoc Loc = eat().Loc;
    // The exponent may carry a unary sign: 2^-3.
    Expr *R;
    SourceLoc RLoc = loc();
    if (accept(TokKind::Minus))
      R = make<UnaryExpr>(UnaryOpKind::Neg, parsePostfix(), RLoc);
    else if (accept(TokKind::Plus))
      R = make<UnaryExpr>(UnaryOpKind::Plus, parsePostfix(), RLoc);
    else
      R = parsePostfix();
    L = make<BinaryExpr>(Op, L, R, Loc);
  }
  return L;
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    if (is(TokKind::Quote)) {
      SourceLoc Loc = eat().Loc;
      E = make<UnaryExpr>(UnaryOpKind::CTranspose, E, Loc);
      continue;
    }
    if (is(TokKind::DotQuote)) {
      SourceLoc Loc = eat().Loc;
      E = make<UnaryExpr>(UnaryOpKind::Transpose, E, Loc);
      continue;
    }
    if (is(TokKind::LParen)) {
      auto *Base = dyn_cast<IdentExpr>(E);
      if (!Base) {
        Diags.error(loc(), "only simple names can be indexed or called");
        return E;
      }
      SourceLoc Loc = loc();
      std::vector<Expr *> Args = parseCallArgs();
      E = make<IndexOrCallExpr>(Base, std::move(Args), Loc);
      continue;
    }
    return E;
  }
}

std::vector<Expr *> Parser::parseCallArgs() {
  expect(TokKind::LParen, "to begin argument list");
  ++IndexDepth;
  int SavedMatrix = MatrixDepth, SavedParen = ParenDepth;
  MatrixDepth = 0;
  ParenDepth = 0;
  std::vector<Expr *> Args;
  if (!is(TokKind::RParen)) {
    while (true) {
      Args.push_back(parseIndexArg());
      if (!accept(TokKind::Comma))
        break;
    }
  }
  MatrixDepth = SavedMatrix;
  ParenDepth = SavedParen;
  --IndexDepth;
  expect(TokKind::RParen, "to close argument list");
  return Args;
}

Expr *Parser::parseIndexArg() {
  // A bare ':' subscript: only when immediately followed by ',' or ')'.
  if (is(TokKind::Colon) &&
      (next().Kind == TokKind::Comma || next().Kind == TokKind::RParen)) {
    SourceLoc Loc = eat().Loc;
    return make<ColonWildcardExpr>(Loc);
  }
  return parseExpr();
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = loc();
  switch (kind()) {
  case TokKind::Number: {
    Token T = eat();
    return make<NumberExpr>(T.NumValue, T.IsImaginary, Loc);
  }
  case TokKind::String: {
    Token T = eat();
    return make<StringExpr>(std::move(T.Text), Loc);
  }
  case TokKind::Identifier: {
    Token T = eat();
    return make<IdentExpr>(std::move(T.Text), Loc);
  }
  case TokKind::KwEnd:
    if (IndexDepth > 0) {
      eat();
      return make<EndRefExpr>(Loc);
    }
    break;
  case TokKind::LParen: {
    eat();
    ++ParenDepth;
    Expr *E = parseExpr();
    --ParenDepth;
    expect(TokKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokKind::LBracket:
    return parseMatrixLiteral();
  default:
    break;
  }
  Diags.error(Loc, format("expected an expression, got %s",
                          tokKindName(kind())));
  // Produce a placeholder so parsing can continue.
  eat();
  return make<NumberExpr>(0.0, false, Loc);
}

Expr *Parser::parseMatrixLiteral() {
  SourceLoc Loc = loc();
  expect(TokKind::LBracket, "to begin matrix");
  ++MatrixDepth;
  std::vector<std::vector<Expr *>> Rows;
  std::vector<Expr *> Row;

  auto FlushRow = [&] {
    if (!Row.empty()) {
      Rows.push_back(std::move(Row));
      Row.clear();
    }
  };

  while (!is(TokKind::RBracket) && !is(TokKind::Eof)) {
    if (accept(TokKind::Semi) || accept(TokKind::Newline)) {
      FlushRow();
      continue;
    }
    if (accept(TokKind::Comma))
      continue;
    if (!startsExpr() && !is(TokKind::Colon)) {
      Diags.error(loc(), format("unexpected %s in matrix literal",
                                tokKindName(kind())));
      break;
    }
    Row.push_back(parseExpr());
  }
  FlushRow();
  --MatrixDepth;
  expect(TokKind::RBracket, "to close matrix");
  return make<MatrixExpr>(std::move(Rows), Loc);
}

} // namespace

std::unique_ptr<Module> majic::parseModule(const std::string &Name,
                                           const std::string &Source,
                                           SourceManager &SM,
                                           Diagnostics &Diags) {
  // An injected parse fault surfaces like any other syntax error: through
  // the diagnostic stream, never as an escaping exception.
  try {
    faults::maybeThrow(faults::Site::Parse);
  } catch (const faults::InjectedFault &F) {
    Diags.error(SourceLoc(), F.what());
    return nullptr;
  }
  uint32_t FileId = SM.addBuffer(Name, Source);
  std::vector<Token> Toks = lex(SM.bufferContents(FileId), FileId, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return Parser(Name, std::move(Toks), Diags).run();
}
