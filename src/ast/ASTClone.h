//===- ast/ASTClone.h - AST cloning with substitution ----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-cloning of expressions and statements into a target ASTContext, with
/// two substitution hooks used by the function inliner: renaming variables
/// (alpha-renaming the callee's locals) and replacing whole subexpressions
/// (swapping a call for its result temporary).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_AST_ASTCLONE_H
#define MAJIC_AST_ASTCLONE_H

#include "ast/AST.h"

#include <unordered_map>

namespace majic {

struct CloneRemap {
  /// Variable renamings applied to IdentExpr (Variable/Ambiguous occurrences
  /// only), assignment targets and loop variables.
  std::unordered_map<std::string, std::string> RenameVar;
  /// Whole-subexpression replacements, keyed by the *original* node. The
  /// replacement is inserted as-is (not cloned again).
  std::unordered_map<const Expr *, Expr *> Replace;
};

Expr *cloneExpr(ASTContext &Ctx, const Expr *E, const CloneRemap &Remap);
Stmt *cloneStmt(ASTContext &Ctx, const Stmt *S, const CloneRemap &Remap);
Block cloneBlock(ASTContext &Ctx, const Block &B, const CloneRemap &Remap);

} // namespace majic

#endif // MAJIC_AST_ASTCLONE_H
