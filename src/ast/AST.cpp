//===- ast/AST.cpp - AST out-of-line definitions -----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/AST.h"

using namespace majic;

Function *Module::findFunction(const std::string &FnName) const {
  for (const auto &F : Functions)
    if (F->name() == FnName)
      return F.get();
  return nullptr;
}
