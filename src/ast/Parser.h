//===- ast/Parser.h - MATLAB parser ----------------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the MATLAB subset. Produces a Module: either
/// a function file (primary function plus subfunctions) or a script wrapped
/// as a zero-argument function. Based on FALCON's parser structure
/// (Section 2: "MaJIC's parser is based on FALCON's parser").
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_AST_PARSER_H
#define MAJIC_AST_PARSER_H

#include "ast/AST.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace majic {

/// Parses \p Source (registered in \p SM under \p Name) into a Module.
/// Returns null when parse errors were reported to \p Diags.
std::unique_ptr<Module> parseModule(const std::string &Name,
                                    const std::string &Source,
                                    SourceManager &SM, Diagnostics &Diags);

} // namespace majic

#endif // MAJIC_AST_PARSER_H
