//===- ast/ASTVisit.cpp - Generic AST traversal helpers ---------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTVisit.h"

using namespace majic;

void majic::visitExpr(Expr *E, const std::function<void(Expr *)> &Visit) {
  if (!E)
    return;
  Visit(E);
  switch (E->getKind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::ColonWildcard:
  case Expr::Kind::EndRef:
    return;
  case Expr::Kind::Unary:
    visitExpr(cast<UnaryExpr>(E)->operand(), Visit);
    return;
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    visitExpr(B->lhs(), Visit);
    visitExpr(B->rhs(), Visit);
    return;
  }
  case Expr::Kind::ShortCircuit: {
    auto *B = cast<ShortCircuitExpr>(E);
    visitExpr(B->lhs(), Visit);
    visitExpr(B->rhs(), Visit);
    return;
  }
  case Expr::Kind::Range: {
    auto *R = cast<RangeExpr>(E);
    visitExpr(R->lo(), Visit);
    visitExpr(R->step(), Visit);
    visitExpr(R->hi(), Visit);
    return;
  }
  case Expr::Kind::Matrix:
    for (const auto &Row : cast<MatrixExpr>(E)->rows())
      for (Expr *Elem : Row)
        visitExpr(Elem, Visit);
    return;
  case Expr::Kind::IndexOrCall: {
    auto *IC = cast<IndexOrCallExpr>(E);
    Visit(IC->base());
    for (Expr *A : IC->args())
      visitExpr(A, Visit);
    return;
  }
  }
}

void majic::visitStmtExprs(const Stmt *S,
                           const std::function<void(Expr *)> &Visit) {
  switch (S->getKind()) {
  case Stmt::Kind::Expr:
    Visit(cast<ExprStmt>(S)->expr());
    return;
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Visit(A->rhs());
    for (const LValue &LV : A->targets())
      for (Expr *Idx : LV.Indices)
        Visit(Idx);
    return;
  }
  case Stmt::Kind::If:
    for (const IfStmt::Branch &Br : cast<IfStmt>(S)->branches())
      Visit(Br.Cond);
    return;
  case Stmt::Kind::While:
    Visit(cast<WhileStmt>(S)->cond());
    return;
  case Stmt::Kind::For:
    Visit(cast<ForStmt>(S)->iterand());
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Return:
  case Stmt::Kind::Clear:
    return;
  }
}

void majic::visitStmts(const Block &B,
                       const std::function<void(const Stmt *)> &Visit) {
  for (const Stmt *S : B) {
    Visit(S);
    switch (S->getKind()) {
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      for (const IfStmt::Branch &Br : If->branches())
        visitStmts(Br.Body, Visit);
      visitStmts(If->elseBlock(), Visit);
      break;
    }
    case Stmt::Kind::While:
      visitStmts(cast<WhileStmt>(S)->body(), Visit);
      break;
    case Stmt::Kind::For:
      visitStmts(cast<ForStmt>(S)->body(), Visit);
      break;
    default:
      break;
    }
  }
}
