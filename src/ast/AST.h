//===- ast/AST.h - MATLAB abstract syntax tree -----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree for the MATLAB subset. Nodes are arena-allocated
/// and owned by a Module; passes reference them by raw pointer. Symbol
/// resolution (variable vs builtin vs user function, Section 2.1) is filled
/// in by the disambiguator, not the parser.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_AST_AST_H
#define MAJIC_AST_AST_H

#include "runtime/Ops.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace majic {

class Expr;
class Stmt;
class Function;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// What a symbol occurrence means. The MaJIC disambiguator resolves these
/// at compile time with reaching-definitions analysis; occurrences it cannot
/// prove are Ambiguous and handled dynamically (Section 2.1).
enum class SymKind : uint8_t {
  Unresolved,   ///< Not yet analyzed.
  Variable,     ///< A local variable (VarSlot is valid).
  Builtin,      ///< A builtin primitive.
  UserFunction, ///< A user function in the repository/module.
  Ambiguous,    ///< Variable on some paths only; resolved at runtime.
};

class Expr {
public:
  enum class Kind : uint8_t {
    Number,
    String,
    Ident,
    ColonWildcard, // a bare ':' subscript
    EndRef,        // 'end' inside a subscript
    Unary,
    Binary,
    ShortCircuit,
    Range,
    Matrix,
    IndexOrCall,
  };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}
  ~Expr() = default;

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// A numeric literal; 3.5i / 2j carry IsImaginary.
class NumberExpr : public Expr {
public:
  NumberExpr(double V, bool IsImaginary, SourceLoc Loc)
      : Expr(Kind::Number, Loc), Val(V), IsImag(IsImaginary) {}

  double value() const { return Val; }
  bool isImaginary() const { return IsImag; }
  /// True when the literal was written as an integer (5, not 5.0).
  bool isIntegral() const {
    return !IsImag && Val == static_cast<long long>(Val);
  }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Number; }

private:
  double Val;
  bool IsImag;
};

class StringExpr : public Expr {
public:
  StringExpr(std::string S, SourceLoc Loc)
      : Expr(Kind::String, Loc), Str(std::move(S)) {}

  const std::string &value() const { return Str; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::String; }

private:
  std::string Str;
};

/// A bare symbol occurrence. The disambiguator fills Sym/VarSlot.
class IdentExpr : public Expr {
public:
  IdentExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::Ident, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  SymKind symKind() const { return Sym; }
  void setSymKind(SymKind K) { Sym = K; }
  int varSlot() const { return VarSlot; }
  void setVarSlot(int Slot) { VarSlot = Slot; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Ident; }

private:
  std::string Name;
  SymKind Sym = SymKind::Unresolved;
  int VarSlot = -1;
};

/// A bare ':' used as a whole-dimension subscript.
class ColonWildcardExpr : public Expr {
public:
  explicit ColonWildcardExpr(SourceLoc Loc) : Expr(Kind::ColonWildcard, Loc) {}
  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ColonWildcard;
  }
};

/// 'end' inside a subscript: the length of the subscripted dimension.
class EndRefExpr : public Expr {
public:
  explicit EndRefExpr(SourceLoc Loc) : Expr(Kind::EndRef, Loc) {}
  static bool classof(const Expr *E) { return E->getKind() == Kind::EndRef; }
};

enum class UnaryOpKind : uint8_t { Neg, Plus, Not, CTranspose, Transpose };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOpKind Op, Expr *Operand, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(Operand) {}

  UnaryOpKind op() const { return Op; }
  Expr *operand() const { return Operand; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOpKind Op;
  Expr *Operand;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(rt::BinOp Op, Expr *L, Expr *R, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), L(L), R(R) {}

  rt::BinOp op() const { return Op; }
  Expr *lhs() const { return L; }
  Expr *rhs() const { return R; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  rt::BinOp Op;
  Expr *L, *R;
};

/// && and || with short-circuit evaluation (scalar conditions).
class ShortCircuitExpr : public Expr {
public:
  ShortCircuitExpr(bool IsAnd, Expr *L, Expr *R, SourceLoc Loc)
      : Expr(Kind::ShortCircuit, Loc), IsAnd(IsAnd), L(L), R(R) {}

  bool isAnd() const { return IsAnd; }
  Expr *lhs() const { return L; }
  Expr *rhs() const { return R; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::ShortCircuit;
  }

private:
  bool IsAnd;
  Expr *L, *R;
};

/// lo:hi or lo:step:hi.
class RangeExpr : public Expr {
public:
  RangeExpr(Expr *Lo, Expr *Step, Expr *Hi, SourceLoc Loc)
      : Expr(Kind::Range, Loc), Lo(Lo), Step(Step), Hi(Hi) {}

  Expr *lo() const { return Lo; }
  Expr *step() const { return Step; } ///< Null for lo:hi.
  Expr *hi() const { return Hi; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Range; }

private:
  Expr *Lo, *Step, *Hi;
};

/// The bracket operator [a b; c d] (Section 2.5 hint #3).
class MatrixExpr : public Expr {
public:
  MatrixExpr(std::vector<std::vector<Expr *>> Rows, SourceLoc Loc)
      : Expr(Kind::Matrix, Loc), Rows(std::move(Rows)) {}

  const std::vector<std::vector<Expr *>> &rows() const { return Rows; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Matrix; }

private:
  std::vector<std::vector<Expr *>> Rows;
};

/// name(args): array indexing or a function call, depending on how the
/// disambiguator resolves the base symbol. MATLAB syntax cannot tell these
/// apart (Section 2.1).
class IndexOrCallExpr : public Expr {
public:
  IndexOrCallExpr(IdentExpr *Base, std::vector<Expr *> Arguments,
                  SourceLoc Loc)
      : Expr(Kind::IndexOrCall, Loc), Base(Base), Args(std::move(Arguments)) {}

  IdentExpr *base() const { return Base; }
  const std::vector<Expr *> &args() const { return Args; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::IndexOrCall;
  }

private:
  IdentExpr *Base;
  std::vector<Expr *> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

using Block = std::vector<Stmt *>;

class Stmt {
public:
  enum class Kind : uint8_t {
    Expr,
    Assign,
    If,
    While,
    For,
    Break,
    Continue,
    Return,
    Clear,
  };

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : TheKind(K), Loc(Loc) {}
  ~Stmt() = default;

private:
  Kind TheKind;
  SourceLoc Loc;
};

/// An expression statement; displays its value unless suppressed with ';'.
class ExprStmt : public Stmt {
public:
  ExprStmt(Expr *E, bool Display, SourceLoc Loc)
      : Stmt(Kind::Expr, Loc), E(E), Display(Display) {}

  Expr *expr() const { return E; }
  bool displays() const { return Display; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Expr; }

private:
  Expr *E;
  bool Display;
};

/// One assignment target: a variable, possibly subscripted.
struct LValue {
  std::string Name;
  int VarSlot = -1;                 // filled by the disambiguator
  std::vector<Expr *> Indices;      // empty for x = ...
  bool HasParens = false;           // x() = ... (distinguishes x() from x)
  SourceLoc Loc;
};

/// x = rhs, x(i,j) = rhs, or [a, b] = f(...).
class AssignStmt : public Stmt {
public:
  AssignStmt(std::vector<LValue> Targets, Expr *RHS, bool Display,
             SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Targets(std::move(Targets)), RHS(RHS),
        Display(Display) {}

  const std::vector<LValue> &targets() const { return Targets; }
  std::vector<LValue> &targets() { return Targets; }
  Expr *rhs() const { return RHS; }
  bool displays() const { return Display; }
  bool isMulti() const { return Targets.size() > 1; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  std::vector<LValue> Targets;
  Expr *RHS;
  bool Display;
};

class IfStmt : public Stmt {
public:
  struct Branch {
    Expr *Cond;
    Block Body;
  };

  IfStmt(std::vector<Branch> Branches, Block Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Branches(std::move(Branches)),
        Else(std::move(Else)) {}

  const std::vector<Branch> &branches() const { return Branches; }
  const Block &elseBlock() const { return Else; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  std::vector<Branch> Branches;
  Block Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Block Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(Cond), Body(std::move(Body)) {}

  Expr *cond() const { return Cond; }
  const Block &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  Expr *Cond;
  Block Body;
};

class ForStmt : public Stmt {
public:
  ForStmt(std::string LoopVar, Expr *Iterand, Block Body, SourceLoc Loc)
      : Stmt(Kind::For, Loc), LoopVar(std::move(LoopVar)), Iterand(Iterand),
        Body(std::move(Body)) {}

  const std::string &loopVar() const { return LoopVar; }
  int loopVarSlot() const { return LoopVarSlot; }
  void setLoopVarSlot(int Slot) { LoopVarSlot = Slot; }
  Expr *iterand() const { return Iterand; }
  const Block &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  std::string LoopVar;
  int LoopVarSlot = -1;
  Expr *Iterand;
  Block Body;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(Kind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(Kind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Continue; }
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc Loc) : Stmt(Kind::Return, Loc) {}
  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

/// clear / clear x y: removes variables from the workspace.
class ClearStmt : public Stmt {
public:
  ClearStmt(std::vector<std::string> Names, SourceLoc Loc)
      : Stmt(Kind::Clear, Loc), Names(std::move(Names)) {}

  /// Empty means "clear everything".
  const std::vector<std::string> &names() const { return Names; }

  /// Slots of the named variables (parallel to names(), -1 when the name
  /// never denotes a variable); filled by the disambiguator.
  const std::vector<int> &slots() const { return Slots; }
  void setSlots(std::vector<int> S) { Slots = std::move(S); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Clear; }

private:
  std::vector<std::string> Names;
  std::vector<int> Slots;
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

/// Arena owning all AST nodes of a module.
class ASTContext {
public:
  template <typename T, typename... ArgTys> T *create(ArgTys &&...Args) {
    auto Node = std::make_unique<T>(std::forward<ArgTys>(Args)...);
    T *Ptr = Node.get();
    Nodes.push_back(
        std::unique_ptr<void, void (*)(void *)>(Node.release(), [](void *P) {
          delete static_cast<T *>(P);
        }));
    return Ptr;
  }

private:
  std::vector<std::unique_ptr<void, void (*)(void *)>> Nodes;
};

/// A single MATLAB function (or a script wrapped as a zero-argument one).
class Function {
public:
  Function(std::string Name, std::vector<std::string> Params,
           std::vector<std::string> Outs, bool IsScript)
      : Name(std::move(Name)), Params(std::move(Params)),
        Outs(std::move(Outs)), IsScript(IsScript) {}

  const std::string &name() const { return Name; }
  const std::vector<std::string> &params() const { return Params; }
  const std::vector<std::string> &outs() const { return Outs; }
  bool isScript() const { return IsScript; }

  Block &body() { return Body; }
  const Block &body() const { return Body; }

  /// Number of local variable slots; assigned by the disambiguator.
  unsigned numSlots() const { return NumSlots; }
  void setNumSlots(unsigned N) { NumSlots = N; }

  /// Slot of a parameter / output after disambiguation (-1 if unused).
  const std::vector<int> &paramSlots() const { return ParamSlots; }
  const std::vector<int> &outSlots() const { return OutSlots; }
  std::vector<int> &paramSlots() { return ParamSlots; }
  std::vector<int> &outSlots() { return OutSlots; }

  /// Source line count, used by the inliner's size heuristic.
  unsigned numLines() const { return NumLines; }
  void setNumLines(unsigned N) { NumLines = N; }

private:
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Outs;
  bool IsScript;
  Block Body;
  unsigned NumSlots = 0;
  unsigned NumLines = 0;
  std::vector<int> ParamSlots;
  std::vector<int> OutSlots;
};

/// One parsed .m file: a primary function plus subfunctions, or a script.
class Module {
public:
  explicit Module(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  ASTContext &context() { return Ctx; }

  Function *addFunction(std::unique_ptr<Function> F) {
    Functions.push_back(std::move(F));
    return Functions.back().get();
  }

  Function *mainFunction() const {
    return Functions.empty() ? nullptr : Functions.front().get();
  }

  /// Finds a function (primary or subfunction) by name; null if absent.
  Function *findFunction(const std::string &FnName) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

private:
  std::string Name;
  ASTContext Ctx;
  std::vector<std::unique_ptr<Function>> Functions;
};

} // namespace majic

#endif // MAJIC_AST_AST_H
