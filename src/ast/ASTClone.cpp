//===- ast/ASTClone.cpp - AST cloning with substitution ---------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTClone.h"

using namespace majic;

static const std::string &renamed(const CloneRemap &Remap,
                                  const std::string &Name) {
  auto It = Remap.RenameVar.find(Name);
  return It == Remap.RenameVar.end() ? Name : It->second;
}

Expr *majic::cloneExpr(ASTContext &Ctx, const Expr *E,
                       const CloneRemap &Remap) {
  if (!E)
    return nullptr;
  if (auto It = Remap.Replace.find(E); It != Remap.Replace.end())
    return It->second;

  SourceLoc Loc = E->getLoc();
  switch (E->getKind()) {
  case Expr::Kind::Number: {
    const auto *N = cast<NumberExpr>(E);
    return Ctx.create<NumberExpr>(N->value(), N->isImaginary(), Loc);
  }
  case Expr::Kind::String:
    return Ctx.create<StringExpr>(cast<StringExpr>(E)->value(), Loc);
  case Expr::Kind::Ident: {
    const auto *Id = cast<IdentExpr>(E);
    // Rename only occurrences that can denote variables; builtin and
    // user-function references keep their names.
    bool Renamable = Id->symKind() == SymKind::Variable ||
                     Id->symKind() == SymKind::Ambiguous ||
                     Id->symKind() == SymKind::Unresolved;
    auto *Clone = Ctx.create<IdentExpr>(
        Renamable ? renamed(Remap, Id->name()) : Id->name(), Loc);
    // Keep the classification (the inliner consults it before the clone is
    // re-disambiguated) but drop the slot, which is per-function.
    Clone->setSymKind(Id->symKind());
    return Clone;
  }
  case Expr::Kind::ColonWildcard:
    return Ctx.create<ColonWildcardExpr>(Loc);
  case Expr::Kind::EndRef:
    return Ctx.create<EndRefExpr>(Loc);
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return Ctx.create<UnaryExpr>(U->op(), cloneExpr(Ctx, U->operand(), Remap),
                                 Loc);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Ctx.create<BinaryExpr>(B->op(), cloneExpr(Ctx, B->lhs(), Remap),
                                  cloneExpr(Ctx, B->rhs(), Remap), Loc);
  }
  case Expr::Kind::ShortCircuit: {
    const auto *B = cast<ShortCircuitExpr>(E);
    return Ctx.create<ShortCircuitExpr>(B->isAnd(),
                                        cloneExpr(Ctx, B->lhs(), Remap),
                                        cloneExpr(Ctx, B->rhs(), Remap), Loc);
  }
  case Expr::Kind::Range: {
    const auto *R = cast<RangeExpr>(E);
    return Ctx.create<RangeExpr>(cloneExpr(Ctx, R->lo(), Remap),
                                 cloneExpr(Ctx, R->step(), Remap),
                                 cloneExpr(Ctx, R->hi(), Remap), Loc);
  }
  case Expr::Kind::Matrix: {
    const auto *M = cast<MatrixExpr>(E);
    std::vector<std::vector<Expr *>> Rows;
    for (const auto &Row : M->rows()) {
      std::vector<Expr *> NewRow;
      for (const Expr *Elem : Row)
        NewRow.push_back(cloneExpr(Ctx, Elem, Remap));
      Rows.push_back(std::move(NewRow));
    }
    return Ctx.create<MatrixExpr>(std::move(Rows), Loc);
  }
  case Expr::Kind::IndexOrCall: {
    const auto *IC = cast<IndexOrCallExpr>(E);
    auto *Base = cast<IdentExpr>(cloneExpr(Ctx, IC->base(), Remap));
    std::vector<Expr *> Arguments;
    for (const Expr *A : IC->args())
      Arguments.push_back(cloneExpr(Ctx, A, Remap));
    return Ctx.create<IndexOrCallExpr>(Base, std::move(Arguments), Loc);
  }
  }
  majic_unreachable("invalid expression kind");
}

Stmt *majic::cloneStmt(ASTContext &Ctx, const Stmt *S,
                       const CloneRemap &Remap) {
  SourceLoc Loc = S->getLoc();
  switch (S->getKind()) {
  case Stmt::Kind::Expr: {
    const auto *ES = cast<ExprStmt>(S);
    return Ctx.create<ExprStmt>(cloneExpr(Ctx, ES->expr(), Remap),
                                ES->displays(), Loc);
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    std::vector<LValue> Targets;
    for (const LValue &LV : A->targets()) {
      LValue NewLV;
      NewLV.Name = renamed(Remap, LV.Name);
      NewLV.HasParens = LV.HasParens;
      NewLV.Loc = LV.Loc;
      for (const Expr *Idx : LV.Indices)
        NewLV.Indices.push_back(cloneExpr(Ctx, Idx, Remap));
      Targets.push_back(std::move(NewLV));
    }
    return Ctx.create<AssignStmt>(std::move(Targets),
                                  cloneExpr(Ctx, A->rhs(), Remap),
                                  A->displays(), Loc);
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    std::vector<IfStmt::Branch> Branches;
    for (const IfStmt::Branch &Br : If->branches())
      Branches.push_back({cloneExpr(Ctx, Br.Cond, Remap),
                          cloneBlock(Ctx, Br.Body, Remap)});
    return Ctx.create<IfStmt>(std::move(Branches),
                              cloneBlock(Ctx, If->elseBlock(), Remap), Loc);
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return Ctx.create<WhileStmt>(cloneExpr(Ctx, W->cond(), Remap),
                                 cloneBlock(Ctx, W->body(), Remap), Loc);
  }
  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    return Ctx.create<ForStmt>(renamed(Remap, F->loopVar()),
                               cloneExpr(Ctx, F->iterand(), Remap),
                               cloneBlock(Ctx, F->body(), Remap), Loc);
  }
  case Stmt::Kind::Break:
    return Ctx.create<BreakStmt>(Loc);
  case Stmt::Kind::Continue:
    return Ctx.create<ContinueStmt>(Loc);
  case Stmt::Kind::Return:
    return Ctx.create<ReturnStmt>(Loc);
  case Stmt::Kind::Clear: {
    const auto *C = cast<ClearStmt>(S);
    std::vector<std::string> Names;
    for (const std::string &N : C->names())
      Names.push_back(renamed(Remap, N));
    return Ctx.create<ClearStmt>(std::move(Names), Loc);
  }
  }
  majic_unreachable("invalid statement kind");
}

Block majic::cloneBlock(ASTContext &Ctx, const Block &B,
                        const CloneRemap &Remap) {
  Block Out;
  Out.reserve(B.size());
  for (const Stmt *S : B)
    Out.push_back(cloneStmt(Ctx, S, Remap));
  return Out;
}
