//===- repo/RepoStore.h - Persistent code repository -----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk half of the code repository (Section 2: a "database of
/// compiled code" that snoops source directories and maintains dependency
/// information between source and object code - i.e. compiled code is
/// meant to outlive a session). One file per compiled version, named
/// `<function>.<sighash>.mjo`, written crash-safely (temp file + fsync +
/// atomic rename; see support/AtomicFile.h).
///
/// Every file carries a header with a format version, the engine build
/// stamp, the source .m file's content hash, and a CRC32 of the payload.
/// Loading walks a validation ladder - magic, format version, build stamp,
/// payload size, checksum, bounds-checked decode - and any rung that fails
/// quarantines the file (renamed to `*.corrupt`, or deleted for benign
/// version/build skew) and the engine transparently recompiles. Corruption
/// degrades to a cold compile, never a crash or a wrong answer.
///
/// Thread-safe: saves run on the engine's idle-priority pool while the
/// interactive thread may be erasing entries for a reloaded function.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_REPO_REPOSTORE_H
#define MAJIC_REPO_REPOSTORE_H

#include "repo/Repository.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace majic {

/// Observability counters for the persistent store.
struct RepoStoreStats {
  uint64_t Saved = 0;        ///< entries written successfully
  uint64_t SaveFailures = 0; ///< saves that failed (I/O or injected fault)
  uint64_t Loaded = 0;       ///< entries that passed the validation ladder
  uint64_t Quarantined = 0;  ///< corrupt files renamed to *.corrupt
  uint64_t Skewed = 0;       ///< discarded for format/build-stamp skew
  uint64_t StaleSource = 0;  ///< discarded because the source hash drifted
  uint64_t Adopted = 0;      ///< loaded entries published to the repository
  uint64_t SweptTemps = 0;   ///< leftover temp files removed at startup
  uint64_t ProfilesSaved = 0;        ///< profile summary files written
  uint64_t ProfileSaveFailures = 0;  ///< profile writes that failed
  uint64_t ProfilesLoaded = 0;       ///< function summaries read back
  uint64_t ProfilesQuarantined = 0;  ///< corrupt profile files renamed
  uint64_t ProfilesSkewed = 0;       ///< profile files dropped for skew
  uint64_t NativeSaved = 0;          ///< native (.mjn) entries written
  uint64_t NativeSaveFailures = 0;   ///< native saves that failed
  uint64_t NativeLoaded = 0;         ///< native entries that validated
  uint64_t NativeQuarantined = 0;    ///< corrupt native files renamed
  uint64_t NativeSkewed = 0;         ///< native files dropped for skew
  uint64_t NativeUntrusted = 0;      ///< native loads refused: dir not private
};

class RepoStore {
public:
  /// Opens (creating if needed) the store directory. A directory that
  /// cannot be created leaves the store disabled: saves fail soft.
  explicit RepoStore(std::string Dir);

  /// Removes temp files a crashed save left behind. Returns the count.
  unsigned sweepTemps();

  /// One validated entry read back from disk.
  struct Entry {
    CompiledObject Obj;
    uint64_t SourceHash = 0; ///< content hash of the source .m definition
    std::string Path;        ///< the file it came from
  };

  /// Reads and validates every entry in the store. Files failing the
  /// validation ladder are quarantined or discarded (see stats()); this
  /// never throws and never crashes, whatever the bytes on disk are.
  std::vector<Entry> loadAll();

  /// Persists one compiled version (crash-safely; replaces any previous
  /// file for the same function + signature). Returns false on failure -
  /// saving is best-effort, a failed save only costs a future recompile.
  bool save(const CompiledObject &Obj, uint64_t SourceHash);

  /// Deletes every on-disk version of \p FunctionName.
  void erase(const std::string &FunctionName);

  /// Deletes one entry file (stale-source cleanup at adoption time).
  void discardStale(const std::string &Path);

  /// Bumps the Adopted counter (the engine decides adoption; the store
  /// keeps the statistic so warm-start behavior is observable in one place).
  void noteAdopted();

  /// One persisted observed signature: the serialized type signature plus
  /// its call count. SigStr is re-rendered from the signature at load time
  /// (the rendering is deterministic, so it round-trips with the string
  /// keys FunctionProfiles uses).
  struct ProfileSig {
    TypeSignature Sig;
    std::string SigStr;
    uint64_t Count = 0;
  };

  /// One function's persisted profile summary.
  struct ProfileSummary {
    std::string Name;
    uint64_t Invocations = 0;
    uint64_t OtherSignatures = 0;
    std::vector<ProfileSig> Sigs; ///< most-called first, <= kProfileTopK
  };

  /// Signatures persisted per function (mirrors the in-memory cap).
  static constexpr size_t kProfileTopK = 16;

  /// Name of the single profile summary file inside the store directory.
  static constexpr const char *kProfileFileName = "profiles.mjp";

  /// Atomically replaces the profile summary file. Best-effort like
  /// save(): a failed write only costs next session's hot-first ordering.
  bool saveProfiles(const std::vector<ProfileSummary> &Profiles);

  /// Reads the profile summary file through the same validation ladder as
  /// .mjo entries (magic, format version, build stamp, payload size, CRC32,
  /// bounds-checked decode). A corrupt file is quarantined (*.corrupt), a
  /// build/format-skewed one deleted; either way this returns empty and
  /// the session cold-starts its profile. Never throws.
  std::vector<ProfileSummary> loadProfiles();

  /// Full path of the profile summary file (even when the store directory
  /// could not be created).
  std::string profilePath() const;

  /// Serialized image of a profile summary file; exposed for fuzz tests.
  static std::string encodeProfiles(const std::vector<ProfileSummary> &Ps);

  //===--------------------------------------------------------------------===//
  // Native payloads (.mjn): machine code beside the IR
  //===--------------------------------------------------------------------===//

  /// One validated native shared object read back from disk. The .so bytes
  /// are opaque to the store; the engine dlopens them (or falls back to
  /// the VM if that fails - the repository never vouches for more than
  /// byte integrity).
  ///
  /// Trust model: CRC32 is integrity, not authenticity, and dlopen'ing a
  /// payload is arbitrary code execution - a step up from the data-only
  /// .mjo files, whose worst case is a bounds-checked decode failure. So
  /// native payloads are only saved to and loaded from a directory private
  /// to this user: owned by the effective uid and neither group- nor
  /// world-writable (see nativeTrusted()). An untrusted directory degrades
  /// to cold native compiles; .mjo traffic is unaffected.
  struct NativeEntry {
    std::string FunctionName;
    TypeSignature Sig;
    uint32_t NumOuts = 0;          ///< entry-point output arity
    std::string SoBytes;           ///< the ELF image, verbatim
    uint64_t SourceHash = 0;       ///< content hash of the source .m text
    std::string Path;              ///< the file it came from
  };

  /// Folds tier-specific facts (native ABI version, compiler identity)
  /// into the build stamp used for .mjn files only. Machine code is an
  /// even narrower ABI than serialized IR: a compiler upgrade or an ABI
  /// bump invalidates the cached .so while the .mjo beside it stays good,
  /// so the two payload kinds carry different stamps. Call once before
  /// any native save/load; defaults to 0 (still a valid stamp - entries
  /// written under a different extra are discarded as skew).
  void setNativeStampExtra(uint64_t Extra);

  /// Persists one compiled shared object crash-safely beside the .mjo for
  /// the same function + signature. Best-effort like save().
  bool saveNative(const std::string &FunctionName, const TypeSignature &Sig,
                  uint32_t NumOuts, const std::string &SoBytes,
                  uint64_t SourceHash);

  /// Reads and validates every .mjn entry through the same ladder as
  /// loadAll() (magic, format version, native build stamp, payload size,
  /// CRC32, bounds-checked decode; *.corrupt quarantine on failure).
  std::vector<NativeEntry> loadAllNative();

  /// Deletes every on-disk native version of \p FunctionName (runtime
  /// quarantine or source turnover; the .mjo files are left alone).
  void eraseNative(const std::string &FunctionName);

  /// Serialized file image of one native entry; exposed so the loader
  /// fuzz tests can corrupt known-good bytes. \p StampExtra plays the
  /// role of setNativeStampExtra for the static encoder.
  static std::string encodeNative(const std::string &FunctionName,
                                  const TypeSignature &Sig, uint32_t NumOuts,
                                  const std::string &SoBytes,
                                  uint64_t SourceHash, uint64_t StampExtra);

  RepoStoreStats stats() const;

  /// Whether the store directory is private enough to carry machine code:
  /// owned by the effective uid, no group/world write bit. Checked once at
  /// construction; false gates saveNative/loadAllNative, never .mjo files.
  bool nativeTrusted() const { return NativeTrusted; }

  const std::string &directory() const { return Dir; }

  /// Serialized file image of one entry (header + payload); exposed so the
  /// loader fuzz tests can corrupt known-good bytes.
  static std::string encode(const CompiledObject &Obj, uint64_t SourceHash);

private:
  std::string entryPath(const CompiledObject &Obj) const;
  std::string nativePath(const std::string &FunctionName,
                         const TypeSignature &Sig) const;

  std::string Dir;
  bool Usable = false;
  bool NativeTrusted = false; ///< see nativeTrusted()
  uint64_t NativeExtra = 0; ///< see setNativeStampExtra
  mutable std::mutex Mutex; ///< guards Stats (file ops are atomic already)
  RepoStoreStats Stats;
};

} // namespace majic

#endif // MAJIC_REPO_REPOSTORE_H
