//===- repo/Snooper.cpp - Source directory snooping -----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/Snooper.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

using namespace majic;
namespace fs = std::filesystem;

void SourceSnooper::watchDirectory(const std::string &Dir) {
  if (std::find(Dirs.begin(), Dirs.end(), Dir) == Dirs.end())
    Dirs.push_back(Dir);
}

std::vector<SourceSnooper::Change> SourceSnooper::scan() {
  std::vector<Change> Changes;
  std::unordered_set<std::string> Seen;
  for (const std::string &Dir : Dirs) {
    std::error_code EC;
    for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, EC)) {
      if (EC)
        break;
      if (!Entry.is_regular_file() || Entry.path().extension() != ".m")
        continue;
      std::string Path = Entry.path().string();
      auto MTime = Entry.last_write_time(EC);
      if (EC)
        continue;
      Seen.insert(Path);
      int64_t Stamp = static_cast<int64_t>(
          MTime.time_since_epoch().count());
      auto It = LastMTime.find(Path);
      bool IsNew = It == LastMTime.end();
      if (!IsNew && It->second == Stamp)
        continue;
      LastMTime[Path] = Stamp;
      Changes.push_back({Path, Entry.path().stem().string(),
                         IsNew ? Change::Kind::Added : Change::Kind::Modified,
                         Stamp});
    }
  }
  // A file we reported before that no longer exists was removed (this also
  // covers a watched directory disappearing wholesale); the engine must
  // stop serving its compiled versions.
  for (auto It = LastMTime.begin(); It != LastMTime.end();) {
    if (Seen.count(It->first)) {
      ++It;
      continue;
    }
    Changes.push_back({It->first, fs::path(It->first).stem().string(),
                       Change::Kind::Removed, It->second});
    It = LastMTime.erase(It);
  }
  // Deterministic processing order.
  std::sort(Changes.begin(), Changes.end(),
            [](const Change &A, const Change &B) { return A.Path < B.Path; });
  return Changes;
}
