//===- repo/Snooper.cpp - Source directory snooping -----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/Snooper.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

using namespace majic;
namespace fs = std::filesystem;

void SourceSnooper::watchDirectory(const std::string &Dir) {
  if (std::find(Dirs.begin(), Dirs.end(), Dir) == Dirs.end())
    Dirs.push_back(Dir);
}

std::vector<SourceSnooper::Change> SourceSnooper::scan() {
  std::vector<Change> Changes;
  std::unordered_set<std::string> Seen;
  // Directories whose listing failed for any reason other than genuine
  // absence. A file we cannot enumerate is not a file that was deleted: a
  // transient EPERM / EIO / NFS hiccup must never be reported as Removed,
  // because the engine reacts to Removed by dropping the function and
  // erasing its persistent cache entries.
  std::vector<std::string> Unreadable;
  for (const std::string &Dir : Dirs) {
    std::error_code EC;
    fs::directory_iterator It(Dir, EC), End;
    if (EC) {
      // A directory that is genuinely gone means its files are gone too
      // (wholesale removal); any other failure makes it unreadable.
      if (EC != std::errc::no_such_file_or_directory &&
          EC != std::errc::not_a_directory)
        Unreadable.push_back(Dir);
      continue;
    }
    while (It != End) {
      const fs::directory_entry &Entry = *It;
      const fs::path &P = Entry.path();
      if (P.extension() == ".m") {
        std::string Path = P.string();
        std::error_code StEC;
        bool Regular = Entry.is_regular_file(StEC);
        if (StEC) {
          // The directory listed the name, so it exists; a failed stat
          // only means we learn nothing new about it this scan.
          Seen.insert(Path);
        } else if (Regular) {
          Seen.insert(Path);
          std::error_code MtEC;
          auto MTime = Entry.last_write_time(MtEC);
          if (!MtEC) {
            int64_t Stamp =
                static_cast<int64_t>(MTime.time_since_epoch().count());
            auto Known = LastMTime.find(Path);
            bool IsNew = Known == LastMTime.end();
            if (IsNew || Known->second != Stamp) {
              LastMTime[Path] = Stamp;
              Changes.push_back({Path, P.stem().string(),
                                 IsNew ? Change::Kind::Added
                                       : Change::Kind::Modified,
                                 Stamp});
            }
          }
        }
      }
      // The non-throwing increment: a mid-listing error leaves the rest of
      // the directory unseen, which must not read as mass deletion (and
      // the throwing operator++ would propagate out of scan()).
      It.increment(EC);
      if (EC) {
        Unreadable.push_back(Dir);
        break;
      }
    }
  }
  // A file we reported before that no longer exists was removed (this also
  // covers a watched directory disappearing wholesale); the engine must
  // stop serving its compiled versions. Files under a directory whose
  // listing failed are exempt: absence of evidence only.
  auto UnderUnreadable = [&](const std::string &Path) {
    for (const std::string &Dir : Unreadable)
      if (Path.compare(0, Dir.size(), Dir) == 0)
        return true;
    return false;
  };
  for (auto It = LastMTime.begin(); It != LastMTime.end();) {
    if (Seen.count(It->first) || UnderUnreadable(It->first)) {
      ++It;
      continue;
    }
    Changes.push_back({It->first, fs::path(It->first).stem().string(),
                       Change::Kind::Removed, It->second});
    It = LastMTime.erase(It);
  }
  // Deterministic processing order.
  std::sort(Changes.begin(), Changes.end(),
            [](const Change &A, const Change &B) { return A.Path < B.Path; });
  return Changes;
}
