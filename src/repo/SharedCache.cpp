//===- repo/SharedCache.cpp - Cross-session compiled-code cache ------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/SharedCache.h"

#include <cstdio>

using namespace majic;

std::string SharedCodeCache::key(const std::string &Name, uint64_t SrcHash,
                                 uint64_t CfgHash, CodeGenMode Mode,
                                 bool Optimistic, const TypeSignature &Sig) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "|%016llx|%016llx|%u%c|",
                static_cast<unsigned long long>(SrcHash),
                static_cast<unsigned long long>(CfgHash),
                static_cast<unsigned>(Mode), Optimistic ? 'o' : 'p');
  return Name + Buf + Sig.str();
}

CompiledObjectPtr SharedCodeCache::lookup(const std::string &Key) const {
  {
    std::shared_lock<std::shared_mutex> L(Mutex);
    auto It = Table.find(Key);
    if (It != Table.end()) {
      HitsCount.inc();
      return It->second;
    }
  }
  MissesCount.inc();
  return nullptr;
}

bool SharedCodeCache::publish(const std::string &Key, CompiledObjectPtr Obj,
                              uint64_t SrcHash) {
  if (!Obj)
    return false;
  {
    std::unique_lock<std::shared_mutex> L(Mutex);
    auto [It, Inserted] = Table.emplace(Key, Obj);
    (void)It;
    if (!Inserted) {
      DuplicatesCount.inc();
      return false;
    }
    Order.push_back(Key);
    PublishedCount.inc();
    while (Capacity && Table.size() > Capacity) {
      Table.erase(Order.front());
      Order.pop_front();
      EvictionsCount.inc();
    }
  }
  if (OnPublish)
    OnPublish(Obj, SrcHash);
  return true;
}

size_t SharedCodeCache::size() const {
  std::shared_lock<std::shared_mutex> L(Mutex);
  return Table.size();
}
