//===- repo/SharedCache.cpp - Cross-session compiled-code cache ------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/SharedCache.h"

#include <cstdio>

using namespace majic;

std::string SharedCodeCache::key(const std::string &Name, uint64_t SrcHash,
                                 uint64_t CfgHash, CodeGenMode Mode,
                                 bool Optimistic, const TypeSignature &Sig) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "|%016llx|%016llx|%u%c|",
                static_cast<unsigned long long>(SrcHash),
                static_cast<unsigned long long>(CfgHash),
                static_cast<unsigned>(Mode), Optimistic ? 'o' : 'p');
  return Name + Buf + Sig.str();
}

CompiledObjectPtr SharedCodeCache::lookup(const std::string &Key) const {
  {
    std::shared_lock<std::shared_mutex> L(Mutex);
    auto It = Table.find(Key);
    if (It != Table.end()) {
      It->second.Hits.fetch_add(1, std::memory_order_relaxed);
      HitsCount.inc();
      return It->second.Obj;
    }
  }
  MissesCount.inc();
  return nullptr;
}

bool SharedCodeCache::publish(const std::string &Key, CompiledObjectPtr Obj,
                              uint64_t SrcHash) {
  if (!Obj)
    return false;
  {
    std::unique_lock<std::shared_mutex> L(Mutex);
    auto [It, Inserted] = Table.try_emplace(Key);
    if (!Inserted) {
      DuplicatesCount.inc();
      return false;
    }
    It->second.Obj = Obj;
    It->second.Seq = NextSeq++;
    PublishedCount.inc();
    // Evict the least-hit entry (insertion order breaks ties), sparing
    // the fresh insert: it has zero hits by construction, but the session
    // that just compiled it is about to use it - churning it straight
    // back out would turn the cap into a compile amplifier. The scan is
    // O(n), but publishes are as rare as compiles; lookups, the hot path,
    // stay on the shared lock.
    while (Capacity && Table.size() > Capacity) {
      auto Victim = Table.end();
      uint64_t VictimHits = 0;
      for (auto VI = Table.begin(); VI != Table.end(); ++VI) {
        if (VI == It)
          continue;
        uint64_t H = VI->second.Hits.load(std::memory_order_relaxed);
        if (Victim == Table.end() || H < VictimHits ||
            (H == VictimHits && VI->second.Seq < Victim->second.Seq)) {
          Victim = VI;
          VictimHits = H;
        }
      }
      if (Victim == Table.end())
        break; // capacity 1: the fresh insert is the whole cache
      Table.erase(Victim);
      EvictionsCount.inc();
    }
  }
  if (OnPublish)
    OnPublish(Obj, SrcHash);
  return true;
}

size_t SharedCodeCache::size() const {
  std::shared_lock<std::shared_mutex> L(Mutex);
  return Table.size();
}
