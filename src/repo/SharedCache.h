//===- repo/SharedCache.h - Cross-session compiled-code cache --*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide compiled-code cache behind the multi-session service:
/// one compile serves every session that hits the same (function source,
/// signature, codegen configuration). Each session keeps its own
/// Repository (the function locator's subtype matching stays per-session
/// and unsynchronized on the hot lookup path); this cache sits behind the
/// compile path - before a session compiles, it asks the cache; after a
/// session compiles, it publishes.
///
/// Safety against poisoning: the key includes the full source hash and a
/// hash of the codegen-relevant engine options, so a session whose source
/// text or options differ can never be served - or plant - code that is
/// wrong for another session. CompiledObject code bodies are immutable
/// (`shared_ptr<const IRFunction>`), so sharing one across engines is
/// data-race-free by construction.
///
/// Publication is keep-first: when two sessions race to compile the same
/// key, the second publish is dropped and counted as a duplicate - both
/// objects are equally valid, and keep-first means a reader never sees a
/// key's value change underneath it.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_REPO_SHAREDCACHE_H
#define MAJIC_REPO_SHAREDCACHE_H

#include "repo/Repository.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace majic {

class SharedCodeCache {
public:
  /// \p Capacity caps the number of cached objects; 0 means unlimited.
  /// Over capacity, the entry with the fewest lookup hits goes first
  /// (insertion order breaks ties, and the entry being published is
  /// spared - evicting the thing you just paid to compile defeats the
  /// cache), mirroring Repository's own eviction semantics: a hot entry
  /// survives any flood of cold ones.
  explicit SharedCodeCache(size_t Capacity = 4096) : Capacity(Capacity) {}

  SharedCodeCache(const SharedCodeCache &) = delete;
  SharedCodeCache &operator=(const SharedCodeCache &) = delete;

  /// Builds the cache key for one compiled version. \p SrcHash must cover
  /// the function's full source text and \p CfgHash the codegen-relevant
  /// engine options (Engine::sharedCacheConfigHash). \p Optimistic is part
  /// of the key: a deoptimizing session recompiles pessimistically and
  /// must not be handed the optimistic object back.
  static std::string key(const std::string &Name, uint64_t SrcHash,
                         uint64_t CfgHash, CodeGenMode Mode, bool Optimistic,
                         const TypeSignature &Sig);

  /// Returns the cached object for \p Key, or null. Counts a hit or miss.
  CompiledObjectPtr lookup(const std::string &Key) const;

  /// Publishes \p Obj under \p Key. Keep-first: returns false (and counts
  /// a duplicate) when the key is already present. The publish hook, when
  /// set, runs outside the cache lock for every accepted publish.
  bool publish(const std::string &Key, CompiledObjectPtr Obj,
               uint64_t SrcHash);

  /// Installs a hook observing accepted publishes (the service persists
  /// them to the shared RepoStore). Set once, before concurrent use.
  void setOnPublish(
      std::function<void(const CompiledObjectPtr &, uint64_t SrcHash)> Hook) {
    OnPublish = std::move(Hook);
  }

  size_t size() const;

  uint64_t hits() const { return HitsCount.value(); }
  uint64_t misses() const { return MissesCount.value(); }
  uint64_t published() const { return PublishedCount.value(); }
  uint64_t duplicates() const { return DuplicatesCount.value(); }
  uint64_t evictions() const { return EvictionsCount.value(); }

  /// Registers the cache's counters under "shared_cache.*". The registry
  /// borrows the instruments; the cache must outlive the registry's use.
  void registerMetrics(obs::MetricsRegistry &Registry) const {
    Registry.registerCounter("shared_cache.hits", HitsCount);
    Registry.registerCounter("shared_cache.misses", MissesCount);
    Registry.registerCounter("shared_cache.published", PublishedCount);
    Registry.registerCounter("shared_cache.duplicates", DuplicatesCount);
    Registry.registerCounter("shared_cache.evictions", EvictionsCount);
  }

private:
  struct Slot {
    CompiledObjectPtr Obj;
    /// Lookup hits on this entry; atomic because lookups bump it under
    /// the *shared* lock.
    mutable std::atomic<uint64_t> Hits{0};
    uint64_t Seq = 0; ///< insertion order, the eviction tie-break
  };

  const size_t Capacity;
  mutable std::shared_mutex Mutex;
  std::unordered_map<std::string, Slot> Table;
  uint64_t NextSeq = 0;
  std::function<void(const CompiledObjectPtr &, uint64_t)> OnPublish;
  mutable obs::Counter HitsCount;
  mutable obs::Counter MissesCount;
  mutable obs::Counter PublishedCount;
  mutable obs::Counter DuplicatesCount;
  mutable obs::Counter EvictionsCount;
};

} // namespace majic

#endif // MAJIC_REPO_SHAREDCACHE_H
