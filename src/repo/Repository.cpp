//===- repo/Repository.cpp - The code repository --------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/Repository.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <mutex>

using namespace majic;

CompiledObjectPtr Repository::lookup(const std::string &Name,
                                     const TypeSignature &Invocation) const {
  std::shared_lock<std::shared_mutex> L(Mutex);
  auto It = Table.find(Name);
  if (It == Table.end()) {
    MissesNoFunction.inc();
    return nullptr;
  }
  const std::shared_ptr<CompiledObject> *Best = nullptr;
  double BestDistance = 0;
  for (const std::shared_ptr<CompiledObject> &Obj : It->second) {
    if (!Invocation.safeFor(Obj->Sig))
      continue;
    double D = Invocation.distance(Obj->Sig);
    if (!Best || D < BestDistance) {
      Best = &Obj;
      BestDistance = D;
    }
  }
  if (!Best) {
    MissesNoSafeVersion.inc();
    return nullptr;
  }
  HitsCount.inc();
  (*Best)->Hits.fetch_add(1, std::memory_order_relaxed);
  return *Best;
}

void Repository::insert(CompiledObject Obj) {
  faults::maybeThrow(faults::Site::RepoInsert);
  auto New = std::make_shared<CompiledObject>(std::move(Obj));
  std::unique_lock<std::shared_mutex> L(Mutex);
  CompileSecondsTotal += New->CompileSeconds;
  std::vector<std::shared_ptr<CompiledObject>> &Versions =
      Table[New->FunctionName];
  for (std::shared_ptr<CompiledObject> &Existing : Versions) {
    if (Existing->Sig == New->Sig) {
      // Recompilation of an existing signature: the object is new but the
      // version's usage history is not; carry the hit count over.
      New->Hits.store(Existing->Hits.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      Existing = std::move(New);
      return;
    }
  }
  Versions.push_back(std::move(New));
  // Evict least-used versions down to the cap, sparing the entry just
  // pushed: evicting a 0-hit newcomer would immediately re-miss and
  // recompile the same signature, livelocking the compile pipeline.
  while (VersionCap && Versions.size() > VersionCap) {
    size_t Victim = 0;
    uint64_t VictimHits = UINT64_MAX;
    for (size_t I = 0; I + 1 < Versions.size(); ++I) {
      uint64_t H = Versions[I]->Hits.load(std::memory_order_relaxed);
      if (H < VictimHits) {
        Victim = I;
        VictimHits = H;
      }
    }
    Versions.erase(Versions.begin() + Victim);
    EvictionsCount.inc();
  }
}

void Repository::setVersionCap(size_t Cap) {
  std::unique_lock<std::shared_mutex> L(Mutex);
  VersionCap = Cap;
}

void Repository::invalidate(const std::string &Name) {
  std::unique_lock<std::shared_mutex> L(Mutex);
  Table.erase(Name);
}

std::vector<CompiledObjectPtr>
Repository::versions(const std::string &Name) const {
  std::shared_lock<std::shared_mutex> L(Mutex);
  std::vector<CompiledObjectPtr> Out;
  auto It = Table.find(Name);
  if (It == Table.end())
    return Out;
  Out.assign(It->second.begin(), It->second.end());
  return Out;
}

size_t Repository::versionCount(const std::string &Name) const {
  std::shared_lock<std::shared_mutex> L(Mutex);
  auto It = Table.find(Name);
  return It == Table.end() ? 0 : It->second.size();
}

size_t Repository::totalObjects() const {
  std::shared_lock<std::shared_mutex> L(Mutex);
  size_t N = 0;
  for (const auto &[Name, Versions] : Table)
    N += Versions.size();
  return N;
}

double Repository::totalCompileSeconds() const {
  std::unique_lock<std::shared_mutex> L(Mutex);
  return CompileSecondsTotal;
}
