//===- repo/Repository.cpp - The code repository --------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/Repository.h"

using namespace majic;

const CompiledObject *Repository::lookup(const std::string &Name,
                                         const TypeSignature &Invocation) const {
  auto It = Table.find(Name);
  if (It == Table.end()) {
    ++Misses;
    return nullptr;
  }
  const CompiledObject *Best = nullptr;
  double BestDistance = 0;
  for (const CompiledObject &Obj : It->second) {
    if (!Invocation.safeFor(Obj.Sig))
      continue;
    double D = Invocation.distance(Obj.Sig);
    if (!Best || D < BestDistance) {
      Best = &Obj;
      BestDistance = D;
    }
  }
  if (!Best) {
    ++Misses;
    return nullptr;
  }
  ++HitsCount;
  ++Best->Hits;
  return Best;
}

void Repository::insert(CompiledObject Obj) {
  std::vector<CompiledObject> &Versions = Table[Obj.FunctionName];
  for (CompiledObject &Existing : Versions) {
    if (Existing.Sig == Obj.Sig) {
      Existing = std::move(Obj);
      return;
    }
  }
  Versions.push_back(std::move(Obj));
}

void Repository::invalidate(const std::string &Name) { Table.erase(Name); }

const std::vector<CompiledObject> *
Repository::versions(const std::string &Name) const {
  auto It = Table.find(Name);
  return It == Table.end() ? nullptr : &It->second;
}

size_t Repository::totalObjects() const {
  size_t N = 0;
  for (const auto &[Name, Versions] : Table)
    N += Versions.size();
  return N;
}
