//===- repo/RepoStore.cpp - Persistent code repository ----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/RepoStore.h"

#include "ir/Serialize.h"
#include "obs/Trace.h"
#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <filesystem>

#include <sys/stat.h>
#include <unistd.h>

using namespace majic;
namespace fs = std::filesystem;

namespace {

constexpr uint32_t kMagic = 0x4d4a4f42u; // "MJOB"
constexpr uint32_t kFormatVersion = 1;
constexpr const char *kExtension = ".mjo";
constexpr uint32_t kProfileMagic = 0x4d4a5046u; // "MJPF"
constexpr uint32_t kProfileFormatVersion = 1;
constexpr const char *kProfileExtension = ".mjp";
constexpr uint32_t kNativeMagic = 0x4d4a4e42u; // "MJNB"
constexpr uint32_t kNativeFormatVersion = 1;
constexpr const char *kNativeExtension = ".mjn";
/// Refuse to slurp absurdly large files: a cache entry is a few KB; a
/// multi-megabyte one is damage, not data.
constexpr uint64_t kMaxFileBytes = 64ull << 20;

/// The engine build stamp: compiled code is an internal ABI (IR opcodes,
/// register layout, VM semantics), so entries written under a different
/// ABI are discarded rather than decoded. The stamp derives from
/// ser::kCodeABIVersion - a constant bumped by hand with semantic changes -
/// plus mechanical facts of the opcode set that catch the most common
/// drift (adding an opcode, widening an instruction) automatically. A
/// compilation timestamp would do neither job: under incremental builds it
/// churns without a semantic change and, worse, stays fixed when a
/// semantic change lands in a translation unit this file never includes.
uint64_t buildStamp() {
  struct {
    uint32_t Abi;
    uint32_t MaxOpcode;
    uint32_t InstrBytes;
    uint32_t TypeBytes;
  } Facts = {ser::kCodeABIVersion, static_cast<uint32_t>(Opcode::PSpSt),
             static_cast<uint32_t>(sizeof(Instr)),
             static_cast<uint32_t>(sizeof(Type))};
  return hashing::fnv1a(&Facts, sizeof(Facts),
                        hashing::fnv1a("majic-repo-abi"));
}

/// The native payload stamp: machine code is a narrower ABI than
/// serialized IR (it bakes in the marshalling struct layout, the shim
/// table order, and the compiler that produced it), so .mjn files fold
/// the engine-supplied extra - native ABI version plus a hash of the C
/// compiler's identification line - on top of the code stamp. A compiler
/// upgrade invalidates the cached .so while the .mjo beside it survives.
uint64_t nativeStamp(uint64_t Extra) {
  struct {
    uint64_t Base;
    uint64_t Extra;
  } Facts = {buildStamp(), Extra};
  return hashing::fnv1a(&Facts, sizeof(Facts),
                        hashing::fnv1a("majic-native-abi"));
}

std::string sigHashHex(const TypeSignature &Sig) {
  ser::ByteWriter SigBytes;
  ser::writeTypeSignature(SigBytes, Sig);
  return format("%016llx", static_cast<unsigned long long>(
                               hashing::fnv1a(SigBytes.bytes())));
}

std::string payloadBytes(const CompiledObject &Obj) {
  ser::ByteWriter W;
  W.str(Obj.FunctionName);
  ser::writeTypeSignature(W, Obj.Sig);
  W.u8(static_cast<uint8_t>(Obj.Mode));
  W.u8(static_cast<uint8_t>(Obj.From));
  W.f64(Obj.CompileSeconds);
  ser::writeIRFunction(W, *Obj.Code);
  return W.take();
}

CompiledObject decodePayload(ser::ByteReader &R) {
  CompiledObject Obj;
  Obj.FunctionName = R.str();
  Obj.Sig = ser::readTypeSignature(R);
  uint8_t Mode = R.u8();
  if (Mode > static_cast<uint8_t>(CodeGenMode::Generic))
    throw ser::SerializeError("invalid codegen mode");
  Obj.Mode = static_cast<CodeGenMode>(Mode);
  uint8_t From = R.u8();
  if (From > static_cast<uint8_t>(CompiledObject::Origin::Generic))
    throw ser::SerializeError("invalid origin");
  Obj.From = static_cast<CompiledObject::Origin>(From);
  Obj.CompileSeconds = R.f64();
  Obj.Code = std::make_shared<IRFunction>(ser::readIRFunction(R));
  if (!R.atEnd())
    throw ser::SerializeError("trailing bytes after payload");
  if (Obj.Code->Name != Obj.FunctionName)
    throw ser::SerializeError("function name mismatch");
  return Obj;
}

/// A function name is a MATLAB identifier ([A-Za-z_][A-Za-z0-9_]*), which
/// is filesystem-safe by construction; anything else never reaches the
/// repository, but check anyway so a hostile name cannot escape the dir.
bool safeFileName(const std::string &Name) {
  if (Name.empty())
    return false;
  for (char C : Name)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_'))
      return false;
  return true;
}

/// Whether \p Dir is private enough to carry machine code: owned by the
/// effective uid and neither group- nor world-writable. The validation
/// ladder proves the bytes are intact, not who wrote them - and a .mjn
/// payload gets dlopen'ed, so anyone who can write the directory can run
/// code in the engine process. Data-only .mjo entries are not held to
/// this bar: their worst case is a bounds-checked decode failure.
bool dirTrustedForNative(const std::string &Dir) {
  struct stat St;
  if (lstat(Dir.c_str(), &St) != 0 || !S_ISDIR(St.st_mode))
    return false;
  if (St.st_uid != geteuid())
    return false;
  return (St.st_mode & (S_IWGRP | S_IWOTH)) == 0;
}

} // namespace

RepoStore::RepoStore(std::string DirIn) : Dir(std::move(DirIn)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  Usable = !EC && fs::is_directory(Dir, EC);
  NativeTrusted = Usable && dirTrustedForNative(Dir);
}

unsigned RepoStore::sweepTemps() {
  if (!Usable)
    return 0;
  unsigned N = atomicfile::sweepTempFiles(Dir, kExtension);
  N += atomicfile::sweepTempFiles(Dir, kProfileExtension);
  N += atomicfile::sweepTempFiles(Dir, kNativeExtension);
  std::lock_guard<std::mutex> L(Mutex);
  Stats.SweptTemps += N;
  return N;
}

std::string RepoStore::encode(const CompiledObject &Obj, uint64_t SourceHash) {
  std::string Payload = payloadBytes(Obj);
  ser::ByteWriter W;
  W.u32(kMagic);
  W.u32(kFormatVersion);
  W.u64(buildStamp());
  W.u64(SourceHash);
  W.u64(Payload.size());
  W.u32(hashing::crc32(Payload));
  std::string File = W.take();
  File += Payload;
  return File;
}

std::string RepoStore::entryPath(const CompiledObject &Obj) const {
  // One file per (function, signature) version: the signature hash keys
  // the version, so recompiling the same signature overwrites in place.
  return Dir + "/" + Obj.FunctionName + "." + sigHashHex(Obj.Sig) +
         kExtension;
}

std::string RepoStore::nativePath(const std::string &FunctionName,
                                  const TypeSignature &Sig) const {
  // Same naming scheme as entryPath so the .so lands beside its .mjo.
  return Dir + "/" + FunctionName + "." + sigHashHex(Sig) + kNativeExtension;
}

bool RepoStore::save(const CompiledObject &Obj, uint64_t SourceHash) {
  obs::TraceScope Span("repo.save", "repo", Obj.FunctionName.c_str());
  // Saving must never take down the caller (it runs on the idle pool or
  // inline on the compile path): any failure - injected fault, full disk,
  // unwritable directory - is swallowed into a counter.
  try {
    faults::maybeThrow(faults::Site::RepoSave);
    if (!Usable || !Obj.Code || !safeFileName(Obj.FunctionName))
      throw std::runtime_error("store unusable");
    std::string Bytes = encode(Obj, SourceHash);
    std::string Error;
    if (!atomicfile::writeFileAtomic(entryPath(Obj), Bytes, &Error))
      throw std::runtime_error(Error);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.Saved;
    return true;
  } catch (...) {
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.SaveFailures;
    return false;
  }
}

std::vector<RepoStore::Entry> RepoStore::loadAll() {
  obs::TraceScope Span("repo.load", "repo", Dir.c_str());
  std::vector<Entry> Out;
  if (!Usable)
    return Out;

  std::vector<std::string> Paths;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    if (E.is_regular_file() && E.path().extension() == kExtension)
      Paths.push_back(E.path().string());
  }
  std::sort(Paths.begin(), Paths.end()); // deterministic load order

  for (const std::string &Path : Paths) {
    enum class Verdict { Ok, Corrupt, Skew } V = Verdict::Corrupt;
    try {
      faults::maybeThrow(faults::Site::RepoLoad);
      std::error_code SzEC;
      uint64_t Size = fs::file_size(Path, SzEC);
      if (SzEC || Size > kMaxFileBytes)
        throw ser::SerializeError("unreadable or oversized file");
      std::string Bytes;
      if (!atomicfile::readFile(Path, Bytes))
        throw ser::SerializeError("cannot read file");

      // The validation ladder: magic -> format version -> build stamp ->
      // payload size -> checksum -> bounds-checked decode. The source-hash
      // rung runs later, at adoption time, when the engine knows the
      // current source text.
      ser::ByteReader R(Bytes);
      if (R.u32() != kMagic)
        throw ser::SerializeError("bad magic");
      if (R.u32() != kFormatVersion) {
        V = Verdict::Skew;
        throw ser::SerializeError("format version skew");
      }
      if (R.u64() != buildStamp()) {
        V = Verdict::Skew;
        throw ser::SerializeError("build stamp skew");
      }
      Entry E;
      E.SourceHash = R.u64();
      uint64_t PayloadSize = R.u64();
      uint32_t Crc = R.u32();
      if (PayloadSize != R.remaining())
        throw ser::SerializeError("payload size mismatch");
      if (hashing::crc32(static_cast<const void *>(
                             Bytes.data() + (Bytes.size() - PayloadSize)),
                         static_cast<size_t>(PayloadSize)) != Crc)
        throw ser::SerializeError("checksum mismatch");
      E.Obj = decodePayload(R);
      E.Path = Path;
      Out.push_back(std::move(E));
      V = Verdict::Ok;
    } catch (...) {
      // fall through to the verdict handling below
    }

    std::error_code IgnoredEC;
    switch (V) {
    case Verdict::Ok: {
      std::lock_guard<std::mutex> L(Mutex);
      ++Stats.Loaded;
      break;
    }
    case Verdict::Corrupt: {
      // Quarantine, don't delete: the bytes are evidence. The rename also
      // takes the file out of the .mjo namespace so the next load is
      // clean. If even the rename fails, fall back to removal.
      fs::rename(Path, Path + ".corrupt", IgnoredEC);
      if (IgnoredEC)
        fs::remove(Path, IgnoredEC);
      std::lock_guard<std::mutex> L(Mutex);
      ++Stats.Quarantined;
      break;
    }
    case Verdict::Skew: {
      // A different engine build or format owns this file; discarding it
      // is routine turnover, not corruption.
      fs::remove(Path, IgnoredEC);
      std::lock_guard<std::mutex> L(Mutex);
      ++Stats.Skewed;
      break;
    }
    }
  }
  return Out;
}

void RepoStore::erase(const std::string &FunctionName) {
  // Source turnover invalidates both payload kinds: the native .so was
  // compiled from the same stale source as the IR beside it.
  if (!Usable || !safeFileName(FunctionName))
    return;
  std::error_code EC;
  std::string Prefix = FunctionName + ".";
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    std::string Name = E.path().filename().string();
    std::string Ext = E.path().extension().string();
    if (E.is_regular_file() && (Ext == kExtension || Ext == kNativeExtension) &&
        Name.rfind(Prefix, 0) == 0) {
      std::error_code RmEC;
      fs::remove(E.path(), RmEC);
    }
  }
}

void RepoStore::eraseNative(const std::string &FunctionName) {
  if (!Usable || !safeFileName(FunctionName))
    return;
  std::error_code EC;
  std::string Prefix = FunctionName + ".";
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    std::string Name = E.path().filename().string();
    if (E.is_regular_file() && E.path().extension() == kNativeExtension &&
        Name.rfind(Prefix, 0) == 0) {
      std::error_code RmEC;
      fs::remove(E.path(), RmEC);
    }
  }
}

void RepoStore::discardStale(const std::string &Path) {
  std::error_code EC;
  fs::remove(Path, EC);
  std::lock_guard<std::mutex> L(Mutex);
  ++Stats.StaleSource;
}

void RepoStore::noteAdopted() {
  std::lock_guard<std::mutex> L(Mutex);
  ++Stats.Adopted;
}

//===----------------------------------------------------------------------===//
// Native payloads (.mjn)
//===----------------------------------------------------------------------===//

void RepoStore::setNativeStampExtra(uint64_t Extra) { NativeExtra = Extra; }

std::string RepoStore::encodeNative(const std::string &FunctionName,
                                    const TypeSignature &Sig, uint32_t NumOuts,
                                    const std::string &SoBytes,
                                    uint64_t SourceHash, uint64_t StampExtra) {
  ser::ByteWriter P;
  P.str(FunctionName);
  ser::writeTypeSignature(P, Sig);
  P.u32(NumOuts);
  P.str(SoBytes);
  std::string Payload = P.take();
  ser::ByteWriter W;
  W.u32(kNativeMagic);
  W.u32(kNativeFormatVersion);
  W.u64(nativeStamp(StampExtra));
  W.u64(SourceHash);
  W.u64(Payload.size());
  W.u32(hashing::crc32(Payload));
  std::string File = W.take();
  File += Payload;
  return File;
}

bool RepoStore::saveNative(const std::string &FunctionName,
                           const TypeSignature &Sig, uint32_t NumOuts,
                           const std::string &SoBytes, uint64_t SourceHash) {
  obs::TraceScope Span("repo.save_native", "repo", FunctionName.c_str());
  try {
    faults::maybeThrow(faults::Site::RepoSave);
    if (!Usable || !NativeTrusted || SoBytes.empty() ||
        !safeFileName(FunctionName))
      throw std::runtime_error("store unusable or untrusted for native");
    std::string Bytes =
        encodeNative(FunctionName, Sig, NumOuts, SoBytes, SourceHash,
                     NativeExtra);
    std::string Error;
    if (!atomicfile::writeFileAtomic(nativePath(FunctionName, Sig), Bytes,
                                     &Error))
      throw std::runtime_error(Error);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.NativeSaved;
    return true;
  } catch (...) {
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.NativeSaveFailures;
    return false;
  }
}

std::vector<RepoStore::NativeEntry> RepoStore::loadAllNative() {
  obs::TraceScope Span("repo.load_native", "repo", Dir.c_str());
  std::vector<NativeEntry> Out;
  if (!Usable)
    return Out;
  if (!NativeTrusted) {
    // Integrity checks below cannot establish authenticity: loading from
    // a directory other users can write would hand them native code
    // execution. Leave the files alone and degrade to cold compiles.
    obs::traceInstant("repo.native_untrusted", "repo", Dir);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.NativeUntrusted;
    return Out;
  }

  std::vector<std::string> Paths;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    if (E.is_regular_file() && E.path().extension() == kNativeExtension)
      Paths.push_back(E.path().string());
  }
  std::sort(Paths.begin(), Paths.end()); // deterministic load order

  for (const std::string &Path : Paths) {
    // The same ladder as .mjo entries with the native stamp on the third
    // rung; the source-hash rung runs at adoption time as for IR entries.
    enum class Verdict { Ok, Corrupt, Skew } V = Verdict::Corrupt;
    try {
      faults::maybeThrow(faults::Site::RepoLoad);
      std::error_code SzEC;
      uint64_t Size = fs::file_size(Path, SzEC);
      if (SzEC || Size > kMaxFileBytes)
        throw ser::SerializeError("unreadable or oversized file");
      std::string Bytes;
      if (!atomicfile::readFile(Path, Bytes))
        throw ser::SerializeError("cannot read file");

      ser::ByteReader R(Bytes);
      if (R.u32() != kNativeMagic)
        throw ser::SerializeError("bad magic");
      if (R.u32() != kNativeFormatVersion) {
        V = Verdict::Skew;
        throw ser::SerializeError("format version skew");
      }
      if (R.u64() != nativeStamp(NativeExtra)) {
        V = Verdict::Skew;
        throw ser::SerializeError("native stamp skew");
      }
      NativeEntry E;
      E.SourceHash = R.u64();
      uint64_t PayloadSize = R.u64();
      uint32_t Crc = R.u32();
      if (PayloadSize != R.remaining())
        throw ser::SerializeError("payload size mismatch");
      if (hashing::crc32(static_cast<const void *>(
                             Bytes.data() + (Bytes.size() - PayloadSize)),
                         static_cast<size_t>(PayloadSize)) != Crc)
        throw ser::SerializeError("checksum mismatch");
      E.FunctionName = R.str();
      if (!safeFileName(E.FunctionName))
        throw ser::SerializeError("invalid function name");
      E.Sig = ser::readTypeSignature(R);
      E.NumOuts = R.u32();
      E.SoBytes = R.str();
      if (!R.atEnd())
        throw ser::SerializeError("trailing bytes after payload");
      if (E.SoBytes.empty())
        throw ser::SerializeError("empty shared object");
      E.Path = Path;
      Out.push_back(std::move(E));
      V = Verdict::Ok;
    } catch (...) {
      // fall through to the verdict handling below
    }

    std::error_code IgnoredEC;
    switch (V) {
    case Verdict::Ok: {
      std::lock_guard<std::mutex> L(Mutex);
      ++Stats.NativeLoaded;
      break;
    }
    case Verdict::Corrupt: {
      fs::rename(Path, Path + ".corrupt", IgnoredEC);
      if (IgnoredEC)
        fs::remove(Path, IgnoredEC);
      std::lock_guard<std::mutex> L(Mutex);
      ++Stats.NativeQuarantined;
      break;
    }
    case Verdict::Skew: {
      fs::remove(Path, IgnoredEC);
      std::lock_guard<std::mutex> L(Mutex);
      ++Stats.NativeSkewed;
      break;
    }
    }
  }
  return Out;
}

std::string RepoStore::profilePath() const {
  return Dir + "/" + kProfileFileName;
}

std::string RepoStore::encodeProfiles(const std::vector<ProfileSummary> &Ps) {
  ser::ByteWriter P;
  P.u32(static_cast<uint32_t>(Ps.size()));
  for (const ProfileSummary &S : Ps) {
    P.str(S.Name);
    P.u64(S.Invocations);
    P.u64(S.OtherSignatures);
    size_t N = std::min(S.Sigs.size(), kProfileTopK);
    P.u32(static_cast<uint32_t>(N));
    for (size_t I = 0; I != N; ++I) {
      ser::writeTypeSignature(P, S.Sigs[I].Sig);
      P.u64(S.Sigs[I].Count);
    }
  }
  std::string Payload = P.take();
  ser::ByteWriter W;
  W.u32(kProfileMagic);
  W.u32(kProfileFormatVersion);
  W.u64(buildStamp());
  W.u64(Payload.size());
  W.u32(hashing::crc32(Payload));
  std::string File = W.take();
  File += Payload;
  return File;
}

bool RepoStore::saveProfiles(const std::vector<ProfileSummary> &Ps) {
  obs::TraceScope Span("repo.save_profiles", "repo", Dir.c_str());
  try {
    faults::maybeThrow(faults::Site::RepoSave);
    if (!Usable)
      throw std::runtime_error("store unusable");
    // A summary whose name could not have come from a MATLAB identifier is
    // damage; persisting it would just feed loadProfiles a corrupt rung.
    std::vector<ProfileSummary> Clean;
    Clean.reserve(Ps.size());
    for (const ProfileSummary &S : Ps)
      if (safeFileName(S.Name))
        Clean.push_back(S);
    std::string Bytes = encodeProfiles(Clean);
    std::string Error;
    if (!atomicfile::writeFileAtomic(profilePath(), Bytes, &Error))
      throw std::runtime_error(Error);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.ProfilesSaved;
    return true;
  } catch (...) {
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.ProfileSaveFailures;
    return false;
  }
}

std::vector<RepoStore::ProfileSummary> RepoStore::loadProfiles() {
  obs::TraceScope Span("repo.load_profiles", "repo", Dir.c_str());
  std::vector<ProfileSummary> Out;
  if (!Usable)
    return Out;
  std::string Path = profilePath();
  std::error_code ExistsEC;
  if (!fs::exists(Path, ExistsEC) || ExistsEC)
    return Out; // a missing profile file is a routine cold start

  // The same ladder as .mjo entries; there is no source-hash rung because
  // profiles are advisory - a stale profile mis-ranks the queue, and the
  // engine guards observed signatures against the live arity before use.
  enum class Verdict { Ok, Corrupt, Skew } V = Verdict::Corrupt;
  try {
    faults::maybeThrow(faults::Site::RepoLoad);
    std::error_code SzEC;
    uint64_t Size = fs::file_size(Path, SzEC);
    if (SzEC || Size > kMaxFileBytes)
      throw ser::SerializeError("unreadable or oversized file");
    std::string Bytes;
    if (!atomicfile::readFile(Path, Bytes))
      throw ser::SerializeError("cannot read file");

    ser::ByteReader R(Bytes);
    if (R.u32() != kProfileMagic)
      throw ser::SerializeError("bad magic");
    if (R.u32() != kProfileFormatVersion) {
      V = Verdict::Skew;
      throw ser::SerializeError("format version skew");
    }
    if (R.u64() != buildStamp()) {
      V = Verdict::Skew;
      throw ser::SerializeError("build stamp skew");
    }
    uint64_t PayloadSize = R.u64();
    uint32_t Crc = R.u32();
    if (PayloadSize != R.remaining())
      throw ser::SerializeError("payload size mismatch");
    if (hashing::crc32(static_cast<const void *>(
                           Bytes.data() + (Bytes.size() - PayloadSize)),
                       static_cast<size_t>(PayloadSize)) != Crc)
      throw ser::SerializeError("checksum mismatch");

    uint32_t Count = R.u32();
    std::vector<ProfileSummary> Decoded;
    Decoded.reserve(Count);
    for (uint32_t I = 0; I != Count; ++I) {
      ProfileSummary S;
      S.Name = R.str();
      if (!safeFileName(S.Name))
        throw ser::SerializeError("invalid function name");
      S.Invocations = R.u64();
      S.OtherSignatures = R.u64();
      uint32_t NSigs = R.u32();
      if (NSigs > kProfileTopK)
        throw ser::SerializeError("signature count out of range");
      S.Sigs.reserve(NSigs);
      for (uint32_t J = 0; J != NSigs; ++J) {
        ProfileSig PS;
        PS.Sig = ser::readTypeSignature(R);
        PS.Count = R.u64();
        PS.SigStr = PS.Sig.str();
        S.Sigs.push_back(std::move(PS));
      }
      Decoded.push_back(std::move(S));
    }
    if (!R.atEnd())
      throw ser::SerializeError("trailing bytes after payload");
    Out = std::move(Decoded);
    V = Verdict::Ok;
  } catch (...) {
    // fall through to the verdict handling below
  }

  std::error_code IgnoredEC;
  switch (V) {
  case Verdict::Ok: {
    std::lock_guard<std::mutex> L(Mutex);
    Stats.ProfilesLoaded += Out.size();
    break;
  }
  case Verdict::Corrupt: {
    fs::rename(Path, Path + ".corrupt", IgnoredEC);
    if (IgnoredEC)
      fs::remove(Path, IgnoredEC);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.ProfilesQuarantined;
    break;
  }
  case Verdict::Skew: {
    fs::remove(Path, IgnoredEC);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.ProfilesSkewed;
    break;
  }
  }
  return Out;
}

RepoStoreStats RepoStore::stats() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Stats;
}
