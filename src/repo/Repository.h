//===- repo/Repository.h - The code repository -----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code repository (Section 2): "a database of compiled code" that may
/// hold, at any time, several compiled versions of the same function,
/// differing only in their assumptions about the input types (Figure 3).
/// The function locator matches an invocation against the stored versions:
/// a version is *safe* when the invocation's types are subtypes of its
/// signature (Qi <= Ti), and among safe versions the best candidate is the
/// one at the smallest Manhattan-like distance (Section 2.2.1).
///
/// The repository is thread-safe: background speculative-compilation
/// workers insert while the interactive thread looks up. Lookups hand out
/// shared ownership (`std::shared_ptr<const CompiledObject>`) rather than
/// raw pointers into the version vectors, so a concurrent insert that
/// grows a vector - or an invalidate that drops a function - can never
/// leave a caller holding a dangling object.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_REPO_REPOSITORY_H
#define MAJIC_REPO_REPOSITORY_H

#include "backend/CodeGen.h"
#include "ir/Instr.h"
#include "obs/Metrics.h"
#include "types/Signature.h"

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace majic {

/// One compiled version of a function.
struct CompiledObject {
  std::string FunctionName;
  TypeSignature Sig;
  std::shared_ptr<const IRFunction> Code;
  CodeGenMode Mode = CodeGenMode::Jit;
  /// Wall-clock seconds spent producing this object (inference + code
  /// generation + optimization + allocation).
  double CompileSeconds = 0;
  /// How this object came to exist, for the repository's statistics.
  enum class Origin : uint8_t { Jit, Speculative, Batch, Generic } From =
      Origin::Jit;
  /// Per-object use count; atomic because the locator bumps it from
  /// whichever thread performs the lookup.
  mutable std::atomic<uint64_t> Hits{0};

  CompiledObject() = default;
  CompiledObject(CompiledObject &&O) noexcept
      : FunctionName(std::move(O.FunctionName)), Sig(std::move(O.Sig)),
        Code(std::move(O.Code)), Mode(O.Mode),
        CompileSeconds(O.CompileSeconds), From(O.From),
        Hits(O.Hits.load(std::memory_order_relaxed)) {}
  CompiledObject &operator=(CompiledObject &&O) noexcept {
    FunctionName = std::move(O.FunctionName);
    Sig = std::move(O.Sig);
    Code = std::move(O.Code);
    Mode = O.Mode;
    CompileSeconds = O.CompileSeconds;
    From = O.From;
    Hits.store(O.Hits.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }
};

/// Shared handle to a repository entry: stays valid after the entry is
/// replaced or invalidated.
using CompiledObjectPtr = std::shared_ptr<const CompiledObject>;

class Repository {
public:
  /// The function locator: returns the best safe version for \p Invocation,
  /// or null ("a failure to find appropriate code usually triggers a
  /// compilation").
  CompiledObjectPtr lookup(const std::string &Name,
                           const TypeSignature &Invocation) const;

  /// Stores a compiled version. An existing version with the identical
  /// signature is replaced ("the generated code can later be recompiled
  /// and replaced in the repository using a better compiler"); the
  /// replaced version's accumulated hit count carries over to the new
  /// object, and its compile time stays in totalCompileSeconds(), so the
  /// repository statistics survive recompilation.
  ///
  /// When a version cap is set and the function already holds that many
  /// versions, the least-used (lowest hit count, oldest among ties)
  /// version is evicted — never the one being inserted, so a freshly
  /// compiled cold version cannot be discarded before its first use.
  void insert(CompiledObject Obj);

  /// Caps the number of versions kept per function; 0 means unlimited.
  void setVersionCap(size_t Cap);

  /// Versions discarded to stay under the cap, over the repository's life.
  uint64_t evictions() const { return EvictionsCount.value(); }

  /// Drops every version of \p Name (the source changed).
  void invalidate(const std::string &Name);

  /// Snapshot of all versions of \p Name (inspection/tests); empty when
  /// unknown. A snapshot by value: the repository may change underneath.
  std::vector<CompiledObjectPtr> versions(const std::string &Name) const;

  /// Number of stored versions of \p Name (0 when unknown).
  size_t versionCount(const std::string &Name) const;

  size_t totalObjects() const;

  /// Misses where the function had no entry at all (never compiled or
  /// invalidated) vs. misses where versions existed but none was safe for
  /// the invocation (a speculation/specialization miss). Table-2-style
  /// speculation-accuracy stats must use the NoSafeVersion count only.
  uint64_t lookupMissesNoFunction() const { return MissesNoFunction.value(); }
  uint64_t lookupMissesNoSafeVersion() const {
    return MissesNoSafeVersion.value();
  }
  /// All misses (both kinds combined).
  uint64_t lookupMisses() const {
    return lookupMissesNoFunction() + lookupMissesNoSafeVersion();
  }
  uint64_t lookupHits() const { return HitsCount.value(); }

  /// Registers the repository's counters in \p Registry under "repo.*".
  /// The registry only borrows the instruments; the repository must
  /// outlive any use of the registry (the engine guarantees this by
  /// member order).
  void registerMetrics(obs::MetricsRegistry &Registry) const {
    Registry.registerCounter("repo.lookup.hits", HitsCount);
    Registry.registerCounter("repo.lookup.miss_no_function",
                             MissesNoFunction);
    Registry.registerCounter("repo.lookup.miss_no_safe_version",
                             MissesNoSafeVersion);
    Registry.registerCounter("repo.evictions", EvictionsCount);
  }

  /// Compile seconds accumulated over every insert ever performed,
  /// including versions since replaced or invalidated.
  double totalCompileSeconds() const;

private:
  /// Guards Table. Counters are atomic and may be bumped under a shared
  /// lock (lookup is logically const and concurrent).
  mutable std::shared_mutex Mutex;
  std::unordered_map<std::string, std::vector<std::shared_ptr<CompiledObject>>>
      Table;
  mutable obs::Counter MissesNoFunction;
  mutable obs::Counter MissesNoSafeVersion;
  mutable obs::Counter HitsCount;
  mutable obs::Counter EvictionsCount;
  double CompileSecondsTotal = 0; ///< guarded by Mutex (exclusive)
  size_t VersionCap = 0;          ///< guarded by Mutex; 0 = unlimited
};

} // namespace majic

#endif // MAJIC_REPO_REPOSITORY_H
