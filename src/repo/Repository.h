//===- repo/Repository.h - The code repository -----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The code repository (Section 2): "a database of compiled code" that may
/// hold, at any time, several compiled versions of the same function,
/// differing only in their assumptions about the input types (Figure 3).
/// The function locator matches an invocation against the stored versions:
/// a version is *safe* when the invocation's types are subtypes of its
/// signature (Qi <= Ti), and among safe versions the best candidate is the
/// one at the smallest Manhattan-like distance (Section 2.2.1).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_REPO_REPOSITORY_H
#define MAJIC_REPO_REPOSITORY_H

#include "backend/CodeGen.h"
#include "ir/Instr.h"
#include "types/Signature.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace majic {

/// One compiled version of a function.
struct CompiledObject {
  std::string FunctionName;
  TypeSignature Sig;
  std::shared_ptr<const IRFunction> Code;
  CodeGenMode Mode = CodeGenMode::Jit;
  /// Wall-clock seconds spent producing this object (inference + code
  /// generation + optimization + allocation).
  double CompileSeconds = 0;
  /// How this object came to exist, for the repository's statistics.
  enum class Origin : uint8_t { Jit, Speculative, Batch, Generic } From =
      Origin::Jit;
  mutable uint64_t Hits = 0;
};

class Repository {
public:
  /// The function locator: returns the best safe version for \p Invocation,
  /// or null ("a failure to find appropriate code usually triggers a
  /// compilation").
  const CompiledObject *lookup(const std::string &Name,
                               const TypeSignature &Invocation) const;

  /// Stores a compiled version. An existing version with the identical
  /// signature is replaced ("the generated code can later be recompiled
  /// and replaced in the repository using a better compiler").
  void insert(CompiledObject Obj);

  /// Drops every version of \p Name (the source changed).
  void invalidate(const std::string &Name);

  /// All versions of \p Name (inspection/tests).
  const std::vector<CompiledObject> *versions(const std::string &Name) const;

  size_t totalObjects() const;
  uint64_t lookupMisses() const { return Misses; }
  uint64_t lookupHits() const { return HitsCount; }

private:
  std::unordered_map<std::string, std::vector<CompiledObject>> Table;
  mutable uint64_t Misses = 0;
  mutable uint64_t HitsCount = 0;
};

} // namespace majic

#endif // MAJIC_REPO_REPOSITORY_H
