//===- repo/Snooper.h - Source directory snooping --------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source snooping (Section 2): the repository "compiles code on its own,
/// ahead of time, by snooping the source code directories, maintaining
/// dependency information between source code and object code and
/// triggering recompilations when the source code changes". This class
/// does the watching: it reports .m files that appeared or changed since
/// the last scan; the engine reacts by (re)loading and speculatively
/// compiling them.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_REPO_SNOOPER_H
#define MAJIC_REPO_SNOOPER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace majic {

class SourceSnooper {
public:
  /// Adds a directory to watch (non-recursive, .m files only).
  void watchDirectory(const std::string &Dir);

  struct Change {
    /// What happened to the file since the previous scan. A Removed change
    /// is how the engine learns to stop serving compiled versions of a
    /// deleted source file (the repository entry - and, with the on-disk
    /// store, its files - must be invalidated, not served stale).
    enum class Kind : uint8_t { Added, Modified, Removed };

    std::string Path;         ///< Full path to the .m file.
    std::string FunctionName; ///< Basename without extension.
    Kind K;                   ///< Added / Modified / Removed.
    int64_t MTime;            ///< Filesystem stamp; most-recent-first lets
                              ///< the engine speculate on fresh edits first
                              ///< (last known stamp for Removed changes).
  };

  /// Scans the watched directories, returning files that are new, whose
  /// modification time changed, or that disappeared since the previous
  /// scan.
  std::vector<Change> scan();

  const std::vector<std::string> &directories() const { return Dirs; }

private:
  std::vector<std::string> Dirs;
  std::unordered_map<std::string, int64_t> LastMTime;
};

} // namespace majic

#endif // MAJIC_REPO_SNOOPER_H
