//===- infer/Speculate.h - Speculative type inference ----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Speculative type inference (Section 2.5): guesses a credible type
/// signature from the source code alone by back-propagating type *hints*
/// from syntactic constructs to the input parameters:
///
///  - colon operands are almost always integer scalars,
///  - relational operands (and if/while conditions) are real scalars,
///  - when one bracket-operator argument is a scalar, the rest probably are,
///  - F77-style subscripts (no colon present) are integer scalars,
///  - arguments of zeros/ones/rand/eye/size are integer scalars.
///
/// Speculation alternates backward (hint) and forward (checking) passes
/// until the guessed signature converges. A wrong guess can never break
/// correctness: the repository's signature check rejects unsafe code at
/// invocation time (Section 3.6).
///
/// Thread safety: speculateSignature() is pure over \p FI - it reads the
/// FunctionInfo and its AST without mutating either, keeping results in
/// local side tables. The engine's background-compilation workers call it
/// concurrently with the interactive thread; any future hint pass that
/// wants to cache onto the AST must move that state into InferResult
/// instead.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_INFER_SPECULATE_H
#define MAJIC_INFER_SPECULATE_H

#include "infer/Infer.h"

namespace majic {

/// Guesses a type signature for \p FI's parameters from its body.
/// Parameters with no applicable hint stay top.
TypeSignature speculateSignature(const FunctionInfo &FI,
                                 const InferOptions &Opts = InferOptions());

} // namespace majic

#endif // MAJIC_INFER_SPECULATE_H
