//===- infer/Infer.cpp - JIT type inference ------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "infer/Infer.h"

#include "analysis/Dataflow.h"
#include "runtime/Builtins.h"

#include <cmath>

using namespace majic;

namespace {

/// The empty-matrix type ([]), the auto-vivification seed of indexed
/// assignment to an undefined variable.
Type emptyMatrixType() {
  return Type(IntrinsicType::Real, ShapeBound::exact(0, 0),
              ShapeBound::exact(0, 0), Range::bottom());
}

/// True when \p Idx is provably a positive integral subscript.
bool integralSubscript(const Type &Idx) {
  if (Idx.range().isBottom() || Idx.range().Lo < 1)
    return false;
  if (intrinsicLE(Idx.intrinsic(), IntrinsicType::Int))
    return true;
  // A real constant that happens to be integral also qualifies.
  return Idx.range().isConstant() &&
         Idx.range().Lo == std::floor(Idx.range().Lo);
}

/// The type inference domain: one Type per variable slot.
class TypeDomain {
public:
  using State = std::vector<Type>;

  TypeDomain(const FunctionInfo &FI, const TypeSignature &Sig,
             const InferOptions &Opts, TypeAnnotations &Ann)
      : FI(FI), Sig(Sig), Opts(Opts), Ann(Ann),
        Calc(TypeCalculator::instance()) {
    Ann.SlotSummary.assign(FI.Symbols.numSlots(), Type::bottom());
  }

  State entryState() {
    State S(FI.Symbols.numSlots(), Type::bottom());
    const Function &F = *FI.F;
    for (size_t P = 0; P != F.params().size() && P != Sig.size(); ++P) {
      int Slot = F.paramSlots()[P];
      if (Slot >= 0) {
        S[Slot] = Opts.normalize(Sig[P]);
        noteDef(Slot, S[Slot]);
      }
    }
    return S;
  }

  bool join(State &Into, const State &From) {
    bool Changed = false;
    for (size_t I = 0; I != Into.size(); ++I) {
      Type J = Into[I].join(From[I]);
      if (J == Into[I])
        continue;
      if (Widen) {
        // Widening: bounds that keep growing go straight to their lattice
        // extremes so the engine converges within the iteration cap.
        if (!(J.maxShape() == Into[I].maxShape()))
          J.setShape(J.minShape(), ShapeBound::top());
        if (!(J.range() == Into[I].range()))
          J.setRange(Range::top());
      }
      Into[I] = J;
      Changed = true;
    }
    return Changed;
  }

  void setWidening(bool W) { Widen = W; }
  void setRecording(bool R) { Recording = R; }

  void transfer(State &S, const BasicBlock::Element &E);
  void transferTerminator(State &S, const BasicBlock &B) {
    if (B.cond())
      evalExpr(B.cond(), S);
  }

private:
  Type evalExpr(const Expr *E, State &S);
  std::vector<Type> evalCallLike(const IndexOrCallExpr *IC, State &S,
                                 size_t NumOuts);
  Type evalIndexRead(const IndexOrCallExpr *IC, const Type &Base, State &S);
  Type evalIndexArg(const Expr *Arg, const Type &Base, unsigned Dim,
                    unsigned NumDims, State &S);
  Type evalMatrixLit(const MatrixExpr *M, State &S);
  void execAssign(const AssignStmt *A, State &S);
  void indexedAssign(const AssignStmt *A, const LValue &LV, const Type &RHS,
                     State &S);

  void record(const Expr *E, const Type &T) {
    if (!Recording)
      return;
    auto [It, Inserted] = Ann.ExprTypes.try_emplace(E, T);
    if (!Inserted)
      It->second = It->second.join(T);
  }

  void noteDef(int Slot, const Type &T) {
    if (Recording || Ann.SlotSummary[Slot].isBottom())
      Ann.SlotSummary[Slot] = Ann.SlotSummary[Slot].join(T);
  }

  /// Dimension length bounds of \p Base for subscript dimension \p Dim of
  /// \p NumDims, as a range.
  static Range dimBounds(const Type &Base, unsigned Dim, unsigned NumDims) {
    uint64_t Lo, Hi;
    if (NumDims == 1) {
      Lo = Base.minShape().numel();
      Hi = Base.maxShape().numel();
    } else if (Dim == 0) {
      Lo = Base.minShape().Rows;
      Hi = Base.maxShape().Rows;
    } else {
      Lo = Base.minShape().Cols;
      Hi = Base.maxShape().Cols;
    }
    return Range{static_cast<double>(Lo),
                 Hi == ShapeBound::kUnknownDim
                     ? std::numeric_limits<double>::infinity()
                     : static_cast<double>(Hi)};
  }

  const FunctionInfo &FI;
  const TypeSignature &Sig;
  const InferOptions &Opts;
  TypeAnnotations &Ann;
  const TypeCalculator &Calc;
  bool Widen = false;
  bool Recording = false;

  /// Binding for 'end' while evaluating a subscript expression.
  Range EndBounds = Range::top();
  bool EndValid = false;
};

//===----------------------------------------------------------------------===//
// Elements
//===----------------------------------------------------------------------===//

void TypeDomain::transfer(State &S, const BasicBlock::Element &E) {
  switch (E.K) {
  case BasicBlock::Element::Kind::ForInit:
    evalExpr(E.For->iterand(), S);
    return;
  case BasicBlock::Element::Kind::ForStep: {
    // The loop variable takes one column (or element) of the iterand. The
    // iterand is re-evaluated against the joined loop state, which is a
    // conservative superset of its preheader value.
    Type It = evalExpr(E.For->iterand(), S);
    Type Elem;
    if (It.maxShape().Rows <= 1) {
      Elem = Type::scalar(It.intrinsic() == IntrinsicType::Bottom
                              ? IntrinsicType::Top
                              : It.intrinsic(),
                          It.range());
    } else {
      Elem = Type(It.intrinsic(), ShapeBound{It.minShape().Rows, 1},
                  ShapeBound{It.maxShape().Rows, 1}, It.range());
    }
    Elem = Opts.normalize(Elem);
    int Slot = E.For->loopVarSlot();
    S[Slot] = Elem;
    noteDef(Slot, Elem);
    if (Recording) {
      auto [ItAnn, Inserted] = Ann.LoopVars.try_emplace(E.For, Elem);
      if (!Inserted)
        ItAnn->second = ItAnn->second.join(Elem);
    }
    return;
  }
  case BasicBlock::Element::Kind::Stmt:
    break;
  }

  const Stmt *St = E.S;
  switch (St->getKind()) {
  case Stmt::Kind::Expr:
    evalExpr(cast<ExprStmt>(St)->expr(), S);
    return;
  case Stmt::Kind::Assign:
    execAssign(cast<AssignStmt>(St), S);
    return;
  case Stmt::Kind::Clear: {
    const auto *C = cast<ClearStmt>(St);
    if (C->names().empty()) {
      for (Type &T : S)
        T = Type::bottom();
      return;
    }
    for (int Slot : C->slots())
      if (Slot >= 0)
        S[Slot] = Type::bottom();
    return;
  }
  default:
    majic_unreachable("control statement inside a basic block");
  }
}

void TypeDomain::execAssign(const AssignStmt *A, State &S) {
  // Multi-output assignments pull several result types from a call.
  std::vector<Type> RHS;
  if (A->isMulti()) {
    const auto *IC = dyn_cast<IndexOrCallExpr>(A->rhs());
    if (IC && IC->base()->symKind() != SymKind::Variable) {
      RHS = evalCallLike(IC, S, A->targets().size());
    }
    while (RHS.size() < A->targets().size())
      RHS.push_back(Type::top());
    record(A->rhs(), RHS.front());
  } else {
    RHS.push_back(evalExpr(A->rhs(), S));
  }

  for (size_t T = 0; T != A->targets().size(); ++T) {
    const LValue &LV = A->targets()[T];
    if (LV.VarSlot < 0)
      continue;
    if (!LV.HasParens) {
      Type NewT = Opts.normalize(RHS[T]);
      S[LV.VarSlot] = NewT;
      noteDef(LV.VarSlot, NewT);
      continue;
    }
    indexedAssign(A, LV, RHS[T], S);
  }
}

void TypeDomain::indexedAssign(const AssignStmt *A, const LValue &LV,
                               const Type &RHS, State &S) {
  Type Old = S[LV.VarSlot];
  if (Old.isBottom())
    Old = emptyMatrixType(); // auto-vivified []

  // Evaluate subscripts.
  std::vector<Type> Idx;
  unsigned NumDims = static_cast<unsigned>(LV.Indices.size());
  for (unsigned D = 0; D != NumDims; ++D)
    Idx.push_back(evalIndexArg(LV.Indices[D], Old, D, NumDims, S));

  // New intrinsic/range: the array absorbs the stored elements.
  IntrinsicType NewIT = intrinsicJoin(Old.intrinsic(), RHS.intrinsic());
  if (NewIT == IntrinsicType::Bottom)
    NewIT = RHS.intrinsic();
  if (!intrinsicLE(NewIT, IntrinsicType::Complex))
    NewIT = IntrinsicType::Top;
  Range NewR = Old.range().join(RHS.range());

  ShapeBound Min = Old.minShape(), Max = Old.maxShape();
  bool InBounds = true;

  auto GrowDim = [&](uint64_t &MinD, uint64_t &MaxD, const Type &I,
                     Range DimLen) {
    if (isa<ColonWildcardExpr>(LV.Indices[&I - Idx.data()])) {
      // ':' writes cover the existing extent; no growth.
      return;
    }
    bool Integral = integralSubscript(I);
    double ReqLo = I.range().Lo, ReqHi = I.range().Hi;
    if (!Integral || !(ReqHi <= DimLen.Lo))
      InBounds = false;
    // Writes guarantee the dimension is at least the subscript's lower
    // bound afterwards: this grows the *minimum* shape (the fact that
    // drives later subscript-check removal; Section 2.4).
    if (Integral && std::isfinite(ReqLo))
      MinD = std::max(MinD, static_cast<uint64_t>(std::floor(ReqLo)));
    if (std::isfinite(ReqHi)) {
      if (MaxD != ShapeBound::kUnknownDim)
        MaxD = std::max(MaxD, static_cast<uint64_t>(std::ceil(ReqHi)));
    } else {
      MaxD = ShapeBound::kUnknownDim;
    }
  };

  if (NumDims == 1) {
    // Linear assignment: vectors grow along their orientation.
    Range Len = dimBounds(Old, 0, 1);
    bool IsRow = Old.maxShape().Rows <= 1;
    bool IsCol = Old.maxShape().Cols <= 1 && !IsRow;
    if (IsRow) {
      GrowDim(Min.Cols, Max.Cols, Idx[0], Len);
      Min.Rows = std::max<uint64_t>(Min.Rows, Min.Cols ? 1 : 0);
      Max.Rows = std::max<uint64_t>(Max.Rows, 1);
    } else if (IsCol) {
      GrowDim(Min.Rows, Max.Rows, Idx[0], Len);
    } else {
      // Matrix (or unknown): linear writes cannot resize; bounds unknown.
      bool Integral = integralSubscript(Idx[0]);
      if (!Integral || !(Idx[0].range().Hi <= Len.Lo))
        InBounds = false;
    }
  } else if (NumDims == 2) {
    GrowDim(Min.Rows, Max.Rows, Idx[0], dimBounds(Old, 0, 2));
    GrowDim(Min.Cols, Max.Cols, Idx[1], dimBounds(Old, 1, 2));
  } else {
    InBounds = false;
    Min = ShapeBound::bottom();
    Max = ShapeBound::top();
  }

  Type NewT = Opts.normalize(Type(NewIT, Min, Max, NewR));
  S[LV.VarSlot] = NewT;
  noteDef(LV.VarSlot, NewT);

  if (Recording && A->targets().size() == 1) {
    TypeAnnotations::WriteFacts WF;
    WF.InBounds = InBounds && Opts.EnableRanges;
    auto [It, Inserted] = Ann.Writes.try_emplace(A, WF);
    if (!Inserted)
      It->second.InBounds &= WF.InBounds;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Type TypeDomain::evalIndexArg(const Expr *Arg, const Type &Base, unsigned Dim,
                              unsigned NumDims, State &S) {
  if (isa<ColonWildcardExpr>(Arg)) {
    Range Len = dimBounds(Base, Dim, NumDims);
    Type T(IntrinsicType::Int,
           ShapeBound{Len.Lo > 0 ? static_cast<uint64_t>(Len.Lo) : 0, 1},
           ShapeBound{std::isfinite(Len.Hi)
                          ? static_cast<uint64_t>(Len.Hi)
                          : ShapeBound::kUnknownDim,
                      1},
           Range{1, Len.Hi});
    record(Arg, T);
    return T;
  }
  // Bind 'end' to the dimension bounds while evaluating the subscript.
  Range Saved = EndBounds;
  bool SavedValid = EndValid;
  EndBounds = dimBounds(Base, Dim, NumDims);
  EndValid = true;
  Type T = evalExpr(Arg, S);
  EndBounds = Saved;
  EndValid = SavedValid;
  return T;
}

Type TypeDomain::evalIndexRead(const IndexOrCallExpr *IC, const Type &Base,
                               State &S) {
  const auto &Args = IC->args();
  if (Args.empty())
    return Base;

  IntrinsicType ElemIT = Base.intrinsic();
  if (ElemIT == IntrinsicType::Bottom || ElemIT == IntrinsicType::String)
    ElemIT = ElemIT == IntrinsicType::String ? IntrinsicType::String
                                             : IntrinsicType::Top;

  if (Args.size() == 1) {
    Type I = evalIndexArg(Args[0], Base, 0, 1, S);
    bool Safe = integralSubscript(I) &&
                Base.minShape().numel() != 0 &&
                I.range().Hi <= static_cast<double>(Base.minShape().numel());
    if (Recording && Safe && Opts.EnableRanges && I.isScalar())
      Ann.SafeSubscripts.insert(IC);
    if (I.isScalar())
      return Type::scalar(ElemIT, Base.range());
    if (isa<ColonWildcardExpr>(Args[0])) {
      return Type(ElemIT, ShapeBound{Base.minShape().numel(), 1},
                  ShapeBound{Base.maxShape().numel() == ShapeBound::kUnknownDim
                                 ? ShapeBound::kUnknownDim
                                 : Base.maxShape().numel(),
                             1},
                  Base.range());
    }
    // Vector subscript: the selection count matches the subscript's numel;
    // orientation follows the base when it is a vector.
    uint64_t CntLo = I.minShape().numel();
    uint64_t CntHi = I.maxShape().numel();
    if (Base.maxShape().Cols == 1 && Base.maxShape().Rows != 1)
      return Type(ElemIT, ShapeBound{CntLo, CntLo ? uint64_t(1) : uint64_t(0)},
                  ShapeBound{CntHi, 1}, Base.range());
    return Type(ElemIT, ShapeBound{CntLo ? uint64_t(1) : uint64_t(0), CntLo},
                ShapeBound{1, CntHi}, Base.range());
  }

  if (Args.size() == 2) {
    Type R = evalIndexArg(Args[0], Base, 0, 2, S);
    Type C = evalIndexArg(Args[1], Base, 1, 2, S);
    bool RowsKnown = Base.minShape().Rows > 0;
    bool SafeR = integralSubscript(R) &&
                 R.range().Hi <= static_cast<double>(Base.minShape().Rows);
    bool SafeC = integralSubscript(C) &&
                 C.range().Hi <= static_cast<double>(Base.minShape().Cols);
    if (Recording && RowsKnown && SafeR && SafeC && Opts.EnableRanges &&
        R.isScalar() && C.isScalar())
      Ann.SafeSubscripts.insert(IC);
    auto CountBounds = [&](const Type &I, const Expr *Arg, unsigned Dim,
                           uint64_t &Lo, uint64_t &Hi) {
      if (isa<ColonWildcardExpr>(Arg)) {
        Range Len = dimBounds(Base, Dim, 2);
        Lo = static_cast<uint64_t>(Len.Lo);
        Hi = std::isfinite(Len.Hi) ? static_cast<uint64_t>(Len.Hi)
                                   : ShapeBound::kUnknownDim;
        return;
      }
      Lo = I.minShape().numel();
      Hi = I.maxShape().numel();
    };
    uint64_t RLo, RHi, CLo, CHi;
    CountBounds(R, Args[0], 0, RLo, RHi);
    CountBounds(C, Args[1], 1, CLo, CHi);
    return Type(ElemIT, ShapeBound{RLo, CLo}, ShapeBound{RHi, CHi},
                Base.range());
  }

  return Type::top();
}

std::vector<Type> TypeDomain::evalCallLike(const IndexOrCallExpr *IC, State &S,
                                           size_t NumOuts) {
  std::vector<Type> ArgTypes;
  for (const Expr *A : IC->args())
    ArgTypes.push_back(evalExpr(A, S));

  switch (IC->base()->symKind()) {
  case SymKind::Builtin: {
    std::vector<Type> Out =
        Calc.builtin(IC->base()->name(), ArgTypes, NumOuts, Opts);
    return Out;
  }
  case SymKind::UserFunction:
  case SymKind::Ambiguous:
  default:
    // No interprocedural propagation: user-call results are top. Inlining
    // (which runs before inference) removes the cases that matter.
    return std::vector<Type>(std::max<size_t>(NumOuts, 1), Type::top());
  }
}

Type TypeDomain::evalMatrixLit(const MatrixExpr *M, State &S) {
  // Row-wise horzcat typing followed by vertcat.
  auto AddDim = [](uint64_t A, uint64_t B) {
    return A == ShapeBound::kUnknownDim || B == ShapeBound::kUnknownDim
               ? ShapeBound::kUnknownDim
               : A + B;
  };

  IntrinsicType IT = IntrinsicType::Bottom;
  Range R = Range::bottom();
  uint64_t RowsLo = 0, RowsHi = 0, ColsLo = ShapeBound::kUnknownDim,
           ColsHi = 0;
  bool AllExact = true;

  for (const auto &Row : M->rows()) {
    uint64_t RLo = 0, RHi = 1, CLo = 0, CHi = 0;
    bool RowExact = true;
    for (const Expr *Elem : Row) {
      Type T = evalExpr(Elem, S);
      IntrinsicType EIT = T.intrinsic() == IntrinsicType::Bool
                              ? IntrinsicType::Bool
                              : T.intrinsic();
      IT = intrinsicJoin(IT, EIT);
      R = R.join(T.range());
      auto Exact = T.exactShape();
      if (!Exact) {
        RowExact = false;
        CHi = AddDim(CHi, T.maxShape().Cols);
        RHi = std::max<uint64_t>(RHi, std::min<uint64_t>(
                                          T.maxShape().Rows, 1u << 30));
        continue;
      }
      CLo += Exact->Cols;
      CHi = AddDim(CHi, Exact->Cols);
      RLo = std::max(RLo, Exact->Rows);
      RHi = std::max(RHi, Exact->Rows);
    }
    AllExact &= RowExact;
    RowsLo += RowExact ? RLo : 0;
    RowsHi = AddDim(RowsHi, RHi);
    ColsLo = std::min(ColsLo, CLo);
    ColsHi = std::max(ColsHi, CHi);
  }
  if (M->rows().empty())
    return emptyMatrixType();
  if (IT == IntrinsicType::Bottom)
    IT = IntrinsicType::Real;
  if (!intrinsicLE(IT, IntrinsicType::Complex) && IT != IntrinsicType::String)
    IT = IntrinsicType::Top;

  if (AllExact)
    return Type(IT, ShapeBound{RowsLo, ColsLo}, ShapeBound{RowsLo, ColsLo}, R);
  return Type(IT, ShapeBound::bottom(), ShapeBound{RowsHi, ColsHi}, R);
}

Type TypeDomain::evalExpr(const Expr *E, State &S) {
  Type T = [&]() -> Type {
    switch (E->getKind()) {
    case Expr::Kind::Number: {
      const auto *N = cast<NumberExpr>(E);
      if (N->isImaginary())
        return Type::scalar(IntrinsicType::Complex);
      return Type::constant(N->value());
    }
    case Expr::Kind::String: {
      const auto *Str = cast<StringExpr>(E);
      uint64_t Len = Str->value().size();
      return Type(IntrinsicType::String, ShapeBound{Len ? 1u : 0u, Len},
                  ShapeBound{Len ? 1u : 0u, Len}, Range::top());
    }
    case Expr::Kind::Ident: {
      const auto *Id = cast<IdentExpr>(E);
      switch (Id->symKind()) {
      case SymKind::Variable: {
        const Type &V = S[Id->varSlot()];
        return V.isBottom() ? Type::top() : V;
      }
      case SymKind::Builtin:
        return Calc.builtin(Id->name(), {}, 1, Opts).front();
      default:
        return Type::top();
      }
    }
    case Expr::Kind::ColonWildcard:
      return Type::top();
    case Expr::Kind::EndRef:
      if (EndValid)
        return Type::scalar(IntrinsicType::Int, EndBounds);
      return Type::scalar(IntrinsicType::Int, Range::nonNegative());
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      return Calc.unary(U->op(), evalExpr(U->operand(), S), Opts);
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      Type L = evalExpr(B->lhs(), S);
      Type R = evalExpr(B->rhs(), S);
      return Calc.binary(B->op(), L, R, Opts);
    }
    case Expr::Kind::ShortCircuit: {
      const auto *B = cast<ShortCircuitExpr>(E);
      evalExpr(B->lhs(), S);
      evalExpr(B->rhs(), S);
      return Type::scalar(IntrinsicType::Bool, Range::interval(0, 1));
    }
    case Expr::Kind::Range: {
      const auto *R = cast<RangeExpr>(E);
      Type Lo = evalExpr(R->lo(), S);
      Type Hi = evalExpr(R->hi(), S);
      if (R->step()) {
        Type Step = evalExpr(R->step(), S);
        return Calc.colon(Lo, &Step, Hi, Opts);
      }
      return Calc.colon(Lo, nullptr, Hi, Opts);
    }
    case Expr::Kind::Matrix:
      return evalMatrixLit(cast<MatrixExpr>(E), S);
    case Expr::Kind::IndexOrCall: {
      const auto *IC = cast<IndexOrCallExpr>(E);
      if (IC->base()->symKind() == SymKind::Variable) {
        const Type &Base = S[IC->base()->varSlot()];
        if (Base.isBottom())
          return Type::top();
        return evalIndexRead(IC, Base, S);
      }
      std::vector<Type> Out = evalCallLike(IC, S, 1);
      return Out.empty() ? Type::bottom() : Out.front();
    }
    }
    majic_unreachable("invalid expression kind");
  }();
  T = Opts.normalize(T);
  record(E, T);
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

InferResult majic::inferTypes(const FunctionInfo &FI, const TypeSignature &Sig,
                              const InferOptions &Opts) {
  InferResult Result;
  Result.Signature = Sig;

  TypeDomain Domain(FI, Sig, Opts, Result.Ann);
  auto BlockIn = runForwardDataflow(*FI.Cfg, Domain, Opts.MaxPasses);

  // Recording pass over the converged solution: annotations, safety facts
  // and the storage summary are all derived from final states only.
  Result.Ann.SlotSummary.assign(FI.Symbols.numSlots(), Type::bottom());
  Domain.setRecording(true);
  // Entry parameter types contribute to the summary.
  for (size_t P = 0; P != FI.F->params().size() && P != Sig.size(); ++P) {
    int Slot = FI.F->paramSlots()[P];
    if (Slot >= 0)
      Result.Ann.SlotSummary[Slot] =
          Result.Ann.SlotSummary[Slot].join(Opts.normalize(Sig[P]));
  }
  replayDataflow(*FI.Cfg, Domain, BlockIn);
  return Result;
}
