//===- infer/TypeCalculator.h - The type calculator ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type calculator (Section 2.3.1): the transfer functions of the type
/// inference engine, implemented as a database of guarded rules. Multiple
/// rules may exist per operator/builtin; each has a boolean precondition and
/// rules are tried most-restrictive-first ("evaluating more restrictive
/// rules first makes sense because these generally lead to better
/// performance"). When no precondition holds, the implicit default rule
/// applies: all outputs are set to top.
///
/// The paper's calculator held about 250 rules; a test asserts this
/// implementation stays in that ballpark.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_INFER_TYPECALCULATOR_H
#define MAJIC_INFER_TYPECALCULATOR_H

#include "ast/AST.h"
#include "types/Type.h"

#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace majic {

/// Knobs for the Figure 7 ablation study.
struct InferOptions {
  /// Range propagation (constant propagation + subscript check removal
  /// fuel). The "no ranges" bars of Figure 7 disable this.
  bool EnableRanges = true;
  /// Minimum-shape propagation (exact shapes, small-vector unrolling).
  /// The "no min. shapes" bars of Figure 7 disable this.
  bool EnableMinShapes = true;
  /// Iteration cap of the dataflow engine before widening (Section 2.3:
  /// the engine "caps the number of iterations").
  unsigned MaxPasses = 8;
  /// Optimistic real-domain math: sqrt/log/asin/acos of a real value whose
  /// domain cannot be proven stay Real, protected by a runtime guard that
  /// triggers deoptimization (recompile without optimism) on violation.
  /// Without this, one unproven sqrt poisons whole arrays to complex.
  bool OptimisticRealMath = true;

  /// Applies the ablations to a computed type.
  Type normalize(Type T) const;
};

class TypeCalculator {
public:
  static const TypeCalculator &instance();

  /// Result type of a binary operator; the first rule whose precondition
  /// holds wins, otherwise top.
  Type binary(rt::BinOp Op, const Type &A, const Type &B,
              const InferOptions &Opts) const;

  Type unary(UnaryOpKind Op, const Type &A, const InferOptions &Opts) const;

  /// lo:hi / lo:step:hi (Step null for the two-operand form).
  Type colon(const Type &Lo, const Type *Step, const Type &Hi,
             const InferOptions &Opts) const;

  /// Result types of builtin \p Name (empty when the builtin produces no
  /// value). Unknown builtins yield top.
  std::vector<Type> builtin(const std::string &Name,
                            std::span<const Type> Args, size_t NumOuts,
                            const InferOptions &Opts) const;

  /// Backward mode (Section 2.3.1/2.5): given a desired result type for a
  /// binary operator, infer operand hints. Returns false when no backward
  /// rule applies.
  bool backwardBinary(rt::BinOp Op, const Type &ResultHint, Type &AHint,
                      Type &BHint) const;
  bool backwardUnary(UnaryOpKind Op, const Type &ResultHint,
                     Type &OperandHint) const;

  /// Total number of rules in the database (paper: ~250).
  unsigned numRules() const;

  /// Name of the binary rule that fired for the given operands, for tests
  /// of the most-restrictive-first ordering ("" when the default applied).
  std::string firedBinaryRule(rt::BinOp Op, const Type &A,
                              const Type &B) const;

private:
  TypeCalculator();

  struct BinaryRule {
    std::string Name;
    std::function<bool(const Type &, const Type &)> Pre;
    std::function<Type(const Type &, const Type &)> Apply;
  };
  struct UnaryRule {
    std::string Name;
    std::function<bool(const Type &)> Pre;
    std::function<Type(const Type &)> Apply;
  };
  struct BuiltinRule {
    std::string Name;
    std::function<bool(std::span<const Type>)> Pre;
    std::function<std::vector<Type>(std::span<const Type>, size_t)> Apply;
    /// Rule only applies under InferOptions::OptimisticRealMath.
    bool Optimistic = false;
  };

  void addBinary(rt::BinOp Op, std::string Name,
                 std::function<bool(const Type &, const Type &)> Pre,
                 std::function<Type(const Type &, const Type &)> Apply);
  void addUnary(UnaryOpKind Op, std::string Name,
                std::function<bool(const Type &)> Pre,
                std::function<Type(const Type &)> Apply);
  void addBuiltin(std::string Builtin, std::string Name,
                  std::function<bool(std::span<const Type>)> Pre,
                  std::function<std::vector<Type>(std::span<const Type>,
                                                  size_t)> Apply,
                  bool Optimistic = false);

  void registerArithmeticRules();
  void registerComparisonRules();
  void registerUnaryRules();
  void registerCreatorBuiltins();
  void registerQueryBuiltins();
  void registerMathBuiltins();
  void registerReductionBuiltins();
  void registerLinalgBuiltins();
  void registerConstantBuiltins();
  void registerIoBuiltins();

  std::unordered_map<uint8_t, std::vector<BinaryRule>> BinaryRules;
  std::unordered_map<uint8_t, std::vector<UnaryRule>> UnaryRules;
  std::unordered_map<std::string, std::vector<BuiltinRule>> BuiltinRules;
  unsigned RuleCount = 0;
};

} // namespace majic

#endif // MAJIC_INFER_TYPECALCULATOR_H
