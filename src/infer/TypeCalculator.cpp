//===- infer/TypeCalculator.cpp - The type calculator -------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "infer/TypeCalculator.h"

#include "runtime/Builtins.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace majic;
using rt::BinOp;

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

Type InferOptions::normalize(Type T) const {
  if (!EnableRanges)
    T.setRange(T.range().isBottom() ? Range::bottom() : Range::top());
  // Disabling minimum-shape propagation drops array lower bounds (killing
  // subscript-check removal and small-vector unrolling) but keeps provable
  // scalarness, which is upper-bound information.
  if (!EnableMinShapes && !(T.maxShape() == ShapeBound::scalar()))
    T.setShape(ShapeBound::bottom(), T.maxShape());
  return T;
}

//===----------------------------------------------------------------------===//
// Shared predicates and shape combinators
//===----------------------------------------------------------------------===//

namespace {

bool scalarOf(const Type &T, IntrinsicType IT) {
  return !T.isBottom() && T.isScalar() && intrinsicLE(T.intrinsic(), IT);
}

bool numericOf(const Type &T, IntrinsicType IT) {
  return !T.isBottom() && intrinsicLE(T.intrinsic(), IT);
}

bool intScalar(const Type &T) { return scalarOf(T, IntrinsicType::Int); }
bool realScalar(const Type &T) { return scalarOf(T, IntrinsicType::Real); }
bool cplxScalar(const Type &T) { return scalarOf(T, IntrinsicType::Complex); }
bool realArray(const Type &T) { return numericOf(T, IntrinsicType::Real); }
bool cplxArray(const Type &T) { return numericOf(T, IntrinsicType::Complex); }

/// Could the value be a scalar (1x1 within [min, max])?
bool mayBeScalar(const Type &T) {
  return T.minShape().le(ShapeBound::scalar()) &&
         ShapeBound::scalar().le(T.maxShape());
}

/// Shape bounds of an element-wise operation with MATLAB's scalar
/// broadcasting.
void elemShapes(const Type &A, const Type &B, ShapeBound &Min,
                ShapeBound &Max) {
  if (A.isScalar()) {
    Min = B.minShape();
    Max = B.maxShape();
    return;
  }
  if (B.isScalar()) {
    Min = A.minShape();
    Max = A.maxShape();
    return;
  }
  if (!mayBeScalar(A) && !mayBeScalar(B)) {
    // Both are arrays: shapes must agree at runtime, so both bound sets
    // constrain the result.
    Min = A.minShape().joinUpper(B.minShape());
    Max = A.maxShape().joinLower(B.maxShape());
    return;
  }
  // One side might be a scalar: only the loose join is sound.
  Min = A.minShape().joinLower(B.minShape());
  Max = A.maxShape().joinUpper(B.maxShape());
}

Type elemResult(const Type &A, const Type &B, IntrinsicType IT, Range R) {
  ShapeBound Min, Max;
  elemShapes(A, B, Min, Max);
  return Type(IT, Min, Max, R);
}

IntrinsicType joinNumeric(const Type &A, const Type &B, bool IntPreserving) {
  IntrinsicType J = intrinsicJoin(A.intrinsic(), B.intrinsic());
  if (J == IntrinsicType::Bool)
    J = IntrinsicType::Int; // arithmetic promotes logicals
  if (!IntPreserving && intrinsicLE(J, IntrinsicType::Int))
    J = IntrinsicType::Real;
  if (IntPreserving && J == IntrinsicType::Int)
    return IntrinsicType::Int;
  return J;
}

Range divRange(const Range &A, const Range &B) { return A.div(B); }
Range ldivRange(const Range &A, const Range &B) { return B.div(A); }

} // namespace

//===----------------------------------------------------------------------===//
// Registry plumbing
//===----------------------------------------------------------------------===//

void TypeCalculator::addBinary(
    BinOp Op, std::string Name,
    std::function<bool(const Type &, const Type &)> Pre,
    std::function<Type(const Type &, const Type &)> Apply) {
  BinaryRules[static_cast<uint8_t>(Op)].push_back(
      {std::move(Name), std::move(Pre), std::move(Apply)});
  ++RuleCount;
}

void TypeCalculator::addUnary(UnaryOpKind Op, std::string Name,
                              std::function<bool(const Type &)> Pre,
                              std::function<Type(const Type &)> Apply) {
  UnaryRules[static_cast<uint8_t>(Op)].push_back(
      {std::move(Name), std::move(Pre), std::move(Apply)});
  ++RuleCount;
}

void TypeCalculator::addBuiltin(
    std::string Builtin, std::string Name,
    std::function<bool(std::span<const Type>)> Pre,
    std::function<std::vector<Type>(std::span<const Type>, size_t)> Apply,
    bool Optimistic) {
  BuiltinRules[std::move(Builtin)].push_back(
      {std::move(Name), std::move(Pre), std::move(Apply), Optimistic});
  ++RuleCount;
}

const TypeCalculator &TypeCalculator::instance() {
  static TypeCalculator Calc;
  return Calc;
}

unsigned TypeCalculator::numRules() const { return RuleCount; }

Type TypeCalculator::binary(BinOp Op, const Type &A, const Type &B,
                            const InferOptions &Opts) const {
  auto It = BinaryRules.find(static_cast<uint8_t>(Op));
  if (It != BinaryRules.end())
    for (const BinaryRule &R : It->second)
      if (R.Pre(A, B))
        return Opts.normalize(R.Apply(A, B));
  return Type::top(); // the implicit default rule
}

std::string TypeCalculator::firedBinaryRule(BinOp Op, const Type &A,
                                            const Type &B) const {
  auto It = BinaryRules.find(static_cast<uint8_t>(Op));
  if (It != BinaryRules.end())
    for (const BinaryRule &R : It->second)
      if (R.Pre(A, B))
        return R.Name;
  return "";
}

Type TypeCalculator::unary(UnaryOpKind Op, const Type &A,
                           const InferOptions &Opts) const {
  auto It = UnaryRules.find(static_cast<uint8_t>(Op));
  if (It != UnaryRules.end())
    for (const UnaryRule &R : It->second)
      if (R.Pre(A))
        return Opts.normalize(R.Apply(A));
  return Type::top();
}

std::vector<Type> TypeCalculator::builtin(const std::string &Name,
                                          std::span<const Type> Args,
                                          size_t NumOuts,
                                          const InferOptions &Opts) const {
  auto It = BuiltinRules.find(Name);
  if (It != BuiltinRules.end()) {
    for (const BuiltinRule &R : It->second) {
      if (R.Optimistic && !Opts.OptimisticRealMath)
        continue;
      if (!R.Pre(Args))
        continue;
      std::vector<Type> Out = R.Apply(Args, NumOuts);
      for (Type &T : Out)
        T = Opts.normalize(T);
      return Out;
    }
  }
  // Default rule: every requested output is top.
  return std::vector<Type>(std::max<size_t>(NumOuts, 1), Type::top());
}

Type TypeCalculator::colon(const Type &Lo, const Type *Step, const Type &Hi,
                           const InferOptions &Opts) const {
  std::vector<Type> Args;
  Args.push_back(Lo);
  if (Step)
    Args.push_back(*Step);
  Args.push_back(Hi);
  std::vector<Type> Out = builtin("__colon", Args, 1, Opts);
  return Out.front();
}

//===----------------------------------------------------------------------===//
// Arithmetic rules
//===----------------------------------------------------------------------===//

TypeCalculator::TypeCalculator() {
  registerArithmeticRules();
  registerComparisonRules();
  registerUnaryRules();
  registerCreatorBuiltins();
  registerQueryBuiltins();
  registerMathBuiltins();
  registerReductionBuiltins();
  registerLinalgBuiltins();
  registerConstantBuiltins();
  registerIoBuiltins();
}

void TypeCalculator::registerArithmeticRules() {
  using RangeFn = Range (*)(const Range &, const Range &);

  // The standard five-rule ladder for element-wise arithmetic, from most to
  // least restrictive (mirroring the paper's '*' example in Section 2.3.1).
  auto Ladder = [this](BinOp Op, const char *N, bool IntPreserving,
                       RangeFn RF) {
    addBinary(
        Op, format("%s:int-scalar", N),
        [](const Type &A, const Type &B) {
          return intScalar(A) && intScalar(B);
        },
        [IntPreserving, RF](const Type &A, const Type &B) {
          return Type::scalar(IntPreserving ? IntrinsicType::Int
                                            : IntrinsicType::Real,
                              RF(A.range(), B.range()));
        });
    addBinary(
        Op, format("%s:real-scalar", N),
        [](const Type &A, const Type &B) {
          return realScalar(A) && realScalar(B);
        },
        [RF](const Type &A, const Type &B) {
          return Type::scalar(IntrinsicType::Real, RF(A.range(), B.range()));
        });
    addBinary(
        Op, format("%s:cplx-scalar", N),
        [](const Type &A, const Type &B) {
          return cplxScalar(A) && cplxScalar(B);
        },
        [](const Type &, const Type &) {
          return Type::scalar(IntrinsicType::Complex);
        });
    addBinary(
        Op, format("%s:real-array", N),
        [](const Type &A, const Type &B) {
          return realArray(A) && realArray(B);
        },
        [IntPreserving, RF](const Type &A, const Type &B) {
          return elemResult(A, B, joinNumeric(A, B, IntPreserving),
                            RF(A.range(), B.range()));
        });
    addBinary(
        Op, format("%s:cplx-array", N),
        [](const Type &A, const Type &B) {
          return cplxArray(A) && cplxArray(B);
        },
        [](const Type &A, const Type &B) {
          return elemResult(A, B, IntrinsicType::Complex, Range::top());
        });
  };

  Ladder(BinOp::Add, "add", true,
         +[](const Range &A, const Range &B) { return A.add(B); });
  Ladder(BinOp::Sub, "sub", true,
         +[](const Range &A, const Range &B) { return A.sub(B); });
  Ladder(BinOp::ElemMul, "emul", true,
         +[](const Range &A, const Range &B) { return A.mul(B); });
  Ladder(BinOp::ElemRDiv, "ediv", false, +divRange);
  Ladder(BinOp::ElemLDiv, "eldiv", false, +ldivRange);

  // '*': the paper's worked example — integer scalar multiply; real scalar
  // multiply; complex scalar multiply; scalar x matrix; dgemv candidate;
  // real matrix multiply; generic complex matrix multiply.
  addBinary(
      BinOp::MatMul, "mul:int-scalar",
      [](const Type &A, const Type &B) { return intScalar(A) && intScalar(B); },
      [](const Type &A, const Type &B) {
        return Type::scalar(IntrinsicType::Int, A.range().mul(B.range()));
      });
  addBinary(
      BinOp::MatMul, "mul:real-scalar",
      [](const Type &A, const Type &B) {
        return realScalar(A) && realScalar(B);
      },
      [](const Type &A, const Type &B) {
        return Type::scalar(IntrinsicType::Real, A.range().mul(B.range()));
      });
  addBinary(
      BinOp::MatMul, "mul:cplx-scalar",
      [](const Type &A, const Type &B) {
        return cplxScalar(A) && cplxScalar(B);
      },
      [](const Type &, const Type &) {
        return Type::scalar(IntrinsicType::Complex);
      });
  addBinary(
      BinOp::MatMul, "mul:scalar-array",
      [](const Type &A, const Type &B) {
        return (A.isScalar() && cplxArray(B)) ||
               (B.isScalar() && cplxArray(A));
      },
      [](const Type &A, const Type &B) {
        const Type &Arr = A.isScalar() ? B : A;
        IntrinsicType IT = joinNumeric(A, B, true);
        return Type(IT, Arr.minShape(), Arr.maxShape(),
                    A.range().mul(B.range()));
      });
  addBinary(
      BinOp::MatMul, "mul:dgemv",
      [](const Type &A, const Type &B) {
        // Real matrix times a real column vector.
        return realArray(A) && realArray(B) && B.maxShape().Cols == 1;
      },
      [](const Type &A, const Type &B) {
        return Type(IntrinsicType::Real,
                    ShapeBound{A.minShape().Rows, B.minShape().Cols},
                    ShapeBound{A.maxShape().Rows, 1}, Range::top());
      });
  addBinary(
      BinOp::MatMul, "mul:real-matmul",
      [](const Type &A, const Type &B) { return realArray(A) && realArray(B); },
      [](const Type &A, const Type &B) {
        return Type(IntrinsicType::Real,
                    ShapeBound{A.minShape().Rows, B.minShape().Cols},
                    ShapeBound{A.maxShape().Rows, B.maxShape().Cols},
                    Range::top());
      });
  addBinary(
      BinOp::MatMul, "mul:cplx-matmul",
      [](const Type &A, const Type &B) { return cplxArray(A) && cplxArray(B); },
      [](const Type &A, const Type &B) {
        return Type(IntrinsicType::Complex,
                    ShapeBound{A.minShape().Rows, B.minShape().Cols},
                    ShapeBound{A.maxShape().Rows, B.maxShape().Cols},
                    Range::top());
      });

  // '/': right division.
  addBinary(
      BinOp::MatRDiv, "div:real-scalar",
      [](const Type &A, const Type &B) {
        return realScalar(A) && realScalar(B);
      },
      [](const Type &A, const Type &B) {
        return Type::scalar(IntrinsicType::Real, A.range().div(B.range()));
      });
  addBinary(
      BinOp::MatRDiv, "div:cplx-scalar",
      [](const Type &A, const Type &B) {
        return cplxScalar(A) && cplxScalar(B);
      },
      [](const Type &, const Type &) {
        return Type::scalar(IntrinsicType::Complex);
      });
  addBinary(
      BinOp::MatRDiv, "div:array-scalar",
      [](const Type &A, const Type &B) {
        return cplxArray(A) && B.isScalar() && cplxArray(B);
      },
      [](const Type &A, const Type &B) {
        IntrinsicType IT = joinNumeric(A, B, false);
        return Type(IT, A.minShape(), A.maxShape(), A.range().div(B.range()));
      });
  addBinary(
      BinOp::MatRDiv, "div:solve",
      [](const Type &A, const Type &B) { return realArray(A) && realArray(B); },
      [](const Type &A, const Type &B) {
        return Type(IntrinsicType::Real,
                    ShapeBound{A.minShape().Rows, B.minShape().Rows},
                    ShapeBound{A.maxShape().Rows, B.maxShape().Rows},
                    Range::top());
      });

  // '\': left division.
  addBinary(
      BinOp::MatLDiv, "ldiv:real-scalar",
      [](const Type &A, const Type &B) {
        return realScalar(A) && realScalar(B);
      },
      [](const Type &A, const Type &B) {
        return Type::scalar(IntrinsicType::Real, B.range().div(A.range()));
      });
  addBinary(
      BinOp::MatLDiv, "ldiv:scalar-array",
      [](const Type &A, const Type &B) {
        return A.isScalar() && cplxScalar(A) && cplxArray(B);
      },
      [](const Type &A, const Type &B) {
        IntrinsicType IT = joinNumeric(A, B, false);
        return Type(IT, B.minShape(), B.maxShape(), B.range().div(A.range()));
      });
  addBinary(
      BinOp::MatLDiv, "ldiv:solve",
      [](const Type &A, const Type &B) { return realArray(A) && realArray(B); },
      [](const Type &A, const Type &B) {
        return Type(IntrinsicType::Real,
                    ShapeBound{A.minShape().Cols, B.minShape().Cols},
                    ShapeBound{A.maxShape().Cols, B.maxShape().Cols},
                    Range::top());
      });

  // '^' and '.^': power, with the complex-escalation subtlety.
  auto PowLadder = [this](BinOp Op, const char *N) {
    addBinary(
        Op, format("%s:int", N),
        [](const Type &A, const Type &B) {
          return intScalar(A) && intScalar(B) && B.range().Lo >= 0;
        },
        [](const Type &A, const Type &B) {
          Range R = B.range().isConstant() ? A.range().powConst(B.range().Lo)
                                           : Range::top();
          return Type::scalar(IntrinsicType::Int, R);
        });
    addBinary(
        Op, format("%s:real-safe", N),
        [](const Type &A, const Type &B) {
          // Stays real: non-negative base, or a provably integral exponent.
          bool IntExp = intScalar(B) ||
                        (B.range().isConstant() &&
                         B.range().Lo == std::floor(B.range().Lo));
          return realScalar(A) && realScalar(B) &&
                 (A.range().Lo >= 0 || IntExp);
        },
        [](const Type &A, const Type &B) {
          Range R = B.range().isConstant() ? A.range().powConst(B.range().Lo)
                                           : Range::top();
          return Type::scalar(IntrinsicType::Real, R);
        });
    addBinary(
        Op, format("%s:scalar-escalates", N),
        [](const Type &A, const Type &B) {
          return cplxScalar(A) && cplxScalar(B);
        },
        [](const Type &, const Type &) {
          // A negative base with fractional exponent goes complex.
          return Type::scalar(IntrinsicType::Complex);
        });
  };
  PowLadder(BinOp::MatPow, "pow");
  PowLadder(BinOp::ElemPow, "epow");
  addBinary(
      BinOp::ElemPow, "epow:array",
      [](const Type &A, const Type &B) { return cplxArray(A) && cplxArray(B); },
      [](const Type &A, const Type &B) {
        // Stays real: non-negative base, or a provably integral exponent
        // (mirrors epow:real-safe; scalarPow never escalates when the
        // exponent is integral, so x.^2 on a sign-unknown array is Real).
        bool IntExp = intrinsicLE(B.intrinsic(), IntrinsicType::Int) ||
                      (B.range().isConstant() &&
                       B.range().Lo == std::floor(B.range().Lo));
        bool Safe = realArray(A) && realArray(B) &&
                    (A.range().Lo >= 0 || IntExp);
        return elemResult(
            A, B, Safe ? IntrinsicType::Real : IntrinsicType::Complex,
            Range::top());
      });
  addBinary(
      BinOp::MatPow, "pow:matrix",
      [](const Type &A, const Type &B) {
        return cplxArray(A) && intScalar(B);
      },
      [](const Type &A, const Type &) {
        return Type(A.intrinsic() == IntrinsicType::Complex
                        ? IntrinsicType::Complex
                        : IntrinsicType::Real,
                    A.minShape(), A.maxShape(), Range::top());
      });

  // The colon operator (pseudo-builtin "__colon").
  auto ColonShape = [](std::span<const Type> Args) {
    const Type &Lo = Args.front();
    const Type &Hi = Args.back();
    const Type *Step = Args.size() == 3 ? &Args[1] : nullptr;
    double StepLo = Step ? Step->range().Lo : 1.0;
    double StepHi = Step ? Step->range().Hi : 1.0;

    uint64_t MaxN = ShapeBound::kUnknownDim;
    uint64_t MinN = 0;
    if (StepLo > 0 && std::isfinite(Hi.range().Hi) &&
        std::isfinite(Lo.range().Lo)) {
      double Span = (Hi.range().Hi - Lo.range().Lo) / StepLo;
      MaxN = Span < 0 ? 0 : static_cast<uint64_t>(std::floor(Span)) + 1;
    }
    if (StepHi > 0 && std::isfinite(Hi.range().Lo) &&
        std::isfinite(Lo.range().Hi)) {
      double Span = (Hi.range().Lo - Lo.range().Hi) / StepHi;
      MinN = Span < 0 ? 0 : static_cast<uint64_t>(std::floor(Span)) + 1;
    }
    return std::pair<ShapeBound, ShapeBound>{{MinN == 0 ? 0 : 1, MinN},
                                             {MaxN == 0 ? 0 : 1, MaxN}};
  };
  addBuiltin(
      "__colon", "colon:int",
      [](std::span<const Type> Args) {
        for (const Type &T : Args)
          if (!intScalar(T))
            return false;
        return true;
      },
      [ColonShape](std::span<const Type> Args, size_t) {
        auto [Min, Max] = ColonShape(Args);
        // Every element lies between the endpoints regardless of the step
        // direction: the hull of the two endpoint ranges is sound.
        Range Elems = Args.front().range().join(Args.back().range());
        return std::vector<Type>{
            Type(IntrinsicType::Int, Min, Max, Elems)};
      });
  addBuiltin(
      "__colon", "colon:real",
      [](std::span<const Type> Args) {
        for (const Type &T : Args)
          if (!realScalar(T))
            return false;
        return true;
      },
      [ColonShape](std::span<const Type> Args, size_t) {
        auto [Min, Max] = ColonShape(Args);
        Range Elems = Args.front().range().join(Args.back().range());
        return std::vector<Type>{
            Type(IntrinsicType::Real, Min, Max, Elems)};
      });
  addBuiltin(
      "__colon", "colon:any",
      [](std::span<const Type>) { return true; },
      [](std::span<const Type>, size_t) {
        // Colon ignores imaginary parts; result is a real row vector.
        return std::vector<Type>{Type(IntrinsicType::Real,
                                      ShapeBound::bottom(),
                                      ShapeBound{1, ShapeBound::kUnknownDim},
                                      Range::top())};
      });
}

//===----------------------------------------------------------------------===//
// Comparison and logic rules
//===----------------------------------------------------------------------===//

void TypeCalculator::registerComparisonRules() {
  auto BoolLadder = [this](BinOp Op, const char *N) {
    addBinary(
        Op, format("%s:scalar", N),
        [](const Type &A, const Type &B) {
          return cplxScalar(A) && cplxScalar(B);
        },
        [](const Type &, const Type &) {
          return Type::scalar(IntrinsicType::Bool, Range::interval(0, 1));
        });
    addBinary(
        Op, format("%s:array", N),
        [](const Type &A, const Type &B) {
          return cplxArray(A) && cplxArray(B);
        },
        [](const Type &A, const Type &B) {
          return elemResult(A, B, IntrinsicType::Bool, Range::interval(0, 1));
        });
  };
  BoolLadder(BinOp::Lt, "lt");
  BoolLadder(BinOp::Le, "le");
  BoolLadder(BinOp::Gt, "gt");
  BoolLadder(BinOp::Ge, "ge");
  BoolLadder(BinOp::Eq, "eq");
  BoolLadder(BinOp::Ne, "ne");
  BoolLadder(BinOp::And, "and");
  BoolLadder(BinOp::Or, "or");
}

//===----------------------------------------------------------------------===//
// Unary rules
//===----------------------------------------------------------------------===//

void TypeCalculator::registerUnaryRules() {
  addUnary(
      UnaryOpKind::Neg, "neg:int-scalar", intScalar,
      [](const Type &A) {
        return Type::scalar(IntrinsicType::Int, A.range().neg());
      });
  addUnary(
      UnaryOpKind::Neg, "neg:real-scalar", realScalar,
      [](const Type &A) {
        return Type::scalar(IntrinsicType::Real, A.range().neg());
      });
  addUnary(
      UnaryOpKind::Neg, "neg:array", cplxArray,
      [](const Type &A) {
        IntrinsicType IT = A.intrinsic() == IntrinsicType::Bool
                               ? IntrinsicType::Int
                               : A.intrinsic();
        return Type(IT, A.minShape(), A.maxShape(), A.range().neg());
      });

  addUnary(
      UnaryOpKind::Plus, "uplus:any",
      [](const Type &) { return true; }, [](const Type &A) { return A; });

  addUnary(
      UnaryOpKind::Not, "not:real", realArray,
      [](const Type &A) {
        return Type(IntrinsicType::Bool, A.minShape(), A.maxShape(),
                    Range::interval(0, 1));
      });

  auto Swap = [](const Type &A) {
    return Type(A.intrinsic(),
                ShapeBound{A.minShape().Cols, A.minShape().Rows},
                ShapeBound{A.maxShape().Cols, A.maxShape().Rows}, A.range());
  };
  addUnary(UnaryOpKind::CTranspose, "ctrans:numeric", cplxArray, Swap);
  addUnary(UnaryOpKind::Transpose, "trans:numeric", cplxArray, Swap);
}

//===----------------------------------------------------------------------===//
// Builtin rules: creators
//===----------------------------------------------------------------------===//

namespace {

/// Shape bounds implied by zeros/ones/rand/eye arguments.
void creatorShapes(std::span<const Type> Args, ShapeBound &Min,
                   ShapeBound &Max) {
  auto DimBounds = [](const Type &T, uint64_t &Lo, uint64_t &Hi) {
    Lo = 0;
    Hi = ShapeBound::kUnknownDim;
    Range R = T.range();
    if (!R.isBottom() && std::isfinite(R.Lo) && R.Lo > 0)
      Lo = static_cast<uint64_t>(std::floor(R.Lo));
    if (!R.isBottom() && std::isfinite(R.Hi) && R.Hi >= 0)
      Hi = static_cast<uint64_t>(std::floor(R.Hi));
  };
  if (Args.empty()) {
    Min = Max = ShapeBound::scalar();
    return;
  }
  uint64_t RLo, RHi, CLo, CHi;
  DimBounds(Args[0], RLo, RHi);
  if (Args.size() == 1) {
    CLo = RLo;
    CHi = RHi;
  } else {
    DimBounds(Args[1], CLo, CHi);
  }
  Min = ShapeBound{RLo, CLo};
  Max = ShapeBound{RHi, CHi};
}

bool allIntScalars(std::span<const Type> Args) {
  for (const Type &T : Args)
    if (!scalarOf(T, IntrinsicType::Real)) // MATLAB warns but accepts reals
      return false;
  return true;
}

std::vector<Type> one(Type T) { return std::vector<Type>{std::move(T)}; }

} // namespace

void TypeCalculator::registerCreatorBuiltins() {
  auto Creator = [this](const char *Name, IntrinsicType IT, Range ElemRange) {
    addBuiltin(
        Name, format("%s:shaped", Name), allIntScalars,
        [IT, ElemRange](std::span<const Type> Args, size_t) {
          ShapeBound Min, Max;
          creatorShapes(Args, Min, Max);
          return one(Type(IT, Min, Max, ElemRange));
        });
    addBuiltin(
        Name, format("%s:any", Name),
        [](std::span<const Type>) { return true; },
        [IT, ElemRange](std::span<const Type>, size_t) {
          return one(Type(IT, ShapeBound::bottom(), ShapeBound::top(),
                          ElemRange));
        });
  };
  Creator("zeros", IntrinsicType::Real, Range::constant(0));
  Creator("ones", IntrinsicType::Int, Range::constant(1));
  Creator("eye", IntrinsicType::Int, Range::interval(0, 1));
  Creator("rand", IntrinsicType::Real, Range::interval(0, 1));

  addBuiltin(
      "linspace", "linspace:n",
      [](std::span<const Type> Args) {
        return Args.size() == 3 && Args[2].constantValue().has_value();
      },
      [](std::span<const Type> Args, size_t) {
        auto N = static_cast<uint64_t>(*Args[2].constantValue());
        return one(Type(IntrinsicType::Real, ShapeBound{1, N},
                        ShapeBound{1, N},
                        Args[0].range().join(Args[1].range())));
      });
  addBuiltin(
      "linspace", "linspace:any",
      [](std::span<const Type>) { return true; },
      [](std::span<const Type>, size_t) {
        return one(Type(IntrinsicType::Real, ShapeBound::bottom(),
                        ShapeBound{1, ShapeBound::kUnknownDim}, Range::top()));
      });
}

//===----------------------------------------------------------------------===//
// Builtin rules: shape queries
//===----------------------------------------------------------------------===//

void TypeCalculator::registerQueryBuiltins() {
  addBuiltin(
      "size", "size:dim",
      [](std::span<const Type> Args) {
        return Args.size() == 2 && Args[1].constantValue().has_value();
      },
      [](std::span<const Type> Args, size_t) {
        double Dim = *Args[1].constantValue();
        const Type &A = Args[0];
        uint64_t Lo = Dim == 1 ? A.minShape().Rows : A.minShape().Cols;
        uint64_t Hi = Dim == 1 ? A.maxShape().Rows : A.maxShape().Cols;
        Range R{static_cast<double>(Lo),
                Hi == ShapeBound::kUnknownDim
                    ? std::numeric_limits<double>::infinity()
                    : static_cast<double>(Hi)};
        return one(Type::scalar(IntrinsicType::Int, R));
      });
  addBuiltin(
      "size", "size:vector",
      [](std::span<const Type> Args) { return Args.size() == 1; },
      [](std::span<const Type> Args, size_t NumOuts) {
        const Type &A = Args[0];
        auto DimRange = [](uint64_t Lo, uint64_t Hi) {
          return Range{static_cast<double>(Lo),
                       Hi == ShapeBound::kUnknownDim
                           ? std::numeric_limits<double>::infinity()
                           : static_cast<double>(Hi)};
        };
        Range Rows = DimRange(A.minShape().Rows, A.maxShape().Rows);
        Range Cols = DimRange(A.minShape().Cols, A.maxShape().Cols);
        if (NumOuts >= 2)
          return std::vector<Type>{Type::scalar(IntrinsicType::Int, Rows),
                                   Type::scalar(IntrinsicType::Int, Cols)};
        return one(Type(IntrinsicType::Int, ShapeBound{1, 2}, ShapeBound{1, 2},
                        Rows.join(Cols)));
      });

  addBuiltin(
      "length", "length:bounds",
      [](std::span<const Type> Args) { return Args.size() == 1; },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        double Lo = static_cast<double>(
            std::max(A.minShape().Rows, A.minShape().Cols));
        if (A.minShape().numel() == 0)
          Lo = 0;
        uint64_t HiR = A.maxShape().Rows, HiC = A.maxShape().Cols;
        double Hi = (HiR == ShapeBound::kUnknownDim ||
                     HiC == ShapeBound::kUnknownDim)
                        ? std::numeric_limits<double>::infinity()
                        : static_cast<double>(std::max(HiR, HiC));
        return one(Type::scalar(IntrinsicType::Int, Range{Lo, Hi}));
      });

  addBuiltin(
      "numel", "numel:bounds",
      [](std::span<const Type> Args) { return Args.size() == 1; },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        double Lo = static_cast<double>(A.minShape().numel());
        double Hi = A.maxShape().numel() == ShapeBound::kUnknownDim
                        ? std::numeric_limits<double>::infinity()
                        : static_cast<double>(A.maxShape().numel());
        return one(Type::scalar(IntrinsicType::Int, Range{Lo, Hi}));
      });

  auto BoolQuery = [this](const char *Name) {
    addBuiltin(
        Name, format("%s:bool", Name),
        [](std::span<const Type>) { return true; },
        [](std::span<const Type>, size_t) {
          return one(Type::scalar(IntrinsicType::Bool, Range::interval(0, 1)));
        });
  };
  BoolQuery("isempty");
  BoolQuery("isreal");
  BoolQuery("isscalar");
}

//===----------------------------------------------------------------------===//
// Builtin rules: element-wise math
//===----------------------------------------------------------------------===//

void TypeCalculator::registerMathBuiltins() {
  using RangeMap = Range (*)(const Range &);
  // Real -> real element-wise map preserving shape.
  auto RealMap = [this](const char *Name, IntrinsicType OutIT, RangeMap RM) {
    addBuiltin(
        Name, format("%s:real", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 1 && realArray(Args[0]);
        },
        [OutIT, RM](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          return one(Type(OutIT, A.minShape(), A.maxShape(), RM(A.range())));
        });
  };
  // Complex fallthrough: same shape, complex intrinsic.
  auto CplxMap = [this](const char *Name) {
    addBuiltin(
        Name, format("%s:cplx", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 1 && cplxArray(Args[0]);
        },
        [](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          return one(Type(IntrinsicType::Complex, A.minShape(), A.maxShape(),
                          Range::top()));
        });
  };

  // abs: real -> |range|, complex -> real magnitude.
  RealMap("abs", IntrinsicType::Real,
          +[](const Range &R) { return R.absRange(); });
  addBuiltin(
      "abs", "abs:cplx",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                        Range::nonNegative()));
      });

  // sqrt/log family: stays real only on a proven domain; otherwise the
  // result may escalate to complex (the guarded-intrinsic story).
  auto DomainMap = [this, CplxMap](const char *Name, double DomainLo,
                                   RangeMap RM) {
    addBuiltin(
        Name, format("%s:safe", Name),
        [DomainLo](std::span<const Type> Args) {
          return Args.size() == 1 && realArray(Args[0]) &&
                 !Args[0].range().isBottom() && Args[0].range().Lo >= DomainLo;
        },
        [RM](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                          RM(A.range())));
        });
    // Optimistic: the domain is unknown (but not provably violated); the
    // result stays Real under a runtime deoptimization guard.
    addBuiltin(
        Name, format("%s:optimistic", Name),
        [DomainLo](std::span<const Type> Args) {
          if (Args.size() != 1 || !realArray(Args[0]))
            return false;
          Range R = Args[0].range();
          return R.isBottom() || !(R.Hi < DomainLo);
        },
        [](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                          Range::top()));
        },
        /*Optimistic=*/true);
    addBuiltin(
        Name, format("%s:escalates", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 1 && cplxArray(Args[0]);
        },
        [](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          return one(Type(IntrinsicType::Complex, A.minShape(), A.maxShape(),
                          Range::top()));
        });
    (void)CplxMap;
  };
  DomainMap("sqrt", 0.0, +[](const Range &R) {
    return Range{std::sqrt(R.Lo), std::sqrt(R.Hi)};
  });
  DomainMap("log", 0.0, +[](const Range &R) {
    return Range{std::log(R.Lo), std::log(R.Hi)};
  });
  DomainMap("log2", 0.0, +[](const Range &R) {
    return Range{std::log2(R.Lo), std::log2(R.Hi)};
  });
  DomainMap("log10", 0.0, +[](const Range &R) {
    return Range{std::log10(R.Lo), std::log10(R.Hi)};
  });

  // exp: monotone, always real on reals.
  RealMap("exp", IntrinsicType::Real, +[](const Range &R) {
    return Range{std::exp(R.Lo), std::exp(R.Hi)};
  });
  CplxMap("exp");

  // Bounded trig.
  for (const char *Name : {"sin", "cos"}) {
    RealMap(Name, IntrinsicType::Real,
            +[](const Range &) { return Range::interval(-1, 1); });
    CplxMap(Name);
  }
  RealMap("tan", IntrinsicType::Real, +[](const Range &) { return Range::top(); });
  CplxMap("tan");
  RealMap("atan", IntrinsicType::Real, +[](const Range &) {
    return Range::interval(-1.5707963267948966, 1.5707963267948966);
  });
  for (const char *Name : {"sinh", "cosh", "tanh"}) {
    RealMap(Name, IntrinsicType::Real,
            +[](const Range &) { return Range::top(); });
    CplxMap(Name);
  }
  // asin/acos: real only on [-1, 1].
  for (const char *Name : {"asin", "acos"}) {
    addBuiltin(
        Name, format("%s:safe", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 1 && realArray(Args[0]) &&
                 !Args[0].range().isBottom() && Args[0].range().Lo >= -1 &&
                 Args[0].range().Hi <= 1;
        },
        [](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                          Range::interval(-3.1415926535897932,
                                          3.1415926535897932)));
        });
    CplxMap(Name);
  }

  // Rounding: integral results.
  RealMap("floor", IntrinsicType::Int,
          +[](const Range &R) { return R.floorRange(); });
  RealMap("ceil", IntrinsicType::Int,
          +[](const Range &R) { return R.ceilRange(); });
  RealMap("round", IntrinsicType::Int, +[](const Range &R) {
    return Range{std::round(R.Lo), std::round(R.Hi)};
  });
  RealMap("fix", IntrinsicType::Int, +[](const Range &R) {
    return Range{std::trunc(R.Lo), std::trunc(R.Hi)};
  });
  RealMap("sign", IntrinsicType::Int,
          +[](const Range &) { return Range::interval(-1, 1); });

  // real/imag/conj/angle.
  RealMap("real", IntrinsicType::Real, +[](const Range &R) { return R; });
  addBuiltin(
      "real", "real:cplx",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                        Range::top()));
      });
  addBuiltin(
      "imag", "imag:any",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                        Range::top()));
      });
  addBuiltin(
      "conj", "conj:any",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) { return one(Args[0]); });
  addBuiltin(
      "angle", "angle:any",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                        Range::interval(-3.1415926535897932,
                                        3.1415926535897932)));
      });

  // mod/rem/atan2: two-argument real maps.
  addBuiltin(
      "mod", "mod:pos",
      [](std::span<const Type> Args) {
        return Args.size() == 2 && realArray(Args[0]) && realArray(Args[1]) &&
               !Args[1].range().isBottom() && Args[1].range().Lo > 0;
      },
      [](std::span<const Type> Args, size_t) {
        IntrinsicType IT = joinNumeric(Args[0], Args[1], true);
        return one(elemResult(Args[0], Args[1], IT,
                              Range{0, Args[1].range().Hi}));
      });
  addBuiltin(
      "mod", "mod:real",
      [](std::span<const Type> Args) {
        return Args.size() == 2 && realArray(Args[0]) && realArray(Args[1]);
      },
      [](std::span<const Type> Args, size_t) {
        return one(elemResult(Args[0], Args[1],
                              joinNumeric(Args[0], Args[1], true),
                              Range::top()));
      });
  addBuiltin(
      "rem", "rem:real",
      [](std::span<const Type> Args) {
        return Args.size() == 2 && realArray(Args[0]) && realArray(Args[1]);
      },
      [](std::span<const Type> Args, size_t) {
        return one(elemResult(Args[0], Args[1],
                              joinNumeric(Args[0], Args[1], true),
                              Range::top()));
      });
  addBuiltin(
      "atan2", "atan2:real",
      [](std::span<const Type> Args) {
        return Args.size() == 2 && realArray(Args[0]) && realArray(Args[1]);
      },
      [](std::span<const Type> Args, size_t) {
        return one(elemResult(Args[0], Args[1], IntrinsicType::Real,
                              Range::interval(-3.1415926535897932,
                                              3.1415926535897932)));
      });
}

//===----------------------------------------------------------------------===//
// Builtin rules: reductions and search
//===----------------------------------------------------------------------===//

namespace {

/// MATLAB reduction shape: vectors reduce to scalars, matrices to rows.
Type reductionType(const Type &A, IntrinsicType IT, Range R) {
  if (A.maxShape().Rows == 1 || A.maxShape().Cols == 1)
    return Type::scalar(IT, R);
  if (A.minShape().Rows > 1) {
    // Definitely a matrix: a 1 x cols row vector.
    return Type(IT, ShapeBound{1, A.minShape().Cols},
                ShapeBound{1, A.maxShape().Cols}, R);
  }
  return Type(IT, ShapeBound::bottom(),
              ShapeBound{1, std::max(A.maxShape().Cols, uint64_t(1))}, R);
}

} // namespace

void TypeCalculator::registerReductionBuiltins() {
  auto Reduce = [this](const char *Name, bool IntPreserving,
                       Range (*RM)(const Range &, uint64_t)) {
    addBuiltin(
        Name, format("%s:real", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 1 && realArray(Args[0]);
        },
        [IntPreserving, RM](std::span<const Type> Args, size_t) {
          const Type &A = Args[0];
          IntrinsicType IT =
              IntPreserving && intrinsicLE(A.intrinsic(), IntrinsicType::Int)
                  ? IntrinsicType::Int
                  : IntrinsicType::Real;
          uint64_t MaxN = A.maxShape().numel();
          return one(reductionType(A, IT, RM(A.range(), MaxN)));
        });
  };
  Reduce("sum", true, +[](const Range &R, uint64_t N) {
    if (R.isBottom() || N == ShapeBound::kUnknownDim)
      return Range::top();
    return Range{std::min(0.0, R.Lo * N), std::max(0.0, R.Hi * N)};
  });
  Reduce("prod", true, +[](const Range &, uint64_t) { return Range::top(); });
  Reduce("mean", false, +[](const Range &R, uint64_t) { return R; });

  // max/min: reduction and element-wise forms, with the optional index out.
  for (const char *Name : {"max", "min"}) {
    addBuiltin(
        Name, format("%s:reduce", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 1 && realArray(Args[0]);
        },
        [](std::span<const Type> Args, size_t NumOuts) {
          const Type &A = Args[0];
          std::vector<Type> Out;
          Out.push_back(reductionType(A, joinNumeric(A, A, true), A.range()));
          if (NumOuts >= 2) {
            double HiN = A.maxShape().numel() == ShapeBound::kUnknownDim
                             ? std::numeric_limits<double>::infinity()
                             : static_cast<double>(A.maxShape().numel());
            Out.push_back(reductionType(A, IntrinsicType::Int,
                                        Range{1, HiN}));
          }
          return Out;
        });
    addBuiltin(
        Name, format("%s:elemwise", Name),
        [](std::span<const Type> Args) {
          return Args.size() == 2 && realArray(Args[0]) && realArray(Args[1]);
        },
        [](std::span<const Type> Args, size_t) {
          return one(elemResult(Args[0], Args[1],
                                joinNumeric(Args[0], Args[1], true),
                                Args[0].range().join(Args[1].range())));
        });
  }

  addBuiltin(
      "norm", "norm:nonneg",
      [](std::span<const Type> Args) { return !Args.empty(); },
      [](std::span<const Type>, size_t) {
        return one(Type::scalar(IntrinsicType::Real, Range::nonNegative()));
      });
  addBuiltin(
      "dot", "dot:real",
      [](std::span<const Type> Args) {
        return Args.size() == 2 && realArray(Args[0]) && realArray(Args[1]);
      },
      [](std::span<const Type>, size_t) {
        return one(Type::scalar(IntrinsicType::Real));
      });
  addBuiltin(
      "find", "find:indices",
      [](std::span<const Type> Args) { return Args.size() == 1; },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        double HiN = A.maxShape().numel() == ShapeBound::kUnknownDim
                         ? std::numeric_limits<double>::infinity()
                         : static_cast<double>(A.maxShape().numel());
        return one(Type(IntrinsicType::Int, ShapeBound::bottom(),
                        A.maxShape(), Range{1, HiN}));
      });
  for (const char *Name : {"any", "all"}) {
    addBuiltin(
        Name, format("%s:bool", Name),
        [](std::span<const Type> Args) { return Args.size() == 1; },
        [](std::span<const Type> Args, size_t) {
          return one(reductionType(Args[0], IntrinsicType::Bool,
                                   Range::interval(0, 1)));
        });
  }
  addBuiltin(
      "sort", "sort:vector",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && realArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t NumOuts) {
        const Type &A = Args[0];
        std::vector<Type> Out;
        Out.push_back(A);
        if (NumOuts >= 2) {
          double HiN = A.maxShape().numel() == ShapeBound::kUnknownDim
                           ? std::numeric_limits<double>::infinity()
                           : static_cast<double>(A.maxShape().numel());
          Out.push_back(Type(IntrinsicType::Int, A.minShape(), A.maxShape(),
                             Range{1, HiN}));
        }
        return Out;
      });
}

//===----------------------------------------------------------------------===//
// Builtin rules: linear algebra
//===----------------------------------------------------------------------===//

void TypeCalculator::registerLinalgBuiltins() {
  addBuiltin(
      "eig", "eig:real",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && realArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t NumOuts) {
        const Type &A = Args[0];
        std::vector<Type> Out;
        if (NumOuts >= 2) {
          Out.push_back(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                             Range::top())); // eigenvector matrix
          Out.push_back(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                             Range::top())); // diagonal eigenvalue matrix
          return Out;
        }
        Out.push_back(Type(IntrinsicType::Real,
                           ShapeBound{A.minShape().Rows, 1},
                           ShapeBound{A.maxShape().Rows, 1}, Range::top()));
        return Out;
      });
  addBuiltin(
      "chol", "chol:real",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && realArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) { return one(Args[0]); });
  addBuiltin(
      "inv", "inv:real",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && realArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        return one(Type(IntrinsicType::Real, A.minShape(), A.maxShape(),
                        Range::top()));
      });
  addBuiltin(
      "det", "det:real",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && realArray(Args[0]);
      },
      [](std::span<const Type>, size_t) {
        return one(Type::scalar(IntrinsicType::Real));
      });
  addBuiltin(
      "trace", "trace:real",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && realArray(Args[0]);
      },
      [](std::span<const Type>, size_t) {
        return one(Type::scalar(IntrinsicType::Real));
      });
  addBuiltin(
      "diag", "diag:vector",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]) &&
               (Args[0].maxShape().Rows == 1 || Args[0].maxShape().Cols == 1);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        uint64_t NLo = std::max(A.minShape().Rows, A.minShape().Cols);
        uint64_t NHi = A.maxShape().numel() == ShapeBound::kUnknownDim
                           ? ShapeBound::kUnknownDim
                           : std::max(A.maxShape().Rows, A.maxShape().Cols);
        return one(Type(A.intrinsic(), ShapeBound{NLo, NLo},
                        ShapeBound{NHi, NHi}, A.range()));
      });
  addBuiltin(
      "diag", "diag:matrix",
      [](std::span<const Type> Args) {
        return Args.size() == 1 && cplxArray(Args[0]);
      },
      [](std::span<const Type> Args, size_t) {
        const Type &A = Args[0];
        return one(Type(A.intrinsic(), ShapeBound::bottom(),
                        ShapeBound{A.maxShape().Rows, 1}, A.range()));
      });
}

//===----------------------------------------------------------------------===//
// Builtin rules: constants, I/O
//===----------------------------------------------------------------------===//

void TypeCalculator::registerConstantBuiltins() {
  auto Constant = [this](const char *Name, Type T) {
    addBuiltin(
        Name, format("%s:const", Name),
        [](std::span<const Type> Args) { return Args.empty(); },
        [T](std::span<const Type>, size_t) { return one(T); });
  };
  Constant("pi", Type::scalar(IntrinsicType::Real,
                              Range::constant(3.14159265358979323846)));
  Constant("eps", Type::scalar(IntrinsicType::Real,
                               Range::constant(
                                   std::numeric_limits<double>::epsilon())));
  Constant("Inf", Type::scalar(IntrinsicType::Real,
                               Range::interval(
                                   std::numeric_limits<double>::infinity(),
                                   std::numeric_limits<double>::infinity())));
  Constant("inf", Type::scalar(IntrinsicType::Real,
                               Range::interval(
                                   std::numeric_limits<double>::infinity(),
                                   std::numeric_limits<double>::infinity())));
  Constant("NaN", Type::scalar(IntrinsicType::Real));
  Constant("nan", Type::scalar(IntrinsicType::Real));
  Constant("i", Type::scalar(IntrinsicType::Complex));
  Constant("j", Type::scalar(IntrinsicType::Complex));
}

void TypeCalculator::registerIoBuiltins() {
  auto NoOutput = [this](const char *Name) {
    addBuiltin(
        Name, format("%s:void", Name),
        [](std::span<const Type>) { return true; },
        [](std::span<const Type>, size_t) { return std::vector<Type>(); });
  };
  NoOutput("disp");
  NoOutput("fprintf");
  NoOutput("error");
  NoOutput("warning");
  auto StringOut = [this](const char *Name) {
    addBuiltin(
        Name, format("%s:string", Name),
        [](std::span<const Type>) { return true; },
        [](std::span<const Type>, size_t) {
          return one(Type(IntrinsicType::String, ShapeBound::bottom(),
                          ShapeBound{1, ShapeBound::kUnknownDim},
                          Range::top()));
        });
  };
  StringOut("sprintf");
  StringOut("num2str");
}

//===----------------------------------------------------------------------===//
// Backward mode
//===----------------------------------------------------------------------===//

bool TypeCalculator::backwardBinary(BinOp Op, const Type &ResultHint,
                                    Type &AHint, Type &BHint) const {
  // Scalar results of element-wise/scalar arithmetic suggest scalar
  // operands; this is how colon/index hints reach expressions like n-1.
  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::ElemMul:
  case BinOp::ElemRDiv:
  case BinOp::MatMul:
  case BinOp::MatRDiv:
  case BinOp::MatPow:
  case BinOp::ElemPow:
    if (!ResultHint.isScalar())
      return false;
    AHint = Type::scalar(ResultHint.intrinsic());
    BHint = Type::scalar(ResultHint.intrinsic());
    return true;
  default:
    return false;
  }
}

bool TypeCalculator::backwardUnary(UnaryOpKind Op, const Type &ResultHint,
                                   Type &OperandHint) const {
  if (Op == UnaryOpKind::Neg || Op == UnaryOpKind::Plus) {
    OperandHint = ResultHint;
    return true;
  }
  return false;
}
