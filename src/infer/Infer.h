//===- infer/Infer.h - JIT type inference ----------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type inference engine (Sections 2.3/2.4): an iterative
/// join-of-all-paths monotone dataflow analysis over the CFG, seeded with a
/// type signature. Produces a conservative type annotation for every
/// expression, plus the facts the code generator consumes:
///
///  - constants (degenerate ranges; Section 2.4 "constant propagation"),
///  - exact shapes (coinciding lower/upper shape bounds),
///  - subscript-safety facts (Section 2.4 "subscript check removal"),
///  - a per-variable storage summary (the join of the variable's types over
///    the whole function, deciding unboxed vs boxed storage).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_INFER_INFER_H
#define MAJIC_INFER_INFER_H

#include "analysis/Disambiguate.h"
#include "infer/TypeCalculator.h"
#include "types/Signature.h"

#include <unordered_map>
#include <unordered_set>

namespace majic {

/// The result of type inference: S, "one type for each expression node"
/// (Section 2.3), plus derived facts.
struct TypeAnnotations {
  std::unordered_map<const Expr *, Type> ExprTypes;

  /// Index reads proven in-bounds with integral subscripts: the generated
  /// code omits the subscript check (Section 2.4).
  std::unordered_set<const Expr *> SafeSubscripts;

  /// Facts about an indexed assignment statement.
  struct WriteFacts {
    /// Subscripts proven integral and within the array's minimum shape:
    /// neither a bounds/resize check nor a grow path is needed.
    bool InBounds = false;
  };
  std::unordered_map<const Stmt *, WriteFacts> Writes;

  /// The loop variable's element type per for statement.
  std::unordered_map<const ForStmt *, Type> LoopVars;

  /// Join of every type each slot assumes across the function: the storage
  /// class the code generator assigns to the variable.
  std::vector<Type> SlotSummary;

  Type typeOf(const Expr *E) const {
    auto It = ExprTypes.find(E);
    return It == ExprTypes.end() ? Type::top() : It->second;
  }
  bool subscriptSafe(const Expr *E) const { return SafeSubscripts.count(E); }
  WriteFacts writeFacts(const Stmt *S) const {
    auto It = Writes.find(S);
    return It == Writes.end() ? WriteFacts() : It->second;
  }
};

struct InferResult {
  TypeAnnotations Ann;
  /// The signature inference ran with (becomes the compiled code's
  /// signature in the repository).
  TypeSignature Signature;
};

/// Runs forward (JIT-mode) type inference over \p FI with parameter types
/// \p Sig. \p Sig may have fewer entries than the function has parameters
/// (missing ones are treated as never-assigned).
InferResult inferTypes(const FunctionInfo &FI, const TypeSignature &Sig,
                       const InferOptions &Opts = InferOptions());

} // namespace majic

#endif // MAJIC_INFER_INFER_H
