//===- infer/Speculate.cpp - Speculative type inference ------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "infer/Speculate.h"

#include "ast/ASTVisit.h"

#include <unordered_map>

using namespace majic;
using rt::BinOp;

namespace {

/// Combines a new hint with an existing one, keeping the tighter guess.
Type meetHints(const Type &A, const Type &B) {
  IntrinsicType IT = intrinsicLE(A.intrinsic(), B.intrinsic())
                         ? A.intrinsic()
                         : B.intrinsic();
  ShapeBound Min = A.minShape().joinUpper(B.minShape());
  ShapeBound Max = A.maxShape().joinLower(B.maxShape());
  return Type(IT, Min, Max, Range::top());
}

class HintCollector {
public:
  HintCollector(const FunctionInfo &FI, const TypeAnnotations &Ann)
      : FI(FI), Ann(Ann), Calc(TypeCalculator::instance()) {}

  std::unordered_map<int, Type> run() {
    // One pass over every statement collecting syntactic hints; then a few
    // reverse sweeps pushing hints through plain assignments toward the
    // parameters.
    visitStmts(FI.F->body(), [this](const Stmt *S) { collectFromStmt(S); });
    for (unsigned Sweep = 0; Sweep != 3; ++Sweep) {
      bool Changed = false;
      propagateThroughAssignments(FI.F->body(), Changed);
      if (!Changed)
        break;
    }
    return Hints;
  }

private:
  static Type intScalarHint() { return Type::scalar(IntrinsicType::Int); }
  static Type realScalarHint() { return Type::scalar(IntrinsicType::Real); }

  /// Back-propagates \p Hint into \p E: variables absorb it, arithmetic
  /// expressions forward it to their operands via the calculator's
  /// backward rules.
  void backProp(const Expr *E, const Type &Hint) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::Ident: {
      const auto *Id = cast<IdentExpr>(E);
      if (Id->symKind() != SymKind::Variable &&
          Id->symKind() != SymKind::Ambiguous)
        return;
      addHint(Id->varSlot(), Hint);
      return;
    }
    case Expr::Kind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      Type AH, BH;
      if (Calc.backwardBinary(B->op(), Hint, AH, BH)) {
        backProp(B->lhs(), AH);
        backProp(B->rhs(), BH);
      }
      return;
    }
    case Expr::Kind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Type OH;
      if (Calc.backwardUnary(U->op(), Hint, OH))
        backProp(U->operand(), OH);
      return;
    }
    default:
      return;
    }
  }

  void addHint(int Slot, const Type &Hint) {
    if (Slot < 0)
      return;
    auto [It, Inserted] = Hints.try_emplace(Slot, Hint);
    if (!Inserted)
      It->second = meetHints(It->second, Hint);
  }

  void collectFromExprTree(const Expr *Root) {
    visitExpr(const_cast<Expr *>(Root),
              [this](Expr *E) { collectFromExpr(E); });
  }

  void collectFromExpr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::Range: {
      // Hint 1: colon operands are almost always integer scalars.
      const auto *R = cast<RangeExpr>(E);
      backProp(R->lo(), intScalarHint());
      backProp(R->step(), intScalarHint());
      backProp(R->hi(), intScalarHint());
      return;
    }
    case Expr::Kind::Binary: {
      // Hint 2: relational operands are real scalars.
      const auto *B = cast<BinaryExpr>(E);
      switch (B->op()) {
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
      case BinOp::Eq:
      case BinOp::Ne:
        backProp(B->lhs(), realScalarHint());
        backProp(B->rhs(), realScalarHint());
        break;
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::MatMul:
      case BinOp::ElemMul:
      case BinOp::MatRDiv:
      case BinOp::ElemRDiv:
      case BinOp::MatPow:
      case BinOp::ElemPow:
        // Arithmetic against a provably scalar operand suggests a scalar
        // operand (the bracket-rule philosophy applied to arithmetic; this
        // is what the alternating forward passes feed: forward types from
        // the previous guess sharpen the next round of hints).
        if (Ann.typeOf(B->lhs()).isScalar())
          backProp(B->rhs(), realScalarHint());
        if (Ann.typeOf(B->rhs()).isScalar())
          backProp(B->lhs(), realScalarHint());
        break;
      default:
        break;
      }
      return;
    }
    case Expr::Kind::Matrix: {
      // Hint 3: when one bracket argument is provably scalar, the others
      // probably are too.
      const auto *M = cast<MatrixExpr>(E);
      bool AnyScalar = false;
      for (const auto &Row : M->rows())
        for (const Expr *Elem : Row)
          AnyScalar |= Ann.typeOf(Elem).isScalar();
      if (!AnyScalar)
        return;
      for (const auto &Row : M->rows())
        for (const Expr *Elem : Row)
          backProp(Elem, realScalarHint());
      return;
    }
    case Expr::Kind::IndexOrCall: {
      const auto *IC = cast<IndexOrCallExpr>(E);
      if (IC->base()->symKind() == SymKind::Variable ||
          IC->base()->symKind() == SymKind::Ambiguous) {
        // Hint 4: F77-style subscripts (no colon anywhere in the access)
        // are likely integer scalars.
        bool HasColonStyle = false;
        for (const Expr *A : IC->args())
          HasColonStyle |= isa<ColonWildcardExpr>(A) || isa<RangeExpr>(A);
        if (!HasColonStyle)
          for (const Expr *A : IC->args())
            backProp(A, intScalarHint());
        return;
      }
      // Hint 5: arguments of shape-creating builtins are integer scalars.
      if (IC->base()->symKind() == SymKind::Builtin) {
        const std::string &Name = IC->base()->name();
        if (Name == "zeros" || Name == "ones" || Name == "rand" ||
            Name == "eye" || Name == "linspace") {
          for (const Expr *A : IC->args())
            backProp(A, intScalarHint());
        } else if (Name == "size" && IC->args().size() == 2) {
          backProp(IC->args()[1], intScalarHint());
        }
      }
      return;
    }
    default:
      return;
    }
  }

  void collectFromStmt(const Stmt *S) {
    visitStmtExprs(S, [this](Expr *E) { collectFromExprTree(E); });
    // if/while conditions: real scalar hints on the condition itself.
    if (const auto *If = dyn_cast<IfStmt>(S)) {
      for (const IfStmt::Branch &Br : If->branches())
        backProp(Br.Cond, realScalarHint());
    } else if (const auto *W = dyn_cast<WhileStmt>(S)) {
      backProp(W->cond(), realScalarHint());
    } else if (const auto *A = dyn_cast<AssignStmt>(S)) {
      // Subscripts on the left-hand side are index positions too.
      for (const LValue &LV : A->targets()) {
        bool HasColonStyle = false;
        for (const Expr *Idx : LV.Indices)
          HasColonStyle |= isa<ColonWildcardExpr>(Idx) || isa<RangeExpr>(Idx);
        if (!HasColonStyle)
          for (const Expr *Idx : LV.Indices)
            backProp(Idx, intScalarHint());
      }
    }
  }

  /// Reverse sweep: a hint on v propagates through "v = expr" into expr.
  void propagateThroughAssignments(const Block &B, bool &Changed) {
    for (auto It = B.rbegin(); It != B.rend(); ++It) {
      const Stmt *S = *It;
      switch (S->getKind()) {
      case Stmt::Kind::Assign: {
        const auto *A = cast<AssignStmt>(S);
        if (A->isMulti())
          break;
        const LValue &LV = A->targets().front();
        if (LV.HasParens || LV.VarSlot < 0)
          break;
        auto HintIt = Hints.find(LV.VarSlot);
        if (HintIt == Hints.end())
          break;
        size_t Before = hintFingerprint();
        backProp(A->rhs(), HintIt->second);
        Changed |= hintFingerprint() != Before;
        break;
      }
      case Stmt::Kind::If: {
        const auto *If = cast<IfStmt>(S);
        for (const IfStmt::Branch &Br : If->branches())
          propagateThroughAssignments(Br.Body, Changed);
        propagateThroughAssignments(If->elseBlock(), Changed);
        break;
      }
      case Stmt::Kind::While:
        propagateThroughAssignments(cast<WhileStmt>(S)->body(), Changed);
        break;
      case Stmt::Kind::For:
        propagateThroughAssignments(cast<ForStmt>(S)->body(), Changed);
        break;
      default:
        break;
      }
    }
  }

  /// Cheap change detector for the sweep loop.
  size_t hintFingerprint() const {
    size_t H = Hints.size();
    for (const auto &[Slot, T] : Hints) {
      H = H * 31 + static_cast<size_t>(Slot);
      H = H * 31 + static_cast<size_t>(T.intrinsic());
      H = H * 31 + static_cast<size_t>(T.maxShape().Rows & 0xffff);
      H = H * 31 + static_cast<size_t>(T.maxShape().Cols & 0xffff);
    }
    return H;
  }

  const FunctionInfo &FI;
  const TypeAnnotations &Ann;
  const TypeCalculator &Calc;
  std::unordered_map<int, Type> Hints;
};

} // namespace

TypeSignature majic::speculateSignature(const FunctionInfo &FI,
                                        const InferOptions &Opts) {
  const Function &F = *FI.F;
  std::vector<Type> Guess(F.params().size(), Type::top());

  // Alternate backward (hints) and forward (re-typing) passes until the
  // guessed signature stabilizes (Section 2.5).
  for (unsigned Iter = 0; Iter != 4; ++Iter) {
    InferResult Fwd = inferTypes(FI, TypeSignature(Guess), Opts);
    HintCollector Collector(FI, Fwd.Ann);
    std::unordered_map<int, Type> Hints = Collector.run();

    std::vector<Type> Next(F.params().size(), Type::top());
    for (size_t P = 0; P != F.params().size(); ++P) {
      int Slot = F.paramSlots()[P];
      auto It = Slot >= 0 ? Hints.find(Slot) : Hints.end();
      if (It != Hints.end())
        Next[P] = It->second;
    }
    if (Next == Guess)
      break;
    Guess = std::move(Next);
  }
  return TypeSignature(Guess);
}
