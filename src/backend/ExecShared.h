//===- backend/ExecShared.h - Helpers shared by the VM and native tier -*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution helpers shared between the register VM (backend/VM.cpp) and
/// the native tier's runtime shims (native/NativeRuntime.cpp). Both tiers
/// must agree bit-for-bit on semantics - element stores promote array
/// classes the same way, guarded intrinsics deoptimize on the same domain
/// violations, and a fused elementwise program resolves its result shape
/// and class (and raises the identical dimension errors) through one
/// simulation. Keeping one copy here is what makes "native output ==
/// VM output" a structural property instead of a test-enforced hope.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_EXECSHARED_H
#define MAJIC_BACKEND_EXECSHARED_H

#include "backend/VM.h"
#include "ir/Instr.h"
#include "runtime/Builtins.h"
#include "runtime/Ops.h"
#include "runtime/Value.h"
#include "support/Error.h"
#include "support/StringUtils.h"

namespace majic {
namespace exec {

/// Promotes the array's class tag when storing an element of class \p C.
inline void promoteClass(Value &V, MClass C) {
  if (V.mclass() == MClass::String)
    throw MatlabError("cannot index-assign into a string");
  if (static_cast<int>(C) > static_cast<int>(V.mclass()) &&
      C != MClass::Complex)
    V.setClass(C);
}

/// Direct element store with complex-imaginary clearing.
inline void storeDirect(Value &V, size_t Idx, double X) {
  V.reRef(Idx) = X;
  if (V.isComplex())
    V.imRef(Idx) = 0.0;
}

/// Domain guards for optimistically typed math intrinsics (Section 2.4's
/// guarded-intrinsic story): violation triggers deoptimization.
inline void checkIntrinsicGuard(ScalarIntrinsic Intr, double X) {
  switch (Intr) {
  case ScalarIntrinsic::Sqrt:
  case ScalarIntrinsic::Log:
  case ScalarIntrinsic::Log2:
  case ScalarIntrinsic::Log10:
    if (X < 0)
      throw DeoptError{Intr, X};
    return;
  case ScalarIntrinsic::Asin:
  case ScalarIntrinsic::Acos:
    if (X < -1 || X > 1)
      throw DeoptError{Intr, X};
    return;
  default:
    return;
  }
}

inline Value &requireValue(const ValuePtr &P) {
  if (!P)
    throw MatlabError("internal: use of an empty value register");
  return *P;
}

/// Real-extraction guard: codegen routes a value through F registers only
/// when inference typed it real, and under optimistic real-math that typing
/// is a speculation (sqrt/log/... assumed to stay in domain). A complex
/// value reaching an F extraction means the speculation failed - reading
/// just the real part would silently drop the imaginary half - so
/// deoptimize and let the replay produce the general complex result.
/// Pessimistic code never selects an F path for a possibly-complex value,
/// so this cannot fire twice.
inline const Value &requireRealData(const Value &V) {
  if (V.isComplex())
    throw DeoptError{ScalarIntrinsic::None, 0.0};
  return V;
}

/// The resolved output of a fused elementwise program: shape + class of
/// the Value the executor must allocate.
struct EwPlan {
  size_t Rows = 0;
  size_t Cols = 0;
  MClass Class = MClass::Real;
};

/// Pass 1 of EwFuse execution - the shape/class simulation, mirroring the
/// interpreter's unfused chain: scalars (1x1) broadcast, equal shapes
/// pass, anything else throws the interpreter's exact dimension error at
/// the same operator. Classes follow arithResultClass: int-preserving ops
/// keep int-like (Int/Bool) operands Int; division, power, and math
/// builtins give Real. Operands that are null, complex, or string raise
/// the same errors/deopts the VM's operand gather would, so the native
/// tier's allocation shim and the VM share one failure surface.
inline EwPlan ewSimulate(const Value *const *Ops, int32_t NumOps,
                         const int32_t *Prog, size_t ProgLen) {
  for (int32_t K = 0; K != NumOps; ++K) {
    if (!Ops[K])
      throw MatlabError("internal: use of an empty value register");
    const Value &V = *Ops[K];
    if (V.isComplex() || V.mclass() == MClass::String)
      throw DeoptError{ScalarIntrinsic::None, 0.0};
  }

  struct SimSlot {
    size_t R, C;
    bool Scalar, IntLike;
  };
  SimSlot Sim[ew::kMaxEwStack];
  int SP = 0;
  for (size_t K = 0; K != ProgLen; ++K) {
    int32_t Arg = ew::argOf(Prog[K]);
    switch (ew::opOf(Prog[K])) {
    case ew::EwOp::Push: {
      const Value &V = *Ops[Arg];
      MClass MC = V.mclass();
      Sim[SP++] = {V.rows(), V.cols(), V.isScalar(),
                   MC == MClass::Int || MC == MClass::Bool};
      break;
    }
    case ew::EwOp::Bin: {
      auto Op = static_cast<rt::BinOp>(Arg);
      SimSlot &L = Sim[SP - 2], &R = Sim[SP - 1];
      --SP;
      // MatMul (*) and MatRDiv (/) were fused because one side was typed
      // scalar; if the runtime value disagrees, the op is a real matrix
      // product/solve - deoptimize so the interpreter's general path
      // (and its distinct error messages) takes over.
      if ((Op == rt::BinOp::MatMul && !L.Scalar && !R.Scalar) ||
          (Op == rt::BinOp::MatRDiv && !R.Scalar))
        throw DeoptError{ScalarIntrinsic::None, 0.0};
      size_t RR, RC;
      if (L.Scalar) {
        RR = R.R;
        RC = R.C;
      } else if (R.Scalar) {
        RR = L.R;
        RC = L.C;
      } else if (L.R == R.R && L.C == R.C) {
        RR = L.R;
        RC = L.C;
      } else {
        throw MatlabError(format(
            "matrix dimensions must agree for operator '%s' (%zux%zu vs "
            "%zux%zu)",
            rt::binOpName(Op), L.R, L.C, R.R, R.C));
      }
      bool Preserving = Op == rt::BinOp::Add || Op == rt::BinOp::Sub ||
                        Op == rt::BinOp::ElemMul || Op == rt::BinOp::MatMul;
      L = {RR, RC, RR == 1 && RC == 1,
           Preserving && L.IntLike && R.IntLike};
      break;
    }
    case ew::EwOp::Neg:
      // Negation preserves shape; Bool negates to Int, both int-like.
      break;
    case ew::EwOp::Intr:
      Sim[SP - 1].IntLike = false; // math builtins produce Real arrays
      break;
    }
  }

  return {Sim[0].R, Sim[0].C, Sim[0].IntLike ? MClass::Int : MClass::Real};
}

} // namespace exec
} // namespace majic

#endif // MAJIC_BACKEND_EXECSHARED_H
