//===- backend/Optimize.cpp - The "native compiler" pipeline --------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/Optimize.h"

#include "backend/CodeGen.h"
#include "ir/Operands.h"
#include "runtime/Builtins.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

using namespace majic;

namespace {

bool isBranch(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::Brz || Op == Opcode::Brnz;
}

/// Positions that begin a basic block: entry, branch targets, fallthroughs
/// after branches.
std::vector<bool> blockStarts(const IRFunction &F) {
  std::vector<bool> Starts(F.Code.size() + 1, false);
  Starts[0] = true;
  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    const Instr &In = F.Code[Pos];
    if (isBranch(In.Op)) {
      Starts[In.A] = true;
      if (Pos + 1 < Starts.size())
        Starts[Pos + 1] = true;
    } else if (In.Op == Opcode::Ret && Pos + 1 < Starts.size()) {
      Starts[Pos + 1] = true;
    }
  }
  return Starts;
}

//===----------------------------------------------------------------------===//
// Local value numbering: constant folding, copy propagation, CSE
//===----------------------------------------------------------------------===//

/// Per-block value state. F and I registers live in disjoint namespaces, so
/// every map is keyed by (class, register).
struct VNState {
  static int64_t key(bool IsF, int32_t R) {
    return (IsF ? (int64_t(1) << 40) : 0) | static_cast<uint32_t>(R);
  }

  // (class, vreg) -> current version (bumped on redefinition).
  std::unordered_map<int64_t, uint32_t> Version;
  // (class, vreg) -> known constant, valid for the current version.
  std::unordered_map<int64_t, double> FConstOf;
  std::unordered_map<int64_t, int64_t> IConstOf;
  // (class, vreg) -> copy source (same class).
  struct Copy {
    int32_t Src;
    uint32_t SrcVersion;
  };
  std::unordered_map<int64_t, Copy> CopyOf;
  // Expression table: encoded expression -> (holder reg, holder version).
  struct Holder {
    int32_t Reg;
    uint32_t Version;
  };
  std::map<std::vector<int64_t>, Holder> Exprs;

  uint32_t version(bool IsF, int32_t R) {
    auto It = Version.find(key(IsF, R));
    return It == Version.end() ? 0 : It->second;
  }

  void define(bool IsF, int32_t R) {
    ++Version[key(IsF, R)];
    FConstOf.erase(key(IsF, R));
    IConstOf.erase(key(IsF, R));
    CopyOf.erase(key(IsF, R));
  }

  void reset() {
    Version.clear();
    FConstOf.clear();
    IConstOf.clear();
    CopyOf.clear();
    Exprs.clear();
  }
};

class ValueNumbering {
public:
  ValueNumbering(IRFunction &F, OptimizeStats &Stats) : F(F), Stats(Stats) {}

  void run() {
    std::vector<bool> Starts = blockStarts(F);
    for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
      if (Starts[Pos])
        S.reset();
      visit(F.Code[Pos]);
    }
  }

private:
  /// Canonicalizes a use operand: follow valid copies within the class.
  void canon(int32_t &R, bool IsF) {
    auto It = S.CopyOf.find(VNState::key(IsF, R));
    if (It != S.CopyOf.end() &&
        S.version(IsF, It->second.Src) == It->second.SrcVersion)
      R = It->second.Src;
  }

  bool fconst(int32_t R, double &V) {
    auto It = S.FConstOf.find(VNState::key(true, R));
    if (It == S.FConstOf.end())
      return false;
    V = It->second;
    return true;
  }
  bool iconst(int32_t R, int64_t &V) {
    auto It = S.IConstOf.find(VNState::key(false, R));
    if (It == S.IConstOf.end())
      return false;
    V = It->second;
    return true;
  }

  void visit(Instr &In);

  IRFunction &F;
  OptimizeStats &Stats;
  VNState S;
};

void ValueNumbering::visit(Instr &In) {
  const InstrOperands &Ops = instrOperands(In.Op);

  // Canonicalize F/I use operands through copies. The version-checked copy
  // map makes this safe without SSA. Keys are physical field slots.
  int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
  for (unsigned K = 0; K != 4; ++K) {
    OperandKind OK = Ops.Fields[K];
    if ((OK == OperandKind::UseF || OK == OperandKind::UseI) && *Fields[K] >= 0)
      canon(*Fields[K], OK == OperandKind::UseF);
  }

  // Constant folding.
  auto FoldF = [&](double V) {
    S.define(true, In.A);
    Instr NewIn = Instr::make(Opcode::FConst, In.A);
    NewIn.Imm.F = V;
    In = NewIn;
    S.FConstOf[VNState::key(true, In.A)] = V;
    ++Stats.NumFolded;
  };
  auto FoldI = [&](int64_t V) {
    S.define(false, In.A);
    Instr NewIn = Instr::make(Opcode::IConst, In.A);
    NewIn.Imm.I = V;
    In = NewIn;
    S.IConstOf[VNState::key(false, In.A)] = V;
    ++Stats.NumFolded;
  };

  double FB = 0, FC = 0;
  int64_t IB = 0, IC = 0;
  switch (In.Op) {
  case Opcode::FConst:
    S.define(true, In.A);
    S.FConstOf[VNState::key(true, In.A)] = In.Imm.F;
    return;
  case Opcode::IConst:
    S.define(false, In.A);
    S.IConstOf[VNState::key(false, In.A)] = In.Imm.I;
    return;
  case Opcode::MovF: {
    double FV;
    bool IsConst = fconst(In.B, FV);
    uint32_t SrcVer = S.version(true, In.B);
    S.define(true, In.A);
    if (IsConst)
      S.FConstOf[VNState::key(true, In.A)] = FV;
    if (In.A != In.B)
      S.CopyOf[VNState::key(true, In.A)] = {In.B, SrcVer};
    return;
  }
  case Opcode::MovI: {
    int64_t IV;
    bool IsConst = iconst(In.B, IV);
    uint32_t SrcVer = S.version(false, In.B);
    S.define(false, In.A);
    if (IsConst)
      S.IConstOf[VNState::key(false, In.A)] = IV;
    if (In.A != In.B)
      S.CopyOf[VNState::key(false, In.A)] = {In.B, SrcVer};
    return;
  }
  case Opcode::IToF:
    if (iconst(In.B, IB)) {
      FoldF(static_cast<double>(IB));
      return;
    }
    break;
  case Opcode::FToI:
    if (fconst(In.B, FB)) {
      FoldI(static_cast<int64_t>(FB));
      return;
    }
    break;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FPow:
    if (fconst(In.B, FB) && fconst(In.C, FC)) {
      double R = In.Op == Opcode::FAdd   ? FB + FC
                 : In.Op == Opcode::FSub ? FB - FC
                 : In.Op == Opcode::FMul ? FB * FC
                 : In.Op == Opcode::FDiv ? FB / FC
                                         : std::pow(FB, FC);
      FoldF(R);
      return;
    }
    break;
  case Opcode::FNeg:
    if (fconst(In.B, FB)) {
      FoldF(-FB);
      return;
    }
    break;
  case Opcode::FIntr1:
    if (fconst(In.B, FB)) {
      FoldF(evalScalarIntrinsic1(static_cast<ScalarIntrinsic>(In.Imm.I), FB));
      return;
    }
    break;
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
    if (iconst(In.B, IB) && iconst(In.C, IC)) {
      int64_t R = In.Op == Opcode::IAdd   ? IB + IC
                  : In.Op == Opcode::ISub ? IB - IC
                                          : IB * IC;
      FoldI(R);
      return;
    }
    break;
  case Opcode::INeg:
    if (iconst(In.B, IB)) {
      FoldI(-IB);
      return;
    }
    break;
  default:
    break;
  }

  // CSE over pure F/I-producing expressions with F/I operands only.
  bool CSECandidate = false;
  switch (In.Op) {
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FPow:
  case Opcode::FIntr1:
  case Opcode::FIntr2:
  case Opcode::FCmp:
  case Opcode::IToF:
  case Opcode::FToI:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::INeg:
  case Opcode::ICmp:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::INot:
    CSECandidate = true;
    break;
  default:
    break;
  }

  if (CSECandidate) {
    std::vector<int64_t> Key;
    Key.push_back(static_cast<int64_t>(In.Op));
    Key.push_back(In.Imm.I);
    for (unsigned K = 1; K != 4; ++K) {
      OperandKind OK = Ops.Fields[K];
      if (OK == OperandKind::UseF || OK == OperandKind::UseI) {
        bool UseIsF = OK == OperandKind::UseF;
        Key.push_back(VNState::key(UseIsF, *Fields[K]));
        Key.push_back(S.version(UseIsF, *Fields[K]));
      }
    }
    bool DefIsF = Ops.Fields[0] == OperandKind::DefF;
    auto It = S.Exprs.find(Key);
    if (It != S.Exprs.end() &&
        S.version(DefIsF, It->second.Reg) == It->second.Version) {
      int32_t Src = It->second.Reg;
      int32_t Dst = In.A;
      if (Src == Dst)
        return; // recomputation into the same register: keep as-is
      In = Instr::make(DefIsF ? Opcode::MovF : Opcode::MovI, Dst, Src);
      S.define(DefIsF, Dst);
      S.CopyOf[VNState::key(DefIsF, Dst)] = {Src, S.version(DefIsF, Src)};
      ++Stats.NumCSE;
      return;
    }
    S.define(DefIsF, In.A);
    S.Exprs[Key] = {In.A, S.version(DefIsF, In.A)};
    return;
  }

  // Generic definition handling for anything else.
  for (unsigned K = 0; K != 4; ++K) {
    OperandKind OK = Ops.Fields[K];
    if ((OK == OperandKind::DefF || OK == OperandKind::DefI) &&
        *Fields[K] >= 0)
      S.define(OK == OperandKind::DefF, *Fields[K]);
  }
}

//===----------------------------------------------------------------------===//
// Rebuild helper: applies insertions and Nop removal, patching branches
// and loop metadata.
//===----------------------------------------------------------------------===//

void rebuild(IRFunction &F,
             const std::multimap<uint32_t, Instr> &InsertBefore,
             bool DropNops) {
  std::vector<Instr> NewCode;
  NewCode.reserve(F.Code.size() + InsertBefore.size());
  std::vector<int32_t> NewPos(F.Code.size() + 1, 0);

  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    auto [Lo, Hi] = InsertBefore.equal_range(static_cast<uint32_t>(Pos));
    for (auto It = Lo; It != Hi; ++It)
      NewCode.push_back(It->second);
    // Branch targets map to the original instruction, *after* insertions:
    // code hoisted to a loop header runs on fall-through entry only, not on
    // every back edge (headers are only ever targeted by their back edges).
    NewPos[Pos] = static_cast<int32_t>(NewCode.size());
    if (!(DropNops && F.Code[Pos].Op == Opcode::Nop))
      NewCode.push_back(F.Code[Pos]);
  }
  NewPos[F.Code.size()] = static_cast<int32_t>(NewCode.size());

  for (Instr &In : NewCode)
    if (isBranch(In.Op))
      In.A = NewPos[In.A];
  for (LoopMeta &L : F.Loops) {
    L.HeaderIndex = NewPos[L.HeaderIndex];
    L.BodyBegin = NewPos[L.BodyBegin];
    L.LatchIndex = NewPos[L.LatchIndex];
    L.ExitIndex = NewPos[L.ExitIndex];
  }
  F.Code = std::move(NewCode);
}

//===----------------------------------------------------------------------===//
// LICM
//===----------------------------------------------------------------------===//

/// Hoists invariant instructions out of one loop; returns true when the
/// function was rebuilt (loop metadata refreshed).
bool hoistOneLoop(IRFunction &F, const LoopMeta &L, OptimizeStats &Stats) {
  std::multimap<uint32_t, Instr> Hoists;
  {
    if (L.BodyBegin >= L.ExitIndex || L.ExitIndex > F.Code.size())
      return false;
    // Registers defined anywhere inside the loop region (header..exit).
    std::vector<bool> FDef, IDef;
    auto NoteDef = [](std::vector<bool> &V, int32_t R) {
      if (R < 0)
        return;
      if (static_cast<size_t>(R) >= V.size())
        V.resize(R + 1, false);
      V[R] = true;
    };
    auto IsDef = [](const std::vector<bool> &V, int32_t R) {
      return R >= 0 && static_cast<size_t>(R) < V.size() && V[R];
    };
    // Count definitions per reg so multiply-defined dsts are not hoisted.
    std::unordered_map<int64_t, unsigned> DefCount;
    for (uint32_t Pos = L.HeaderIndex; Pos < L.ExitIndex; ++Pos) {
      const Instr &In = F.Code[Pos];
      const InstrOperands &Ops = instrOperands(In.Op);
      const int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
      for (unsigned K = 0; K != 4; ++K) {
        OperandKind OK = Ops.Fields[K];
        if (OK == OperandKind::DefF) {
          NoteDef(FDef, *Fields[K]);
          ++DefCount[(1ll << 32) | *Fields[K]];
        } else if (OK == OperandKind::DefI) {
          NoteDef(IDef, *Fields[K]);
          ++DefCount[*Fields[K]];
        }
      }
    }

    for (uint32_t Pos = L.BodyBegin; Pos < L.LatchIndex; ++Pos) {
      Instr &In = F.Code[Pos];
      if (!isHoistableInstr(In.Op))
        continue;
      const InstrOperands &Ops = instrOperands(In.Op);
      const int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
      bool Invariant = true;
      for (unsigned K = 1; K != 4 && Invariant; ++K) {
        OperandKind OK = Ops.Fields[K];
        if (OK == OperandKind::UseF)
          Invariant = !IsDef(FDef, *Fields[K]);
        else if (OK == OperandKind::UseI)
          Invariant = !IsDef(IDef, *Fields[K]);
        else if (OK != OperandKind::None)
          Invariant = false; // P operand: not handled
      }
      if (!Invariant)
        continue;
      // The destination must be defined exactly once in the loop (here).
      OperandKind DefOK = Ops.Fields[0];
      bool DefIsF = DefOK == OperandKind::DefF;
      if (DefOK != OperandKind::DefF && DefOK != OperandKind::DefI)
        continue;
      int64_t Key = DefIsF ? ((1ll << 32) | In.A) : In.A;
      if (DefCount[Key] != 1)
        continue;
      Hoists.emplace(L.HeaderIndex, In);
      In = Instr::make(Opcode::Nop);
      ++Stats.NumHoisted;
      // Record the hoisted def so later candidates depending on it remain
      // hoistable... they do not: conservatively leave FDef/IDef marked.
    }
  }

  if (Hoists.empty())
    return false;
  rebuild(F, Hoists, /*DropNops=*/true);
  return true;
}

void runLICM(IRFunction &F, OptimizeStats &Stats) {
  // One loop at a time, rebuilding in between: instructions hoisted into an
  // inner loop's header become visible definitions for the enclosing loop's
  // invariance analysis (hoisting everything in one batch would let an
  // outer loop lift users above their freshly hoisted inner-loop defs).
  for (size_t LoopIdx = 0; LoopIdx != F.Loops.size(); ++LoopIdx)
    hoistOneLoop(F, F.Loops[LoopIdx], Stats);
}

//===----------------------------------------------------------------------===//
// Unrolling
//===----------------------------------------------------------------------===//

void runUnroll(IRFunction &F, unsigned Factor, unsigned MaxBody,
               OptimizeStats &Stats) {
  if (F.Loops.empty() || Factor < 2)
    return;

  // Collect all branch targets to verify bodies are single-entry.
  std::vector<uint32_t> Targets;
  for (const Instr &In : F.Code)
    if (isBranch(In.Op))
      Targets.push_back(static_cast<uint32_t>(In.A));

  // Unroll one loop at a time (positions shift after each rebuild).
  for (size_t LoopIdx = 0; LoopIdx != F.Loops.size(); ++LoopIdx) {
    const LoopMeta L = F.Loops[LoopIdx];
    uint32_t BodySize = L.LatchIndex - L.BodyBegin;
    if (BodySize == 0 || BodySize > MaxBody)
      continue;
    // Straight-line body: no branches inside, no external jumps into it.
    bool Straight = true;
    for (uint32_t Pos = L.BodyBegin; Pos < L.LatchIndex && Straight; ++Pos)
      Straight = !isBranch(F.Code[Pos].Op) && F.Code[Pos].Op != Opcode::Ret;
    for (uint32_t T : Targets)
      if (T > L.BodyBegin && T <= L.LatchIndex)
        Straight = false;
    if (!Straight)
      continue;
    // Expected shape produced by the code generator:
    //   Header:  ICmp cond, k, TC (LT); Brz cond -> Exit
    //   Body:    ...
    //   Latch:   IAdd k, k, 1; Br Header
    const Instr &HeadCmp = F.Code[L.HeaderIndex];
    const Instr &HeadBr = F.Code[L.HeaderIndex + 1];
    const Instr &Latch = F.Code[L.LatchIndex];
    if (HeadCmp.Op != Opcode::ICmp || HeadBr.Op != Opcode::Brz ||
        Latch.Op != Opcode::IAdd || Latch.A != L.CounterReg)
      continue;

    // Build the unrolled replacement.
    std::vector<Instr> New;
    auto EmitBody = [&] {
      for (uint32_t Pos = L.BodyBegin; Pos < L.LatchIndex; ++Pos)
        New.push_back(F.Code[Pos]);
    };
    int32_t KTmp = static_cast<int32_t>(F.NumI++);
    int32_t Cond = static_cast<int32_t>(F.NumI++);

    // Prefix: everything before the header.
    New.insert(New.end(), F.Code.begin(), F.Code.begin() + L.HeaderIndex);

    // Unrolled header: while (k + Factor - 1 < TC).
    size_t UHeader = New.size();
    {
      Instr Add = Instr::make(Opcode::IAdd, KTmp, L.CounterReg);
      Add.C = -1;
      // k + (Factor-1) via constant register.
      Instr Cst = Instr::make(Opcode::IConst, Cond); // reuse Cond as temp
      Cst.Imm.I = static_cast<int64_t>(Factor - 1);
      New.push_back(Cst);
      Add.C = Cond;
      New.push_back(Add);
      Instr Cmp = Instr::make(Opcode::ICmp, Cond, KTmp, L.TripReg);
      Cmp.Imm.I = static_cast<int64_t>(CondCode::LT);
      New.push_back(Cmp);
      Instr Brz = Instr::make(Opcode::Brz, /*target patched below*/ 0, Cond);
      New.push_back(Brz);
    }
    size_t UBrz = New.size() - 1;
    for (unsigned U = 0; U != Factor; ++U) {
      EmitBody();
      New.push_back(F.Code[L.LatchIndex]); // IAdd k, k, 1
    }
    {
      Instr Br = Instr::make(Opcode::Br, static_cast<int32_t>(UHeader));
      New.push_back(Br);
    }
    // Remainder loop: the original header/body/latch.
    size_t RHeader = New.size();
    New[UBrz].A = static_cast<int32_t>(RHeader);
    {
      Instr Cmp = F.Code[L.HeaderIndex];
      New.push_back(Cmp);
      Instr Brz = F.Code[L.HeaderIndex + 1];
      Brz.A = 0; // patched to exit below
      New.push_back(Brz);
    }
    size_t RBrz = New.size() - 1;
    EmitBody();
    New.push_back(F.Code[L.LatchIndex]);
    New.push_back(Instr::make(Opcode::Br, static_cast<int32_t>(RHeader)));
    size_t NewExit = New.size();
    New[RBrz].A = static_cast<int32_t>(NewExit);

    // Suffix: everything from the old exit on. Only *original* prefix and
    // suffix branches are remapped (targets < HeaderIndex stay, targets
    // >= ExitIndex shift by Delta, a target at the old header maps to the
    // unrolled header); branches created by this transform are already
    // correct in the new layout.
    int64_t Delta = static_cast<int64_t>(NewExit) -
                    static_cast<int64_t>(L.ExitIndex);
    size_t SuffixBegin = New.size();
    New.insert(New.end(), F.Code.begin() + L.ExitIndex, F.Code.end());
    auto RemapOriginal = [&](Instr &In) {
      if (!isBranch(In.Op))
        return;
      if (In.A >= static_cast<int32_t>(L.ExitIndex))
        In.A = static_cast<int32_t>(In.A + Delta);
      else if (In.A == static_cast<int32_t>(L.HeaderIndex))
        In.A = static_cast<int32_t>(UHeader);
    };
    for (size_t Pos = 0; Pos != L.HeaderIndex; ++Pos)
      RemapOriginal(New[Pos]);
    for (size_t Pos = SuffixBegin; Pos != New.size(); ++Pos)
      RemapOriginal(New[Pos]);

    F.Code = std::move(New);
    // All loop metadata indices are stale after the rebuild; this pass
    // consumes them, so drop the rest.
    F.Loops.clear();
    ++Stats.NumLoopsUnrolled;
    break; // metadata gone; unroll at most one loop per pipeline round
  }
}

//===----------------------------------------------------------------------===//
// Cross-statement EwFuse merging
//===----------------------------------------------------------------------===//

/// True for instructions that may sit between a merged producer and
/// consumer: they cannot throw a user-visible MatlabError, print, or touch
/// the heap, so deferring the producer's execution past them is invisible.
/// (Guarded FIntr1/2 can throw DeoptError, but a deopt replays the whole
/// call in the interpreter, which reproduces the original order exactly.)
bool isEwMergeGapSafe(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::FConst:
  case Opcode::IConst:
  case Opcode::MovF:
  case Opcode::MovI:
  case Opcode::MovP:
  case Opcode::IToF:
  case Opcode::FToI:
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
  case Opcode::FPow:
  case Opcode::FNeg:
  case Opcode::FIntr1:
  case Opcode::FIntr2:
  case Opcode::FCmp:
  case Opcode::IAdd:
  case Opcode::ISub:
  case Opcode::IMul:
  case Opcode::INeg:
  case Opcode::ICmp:
  case Opcode::IAnd:
  case Opcode::IOr:
  case Opcode::INot:
  case Opcode::BoxF:
  case Opcode::BoxI:
  case Opcode::BoxB:
    return true;
  default:
    return false;
  }
}

/// Maximum stack depth a fused program reaches, or -1 when malformed.
int ewProgramDepth(const IRFunction &F, int32_t Off, int64_t Len) {
  int Sp = 0, Max = 0;
  for (int64_t K = 0; K != Len; ++K) {
    int32_t Entry = F.Pool[Off + K];
    switch (ew::opOf(Entry)) {
    case ew::EwOp::Push:
      if (++Sp > Max)
        Max = Sp;
      break;
    case ew::EwOp::Bin:
      if (Sp < 2)
        return -1;
      --Sp;
      break;
    case ew::EwOp::Neg:
    case ew::EwOp::Intr:
      if (Sp < 1)
        return -1;
      break;
    }
  }
  return Sp == 1 ? Max : -1;
}

/// One merge sweep; returns true when anything merged. A producer EwFuse
/// whose result (optionally forwarded through one single-use MovP) feeds
/// exactly one later EwFuse in the same straight-line region is inlined
/// into the consumer: its program is spliced at the consumer's Push site
/// and the intermediate full-size temporary disappears. Legality mirrors
/// the code generator's error-order rule: the splice site must not be
/// preceded by any Bin entry in the consumer's program (Push/Neg cannot
/// throw a user-visible error, Bin dimension mismatches can), so the
/// producer's error, if any, still fires before every consumer error.
bool mergeEwFuseOnce(IRFunction &F, OptimizeStats &Stats, FusionStats *FS) {
  std::vector<bool> Starts = blockStarts(F);

  // Whole-function P-register use counts (pool uses and call defs count,
  // exactly as DCE counts them, so StoreOut/call liveness is respected).
  std::unordered_map<int32_t, unsigned> PUses;
  for (const Instr &In : F.Code) {
    const InstrOperands &Ops = instrOperands(In.Op);
    const int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
    for (unsigned K = 0; K != 4; ++K) {
      OperandKind OK = Ops.Fields[K];
      if (OK == OperandKind::UseP || OK == OperandKind::UseDefP)
        ++PUses[*Fields[K]];
    }
    if (Ops.PoolUses || Ops.PoolCall) {
      PoolRanges PR = poolRanges(In);
      for (int32_t K = 0; K != PR.UseCount; ++K)
        if (F.Pool[PR.UseOff + K] >= 0)
          ++PUses[F.Pool[PR.UseOff + K]];
      for (int32_t K = 0; K != PR.DefCount; ++K)
        ++PUses[F.Pool[PR.DefOff + K]];
    }
  }

  bool Merged = false;
  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    const Instr &Prod = F.Code[Pos];
    if (Prod.Op != Opcode::EwFuse)
      continue;
    int32_t CurReg = Prod.A;
    if (PUses[CurReg] != 1)
      continue;
    // Producer operand registers must keep their values until the splice
    // site executes; a gap instruction redefining one aborts the scan.
    std::vector<int32_t> Guarded(F.Pool.begin() + Prod.B,
                                 F.Pool.begin() + Prod.B + Prod.C);
    if (std::find(Guarded.begin(), Guarded.end(), CurReg) != Guarded.end())
      continue;

    size_t MovPos = SIZE_MAX;
    size_t ConsPos = SIZE_MAX;
    for (size_t Q = Pos + 1; Q != F.Code.size(); ++Q) {
      if (Starts[Q])
        break; // entering another block: give up on this producer
      const Instr &In = F.Code[Q];
      if (In.Op == Opcode::EwFuse) {
        bool FeedsIt = false;
        for (int32_t K = 0; K != In.C && !FeedsIt; ++K)
          FeedsIt = F.Pool[In.B + K] == CurReg;
        if (FeedsIt)
          ConsPos = Q;
        break; // found the consumer, or an unrelated (unsafe) EwFuse
      }
      if (!isEwMergeGapSafe(In.Op))
        break;
      // Follow at most one single-use MovP forwarding the producer result
      // (the code generator stores fused statement results this way).
      if (In.Op == Opcode::MovP && In.B == CurReg && MovPos == SIZE_MAX &&
          PUses[In.A] == 1 && In.A != In.B) {
        MovPos = Q;
        CurReg = In.A;
        if (std::find(Guarded.begin(), Guarded.end(), CurReg) !=
            Guarded.end()) {
          ConsPos = SIZE_MAX;
          break;
        }
        continue;
      }
      // Any other P definition in the gap must not clobber the forwarded
      // result or a producer operand.
      const InstrOperands &Ops = instrOperands(In.Op);
      const int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
      bool Clobbers = false;
      for (unsigned K = 0; K != 4 && !Clobbers; ++K) {
        OperandKind OK = Ops.Fields[K];
        if (OK == OperandKind::DefP || OK == OperandKind::UseDefP)
          Clobbers = *Fields[K] == CurReg ||
                     std::find(Guarded.begin(), Guarded.end(), *Fields[K]) !=
                         Guarded.end();
      }
      if (Clobbers)
        break;
    }
    if (ConsPos == SIZE_MAX)
      continue;

    Instr &Cons = F.Code[ConsPos];
    // The splice site: exactly one Push of the producer result, with no
    // Bin entry before it (error-order rule above).
    int32_t ProdIdx = -1;
    for (int32_t K = 0; K != Cons.C; ++K)
      if (F.Pool[Cons.B + K] == CurReg)
        ProdIdx = K;
    int PushCount = 0;
    bool BinBefore = false, SeenPush = false;
    for (int64_t K = 0; K != Cons.Imm.I; ++K) {
      int32_t Entry = F.Pool[Cons.D + K];
      if (ew::opOf(Entry) == ew::EwOp::Push && ew::argOf(Entry) == ProdIdx) {
        ++PushCount;
        SeenPush = true;
      } else if (ew::opOf(Entry) == ew::EwOp::Bin && !SeenPush) {
        BinBefore = true;
      }
    }
    if (PushCount != 1 || BinBefore)
      continue;

    // Stack headroom: splicing runs the producer program where the Push
    // would have left one slot, so the merged maximum depth is
    // (depth at the splice site - 1) + producer max depth.
    int ProdDepth = ewProgramDepth(F, Prod.D, Prod.Imm.I);
    if (ProdDepth < 0)
      continue;
    bool TooDeep = false;
    {
      int Sp = 0;
      for (int64_t K = 0; K != Cons.Imm.I; ++K) {
        int32_t Entry = F.Pool[Cons.D + K];
        switch (ew::opOf(Entry)) {
        case ew::EwOp::Push:
          ++Sp;
          if (ew::argOf(Entry) == ProdIdx && Sp - 1 + ProdDepth > ew::kMaxEwStack)
            TooDeep = true;
          break;
        case ew::EwOp::Bin:
          --Sp;
          break;
        case ew::EwOp::Neg:
        case ew::EwOp::Intr:
          break;
        }
      }
    }
    if (TooDeep)
      continue;

    // Build the merged operand table and program.
    std::vector<int32_t> Table, Program;
    auto IndexOf = [&](int32_t Reg) -> int32_t {
      for (size_t K = 0; K != Table.size(); ++K)
        if (Table[K] == Reg)
          return static_cast<int32_t>(K);
      Table.push_back(Reg);
      return static_cast<int32_t>(Table.size() - 1);
    };
    for (int64_t K = 0; K != Cons.Imm.I; ++K) {
      int32_t Entry = F.Pool[Cons.D + K];
      if (ew::opOf(Entry) != ew::EwOp::Push) {
        Program.push_back(Entry);
        continue;
      }
      int32_t Arg = ew::argOf(Entry);
      if (Arg == ProdIdx) {
        for (int64_t J = 0; J != Prod.Imm.I; ++J) {
          int32_t PEntry = F.Pool[Prod.D + J];
          if (ew::opOf(PEntry) == ew::EwOp::Push)
            PEntry = ew::encode(ew::EwOp::Push,
                                IndexOf(F.Pool[Prod.B + ew::argOf(PEntry)]));
          Program.push_back(PEntry);
        }
      } else {
        Program.push_back(
            ew::encode(ew::EwOp::Push, IndexOf(F.Pool[Cons.B + Arg])));
      }
    }

    int32_t TableOff = static_cast<int32_t>(F.Pool.size());
    F.Pool.insert(F.Pool.end(), Table.begin(), Table.end());
    int32_t ProgOff = static_cast<int32_t>(F.Pool.size());
    F.Pool.insert(F.Pool.end(), Program.begin(), Program.end());
    Cons.B = TableOff;
    Cons.C = static_cast<int32_t>(Table.size());
    Cons.D = ProgOff;
    Cons.Imm.I = static_cast<int64_t>(Program.size());

    F.Code[Pos] = Instr::make(Opcode::Nop);
    if (MovPos != SIZE_MAX)
      F.Code[MovPos] = Instr::make(Opcode::Nop);
    ++Stats.NumEwFuseMerged;
    if (FS) {
      FS->Groups -= 1;
      FS->TempsElided += 1;
    }
    Merged = true;
    // Use counts and block starts are stale now; restart the sweep.
    return true;
  }
  return Merged;
}

void runEwFuseMerge(IRFunction &F, OptimizeStats &Stats, FusionStats *FS) {
  // Each successful merge restarts the scan with fresh use counts; the
  // producer count strictly decreases, so this terminates.
  while (mergeEwFuseOnce(F, Stats, FS))
    ;
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

void runDCE(IRFunction &F, OptimizeStats &Stats) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Usage counts per class over the whole function.
    std::unordered_map<int64_t, unsigned> Uses;
    auto Key = [](OperandKind OK, int32_t R) -> int64_t {
      int64_t Cls = OK == OperandKind::UseF || OK == OperandKind::DefF ? 1
                    : OK == OperandKind::UseI || OK == OperandKind::DefI
                        ? 2
                        : 3;
      return (Cls << 32) | static_cast<uint32_t>(R);
    };
    for (const Instr &In : F.Code) {
      const InstrOperands &Ops = instrOperands(In.Op);
      const int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
      for (unsigned K = 0; K != 4; ++K) {
        OperandKind OK = Ops.Fields[K];
        if (OK == OperandKind::UseF || OK == OperandKind::UseI ||
            OK == OperandKind::UseP || OK == OperandKind::UseDefP)
          ++Uses[Key(OK == OperandKind::UseDefP ? OperandKind::UseP : OK,
                     *Fields[K])];
      }
      if (Ops.PoolUses || Ops.PoolCall) {
        PoolRanges PR = poolRanges(In);
        for (int32_t K = 0; K != PR.UseCount; ++K)
          if (F.Pool[PR.UseOff + K] >= 0)
            ++Uses[Key(OperandKind::UseP, F.Pool[PR.UseOff + K])];
        // Call destinations count as uses too (they must stay defined).
        for (int32_t K = 0; K != PR.DefCount; ++K)
          ++Uses[Key(OperandKind::UseP, F.Pool[PR.DefOff + K])];
      }
    }
    for (Instr &In : F.Code) {
      if (!isPureInstr(In.Op) || In.Op == Opcode::Nop)
        continue;
      const InstrOperands &Ops = instrOperands(In.Op);
      const int32_t *Fields[4] = {&In.A, &In.B, &In.C, &In.D};
      bool AnyDef = false, AllDead = true;
      for (unsigned K = 0; K != 4; ++K) {
        OperandKind OK = Ops.Fields[K];
        if (OK == OperandKind::DefF || OK == OperandKind::DefI ||
            OK == OperandKind::DefP) {
          AnyDef = true;
          OperandKind UseK = OK == OperandKind::DefF   ? OperandKind::UseF
                             : OK == OperandKind::DefI ? OperandKind::UseI
                                                       : OperandKind::UseP;
          if (Uses[Key(UseK, *Fields[K])] != 0)
            AllDead = false;
        }
      }
      if (AnyDef && AllDead) {
        In = Instr::make(Opcode::Nop);
        ++Stats.NumDead;
        Changed = true;
      }
    }
  }
  rebuild(F, {}, /*DropNops=*/true);
}

} // namespace

OptimizeStats majic::optimize(IRFunction &F, const OptimizeOptions &Opts) {
  assert(!F.Allocated && "optimize before register allocation");
  OptimizeStats Stats;
  for (unsigned Round = 0; Round != std::max(1u, Opts.Rounds); ++Round) {
    if (Opts.EnableValueNumbering)
      ValueNumbering(F, Stats).run();
    if (Opts.EnableEwFuseMerge)
      runEwFuseMerge(F, Stats, Opts.Fusion);
    if (Opts.EnableLICM)
      runLICM(F, Stats);
    if (Opts.EnableUnroll)
      runUnroll(F, Opts.UnrollFactor, Opts.MaxUnrollBodySize, Stats);
    if (Opts.EnableDCE)
      runDCE(F, Stats);
  }
  return Stats;
}
