//===- backend/RegAlloc.cpp - Linear-scan register allocation ------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/RegAlloc.h"

#include "ir/Operands.h"

#include <algorithm>
#include <limits>

using namespace majic;

namespace {

/// Maps shared operand metadata to the allocator's view (F/I only).
enum class FieldKind : uint8_t { None, DefF, UseF, DefI, UseI };

struct OpFields {
  FieldKind F[4] = {FieldKind::None, FieldKind::None, FieldKind::None,
                    FieldKind::None};
};

OpFields fieldsOf(Opcode Op) {
  const InstrOperands &Ops = instrOperands(Op);
  OpFields R;
  for (unsigned K = 0; K != 4; ++K) {
    switch (Ops.Fields[K]) {
    case OperandKind::DefF:
      R.F[K] = FieldKind::DefF;
      break;
    case OperandKind::UseF:
      R.F[K] = FieldKind::UseF;
      break;
    case OperandKind::DefI:
      R.F[K] = FieldKind::DefI;
      break;
    case OperandKind::UseI:
      R.F[K] = FieldKind::UseI;
      break;
    default:
      break;
    }
  }
  return R;
}

constexpr unsigned NumScratch = 3;

struct Interval {
  int32_t VReg;
  int32_t Start;
  int32_t End;
  int32_t Assigned = -1; // physical register, or -1 when spilled
  int32_t Slot = -1;
};

/// Builds conservative live intervals for one register class.
std::vector<Interval> buildIntervals(const IRFunction &F, bool WantF) {
  std::vector<int32_t> First, Last;
  auto Note = [&](int32_t R, int32_t Pos) {
    if (R < 0)
      return;
    if (static_cast<size_t>(R) >= First.size()) {
      First.resize(R + 1, -1);
      Last.resize(R + 1, -1);
    }
    if (First[R] < 0)
      First[R] = Pos;
    Last[R] = Pos;
  };

  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    const Instr &In = F.Code[Pos];
    OpFields OF = fieldsOf(In.Op);
    const int32_t *Ops[4] = {&In.A, &In.B, &In.C, &In.D};
    for (unsigned K = 0; K != 4; ++K) {
      FieldKind FK = OF.F[K];
      bool IsF = FK == FieldKind::DefF || FK == FieldKind::UseF;
      bool IsI = FK == FieldKind::DefI || FK == FieldKind::UseI;
      if ((WantF && IsF) || (!WantF && IsI))
        Note(*Ops[K], static_cast<int32_t>(Pos));
    }
  }

  // Extend intervals across backward branches: any interval overlapping a
  // loop region is live for the whole region.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
      const Instr &In = F.Code[Pos];
      if (In.Op != Opcode::Br && In.Op != Opcode::Brz && In.Op != Opcode::Brnz)
        continue;
      int32_t Target = In.A;
      auto BranchPos = static_cast<int32_t>(Pos);
      if (Target > BranchPos)
        continue; // forward branch
      for (size_t R = 0; R != First.size(); ++R) {
        if (First[R] < 0)
          continue;
        bool Overlaps = First[R] <= BranchPos && Last[R] >= Target;
        if (!Overlaps)
          continue;
        if (First[R] > Target) {
          First[R] = Target;
          Changed = true;
        }
        if (Last[R] < BranchPos) {
          Last[R] = BranchPos;
          Changed = true;
        }
      }
    }
  }

  std::vector<Interval> Out;
  for (size_t R = 0; R != First.size(); ++R)
    if (First[R] >= 0)
      Out.push_back({static_cast<int32_t>(R), First[R], Last[R], -1, -1});
  std::sort(Out.begin(), Out.end(), [](const Interval &A, const Interval &B) {
    return A.Start < B.Start || (A.Start == B.Start && A.VReg < B.VReg);
  });
  return Out;
}

/// Classic linear scan: assign physical registers [NumScratch, NumPhys),
/// spilling the active interval with the furthest end when full.
void linearScan(std::vector<Interval> &Intervals, unsigned NumPhys,
                bool SpillAll, unsigned &NumSlots) {
  NumSlots = 0;
  if (SpillAll || NumPhys <= NumScratch) {
    for (Interval &It : Intervals)
      It.Slot = static_cast<int32_t>(NumSlots++);
    return;
  }
  unsigned Usable = NumPhys - NumScratch;
  std::vector<Interval *> Active; // sorted by End ascending
  std::vector<int32_t> FreeRegs;
  for (unsigned R = 0; R != Usable; ++R)
    FreeRegs.push_back(static_cast<int32_t>(NumScratch + Usable - 1 - R));

  for (Interval &Cur : Intervals) {
    // Expire old intervals.
    for (size_t K = 0; K != Active.size();) {
      if (Active[K]->End < Cur.Start) {
        FreeRegs.push_back(Active[K]->Assigned);
        Active.erase(Active.begin() + K);
      } else {
        ++K;
      }
    }
    if (!FreeRegs.empty()) {
      Cur.Assigned = FreeRegs.back();
      FreeRegs.pop_back();
      Active.insert(std::upper_bound(Active.begin(), Active.end(), &Cur,
                                     [](const Interval *A, const Interval *B) {
                                       return A->End < B->End;
                                     }),
                    &Cur);
      continue;
    }
    // Spill the interval with the furthest end (Poletto-Sarkar heuristic).
    Interval *Victim = Active.empty() ? nullptr : Active.back();
    if (Victim && Victim->End > Cur.End) {
      Cur.Assigned = Victim->Assigned;
      Victim->Assigned = -1;
      Victim->Slot = static_cast<int32_t>(NumSlots++);
      Active.pop_back();
      Active.insert(std::upper_bound(Active.begin(), Active.end(), &Cur,
                                     [](const Interval *A, const Interval *B) {
                                       return A->End < B->End;
                                     }),
                    &Cur);
    } else {
      Cur.Slot = static_cast<int32_t>(NumSlots++);
    }
  }
}

struct Assignment {
  // Per-vreg: physical register or -1; slot or -1.
  std::vector<int32_t> Phys;
  std::vector<int32_t> Slot;

  void init(const std::vector<Interval> &Intervals) {
    int32_t MaxReg = -1;
    for (const Interval &It : Intervals)
      MaxReg = std::max(MaxReg, It.VReg);
    Phys.assign(MaxReg + 1, -1);
    Slot.assign(MaxReg + 1, -1);
    for (const Interval &It : Intervals) {
      Phys[It.VReg] = It.Assigned;
      Slot[It.VReg] = It.Slot;
    }
  }
};

} // namespace

RegAllocStats majic::allocateRegisters(IRFunction &F,
                                       const PlatformModel &Platform,
                                       const RegAllocOptions &Opts) {
  assert(!F.Allocated && "function already allocated");
  RegAllocStats Stats;

  std::vector<Interval> FInts = buildIntervals(F, /*WantF=*/true);
  std::vector<Interval> IInts = buildIntervals(F, /*WantF=*/false);
  unsigned FSlots = 0, ISlots = 0;
  linearScan(FInts, Platform.NumFRegs, Opts.SpillEverything, FSlots);
  linearScan(IInts, Platform.NumIRegs, Opts.SpillEverything, ISlots);
  for (const Interval &It : FInts)
    Stats.NumFSpilled += It.Slot >= 0;
  for (const Interval &It : IInts)
    Stats.NumISpilled += It.Slot >= 0;

  Assignment FA, IA;
  FA.init(FInts);
  IA.init(IInts);

  // Rewrite pass: map operands, inserting scratch reloads/stores around
  // each instruction for spilled registers.
  std::vector<Instr> NewCode;
  NewCode.reserve(F.Code.size() + 8);
  std::vector<int32_t> NewPos(F.Code.size() + 1, 0);

  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    NewPos[Pos] = static_cast<int32_t>(NewCode.size());
    Instr In = F.Code[Pos];
    OpFields OF = fieldsOf(In.Op);
    int32_t *Ops[4] = {&In.A, &In.B, &In.C, &In.D};

    struct PendingStore {
      Opcode Op;
      int32_t Scratch;
      int32_t Slot;
    };
    std::vector<PendingStore> Stores;

    for (unsigned K = 0; K != 4; ++K) {
      FieldKind FK = OF.F[K];
      if (FK == FieldKind::None || *Ops[K] < 0)
        continue;
      bool IsF = FK == FieldKind::DefF || FK == FieldKind::UseF;
      bool IsDef = FK == FieldKind::DefF || FK == FieldKind::DefI;
      Assignment &Asn = IsF ? FA : IA;
      int32_t V = *Ops[K];
      if (Asn.Phys[V] >= 0) {
        *Ops[K] = Asn.Phys[V];
        continue;
      }
      // Spilled: operate through the scratch register reserved for this
      // field position. Fields A..D map to scratches 0,1,2,0 — safe for
      // every current opcode because no opcode has a same-class def in
      // field A together with a use in field D (see instrOperands); adding
      // one would need a fourth scratch or per-instruction assignment.
      int32_t Scratch = static_cast<int32_t>(K % NumScratch);
      int32_t SlotId = Asn.Slot[V];
      assert(SlotId >= 0 && "register neither assigned nor spilled");
      if (!IsDef) {
        Instr Ld = Instr::make(IsF ? Opcode::FSpLd : Opcode::ISpLd, Scratch);
        Ld.Imm.I = SlotId;
        NewCode.push_back(Ld);
        ++Stats.NumSpillInstrs;
      } else {
        Stores.push_back({IsF ? Opcode::FSpSt : Opcode::ISpSt, Scratch,
                          SlotId});
      }
      *Ops[K] = Scratch;
    }

    NewCode.push_back(In);
    for (const PendingStore &St : Stores) {
      Instr S = Instr::make(St.Op, St.Scratch);
      S.Imm.I = St.Slot;
      NewCode.push_back(S);
      ++Stats.NumSpillInstrs;
    }
  }
  NewPos[F.Code.size()] = static_cast<int32_t>(NewCode.size());

  // Patch branch targets to the new layout (targets include the reloads of
  // the instruction they point at).
  for (Instr &In : NewCode) {
    if (In.Op == Opcode::Br || In.Op == Opcode::Brz || In.Op == Opcode::Brnz)
      In.A = NewPos[In.A];
  }

  F.Code = std::move(NewCode);
  F.NumF = Platform.NumFRegs;
  F.NumI = Platform.NumIRegs;
  F.NumFSpill = FSlots;
  F.NumISpill = ISlots;
  F.NumPSpill = 0;
  F.Allocated = true;
  F.Loops.clear(); // instruction indices are stale now
  return Stats;
}
