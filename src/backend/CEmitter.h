//===- backend/CEmitter.h - C source emission ------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The source code generator's textual backend (Section 2.6: "in
/// speculative mode, the code generator builds C or Fortran source code,
/// which is then compiled and linked with platform native tools"). This
/// reproduction executes compiled code in the register VM instead
/// (DESIGN.md substitution #2), but the C emitter renders the same IR as a
/// self-contained C translation unit against an mlf-style runtime shim —
/// the Figure 3 artifact. The output is for inspection/export; it is not
/// compiled back in.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_CEMITTER_H
#define MAJIC_BACKEND_CEMITTER_H

#include "ir/Instr.h"
#include "types/Signature.h"

#include <string>

namespace majic {

/// Renders unallocated IR as C source. The signature is emitted as the
/// Figure 3 style itype/shape/limits comment block.
std::string emitCSource(const IRFunction &F, const TypeSignature &Sig);

} // namespace majic

#endif // MAJIC_BACKEND_CEMITTER_H
