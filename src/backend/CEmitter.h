//===- backend/CEmitter.h - C source emission ------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The source code generator's textual backend (Section 2.6: "in
/// speculative mode, the code generator builds C or Fortran source code,
/// which is then compiled and linked with platform native tools"). The
/// emitter renders compiled IR as a self-contained C translation unit
/// against the mlf-style runtime interface in majic_mlf.h (the Figure 3
/// artifact). The output is live code: the native tier compiles it with
/// the system C compiler and runs the result in place of the register VM
/// (see native/NativeCompiler.h), so it must build warning-clean under
/// `-std=c11 -Wall -Werror` and reproduce the VM's results bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_CEMITTER_H
#define MAJIC_BACKEND_CEMITTER_H

#include "ir/Instr.h"
#include "types/Signature.h"

#include <string>

namespace majic {

/// Renders IR (allocated or not - spill slots become local arrays) as C
/// source. The signature is emitted as the Figure 3 style
/// itype/shape/limits comment block.
std::string emitCSource(const IRFunction &F, const TypeSignature &Sig);

} // namespace majic

#endif // MAJIC_BACKEND_CEMITTER_H
