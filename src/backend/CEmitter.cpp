//===- backend/CEmitter.cpp - C source emission ----------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every emission decision here is constrained by two hard requirements of
// the native tier: the output must compile warning-clean under
// `-std=c11 -Wall -Werror` (so registers are initialized and
// void-discarded, labels carry null statements, literals never overflow),
// and it must reproduce the register VM bit for bit (so min/max use the
// comparison form rather than fmin/fmax, non-finite constants are spelled
// as IEEE bit patterns, and guarded intrinsics/negative-base powers
// deoptimize through the host exactly where the VM would).
//
//===----------------------------------------------------------------------===//

#include "backend/CEmitter.h"

#include "runtime/Builtins.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

using namespace majic;

namespace {

std::string freg(int32_t R) { return format("f%d", R); }
std::string ireg(int32_t R) { return format("i%d", R); }
std::string preg(int32_t R) { return format("p%d", R); }

const char *condOp(CondCode CC) {
  switch (CC) {
  case CondCode::LT:
    return "<";
  case CondCode::LE:
    return "<=";
  case CondCode::GT:
    return ">";
  case CondCode::GE:
    return ">=";
  case CondCode::EQ:
    return "==";
  case CondCode::NE:
    return "!=";
  }
  return "?";
}

/// The mlf-style names Figure 3 uses for the generic operators.
const char *mlfBinaryName(rt::BinOp Op) {
  switch (Op) {
  case rt::BinOp::Add:
    return "mlfPlus";
  case rt::BinOp::Sub:
    return "mlfMinus";
  case rt::BinOp::MatMul:
    return "mlfTimes";
  case rt::BinOp::ElemMul:
    return "mlfDotTimes";
  case rt::BinOp::MatRDiv:
    return "mlfRdivide";
  case rt::BinOp::ElemRDiv:
    return "mlfDotRdivide";
  case rt::BinOp::MatLDiv:
    return "mlfLdivide";
  case rt::BinOp::ElemLDiv:
    return "mlfDotLdivide";
  case rt::BinOp::MatPow:
    return "mlfPower";
  case rt::BinOp::ElemPow:
    return "mlfDotPower";
  case rt::BinOp::Lt:
    return "mlfLt";
  case rt::BinOp::Le:
    return "mlfLe";
  case rt::BinOp::Gt:
    return "mlfGt";
  case rt::BinOp::Ge:
    return "mlfGe";
  case rt::BinOp::Eq:
    return "mlfEq";
  case rt::BinOp::Ne:
    return "mlfNe";
  case rt::BinOp::And:
    return "mlfAnd";
  case rt::BinOp::Or:
    return "mlfOr";
  }
  return "mlfBinary";
}

const char *intrName(ScalarIntrinsic I) {
  switch (I) {
  case ScalarIntrinsic::Abs:
    return "fabs";
  case ScalarIntrinsic::Sqrt:
    return "sqrt";
  case ScalarIntrinsic::Exp:
    return "exp";
  case ScalarIntrinsic::Log:
    return "log";
  case ScalarIntrinsic::Log2:
    return "log2";
  case ScalarIntrinsic::Log10:
    return "log10";
  case ScalarIntrinsic::Sin:
    return "sin";
  case ScalarIntrinsic::Cos:
    return "cos";
  case ScalarIntrinsic::Tan:
    return "tan";
  case ScalarIntrinsic::Asin:
    return "asin";
  case ScalarIntrinsic::Acos:
    return "acos";
  case ScalarIntrinsic::Atan:
    return "atan";
  case ScalarIntrinsic::Sinh:
    return "sinh";
  case ScalarIntrinsic::Cosh:
    return "cosh";
  case ScalarIntrinsic::Tanh:
    return "tanh";
  case ScalarIntrinsic::Floor:
    return "floor";
  case ScalarIntrinsic::Ceil:
    return "ceil";
  case ScalarIntrinsic::Round:
    return "round";
  case ScalarIntrinsic::Fix:
    return "trunc";
  case ScalarIntrinsic::Sign:
    return "mlf_sign";
  case ScalarIntrinsic::Atan2:
    return "atan2";
  case ScalarIntrinsic::Mod:
    return "mlf_mod";
  case ScalarIntrinsic::Rem:
    return "mlf_rem";
  case ScalarIntrinsic::Min2:
    // NOT fmin/fmax: their NaN-absorbing semantics differ from the
    // host's std::min/std::max comparison form.
    return "mlf_min2";
  case ScalarIntrinsic::Max2:
    return "mlf_max2";
  case ScalarIntrinsic::Hypot:
    return "hypot";
  case ScalarIntrinsic::None:
    break;
  }
  return "mlf_intr";
}

std::string shapeStr(const ShapeBound &S) {
  auto Dim = [](uint64_t D) {
    return D == ShapeBound::kUnknownDim
               ? std::string("*")
               : format("%llu", static_cast<unsigned long long>(D));
  };
  return Dim(S.Rows) + "x" + Dim(S.Cols);
}

/// A C double literal that reconstructs \p X exactly. %.17g loses
/// infinities ("inf" is not C) and NaNs, so those go through their bit
/// patterns instead.
std::string fLit(double X) {
  if (!std::isfinite(X)) {
    unsigned long long Bits;
    std::memcpy(&Bits, &X, sizeof Bits);
    return format("mlf_f64bits(0x%016llxull)", Bits);
  }
  return format("%.17g", X);
}

/// A C long long literal. INT64_MIN has no direct spelling (the '-' is
/// applied to an out-of-range positive constant).
std::string iLit(int64_t X) {
  if (X == INT64_MIN)
    return "(-9223372036854775807LL - 1)";
  return format("%lld", static_cast<long long>(X));
}

} // namespace

std::string majic::emitCSource(const IRFunction &F, const TypeSignature &Sig) {
  std::string Out;
  Out += "/* Generated by the MaJIC speculative-mode source code generator.\n";
  Out += format(" * function: %s\n", F.Name.c_str());
  for (size_t P = 0; P != Sig.size(); ++P) {
    const Type &T = Sig[P];
    std::string Limits =
        T.range().isTop()
            ? "<-inf,inf>"
            : T.range().isBottom()
                  ? "<>"
                  : format("<%g,%g>", T.range().Lo, T.range().Hi);
    Out += format(" *   itype(arg%zu)=%s  minshape=%s maxshape=%s  "
                  "limits=%s\n",
                  P, intrinsicName(T.intrinsic()),
                  shapeStr(T.minShape()).c_str(),
                  shapeStr(T.maxShape()).c_str(), Limits.c_str());
  }
  Out += " * mxValue handles are reference counted by the runtime shim.\n";
  Out += " */\n";
  Out += "#include \"majic_mlf.h\"\n\n";

  // Fused elementwise programs become file-scope tables (emitting them
  // inline would put declarations after labels and re-materialize the
  // array on every execution of the loop's enclosing block).
  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    const Instr &In = F.Code[Pos];
    if (In.Op != Opcode::EwFuse || In.Imm.I <= 0)
      continue;
    Out += format("static const int mlf_prog_%zu[] = {", Pos);
    for (int64_t K = 0; K != In.Imm.I; ++K)
      Out += format("%s%d", K ? ", " : "", F.Pool[In.D + K]);
    Out += "};\n";
  }

  Out += format("\nint %s_compiled(mxValue **args, int nargs, "
                "mxValue **outs, int nouts) {\n",
                cIdentifier(F.Name).c_str());

  // Declarations. Registers are assigned along every path that reads
  // them, but the C compiler cannot always prove that across the goto
  // graph, so initialize everything; the (void) line keeps registers the
  // allocator made write-only (or never used) from tripping
  // -Wunused-but-set-variable under -Werror.
  std::string Discards;
  if (F.NumF) {
    Out += "  double";
    for (unsigned R = 0; R != F.NumF; ++R) {
      Out += format("%s %s = 0", R ? "," : "", freg(R).c_str());
      Discards += format("(void)%s; ", freg(R).c_str());
    }
    Out += ";\n";
  }
  if (F.NumI) {
    Out += "  long long";
    for (unsigned R = 0; R != F.NumI; ++R) {
      Out += format("%s %s = 0", R ? "," : "", ireg(R).c_str());
      Discards += format("(void)%s; ", ireg(R).c_str());
    }
    Out += ";\n";
  }
  if (F.NumP) {
    Out += "  mxValue";
    for (unsigned R = 0; R != F.NumP; ++R) {
      Out += format("%s *%s = 0", R ? "," : "", preg(R).c_str());
      Discards += format("(void)%s; ", preg(R).c_str());
    }
    Out += ";\n";
  }
  // Spill slots from allocated IR map to plain local arrays (a pointer
  // spill copies the box pointer: slot and register are the same virtual
  // register, so the aliasing is exactly the VM's).
  if (F.NumFSpill) {
    Out += format("  double fsp[%u] = {0};\n", F.NumFSpill);
    Discards += "(void)fsp; ";
  }
  if (F.NumISpill) {
    Out += format("  long long isp[%u] = {0};\n", F.NumISpill);
    Discards += "(void)isp; ";
  }
  if (F.NumPSpill) {
    Out += format("  mxValue *psp[%u] = {0};\n", F.NumPSpill);
    Discards += "(void)psp; ";
  }

  // Back-edge counter for cooperative interruption: the VM polls its
  // execution budget every 256 instructions; generated code polls every
  // 256 backward branches, so unbounded loops stay interruptible.
  bool HasBackEdge = false;
  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    const Instr &In = F.Code[Pos];
    if ((In.Op == Opcode::Br || In.Op == Opcode::Brz ||
         In.Op == Opcode::Brnz) &&
        In.A <= static_cast<int32_t>(Pos))
      HasBackEdge = true;
  }
  if (HasBackEdge)
    Out += "  long long mlf_ops = 0;\n";
  if (!Discards.empty()) {
    Discards.pop_back(); // trailing space
    Out += "  " + Discards + "\n";
  }
  Out += "\n";

  // Branch targets need labels.
  std::set<int32_t> Labels;
  for (const Instr &In : F.Code)
    if (In.Op == Opcode::Br || In.Op == Opcode::Brz || In.Op == Opcode::Brnz)
      Labels.insert(In.A);

  auto PoolArgs = [&](int32_t Off, int32_t N) {
    std::string S;
    for (int32_t K = 0; K != N; ++K) {
      if (K)
        S += ", ";
      S += F.Pool[Off + K] < 0 ? "MLF_COLON" : preg(F.Pool[Off + K]);
    }
    return S;
  };
  // Call destinations are written through their address (the callee
  // boxes fresh results).
  auto PoolDsts = [&](int32_t Off, int32_t N) {
    std::string S;
    for (int32_t K = 0; K != N; ++K) {
      if (K)
        S += ", ";
      S += "&" + preg(F.Pool[Off + K]);
    }
    return S;
  };
  // Polling guard spliced ahead of a backward goto.
  auto BackPoll = [&](int32_t Target, size_t Pos) {
    return Target <= static_cast<int32_t>(Pos)
               ? std::string("if ((++mlf_ops & 0xff) == 0) { mlfPoll(256); } ")
               : std::string();
  };

  for (size_t Pos = 0; Pos != F.Code.size(); ++Pos) {
    const Instr &In = F.Code[Pos];
    if (Labels.count(static_cast<int32_t>(Pos)))
      Out += format("L%zu:;\n", Pos); // null statement: labels may precede '}'
    std::string Line;
    switch (In.Op) {
    case Opcode::Nop:
      continue;
    case Opcode::FConst:
      Line = freg(In.A) + " = " + fLit(In.Imm.F) + ";";
      break;
    case Opcode::IConst:
      Line = ireg(In.A) + " = " + iLit(In.Imm.I) + ";";
      break;
    case Opcode::SConst:
      Line = format("%s = mlfString(\"%s\");", preg(In.A).c_str(),
                    cStringEscape(F.Strings[In.Imm.I]).c_str());
      break;
    case Opcode::MovF:
      Line = freg(In.A) + " = " + freg(In.B) + ";";
      break;
    case Opcode::MovI:
      Line = ireg(In.A) + " = " + ireg(In.B) + ";";
      break;
    case Opcode::MovP:
      Line = preg(In.A) + " = mxRetain(" + preg(In.B) + ");";
      break;
    case Opcode::IToF:
      Line = freg(In.A) + " = (double)" + ireg(In.B) + ";";
      break;
    case Opcode::FToI:
      Line = ireg(In.A) + " = (long long)" + freg(In.B) + ";";
      break;
    case Opcode::FToIdx:
      Line = ireg(In.A) + " = mlfCheckSubscript(" + freg(In.B) + ");";
      break;
    case Opcode::FAdd:
      Line = freg(In.A) + " = " + freg(In.B) + " + " + freg(In.C) + ";";
      break;
    case Opcode::FSub:
      Line = freg(In.A) + " = " + freg(In.B) + " - " + freg(In.C) + ";";
      break;
    case Opcode::FMul:
      Line = freg(In.A) + " = " + freg(In.B) + " * " + freg(In.C) + ";";
      break;
    case Opcode::FDiv:
      Line = freg(In.A) + " = " + freg(In.B) + " / " + freg(In.C) + ";";
      break;
    case Opcode::FNeg:
      Line = freg(In.A) + " = -" + freg(In.B) + ";";
      break;
    case Opcode::FPow:
      Line = freg(In.A) + " = pow(" + freg(In.B) + ", " + freg(In.C) + ");";
      break;
    case Opcode::FCmp:
      Line = ireg(In.A) + " = " + freg(In.B) + " " +
             condOp(static_cast<CondCode>(In.Imm.I)) + " " + freg(In.C) + ";";
      break;
    case Opcode::FIntr1: {
      auto I = static_cast<ScalarIntrinsic>(In.Imm.I);
      // Optimistically typed intrinsics carry their domain guard: a
      // negative sqrt/log (or out-of-range asin/acos) operand must
      // deoptimize to the general tiers, exactly like the VM.
      std::string Arg = scalarIntrinsicNeedsGuard(I)
                            ? format("mlfEwGuard(%d, %s)",
                                     static_cast<int>(I), freg(In.B).c_str())
                            : freg(In.B);
      Line = freg(In.A) + " = " + intrName(I) + "(" + Arg + ");";
      break;
    }
    case Opcode::FIntr2:
      Line = freg(In.A) + " = " +
             intrName(static_cast<ScalarIntrinsic>(In.Imm.I)) + "(" +
             freg(In.B) + ", " + freg(In.C) + ");";
      break;
    case Opcode::IAdd:
      Line = ireg(In.A) + " = " + ireg(In.B) + " + " + ireg(In.C) + ";";
      break;
    case Opcode::ISub:
      Line = ireg(In.A) + " = " + ireg(In.B) + " - " + ireg(In.C) + ";";
      break;
    case Opcode::IMul:
      Line = ireg(In.A) + " = " + ireg(In.B) + " * " + ireg(In.C) + ";";
      break;
    case Opcode::INeg:
      Line = ireg(In.A) + " = -" + ireg(In.B) + ";";
      break;
    case Opcode::ICmp:
      Line = ireg(In.A) + " = " + ireg(In.B) + " " +
             condOp(static_cast<CondCode>(In.Imm.I)) + " " + ireg(In.C) + ";";
      break;
    case Opcode::IAnd:
      Line = ireg(In.A) + " = (" + ireg(In.B) + " != 0) & (" + ireg(In.C) +
             " != 0);";
      break;
    case Opcode::IOr:
      Line = ireg(In.A) + " = (" + ireg(In.B) + " != 0) | (" + ireg(In.C) +
             " != 0);";
      break;
    case Opcode::INot:
      Line = ireg(In.A) + " = " + ireg(In.B) + " == 0;";
      break;
    case Opcode::Br:
      Line = BackPoll(In.A, Pos) + format("goto L%d;", In.A);
      break;
    case Opcode::Brz: {
      std::string Poll = BackPoll(In.A, Pos);
      Line = Poll.empty()
                 ? format("if (%s == 0) goto L%d;", ireg(In.B).c_str(), In.A)
                 : format("if (%s == 0) { %sgoto L%d; }",
                          ireg(In.B).c_str(), Poll.c_str(), In.A);
      break;
    }
    case Opcode::Brnz: {
      std::string Poll = BackPoll(In.A, Pos);
      Line = Poll.empty()
                 ? format("if (%s != 0) goto L%d;", ireg(In.B).c_str(), In.A)
                 : format("if (%s != 0) { %sgoto L%d; }",
                          ireg(In.B).c_str(), Poll.c_str(), In.A);
      break;
    }
    case Opcode::Ret:
      Line = "return 0;";
      break;
    case Opcode::BoxF:
      Line = preg(In.A) + " = mlfScalar(" + freg(In.B) + ");";
      break;
    case Opcode::BoxI:
      Line = preg(In.A) + " = mlfIntScalar(" + ireg(In.B) + ");";
      break;
    case Opcode::BoxB:
      Line = preg(In.A) + " = mlfLogicalScalar(" + ireg(In.B) + ");";
      break;
    case Opcode::BoxC:
      Line = preg(In.A) + " = mlfComplexScalar(" + freg(In.B) + ", " +
             freg(In.C) + ");";
      break;
    case Opcode::UnboxF:
      Line = freg(In.A) + " = mlfGetScalar(" + preg(In.B) + ");";
      break;
    case Opcode::UnboxI:
      Line = ireg(In.A) + " = mlfGetIntScalar(" + preg(In.B) + ");";
      break;
    case Opcode::UnboxReIm:
      Line = "mlfGetComplexScalar(" + preg(In.C) + ", &" + freg(In.A) +
             ", &" + freg(In.B) + ");";
      break;
    case Opcode::CheckDef:
      Line = format("mlfCheckDefined(%s, \"%s\");", preg(In.A).c_str(),
                    cStringEscape(F.Names[In.Imm.I]).c_str());
      break;
    case Opcode::NewMat:
      Line = preg(In.A) + " = mlfZeros(" + ireg(In.B) + ", " + ireg(In.C) +
             format(", %d);", static_cast<int>(In.Imm.I));
      break;
    case Opcode::FillF:
      Line = format("mlfFill(%s, %s);", preg(In.A).c_str(),
                    fLit(In.Imm.F).c_str());
      break;
    case Opcode::LoadEl:
      Line = freg(In.A) + " = mxRe(" + preg(In.B) + ")[" + ireg(In.C) + "];";
      break;
    case Opcode::LoadElChk:
      Line = freg(In.A) + " = mlfLoadChecked(" + preg(In.B) + ", " +
             ireg(In.C) + ");";
      break;
    case Opcode::LoadEl2:
      Line = freg(In.A) + " = mxRe(" + preg(In.B) + ")[" + ireg(In.D) +
             " * mxRows(" + preg(In.B) + ") + " + ireg(In.C) + "];";
      break;
    case Opcode::LoadEl2Chk:
      Line = freg(In.A) + " = mlfLoad2Checked(" + preg(In.B) + ", " +
             ireg(In.C) + ", " + ireg(In.D) + ");";
      break;
    case Opcode::StoreEl:
      // The class immediate rides along so the store can promote the
      // array (int -> real) exactly like the VM's promoteClass; the
      // macro's fast path checks it against the write cache.
      Line = "mlfStore(&" + preg(In.A) + ", " + ireg(In.B) + ", " +
             freg(In.C) + format(", %d);", static_cast<int>(In.Imm.I));
      break;
    case Opcode::StoreElChk:
      Line = "mlfStoreGrow(&" + preg(In.A) + ", " + ireg(In.B) + ", " +
             freg(In.C) + format(", %d);", static_cast<int>(In.Imm.I));
      break;
    case Opcode::StoreEl2:
      Line = "mlfStore2(&" + preg(In.A) + ", " + ireg(In.B) + ", " +
             ireg(In.C) + ", " + freg(In.D) +
             format(", %d);", static_cast<int>(In.Imm.I));
      break;
    case Opcode::StoreEl2Chk:
      Line = "mlfStore2Grow(&" + preg(In.A) + ", " + ireg(In.B) + ", " +
             ireg(In.C) + ", " + freg(In.D) +
             format(", %d);", static_cast<int>(In.Imm.I));
      break;
    case Opcode::LenRows:
      Line = ireg(In.A) + " = mxRows(" + preg(In.B) + ");";
      break;
    case Opcode::LenCols:
      Line = ireg(In.A) + " = mxCols(" + preg(In.B) + ");";
      break;
    case Opcode::LenNumel:
      Line = ireg(In.A) + " = mxNumel(" + preg(In.B) + ");";
      break;
    case Opcode::ColSlice:
      Line = preg(In.A) + " = mlfColumn(" + preg(In.B) + ", " + ireg(In.C) +
             ");";
      break;
    case Opcode::MakeRange:
      Line = preg(In.A) + " = mlfColon(" + freg(In.B) + ", " + freg(In.C) +
             ", " + freg(In.D) + ");";
      break;
    case Opcode::MakeRangeG:
      Line = preg(In.A) + " = mlfColonV(" + preg(In.B) + ", " + preg(In.C) +
             ", " + preg(In.D) + ");";
      break;
    case Opcode::RtBin:
      Line = preg(In.A) + " = " +
             mlfBinaryName(static_cast<rt::BinOp>(In.Imm.I)) + "(" +
             preg(In.B) + ", " + preg(In.C) + ");";
      break;
    case Opcode::RtUn:
      Line = preg(In.A) + " = mlfUnary(" +
             format("%d", static_cast<int>(In.Imm.I)) + ", " + preg(In.B) +
             ");";
      break;
    case Opcode::IsTrue:
      Line = ireg(In.A) + " = mlfIsTrue(" + preg(In.B) + ");";
      break;
    case Opcode::HorzCat:
      Line = preg(In.A) + " = mlfHorzcat(" + format("%d", In.C) + ", " +
             PoolArgs(In.B, In.C) + ");";
      break;
    case Opcode::VertCat:
      Line = preg(In.A) + " = mlfVertcat(" + format("%d", In.C) + ", " +
             PoolArgs(In.B, In.C) + ");";
      break;
    case Opcode::LoadIdxG:
      Line = preg(In.A) + " = mlfIndex(" + preg(In.B) + ", " +
             format("%d", In.D) + ", " + PoolArgs(In.C, In.D) + ");";
      break;
    case Opcode::StoreIdxG:
      Line = "mlfIndexAssign(&" + preg(In.A) + ", " + preg(In.B) + ", " +
             format("%d", In.D) + ", " + PoolArgs(In.C, In.D) + ");";
      break;
    case Opcode::CallB:
      Line = format("mlfCallBuiltin(\"%s\", %d, %d",
                    cStringEscape(F.Names[In.Imm.I & ~kStatementCallFlag])
                        .c_str(),
                    (In.Imm.I & kStatementCallFlag) ? 1 : 0, In.B);
      if (In.B)
        Line += ", " + PoolDsts(In.A, In.B);
      Line += format(", %d", In.D);
      if (In.D)
        Line += ", " + PoolArgs(In.C, In.D);
      Line += ");";
      break;
    case Opcode::CallU:
      Line = format("mlfCallFunction(\"%s\", %d, %d",
                    cStringEscape(F.Names[In.Imm.I & ~kStatementCallFlag])
                        .c_str(),
                    (In.Imm.I & kStatementCallFlag) ? 1 : 0, In.B);
      if (In.B)
        Line += ", " + PoolDsts(In.A, In.B);
      Line += format(", %d", In.D);
      if (In.D)
        Line += ", " + PoolArgs(In.C, In.D);
      Line += ");";
      break;
    case Opcode::Display:
      Line = format("mlfDisplay(%s, \"%s\");", preg(In.A).c_str(),
                    cStringEscape(F.Names[In.Imm.I]).c_str());
      break;
    case Opcode::Gemv:
      Line = preg(In.A) + " = mlfDgemv(" + preg(In.B) + ", " + preg(In.C) +
             ");";
      break;
    case Opcode::Axpy:
      Line = preg(In.A) + " = mlfDaxpy(" + freg(In.B) + ", " + preg(In.C) +
             ", " + preg(In.D) + ");";
      break;
    case Opcode::EwFuse: {
      // One fused loop over the whole elementwise tree: mlfEwAlloc
      // simulates the program (conformance checks, complex deopt) and
      // allocates the result; mlfEwLoad reads element k (broadcasting
      // scalars); each program entry becomes its own named temporary,
      // one statement per op, mirroring the VM's stack evaluation. The
      // host compiles this with -ffp-contract=off, so separate
      // multiplies and adds are never contracted into FMAs (results
      // must stay bit-identical to the interpreter).
      Line = preg(In.A) + " = mlfEwAlloc(" + format("%d", In.C);
      if (In.C)
        Line += ", " + PoolArgs(In.B, In.C);
      Line += format(", %d, %s);\n", static_cast<int>(In.Imm.I),
                     In.Imm.I > 0 ? format("mlf_prog_%zu", Pos).c_str()
                                  : "(const int *)0");
      Line += format("  { /* fused elementwise: %lld entries, one pass */\n",
                     static_cast<long long>(In.Imm.I));
      Line += "    long long n = mxNumel(" + preg(In.A) + ");\n";
      Line += "    double *d = mxRe(" + preg(In.A) + ");\n";
      Line += "    for (long long k = 0; k < n; ++k) {\n";
      std::vector<std::string> Stk;
      int Tmp = 0;
      for (int64_t K = 0; K != In.Imm.I; ++K) {
        int32_t Entry = F.Pool[In.D + K];
        std::string T = format("t%d", Tmp++);
        switch (ew::opOf(Entry)) {
        case ew::EwOp::Push:
          Line += "      double " + T + " = mlfEwLoad(" +
                  preg(F.Pool[In.B + ew::argOf(Entry)]) + ", k);\n";
          Stk.push_back(T);
          break;
        case ew::EwOp::Bin: {
          std::string Y = Stk.back();
          Stk.pop_back();
          std::string X = Stk.back();
          Stk.pop_back();
          auto Op = static_cast<rt::BinOp>(ew::argOf(Entry));
          std::string E;
          switch (Op) {
          case rt::BinOp::Add:
            E = X + " + " + Y;
            break;
          case rt::BinOp::Sub:
            E = X + " - " + Y;
            break;
          case rt::BinOp::MatMul:
          case rt::BinOp::ElemMul:
            E = X + " * " + Y;
            break;
          case rt::BinOp::MatRDiv:
          case rt::BinOp::ElemRDiv:
            E = X + " / " + Y;
            break;
          case rt::BinOp::ElemPow:
            // mlf_powg deoptimizes negative-base/fractional-exponent
            // (complex result) cases instead of returning pow's NaN.
            E = "mlf_powg(" + X + ", " + Y + ")";
            break;
          default:
            E = "0 /* invalid fused op */";
            break;
          }
          Line += "      double " + T + " = " + E + ";\n";
          Stk.push_back(T);
          break;
        }
        case ew::EwOp::Neg: {
          std::string X = Stk.back();
          Stk.pop_back();
          Line += "      double " + T + " = -" + X + ";\n";
          Stk.push_back(T);
          break;
        }
        case ew::EwOp::Intr: {
          std::string X = Stk.back();
          Stk.pop_back();
          auto I = static_cast<ScalarIntrinsic>(ew::argOf(Entry));
          std::string Arg = scalarIntrinsicNeedsGuard(I)
                                ? format("mlfEwGuard(%d, %s)",
                                         static_cast<int>(I), X.c_str())
                                : X;
          Line += "      double " + T + " = " + std::string(intrName(I)) +
                  "(" + Arg + ");\n";
          Stk.push_back(T);
          break;
        }
        }
      }
      Line += "      d[k] = " + (Stk.empty() ? std::string("0") : Stk.back()) +
              ";\n";
      Line += "    }\n";
      Line += "  }";
      break;
    }
    case Opcode::LoadParam:
      Line = preg(In.A) + format(" = (%lld < nargs) ? args[%lld] : 0;",
                                 static_cast<long long>(In.Imm.I),
                                 static_cast<long long>(In.Imm.I));
      break;
    case Opcode::StoreOut:
      Line = format("if (%lld < nouts) outs[%lld] = mxRetain(%s);",
                    static_cast<long long>(In.Imm.I),
                    static_cast<long long>(In.Imm.I), preg(In.A).c_str());
      break;
    case Opcode::FSpLd:
      Line = freg(In.A) + format(" = fsp[%lld];",
                                 static_cast<long long>(In.Imm.I));
      break;
    case Opcode::FSpSt:
      Line = format("fsp[%lld] = ", static_cast<long long>(In.Imm.I)) +
             freg(In.A) + ";";
      break;
    case Opcode::ISpLd:
      Line = ireg(In.A) + format(" = isp[%lld];",
                                 static_cast<long long>(In.Imm.I));
      break;
    case Opcode::ISpSt:
      Line = format("isp[%lld] = ", static_cast<long long>(In.Imm.I)) +
             ireg(In.A) + ";";
      break;
    case Opcode::PSpLd:
      Line = preg(In.A) + format(" = psp[%lld];",
                                 static_cast<long long>(In.Imm.I));
      break;
    case Opcode::PSpSt:
      Line = format("psp[%lld] = ", static_cast<long long>(In.Imm.I)) +
             preg(In.A) + ";";
      break;
    }
    Out += "  " + Line + "\n";
  }
  if (Labels.count(static_cast<int32_t>(F.Code.size())))
    Out += format("L%zu:;\n  return 0;\n", F.Code.size());
  else if (F.Code.empty() || F.Code.back().Op != Opcode::Ret)
    Out += "  return 0;\n"; // -Wreturn-type: no path may fall off the end
  Out += "}\n";
  return Out;
}
