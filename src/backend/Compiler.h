//===- backend/Compiler.h - Compilation driver -----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end compilation pipeline (Figure 1, passes 3 and 4): type
/// inference (JIT or with a speculated signature) -> code selection ->
/// [optimizer, for the "native compiler" path] -> linear-scan register
/// allocation. The fast JIT configuration skips the optimizer entirely
/// ("no loop optimizations or instruction scheduling are performed").
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_COMPILER_H
#define MAJIC_BACKEND_COMPILER_H

#include "backend/CodeGen.h"
#include "backend/Optimize.h"
#include "backend/Platform.h"
#include "backend/RegAlloc.h"
#include "support/Timer.h"

#include <memory>
#include <optional>

namespace majic {

struct CompileRequest {
  const FunctionInfo *FI = nullptr;
  TypeSignature Sig;
  CodeGenMode Mode = CodeGenMode::Jit;
  PlatformModel Platform;
  InferOptions Infer;
  RegAllocOptions RegAlloc;
  /// Unroll small-vector operations (platform JIT maturity; Figure 7's
  /// "no min. shapes" disables the shapes instead).
  bool UnrollSmallVectors = true;
  /// Fuse elementwise expression trees into single-pass EwFuse loops.
  bool FuseElementwise = true;
};

struct CompileResult {
  std::shared_ptr<IRFunction> Code;
  TypeSignature Sig;
  double TypeInferSeconds = 0;
  double CodeGenSeconds = 0;
  RegAllocStats RegAlloc;
  OptimizeStats Optimizer;
  FusionStats Fusion;
};

/// Runs the pipeline. Returns nullopt when the function cannot be compiled
/// (ambiguous symbols, unsupported constructs); the caller falls back to
/// the interpreter.
std::optional<CompileResult> compileFunction(const CompileRequest &Req);

} // namespace majic

#endif // MAJIC_BACKEND_COMPILER_H
