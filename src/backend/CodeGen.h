//===- backend/CodeGen.h - AST to IR code selection ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Code selection (Section 2.6): lowers a disambiguated, type-annotated
/// function to the low-level IR. Both code generators "use the same
/// selection rules":
///
///  - scalar arithmetic/logic, elementary math functions and scalar
///    assignments are inlined to single instructions,
///  - scalar and F90-like index operations are inlined, with subscript
///    checks omitted where inference proved them redundant,
///  - small fixed-shape vector operations are fully unrolled,
///  - small temporaries of known shape are preallocated (NewMat),
///  - a*X+Y / A*x patterns fuse into BLAS calls (Axpy/Gemv),
///  - everything else falls back to the boxed runtime library under the
///    implicit default rule (complex-matrix generic operations).
///
/// Modes:
///  - Jit:       annotations used; the caller runs only register allocation.
///  - Optimized: same selection; the caller additionally runs the
///               "native compiler" optimizer pipeline (speculative/batch).
///  - Generic:   annotations ignored; everything boxed. This reproduces
///               the mcc baseline (the poly4_sig1 code of Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_CODEGEN_H
#define MAJIC_BACKEND_CODEGEN_H

#include "analysis/Disambiguate.h"
#include "infer/Infer.h"
#include "ir/Instr.h"

#include <memory>

namespace majic {

enum class CodeGenMode : uint8_t { Jit, Optimized, Generic };

/// Counters filled by the elementwise-fusion matcher (per compile).
struct FusionStats {
  uint64_t Groups = 0;      ///< EwFuse instructions emitted
  uint64_t OpsFused = 0;    ///< elementwise ops folded into them
  uint64_t TempsElided = 0; ///< intermediate full-size temporaries avoided
};

struct CodeGenOptions {
  CodeGenMode Mode = CodeGenMode::Jit;
  /// Fully unroll element-wise operations on exactly-shaped arrays of at
  /// most this many elements (Section 2.6.1: "very effective on small
  /// (up to 3x3) matrices"). 0 disables unrolling.
  unsigned MaxUnrollNumel = 9;
  /// Fuse maximal elementwise expression trees into single-pass EwFuse
  /// loops (one loop, one memory pass, zero intermediate temporaries).
  /// Has no effect in Generic mode: fusion legality needs annotations.
  bool EnableFusion = true;
  /// Out-channel: when non-null, fusion statistics accumulate here.
  FusionStats *Stats = nullptr;
};

/// Lowers \p FI with annotations \p Ann. Returns null when the function
/// cannot be compiled (ambiguous symbols, clear statements): the engine
/// then falls back to the interpreter, as the paper prescribes.
std::unique_ptr<IRFunction> generateCode(const FunctionInfo &FI,
                                         const TypeAnnotations &Ann,
                                         const TypeSignature &Sig,
                                         const CodeGenOptions &Opts);

} // namespace majic

#endif // MAJIC_BACKEND_CODEGEN_H
