//===- backend/Compiler.cpp - Compilation driver --------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/Compiler.h"

#include "obs/Trace.h"
#include "support/FaultInjection.h"

using namespace majic;

std::optional<CompileResult> majic::compileFunction(const CompileRequest &Req) {
  assert(Req.FI && "no function to compile");
  const std::string &FnName = Req.FI->F->name();
  obs::TraceScope CompileSpan("compile", "compile", FnName);
  CompileResult Result;

  // Pass 3: type inference (skipped entirely in mcc-like generic mode,
  // which is the point of that baseline).
  TypeAnnotations Ann;
  {
    obs::TraceScope Span("infer", "compile", FnName);
    Timer T;
    if (Req.Mode != CodeGenMode::Generic) {
      faults::maybeThrow(faults::Site::Infer);
      InferResult Inferred = inferTypes(*Req.FI, Req.Sig, Req.Infer);
      Ann = std::move(Inferred.Ann);
    }
    Result.TypeInferSeconds = T.seconds();
  }

  // Pass 4: code selection, optimization, register allocation.
  Timer T;
  CodeGenOptions CGOpts;
  CGOpts.Mode = Req.Mode;
  CGOpts.MaxUnrollNumel = Req.UnrollSmallVectors ? 9 : 0;
  CGOpts.EnableFusion = Req.FuseElementwise;
  CGOpts.Stats = &Result.Fusion;
  std::unique_ptr<IRFunction> Code;
  {
    obs::TraceScope Span("codegen", "compile", FnName);
    faults::maybeThrow(faults::Site::CodeGen);
    Code = generateCode(*Req.FI, Ann, Req.Sig, CGOpts);
  }
  if (!Code)
    return std::nullopt;

  if (Req.Mode == CodeGenMode::Optimized) {
    obs::TraceScope Span("optimize", "compile", FnName);
    OptimizeOptions OptOpts;
    OptOpts.Rounds = Req.Platform.NativeOptRounds;
    OptOpts.UnrollFactor = Req.Platform.NativeOptRounds >= 2 ? 4 : 2;
    OptOpts.Fusion = &Result.Fusion;
    Result.Optimizer = optimize(*Code, OptOpts);
  }

  // Record the fusion outcome as its own compiler phase span so traces
  // show what the matcher did for this compile (satellite: codegen.fuse).
  {
    const FusionStats &FS = Result.Fusion;
    obs::TraceScope Span("codegen.fuse", "compile",
                         FnName + ": groups=" + std::to_string(FS.Groups) +
                             " ops=" + std::to_string(FS.OpsFused) +
                             " temps=" + std::to_string(FS.TempsElided));
  }

  {
    obs::TraceScope Span("regalloc", "compile", FnName);
    faults::maybeThrow(faults::Site::RegAlloc);
    Result.RegAlloc = allocateRegisters(*Code, Req.Platform, Req.RegAlloc);
  }
  Result.CodeGenSeconds = T.seconds();
  Result.Code = std::move(Code);
  Result.Sig = Req.Sig;
  return Result;
}
