//===- backend/RegAlloc.h - Linear-scan register allocation ----*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-scan register allocation (Poletto & Sarkar, the paper's
/// reference [19]; MaJIC "re-implemented the register allocator used by
/// tcc"). Virtual F and I registers are mapped onto the platform's fixed
/// register files; intervals that do not fit are spilled to frame slots
/// with explicit reload/store instructions. Boxed P registers model stack
/// handles and are not subject to allocation.
///
/// The "no regalloc" ablation of Figure 7 ("forcing the linear-scan
/// register allocator to spill every variable ... roughly equivalent to
/// compiling with the -g flag") is the SpillEverything mode.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_REGALLOC_H
#define MAJIC_BACKEND_REGALLOC_H

#include "backend/Platform.h"
#include "ir/Instr.h"

namespace majic {

struct RegAllocOptions {
  /// Figure 7's "no regalloc" bars: every virtual register lives in a
  /// spill slot and every access goes through scratch registers.
  bool SpillEverything = false;
};

struct RegAllocStats {
  unsigned NumFSpilled = 0;
  unsigned NumISpilled = 0;
  unsigned NumSpillInstrs = 0;
};

/// Allocates \p F in place (rewriting register operands, inserting spill
/// code and patching branch targets). Marks the function Allocated.
RegAllocStats allocateRegisters(IRFunction &F, const PlatformModel &Platform,
                                const RegAllocOptions &Opts = {});

} // namespace majic

#endif // MAJIC_BACKEND_REGALLOC_H
