//===- backend/VM.cpp - The register VM ----------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/VM.h"

#include "backend/ExecShared.h"
#include "obs/Trace.h"
#include "runtime/Blas.h"
#include "runtime/Builtins.h"
#include "runtime/Ops.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace majic;
using rt::Indexer;

namespace {

bool evalCond(CondCode CC, double A, double B) {
  switch (CC) {
  case CondCode::LT:
    return A < B;
  case CondCode::LE:
    return A <= B;
  case CondCode::GT:
    return A > B;
  case CondCode::GE:
    return A >= B;
  case CondCode::EQ:
    return A == B;
  case CondCode::NE:
    return A != B;
  }
  majic_unreachable("invalid condition code");
}

// Semantics helpers shared with the native tier (backend/ExecShared.h):
// both tiers must promote classes, guard intrinsics, and validate register
// contents identically.
using exec::checkIntrinsicGuard;
using exec::promoteClass;
using exec::requireRealData;
using exec::requireValue;
using exec::storeDirect;

/// Minimum elements before the fused elementwise loop goes parallel
/// (matches the interpreter's ElemGrain: these loops are memory-bound).
constexpr size_t kEwGrain = 32768;

/// Executes one fused elementwise program (Opcode::EwFuse) in a single
/// pass over the data: zero intermediate Values, one parallelFor, one
/// store per output element.
///
/// Bit-identity with the interpreter's unfused chain rests on three
/// points. (1) The result shape and class are resolved by simulating the
/// postfix program through the interpreter's own broadcast and
/// class-promotion rules, in the interpreter's evaluation order, so
/// dimension errors carry the identical operator name and shapes.
/// (2) Every element's value depends only on its own index, and the
/// per-element op order is exactly the program order - no reassociation -
/// so chunk boundaries (thread count) cannot change results. (3) Each
/// program op runs as its own strip loop storing to a stack-slot array,
/// so the compiler cannot contract a multiply and an add into an FMA
/// across ops, just as the interpreter's separate memory passes cannot.
Value runEwFuse(const IRFunction &F, const Instr &In,
                const std::vector<ValuePtr> &PR) {
  const int32_t *Prog = F.Pool.data() + In.D;
  const size_t ProgLen = static_cast<size_t>(In.Imm.I);
  const int32_t NumOps = In.C;

  // Operand table. Codegen only fuses positions inference typed as real
  // arrays; a complex or string value reaching one anyway means an
  // optimistic assumption failed, so deoptimize (the interpreter fallback
  // produces the general-semantics result) rather than risk divergence.
  // The operand checks and the Pass-1 shape/class simulation live in
  // exec::ewSimulate, shared verbatim with the native tier's allocation
  // shim so both tiers raise identical errors and allocate identically.
  std::vector<const Value *> Ops(NumOps);
  for (int32_t K = 0; K != NumOps; ++K)
    Ops[K] = PR[F.Pool[In.B + K]].get();

  exec::EwPlan Plan = exec::ewSimulate(Ops.data(), NumOps, Prog, ProgLen);
  Value Out = Value::uninit(Plan.Rows, Plan.Cols, Plan.Class);
  size_t N = Out.numel();
  if (N == 0)
    return Out;

  // Hoist per-operand addressing out of the element loop. Every non-scalar
  // operand has exactly the result shape (broadcasting admits only
  // scalar-or-equal, so any other shape was rejected by the simulation).
  std::vector<const double *> Data(NumOps);
  std::vector<double> Splat(NumOps, 0.0);
  std::vector<uint8_t> IsScal(NumOps, 0);
  for (int32_t K = 0; K != NumOps; ++K) {
    if (Ops[K]->isScalar()) {
      IsScal[K] = 1;
      Splat[K] = Ops[K]->re(0);
    } else {
      Data[K] = Ops[K]->reData();
    }
  }

  double *PO = Out.reData();
  constexpr size_t kStrip = 128;
  par::parallelFor(N, kEwGrain, [&](size_t Begin, size_t End) {
    // Stack slots are (pointer, stride) views: a Push is free (it aliases
    // the operand strip or its scalar splat), each operator writes its
    // slot's scratch strip, and the final operator writes the output array
    // directly - so a balanced program is one pass over main memory with
    // no per-push copying. A valid program's last entry is always an
    // operator: the stack depth never returns to zero after the first
    // push, so a trailing Push could not leave the required depth of one.
    struct Slot {
      const double *P;
      size_t S; ///< 0 = broadcast scalar, 1 = vector strip
    };
    alignas(64) double Scratch[ew::kMaxEwStack][kStrip];
    double ScalOut[ew::kMaxEwStack];
    Slot Stack[ew::kMaxEwStack];
    for (size_t S0 = Begin; S0 < End; S0 += kStrip) {
      const size_t Len = std::min(kStrip, End - S0);
      int Top = 0;
      for (size_t K = 0; K != ProgLen; ++K) {
        const int32_t Arg = ew::argOf(Prog[K]);
        const bool IsLast = K + 1 == ProgLen;
        switch (ew::opOf(Prog[K])) {
        case ew::EwOp::Push:
          Stack[Top] = IsScal[Arg] ? Slot{&Splat[Arg], 0}
                                   : Slot{Data[Arg] + S0, 1};
          ++Top;
          break;
        case ew::EwOp::Bin: {
          const Slot L = Stack[Top - 2], R = Stack[Top - 1];
          --Top;
          double *D = IsLast ? PO + S0 : Scratch[Top - 1];
          // One strip loop per operator (matching the interpreter's one
          // memory pass per op), so the compiler cannot contract a
          // multiply and an add from different ops into an FMA.
          auto Apply = [&](auto Op) {
            if (L.S && R.S) {
              for (size_t I = 0; I != Len; ++I)
                D[I] = Op(L.P[I], R.P[I]);
            } else if (L.S) {
              const double Y = *R.P;
              for (size_t I = 0; I != Len; ++I)
                D[I] = Op(L.P[I], Y);
            } else if (R.S) {
              const double X = *L.P;
              for (size_t I = 0; I != Len; ++I)
                D[I] = Op(X, R.P[I]);
            } else {
              const double V = Op(*L.P, *R.P);
              if (!IsLast) {
                ScalOut[Top - 1] = V;
                Stack[Top - 1] = {&ScalOut[Top - 1], 0};
                return; // scalar result: stays a broadcast view
              }
              for (size_t I = 0; I != Len; ++I)
                D[I] = V;
            }
            Stack[Top - 1] = {D, 1};
          };
          switch (static_cast<rt::BinOp>(Arg)) {
          case rt::BinOp::Add:
            Apply([](double X, double Y) { return X + Y; });
            break;
          case rt::BinOp::Sub:
            Apply([](double X, double Y) { return X - Y; });
            break;
          case rt::BinOp::ElemMul:
          case rt::BinOp::MatMul: // scalar side proven above
            Apply([](double X, double Y) { return X * Y; });
            break;
          case rt::BinOp::ElemRDiv:
          case rt::BinOp::MatRDiv: // scalar divisor proven above
            Apply([](double X, double Y) { return X / Y; });
            break;
          case rt::BinOp::ElemPow:
            for (size_t I = 0; I != Len; ++I) {
              const double X = L.P[I * L.S], Y = R.P[I * R.S];
              // The interpreter escalates a negative base with a
              // non-integral exponent to a complex result; the fused loop
              // cannot, so hand the whole chain back to it.
              if (X < 0 && Y != std::floor(Y))
                throw DeoptError{ScalarIntrinsic::None, X};
              D[I] = std::pow(X, Y);
            }
            Stack[Top - 1] = {D, 1};
            break;
          default:
            majic_unreachable("non-fusable binary op in fused program");
          }
          break;
        }
        case ew::EwOp::Neg: {
          const Slot T = Stack[Top - 1];
          if (T.S == 0 && !IsLast) {
            ScalOut[Top - 1] = -*T.P;
            Stack[Top - 1] = {&ScalOut[Top - 1], 0};
            break;
          }
          double *D = IsLast ? PO + S0 : Scratch[Top - 1];
          if (T.S) {
            for (size_t I = 0; I != Len; ++I)
              D[I] = -T.P[I];
          } else {
            const double V = -*T.P;
            for (size_t I = 0; I != Len; ++I)
              D[I] = V;
          }
          Stack[Top - 1] = {D, 1};
          break;
        }
        case ew::EwOp::Intr: {
          const auto Intr = static_cast<ScalarIntrinsic>(Arg);
          const Slot T = Stack[Top - 1];
          const bool Guarded = scalarIntrinsicNeedsGuard(Intr);
          if (T.S == 0) {
            const double X = *T.P;
            if (Guarded)
              checkIntrinsicGuard(Intr, X);
            const double V = evalScalarIntrinsic1(Intr, X);
            if (!IsLast) {
              ScalOut[Top - 1] = V;
              Stack[Top - 1] = {&ScalOut[Top - 1], 0};
              break;
            }
            double *D = PO + S0;
            for (size_t I = 0; I != Len; ++I)
              D[I] = V;
            Stack[Top - 1] = {D, 1};
            break;
          }
          if (Guarded)
            for (size_t I = 0; I != Len; ++I)
              checkIntrinsicGuard(Intr, T.P[I]);
          double *D = IsLast ? PO + S0 : Scratch[Top - 1];
          for (size_t I = 0; I != Len; ++I)
            D[I] = evalScalarIntrinsic1(Intr, T.P[I]);
          Stack[Top - 1] = {D, 1};
          break;
        }
        }
      }
    }
  });
  return Out;
}

} // namespace

std::vector<ValuePtr> VM::run(const IRFunction &F, std::vector<ValuePtr> Args,
                              size_t NumOuts) {
  assert(F.Allocated && "VM requires register-allocated code");
  obs::TraceScope Span("vm.run", "exec", F.Name);

  // Register files (physical) and spill frames.
  std::vector<double> FR(F.NumF, 0.0);
  std::vector<int64_t> IR(F.NumI, 0);
  std::vector<ValuePtr> PR(F.NumP);
  std::vector<double> FSp(F.NumFSpill, 0.0);
  std::vector<int64_t> ISp(F.NumISpill, 0);
  std::vector<ValuePtr> PSp(F.NumPSpill);
  std::vector<ValuePtr> Outs(F.NumOuts);

  // Resolve builtin names once per invocation.
  std::vector<const BuiltinDef *> Builtins(F.Names.size(), nullptr);
  for (size_t N = 0; N != F.Names.size(); ++N)
    Builtins[N] = BuiltinTable::instance().lookup(F.Names[N]);

  const Instr *Code = F.Code.data();
  size_t PC = 0;
  uint64_t Count = 0;

  auto GatherArgs = [&](int32_t Off, int32_t N) {
    std::vector<ValuePtr> Out;
    Out.reserve(N);
    for (int32_t K = 0; K != N; ++K) {
      const ValuePtr &V = PR[F.Pool[Off + K]];
      if (!V)
        throw MatlabError("internal: null argument value");
      Out.push_back(V);
    }
    return Out;
  };

  while (true) {
    const Instr &In = Code[PC];
    ++Count;
    // Execution-limit poll (op budget + cooperative interrupt) every 256
    // dispatches: cheap enough for the hot loop, frequent enough that a
    // runaway program or a Ctrl-C unwinds within microseconds.
    if ((Count & 0xFF) == 0)
      Ctx.Exec.consume(256);
    switch (In.Op) {
    case Opcode::Nop:
      break;

    case Opcode::FConst:
      FR[In.A] = In.Imm.F;
      break;
    case Opcode::IConst:
      IR[In.A] = In.Imm.I;
      break;
    case Opcode::SConst:
      PR[In.A] = makeValue(Value::str(F.Strings[In.Imm.I]));
      break;
    case Opcode::MovF:
      FR[In.A] = FR[In.B];
      break;
    case Opcode::MovI:
      IR[In.A] = IR[In.B];
      break;
    case Opcode::MovP:
      PR[In.A] = PR[In.B];
      break;
    case Opcode::IToF:
      FR[In.A] = static_cast<double>(IR[In.B]);
      break;
    case Opcode::FToI:
      IR[In.A] = static_cast<int64_t>(FR[In.B]);
      break;
    case Opcode::FToIdx:
      IR[In.A] = static_cast<int64_t>(rt::checkSubscript(FR[In.B]));
      break;

    case Opcode::FAdd:
      FR[In.A] = FR[In.B] + FR[In.C];
      break;
    case Opcode::FSub:
      FR[In.A] = FR[In.B] - FR[In.C];
      break;
    case Opcode::FMul:
      FR[In.A] = FR[In.B] * FR[In.C];
      break;
    case Opcode::FDiv:
      FR[In.A] = FR[In.B] / FR[In.C];
      break;
    case Opcode::FNeg:
      FR[In.A] = -FR[In.B];
      break;
    case Opcode::FPow:
      FR[In.A] = std::pow(FR[In.B], FR[In.C]);
      break;
    case Opcode::FCmp:
      IR[In.A] = evalCond(static_cast<CondCode>(In.Imm.I), FR[In.B], FR[In.C]);
      break;
    case Opcode::FIntr1: {
      auto Intr = static_cast<ScalarIntrinsic>(In.Imm.I);
      checkIntrinsicGuard(Intr, FR[In.B]);
      FR[In.A] = evalScalarIntrinsic1(Intr, FR[In.B]);
      break;
    }
    case Opcode::FIntr2:
      FR[In.A] = evalScalarIntrinsic2(
          static_cast<ScalarIntrinsic>(In.Imm.I), FR[In.B], FR[In.C]);
      break;

    case Opcode::IAdd:
      IR[In.A] = IR[In.B] + IR[In.C];
      break;
    case Opcode::ISub:
      IR[In.A] = IR[In.B] - IR[In.C];
      break;
    case Opcode::IMul:
      IR[In.A] = IR[In.B] * IR[In.C];
      break;
    case Opcode::INeg:
      IR[In.A] = -IR[In.B];
      break;
    case Opcode::ICmp:
      IR[In.A] = evalCond(static_cast<CondCode>(In.Imm.I),
                          static_cast<double>(IR[In.B]),
                          static_cast<double>(IR[In.C]));
      break;
    case Opcode::IAnd:
      IR[In.A] = (IR[In.B] != 0) & (IR[In.C] != 0);
      break;
    case Opcode::IOr:
      IR[In.A] = (IR[In.B] != 0) | (IR[In.C] != 0);
      break;
    case Opcode::INot:
      IR[In.A] = IR[In.B] == 0;
      break;

    case Opcode::Br:
      PC = static_cast<size_t>(In.A);
      continue;
    case Opcode::Brz:
      if (IR[In.B] == 0) {
        PC = static_cast<size_t>(In.A);
        continue;
      }
      break;
    case Opcode::Brnz:
      if (IR[In.B] != 0) {
        PC = static_cast<size_t>(In.A);
        continue;
      }
      break;
    case Opcode::Ret: {
      Ctx.Exec.consume(Count & 0xFF); // the tail not covered by the poll
      InstrCount += Count;
      if (NumOuts == 0) {
        // nargout = 0: optional first output for ans/display semantics.
        if (!Outs.empty() && Outs[0])
          return {Outs[0]};
        return {};
      }
      if (NumOuts > std::max<size_t>(Outs.size(), 1))
        throw MatlabError(format("too many output arguments from '%s'",
                                 F.Name.c_str()));
      for (size_t K = 0; K != NumOuts; ++K) {
        if (K >= Outs.size() || !Outs[K])
          throw MatlabError(
              format("output argument %zu of '%s' not assigned", K + 1,
                     F.Name.c_str()));
      }
      Outs.resize(std::min(NumOuts, Outs.size()));
      return Outs;
    }

    case Opcode::BoxF:
      PR[In.A] = makeScalar(FR[In.B]);
      break;
    case Opcode::BoxI:
      PR[In.A] = makeValue(Value::intScalar(static_cast<double>(IR[In.B])));
      break;
    case Opcode::BoxB:
      PR[In.A] = makeBool(IR[In.B] != 0);
      break;
    case Opcode::BoxC:
      PR[In.A] = makeValue(Value::complexScalar(FR[In.B], FR[In.C]));
      break;
    case Opcode::UnboxF:
      FR[In.A] = requireRealData(requireValue(PR[In.B])).scalarValue();
      break;
    case Opcode::UnboxI: {
      double X = requireRealData(requireValue(PR[In.B])).scalarValue();
      double R = std::round(X);
      if (std::abs(X - R) > 1e-8)
        throw MatlabError(format("expected an integer value, got %g", X));
      IR[In.A] = static_cast<int64_t>(R);
      break;
    }
    case Opcode::UnboxReIm: {
      const Value &V = requireValue(PR[In.C]);
      if (!V.isScalar())
        throw MatlabError("expected a scalar value");
      FR[In.A] = V.re(0);
      FR[In.B] = V.im(0);
      break;
    }
    case Opcode::CheckDef:
      if (!PR[In.A])
        throw MatlabError(format("undefined function or variable '%s'",
                                 F.Names[In.Imm.I].c_str()));
      break;

    case Opcode::NewMat: {
      int64_t R = std::max<int64_t>(IR[In.B], 0);
      int64_t C = std::max<int64_t>(IR[In.C], 0);
      PR[In.A] = makeValue(Value::zeros(static_cast<size_t>(R),
                                        static_cast<size_t>(C),
                                        static_cast<MClass>(In.Imm.I)));
      break;
    }
    case Opcode::FillF: {
      Value &V = makeUnique(PR[In.A]);
      std::fill(V.reData(), V.reData() + V.numel(), In.Imm.F);
      break;
    }

    case Opcode::LoadEl:
      FR[In.A] = requireRealData(requireValue(PR[In.B]))
                     .re(static_cast<size_t>(IR[In.C]));
      break;
    case Opcode::LoadElChk: {
      const Value &V = requireRealData(requireValue(PR[In.B]));
      int64_t Idx = IR[In.C];
      if (Idx < 0 || static_cast<size_t>(Idx) >= V.numel())
        throw MatlabError(format("index out of bounds: %lld exceeds numel %zu",
                                 static_cast<long long>(Idx + 1), V.numel()));
      FR[In.A] = V.re(static_cast<size_t>(Idx));
      break;
    }
    case Opcode::LoadEl2:
      FR[In.A] = requireRealData(requireValue(PR[In.B]))
                     .at(static_cast<size_t>(IR[In.C]),
                         static_cast<size_t>(IR[In.D]));
      break;
    case Opcode::LoadEl2Chk: {
      const Value &V = requireRealData(requireValue(PR[In.B]));
      int64_t R = IR[In.C], C = IR[In.D];
      if (R < 0 || C < 0 || static_cast<size_t>(R) >= V.rows() ||
          static_cast<size_t>(C) >= V.cols())
        throw MatlabError(format("index (%lld, %lld) out of bounds for "
                                 "%zux%zu matrix",
                                 static_cast<long long>(R + 1),
                                 static_cast<long long>(C + 1), V.rows(),
                                 V.cols()));
      FR[In.A] = V.at(static_cast<size_t>(R), static_cast<size_t>(C));
      break;
    }

    case Opcode::StoreEl: {
      Value &V = makeUnique(PR[In.A]);
      promoteClass(V, static_cast<MClass>(In.Imm.I));
      storeDirect(V, static_cast<size_t>(IR[In.B]), FR[In.C]);
      break;
    }
    case Opcode::StoreElChk: {
      if (!PR[In.A])
        PR[In.A] = makeValue(Value());
      Value &V = makeUnique(PR[In.A]);
      int64_t Idx = IR[In.B];
      if (Idx < 0)
        throw MatlabError("subscript indices must be positive integers");
      if (static_cast<size_t>(Idx) < V.numel()) {
        promoteClass(V, static_cast<MClass>(In.Imm.I));
        storeDirect(V, static_cast<size_t>(Idx), FR[In.C]);
      } else {
        // Resize-on-write (with oversizing) through the runtime.
        Value RHS = Value::scalar(FR[In.C]);
        RHS.setClass(static_cast<MClass>(In.Imm.I));
        rt::indexAssign1(V, Indexer::single(static_cast<size_t>(Idx)), RHS);
      }
      break;
    }
    case Opcode::StoreEl2: {
      Value &V = makeUnique(PR[In.A]);
      promoteClass(V, static_cast<MClass>(In.Imm.I));
      size_t Idx = static_cast<size_t>(IR[In.C]) * V.rows() +
                   static_cast<size_t>(IR[In.B]);
      storeDirect(V, Idx, FR[In.D]);
      break;
    }
    case Opcode::StoreEl2Chk: {
      if (!PR[In.A])
        PR[In.A] = makeValue(Value());
      Value &V = makeUnique(PR[In.A]);
      int64_t R = IR[In.B], C = IR[In.C];
      if (R < 0 || C < 0)
        throw MatlabError("subscript indices must be positive integers");
      if (static_cast<size_t>(R) < V.rows() &&
          static_cast<size_t>(C) < V.cols()) {
        promoteClass(V, static_cast<MClass>(In.Imm.I));
        storeDirect(V, static_cast<size_t>(C) * V.rows() +
                           static_cast<size_t>(R),
                    FR[In.D]);
      } else {
        Value RHS = Value::scalar(FR[In.D]);
        RHS.setClass(static_cast<MClass>(In.Imm.I));
        rt::indexAssign2(V, Indexer::single(static_cast<size_t>(R)),
                         Indexer::single(static_cast<size_t>(C)), RHS);
      }
      break;
    }

    case Opcode::LenRows:
      IR[In.A] = static_cast<int64_t>(requireValue(PR[In.B]).rows());
      break;
    case Opcode::LenCols:
      IR[In.A] = static_cast<int64_t>(requireValue(PR[In.B]).cols());
      break;
    case Opcode::LenNumel:
      IR[In.A] = static_cast<int64_t>(requireValue(PR[In.B]).numel());
      break;
    case Opcode::ColSlice: {
      const Value &V = requireValue(PR[In.B]);
      PR[In.A] = makeValue(rt::index2(
          V, Indexer::colon(), Indexer::single(static_cast<size_t>(IR[In.C]))));
      break;
    }

    case Opcode::MakeRange:
      PR[In.A] = makeValue(Value::range(FR[In.B], FR[In.C], FR[In.D]));
      break;
    case Opcode::MakeRangeG:
      PR[In.A] = makeValue(rt::colon(requireValue(PR[In.B]),
                                     requireValue(PR[In.C]),
                                     requireValue(PR[In.D])));
      break;
    case Opcode::RtBin:
      PR[In.A] = makeValue(rt::binary(static_cast<rt::BinOp>(In.Imm.I),
                                      requireValue(PR[In.B]),
                                      requireValue(PR[In.C])));
      break;
    case Opcode::RtUn:
      PR[In.A] = makeValue(rt::unary(static_cast<rt::UnOp>(In.Imm.I),
                                     requireValue(PR[In.B])));
      break;
    case Opcode::IsTrue:
      IR[In.A] = requireValue(PR[In.B]).isTrue();
      break;

    case Opcode::HorzCat:
    case Opcode::VertCat: {
      std::vector<const Value *> Parts;
      Parts.reserve(In.C);
      for (int32_t K = 0; K != In.C; ++K)
        Parts.push_back(&requireValue(PR[F.Pool[In.B + K]]));
      PR[In.A] = makeValue(In.Op == Opcode::HorzCat ? rt::horzcat(Parts)
                                                    : rt::vertcat(Parts));
      break;
    }

    case Opcode::LoadIdxG: {
      const Value &Base = requireValue(PR[In.B]);
      std::vector<Indexer> Idx;
      for (int32_t K = 0; K != In.D; ++K) {
        int32_t Entry = F.Pool[In.C + K];
        size_t DimLen = In.D == 1 ? Base.numel()
                                  : (K == 0 ? Base.rows() : Base.cols());
        if (Entry < 0)
          Idx.push_back(Indexer::colon());
        else
          Idx.push_back(Indexer::fromValue(requireValue(PR[Entry]), DimLen));
      }
      if (In.D == 1)
        PR[In.A] = makeValue(rt::index1(Base, Idx[0]));
      else
        PR[In.A] = makeValue(rt::index2(Base, Idx[0], Idx[1]));
      break;
    }
    case Opcode::StoreIdxG: {
      if (!PR[In.A])
        PR[In.A] = makeValue(Value());
      Value &Base = makeUnique(PR[In.A]);
      std::vector<Indexer> Idx;
      for (int32_t K = 0; K != In.D; ++K) {
        int32_t Entry = F.Pool[In.C + K];
        size_t DimLen = In.D == 1 ? Base.numel()
                                  : (K == 0 ? Base.rows() : Base.cols());
        if (Entry < 0)
          Idx.push_back(Indexer::colon());
        else
          Idx.push_back(Indexer::fromValue(requireValue(PR[Entry]), DimLen));
      }
      if (In.D == 1)
        rt::indexAssign1(Base, Idx[0], requireValue(PR[In.B]));
      else
        rt::indexAssign2(Base, Idx[0], Idx[1], requireValue(PR[In.B]));
      break;
    }

    case Opcode::CallB: {
      int64_t NameId = In.Imm.I & ~kStatementCallFlag;
      bool Statement = (In.Imm.I & kStatementCallFlag) != 0;
      const BuiltinDef *Def = Builtins[NameId];
      if (!Def)
        throw MatlabError(format("unknown builtin '%s'",
                                 F.Names[NameId].c_str()));
      std::vector<ValuePtr> CallArgs = GatherArgs(In.C, In.D);
      std::vector<const Value *> Ptrs;
      Ptrs.reserve(CallArgs.size());
      for (const ValuePtr &V : CallArgs)
        Ptrs.push_back(V.get());
      std::vector<Value> Rs = BuiltinTable::call(
          *Def, Ctx, Ptrs, Statement ? 0 : static_cast<size_t>(In.B));
      for (int32_t K = 0; K != In.B; ++K) {
        if (static_cast<size_t>(K) >= Rs.size()) {
          if (Statement) {
            PR[F.Pool[In.A + K]] = nullptr; // optional output absent
            continue;
          }
          throw MatlabError(format("builtin '%s' returned too few values",
                                   Def->Name.c_str()));
        }
        PR[F.Pool[In.A + K]] = makeValue(std::move(Rs[K]));
      }
      break;
    }
    case Opcode::CallU: {
      int64_t NameId = In.Imm.I & ~kStatementCallFlag;
      bool Statement = (In.Imm.I & kStatementCallFlag) != 0;
      std::vector<ValuePtr> CallArgs = GatherArgs(In.C, In.D);
      std::vector<ValuePtr> Rs = Resolver.callFunction(
          F.Names[NameId], std::move(CallArgs),
          Statement ? 0 : static_cast<size_t>(In.B), SourceLoc());
      for (int32_t K = 0; K != In.B; ++K) {
        if (static_cast<size_t>(K) >= Rs.size()) {
          if (Statement) {
            PR[F.Pool[In.A + K]] = nullptr;
            continue;
          }
          throw MatlabError("not enough output arguments");
        }
        PR[F.Pool[In.A + K]] = Rs[K];
      }
      break;
    }

    case Opcode::Display:
      // A null register is an absent optional output: nothing to display.
      if (PR[In.A])
        Ctx.print(rt::displayValue(*PR[In.A], F.Names[In.Imm.I]));
      break;

    case Opcode::Gemv: {
      const Value &A = requireValue(PR[In.B]);
      const Value &X = requireValue(PR[In.C]);
      if (!A.isComplex() && !X.isComplex() && X.isColVector() &&
          A.cols() == X.rows()) {
        Value Y = Value::zeros(A.rows(), 1);
        blas::dgemv(A.rows(), A.cols(), 1.0, A.reData(), X.reData(), 0.0,
                    Y.reData());
        PR[In.A] = makeValue(std::move(Y));
      } else {
        PR[In.A] = makeValue(rt::binary(rt::BinOp::MatMul, A, X));
      }
      break;
    }
    case Opcode::Axpy: {
      const Value &X = requireValue(PR[In.C]);
      const Value &Y = requireValue(PR[In.D]);
      if (!X.isComplex() && !Y.isComplex() && X.rows() == Y.rows() &&
          X.cols() == Y.cols()) {
        // Single pass: write a*x + y straight into a fresh array instead of
        // copying Y and updating it in place (daxpyz rounds the multiply
        // and add separately, exactly like the interpreter's two-op form).
        Value Out = Value::zeros(X.rows(), X.cols());
        blas::daxpyz(X.numel(), FR[In.B], X.reData(), Y.reData(),
                     Out.reData());
        PR[In.A] = makeValue(std::move(Out));
      } else {
        Value Scaled = rt::binary(rt::BinOp::MatMul,
                                  Value::scalar(FR[In.B]), X);
        PR[In.A] = makeValue(rt::binary(rt::BinOp::Add, Scaled, Y));
      }
      break;
    }

    case Opcode::EwFuse:
      PR[In.A] = makeValue(runEwFuse(F, In, PR));
      break;

    case Opcode::LoadParam:
      PR[In.A] = In.Imm.I < static_cast<int64_t>(Args.size())
                     ? Args[In.Imm.I]
                     : nullptr;
      break;
    case Opcode::StoreOut:
      Outs[In.Imm.I] = PR[In.A];
      break;

    case Opcode::FSpLd:
      FR[In.A] = FSp[In.Imm.I];
      break;
    case Opcode::FSpSt:
      FSp[In.Imm.I] = FR[In.A];
      break;
    case Opcode::ISpLd:
      IR[In.A] = ISp[In.Imm.I];
      break;
    case Opcode::ISpSt:
      ISp[In.Imm.I] = IR[In.A];
      break;
    case Opcode::PSpLd:
      PR[In.A] = PSp[In.Imm.I];
      break;
    case Opcode::PSpSt:
      PSp[In.Imm.I] = PR[In.A];
      break;
    }
    ++PC;
  }
}
