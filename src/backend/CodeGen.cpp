//===- backend/CodeGen.cpp - AST to IR code selection ---------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/CodeGen.h"

#include "ast/ASTVisit.h"
#include "ir/Builder.h"
#include "runtime/Builtins.h"

#include <cmath>
#include <optional>

using namespace majic;
using rt::BinOp;

namespace {

/// Where a value currently lives during code selection.
struct Operand {
  enum class Kind : uint8_t { F, I, P, CPair };
  Kind K = Kind::P;
  int32_t R0 = -1;
  int32_t R1 = -1; // imaginary register for CPair

  static Operand f(int32_t R) { return {Kind::F, R, -1}; }
  static Operand i(int32_t R) { return {Kind::I, R, -1}; }
  static Operand p(int32_t R) { return {Kind::P, R, -1}; }
  static Operand c(int32_t Re, int32_t Im) { return {Kind::CPair, Re, Im}; }
};

/// A variable's home storage.
struct VarHome {
  Operand::Kind K = Operand::Kind::P;
  int32_t R0 = -1;
  int32_t R1 = -1;
};

/// Thrown internally to abandon compilation of unsupported functions.
struct CannotCompile {};

class CodeGen {
public:
  CodeGen(const FunctionInfo &FI, const TypeAnnotations &Ann,
          const TypeSignature &Sig, const CodeGenOptions &Opts)
      : FI(FI), Ann(Ann), Sig(Sig), Opts(Opts),
        IR(std::make_unique<IRFunction>()), B(*IR) {}

  std::unique_ptr<IRFunction> run();

private:
  bool generic() const { return Opts.Mode == CodeGenMode::Generic; }

  Type typeOf(const Expr *E) const {
    return generic() ? Type::top() : Ann.typeOf(E);
  }

  /// The storage summary type of a slot.
  Type slotType(int Slot) const {
    if (generic() || Slot < 0 ||
        static_cast<size_t>(Slot) >= Ann.SlotSummary.size())
      return Type::top();
    return Ann.SlotSummary[Slot];
  }

  void assignHomes();
  void genPrologue();
  void genEpilogue();

  void genBlock(const Block &Body);
  void genStmt(const Stmt *S);
  void genAssign(const AssignStmt *A);
  void genFor(const ForStmt *For);
  void genCountedRangeFor(const ForStmt *For, const RangeExpr *R);

  Operand genExpr(const Expr *E);
  Operand genBinary(const BinaryExpr *E);
  Operand genUnary(const UnaryExpr *E);
  Operand genMatrixLit(const MatrixExpr *E);
  Operand genIndexRead(const IndexOrCallExpr *IC);
  std::vector<Operand> genCall(const IndexOrCallExpr *IC, size_t NumOuts,
                               bool Statement = false);
  std::vector<Operand> genBuiltinCall(const IndexOrCallExpr *IC,
                                      size_t NumOuts, bool Statement);
  void genIndexedStore(const LValue &LV, Operand RHS, const Type &RHSType,
                       const Stmt *S);
  void storeToHome(int Slot, Operand V);
  void displayVar(const std::string &Name, const VarHome &Home);

  //===--------------------------------------------------------------------===
  // Conversions
  //===--------------------------------------------------------------------===

  Operand toF(Operand V) {
    switch (V.K) {
    case Operand::Kind::F:
      return V;
    case Operand::Kind::I: {
      int32_t R = B.newF();
      B.emit(Opcode::IToF, R, V.R0);
      return Operand::f(R);
    }
    case Operand::Kind::P: {
      int32_t R = B.newF();
      B.emit(Opcode::UnboxF, R, V.R0);
      return Operand::f(R);
    }
    case Operand::Kind::CPair:
      return Operand::f(V.R0); // real part; callers ensure real typing
    }
    majic_unreachable("invalid operand kind");
  }

  Operand toI(Operand V) {
    switch (V.K) {
    case Operand::Kind::I:
      return V;
    case Operand::Kind::F: {
      int32_t R = B.newI();
      B.emit(Opcode::FToI, R, V.R0);
      return Operand::i(R);
    }
    case Operand::Kind::P: {
      int32_t R = B.newI();
      B.emit(Opcode::UnboxI, R, V.R0);
      return Operand::i(R);
    }
    case Operand::Kind::CPair: {
      int32_t R = B.newI();
      B.emit(Opcode::FToI, R, V.R0);
      return Operand::i(R);
    }
    }
    majic_unreachable("invalid operand kind");
  }

  /// Boxes to a P register. \p T guides the boxed class.
  Operand toP(Operand V, const Type &T) {
    switch (V.K) {
    case Operand::Kind::P:
      return V;
    case Operand::Kind::F: {
      int32_t R = B.newP();
      B.emit(Opcode::BoxF, R, V.R0);
      return Operand::p(R);
    }
    case Operand::Kind::I: {
      int32_t R = B.newP();
      B.emit(T.intrinsic() == IntrinsicType::Bool ? Opcode::BoxB : Opcode::BoxI,
             R, V.R0);
      return Operand::p(R);
    }
    case Operand::Kind::CPair: {
      int32_t R = B.newP();
      B.emit(Opcode::BoxC, R, V.R0, V.R1);
      return Operand::p(R);
    }
    }
    majic_unreachable("invalid operand kind");
  }

  Operand toCPair(Operand V) {
    switch (V.K) {
    case Operand::Kind::CPair:
      return V;
    case Operand::Kind::F:
      return Operand::c(V.R0, B.fconst(0.0));
    case Operand::Kind::I: {
      Operand F = toF(V);
      return Operand::c(F.R0, B.fconst(0.0));
    }
    case Operand::Kind::P: {
      int32_t Re = B.newF(), Im = B.newF();
      B.emit(Opcode::UnboxReIm, Re, Im, V.R0);
      return Operand::c(Re, Im);
    }
    }
    majic_unreachable("invalid operand kind");
  }

  /// An I register holding the condition truth value.
  int32_t toCond(Operand V) {
    switch (V.K) {
    case Operand::Kind::I:
      return V.R0;
    case Operand::Kind::F: {
      int32_t R = B.newI();
      int32_t Zero = B.fconst(0.0);
      B.emitImmI(Opcode::FCmp, static_cast<int64_t>(CondCode::NE), R, V.R0,
                 Zero);
      return R;
    }
    case Operand::Kind::CPair: {
      // Conditions disregard imaginary parts (Section 2.5).
      int32_t R = B.newI();
      int32_t Zero = B.fconst(0.0);
      B.emitImmI(Opcode::FCmp, static_cast<int64_t>(CondCode::NE), R, V.R0,
                 Zero);
      return R;
    }
    case Operand::Kind::P: {
      int32_t R = B.newI();
      B.emit(Opcode::IsTrue, R, V.R0);
      return R;
    }
    }
    majic_unreachable("invalid operand kind");
  }

  /// Loads a variable as an operand (its home registers, directly).
  Operand readVar(int Slot) {
    const VarHome &H = Homes[Slot];
    switch (H.K) {
    case Operand::Kind::F:
      return Operand::f(H.R0);
    case Operand::Kind::I:
      return Operand::i(H.R0);
    case Operand::Kind::CPair:
      return Operand::c(H.R0, H.R1);
    case Operand::Kind::P:
      return Operand::p(H.R0);
    }
    majic_unreachable("invalid home kind");
  }

  /// The MClass immediate for unboxed element stores.
  static MClass storeClassOf(const Type &T) {
    if (intrinsicLE(T.intrinsic(), IntrinsicType::Bool))
      return MClass::Bool;
    if (intrinsicLE(T.intrinsic(), IntrinsicType::Int))
      return MClass::Int;
    return MClass::Real;
  }

  /// True when \p T is a provably real (non-complex, non-string) scalar.
  static bool realScalarType(const Type &T) {
    return T.isScalar() && intrinsicLE(T.intrinsic(), IntrinsicType::Real) &&
           !T.isBottom();
  }
  static bool intScalarType(const Type &T) {
    return T.isScalar() && intrinsicLE(T.intrinsic(), IntrinsicType::Int) &&
           !T.isBottom();
  }
  static bool cplxScalarType(const Type &T) {
    return T.isScalar() &&
           intrinsicLE(T.intrinsic(), IntrinsicType::Complex) && !T.isBottom();
  }
  static bool realArrayType(const Type &T) {
    return intrinsicLE(T.intrinsic(), IntrinsicType::Real) && !T.isBottom();
  }

  /// Computes a 0-based scalar index register from subscript \p Arg against
  /// dimension \p Dim of \p BaseP (for 'end').
  int32_t genScalarIndex(const Expr *Arg, int32_t BaseP, unsigned Dim,
                         unsigned NumDims);

  struct EndContext {
    int32_t BaseP;
    unsigned Dim;
    unsigned NumDims;
  };

  //===--------------------------------------------------------------------===
  // Elementwise fusion (EwFuse selection)
  //===--------------------------------------------------------------------===

  /// One node of a fusable elementwise expression tree.
  struct FuseNode {
    const Expr *E;
    enum class Kind : uint8_t { Leaf, Bin, Neg, Intr } K;
    int32_t Arg = 0; ///< rt::BinOp for Bin, ScalarIntrinsic for Intr
    int L = -1, R = -1;
  };
  struct FuseTree {
    std::vector<FuseNode> Nodes;
    int Root = -1;
    unsigned NumOps = 0; ///< fused interior ops (Bin/Neg/Intr nodes)
  };

  int buildFuseNode(FuseTree &T, const Expr *E, int Avail);
  bool fuseErrorOrderSafe(const FuseTree &T) const;
  std::optional<Operand> tryFuseElementwise(const Expr *E,
                                            unsigned MinOps = 2);
  Operand emitFuseTree(const FuseTree &T);
  bool isSimpleFuseLeaf(const Expr *E) const;

  const FunctionInfo &FI;
  const TypeAnnotations &Ann;
  const TypeSignature &Sig;
  CodeGenOptions Opts;
  std::unique_ptr<IRFunction> IR;
  IRBuilder B;

  std::vector<VarHome> Homes;
  std::vector<EndContext> EndStack;
  std::vector<IRBuilder::Label> BreakLabels;
  std::vector<IRBuilder::Label> ContinueLabels;
  IRBuilder::Label EpilogueLabel;

  // Fused-pattern scratch operands filled by the Axpy matcher.
  Operand AxpyS, AxpyX, AxpyY;
};

//===----------------------------------------------------------------------===//
// Homes, prologue, epilogue
//===----------------------------------------------------------------------===//

void CodeGen::assignHomes() {
  const Function &F = *FI.F;
  unsigned NumSlots = FI.Symbols.numSlots();
  Homes.resize(NumSlots);

  // Indexed-assignment targets always live boxed (their storage must be a
  // real array object).
  std::vector<bool> ForceBoxed(NumSlots, false);
  visitStmts(F.body(), [&](const Stmt *S) {
    if (const auto *A = dyn_cast<AssignStmt>(S))
      for (const LValue &LV : A->targets())
        if (LV.HasParens && LV.VarSlot >= 0)
          ForceBoxed[LV.VarSlot] = true;
  });
  // Outputs not definitely assigned at exit stay boxed so "not assigned"
  // remains detectable.
  for (size_t O = 0; O != F.outs().size(); ++O) {
    int Slot = F.outSlots()[O];
    if (Slot >= 0 && (static_cast<size_t>(Slot) >= FI.DefiniteAtExit.size() ||
                      !FI.DefiniteAtExit[Slot]))
      ForceBoxed[Slot] = true;
  }

  for (unsigned Slot = 0; Slot != NumSlots; ++Slot) {
    VarHome H;
    Type T = slotType(static_cast<int>(Slot));
    if (!generic() && !ForceBoxed[Slot] && !T.isBottom()) {
      if (intScalarType(T)) {
        H.K = Operand::Kind::I;
        H.R0 = B.newI();
      } else if (realScalarType(T)) {
        H.K = Operand::Kind::F;
        H.R0 = B.newF();
      } else if (cplxScalarType(T)) {
        H.K = Operand::Kind::CPair;
        H.R0 = B.newF();
        H.R1 = B.newF();
      }
    }
    if (H.R0 < 0) {
      H.K = Operand::Kind::P;
      H.R0 = B.newP();
    }
    Homes[Slot] = H;
  }
}

void CodeGen::genPrologue() {
  const Function &F = *FI.F;
  size_t NumParams = std::min(F.params().size(), Sig.size());
  IR->NumParams = NumParams;
  for (size_t P = 0; P != NumParams; ++P) {
    int Slot = F.paramSlots()[P];
    if (Slot < 0)
      continue;
    const VarHome &H = Homes[Slot];
    if (H.K == Operand::Kind::P) {
      B.emitImmI(Opcode::LoadParam, static_cast<int64_t>(P), H.R0);
      continue;
    }
    int32_t Tmp = B.newP();
    B.emitImmI(Opcode::LoadParam, static_cast<int64_t>(P), Tmp);
    switch (H.K) {
    case Operand::Kind::F:
      B.emit(Opcode::UnboxF, H.R0, Tmp);
      break;
    case Operand::Kind::I:
      B.emit(Opcode::UnboxI, H.R0, Tmp);
      break;
    case Operand::Kind::CPair:
      B.emit(Opcode::UnboxReIm, H.R0, H.R1, Tmp);
      break;
    case Operand::Kind::P:
      break;
    }
  }
}

void CodeGen::genEpilogue() {
  B.bind(EpilogueLabel);
  const Function &F = *FI.F;
  IR->NumOuts = F.outs().size();
  for (size_t O = 0; O != F.outs().size(); ++O) {
    int Slot = F.outSlots()[O];
    if (Slot < 0)
      continue;
    Operand V = readVar(Slot);
    Operand P = toP(V, slotType(Slot));
    B.emitImmI(Opcode::StoreOut, static_cast<int64_t>(O), P.R0);
  }
  B.emit(Opcode::Ret);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void CodeGen::genBlock(const Block &Body) {
  for (const Stmt *S : Body)
    genStmt(S);
}

void CodeGen::genStmt(const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::Kind::Expr: {
    const auto *ES = cast<ExprStmt>(S);
    // Bare calls: builtin/user statements like disp(x) or plot-style calls.
    if (const auto *IC = dyn_cast<IndexOrCallExpr>(ES->expr())) {
      if (IC->base()->symKind() == SymKind::Builtin ||
          IC->base()->symKind() == SymKind::UserFunction) {
        // Statement context (nargout = 0): the call runs with no required
        // outputs; when unsuppressed, the optional first output (null when
        // the callee produced none) displays as ans.
        std::vector<Operand> Rs =
            genCall(IC, ES->displays() ? 1 : 0, /*Statement=*/true);
        if (ES->displays() && !Rs.empty())
          B.emitImmI(Opcode::Display, IR->internName("ans"), Rs.front().R0);
        return;
      }
    }
    Operand V = genExpr(ES->expr());
    if (ES->displays()) {
      Operand P = toP(V, typeOf(ES->expr()));
      B.emitImmI(Opcode::Display, IR->internName("ans"), P.R0);
    }
    return;
  }

  case Stmt::Kind::Assign:
    genAssign(cast<AssignStmt>(S));
    return;

  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    IRBuilder::Label Join = B.newLabel();
    for (const IfStmt::Branch &Br : If->branches()) {
      IRBuilder::Label Next = B.newLabel();
      int32_t Cond = toCond(genExpr(Br.Cond));
      B.brz(Cond, Next);
      genBlock(Br.Body);
      B.br(Join);
      B.bind(Next);
    }
    genBlock(If->elseBlock());
    B.bind(Join);
    return;
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    IRBuilder::Label Header = B.newLabel();
    IRBuilder::Label Exit = B.newLabel();
    B.bind(Header);
    int32_t Cond = toCond(genExpr(W->cond()));
    B.brz(Cond, Exit);
    BreakLabels.push_back(Exit);
    ContinueLabels.push_back(Header);
    genBlock(W->body());
    ContinueLabels.pop_back();
    BreakLabels.pop_back();
    B.br(Header);
    B.bind(Exit);
    return;
  }

  case Stmt::Kind::For:
    genFor(cast<ForStmt>(S));
    return;

  case Stmt::Kind::Break:
    if (BreakLabels.empty())
      throw CannotCompile();
    B.br(BreakLabels.back());
    return;
  case Stmt::Kind::Continue:
    if (ContinueLabels.empty())
      throw CannotCompile();
    B.br(ContinueLabels.back());
    return;
  case Stmt::Kind::Return:
    B.br(EpilogueLabel);
    return;

  case Stmt::Kind::Clear:
    // clear manipulates the dynamic workspace; such code is interpreted.
    throw CannotCompile();
  }
}

void CodeGen::genAssign(const AssignStmt *A) {
  if (A->isMulti()) {
    const auto *IC = dyn_cast<IndexOrCallExpr>(A->rhs());
    if (!IC || IC->base()->symKind() == SymKind::Variable)
      throw CannotCompile();
    std::vector<Operand> Rs = genCall(IC, A->targets().size());
    for (size_t T = 0; T != A->targets().size(); ++T) {
      const LValue &LV = A->targets()[T];
      if (LV.HasParens)
        genIndexedStore(LV, Rs[T], Type::top(), A);
      else
        storeToHome(LV.VarSlot, Rs[T]);
      if (A->displays())
        displayVar(LV.Name, Homes[LV.VarSlot]);
    }
    return;
  }

  const LValue &LV = A->targets().front();
  Operand RHS = genExpr(A->rhs());
  if (LV.HasParens)
    genIndexedStore(LV, RHS, typeOf(A->rhs()), A);
  else
    storeToHome(LV.VarSlot, RHS);
  if (A->displays())
    displayVar(LV.Name, Homes[LV.VarSlot]);
}

void CodeGen::displayVar(const std::string &Name, const VarHome &Home) {
  Operand V;
  switch (Home.K) {
  case Operand::Kind::F:
    V = Operand::f(Home.R0);
    break;
  case Operand::Kind::I:
    V = Operand::i(Home.R0);
    break;
  case Operand::Kind::CPair:
    V = Operand::c(Home.R0, Home.R1);
    break;
  case Operand::Kind::P:
    V = Operand::p(Home.R0);
    break;
  }
  Operand P = toP(V, Type::top());
  B.emitImmI(Opcode::Display, IR->internName(Name), P.R0);
}

void CodeGen::storeToHome(int Slot, Operand V) {
  assert(Slot >= 0 && "store to unslotted variable");
  const VarHome &H = Homes[Slot];
  switch (H.K) {
  case Operand::Kind::F: {
    Operand F = toF(V);
    B.emit(Opcode::MovF, H.R0, F.R0);
    return;
  }
  case Operand::Kind::I: {
    Operand I = toI(V);
    B.emit(Opcode::MovI, H.R0, I.R0);
    return;
  }
  case Operand::Kind::CPair: {
    Operand C = toCPair(V);
    B.emit(Opcode::MovF, H.R0, C.R0);
    B.emit(Opcode::MovF, H.R1, C.R1);
    return;
  }
  case Operand::Kind::P: {
    Operand P = toP(V, slotType(Slot));
    B.emit(Opcode::MovP, H.R0, P.R0);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

void CodeGen::genFor(const ForStmt *For) {
  if (const auto *R = dyn_cast<RangeExpr>(For->iterand())) {
    Type LoT = typeOf(R->lo()), HiT = typeOf(R->hi());
    Type StepT = R->step() ? typeOf(R->step()) : Type::constant(1);
    if (!generic() && realScalarType(LoT) && realScalarType(HiT) &&
        realScalarType(StepT)) {
      genCountedRangeFor(For, R);
      return;
    }
  }

  // Generic path: iterate over the columns of the boxed iterand.
  Operand It = toP(genExpr(For->iterand()), typeOf(For->iterand()));
  int32_t NCols = B.newI();
  B.emit(Opcode::LenCols, NCols, It.R0);
  int32_t NRows = B.newI();
  B.emit(Opcode::LenRows, NRows, It.R0);
  int32_t K = B.iconst(0);

  IRBuilder::Label Header = B.newLabel();
  IRBuilder::Label Latch = B.newLabel();
  IRBuilder::Label Exit = B.newLabel();
  B.bind(Header);
  int32_t Cond = B.newI();
  B.emitImmI(Opcode::ICmp, static_cast<int64_t>(CondCode::LT), Cond, K, NCols);
  B.brz(Cond, Exit);

  // Bind the loop variable to column K (or element K of a row vector).
  const VarHome &H = Homes[For->loopVarSlot()];
  switch (H.K) {
  case Operand::Kind::F:
    B.emit(Opcode::LoadElChk, H.R0, It.R0, K);
    break;
  case Operand::Kind::I: {
    int32_t Tmp = B.newF();
    B.emit(Opcode::LoadElChk, Tmp, It.R0, K);
    B.emit(Opcode::FToI, H.R0, Tmp);
    break;
  }
  case Operand::Kind::CPair: {
    int32_t Col = B.newP();
    B.emit(Opcode::ColSlice, Col, It.R0, K);
    B.emit(Opcode::UnboxReIm, H.R0, H.R1, Col);
    break;
  }
  case Operand::Kind::P:
    B.emit(Opcode::ColSlice, H.R0, It.R0, K);
    break;
  }

  BreakLabels.push_back(Exit);
  ContinueLabels.push_back(Latch);
  genBlock(For->body());
  ContinueLabels.pop_back();
  BreakLabels.pop_back();

  B.bind(Latch);
  int32_t One = B.iconst(1);
  B.emit(Opcode::IAdd, K, K, One);
  B.br(Header);
  B.bind(Exit);
}

void CodeGen::genCountedRangeFor(const ForStmt *For, const RangeExpr *R) {
  Type LoT = typeOf(R->lo()), HiT = typeOf(R->hi());
  Type StepT = R->step() ? typeOf(R->step()) : Type::constant(1);
  bool AllInt = intScalarType(LoT) && intScalarType(HiT) &&
                intScalarType(StepT);

  Operand Lo = genExpr(R->lo());
  Operand Step = R->step() ? genExpr(R->step()) : Operand::i(B.iconst(1));
  Operand Hi = genExpr(R->hi());

  // Trip count: floor((hi - lo) / step) + 1, computed in floating point
  // (negative values simply fail the k < trip test).
  Operand LoF = toF(Lo), StepF = toF(Step), HiF = toF(Hi);
  int32_t Span = B.newF();
  B.emit(Opcode::FSub, Span, HiF.R0, LoF.R0);
  int32_t Quot = B.newF();
  B.emit(Opcode::FDiv, Quot, Span, StepF.R0);
  int32_t Floored = B.newF();
  B.emitImmI(Opcode::FIntr1, static_cast<int64_t>(ScalarIntrinsic::Floor),
             Floored, Quot);
  int32_t OneF = B.fconst(1.0);
  int32_t TripF = B.newF();
  B.emit(Opcode::FAdd, TripF, Floored, OneF);
  int32_t Trip = B.newI();
  B.emit(Opcode::FToI, Trip, TripF);

  int32_t K = B.iconst(0);
  IRBuilder::Label Header = B.newLabel();
  IRBuilder::Label Latch = B.newLabel();
  IRBuilder::Label Exit = B.newLabel();

  B.bind(Header);
  size_t HeaderIndex = IR->Code.size();
  int32_t Cond = B.newI();
  B.emitImmI(Opcode::ICmp, static_cast<int64_t>(CondCode::LT), Cond, K, Trip);
  B.brz(Cond, Exit);
  size_t BodyBegin = IR->Code.size();

  // Loop variable: lo + k * step.
  const VarHome &H = Homes[For->loopVarSlot()];
  if (H.K == Operand::Kind::I && AllInt) {
    Operand LoI = toI(Lo), StepI = toI(Step);
    int32_t T = B.newI();
    B.emit(Opcode::IMul, T, K, StepI.R0);
    B.emit(Opcode::IAdd, H.R0, LoI.R0, T);
  } else {
    int32_t KF = B.newF();
    B.emit(Opcode::IToF, KF, K);
    int32_t T = B.newF();
    B.emit(Opcode::FMul, T, KF, StepF.R0);
    int32_t VarF = B.newF();
    B.emit(Opcode::FAdd, VarF, LoF.R0, T);
    switch (H.K) {
    case Operand::Kind::F:
      B.emit(Opcode::MovF, H.R0, VarF);
      break;
    case Operand::Kind::I:
      B.emit(Opcode::FToI, H.R0, VarF);
      break;
    case Operand::Kind::CPair:
      B.emit(Opcode::MovF, H.R0, VarF);
      B.emitImmF(Opcode::FConst, 0.0, H.R1);
      break;
    case Operand::Kind::P:
      B.emit(Opcode::BoxF, H.R0, VarF);
      break;
    }
  }

  BreakLabels.push_back(Exit);
  ContinueLabels.push_back(Latch);
  genBlock(For->body());
  ContinueLabels.pop_back();
  BreakLabels.pop_back();

  B.bind(Latch);
  // The unroller expects LatchIndex to point at the counter IAdd; the
  // constant 1 is emitted just before it (inside the body region, which
  // stays straight-line).
  int32_t One = B.iconst(1);
  size_t LatchIndex = IR->Code.size();
  B.emit(Opcode::IAdd, K, K, One);
  B.br(Header);
  B.bind(Exit);
  size_t ExitIndex = IR->Code.size();

  // Innermost loops are recorded first (post-order), so the optimizer's
  // unroller prefers them.
  LoopMeta Meta;
  Meta.HeaderIndex = static_cast<uint32_t>(HeaderIndex);
  Meta.BodyBegin = static_cast<uint32_t>(BodyBegin);
  Meta.LatchIndex = static_cast<uint32_t>(LatchIndex);
  Meta.ExitIndex = static_cast<uint32_t>(ExitIndex);
  Meta.CounterReg = K;
  Meta.TripReg = Trip;
  IR->Loops.push_back(Meta);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Operand CodeGen::genExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::Number: {
    const auto *N = cast<NumberExpr>(E);
    if (N->isImaginary())
      return Operand::c(B.fconst(0.0), B.fconst(N->value()));
    if (!generic() && N->isIntegral() && std::abs(N->value()) < 1e15)
      return Operand::i(B.iconst(static_cast<int64_t>(N->value())));
    return Operand::f(B.fconst(N->value()));
  }
  case Expr::Kind::String: {
    int32_t R = B.newP();
    B.emitImmI(Opcode::SConst,
               IR->internString(cast<StringExpr>(E)->value()), R);
    return Operand::p(R);
  }
  case Expr::Kind::Ident: {
    const auto *Id = cast<IdentExpr>(E);
    switch (Id->symKind()) {
    case SymKind::Variable: {
      // Constant propagation pays off here: a variable occurrence whose
      // inferred range is degenerate materializes as a literal (Figure 3's
      // sig0 collapses poly(254) to "return 254" this way).
      if (!generic()) {
        Type T = typeOf(E);
        if (auto C = T.constantValue()) {
          if (intScalarType(T))
            return Operand::i(B.iconst(static_cast<int64_t>(*C)));
          return Operand::f(B.fconst(*C));
        }
      }
      return readVar(Id->varSlot());
    }
    case SymKind::Builtin: {
      // Zero-argument builtin reference (pi, rand, i, ...).
      Type T = typeOf(E);
      if (auto C = T.constantValue())
        return Operand::f(B.fconst(*C));
      if (Id->name() == "i" || Id->name() == "j")
        return Operand::c(B.fconst(0.0), B.fconst(1.0));
      int32_t Dst = B.newP();
      Instr In = Instr::make(Opcode::CallB, B.pool({Dst}), 1, B.pool({}), 0);
      In.Imm.I = IR->internName(Id->name());
      B.emit(In);
      return Operand::p(Dst);
    }
    case SymKind::UserFunction: {
      int32_t Dst = B.newP();
      Instr In = Instr::make(Opcode::CallU, B.pool({Dst}), 1, B.pool({}), 0);
      In.Imm.I = IR->internName(Id->name());
      B.emit(In);
      return Operand::p(Dst);
    }
    default:
      throw CannotCompile(); // ambiguous symbols are interpreted
    }
  }
  case Expr::Kind::ColonWildcard:
  case Expr::Kind::EndRef: {
    if (E->getKind() == Expr::Kind::EndRef) {
      if (EndStack.empty())
        throw CannotCompile();
      const EndContext &Ctx = EndStack.back();
      int32_t R = B.newI();
      Opcode Op = Ctx.NumDims == 1
                      ? Opcode::LenNumel
                      : (Ctx.Dim == 0 ? Opcode::LenRows : Opcode::LenCols);
      B.emit(Op, R, Ctx.BaseP);
      return Operand::i(R); // 1-based length
    }
    throw CannotCompile(); // bare ':' outside an index
  }
  case Expr::Kind::Unary:
    return genUnary(cast<UnaryExpr>(E));
  case Expr::Kind::Binary:
    return genBinary(cast<BinaryExpr>(E));
  case Expr::Kind::ShortCircuit: {
    const auto *SC = cast<ShortCircuitExpr>(E);
    int32_t Res = B.newI();
    IRBuilder::Label Short = B.newLabel();
    IRBuilder::Label Done = B.newLabel();
    int32_t CondL = toCond(genExpr(SC->lhs()));
    if (SC->isAnd())
      B.brz(CondL, Short);
    else
      B.brnz(CondL, Short);
    int32_t CondR = toCond(genExpr(SC->rhs()));
    B.emit(Opcode::MovI, Res, CondR);
    B.br(Done);
    B.bind(Short);
    B.emitImmI(Opcode::IConst, SC->isAnd() ? 0 : 1, Res);
    B.bind(Done);
    return Operand::i(Res);
  }
  case Expr::Kind::Range: {
    const auto *R = cast<RangeExpr>(E);
    Type LoT = typeOf(R->lo()), HiT = typeOf(R->hi());
    Type StepT = R->step() ? typeOf(R->step()) : Type::constant(1);
    if (!generic() && realScalarType(LoT) && realScalarType(HiT) &&
        realScalarType(StepT)) {
      Operand Lo = toF(genExpr(R->lo()));
      Operand Step = R->step() ? toF(genExpr(R->step()))
                               : Operand::f(B.fconst(1.0));
      Operand Hi = toF(genExpr(R->hi()));
      int32_t Dst = B.newP();
      B.emit(Opcode::MakeRange, Dst, Lo.R0, Step.R0, Hi.R0);
      return Operand::p(Dst);
    }
    // Boxed colon: MATLAB silently uses the real part of the first element
    // of non-scalar operands (Section 2.5 hint #1 relies on this).
    Operand Lo = toP(genExpr(R->lo()), LoT);
    Operand Step = R->step() ? toP(genExpr(R->step()), StepT)
                             : toP(Operand::f(B.fconst(1.0)), StepT);
    Operand Hi = toP(genExpr(R->hi()), HiT);
    int32_t Dst = B.newP();
    B.emit(Opcode::MakeRangeG, Dst, Lo.R0, Step.R0, Hi.R0);
    return Operand::p(Dst);
  }
  case Expr::Kind::Matrix:
    return genMatrixLit(cast<MatrixExpr>(E));
  case Expr::Kind::IndexOrCall: {
    const auto *IC = cast<IndexOrCallExpr>(E);
    if (IC->base()->symKind() == SymKind::Variable)
      return genIndexRead(IC);
    if (IC->base()->symKind() == SymKind::Ambiguous)
      throw CannotCompile();
    std::vector<Operand> Rs = genCall(IC, 1);
    if (Rs.empty())
      throw CannotCompile(); // zero-output call used as a value
    return Rs.front();
  }
  }
  majic_unreachable("invalid expression kind");
}

Operand CodeGen::genUnary(const UnaryExpr *E) {
  Type OpT = typeOf(E->operand());
  switch (E->op()) {
  case UnaryOpKind::Plus:
    return genExpr(E->operand());
  case UnaryOpKind::Neg: {
    if (!generic() && intScalarType(OpT)) {
      Operand V = toI(genExpr(E->operand()));
      int32_t R = B.newI();
      B.emit(Opcode::INeg, R, V.R0);
      return Operand::i(R);
    }
    if (!generic() && realScalarType(OpT)) {
      Operand V = toF(genExpr(E->operand()));
      int32_t R = B.newF();
      B.emit(Opcode::FNeg, R, V.R0);
      return Operand::f(R);
    }
    if (!generic() && cplxScalarType(OpT)) {
      Operand V = toCPair(genExpr(E->operand()));
      int32_t Re = B.newF(), Im = B.newF();
      B.emit(Opcode::FNeg, Re, V.R0);
      B.emit(Opcode::FNeg, Im, V.R1);
      return Operand::c(Re, Im);
    }
    break;
  }
  case UnaryOpKind::Not: {
    if (!generic() && realScalarType(OpT)) {
      int32_t Cond = toCond(genExpr(E->operand()));
      int32_t R = B.newI();
      B.emit(Opcode::INot, R, Cond);
      return Operand::i(R);
    }
    break;
  }
  case UnaryOpKind::CTranspose:
  case UnaryOpKind::Transpose: {
    if (!generic() && realScalarType(OpT))
      return genExpr(E->operand()); // scalar transpose is the identity
    if (!generic() && cplxScalarType(OpT) &&
        E->op() == UnaryOpKind::CTranspose) {
      Operand V = toCPair(genExpr(E->operand()));
      int32_t Im = B.newF();
      B.emit(Opcode::FNeg, Im, V.R1);
      return Operand::c(V.R0, Im);
    }
    break;
  }
  }
  // Elementwise fusion: -(<elementwise tree>) over a real array. (Unary
  // plus returned above: it compiles to its operand directly.)
  if (E->op() == UnaryOpKind::Neg)
    if (auto Fused = tryFuseElementwise(E))
      return *Fused;

  // Generic fallback.
  Operand P = toP(genExpr(E->operand()), OpT);
  int32_t Dst = B.newP();
  rt::UnOp Op = rt::UnOp::Plus;
  switch (E->op()) {
  case UnaryOpKind::Neg:
    Op = rt::UnOp::Neg;
    break;
  case UnaryOpKind::Plus:
    Op = rt::UnOp::Plus;
    break;
  case UnaryOpKind::Not:
    Op = rt::UnOp::Not;
    break;
  case UnaryOpKind::CTranspose:
    Op = rt::UnOp::CTranspose;
    break;
  case UnaryOpKind::Transpose:
    Op = rt::UnOp::Transpose;
    break;
  }
  B.emitImmI(Opcode::RtUn, static_cast<int64_t>(Op), Dst, P.R0);
  return Operand::p(Dst);
}

//===----------------------------------------------------------------------===//
// Elementwise fusion: grow a maximal tree of elementwise ops and emit one
// EwFuse instruction (one loop, one memory pass, zero temporaries).
//===----------------------------------------------------------------------===//

/// Non-throwing, non-printing leaf expressions: literals, variable reads,
/// and constant-folded builtin references. Only these may be evaluated
/// after an op that could raise a runtime dimension error without
/// reordering observable behavior (see fuseErrorOrderSafe).
bool CodeGen::isSimpleFuseLeaf(const Expr *E) const {
  if (isa<NumberExpr>(E))
    return true;
  if (const auto *Id = dyn_cast<IdentExpr>(E)) {
    if (Id->symKind() == SymKind::Variable)
      return true;
    if (Id->symKind() == SymKind::Builtin &&
        typeOf(E).constantValue().has_value())
      return true;
  }
  return false;
}

/// Grows the fusable tree rooted at \p E. \p Avail is the number of free
/// evaluation-stack slots when this node starts executing (>= 1); a node
/// that cannot (or should not) fuse becomes a leaf. Scalar-typed subtrees
/// always become leaves: they are computed once in registers and broadcast,
/// instead of being re-evaluated per element inside the loop.
int CodeGen::buildFuseNode(FuseTree &T, const Expr *E, int Avail) {
  auto Leaf = [&] {
    T.Nodes.push_back({E, FuseNode::Kind::Leaf, 0, -1, -1});
    return static_cast<int>(T.Nodes.size()) - 1;
  };
  Type ResT = typeOf(E);
  if (!realArrayType(ResT))
    return Leaf(); // interior legality rechecks; belt and braces
  if (ResT.isScalar())
    return Leaf();

  if (const auto *U = dyn_cast<UnaryExpr>(E)) {
    // Unary plus is the identity (genUnary compiles it away); fuse
    // through it transparently.
    if (U->op() == UnaryOpKind::Plus &&
        realArrayType(typeOf(U->operand())))
      return buildFuseNode(T, U->operand(), Avail);
    if (U->op() == UnaryOpKind::Neg &&
        realArrayType(typeOf(U->operand()))) {
      int C = buildFuseNode(T, U->operand(), Avail);
      T.Nodes.push_back({E, FuseNode::Kind::Neg, 0, C, -1});
      ++T.NumOps;
      return static_cast<int>(T.Nodes.size()) - 1;
    }
    return Leaf();
  }

  if (const auto *Bin = dyn_cast<BinaryExpr>(E)) {
    if (Avail < 2)
      return Leaf(); // no slot left for the second operand
    Type LT = typeOf(Bin->lhs()), RT = typeOf(Bin->rhs());
    BinOp Op = Bin->op();
    bool Fusable =
        Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::ElemMul ||
        Op == BinOp::ElemRDiv || Op == BinOp::ElemPow ||
        // * and / degenerate to the elementwise op only with a scalar
        // multiplicand / divisor, and fuse only when the type proves it.
        (Op == BinOp::MatMul && (LT.isScalar() || RT.isScalar())) ||
        (Op == BinOp::MatRDiv && RT.isScalar());
    if (!Fusable || !realArrayType(LT) || !realArrayType(RT))
      return Leaf();
    // Left child evaluates with all our slots; its result then occupies
    // one while the right child evaluates.
    int L = buildFuseNode(T, Bin->lhs(), Avail);
    int R = buildFuseNode(T, Bin->rhs(), Avail - 1);
    T.Nodes.push_back(
        {E, FuseNode::Kind::Bin, static_cast<int32_t>(Op), L, R});
    ++T.NumOps;
    return static_cast<int>(T.Nodes.size()) - 1;
  }

  if (const auto *IC = dyn_cast<IndexOrCallExpr>(E)) {
    if (IC->base() && IC->base()->symKind() == SymKind::Builtin &&
        IC->args().size() == 1) {
      const BuiltinDef *Def =
          BuiltinTable::instance().lookup(IC->base()->name());
      // A Real result annotation is the domain certificate for guarded
      // intrinsics (sqrt of a proven-nonnegative array, or the optimistic
      // real-math rule backed by the runtime guard + deopt).
      if (Def && Def->Intrinsic != ScalarIntrinsic::None &&
          scalarIntrinsicArity(Def->Intrinsic) == 1 &&
          realArrayType(typeOf(IC->args()[0]))) {
        int C = buildFuseNode(T, IC->args()[0], Avail);
        T.Nodes.push_back({E, FuseNode::Kind::Intr,
                           static_cast<int32_t>(Def->Intrinsic), C, -1});
        ++T.NumOps;
        return static_cast<int>(T.Nodes.size()) - 1;
      }
    }
    return Leaf();
  }

  return Leaf();
}

/// The fused loop evaluates every leaf before it applies any operator,
/// while the interpreter interleaves them in post-order. That reordering
/// is observable only when an operator that can throw a runtime dimension
/// error executes (in interpreter order) before a leaf that can itself
/// throw or print. Reject such trees: once a possibly-mismatching Bin has
/// been seen in post-order, later leaves must be simple.
bool CodeGen::fuseErrorOrderSafe(const FuseTree &T) const {
  bool MismatchPossible = false;
  bool Safe = true;
  auto Walk = [&](auto &&Self, int N) -> void {
    const FuseNode &Node = T.Nodes[N];
    switch (Node.K) {
    case FuseNode::Kind::Leaf:
      if (MismatchPossible && !isSimpleFuseLeaf(Node.E))
        Safe = false;
      return;
    case FuseNode::Kind::Bin: {
      Self(Self, Node.L);
      Self(Self, Node.R);
      const auto *Bin = cast<BinaryExpr>(Node.E);
      Type LT = typeOf(Bin->lhs()), RT = typeOf(Bin->rhs());
      bool Compatible =
          LT.isScalar() || RT.isScalar() ||
          (LT.exactShape() && RT.exactShape() &&
           *LT.exactShape() == *RT.exactShape());
      if (!Compatible)
        MismatchPossible = true;
      return;
    }
    case FuseNode::Kind::Neg:
    case FuseNode::Kind::Intr:
      Self(Self, Node.L);
      return;
    }
  };
  Walk(Walk, T.Root);
  return Safe;
}

/// Emits the fused tree: leaves are evaluated depth-first left-to-right
/// (exactly the interpreter's subexpression order), boxed, and collected
/// into the operand table; the postfix program mirrors the tree.
Operand CodeGen::emitFuseTree(const FuseTree &T) {
  std::vector<int32_t> OperandRegs;
  std::vector<int32_t> Program;
  auto Emit = [&](auto &&Self, int N) -> void {
    const FuseNode &Node = T.Nodes[N];
    switch (Node.K) {
    case FuseNode::Kind::Leaf: {
      int32_t Reg = toP(genExpr(Node.E), typeOf(Node.E)).R0;
      // Re-pushing an already-tabled register (the same variable read
      // twice) reuses its slot; the push still re-broadcasts per element.
      int32_t Idx = -1;
      for (size_t K = 0; K != OperandRegs.size(); ++K)
        if (OperandRegs[K] == Reg)
          Idx = static_cast<int32_t>(K);
      if (Idx < 0) {
        Idx = static_cast<int32_t>(OperandRegs.size());
        OperandRegs.push_back(Reg);
      }
      Program.push_back(ew::encode(ew::EwOp::Push, Idx));
      return;
    }
    case FuseNode::Kind::Bin:
      Self(Self, Node.L);
      Self(Self, Node.R);
      Program.push_back(ew::encode(ew::EwOp::Bin, Node.Arg));
      return;
    case FuseNode::Kind::Neg:
      Self(Self, Node.L);
      Program.push_back(ew::encode(ew::EwOp::Neg));
      return;
    case FuseNode::Kind::Intr:
      Self(Self, Node.L);
      Program.push_back(ew::encode(ew::EwOp::Intr, Node.Arg));
      return;
    }
  };
  Emit(Emit, T.Root);

  int32_t Dst = B.newP();
  Instr In = Instr::make(Opcode::EwFuse, Dst, B.pool(OperandRegs),
                         static_cast<int32_t>(OperandRegs.size()),
                         B.pool(Program));
  In.Imm.I = static_cast<int64_t>(Program.size());
  B.emit(In);

  if (Opts.Stats) {
    Opts.Stats->Groups += 1;
    Opts.Stats->OpsFused += T.NumOps;
    Opts.Stats->TempsElided += T.NumOps - 1;
  }
  return Operand::p(Dst);
}

/// Root entry: fuse \p E when it heads a legal elementwise tree of at
/// least two ops with a provably real, non-scalar result. Single ops gain
/// nothing over the runtime's own parallel elementwise kernels, so they
/// keep the boxed path.
std::optional<Operand> CodeGen::tryFuseElementwise(const Expr *E,
                                                   unsigned MinOps) {
  if (generic() || !Opts.EnableFusion)
    return std::nullopt;
  Type ResT = typeOf(E);
  if (!realArrayType(ResT) || ResT.isScalar())
    return std::nullopt;
  FuseTree T;
  T.Root = buildFuseNode(T, E, ew::kMaxEwStack);
  if (T.NumOps < MinOps || !fuseErrorOrderSafe(T))
    return std::nullopt;
  return emitFuseTree(T);
}

Operand CodeGen::genBinary(const BinaryExpr *E) {
  Type LT = typeOf(E->lhs()), RT = typeOf(E->rhs());
  Type ResT = typeOf(E);
  BinOp Op = E->op();

  bool Fast = !generic();

  // Comparisons on real scalars.
  auto CondOf = [Op]() -> std::optional<CondCode> {
    switch (Op) {
    case BinOp::Lt:
      return CondCode::LT;
    case BinOp::Le:
      return CondCode::LE;
    case BinOp::Gt:
      return CondCode::GT;
    case BinOp::Ge:
      return CondCode::GE;
    case BinOp::Eq:
      return CondCode::EQ;
    case BinOp::Ne:
      return CondCode::NE;
    default:
      return std::nullopt;
    }
  };
  if (Fast && CondOf() && realScalarType(LT) && realScalarType(RT)) {
    if (intScalarType(LT) && intScalarType(RT)) {
      Operand L = toI(genExpr(E->lhs()));
      Operand R = toI(genExpr(E->rhs()));
      int32_t Dst = B.newI();
      B.emitImmI(Opcode::ICmp, static_cast<int64_t>(*CondOf()), Dst, L.R0,
                 R.R0);
      return Operand::i(Dst);
    }
    Operand L = toF(genExpr(E->lhs()));
    Operand R = toF(genExpr(E->rhs()));
    int32_t Dst = B.newI();
    B.emitImmI(Opcode::FCmp, static_cast<int64_t>(*CondOf()), Dst, L.R0,
               R.R0);
    return Operand::i(Dst);
  }

  // Comparisons on complex scalars disregard imaginary parts for
  // ordering; ==/~= compare both parts (handled generically below).
  if (Fast && CondOf() && cplxScalarType(LT) && cplxScalarType(RT) &&
      Op != BinOp::Eq && Op != BinOp::Ne) {
    Operand L = toCPair(genExpr(E->lhs()));
    Operand R = toCPair(genExpr(E->rhs()));
    int32_t Dst = B.newI();
    B.emitImmI(Opcode::FCmp, static_cast<int64_t>(*CondOf()), Dst, L.R0,
               R.R0);
    return Operand::i(Dst);
  }

  // Element-wise logical on scalars.
  if (Fast && (Op == BinOp::And || Op == BinOp::Or) && realScalarType(LT) &&
      realScalarType(RT)) {
    int32_t L = toCond(genExpr(E->lhs()));
    int32_t R = toCond(genExpr(E->rhs()));
    int32_t Dst = B.newI();
    B.emit(Op == BinOp::And ? Opcode::IAnd : Opcode::IOr, Dst, L, R);
    return Operand::i(Dst);
  }

  // Scalar arithmetic: "probably the most important performance
  // optimization in MaJIC" (Section 2.6.1).
  bool ArithOp = Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::MatMul ||
                 Op == BinOp::ElemMul || Op == BinOp::MatRDiv ||
                 Op == BinOp::ElemRDiv || Op == BinOp::MatLDiv ||
                 Op == BinOp::ElemLDiv || Op == BinOp::MatPow ||
                 Op == BinOp::ElemPow;
  if (Fast && ArithOp && realScalarType(LT) && realScalarType(RT) &&
      realScalarType(ResT)) {
    bool IntOp = intScalarType(LT) && intScalarType(RT) &&
                 intScalarType(ResT) &&
                 (Op == BinOp::Add || Op == BinOp::Sub ||
                  Op == BinOp::MatMul || Op == BinOp::ElemMul);
    if (IntOp) {
      Operand L = toI(genExpr(E->lhs()));
      Operand R = toI(genExpr(E->rhs()));
      int32_t Dst = B.newI();
      Opcode Code = Op == BinOp::Add   ? Opcode::IAdd
                    : Op == BinOp::Sub ? Opcode::ISub
                                       : Opcode::IMul;
      B.emit(Code, Dst, L.R0, R.R0);
      return Operand::i(Dst);
    }
    Operand L = toF(genExpr(E->lhs()));
    Operand R = toF(genExpr(E->rhs()));
    int32_t Dst = B.newF();
    switch (Op) {
    case BinOp::Add:
      B.emit(Opcode::FAdd, Dst, L.R0, R.R0);
      break;
    case BinOp::Sub:
      B.emit(Opcode::FSub, Dst, L.R0, R.R0);
      break;
    case BinOp::MatMul:
    case BinOp::ElemMul:
      B.emit(Opcode::FMul, Dst, L.R0, R.R0);
      break;
    case BinOp::MatRDiv:
    case BinOp::ElemRDiv:
      B.emit(Opcode::FDiv, Dst, L.R0, R.R0);
      break;
    case BinOp::MatLDiv:
    case BinOp::ElemLDiv:
      B.emit(Opcode::FDiv, Dst, R.R0, L.R0);
      break;
    case BinOp::MatPow:
    case BinOp::ElemPow:
      // The annotation being real proves the domain (pow:real-safe rule).
      B.emit(Opcode::FPow, Dst, L.R0, R.R0);
      break;
    default:
      majic_unreachable("not an arithmetic op");
    }
    return Operand::f(Dst);
  }

  // Complex scalar arithmetic, inlined as register pairs.
  if (Fast && cplxScalarType(LT) && cplxScalarType(RT) &&
      (Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::MatMul ||
       Op == BinOp::ElemMul || Op == BinOp::MatRDiv ||
       Op == BinOp::ElemRDiv)) {
    Operand L = toCPair(genExpr(E->lhs()));
    Operand R = toCPair(genExpr(E->rhs()));
    int32_t Re = B.newF(), Im = B.newF();
    switch (Op) {
    case BinOp::Add:
      B.emit(Opcode::FAdd, Re, L.R0, R.R0);
      B.emit(Opcode::FAdd, Im, L.R1, R.R1);
      break;
    case BinOp::Sub:
      B.emit(Opcode::FSub, Re, L.R0, R.R0);
      B.emit(Opcode::FSub, Im, L.R1, R.R1);
      break;
    case BinOp::MatMul:
    case BinOp::ElemMul: {
      // (a+bi)(c+di) = (ac - bd) + (ad + bc)i
      int32_t AC = B.newF(), BD = B.newF(), AD = B.newF(), BC = B.newF();
      B.emit(Opcode::FMul, AC, L.R0, R.R0);
      B.emit(Opcode::FMul, BD, L.R1, R.R1);
      B.emit(Opcode::FMul, AD, L.R0, R.R1);
      B.emit(Opcode::FMul, BC, L.R1, R.R0);
      B.emit(Opcode::FSub, Re, AC, BD);
      B.emit(Opcode::FAdd, Im, AD, BC);
      break;
    }
    case BinOp::MatRDiv:
    case BinOp::ElemRDiv: {
      // (a+bi)/(c+di) = ((ac+bd) + (bc-ad)i) / (c^2+d^2)
      int32_t CC = B.newF(), DD = B.newF(), Den = B.newF();
      B.emit(Opcode::FMul, CC, R.R0, R.R0);
      B.emit(Opcode::FMul, DD, R.R1, R.R1);
      B.emit(Opcode::FAdd, Den, CC, DD);
      int32_t AC = B.newF(), BD = B.newF(), BC = B.newF(), AD = B.newF();
      B.emit(Opcode::FMul, AC, L.R0, R.R0);
      B.emit(Opcode::FMul, BD, L.R1, R.R1);
      B.emit(Opcode::FMul, BC, L.R1, R.R0);
      B.emit(Opcode::FMul, AD, L.R0, R.R1);
      int32_t NumRe = B.newF(), NumIm = B.newF();
      B.emit(Opcode::FAdd, NumRe, AC, BD);
      B.emit(Opcode::FSub, NumIm, BC, AD);
      B.emit(Opcode::FDiv, Re, NumRe, Den);
      B.emit(Opcode::FDiv, Im, NumIm, Den);
      break;
    }
    default:
      majic_unreachable("unhandled complex op");
    }
    return Operand::c(Re, Im);
  }

  // Small fixed-shape element-wise operations unroll completely
  // (Section 2.6.1: "very effective on small (up to 3x3) matrices and
  // vectors because it completely eliminates loop overhead").
  bool ElemwiseOp = Op == BinOp::Add || Op == BinOp::Sub ||
                    Op == BinOp::ElemMul || Op == BinOp::ElemRDiv ||
                    Op == BinOp::ElemPow ||
                    ((Op == BinOp::MatMul || Op == BinOp::MatRDiv) &&
                     (LT.isScalar() || RT.isScalar()));
  if (Fast && Opts.MaxUnrollNumel > 0 && ElemwiseOp && realArrayType(LT) &&
      realArrayType(RT) && realArrayType(ResT) && !ResT.isScalar()) {
    auto ResShape = ResT.exactShape();
    auto OkSide = [&](const Type &T) {
      return T.isScalar() || (T.exactShape() && ResShape &&
                              *T.exactShape() == *ResShape);
    };
    if (ResShape && ResShape->numel() <= Opts.MaxUnrollNumel && OkSide(LT) &&
        OkSide(RT)) {
      Operand L = genExpr(E->lhs());
      Operand R = genExpr(E->rhs());
      // Scalar sides become one F register; array sides stay boxed and are
      // read with unchecked element loads.
      int32_t LScalar = -1, RScalar = -1, LArr = -1, RArr = -1;
      if (LT.isScalar())
        LScalar = toF(L).R0;
      else
        LArr = toP(L, LT).R0;
      if (RT.isScalar())
        RScalar = toF(R).R0;
      else
        RArr = toP(R, RT).R0;

      int32_t Rows = B.iconst(static_cast<int64_t>(ResShape->Rows));
      int32_t Cols = B.iconst(static_cast<int64_t>(ResShape->Cols));
      int32_t Dst = B.newP();
      MClass Cls = storeClassOf(ResT);
      B.emitImmI(Opcode::NewMat, static_cast<int64_t>(Cls), Dst, Rows, Cols);
      for (uint64_t Idx = 0; Idx != ResShape->numel(); ++Idx) {
        int32_t IdxReg = B.iconst(static_cast<int64_t>(Idx));
        int32_t LV = LScalar, RV = RScalar;
        if (LV < 0) {
          LV = B.newF();
          B.emit(Opcode::LoadEl, LV, LArr, IdxReg);
        }
        if (RV < 0) {
          RV = B.newF();
          B.emit(Opcode::LoadEl, RV, RArr, IdxReg);
        }
        int32_t EV = B.newF();
        switch (Op) {
        case BinOp::Add:
          B.emit(Opcode::FAdd, EV, LV, RV);
          break;
        case BinOp::Sub:
          B.emit(Opcode::FSub, EV, LV, RV);
          break;
        case BinOp::ElemMul:
        case BinOp::MatMul:
          B.emit(Opcode::FMul, EV, LV, RV);
          break;
        case BinOp::ElemRDiv:
        case BinOp::MatRDiv:
          B.emit(Opcode::FDiv, EV, LV, RV);
          break;
        case BinOp::ElemPow:
          B.emit(Opcode::FPow, EV, LV, RV);
          break;
        default:
          majic_unreachable("unexpected unrolled op");
        }
        Instr St = Instr::make(Opcode::StoreEl, Dst, IdxReg, EV);
        St.Imm.I = static_cast<int64_t>(Cls);
        B.emit(St);
      }
      return Operand::p(Dst);
    }
  }

  // Fused BLAS patterns (Section 2.6.1's dgemv selection rule).
  if (Fast && Op == BinOp::Add) {
    // A chain of three or more elementwise ops is one EwFuse pass; Axpy
    // would claim only its a*X + Y root and leave the rest as separate
    // boxed passes. Plain two-op a*X + Y still prefers the Axpy kernel.
    if (auto Fused = tryFuseElementwise(E, /*MinOps=*/3))
      return *Fused;
    // a*X + Y / Y + a*X with real vector X, Y: Axpy.
    auto TryAxpy = [&](const Expr *MulSide, const Expr *Other) -> bool {
      const auto *Mul = dyn_cast<BinaryExpr>(MulSide);
      if (!Mul || Mul->op() != BinOp::MatMul)
        return false;
      Type ST = typeOf(Mul->lhs()), XT = typeOf(Mul->rhs());
      const Expr *SE = Mul->lhs(), *XE = Mul->rhs();
      if (!realScalarType(ST)) {
        std::swap(SE, XE);
        std::swap(ST, XT);
      }
      Type OT = typeOf(Other);
      if (!realScalarType(ST) || !realArrayType(XT) || XT.isScalar() ||
          !realArrayType(OT) || OT.isScalar())
        return false;
      AxpyS = toF(genExpr(SE));
      AxpyX = toP(genExpr(XE), XT);
      AxpyY = toP(genExpr(Other), OT);
      return true;
    };
    if (TryAxpy(E->lhs(), E->rhs()) || TryAxpy(E->rhs(), E->lhs())) {
      int32_t Dst = B.newP();
      B.emit(Opcode::Axpy, Dst, AxpyS.R0, AxpyX.R0, AxpyY.R0);
      return Operand::p(Dst);
    }
  }
  if (Fast && Op == BinOp::MatMul && realArrayType(LT) && !LT.isScalar() &&
      realArrayType(RT) && RT.maxShape().Cols == 1 && !RT.isScalar()) {
    Operand A = toP(genExpr(E->lhs()), LT);
    Operand X = toP(genExpr(E->rhs()), RT);
    int32_t Dst = B.newP();
    B.emit(Opcode::Gemv, Dst, A.R0, X.R0);
    return Operand::p(Dst);
  }

  // Elementwise fusion: a chain of two or more elementwise ops over real
  // arrays becomes one EwFuse loop instead of per-op boxed passes.
  if (auto Fused = tryFuseElementwise(E))
    return *Fused;

  // The implicit default rule: boxed generic operation.
  Operand L = toP(genExpr(E->lhs()), LT);
  Operand R = toP(genExpr(E->rhs()), RT);
  int32_t Dst = B.newP();
  B.emitImmI(Opcode::RtBin, static_cast<int64_t>(Op), Dst, L.R0, R.R0);
  return Operand::p(Dst);
}

//===----------------------------------------------------------------------===//
// Matrix literals
//===----------------------------------------------------------------------===//

Operand CodeGen::genMatrixLit(const MatrixExpr *E) {
  Type T = typeOf(E);
  auto Exact = T.exactShape();

  // Fully unrolled construction for small, exactly shaped, real literals
  // (Section 2.6.1: vector concatenation "completely unrolled when exact
  // array shapes are known").
  bool CanUnroll = !generic() && Opts.MaxUnrollNumel > 0 && Exact &&
                   Exact->numel() <= Opts.MaxUnrollNumel &&
                   realArrayType(T) && !E->rows().empty();
  if (CanUnroll) {
    for (const auto &Row : E->rows())
      for (const Expr *Elem : Row)
        CanUnroll &= realScalarType(typeOf(Elem));
  }
  if (CanUnroll) {
    int32_t Rows = B.iconst(static_cast<int64_t>(Exact->Rows));
    int32_t Cols = B.iconst(static_cast<int64_t>(Exact->Cols));
    int32_t Dst = B.newP();
    B.emitImmI(Opcode::NewMat, static_cast<int64_t>(storeClassOf(T)), Dst,
               Rows, Cols);
    for (size_t RIdx = 0; RIdx != E->rows().size(); ++RIdx) {
      const auto &Row = E->rows()[RIdx];
      for (size_t CIdx = 0; CIdx != Row.size(); ++CIdx) {
        Operand V = toF(genExpr(Row[CIdx]));
        int32_t Idx = B.iconst(
            static_cast<int64_t>(CIdx * Exact->Rows + RIdx));
        Instr St = Instr::make(Opcode::StoreEl, Dst, Idx, V.R0);
        St.Imm.I = static_cast<int64_t>(storeClassOf(T));
        B.emit(St);
      }
    }
    return Operand::p(Dst);
  }

  // Generic: horzcat each row, vertcat the rows.
  if (E->rows().empty()) {
    int32_t Zero = B.iconst(0);
    int32_t Dst = B.newP();
    B.emitImmI(Opcode::NewMat, static_cast<int64_t>(MClass::Real), Dst, Zero,
               Zero);
    return Operand::p(Dst);
  }
  std::vector<int32_t> RowRegs;
  for (const auto &Row : E->rows()) {
    std::vector<int32_t> Elems;
    for (const Expr *Elem : Row)
      Elems.push_back(toP(genExpr(Elem), typeOf(Elem)).R0);
    int32_t RowDst = B.newP();
    B.emit(Opcode::HorzCat, RowDst, B.pool(Elems),
           static_cast<int32_t>(Elems.size()));
    RowRegs.push_back(RowDst);
  }
  if (RowRegs.size() == 1)
    return Operand::p(RowRegs.front());
  int32_t Dst = B.newP();
  B.emit(Opcode::VertCat, Dst, B.pool(RowRegs),
         static_cast<int32_t>(RowRegs.size()));
  return Operand::p(Dst);
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

int32_t CodeGen::genScalarIndex(const Expr *Arg, int32_t BaseP, unsigned Dim,
                                unsigned NumDims) {
  EndStack.push_back({BaseP, Dim, NumDims});
  Operand V = genExpr(Arg);
  EndStack.pop_back();

  Type T = typeOf(Arg);
  if (V.K == Operand::Kind::I ||
      (intScalarType(T) && V.K != Operand::Kind::P)) {
    Operand I = toI(V);
    int32_t One = B.iconst(1);
    int32_t R = B.newI();
    B.emit(Opcode::ISub, R, I.R0, One);
    return R;
  }
  // Not provably integral: validate and convert (1-based -> 0-based).
  Operand F = toF(V);
  int32_t R = B.newI();
  B.emit(Opcode::FToIdx, R, F.R0);
  return R;
}

Operand CodeGen::genIndexRead(const IndexOrCallExpr *IC) {
  int Slot = IC->base()->varSlot();
  Operand Base = readVar(Slot);
  Type BaseT = slotType(Slot);
  if (IC->args().empty())
    return Base; // x() is x
  Operand BaseP = toP(Base, BaseT);

  // Fast path: scalar real element read.
  bool FastOK = !generic() && realArrayType(BaseT) &&
                IC->args().size() <= 2;
  if (FastOK) {
    for (const Expr *A : IC->args())
      FastOK &= !isa<ColonWildcardExpr>(A) &&
                typeOf(A).isScalar() &&
                intrinsicLE(typeOf(A).intrinsic(), IntrinsicType::Real);
  }
  if (FastOK) {
    bool Safe = Ann.subscriptSafe(IC);
    if (IC->args().size() == 1) {
      int32_t Idx = genScalarIndex(IC->args()[0], BaseP.R0, 0, 1);
      int32_t Dst = B.newF();
      B.emit(Safe ? Opcode::LoadEl : Opcode::LoadElChk, Dst, BaseP.R0, Idx);
      return Operand::f(Dst);
    }
    int32_t RIdx = genScalarIndex(IC->args()[0], BaseP.R0, 0, 2);
    int32_t CIdx = genScalarIndex(IC->args()[1], BaseP.R0, 1, 2);
    int32_t Dst = B.newF();
    B.emit(Safe ? Opcode::LoadEl2 : Opcode::LoadEl2Chk, Dst, BaseP.R0, RIdx,
           CIdx);
    return Operand::f(Dst);
  }

  // Generic indexing.
  if (IC->args().size() > 2)
    throw CannotCompile();
  std::vector<int32_t> Descriptors;
  unsigned NumDims = static_cast<unsigned>(IC->args().size());
  for (unsigned D = 0; D != NumDims; ++D) {
    const Expr *A = IC->args()[D];
    if (isa<ColonWildcardExpr>(A)) {
      Descriptors.push_back(-1);
      continue;
    }
    EndStack.push_back({BaseP.R0, D, NumDims});
    Operand V = toP(genExpr(A), typeOf(A));
    EndStack.pop_back();
    Descriptors.push_back(V.R0);
  }
  int32_t Dst = B.newP();
  B.emit(Opcode::LoadIdxG, Dst, BaseP.R0, B.pool(Descriptors),
         static_cast<int32_t>(Descriptors.size()));
  return Operand::p(Dst);
}

void CodeGen::genIndexedStore(const LValue &LV, Operand RHS,
                              const Type &RHSType, const Stmt *S) {
  assert(LV.VarSlot >= 0);
  const VarHome &H = Homes[LV.VarSlot];
  assert(H.K == Operand::Kind::P && "indexed targets are boxed");
  Type BaseT = slotType(LV.VarSlot);

  bool FastOK = !generic() && LV.Indices.size() >= 1 &&
                LV.Indices.size() <= 2 && realArrayType(BaseT) &&
                realScalarType(RHSType) && RHS.K != Operand::Kind::P &&
                RHS.K != Operand::Kind::CPair;
  if (FastOK) {
    for (const Expr *A : LV.Indices)
      FastOK &= !isa<ColonWildcardExpr>(A) && typeOf(A).isScalar() &&
                intrinsicLE(typeOf(A).intrinsic(), IntrinsicType::Real);
  }
  if (FastOK) {
    bool InBounds = Ann.writeFacts(S).InBounds;
    Operand ValF = toF(RHS);
    MClass Cls = storeClassOf(RHSType);
    if (LV.Indices.size() == 1) {
      int32_t Idx = genScalarIndex(LV.Indices[0], H.R0, 0, 1);
      Instr St = Instr::make(InBounds ? Opcode::StoreEl : Opcode::StoreElChk,
                             H.R0, Idx, ValF.R0);
      St.Imm.I = static_cast<int64_t>(Cls);
      B.emit(St);
      return;
    }
    int32_t RIdx = genScalarIndex(LV.Indices[0], H.R0, 0, 2);
    int32_t CIdx = genScalarIndex(LV.Indices[1], H.R0, 1, 2);
    Instr St = Instr::make(InBounds ? Opcode::StoreEl2 : Opcode::StoreEl2Chk,
                           H.R0, RIdx, CIdx, ValF.R0);
    St.Imm.I = static_cast<int64_t>(Cls);
    B.emit(St);
    return;
  }

  // Generic indexed store.
  if (LV.Indices.size() > 2 || LV.Indices.empty())
    throw CannotCompile();
  std::vector<int32_t> Descriptors;
  unsigned NumDims = static_cast<unsigned>(LV.Indices.size());
  for (unsigned D = 0; D != NumDims; ++D) {
    const Expr *A = LV.Indices[D];
    if (isa<ColonWildcardExpr>(A)) {
      Descriptors.push_back(-1);
      continue;
    }
    EndStack.push_back({H.R0, D, NumDims});
    Operand V = toP(genExpr(A), typeOf(A));
    EndStack.pop_back();
    Descriptors.push_back(V.R0);
  }
  Operand RHSP = toP(RHS, RHSType);
  B.emit(Opcode::StoreIdxG, H.R0, RHSP.R0, B.pool(Descriptors),
         static_cast<int32_t>(Descriptors.size()));
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

std::vector<Operand> CodeGen::genCall(const IndexOrCallExpr *IC,
                                      size_t NumOuts, bool Statement) {
  if (IC->base()->symKind() == SymKind::Builtin)
    return genBuiltinCall(IC, NumOuts, Statement);

  // User function call through the resolver (and the repository).
  std::vector<int32_t> ArgRegs;
  for (const Expr *A : IC->args()) {
    if (isa<ColonWildcardExpr>(A) || isa<EndRefExpr>(A))
      throw CannotCompile();
    ArgRegs.push_back(toP(genExpr(A), typeOf(A)).R0);
  }
  std::vector<int32_t> DstRegs;
  std::vector<Operand> Outs;
  for (size_t K = 0; K != std::max<size_t>(NumOuts, 0); ++K) {
    DstRegs.push_back(B.newP());
    Outs.push_back(Operand::p(DstRegs.back()));
  }
  Instr In = Instr::make(Opcode::CallU, B.pool(DstRegs),
                         static_cast<int32_t>(DstRegs.size()),
                         B.pool(ArgRegs), static_cast<int32_t>(ArgRegs.size()));
  In.Imm.I = IR->internName(IC->base()->name()) |
             (Statement ? kStatementCallFlag : 0);
  B.emit(In);
  return Outs;
}

std::vector<Operand> CodeGen::genBuiltinCall(const IndexOrCallExpr *IC,
                                             size_t NumOuts, bool Statement) {
  const std::string &Name = IC->base()->name();
  const BuiltinDef *Def = BuiltinTable::instance().lookup(Name);
  if (!Def)
    throw CannotCompile();

  bool Fast = !generic();

  // Scalar math intrinsics, inlined when the domain is proven (sqrt of a
  // provably non-negative value and so on; Section 2.6.1 "elementary math
  // functions").
  if (Fast && Def->Intrinsic != ScalarIntrinsic::None && NumOuts <= 1 &&
      IC->args().size() == scalarIntrinsicArity(Def->Intrinsic)) {
    bool ArgsOK = true;
    for (const Expr *A : IC->args())
      ArgsOK &= realScalarType(typeOf(A));
    // The *result* annotation being real certifies the domain (the sqrt
    // rule only yields Real when the range analysis proved arg >= 0).
    Type ResT = typeOf(IC);
    bool DomainOK = !scalarIntrinsicNeedsGuard(Def->Intrinsic) ||
                    (realScalarType(ResT));
    if (ArgsOK && DomainOK && realScalarType(ResT)) {
      if (IC->args().size() == 1) {
        Operand A = toF(genExpr(IC->args()[0]));
        int32_t Dst = B.newF();
        B.emitImmI(Opcode::FIntr1, static_cast<int64_t>(Def->Intrinsic), Dst,
                   A.R0);
        return {Operand::f(Dst)};
      }
      Operand A = toF(genExpr(IC->args()[0]));
      Operand C = toF(genExpr(IC->args()[1]));
      int32_t Dst = B.newF();
      B.emitImmI(Opcode::FIntr2, static_cast<int64_t>(Def->Intrinsic), Dst,
                 A.R0, C.R0);
      return {Operand::f(Dst)};
    }
  }

  // Preallocated arrays: zeros/ones with scalar arguments (Section 2.6.1
  // "small temporary arrays of known sizes are pre-allocated" generalizes
  // to direct allocation without boxing the dimensions).
  if (Fast && (Name == "zeros" || Name == "ones") && NumOuts <= 1 &&
      IC->args().size() >= 1 && IC->args().size() <= 2) {
    bool ArgsOK = true;
    for (const Expr *A : IC->args())
      ArgsOK &= realScalarType(typeOf(A));
    if (ArgsOK) {
      Operand R0 = toI(genExpr(IC->args()[0]));
      Operand C0 = IC->args().size() == 2 ? toI(genExpr(IC->args()[1])) : R0;
      int32_t Dst = B.newP();
      B.emitImmI(Opcode::NewMat,
                 static_cast<int64_t>(Name == "ones" ? MClass::Int
                                                     : MClass::Real),
                 Dst, R0.R0, C0.R0);
      if (Name == "ones")
        B.emitImmF(Opcode::FillF, 1.0, Dst);
      return {Operand::p(Dst)};
    }
  }

  // Shape queries on boxed values become Len instructions.
  if (Fast && (Name == "numel" || Name == "size") && IC->args().size() >= 1) {
    Operand A = toP(genExpr(IC->args()[0]), typeOf(IC->args()[0]));
    if (Name == "numel" && NumOuts <= 1) {
      int32_t Dst = B.newI();
      B.emit(Opcode::LenNumel, Dst, A.R0);
      return {Operand::i(Dst)};
    }
    if (Name == "size" && IC->args().size() == 2 && NumOuts <= 1) {
      if (auto Dim = typeOf(IC->args()[1]).constantValue()) {
        int32_t Dst = B.newI();
        B.emit(*Dim == 1 ? Opcode::LenRows : Opcode::LenCols, Dst, A.R0);
        return {Operand::i(Dst)};
      }
    }
    if (Name == "size" && IC->args().size() == 1 && NumOuts == 2) {
      int32_t R = B.newI(), C = B.newI();
      B.emit(Opcode::LenRows, R, A.R0);
      B.emit(Opcode::LenCols, C, A.R0);
      return {Operand::i(R), Operand::i(C)};
    }
    // Fall through to the generic call with the boxed argument reused.
    std::vector<int32_t> ArgRegs{A.R0};
    for (size_t K = 1; K != IC->args().size(); ++K)
      ArgRegs.push_back(toP(genExpr(IC->args()[K]),
                            typeOf(IC->args()[K])).R0);
    std::vector<int32_t> DstRegs;
    std::vector<Operand> Outs;
    for (size_t K = 0; K != NumOuts; ++K) {
      DstRegs.push_back(B.newP());
      Outs.push_back(Operand::p(DstRegs.back()));
    }
    Instr In = Instr::make(Opcode::CallB, B.pool(DstRegs),
                           static_cast<int32_t>(DstRegs.size()),
                           B.pool(ArgRegs),
                           static_cast<int32_t>(ArgRegs.size()));
    In.Imm.I = IR->internName(Name) | (Statement ? kStatementCallFlag : 0);
    B.emit(In);
    return Outs;
  }

  // Elementwise fusion: an intrinsic map over a fusable array chain
  // (exp(-x.^2) and friends) becomes part of one EwFuse loop.
  if (Fast && NumOuts == 1 && !Statement)
    if (auto Fused = tryFuseElementwise(IC))
      return {*Fused};

  // Generic builtin call.
  std::vector<int32_t> ArgRegs;
  for (const Expr *A : IC->args()) {
    if (isa<ColonWildcardExpr>(A) || isa<EndRefExpr>(A))
      throw CannotCompile();
    ArgRegs.push_back(toP(genExpr(A), typeOf(A)).R0);
  }
  std::vector<int32_t> DstRegs;
  std::vector<Operand> Outs;
  for (size_t K = 0; K != NumOuts; ++K) {
    DstRegs.push_back(B.newP());
    Outs.push_back(Operand::p(DstRegs.back()));
  }
  Instr In = Instr::make(Opcode::CallB, B.pool(DstRegs),
                         static_cast<int32_t>(DstRegs.size()), B.pool(ArgRegs),
                         static_cast<int32_t>(ArgRegs.size()));
  In.Imm.I = IR->internName(Name) | (Statement ? kStatementCallFlag : 0);
  B.emit(In);
  return Outs;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<IRFunction> CodeGen::run() {
  if (FI.HasAmbiguousSymbols)
    return nullptr;
  IR->Name = FI.F->name();
  EpilogueLabel = B.newLabel();
  try {
    assignHomes();
    genPrologue();
    genBlock(FI.F->body());
    genEpilogue();
    B.finish();
  } catch (const CannotCompile &) {
    return nullptr;
  }
  return std::move(IR);
}

} // namespace

std::unique_ptr<IRFunction> majic::generateCode(const FunctionInfo &FI,
                                                const TypeAnnotations &Ann,
                                                const TypeSignature &Sig,
                                                const CodeGenOptions &Opts) {
  return CodeGen(FI, Ann, Sig, Opts).run();
}
