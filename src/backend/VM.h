//===- backend/VM.h - The register VM --------------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution machine for allocated IR: a register VM with fixed
/// physical register files and separate spill memory. This stands in for
/// vcode's native code emission (DESIGN.md substitution #1): unboxed
/// element access, spill traffic and bounds checks each cost real executed
/// instructions, so the paper's ablations (Figure 7) measure genuine
/// mechanisms.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_VM_H
#define MAJIC_BACKEND_VM_H

#include "ir/Instr.h"
#include "runtime/CallResolver.h"
#include "runtime/Builtins.h"
#include "runtime/Context.h"

#include <vector>

namespace majic {

/// Thrown when optimistic compiled code violates a runtime type guard
/// (e.g. sqrt of a negative value in code typed under the assumption the
/// domain holds). The engine catches it, recompiles the function without
/// optimism, and re-executes the invocation.
struct DeoptError {
  ScalarIntrinsic Guard;
  double Operand;
};

class VM {
public:
  VM(Context &Ctx, CallResolver &Resolver) : Ctx(Ctx), Resolver(Resolver) {}

  /// Executes the allocated function \p F with \p Args, producing
  /// \p NumOuts outputs. Throws MatlabError on runtime errors.
  std::vector<ValuePtr> run(const IRFunction &F, std::vector<ValuePtr> Args,
                            size_t NumOuts);

  /// Total instructions dispatched over this VM's lifetime (tests and the
  /// ablation benches use this as an architecture-neutral cost measure).
  uint64_t instructionsExecuted() const { return InstrCount; }

private:
  Context &Ctx;
  CallResolver &Resolver;
  uint64_t InstrCount = 0;
};

} // namespace majic

#endif // MAJIC_BACKEND_VM_H
