//===- backend/Platform.h - Target platform models -------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of the paper's two evaluation platforms (Section 3.3). The real
/// testbeds (a 400MHz UltraSparc 10 with Sparcworks cc, and an SGI Origin
/// 200 with the MIPSPro compiler) are irreproducible; what the experiments
/// actually depend on is *qualitative*:
///
///  - SPARC: a mature JIT backend (unrolling enabled, full register file)
///    and a mediocre native compiler (one optimizer round for the
///    speculative path) -> MaJIC's JIT is competitive with FALCON.
///  - MIPS: an immature JIT backend ("not yet completely implemented":
///    no unrolling, half the registers) and an excellent native compiler
///    (two optimizer rounds) -> the JIT falls behind FALCON/spec.
///
/// See DESIGN.md, substitution #5.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_PLATFORM_H
#define MAJIC_BACKEND_PLATFORM_H

#include <string>

namespace majic {

struct PlatformModel {
  std::string Name = "sparc";

  /// Physical register file sizes the linear-scan allocator targets.
  unsigned NumFRegs = 16;
  unsigned NumIRegs = 16;
  unsigned NumPRegs = 12;

  /// Whether the JIT code generator unrolls small fixed-shape vector
  /// operations on this platform.
  bool JitUnrollsSmallVectors = true;

  /// Optimizer pipeline rounds the "native compiler" (speculative / batch
  /// path) runs. More rounds = a better native compiler.
  unsigned NativeOptRounds = 1;

  static PlatformModel sparc() { return PlatformModel(); }

  static PlatformModel mips() {
    PlatformModel P;
    P.Name = "mips";
    P.NumFRegs = 8;
    P.NumIRegs = 8;
    P.NumPRegs = 6;
    P.JitUnrollsSmallVectors = false;
    P.NativeOptRounds = 2;
    return P;
  }
};

} // namespace majic

#endif // MAJIC_BACKEND_PLATFORM_H
