//===- backend/Optimize.h - The "native compiler" pipeline -----*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing backend standing in for the host C/Fortran compiler of
/// the speculative path (Section 2.6: the source code generator's output
/// is "compiled with the native compiler using the most aggressive
/// optimization mode"; DESIGN.md substitution #2). The JIT deliberately
/// skips this pipeline ("no loop optimizations or instruction scheduling
/// are performed").
///
/// Passes, in order, over unallocated IR:
///   1. Local value numbering: constant folding, copy propagation, CSE.
///   2. Loop-invariant code motion over the code generator's loop metadata.
///   3. Unrolling (factor 2 or 4) of small straight-line counted loops.
///   4. Dead code elimination and Nop compaction.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BACKEND_OPTIMIZE_H
#define MAJIC_BACKEND_OPTIMIZE_H

#include "ir/Instr.h"

namespace majic {

struct FusionStats;

struct OptimizeOptions {
  bool EnableValueNumbering = true;
  bool EnableLICM = true;
  bool EnableUnroll = true;
  unsigned UnrollFactor = 2;
  unsigned MaxUnrollBodySize = 48;
  bool EnableDCE = true;
  /// Cross-statement EwFuse merging: a fused group whose result feeds
  /// exactly one later fused group in the same block is inlined into it,
  /// eliding the intermediate temporary entirely.
  bool EnableEwFuseMerge = true;
  /// Pipeline repetitions (the platform's native-compiler quality).
  unsigned Rounds = 1;
  /// When non-null, EwFuse merges adjust these compile-wide fusion
  /// counters (one fewer group, one more elided temporary per merge).
  FusionStats *Fusion = nullptr;
};

struct OptimizeStats {
  unsigned NumFolded = 0;
  unsigned NumCSE = 0;
  unsigned NumHoisted = 0;
  unsigned NumLoopsUnrolled = 0;
  unsigned NumDead = 0;
  unsigned NumEwFuseMerged = 0;
};

/// Optimizes \p F in place. Requires unallocated code; preserves loop
/// metadata across in-place passes and recomputes it across rebuilds.
OptimizeStats optimize(IRFunction &F, const OptimizeOptions &Opts = {});

} // namespace majic

#endif // MAJIC_BACKEND_OPTIMIZE_H
