//===- analysis/Disambiguate.h - Symbol disambiguation ---------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbol disambiguation (Section 2.1): classifies every symbol occurrence
/// as a variable, a builtin primitive, a user function, or ambiguous, using
/// a definite-assignment variant of reaching-definitions analysis over the
/// CFG: "a symbol that has a reaching definition as a variable on *all*
/// paths leading to it must be a variable". Ambiguous occurrences (Figure 2)
/// are deferred to runtime.
///
/// This pass also assigns dense variable slots, builds the static symbol
/// table, and produces the CFG reused by type inference.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_ANALYSIS_DISAMBIGUATE_H
#define MAJIC_ANALYSIS_DISAMBIGUATE_H

#include "analysis/Cfg.h"
#include "ast/AST.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace majic {

/// The static symbol table of one function: the name <-> slot mapping plus
/// per-name classification facts.
class SymbolTable {
public:
  /// Returns the slot of \p Name, creating one if needed.
  int getOrCreateSlot(const std::string &Name);

  /// Returns the slot of \p Name or -1.
  int lookup(const std::string &Name) const;

  const std::string &nameOfSlot(int Slot) const { return Names[Slot]; }
  unsigned numSlots() const { return static_cast<unsigned>(Names.size()); }

private:
  std::unordered_map<std::string, int> SlotOf;
  std::vector<std::string> Names;
};

/// Everything the later passes need about one analyzed function.
struct FunctionInfo {
  Function *F = nullptr;
  Module *M = nullptr;
  std::unique_ptr<CFG> Cfg;
  SymbolTable Symbols;
  /// Names of user functions this function may call (for the repository's
  /// dependency tracking and the inliner).
  std::vector<std::string> Callees;
  /// True when any occurrence was classified Ambiguous; such functions are
  /// interpreted rather than compiled (the paper defers them to runtime).
  bool HasAmbiguousSymbols = false;
  /// Per-slot: definitely assigned on every path reaching the function
  /// exit. The code generator boxes output variables that are not.
  std::vector<bool> DefiniteAtExit;
};

/// Runs disambiguation on \p F (mutating the AST's symbol annotations and
/// the Function's slot bookkeeping) and returns the analysis results.
/// \p Predefined names are treated as variables already defined at entry
/// (the interactive workspace of a script session).
std::unique_ptr<FunctionInfo>
disambiguate(Function &F, Module &M,
             const std::vector<std::string> *Predefined = nullptr);

} // namespace majic

#endif // MAJIC_ANALYSIS_DISAMBIGUATE_H
