//===- analysis/Inliner.cpp - Function inlining ------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Inliner.h"

#include "ast/ASTClone.h"
#include "ast/ASTVisit.h"
#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace majic;

namespace {

/// Collects the names that can denote variables in \p F (parameters,
/// outputs, assignment targets, loop variables).
std::unordered_set<std::string> collectUniverse(const Function &F) {
  std::unordered_set<std::string> U;
  for (const std::string &P : F.params())
    U.insert(P);
  for (const std::string &O : F.outs())
    U.insert(O);
  visitStmts(F.body(), [&U](const Stmt *S) {
    if (const auto *A = dyn_cast<AssignStmt>(S)) {
      for (const LValue &LV : A->targets())
        U.insert(LV.Name);
    } else if (const auto *For = dyn_cast<ForStmt>(S)) {
      U.insert(For->loopVar());
    }
  });
  return U;
}

bool blockContainsReturn(const Block &B) {
  bool Found = false;
  visitStmts(B, [&Found](const Stmt *S) {
    Found |= S->getKind() == Stmt::Kind::Return;
  });
  return Found;
}

class InlinerImpl {
public:
  InlinerImpl(ASTContext &Ctx, const FunctionResolver &Resolve,
              const InlinerOptions &Opts)
      : Ctx(Ctx), Resolve(Resolve), Opts(Opts) {}

  Block processBlock(const Block &B);

private:
  void processStmt(const Stmt *S, Block &Out);
  Expr *processExpr(const Expr *E, Block &Out, bool AllowHoist);

  /// True when \p Call can be replaced by the callee's body here.
  const Function *inlinableCallee(const IndexOrCallExpr *Call) const;

  /// Inlines \p Callee with the given (already processed) actuals; declares
  /// \p NumOuts fresh output variables and returns their names.
  std::vector<std::string> emitInline(const Function &Callee,
                                      const std::vector<Expr *> &Actuals,
                                      size_t NumOuts, Block &Out);

  /// Lowers return statements in an inlined body: RetVar = 1 plus breaks and
  /// guards. Returns true when the block can set the flag.
  bool returnify(const Block &In, Block &Out, const std::string &RetVar,
                 bool InLoop);
  Stmt *returnifyLoopBody(const Block &Body, const std::string &RetVar,
                          bool &MayRet, const std::function<Stmt *(Block)> &Rebuild);

  std::string freshName(const std::string &Base) {
    return format("%s$%u", Base.c_str(), ++TempCounter);
  }

  IdentExpr *ident(const std::string &Name) {
    return Ctx.create<IdentExpr>(Name, SourceLoc());
  }

  Stmt *assign(const std::string &Name, Expr *RHS) {
    std::vector<LValue> Targets;
    Targets.push_back({Name, -1, {}, false, SourceLoc()});
    return Ctx.create<AssignStmt>(std::move(Targets), RHS, /*Display=*/false,
                                  SourceLoc());
  }

  Expr *number(double V) { return Ctx.create<NumberExpr>(V, false, SourceLoc()); }

  /// RetVar ~= 0.
  Expr *retSet(const std::string &RetVar) {
    return Ctx.create<BinaryExpr>(rt::BinOp::Ne, ident(RetVar), number(0),
                                  SourceLoc());
  }
  /// RetVar == 0.
  Expr *retClear(const std::string &RetVar) {
    return Ctx.create<BinaryExpr>(rt::BinOp::Eq, ident(RetVar), number(0),
                                  SourceLoc());
  }

  ASTContext &Ctx;
  const FunctionResolver &Resolve;
  InlinerOptions Opts;
  unsigned TempCounter = 0;
  std::unordered_map<std::string, unsigned> ActiveDepth;
};

const Function *InlinerImpl::inlinableCallee(const IndexOrCallExpr *Call) const {
  if (Call->base()->symKind() != SymKind::UserFunction)
    return nullptr;
  const Function *Callee = Resolve(Call->base()->name());
  if (!Callee || Callee->isScript())
    return nullptr;
  if (Callee->numLines() >= Opts.MaxCalleeLines)
    return nullptr;
  if (Call->args().size() > Callee->params().size())
    return nullptr;
  // Subscripted argument forms (':', 'end') cannot be actuals.
  for (const Expr *A : Call->args())
    if (isa<ColonWildcardExpr>(A))
      return nullptr;
  auto It = ActiveDepth.find(Callee->name());
  if (It != ActiveDepth.end() && It->second >= Opts.MaxRecursionDepth)
    return nullptr;
  return Callee;
}

std::vector<std::string> InlinerImpl::emitInline(const Function &Callee,
                                                 const std::vector<Expr *> &Actuals,
                                                 size_t NumOuts, Block &Out) {
  // Alpha-rename every callee local.
  unsigned Serial = ++TempCounter;
  CloneRemap Remap;
  for (const std::string &Name : collectUniverse(Callee))
    Remap.RenameVar[Name] =
        format("%s$%u$%s", Callee.name().c_str(), Serial, Name.c_str());

  // Bind actuals to the renamed parameters (call-by-value; the CoW Value
  // representation avoids the copy until the callee writes).
  for (size_t I = 0; I != Actuals.size(); ++I)
    Out.push_back(assign(Remap.RenameVar[Callee.params()[I]], Actuals[I]));

  Block Body = cloneBlock(Ctx, Callee.body(), Remap);

  if (blockContainsReturn(Body)) {
    std::string RetVar = format("%s$%u$ret", Callee.name().c_str(), Serial);
    Out.push_back(assign(RetVar, number(0)));
    Block Lowered;
    returnify(Body, Lowered, RetVar, /*InLoop=*/false);
    Body = std::move(Lowered);
  }

  // Recursively inline within the inlined body (bounded by ActiveDepth).
  ++ActiveDepth[Callee.name()];
  Block Processed = processBlock(Body);
  --ActiveDepth[Callee.name()];
  for (Stmt *S : Processed)
    Out.push_back(S);

  std::vector<std::string> OutNames;
  for (size_t I = 0; I != NumOuts && I != Callee.outs().size(); ++I)
    OutNames.push_back(Remap.RenameVar[Callee.outs()[I]]);
  return OutNames;
}

//===----------------------------------------------------------------------===//
// Return lowering
//===----------------------------------------------------------------------===//

bool InlinerImpl::returnify(const Block &In, Block &Out,
                            const std::string &RetVar, bool InLoop) {
  bool MayRet = false;
  for (size_t I = 0; I != In.size(); ++I) {
    const Stmt *S = In[I];
    bool StmtMayRet = false;
    bool EmitLoopGuard = false;

    switch (S->getKind()) {
    case Stmt::Kind::Return:
      Out.push_back(assign(RetVar, number(1)));
      if (InLoop)
        Out.push_back(Ctx.create<BreakStmt>(S->getLoc()));
      StmtMayRet = true;
      break;

    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      std::vector<IfStmt::Branch> Branches;
      for (const IfStmt::Branch &Br : If->branches()) {
        Block B;
        StmtMayRet |= returnify(Br.Body, B, RetVar, InLoop);
        Branches.push_back({Br.Cond, std::move(B)});
      }
      Block Else;
      StmtMayRet |= returnify(If->elseBlock(), Else, RetVar, InLoop);
      Out.push_back(Ctx.create<IfStmt>(std::move(Branches), std::move(Else),
                                       S->getLoc()));
      EmitLoopGuard = StmtMayRet && InLoop;
      break;
    }

    case Stmt::Kind::While: {
      const auto *W = cast<WhileStmt>(S);
      Block B;
      StmtMayRet = returnify(W->body(), B, RetVar, /*InLoop=*/true);
      Out.push_back(Ctx.create<WhileStmt>(W->cond(), std::move(B), S->getLoc()));
      EmitLoopGuard = StmtMayRet && InLoop;
      break;
    }

    case Stmt::Kind::For: {
      const auto *F = cast<ForStmt>(S);
      Block B;
      StmtMayRet = returnify(F->body(), B, RetVar, /*InLoop=*/true);
      Out.push_back(Ctx.create<ForStmt>(F->loopVar(), F->iterand(),
                                        std::move(B), S->getLoc()));
      EmitLoopGuard = StmtMayRet && InLoop;
      break;
    }

    default:
      Out.push_back(const_cast<Stmt *>(S));
      break;
    }

    MayRet |= StmtMayRet;
    if (!StmtMayRet)
      continue;

    // After a statement that can set the flag, either break out of the
    // enclosing loop or guard the rest of the block.
    if (EmitLoopGuard) {
      std::vector<IfStmt::Branch> Guard;
      Block BreakBody;
      BreakBody.push_back(Ctx.create<BreakStmt>(S->getLoc()));
      Guard.push_back({retSet(RetVar), std::move(BreakBody)});
      Out.push_back(
          Ctx.create<IfStmt>(std::move(Guard), Block(), S->getLoc()));
      continue;
    }
    if (!InLoop && I + 1 < In.size()) {
      Block Rest;
      Block RestIn(In.begin() + I + 1, In.end());
      returnify(RestIn, Rest, RetVar, InLoop);
      std::vector<IfStmt::Branch> Guard;
      Guard.push_back({retClear(RetVar), std::move(Rest)});
      Out.push_back(
          Ctx.create<IfStmt>(std::move(Guard), Block(), S->getLoc()));
      return true;
    }
  }
  return MayRet;
}

//===----------------------------------------------------------------------===//
// Statement / expression rewriting
//===----------------------------------------------------------------------===//

Expr *InlinerImpl::processExpr(const Expr *E, Block &Out, bool AllowHoist) {
  if (!E)
    return nullptr;
  SourceLoc Loc = E->getLoc();
  switch (E->getKind()) {
  case Expr::Kind::Number:
  case Expr::Kind::String:
  case Expr::Kind::Ident:
  case Expr::Kind::ColonWildcard:
  case Expr::Kind::EndRef:
    return cloneExpr(Ctx, E, CloneRemap());
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return Ctx.create<UnaryExpr>(
        U->op(), processExpr(U->operand(), Out, AllowHoist), Loc);
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Expr *L = processExpr(B->lhs(), Out, AllowHoist);
    Expr *R = processExpr(B->rhs(), Out, AllowHoist);
    return Ctx.create<BinaryExpr>(B->op(), L, R, Loc);
  }
  case Expr::Kind::ShortCircuit: {
    const auto *B = cast<ShortCircuitExpr>(E);
    Expr *L = processExpr(B->lhs(), Out, AllowHoist);
    // The RHS is conditionally evaluated: no hoisting out of it.
    Expr *R = processExpr(B->rhs(), Out, /*AllowHoist=*/false);
    return Ctx.create<ShortCircuitExpr>(B->isAnd(), L, R, Loc);
  }
  case Expr::Kind::Range: {
    const auto *R = cast<RangeExpr>(E);
    return Ctx.create<RangeExpr>(processExpr(R->lo(), Out, AllowHoist),
                                 processExpr(R->step(), Out, AllowHoist),
                                 processExpr(R->hi(), Out, AllowHoist), Loc);
  }
  case Expr::Kind::Matrix: {
    const auto *M = cast<MatrixExpr>(E);
    std::vector<std::vector<Expr *>> Rows;
    for (const auto &Row : M->rows()) {
      std::vector<Expr *> NewRow;
      for (const Expr *Elem : Row)
        NewRow.push_back(processExpr(Elem, Out, AllowHoist));
      Rows.push_back(std::move(NewRow));
    }
    return Ctx.create<MatrixExpr>(std::move(Rows), Loc);
  }
  case Expr::Kind::IndexOrCall: {
    const auto *IC = cast<IndexOrCallExpr>(E);
    std::vector<Expr *> Arguments;
    for (const Expr *A : IC->args())
      Arguments.push_back(processExpr(A, Out, AllowHoist));
    const Function *Callee = AllowHoist ? inlinableCallee(IC) : nullptr;
    if (Callee && !Callee->outs().empty()) {
      std::vector<std::string> Outs = emitInline(*Callee, Arguments, 1, Out);
      return ident(Outs.front());
    }
    auto *Base = cast<IdentExpr>(cloneExpr(Ctx, IC->base(), CloneRemap()));
    return Ctx.create<IndexOrCallExpr>(Base, std::move(Arguments), Loc);
  }
  }
  majic_unreachable("invalid expression kind");
}

void InlinerImpl::processStmt(const Stmt *S, Block &Out) {
  SourceLoc Loc = S->getLoc();
  switch (S->getKind()) {
  case Stmt::Kind::Expr: {
    const auto *ES = cast<ExprStmt>(S);
    // A bare call statement: inline without binding outputs.
    if (const auto *IC = dyn_cast<IndexOrCallExpr>(ES->expr())) {
      if (const Function *Callee = inlinableCallee(IC)) {
        std::vector<Expr *> Arguments;
        for (const Expr *A : IC->args())
          Arguments.push_back(processExpr(A, Out, /*AllowHoist=*/true));
        std::vector<std::string> Outs = emitInline(
            *Callee, Arguments, ES->displays() ? 1 : 0, Out);
        if (ES->displays() && !Outs.empty())
          Out.push_back(
              Ctx.create<ExprStmt>(ident(Outs.front()), true, Loc));
        return;
      }
    }
    Out.push_back(Ctx.create<ExprStmt>(
        processExpr(ES->expr(), Out, /*AllowHoist=*/true), ES->displays(),
        Loc));
    return;
  }

  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    // Direct call on the RHS: bind the callee's outputs to the targets.
    if (const auto *IC = dyn_cast<IndexOrCallExpr>(A->rhs())) {
      const Function *Callee = inlinableCallee(IC);
      if (Callee && Callee->outs().size() >= A->targets().size()) {
        std::vector<Expr *> Arguments;
        for (const Expr *Arg : IC->args())
          Arguments.push_back(processExpr(Arg, Out, /*AllowHoist=*/true));
        std::vector<std::string> Outs =
            emitInline(*Callee, Arguments, A->targets().size(), Out);
        for (size_t I = 0; I != A->targets().size(); ++I) {
          const LValue &LV = A->targets()[I];
          LValue NewLV;
          NewLV.Name = LV.Name;
          NewLV.HasParens = LV.HasParens;
          NewLV.Loc = LV.Loc;
          for (const Expr *Idx : LV.Indices)
            NewLV.Indices.push_back(processExpr(Idx, Out, true));
          std::vector<LValue> Targets;
          Targets.push_back(std::move(NewLV));
          Out.push_back(Ctx.create<AssignStmt>(std::move(Targets),
                                               ident(Outs[I]),
                                               A->displays(), Loc));
        }
        return;
      }
    }
    Expr *RHS = processExpr(A->rhs(), Out, /*AllowHoist=*/true);
    std::vector<LValue> Targets;
    for (const LValue &LV : A->targets()) {
      LValue NewLV;
      NewLV.Name = LV.Name;
      NewLV.HasParens = LV.HasParens;
      NewLV.Loc = LV.Loc;
      for (const Expr *Idx : LV.Indices)
        NewLV.Indices.push_back(processExpr(Idx, Out, true));
      Targets.push_back(std::move(NewLV));
    }
    Out.push_back(Ctx.create<AssignStmt>(std::move(Targets), RHS,
                                         A->displays(), Loc));
    return;
  }

  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    std::vector<IfStmt::Branch> Branches;
    bool First = true;
    for (const IfStmt::Branch &Br : If->branches()) {
      // Only the first condition is unconditionally evaluated, so only it
      // may hoist inlined bodies in front of the 'if'.
      Expr *Cond = processExpr(Br.Cond, Out, /*AllowHoist=*/First);
      First = false;
      Branches.push_back({Cond, processBlock(Br.Body)});
    }
    Out.push_back(Ctx.create<IfStmt>(std::move(Branches),
                                     processBlock(If->elseBlock()), Loc));
    return;
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    // The condition re-evaluates every iteration: no hoisting.
    Expr *Cond = processExpr(W->cond(), Out, /*AllowHoist=*/false);
    Out.push_back(
        Ctx.create<WhileStmt>(Cond, processBlock(W->body()), Loc));
    return;
  }

  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    Expr *Iterand = processExpr(F->iterand(), Out, /*AllowHoist=*/true);
    Out.push_back(Ctx.create<ForStmt>(F->loopVar(), Iterand,
                                      processBlock(F->body()), Loc));
    return;
  }

  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
  case Stmt::Kind::Return:
  case Stmt::Kind::Clear:
    Out.push_back(cloneStmt(Ctx, S, CloneRemap()));
    return;
  }
  majic_unreachable("invalid statement kind");
}

Block InlinerImpl::processBlock(const Block &B) {
  Block Out;
  for (const Stmt *S : B)
    processStmt(S, Out);
  return Out;
}

} // namespace

std::unique_ptr<Function> majic::inlineFunctionCalls(
    const Function &F, ASTContext &Ctx, const FunctionResolver &Resolve,
    const InlinerOptions &Opts) {
  auto Clone = std::make_unique<Function>(F.name(), F.params(), F.outs(),
                                          F.isScript());
  Clone->setNumLines(F.numLines());
  InlinerImpl Impl(Ctx, Resolve, Opts);
  // Clone first so the new function shares no mutable nodes with the
  // original, then inline within the clone.
  Block Cloned = cloneBlock(Ctx, F.body(), CloneRemap());
  Clone->body() = Impl.processBlock(Cloned);
  return Clone;
}
