//===- analysis/Cfg.h - Control flow graph ---------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control flow graph the dataflow analyses run on (Section 2.3: "the
/// type inference engine ... starts out with the control flow graph of a
/// MATLAB program"). Blocks hold straight-line statements; structured
/// control flow (if/while/for, break/continue/return) is lowered to edges.
///
/// For loops are lowered as:
///   preheader: ... ForInit(iterand) -> header
///   header:    ForLoop terminator -> body (another iteration) | exit
///   body:      ForStep (defines the loop variable), stmts... -> header
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_ANALYSIS_CFG_H
#define MAJIC_ANALYSIS_CFG_H

#include "ast/AST.h"

#include <memory>
#include <vector>

namespace majic {

class BasicBlock {
public:
  /// One analysis-visible action inside a block.
  struct Element {
    enum class Kind : uint8_t {
      Stmt,    ///< An Assign/Expr/Clear statement.
      ForInit, ///< Evaluation of a for loop's iterand.
      ForStep, ///< Definition of the loop variable from the iterand.
    };
    Kind K;
    const Stmt *S = nullptr;      ///< For Kind::Stmt.
    const ForStmt *For = nullptr; ///< For ForInit/ForStep.
  };

  enum class TermKind : uint8_t {
    None,       ///< Unterminated (only during construction).
    Jump,       ///< Unconditional edge to Succ0.
    CondBranch, ///< Cond ? Succ0 : Succ1.
    ForLoop,    ///< Loop header: Succ0 = body, Succ1 = exit.
    Return,     ///< Edge to the CFG exit block.
  };

  explicit BasicBlock(unsigned Id) : Id(Id) {}

  unsigned id() const { return Id; }
  const std::vector<Element> &elements() const { return Elems; }

  TermKind termKind() const { return Term; }
  Expr *cond() const { return Cond; }
  const ForStmt *forStmt() const { return For; }
  BasicBlock *succ0() const { return Succ0; }
  BasicBlock *succ1() const { return Succ1; }
  const std::vector<BasicBlock *> &preds() const { return Preds; }

  /// Successor list helper (0, 1 or 2 entries).
  std::vector<BasicBlock *> succs() const;

private:
  friend class CFGBuilder;
  unsigned Id;
  std::vector<Element> Elems;
  TermKind Term = TermKind::None;
  Expr *Cond = nullptr;
  const ForStmt *For = nullptr;
  BasicBlock *Succ0 = nullptr;
  BasicBlock *Succ1 = nullptr;
  std::vector<BasicBlock *> Preds;
};

class CFG {
public:
  BasicBlock *entry() const { return Entry; }
  BasicBlock *exit() const { return Exit; }
  size_t size() const { return Blocks.size(); }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  /// Blocks in reverse post-order from the entry (the iteration order of the
  /// forward dataflow engine).
  std::vector<BasicBlock *> reversePostOrder() const;

  /// Renders the CFG as text for tests and debugging.
  std::string dump() const;

private:
  friend class CFGBuilder;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  BasicBlock *Entry = nullptr;
  BasicBlock *Exit = nullptr;
};

/// Builds the CFG of \p F. Never fails: unsupported constructs cannot reach
/// here (the parser rejects them).
std::unique_ptr<CFG> buildCFG(const Function &F);

} // namespace majic

#endif // MAJIC_ANALYSIS_CFG_H
