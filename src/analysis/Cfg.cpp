//===- analysis/Cfg.cpp - Control flow graph --------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Cfg.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace majic;

std::vector<BasicBlock *> BasicBlock::succs() const {
  std::vector<BasicBlock *> S;
  if (Succ0)
    S.push_back(Succ0);
  if (Succ1)
    S.push_back(Succ1);
  return S;
}

std::vector<BasicBlock *> CFG::reversePostOrder() const {
  std::vector<BasicBlock *> PostOrder;
  std::vector<bool> Visited(Blocks.size(), false);
  // Iterative DFS to avoid deep recursion on long straight-line code.
  struct Frame {
    BasicBlock *BB;
    unsigned NextSucc;
  };
  std::vector<Frame> Stack;
  Stack.push_back({Entry, 0});
  Visited[Entry->id()] = true;
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    std::vector<BasicBlock *> Succs = F.BB->succs();
    if (F.NextSucc < Succs.size()) {
      BasicBlock *S = Succs[F.NextSucc++];
      if (!Visited[S->id()]) {
        Visited[S->id()] = true;
        Stack.push_back({S, 0});
      }
      continue;
    }
    PostOrder.push_back(F.BB);
    Stack.pop_back();
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

std::string CFG::dump() const {
  std::string Out;
  for (const auto &B : Blocks) {
    Out += format("bb%u:", B->id());
    if (B.get() == Entry)
      Out += " (entry)";
    if (B.get() == Exit)
      Out += " (exit)";
    Out += "\n";
    for (const BasicBlock::Element &E : B->elements()) {
      switch (E.K) {
      case BasicBlock::Element::Kind::Stmt:
        Out += "  stmt\n";
        break;
      case BasicBlock::Element::Kind::ForInit:
        Out += format("  for-init %s\n", E.For->loopVar().c_str());
        break;
      case BasicBlock::Element::Kind::ForStep:
        Out += format("  for-step %s\n", E.For->loopVar().c_str());
        break;
      }
    }
    switch (B->termKind()) {
    case BasicBlock::TermKind::None:
      Out += "  <unterminated>\n";
      break;
    case BasicBlock::TermKind::Jump:
      Out += format("  jump bb%u\n", B->succ0()->id());
      break;
    case BasicBlock::TermKind::CondBranch:
      Out += format("  br bb%u, bb%u\n", B->succ0()->id(), B->succ1()->id());
      break;
    case BasicBlock::TermKind::ForLoop:
      Out += format("  for bb%u, bb%u\n", B->succ0()->id(), B->succ1()->id());
      break;
    case BasicBlock::TermKind::Return:
      Out += "  return\n";
      break;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

namespace majic {

class CFGBuilder {
public:
  std::unique_ptr<CFG> build(const Function &F);

private:
  BasicBlock *newBlock() {
    G->Blocks.push_back(std::make_unique<BasicBlock>(
        static_cast<unsigned>(G->Blocks.size())));
    return G->Blocks.back().get();
  }

  void setJump(BasicBlock *From, BasicBlock *To) {
    From->Term = BasicBlock::TermKind::Jump;
    From->Succ0 = To;
    To->Preds.push_back(From);
  }

  void setCondBranch(BasicBlock *From, Expr *Cond, BasicBlock *Then,
                     BasicBlock *Else) {
    From->Term = BasicBlock::TermKind::CondBranch;
    From->Cond = Cond;
    From->Succ0 = Then;
    From->Succ1 = Else;
    Then->Preds.push_back(From);
    Else->Preds.push_back(From);
  }

  void setForLoop(BasicBlock *From, const ForStmt *For, BasicBlock *Body,
                  BasicBlock *Exit) {
    From->Term = BasicBlock::TermKind::ForLoop;
    From->For = For;
    From->Succ0 = Body;
    From->Succ1 = Exit;
    Body->Preds.push_back(From);
    Exit->Preds.push_back(From);
  }

  /// Emits \p B starting in \p Cur; returns the block control falls out of,
  /// or null when the block ends in break/continue/return.
  BasicBlock *emitBlock(const Block &B, BasicBlock *Cur);
  BasicBlock *emitStmt(const Stmt *S, BasicBlock *Cur);

  std::unique_ptr<CFG> G;
  std::vector<BasicBlock *> BreakTargets;
  std::vector<BasicBlock *> ContinueTargets;
};

} // namespace majic

BasicBlock *CFGBuilder::emitStmt(const Stmt *S, BasicBlock *Cur) {
  switch (S->getKind()) {
  case Stmt::Kind::Expr:
  case Stmt::Kind::Assign:
  case Stmt::Kind::Clear:
    Cur->Elems.push_back({BasicBlock::Element::Kind::Stmt, S, nullptr});
    return Cur;

  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    BasicBlock *Join = newBlock();
    BasicBlock *CondBlock = Cur;
    for (const IfStmt::Branch &Br : If->branches()) {
      BasicBlock *Then = newBlock();
      BasicBlock *Next = newBlock(); // next condition or else
      setCondBranch(CondBlock, Br.Cond, Then, Next);
      if (BasicBlock *ThenEnd = emitBlock(Br.Body, Then))
        setJump(ThenEnd, Join);
      CondBlock = Next;
    }
    if (BasicBlock *ElseEnd = emitBlock(If->elseBlock(), CondBlock))
      setJump(ElseEnd, Join);
    return Join;
  }

  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    BasicBlock *Header = newBlock();
    BasicBlock *Body = newBlock();
    BasicBlock *Exit = newBlock();
    setJump(Cur, Header);
    setCondBranch(Header, W->cond(), Body, Exit);
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(Header);
    if (BasicBlock *BodyEnd = emitBlock(W->body(), Body))
      setJump(BodyEnd, Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    return Exit;
  }

  case Stmt::Kind::For: {
    const auto *F = cast<ForStmt>(S);
    Cur->Elems.push_back({BasicBlock::Element::Kind::ForInit, nullptr, F});
    BasicBlock *Header = newBlock();
    BasicBlock *Body = newBlock();
    BasicBlock *Exit = newBlock();
    setJump(Cur, Header);
    setForLoop(Header, F, Body, Exit);
    Body->Elems.push_back({BasicBlock::Element::Kind::ForStep, nullptr, F});
    BreakTargets.push_back(Exit);
    ContinueTargets.push_back(Header);
    if (BasicBlock *BodyEnd = emitBlock(F->body(), Body))
      setJump(BodyEnd, Header);
    BreakTargets.pop_back();
    ContinueTargets.pop_back();
    return Exit;
  }

  case Stmt::Kind::Break:
    assert(!BreakTargets.empty() && "break outside a loop");
    setJump(Cur, BreakTargets.back());
    return nullptr;

  case Stmt::Kind::Continue:
    assert(!ContinueTargets.empty() && "continue outside a loop");
    setJump(Cur, ContinueTargets.back());
    return nullptr;

  case Stmt::Kind::Return:
    Cur->Term = BasicBlock::TermKind::Return;
    Cur->Succ0 = G->Exit;
    G->Exit->Preds.push_back(Cur);
    return nullptr;
  }
  majic_unreachable("invalid statement kind");
}

BasicBlock *CFGBuilder::emitBlock(const Block &B, BasicBlock *Cur) {
  for (const Stmt *S : B) {
    Cur = emitStmt(S, Cur);
    if (!Cur)
      return nullptr; // unreachable code after break/continue/return
  }
  return Cur;
}

std::unique_ptr<CFG> CFGBuilder::build(const Function &F) {
  G = std::make_unique<CFG>();
  BasicBlock *Entry = newBlock();
  G->Entry = Entry;
  G->Exit = newBlock();
  if (BasicBlock *End = emitBlock(F.body(), Entry)) {
    End->Term = BasicBlock::TermKind::Return;
    End->Succ0 = G->Exit;
    G->Exit->Preds.push_back(End);
  }
  G->Exit->Term = BasicBlock::TermKind::None;
  return std::move(G);
}

std::unique_ptr<CFG> majic::buildCFG(const Function &F) {
  return CFGBuilder().build(F);
}
