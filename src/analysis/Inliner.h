//===- analysis/Inliner.h - Function inlining ------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST-level function inlining (Section 2.6.1): calls to small user
/// functions (< 200 lines) are replaced by the callee's body with
/// alpha-renamed locals; recursive calls are inlined at most 3 levels deep
/// to avoid code explosion (Section 3.4). Inlining runs between
/// disambiguation and type inference; the caller is re-disambiguated
/// afterwards ("which then necessitates the re-building of the symbol
/// table", Section 2).
///
/// MATLAB's call-by-value semantics are preserved by binding each actual to
/// a fresh parameter variable; the copy-on-write Value representation makes
/// read-only formals free, matching the paper's "read-only formal parameters
/// are not copied".
///
/// Early returns in the callee are lowered structurally: a return flag
/// variable plus break/guard statements reproduce the control flow.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_ANALYSIS_INLINER_H
#define MAJIC_ANALYSIS_INLINER_H

#include "ast/AST.h"

#include <functional>
#include <memory>
#include <string>

namespace majic {

struct InlinerOptions {
  /// "MaJIC does not attempt to inline more than 3 levels of recursive
  /// calls" (Section 3.4).
  unsigned MaxRecursionDepth = 3;
  /// "MaJIC inlines calls to small (less than 200 lines of code) functions"
  /// (Section 2.6.1).
  unsigned MaxCalleeLines = 200;
};

/// Resolves a user-function name to its (disambiguated) AST, or null when
/// the function is unknown or should not be inlined.
using FunctionResolver =
    std::function<const Function *(const std::string &Name)>;

/// Returns a transformed clone of \p F with eligible calls inlined. Nodes
/// are allocated in \p Ctx (typically the caller module's context). The
/// result must be re-disambiguated before further analysis.
std::unique_ptr<Function> inlineFunctionCalls(const Function &F,
                                              ASTContext &Ctx,
                                              const FunctionResolver &Resolve,
                                              const InlinerOptions &Opts = {});

} // namespace majic

#endif // MAJIC_ANALYSIS_INLINER_H
