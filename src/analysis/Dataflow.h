//===- analysis/Dataflow.h - Monotone dataflow framework -------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iterative join-of-all-paths monotone dataflow framework (Section 2.3,
/// citing Muchnick & Jones). Both the symbol disambiguator and the type
/// inference engine instantiate it.
///
/// A Domain provides:
///   using State = ...;                        // copyable abstract state
///   State entryState();                       // state at the CFG entry
///   bool join(State &Into, const State &From);// returns true if Into grew
///   void transfer(State &S, const BasicBlock::Element &E);
///   void transferTerminator(State &S, const BasicBlock &B);
///   void setWidening(bool Enable);            // hint after the iteration cap
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_ANALYSIS_DATAFLOW_H
#define MAJIC_ANALYSIS_DATAFLOW_H

#include "analysis/Cfg.h"

#include <optional>
#include <vector>

namespace majic {

/// Runs forward dataflow over \p G to a fixpoint (or until the iteration cap
/// triggers widening — the type inference engine "caps the number of
/// iterations", Section 2.3). Returns the state at entry to each block;
/// unreachable blocks have no state.
template <typename Domain>
std::vector<std::optional<typename Domain::State>>
runForwardDataflow(const CFG &G, Domain &D, unsigned MaxPasses = 32) {
  using State = typename Domain::State;
  std::vector<std::optional<State>> BlockIn(G.size());
  std::vector<BasicBlock *> RPO = G.reversePostOrder();

  BlockIn[G.entry()->id()] = D.entryState();

  bool Changed = true;
  for (unsigned Pass = 0; Changed; ++Pass) {
    if (Pass >= MaxPasses)
      D.setWidening(true);
    Changed = false;
    for (BasicBlock *B : RPO) {
      if (!BlockIn[B->id()])
        continue;
      State S = *BlockIn[B->id()];
      for (const BasicBlock::Element &E : B->elements())
        D.transfer(S, E);
      D.transferTerminator(S, *B);
      for (BasicBlock *Succ : B->succs()) {
        std::optional<State> &SuccIn = BlockIn[Succ->id()];
        if (!SuccIn) {
          SuccIn = S;
          Changed = true;
        } else if (D.join(*SuccIn, S)) {
          Changed = true;
        }
      }
    }
    // Widening guarantees convergence on the pass after the cap; guard
    // against domain bugs anyway.
    assert(Pass < MaxPasses + 8 && "dataflow failed to converge");
  }
  D.setWidening(false);
  return BlockIn;
}

/// After convergence, replays the transfer functions once per reachable
/// block so the domain can record per-expression results (type annotations,
/// symbol classifications). \p Record is called as Record(S, E) before each
/// element transfer... the domain itself typically records inside transfer
/// when a recording flag is enabled.
template <typename Domain>
void replayDataflow(const CFG &G, Domain &D,
                    const std::vector<std::optional<typename Domain::State>>
                        &BlockIn) {
  using State = typename Domain::State;
  for (BasicBlock *B : G.reversePostOrder()) {
    if (!BlockIn[B->id()])
      continue;
    State S = *BlockIn[B->id()];
    for (const BasicBlock::Element &E : B->elements())
      D.transfer(S, E);
    D.transferTerminator(S, *B);
  }
}

} // namespace majic

#endif // MAJIC_ANALYSIS_DATAFLOW_H
