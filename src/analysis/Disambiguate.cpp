//===- analysis/Disambiguate.cpp - Symbol disambiguation --------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Disambiguate.h"

#include "analysis/Dataflow.h"
#include "ast/ASTVisit.h"
#include "runtime/Builtins.h"

#include <algorithm>

using namespace majic;

int SymbolTable::getOrCreateSlot(const std::string &Name) {
  auto [It, Inserted] = SlotOf.try_emplace(Name, static_cast<int>(Names.size()));
  if (Inserted)
    Names.push_back(Name);
  return It->second;
}

int SymbolTable::lookup(const std::string &Name) const {
  auto It = SlotOf.find(Name);
  return It == SlotOf.end() ? -1 : It->second;
}

namespace {

/// Collects the variable universe: every name that appears as an assignment
/// target, parameter, output, or loop variable. Only these can ever denote
/// variables.
class UniverseCollector {
public:
  UniverseCollector(Function &F, SymbolTable &Symbols) : Symbols(Symbols) {
    for (const std::string &P : F.params())
      Symbols.getOrCreateSlot(P);
    for (const std::string &O : F.outs())
      Symbols.getOrCreateSlot(O);
    visitStmts(F.body(), [this](const Stmt *S) { collect(S); });
  }

private:
  void collect(const Stmt *S) {
    if (const auto *A = dyn_cast<AssignStmt>(S)) {
      for (const LValue &LV : A->targets())
        Symbols.getOrCreateSlot(LV.Name);
      return;
    }
    if (const auto *F = dyn_cast<ForStmt>(S))
      Symbols.getOrCreateSlot(F->loopVar());
  }

  SymbolTable &Symbols;
};

/// Definite-assignment domain: the state is a bit per universe slot
/// ("definitely holds a variable on all paths"). Join is intersection.
class DefiniteDomain {
public:
  using State = std::vector<bool>;

  DefiniteDomain(const Function &F, SymbolTable &Symbols,
                 const std::vector<std::string> *Predefined)
      : F(F), Symbols(Symbols), Predefined(Predefined) {}

  State entryState() {
    State S(Symbols.numSlots(), false);
    for (const std::string &P : F.params())
      S[Symbols.lookup(P)] = true;
    if (Predefined)
      for (const std::string &N : *Predefined)
        if (int Slot = Symbols.lookup(N); Slot >= 0)
          S[Slot] = true;
    return S;
  }

  bool join(State &Into, const State &From) {
    bool Changed = false;
    for (size_t I = 0; I != Into.size(); ++I) {
      if (Into[I] && !From[I]) {
        Into[I] = false;
        Changed = true;
      }
    }
    return Changed;
  }

  void transfer(State &S, const BasicBlock::Element &E) {
    switch (E.K) {
    case BasicBlock::Element::Kind::ForInit:
      return;
    case BasicBlock::Element::Kind::ForStep:
      S[Symbols.lookup(E.For->loopVar())] = true;
      return;
    case BasicBlock::Element::Kind::Stmt:
      break;
    }
    if (const auto *A = dyn_cast<AssignStmt>(E.S)) {
      for (const LValue &LV : A->targets())
        S[Symbols.lookup(LV.Name)] = true;
      return;
    }
    if (const auto *C = dyn_cast<ClearStmt>(E.S)) {
      if (C->names().empty()) {
        std::fill(S.begin(), S.end(), false);
        return;
      }
      for (const std::string &N : C->names())
        if (int Slot = Symbols.lookup(N); Slot >= 0)
          S[Slot] = false;
    }
  }

  void transferTerminator(State &, const BasicBlock &) {}
  void setWidening(bool) {}

private:
  const Function &F;
  SymbolTable &Symbols;
  const std::vector<std::string> *Predefined;
};

/// Replays the converged solution, classifying each symbol occurrence.
class Classifier {
public:
  Classifier(FunctionInfo &Info) : Info(Info) {}

  void classifyExprSymbols(Expr *E, const std::vector<bool> &Definite) {
    visitExpr(E, [this, &Definite](Expr *Node) {
      if (auto *Id = dyn_cast<IdentExpr>(Node))
        classify(Id, Definite);
    });
  }

  void classify(IdentExpr *Id, const std::vector<bool> &Definite) {
    // Classification overwrites any stale state: disambiguation may re-run
    // on a function rebuilt by the inliner. Each occurrence is visited
    // exactly once per replay, so overwriting is safe.
    int Slot = Info.Symbols.lookup(Id->name());
    if (Slot < 0) {
      // Never assigned in this function: a subfunction, builtin, or an
      // external user function.
      if (Info.M->findFunction(Id->name())) {
        Id->setSymKind(SymKind::UserFunction);
        noteCallee(Id->name());
      } else if (BuiltinTable::instance().contains(Id->name())) {
        Id->setSymKind(SymKind::Builtin);
      } else {
        Id->setSymKind(SymKind::UserFunction);
        noteCallee(Id->name());
      }
      return;
    }
    if (Slot < static_cast<int>(Definite.size()) && Definite[Slot]) {
      Id->setSymKind(SymKind::Variable);
      Id->setVarSlot(Slot);
      return;
    }
    // Assigned somewhere but not on all paths here: ambiguous (Figure 2).
    Id->setSymKind(SymKind::Ambiguous);
    Id->setVarSlot(Slot);
    Info.HasAmbiguousSymbols = true;
  }

  void noteCallee(const std::string &Name) {
    if (std::find(Info.Callees.begin(), Info.Callees.end(), Name) ==
        Info.Callees.end())
      Info.Callees.push_back(Name);
  }

private:
  FunctionInfo &Info;
};

/// Domain wrapper that re-runs the definite-assignment transfer while
/// invoking the classifier at each use point.
class RecordingDomain {
public:
  using State = DefiniteDomain::State;

  RecordingDomain(DefiniteDomain &Base, Classifier &C, FunctionInfo &Info)
      : Base(Base), C(C), Info(Info) {}

  State entryState() { return Base.entryState(); }
  bool join(State &Into, const State &From) { return Base.join(Into, From); }
  void setWidening(bool W) { Base.setWidening(W); }

  void transfer(State &S, const BasicBlock::Element &E) {
    // Classify reads against the state *before* the element's definitions.
    switch (E.K) {
    case BasicBlock::Element::Kind::ForInit:
      C.classifyExprSymbols(E.For->iterand(), S);
      break;
    case BasicBlock::Element::Kind::ForStep: {
      int Slot = Info.Symbols.lookup(E.For->loopVar());
      const_cast<ForStmt *>(E.For)->setLoopVarSlot(Slot);
      break;
    }
    case BasicBlock::Element::Kind::Stmt:
      visitStmtExprs(E.S, [this, &S](Expr *Ex) { C.classifyExprSymbols(Ex, S); });
      if (const auto *A = dyn_cast<AssignStmt>(E.S)) {
        for (const LValue &LV : A->targets()) {
          int Slot = Info.Symbols.lookup(LV.Name);
          const_cast<LValue &>(LV).VarSlot = Slot;
        }
      } else if (const auto *Clr = dyn_cast<ClearStmt>(E.S)) {
        std::vector<int> Slots;
        for (const std::string &N : Clr->names())
          Slots.push_back(Info.Symbols.lookup(N));
        const_cast<ClearStmt *>(Clr)->setSlots(std::move(Slots));
      }
      break;
    }
    Base.transfer(S, E);
  }

  void transferTerminator(State &S, const BasicBlock &B) {
    if (B.cond())
      C.classifyExprSymbols(B.cond(), S);
    Base.transferTerminator(S, B);
  }

private:
  DefiniteDomain &Base;
  Classifier &C;
  FunctionInfo &Info;
};

} // namespace

std::unique_ptr<FunctionInfo>
majic::disambiguate(Function &F, Module &M,
                    const std::vector<std::string> *Predefined) {
  auto Info = std::make_unique<FunctionInfo>();
  Info->F = &F;
  Info->M = &M;
  Info->Cfg = buildCFG(F);

  UniverseCollector Collect(F, Info->Symbols);
  (void)Collect;
  if (Predefined)
    for (const std::string &N : *Predefined)
      Info->Symbols.getOrCreateSlot(N);

  DefiniteDomain Domain(F, Info->Symbols, Predefined);
  auto BlockIn = runForwardDataflow(*Info->Cfg, Domain);

  // Definite assignment at the function exit (outputs not definitely
  // assigned must stay boxed in compiled code so "not assigned" is
  // detectable).
  if (auto &ExitIn = BlockIn[Info->Cfg->exit()->id()])
    Info->DefiniteAtExit = *ExitIn;
  else
    Info->DefiniteAtExit.assign(Info->Symbols.numSlots(), false);

  Classifier C(*Info);
  RecordingDomain Recorder(Domain, C, *Info);
  replayDataflow(*Info->Cfg, Recorder, BlockIn);

  // Publish slot bookkeeping on the Function.
  F.setNumSlots(Info->Symbols.numSlots());
  F.paramSlots().clear();
  for (const std::string &P : F.params())
    F.paramSlots().push_back(Info->Symbols.lookup(P));
  F.outSlots().clear();
  for (const std::string &O : F.outs())
    F.outSlots().push_back(Info->Symbols.lookup(O));

  return Info;
}
