//===- obs/Trace.h - Low-overhead trace ring -------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability subsystem: per-thread ring
/// buffers of scoped (begin/end) and instant events, exported as Chrome
/// trace JSON loadable in chrome://tracing or Perfetto (MAJIC_TRACE=path),
/// so a whole session - parse -> infer -> codegen -> regalloc -> repository
/// saves/loads -> VM/interpreter execution -> pool tasks - is visually
/// inspectable on a timeline.
///
/// Cost model: tracing is gated by one process-wide atomic flag. When
/// disabled (the default), a TraceScope or instant() is a single relaxed
/// load - no allocation, no lock, no clock read. When enabled, each event
/// takes two steady_clock reads plus one uncontended per-thread mutex
/// (the mutex exists only so an exporter on another thread can read the
/// ring TSan-clean). Rings are fixed-capacity and overwrite their oldest
/// events on wrap, so a long session's memory is bounded; the drop count
/// is reported in the export.
///
/// Event names and categories must be string literals (the ring stores
/// the pointers); the optional detail is copied into a small inline
/// buffer, truncating - it carries dynamic context like function names.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_OBS_TRACE_H
#define MAJIC_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace majic {
namespace obs {

namespace detail {
extern std::atomic<bool> TraceEnabledFlag;
} // namespace detail

/// The runtime gate every recording site checks first.
inline bool traceEnabled() {
  return detail::TraceEnabledFlag.load(std::memory_order_relaxed);
}

void setTraceEnabled(bool Enabled);

/// Records a zero-duration marker (Chrome "i" event). No-op when disabled.
void traceInstant(const char *Name, const char *Cat,
                  const char *Detail = nullptr);
void traceInstant(const char *Name, const char *Cat,
                  const std::string &Detail);

/// RAII span: records one complete ("X") event covering its lifetime. The
/// enabled check happens at construction; a scope armed before tracing is
/// disabled still records, keeping spans internally consistent.
class TraceScope {
public:
  TraceScope(const char *Name, const char *Cat, const char *Detail = nullptr);
  TraceScope(const char *Name, const char *Cat, const std::string &Detail);
  ~TraceScope();

  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

private:
  const char *Name;
  const char *Cat;
  uint64_t StartNs = 0;
  bool Armed = false;
  char Detail[48];
};

/// Merges every thread's ring into one Chrome-trace JSON document
/// ({"traceEvents": [...]}). Timestamps are microseconds from the first
/// trace use in the process; safe to call while other threads trace.
std::string traceJson();

/// Writes traceJson() to \p Path (plus a trailing newline); false on I/O
/// failure.
bool writeTraceJson(const std::string &Path);

/// Events recorded process-wide since the last reset, and how many of them
/// were overwritten by ring wraparound.
uint64_t traceEventsRecorded();
uint64_t traceEventsDropped();

/// Drops every ring and (when \p RingCapacity is nonzero) changes the
/// per-thread ring capacity for rings created afterwards. Threads with a
/// live ring re-create it on their next event. Intended for tests; calling
/// it concurrently with active tracers is safe but may discard their
/// in-flight events.
void traceReset(size_t RingCapacity = 0);

} // namespace obs
} // namespace majic

#endif // MAJIC_OBS_TRACE_H
