//===- obs/Profile.cpp - Per-function execution profiles -------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>

using namespace majic;
using namespace majic::obs;

void FunctionProfiles::Entry::addSignature(const std::string &SigStr,
                                           uint64_t Count) {
  auto It = Sigs.find(SigStr);
  if (It != Sigs.end())
    It->second += Count;
  else if (Sigs.size() < kMaxSignatures)
    Sigs.emplace(SigStr, Count);
  else
    OtherSignatures += Count;
}

void FunctionProfiles::recordInvocation(const std::string &Name,
                                        const std::string &SigStr) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  Entry &E = S.Map[Name];
  ++E.Invocations;
  E.addSignature(SigStr, 1);
}

void FunctionProfiles::recordVmRun(const std::string &Name, double Seconds) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  Entry &E = S.Map[Name];
  ++E.VmRuns;
  E.VmSeconds += Seconds;
}

void FunctionProfiles::recordInterpRun(const std::string &Name,
                                       double Seconds) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  Entry &E = S.Map[Name];
  ++E.InterpRuns;
  E.InterpSeconds += Seconds;
}

void FunctionProfiles::recordNativeRun(const std::string &Name,
                                       double Seconds) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  Entry &E = S.Map[Name];
  ++E.NativeRuns;
  E.NativeSeconds += Seconds;
}

void FunctionProfiles::recordCompile(const std::string &Name,
                                     double Seconds) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  Entry &E = S.Map[Name];
  ++E.Compiles;
  E.CompileSeconds += Seconds;
}

void FunctionProfiles::recordWarmAdoption(const std::string &Name) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  ++S.Map[Name].WarmStartAdoptions;
}

void FunctionProfiles::recordDeopt(const std::string &Name) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  ++S.Map[Name].Deopts;
}

void FunctionProfiles::mergePersisted(const std::string &Name,
                                      uint64_t Invocations,
                                      uint64_t OtherSigs) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  Entry &E = S.Map[Name];
  E.Invocations += Invocations;
  E.OtherSignatures += OtherSigs;
}

void FunctionProfiles::mergeSignatureCount(const std::string &Name,
                                           const std::string &SigStr,
                                           uint64_t Count) {
  Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  S.Map[Name].addSignature(SigStr, Count);
}

FunctionProfile FunctionProfiles::toProfile(const std::string &Name,
                                            const Entry &E) const {
  FunctionProfile P;
  P.Name = Name;
  P.Invocations = E.Invocations;
  P.VmRuns = E.VmRuns;
  P.InterpRuns = E.InterpRuns;
  P.NativeRuns = E.NativeRuns;
  P.VmSeconds = E.VmSeconds;
  P.InterpSeconds = E.InterpSeconds;
  P.NativeSeconds = E.NativeSeconds;
  P.Compiles = E.Compiles;
  P.CompileSeconds = E.CompileSeconds;
  P.WarmStartAdoptions = E.WarmStartAdoptions;
  P.Deopts = E.Deopts;
  P.OtherSignatures = E.OtherSignatures;
  P.ArgSignatures.assign(E.Sigs.begin(), E.Sigs.end());
  std::sort(P.ArgSignatures.begin(), P.ArgSignatures.end(),
            [](const auto &A, const auto &B) {
              return A.second != B.second ? A.second > B.second
                                          : A.first < B.first;
            });
  return P;
}

FunctionProfile FunctionProfiles::profile(const std::string &Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Map.find(Name);
  if (It == S.Map.end()) {
    FunctionProfile P;
    P.Name = Name;
    return P;
  }
  return toProfile(Name, It->second);
}

uint64_t FunctionProfiles::invocations(const std::string &Name) const {
  const Shard &S = shardFor(Name);
  std::lock_guard<std::mutex> L(S.M);
  auto It = S.Map.find(Name);
  return It == S.Map.end() ? 0 : It->second.Invocations;
}

std::vector<FunctionProfile> FunctionProfiles::snapshot() const {
  std::vector<FunctionProfile> Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> L(S.M);
    for (const auto &[Name, E] : S.Map)
      Out.push_back(toProfile(Name, E));
  }
  std::sort(Out.begin(), Out.end(),
            [](const FunctionProfile &A, const FunctionProfile &B) {
              return A.Invocations != B.Invocations
                         ? A.Invocations > B.Invocations
                         : A.Name < B.Name;
            });
  return Out;
}

std::string FunctionProfiles::json() const {
  std::string Out = "[";
  bool First = true;
  for (const FunctionProfile &P : snapshot()) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"function\": \"" + jsonEscape(P.Name) +
           "\", \"invocations\": " + std::to_string(P.Invocations) +
           ", \"vm_runs\": " + std::to_string(P.VmRuns) +
           ", \"interp_runs\": " + std::to_string(P.InterpRuns) +
           ", \"native_runs\": " + std::to_string(P.NativeRuns) +
           ", \"vm_seconds\": " + jsonNumber(P.VmSeconds) +
           ", \"interp_seconds\": " + jsonNumber(P.InterpSeconds) +
           ", \"native_seconds\": " + jsonNumber(P.NativeSeconds) +
           ", \"compiles\": " + std::to_string(P.Compiles) +
           ", \"compile_seconds\": " + jsonNumber(P.CompileSeconds) +
           ", \"warm_start_adoptions\": " +
           std::to_string(P.WarmStartAdoptions) +
           ", \"deopts\": " + std::to_string(P.Deopts) +
           ", \"other_signatures\": " + std::to_string(P.OtherSignatures) +
           ", \"signatures\": [";
    bool FirstS = true;
    for (const auto &[Sig, Count] : P.ArgSignatures) {
      if (!FirstS)
        Out += ", ";
      FirstS = false;
      Out += "{\"sig\": \"" + jsonEscape(Sig) +
             "\", \"count\": " + std::to_string(Count) + "}";
    }
    Out += "]}";
  }
  Out += First ? "]" : "\n  ]";
  return Out;
}

std::string FunctionProfiles::renderTable(size_t Limit) const {
  std::vector<FunctionProfile> All = snapshot();
  std::string Out;
  if (All.empty())
    return Out;
  Out += "function profiles (top by invocations):\n"
         "  function             calls  vm-runs  int-runs    vm ms   int ms"
         "  compiles  nat  top signature\n";
  char Line[256];
  for (size_t I = 0; I != All.size() && I != Limit; ++I) {
    const FunctionProfile &P = All[I];
    const char *TopSig =
        P.ArgSignatures.empty() ? "-" : P.ArgSignatures.front().first.c_str();
    std::snprintf(Line, sizeof(Line),
                  "  %-18s %7llu %8llu %9llu %8.2f %8.2f %9llu  %3s  %s\n",
                  P.Name.c_str(),
                  static_cast<unsigned long long>(P.Invocations),
                  static_cast<unsigned long long>(P.VmRuns),
                  static_cast<unsigned long long>(P.InterpRuns),
                  P.VmSeconds * 1e3, P.InterpSeconds * 1e3,
                  static_cast<unsigned long long>(P.Compiles),
                  P.NativeRuns ? "yes" : "-", TopSig);
    Out += Line;
  }
  return Out;
}

size_t FunctionProfiles::size() const {
  size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> L(S.M);
    N += S.Map.size();
  }
  return N;
}

void FunctionProfiles::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> L(S.M);
    S.Map.clear();
  }
}
