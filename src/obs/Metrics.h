//===- obs/Metrics.h - Always-on metrics registry --------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability subsystem: named counters, gauges
/// and fixed-bucket latency histograms, registered in a MetricsRegistry and
/// snapshottable at any time. The instruments are plain relaxed atomics -
/// recording is lock-free and safe from any thread, including the engine's
/// idle-priority compile workers and the compute pool. The registry itself
/// takes a mutex only for registration and snapshots, never on the record
/// path.
///
/// Instruments are either *owned* by the registry (counter()/gauge()/
/// histogram() get-or-create) or *external* (registerCounter(...) etc.),
/// the latter for components that already hold their tallies as members
/// (e.g. Repository's hit/miss counters, migrated onto obs::Counter so the
/// old accessors become thin reads). External instruments must outlive
/// every use of the registry; the engine guarantees this by declaring its
/// registry before every component it wires in, and by writing its final
/// dump in the destructor body, while all members are still alive.
///
/// Snapshots render as a human table (Engine::statsReport()) and as
/// machine JSON (MAJIC_METRICS=path).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_OBS_METRICS_H
#define MAJIC_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace majic {
namespace obs {

/// Monotonic event count. Recording is one relaxed fetch_add.
class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A point-in-time level (queue depth, live objects). May go up and down.
class Gauge {
public:
  void set(int64_t N) { V.store(N, std::memory_order_relaxed); }
  void add(int64_t D) { V.fetch_add(D, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Fixed-bucket latency histogram over seconds. Bucket 0 holds sub-1us
/// observations; bucket I (1..24) holds [2^(I-1), 2^I) microseconds; the
/// last bucket holds everything >= 2^24 us (~16.8 s). Recording is a
/// handful of relaxed atomic ops; no allocation, no locks.
class Histogram {
public:
  static constexpr unsigned kNumBuckets = 26;

  /// Inclusive lower bound of bucket \p I, in microseconds.
  static uint64_t bucketFloorUs(unsigned I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }

  /// The bucket an observation of \p Us microseconds lands in.
  static unsigned bucketIndexUs(uint64_t Us);

  void observe(double Seconds);

  uint64_t count() const { return CountV.load(std::memory_order_relaxed); }
  double sumSeconds() const {
    return double(SumNs.load(std::memory_order_relaxed)) * 1e-9;
  }
  /// Smallest/largest observation in seconds; 0 when empty.
  double minSeconds() const;
  double maxSeconds() const {
    return double(MaxNs.load(std::memory_order_relaxed)) * 1e-9;
  }
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

private:
  std::array<std::atomic<uint64_t>, kNumBuckets> Buckets{};
  std::atomic<uint64_t> CountV{0};
  std::atomic<uint64_t> SumNs{0};
  std::atomic<uint64_t> MinNs{UINT64_MAX};
  std::atomic<uint64_t> MaxNs{0};
};

/// One histogram's state at snapshot time.
struct HistogramSnapshot {
  std::string Name;
  uint64_t Count = 0;
  double SumSeconds = 0;
  double MinSeconds = 0;
  double MaxSeconds = 0;
  std::array<uint64_t, Histogram::kNumBuckets> Buckets{};
};

/// A consistent-enough view of every instrument, sorted by name. (Counts
/// are read with relaxed loads; concurrent writers may land between two
/// reads, which is fine for statistics.)
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, int64_t>> Gauges;
  std::vector<HistogramSnapshot> Histograms;
};

class MetricsRegistry {
public:
  /// Get-or-create a registry-owned instrument. The reference stays valid
  /// for the registry's lifetime (instruments live in stable deques).
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Registers an externally-owned instrument under \p Name (replacing any
  /// previous registration of that name). The instrument must outlive
  /// every subsequent use of the registry.
  void registerCounter(const std::string &Name, Counter &C);
  void registerGauge(const std::string &Name, Gauge &G);
  void registerHistogram(const std::string &Name, Histogram &H);

  MetricsSnapshot snapshot() const;

  /// Human-readable table of every instrument (histograms as count / mean /
  /// max summaries).
  std::string renderTable() const;

  /// The registry as one JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with histogram buckets emitted sparsely (nonzero
  /// buckets only, each with its floor in microseconds).
  std::string json() const;

private:
  mutable std::mutex M;
  std::map<std::string, Counter *> Counters;
  std::map<std::string, Gauge *> Gauges;
  std::map<std::string, Histogram *> Histograms;
  std::deque<Counter> OwnedCounters;
  std::deque<Gauge> OwnedGauges;
  std::deque<Histogram> OwnedHistograms;
};

/// JSON string escaping shared by the obs emitters (registry, profiles,
/// trace). Escapes quotes, backslashes and control characters.
std::string jsonEscape(const std::string &S);

/// Formats a finite double for JSON ("null" for inf/nan, which JSON lacks).
std::string jsonNumber(double V);

} // namespace obs
} // namespace majic

#endif // MAJIC_OBS_METRICS_H
