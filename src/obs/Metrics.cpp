//===- obs/Metrics.cpp - Always-on metrics registry ------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

using namespace majic;
using namespace majic::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketIndexUs(uint64_t Us) {
  if (Us == 0)
    return 0;
  // [2^(I-1), 2^I) us lands in bucket I; bit_width(Us) is exactly that I.
  return std::min<unsigned>(kNumBuckets - 1, std::bit_width(Us));
}

void Histogram::observe(double Seconds) {
  if (!(Seconds > 0))
    Seconds = 0; // negative clock skew and NaN count as instantaneous
  double NsF = Seconds * 1e9;
  uint64_t Ns = NsF >= double(UINT64_MAX) ? UINT64_MAX : uint64_t(NsF);
  Buckets[bucketIndexUs(Ns / 1000)].fetch_add(1, std::memory_order_relaxed);
  CountV.fetch_add(1, std::memory_order_relaxed);
  SumNs.fetch_add(Ns, std::memory_order_relaxed);
  uint64_t Cur = MinNs.load(std::memory_order_relaxed);
  while (Ns < Cur &&
         !MinNs.compare_exchange_weak(Cur, Ns, std::memory_order_relaxed)) {
  }
  Cur = MaxNs.load(std::memory_order_relaxed);
  while (Ns > Cur &&
         !MaxNs.compare_exchange_weak(Cur, Ns, std::memory_order_relaxed)) {
  }
}

double Histogram::minSeconds() const {
  uint64_t Ns = MinNs.load(std::memory_order_relaxed);
  return Ns == UINT64_MAX ? 0 : double(Ns) * 1e-9;
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto It = Counters.find(Name);
  if (It != Counters.end())
    return *It->second;
  OwnedCounters.emplace_back();
  Counters[Name] = &OwnedCounters.back();
  return OwnedCounters.back();
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto It = Gauges.find(Name);
  if (It != Gauges.end())
    return *It->second;
  OwnedGauges.emplace_back();
  Gauges[Name] = &OwnedGauges.back();
  return OwnedGauges.back();
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  auto It = Histograms.find(Name);
  if (It != Histograms.end())
    return *It->second;
  OwnedHistograms.emplace_back();
  Histograms[Name] = &OwnedHistograms.back();
  return OwnedHistograms.back();
}

void MetricsRegistry::registerCounter(const std::string &Name, Counter &C) {
  std::lock_guard<std::mutex> L(M);
  Counters[Name] = &C;
}

void MetricsRegistry::registerGauge(const std::string &Name, Gauge &G) {
  std::lock_guard<std::mutex> L(M);
  Gauges[Name] = &G;
}

void MetricsRegistry::registerHistogram(const std::string &Name,
                                        Histogram &H) {
  std::lock_guard<std::mutex> L(M);
  Histograms[Name] = &H;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  MetricsSnapshot S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.emplace_back(Name, C->value());
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.emplace_back(Name, G->value());
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    HistogramSnapshot HS;
    HS.Name = Name;
    HS.Count = H->count();
    HS.SumSeconds = H->sumSeconds();
    HS.MinSeconds = H->minSeconds();
    HS.MaxSeconds = H->maxSeconds();
    for (unsigned I = 0; I != Histogram::kNumBuckets; ++I)
      HS.Buckets[I] = H->bucketCount(I);
    S.Histograms.push_back(std::move(HS));
  }
  return S;
}

std::string MetricsRegistry::renderTable() const {
  MetricsSnapshot S = snapshot();
  std::string Out;
  char Line[256];
  if (!S.Counters.empty()) {
    Out += "counters:\n";
    for (const auto &[Name, V] : S.Counters) {
      std::snprintf(Line, sizeof(Line), "  %-44s %12llu\n", Name.c_str(),
                    static_cast<unsigned long long>(V));
      Out += Line;
    }
  }
  if (!S.Gauges.empty()) {
    Out += "gauges:\n";
    for (const auto &[Name, V] : S.Gauges) {
      std::snprintf(Line, sizeof(Line), "  %-44s %12lld\n", Name.c_str(),
                    static_cast<long long>(V));
      Out += Line;
    }
  }
  if (!S.Histograms.empty()) {
    Out += "histograms:                                           count"
           "      mean ms       max ms\n";
    for (const HistogramSnapshot &H : S.Histograms) {
      double MeanMs = H.Count ? H.SumSeconds / double(H.Count) * 1e3 : 0;
      std::snprintf(Line, sizeof(Line), "  %-44s %10llu %12.3f %12.3f\n",
                    H.Name.c_str(), static_cast<unsigned long long>(H.Count),
                    MeanMs, H.MaxSeconds * 1e3);
      Out += Line;
    }
  }
  return Out;
}

std::string MetricsRegistry::json() const {
  MetricsSnapshot S = snapshot();
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, V] : S.Counters) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(V);
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, V] : S.Gauges) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(Name) + "\": " + std::to_string(V);
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const HistogramSnapshot &H : S.Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    \"" + jsonEscape(H.Name) + "\": {\"count\": " +
           std::to_string(H.Count) + ", \"sum_seconds\": " +
           jsonNumber(H.SumSeconds) + ", \"min_seconds\": " +
           jsonNumber(H.MinSeconds) + ", \"max_seconds\": " +
           jsonNumber(H.MaxSeconds) + ", \"buckets\": [";
    bool FirstB = true;
    for (unsigned I = 0; I != Histogram::kNumBuckets; ++I) {
      if (!H.Buckets[I])
        continue;
      if (!FirstB)
        Out += ", ";
      FirstB = false;
      Out += "{\"floor_us\": " +
             std::to_string(Histogram::bucketFloorUs(I)) + ", \"count\": " +
             std::to_string(H.Buckets[I]) + "}";
    }
    Out += "]}";
  }
  Out += First ? "}\n}" : "\n  }\n}";
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON helpers
//===----------------------------------------------------------------------===//

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string obs::jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}
