//===- obs/Profile.h - Per-function execution profiles ---------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function execution profiles: invocation counts (all call depths),
/// top-level VM vs. interpreter time, compile count/time, warm-start
/// adoptions, deoptimizations, and the observed argument-type signatures.
/// This is the usage record the speculation layer can rank candidates by -
/// the paper compiles what the snooper *finds*; real deployments should
/// compile what users actually *call*, with the types they call it with.
///
/// Signatures arrive pre-rendered as strings so this layer stays below
/// majic_types in the dependency order (the engine caches the rendering
/// per (function, signature), so the hot path pays a string hash, not a
/// signature render).
///
/// Thread-safe behind one mutex: invocations are recorded by the engine
/// thread, compiles by the background workers.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_OBS_PROFILE_H
#define MAJIC_OBS_PROFILE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace majic {
namespace obs {

/// One function's profile at snapshot time.
struct FunctionProfile {
  std::string Name;
  uint64_t Invocations = 0; ///< calls at every depth, however executed
  uint64_t VmRuns = 0;      ///< top-level executions on compiled code
  uint64_t InterpRuns = 0;  ///< top-level executions in the interpreter
  double VmSeconds = 0;     ///< inclusive top-level VM time
  double InterpSeconds = 0; ///< inclusive top-level interpreter time
  uint64_t Compiles = 0;
  double CompileSeconds = 0;
  uint64_t WarmStartAdoptions = 0;
  uint64_t Deopts = 0;
  /// Observed argument-type signatures with call counts, most-called first.
  std::vector<std::pair<std::string, uint64_t>> ArgSignatures;
};

class FunctionProfiles {
public:
  void recordInvocation(const std::string &Name, const std::string &SigStr);
  void recordVmRun(const std::string &Name, double Seconds);
  void recordInterpRun(const std::string &Name, double Seconds);
  void recordCompile(const std::string &Name, double Seconds);
  void recordWarmAdoption(const std::string &Name);
  void recordDeopt(const std::string &Name);

  /// The profile of \p Name; a zeroed profile when never recorded.
  FunctionProfile profile(const std::string &Name) const;

  /// Every profile, most-invoked first.
  std::vector<FunctionProfile> snapshot() const;

  /// JSON array of every profile (same order as snapshot()).
  std::string json() const;

  /// Human table of the top \p Limit profiles.
  std::string renderTable(size_t Limit = 10) const;

  size_t size() const;
  void clear();

private:
  struct Entry {
    uint64_t Invocations = 0;
    uint64_t VmRuns = 0, InterpRuns = 0;
    double VmSeconds = 0, InterpSeconds = 0;
    uint64_t Compiles = 0;
    double CompileSeconds = 0;
    uint64_t WarmStartAdoptions = 0;
    uint64_t Deopts = 0;
    std::unordered_map<std::string, uint64_t> Sigs;
  };

  FunctionProfile toProfile(const std::string &Name, const Entry &E) const;

  mutable std::mutex M;
  std::unordered_map<std::string, Entry> Map;
};

} // namespace obs
} // namespace majic

#endif // MAJIC_OBS_PROFILE_H
