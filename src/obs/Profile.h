//===- obs/Profile.h - Per-function execution profiles ---------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function execution profiles: invocation counts (all call depths),
/// top-level VM vs. interpreter time, compile count/time, warm-start
/// adoptions, deoptimizations, and the observed argument-type signatures.
/// This is the usage record the speculation layer ranks candidates by -
/// the paper compiles what the snooper *finds*; real deployments should
/// compile what users actually *call*, with the types they call it with.
///
/// Signatures arrive pre-rendered as strings so this layer stays below
/// majic_types in the dependency order (the engine caches the rendering
/// per (function, signature), so the hot path pays a string hash, not a
/// signature render). Per function only the first kMaxSignatures distinct
/// signatures get their own counter; further distinct signatures land in
/// an OtherSignatures overflow bucket so a megamorphic call site cannot
/// grow the map without bound.
///
/// Thread-safe: the name->entry map is sharded by name hash so the engine
/// thread recording invocations and the background workers recording
/// compiles do not serialize on one process-wide mutex.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_OBS_PROFILE_H
#define MAJIC_OBS_PROFILE_H

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace majic {
namespace obs {

/// One function's profile at snapshot time.
struct FunctionProfile {
  std::string Name;
  uint64_t Invocations = 0; ///< calls at every depth, however executed
  uint64_t VmRuns = 0;      ///< top-level executions on compiled code
  uint64_t InterpRuns = 0;  ///< top-level executions in the interpreter
  uint64_t NativeRuns = 0;  ///< top-level executions on the native tier
  double VmSeconds = 0;     ///< inclusive top-level VM time
  double InterpSeconds = 0; ///< inclusive top-level interpreter time
  double NativeSeconds = 0; ///< inclusive top-level native-tier time
  uint64_t Compiles = 0;
  double CompileSeconds = 0;
  uint64_t WarmStartAdoptions = 0;
  uint64_t Deopts = 0;
  /// Observed argument-type signatures with call counts, most-called first.
  std::vector<std::pair<std::string, uint64_t>> ArgSignatures;
  /// Calls whose distinct signature arrived after the per-function cap.
  uint64_t OtherSignatures = 0;
};

class FunctionProfiles {
public:
  /// Distinct signatures tracked per function; later distinct signatures
  /// only bump the OtherSignatures overflow counter.
  static constexpr size_t kMaxSignatures = 16;

  void recordInvocation(const std::string &Name, const std::string &SigStr);
  void recordVmRun(const std::string &Name, double Seconds);
  void recordInterpRun(const std::string &Name, double Seconds);
  void recordNativeRun(const std::string &Name, double Seconds);
  void recordCompile(const std::string &Name, double Seconds);
  void recordWarmAdoption(const std::string &Name);
  void recordDeopt(const std::string &Name);

  /// Merge a persisted profile summary (warm start): adds \p Invocations
  /// and \p OtherSigs without touching the signature table.
  void mergePersisted(const std::string &Name, uint64_t Invocations,
                      uint64_t OtherSigs);

  /// Merge a persisted per-signature call count; overflow past the cap is
  /// folded into OtherSignatures like live recording.
  void mergeSignatureCount(const std::string &Name, const std::string &SigStr,
                           uint64_t Count);

  /// The profile of \p Name; a zeroed profile when never recorded.
  FunctionProfile profile(const std::string &Name) const;

  /// Invocation count of \p Name without copying the whole profile.
  uint64_t invocations(const std::string &Name) const;

  /// Every profile, most-invoked first.
  std::vector<FunctionProfile> snapshot() const;

  /// JSON array of every profile (same order as snapshot()).
  std::string json() const;

  /// Human table of the top \p Limit profiles.
  std::string renderTable(size_t Limit = 10) const;

  size_t size() const;
  void clear();

private:
  struct Entry {
    uint64_t Invocations = 0;
    uint64_t VmRuns = 0, InterpRuns = 0, NativeRuns = 0;
    double VmSeconds = 0, InterpSeconds = 0, NativeSeconds = 0;
    uint64_t Compiles = 0;
    double CompileSeconds = 0;
    uint64_t WarmStartAdoptions = 0;
    uint64_t Deopts = 0;
    uint64_t OtherSignatures = 0;
    std::unordered_map<std::string, uint64_t> Sigs;

    void addSignature(const std::string &SigStr, uint64_t Count);
  };

  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, Entry> Map;
  };

  static constexpr size_t kNumShards = 16;

  Shard &shardFor(const std::string &Name) {
    return Shards[std::hash<std::string>{}(Name) % kNumShards];
  }
  const Shard &shardFor(const std::string &Name) const {
    return Shards[std::hash<std::string>{}(Name) % kNumShards];
  }

  FunctionProfile toProfile(const std::string &Name, const Entry &E) const;

  std::array<Shard, kNumShards> Shards;
};

} // namespace obs
} // namespace majic

#endif // MAJIC_OBS_PROFILE_H
