//===- obs/Trace.cpp - Low-overhead trace ring -----------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

using namespace majic;
using namespace majic::obs;

std::atomic<bool> obs::detail::TraceEnabledFlag{false};

namespace {

constexpr size_t kDefaultRingCapacity = 32768;

struct Event {
  const char *Name;
  const char *Cat;
  uint64_t StartNs;
  uint64_t DurNs;
  uint32_t Tid;
  char Ph; // 'X' complete span, 'i' instant
  char Detail[48];
};

/// One thread's fixed-capacity event ring. The owning thread writes; an
/// exporter may read concurrently, hence the (uncontended) mutex.
struct Ring {
  std::mutex M;
  std::vector<Event> Buf;
  size_t Capacity;
  size_t Head = 0; ///< next overwrite position once Buf is full
  uint32_t Tid;

  Ring(size_t Capacity, uint32_t Tid) : Capacity(Capacity), Tid(Tid) {
    Buf.reserve(std::min<size_t>(Capacity, 1024));
  }
};

struct TraceState {
  std::mutex M;
  std::vector<std::shared_ptr<Ring>> Rings;
  size_t RingCapacity = kDefaultRingCapacity;
  uint32_t NextTid = 1;
  /// Bumped by traceReset so threads re-create their ring lazily.
  std::atomic<uint64_t> Epoch{1};
  std::atomic<uint64_t> Recorded{0};
  std::atomic<uint64_t> Dropped{0};
};

TraceState &state() {
  // Leaked intentionally: worker threads may record during static
  // destruction; the OS reclaims the memory on exit.
  static TraceState *S = new TraceState;
  return *S;
}

uint64_t nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point ProcessEpoch = Clock::now();
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - ProcessEpoch)
                      .count());
}

struct ThreadRingHandle {
  std::shared_ptr<Ring> R;
  uint64_t Epoch = 0;
};

Ring &myRing() {
  thread_local ThreadRingHandle H;
  TraceState &S = state();
  uint64_t Epoch = S.Epoch.load(std::memory_order_acquire);
  if (!H.R || H.Epoch != Epoch) {
    std::lock_guard<std::mutex> L(S.M);
    H.R = std::make_shared<Ring>(S.RingCapacity, S.NextTid++);
    H.Epoch = S.Epoch.load(std::memory_order_relaxed);
    S.Rings.push_back(H.R);
  }
  return *H.R;
}

void record(const Event &E) {
  TraceState &S = state();
  Ring &R = myRing();
  std::lock_guard<std::mutex> L(R.M);
  if (R.Buf.size() < R.Capacity) {
    R.Buf.push_back(E);
  } else {
    R.Buf[R.Head] = E;
    R.Head = (R.Head + 1) % R.Capacity;
    S.Dropped.fetch_add(1, std::memory_order_relaxed);
  }
  S.Recorded.fetch_add(1, std::memory_order_relaxed);
}

void copyDetail(char (&Dst)[48], const char *Src) {
  if (!Src) {
    Dst[0] = '\0';
    return;
  }
  std::strncpy(Dst, Src, sizeof(Dst) - 1);
  Dst[sizeof(Dst) - 1] = '\0';
}

} // namespace

void obs::setTraceEnabled(bool Enabled) {
  detail::TraceEnabledFlag.store(Enabled, std::memory_order_relaxed);
}

void obs::traceInstant(const char *Name, const char *Cat,
                       const char *Detail) {
  if (!traceEnabled())
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.StartNs = nowNs();
  E.DurNs = 0;
  E.Tid = 0; // filled from the ring at export
  E.Ph = 'i';
  copyDetail(E.Detail, Detail);
  record(E);
}

void obs::traceInstant(const char *Name, const char *Cat,
                       const std::string &Detail) {
  traceInstant(Name, Cat, Detail.c_str());
}

TraceScope::TraceScope(const char *Name, const char *Cat, const char *Det)
    : Name(Name), Cat(Cat) {
  if (!traceEnabled())
    return;
  Armed = true;
  copyDetail(Detail, Det);
  StartNs = nowNs();
}

TraceScope::TraceScope(const char *Name, const char *Cat,
                       const std::string &Det)
    : TraceScope(Name, Cat, Det.c_str()) {}

TraceScope::~TraceScope() {
  if (!Armed)
    return;
  Event E;
  E.Name = Name;
  E.Cat = Cat;
  E.StartNs = StartNs;
  E.DurNs = nowNs() - StartNs;
  E.Tid = 0;
  E.Ph = 'X';
  std::memcpy(E.Detail, Detail, sizeof(Detail));
  record(E);
}

uint64_t obs::traceEventsRecorded() {
  return state().Recorded.load(std::memory_order_relaxed);
}

uint64_t obs::traceEventsDropped() {
  return state().Dropped.load(std::memory_order_relaxed);
}

void obs::traceReset(size_t RingCapacity) {
  TraceState &S = state();
  std::lock_guard<std::mutex> L(S.M);
  S.Rings.clear();
  if (RingCapacity)
    S.RingCapacity = RingCapacity;
  S.Recorded.store(0, std::memory_order_relaxed);
  S.Dropped.store(0, std::memory_order_relaxed);
  // Release-publish the new epoch so threads observing it also observe the
  // capacity change on their next ring creation.
  S.Epoch.fetch_add(1, std::memory_order_acq_rel);
}

std::string obs::traceJson() {
  TraceState &S = state();
  std::vector<Event> All;
  {
    std::lock_guard<std::mutex> L(S.M);
    for (const std::shared_ptr<Ring> &R : S.Rings) {
      std::lock_guard<std::mutex> RL(R->M);
      for (Event E : R->Buf) {
        E.Tid = R->Tid;
        All.push_back(E);
      }
    }
  }
  std::sort(All.begin(), All.end(), [](const Event &A, const Event &B) {
    return A.StartNs < B.StartNs;
  });

  std::string Out = "{\"traceEvents\": [";
  char Buf[160];
  bool First = true;
  for (const Event &E : All) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "{\"name\": \"" + jsonEscape(E.Name) + "\", \"cat\": \"" +
           jsonEscape(E.Cat) + "\", \"ph\": \"";
    Out.push_back(E.Ph);
    Out += "\", ";
    std::snprintf(Buf, sizeof(Buf), "\"ts\": %.3f, ", double(E.StartNs) / 1e3);
    Out += Buf;
    if (E.Ph == 'X') {
      std::snprintf(Buf, sizeof(Buf), "\"dur\": %.3f, ",
                    double(E.DurNs) / 1e3);
      Out += Buf;
    } else {
      Out += "\"s\": \"t\", ";
    }
    std::snprintf(Buf, sizeof(Buf), "\"pid\": 1, \"tid\": %u", E.Tid);
    Out += Buf;
    if (E.Detail[0])
      Out += ", \"args\": {\"detail\": \"" + jsonEscape(E.Detail) + "\"}";
    Out += "}";
  }
  Out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": "
         "{\"dropped_events\": " +
         std::to_string(traceEventsDropped()) + "}}";
  return Out;
}

bool obs::writeTraceJson(const std::string &Path) {
  std::string Doc = traceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size() &&
            std::fputc('\n', F) != EOF;
  return std::fclose(F) == 0 && Ok;
}
