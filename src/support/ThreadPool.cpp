//===- support/ThreadPool.cpp - Fixed-size worker pool ---------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "obs/Trace.h"
#include "support/FaultInjection.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace majic;

namespace {

/// Drops the calling thread to the lowest scheduling class available, so
/// it never preempts default-priority threads. Best effort: on failure
/// (or off Linux) the worker simply keeps the inherited priority.
void demoteCurrentThread() {
#if defined(__linux__)
  sched_param SP{};
  pthread_setschedparam(pthread_self(), SCHED_IDLE, &SP);
#endif
}

} // namespace

ThreadPool::ThreadPool(unsigned NumThreads, Priority Prio,
                       const MetricsSink *ExtSink)
    : PrioTag(Prio == Priority::Idle ? "idle" : "normal") {
  if (ExtSink)
    Sink = *ExtSink;
  if (!Sink.Enqueued)
    Sink.Enqueued = &Own.Enqueued;
  if (!Sink.Finished)
    Sink.Finished = &Own.Finished;
  if (!Sink.Promoted)
    Sink.Promoted = &Own.Promoted;
  if (!Sink.QueueDepth)
    Sink.QueueDepth = &Own.QueueDepth;
  if (!Sink.QueueSeconds)
    Sink.QueueSeconds = &Own.QueueSeconds;
  if (!Sink.RunSeconds)
    Sink.RunSeconds = &Own.RunSeconds;
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, Prio] {
      if (Prio == Priority::Idle)
        demoteCurrentThread();
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
  }
  HaveWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

ThreadPool::TaskId ThreadPool::enqueue(std::function<void()> Task) {
  faults::maybeThrow(faults::Site::PoolEnqueue);
  TaskId Id;
  {
    std::lock_guard<std::mutex> L(Mutex);
    Id = NextId++;
    Queue.push_back({Id, std::move(Task), Timer()});
    // Inside the lock so the depth gauge can never transiently go negative
    // against a worker's decrement.
    Sink.Enqueued->inc();
    Sink.QueueDepth->add(1);
  }
  HaveWork.notify_one();
  return Id;
}

bool ThreadPool::promote(TaskId Id) {
  std::lock_guard<std::mutex> L(Mutex);
  auto It = std::find_if(Queue.begin(), Queue.end(),
                         [Id](const Item &I) { return I.Id == Id; });
  if (It == Queue.end())
    return false;
  if (It != Queue.begin()) {
    Item Promoted = std::move(*It);
    Queue.erase(It);
    Queue.push_front(std::move(Promoted));
  }
  Sink.Promoted->inc();
  obs::traceInstant("pool.promote", "pool", PrioTag);
  return true;
}

bool ThreadPool::cancel(TaskId Id) {
  std::lock_guard<std::mutex> L(Mutex);
  auto It = std::find_if(Queue.begin(), Queue.end(),
                         [Id](const Item &I) { return I.Id == Id; });
  if (It == Queue.end())
    return false;
  Queue.erase(It);
  Sink.QueueDepth->add(-1);
  obs::traceInstant("pool.cancel", "pool", PrioTag);
  if (Queue.empty() && Running == 0)
    Idle.notify_all();
  return true;
}

void ThreadPool::setPaused(bool NewPaused) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Paused = NewPaused;
  }
  obs::traceInstant(NewPaused ? "pool.pause" : "pool.resume", "pool",
                    PrioTag);
  if (!NewPaused)
    HaveWork.notify_all();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> L(Mutex);
  Idle.wait(L, [this] { return Queue.empty() && Running == 0; });
}

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Queue.size();
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> L(Mutex);
  while (true) {
    // Stopping overrides Paused: the destructor's drain-everything contract
    // holds even for a pool left paused.
    HaveWork.wait(L, [this] {
      return Stopping || (!Paused && !Queue.empty());
    });
    if (Queue.empty()) // Stopping and drained: exit.
      return;
    std::function<void()> Task = std::move(Queue.front().Task);
    double QueuedSeconds = Queue.front().Queued.seconds();
    Queue.pop_front();
    ++Running;
    L.unlock();
    Sink.QueueDepth->add(-1);
    Sink.QueueSeconds->observe(QueuedSeconds);
    // A task that throws must not take the worker (and with it the whole
    // process) down; owners catch their own failures, this records the
    // ones that slipped through.
    {
      obs::TraceScope Span("pool.task", "pool", PrioTag);
      Timer Run;
      try {
        Task();
      } catch (...) {
        UncaughtExceptions.fetch_add(1, std::memory_order_relaxed);
      }
      Sink.RunSeconds->observe(Run.seconds());
    }
    Sink.Finished->inc();
    L.lock();
    --Running;
    if (Queue.empty() && Running == 0)
      Idle.notify_all();
  }
}
