//===- support/ThreadPool.cpp - Fixed-size worker pool ---------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace majic;

namespace {

/// Drops the calling thread to the lowest scheduling class available, so
/// it never preempts default-priority threads. Best effort: on failure
/// (or off Linux) the worker simply keeps the inherited priority.
void demoteCurrentThread() {
#if defined(__linux__)
  sched_param SP{};
  pthread_setschedparam(pthread_self(), SCHED_IDLE, &SP);
#endif
}

} // namespace

ThreadPool::ThreadPool(unsigned NumThreads, Priority Prio) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, Prio] {
      if (Prio == Priority::Idle)
        demoteCurrentThread();
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Stopping = true;
  }
  HaveWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> L(Mutex);
    Queue.push_back(std::move(Task));
  }
  HaveWork.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> L(Mutex);
  Idle.wait(L, [this] { return Queue.empty() && Running == 0; });
}

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Queue.size();
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> L(Mutex);
  while (true) {
    HaveWork.wait(L, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) // Stopping and drained: exit.
      return;
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    ++Running;
    L.unlock();
    Task();
    L.lock();
    --Running;
    if (Queue.empty() && Running == 0)
      Idle.notify_all();
  }
}
