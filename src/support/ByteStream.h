//===- support/ByteStream.h - Bounds-checked byte (de)coding ---*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level primitives every persistent format in the system is built
/// on: a little-endian ByteWriter and a bounds-checked ByteReader. They
/// started life inside ir/Serialize (the compiled-code repository format)
/// and moved down to support/ when workspace snapshots needed the same
/// discipline from the runtime layer, which sits *below* the IR in the
/// link order.
///
/// The reader is written for hostile input: every length is checked against
/// the bytes that remain, and any violation raises SerializeError - it must
/// never crash, overflow, or allocate unboundedly, because the stores feed
/// it bytes that may have been torn or rotted on disk (each store's
/// checksum catches virtually all corruption first; this is the second
/// layer of the validation ladder).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_BYTESTREAM_H
#define MAJIC_SUPPORT_BYTESTREAM_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace majic {
namespace ser {

/// Raised by the readers on any malformed input.
class SerializeError : public std::runtime_error {
public:
  explicit SerializeError(const std::string &What)
      : std::runtime_error("serialize: " + What) {}
};

/// Appends little-endian fixed-width values to a byte buffer.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V);
  /// Length-prefixed (u32) byte string.
  void str(const std::string &S);

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked reader over a byte buffer; throws SerializeError on any
/// read past the end.
class ByteReader {
public:
  ByteReader(const void *Data, size_t Len)
      : P(static_cast<const unsigned char *>(Data)), End(P + Len) {}
  explicit ByteReader(const std::string &Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int32_t i32() { return static_cast<int32_t>(u32()); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64();
  std::string str();

  /// An array length that claims more elements than the remaining bytes
  /// could hold (at \p MinElemBytes each) is corrupt; reject it before
  /// allocating.
  uint32_t arrayLen(size_t MinElemBytes);

  size_t remaining() const { return static_cast<size_t>(End - P); }
  bool atEnd() const { return P == End; }

private:
  void need(size_t N);
  const unsigned char *P;
  const unsigned char *End;
};

} // namespace ser
} // namespace majic

#endif // MAJIC_SUPPORT_BYTESTREAM_H
