//===- support/Hashing.cpp - Content hashing -------------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Hashing.h"

#include <array>

using namespace majic;

uint64_t majic::hashing::fnv1a(const void *Data, size_t Len, uint64_t Seed) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> T{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
    T[I] = C;
  }
  return T;
}

} // namespace

uint32_t majic::hashing::crc32(const void *Data, size_t Len, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t C = Seed ^ 0xffffffffu;
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ P[I]) & 0xffu] ^ (C >> 8);
  return C ^ 0xffffffffu;
}
