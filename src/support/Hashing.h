//===- support/Hashing.h - Content hashing ---------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content hashing for the persistent code repository: FNV-1a (64-bit)
/// identity hashes for source files and signatures, and CRC32 integrity
/// checksums for serialized payloads. CRC32 detects every 1- and 2-bit
/// error and any error burst up to 32 bits, which is exactly the failure
/// model of a torn or bit-rotted cache file; FNV-1a is the cheap
/// fingerprint used where collisions merely cost a recompile.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_HASHING_H
#define MAJIC_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace majic {
namespace hashing {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;

/// 64-bit FNV-1a over \p Len bytes, chainable via \p Seed.
uint64_t fnv1a(const void *Data, size_t Len, uint64_t Seed = kFnvOffset);

inline uint64_t fnv1a(const std::string &S, uint64_t Seed = kFnvOffset) {
  return fnv1a(S.data(), S.size(), Seed);
}

/// NUL-terminated overload. Load-bearing, not convenience: without it a
/// string literal binds the (void*, len) overload exactly, with the *seed*
/// silently consumed as the byte count.
inline uint64_t fnv1a(const char *S, uint64_t Seed = kFnvOffset) {
  return fnv1a(S, std::char_traits<char>::length(S), Seed);
}

/// CRC-32 (IEEE 802.3 polynomial) over \p Len bytes, chainable via \p Seed
/// (pass a previous return value to extend the checksum).
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

inline uint32_t crc32(const std::string &S, uint32_t Seed = 0) {
  return crc32(S.data(), S.size(), Seed);
}

/// NUL-terminated overload; see the fnv1a(const char*) comment.
inline uint32_t crc32(const char *S, uint32_t Seed = 0) {
  return crc32(S, std::char_traits<char>::length(S), Seed);
}

} // namespace hashing
} // namespace majic

#endif // MAJIC_SUPPORT_HASHING_H
