//===- support/Diagnostics.h - Compile-time diagnostics --------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the compiler passes. Diagnostics follow the
/// LLVM message style: lowercase first letter, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_DIAGNOSTICS_H
#define MAJIC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace majic {

enum class DiagKind { Error, Warning, Note };

struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics produced during parsing and analysis.
class Diagnostics {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned numErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line, using \p SM for locations.
  std::string render(const SourceManager &SM) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace majic

#endif // MAJIC_SUPPORT_DIAGNOSTICS_H
