//===- support/Rng.h - Deterministic PRNG ----------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic xorshift128+ PRNG. MATLAB's rand() must be reproducible
/// across the interpreter and all compiled configurations so that results
/// can be compared bit-for-bit in the soundness tests; both execution paths
/// share one Rng instance owned by the runtime Context.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_RNG_H
#define MAJIC_SUPPORT_RNG_H

#include <cstdint>

namespace majic {

/// xorshift128+ with a splitmix64-seeded state.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) { reseed(Seed); }

  void reseed(uint64_t Seed) {
    State[0] = splitmix64(Seed);
    State[1] = splitmix64(State[0]);
  }

  uint64_t nextU64() {
    uint64_t X = State[0];
    const uint64_t Y = State[1];
    State[0] = Y;
    X ^= X << 23;
    State[1] = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return State[1] + Y;
  }

  /// Uniform double in [0, 1), 53-bit resolution (like MATLAB rand()).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

private:
  static uint64_t splitmix64(uint64_t X) {
    X += 0x9e3779b97f4a7c15ull;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
    return X ^ (X >> 31);
  }

  uint64_t State[2];
};

} // namespace majic

#endif // MAJIC_SUPPORT_RNG_H
