//===- support/Parallel.cpp - Data-parallel compute primitive --------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include "obs/Trace.h"
#include "support/ResourceGuard.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

using namespace majic;

namespace {

thread_local bool InParallelBody = false;

/// Tracks completion of one parallelFor call: the caller blocks until every
/// chunk (including those on pool workers) has run. The first exception a
/// chunk throws is captured and rethrown on the calling thread.
struct Latch {
  std::mutex M;
  std::condition_variable Done;
  unsigned Remaining;
  std::exception_ptr Error;

  explicit Latch(unsigned Count) : Remaining(Count) {}

  void finish(std::exception_ptr E) {
    std::lock_guard<std::mutex> L(M);
    if (E && !Error)
      Error = E;
    if (--Remaining == 0)
      Done.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> L(M);
    Done.wait(L, [this] { return Remaining == 0; });
  }
};

struct PoolState {
  std::mutex M;
  std::unique_ptr<ThreadPool> Pool; ///< holds resolved-count - 1 workers
  unsigned PoolThreads = 0;         ///< resolved count the pool was built for
  unsigned Requested = 0;           ///< setComputeThreads() value; 0 = auto
};

PoolState &state() {
  // Leaked intentionally: compute workers may still be parked in the pool
  // at static-destruction time, and tearing them down then races with
  // other static destructors. The OS reclaims everything on exit.
  static PoolState *S = new PoolState;
  return *S;
}

unsigned autoThreads() {
  if (const char *Env = std::getenv("MAJIC_COMPUTE_THREADS")) {
    long V = std::strtol(Env, nullptr, 10);
    if (V > 0)
      return static_cast<unsigned>(std::min<long>(V, 256));
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

unsigned resolvedThreads(PoolState &S) {
  return S.Requested ? S.Requested : autoThreads();
}

/// Returns the shared compute pool sized for the current thread count, or
/// null when one thread is configured (the caller runs everything inline).
/// Rebuilds the pool only when the resolved count changed.
ThreadPool *computePool(PoolState &S, unsigned Threads) {
  if (Threads <= 1)
    return nullptr;
  if (!S.Pool || S.PoolThreads != Threads) {
    S.Pool.reset(); // join old workers before spawning the new set
    S.Pool = std::make_unique<ThreadPool>(Threads - 1, ThreadPool::Priority::Normal);
    S.PoolThreads = Threads;
  }
  return S.Pool.get();
}

} // namespace

unsigned par::computeThreads() {
  PoolState &S = state();
  std::lock_guard<std::mutex> L(S.M);
  return resolvedThreads(S);
}

void par::setComputeThreads(unsigned N) {
  PoolState &S = state();
  std::lock_guard<std::mutex> L(S.M);
  S.Requested = std::min(N, 256u);
  // The pool is rebuilt lazily by the next parallelFor that needs it.
}

bool par::inParallelRegion() { return InParallelBody; }

par::ComputePoolSample par::sampleComputePool() {
  PoolState &S = state();
  std::lock_guard<std::mutex> L(S.M);
  ComputePoolSample Sample;
  Sample.Threads = resolvedThreads(S);
  if (S.Pool) {
    const ThreadPool::MetricsSink &Sink = S.Pool->metricsSink();
    Sample.TasksEnqueued = Sink.Enqueued->value();
    Sample.TasksFinished = Sink.Finished->value();
    Sample.QueueDepth = Sink.QueueDepth->value();
  }
  return Sample;
}

void par::parallelFor(size_t N, size_t Grain,
                      const std::function<void(size_t, size_t)> &Body) {
  if (N == 0)
    return;
  // Cooperative-interrupt poll: parallel regions are where long kernel
  // work happens, so every region entry (and every chunk below) is a
  // cancellation point. Throws before any chunk has run.
  exec::pollInterrupt();
  Grain = std::max<size_t>(Grain, 1);
  // Grain floor (see Parallel.h): element-sized grains are clamped so
  // small arrays run inline on the caller instead of paying pool dispatch
  // latency. Grain == 1 is exempt - it designates coarse task units
  // (BLAS panels, reduction chunks) whose per-index work is already large.
  if (Grain > 1)
    Grain = std::max<size_t>(Grain, kMinElementGrain);

  ThreadPool *Pool = nullptr;
  unsigned Threads = 1;
  if (N > Grain && !InParallelBody) {
    PoolState &S = state();
    std::lock_guard<std::mutex> L(S.M);
    Threads = resolvedThreads(S);
    Pool = computePool(S, Threads);
  }

  size_t Chunks = std::min<size_t>(Threads, (N + Grain - 1) / Grain);
  if (!Pool || Chunks <= 1) {
    InParallelBody = true;
    try {
      Body(0, N);
    } catch (...) {
      InParallelBody = false;
      throw;
    }
    InParallelBody = false;
    return;
  }

  // Split [0, N) into Chunks contiguous ranges of near-equal size. The
  // caller takes chunk 0 so one configured thread's worth of work never
  // waits behind the pool's queue.
  char SpanDetail[48];
  std::snprintf(SpanDetail, sizeof(SpanDetail), "n=%zu chunks=%zu", N,
                Chunks);
  obs::TraceScope Span("parallelFor", "compute", SpanDetail);
  size_t Base = N / Chunks, Extra = N % Chunks;
  Latch Sync(static_cast<unsigned>(Chunks));
  // Chunks dispatched to pool workers run on threads that don't carry the
  // caller's per-session context: install the caller's memory account and
  // interrupt token around each chunk so a session's budget covers (and its
  // interrupt reaches) the work it fanned out.
  mem::Account *Acct = mem::currentAccount();
  exec::Token *Intr = exec::currentToken();
  auto RunChunk = [&Body, &Sync, Acct, Intr](size_t Begin, size_t End) {
    mem::ScopedAccount AcctScope(Acct);
    exec::ScopedToken IntrScope(Intr);
    InParallelBody = true;
    std::exception_ptr E;
    try {
      // Chunk boundaries are the cancellation points inside a region: an
      // interrupt lands here as a captured exception, rethrown once every
      // sibling chunk has finished, so the caller unwinds cleanly.
      exec::pollInterrupt();
      Body(Begin, End);
    } catch (...) {
      E = std::current_exception();
    }
    InParallelBody = false;
    Sync.finish(E);
  };

  size_t FirstEnd = Base + (Extra ? 1 : 0); // chunk 0 = [0, FirstEnd), caller's
  size_t Begin = FirstEnd;
  for (size_t C = 1; C != Chunks; ++C) {
    size_t End = Begin + Base + (C < Extra ? 1 : 0);
    // If the pool refuses the chunk (fault-injected or genuinely failing
    // enqueue), run it inline on the caller: the latch accounting stays
    // exact and the region degrades to serial instead of wedging or
    // leaving chunks referencing a dead Latch.
    try {
      Pool->enqueue([RunChunk, Begin, End] { RunChunk(Begin, End); });
    } catch (...) {
      RunChunk(Begin, End);
    }
    Begin = End;
  }
  RunChunk(0, FirstEnd);
  Sync.wait();
  if (Sync.Error)
    std::rethrow_exception(Sync.Error);
}
