//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool backing the engine's background
/// speculative compilation (Section 2.5: the repository "compiles code on
/// its own, ahead of time", so the user never waits for the compiler) and
/// the compute-side parallelFor primitive (support/Parallel.h).
/// Tasks are plain closures executed FIFO; the destructor finishes every
/// queued task before joining, so enqueued work is never silently lost.
/// Queued (not yet started) tasks can be promoted to the front of the
/// queue - the engine uses this to prioritize the function the user is
/// actually waiting on over the FIFO backlog of speculative compiles.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_THREADPOOL_H
#define MAJIC_SUPPORT_THREADPOOL_H

#include "obs/Metrics.h"
#include "support/Timer.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace majic {

class ThreadPool {
public:
  /// Worker scheduling priority. Background compilation uses \c Idle so
  /// the workers only consume cycles the interactive thread leaves free -
  /// essential on few-core machines, where a default-priority worker
  /// time-slices against the user's thread and delays the next result.
  /// Compute workers (support/Parallel.h) run at \c Normal priority: they
  /// execute on behalf of the thread the user is waiting on.
  enum class Priority { Normal, Idle };

  /// Identifies an enqueued task; never reused within a pool's lifetime.
  using TaskId = uint64_t;

  /// Where the pool records its observability data. Entries left null are
  /// pointed at pool-owned instruments, so recording never branches. An
  /// owner that wires in external instruments (the engine points these at
  /// its MetricsRegistry) must keep them alive for the pool's lifetime.
  struct MetricsSink {
    obs::Counter *Enqueued = nullptr;  ///< tasks accepted by enqueue()
    obs::Counter *Finished = nullptr;  ///< tasks that ran to completion
    obs::Counter *Promoted = nullptr;  ///< successful promote() calls
    obs::Gauge *QueueDepth = nullptr;  ///< queued-but-not-started tasks
    obs::Histogram *QueueSeconds = nullptr; ///< enqueue -> worker pickup
    obs::Histogram *RunSeconds = nullptr;   ///< task body execution
  };

  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads, Priority Prio = Priority::Normal,
                      const MetricsSink *Sink = nullptr);

  /// Finishes all queued tasks, then joins the workers (pausing does not
  /// survive destruction: a paused pool drains on shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Schedules \p Task for execution on some worker. The returned id can
  /// be passed to promote() while the task is still queued.
  TaskId enqueue(std::function<void()> Task);

  /// Moves the queued task \p Id to the front of the queue so it is the
  /// next one a worker picks up. Returns false when the task already
  /// started (or finished) - promotion is only meaningful while queued.
  bool promote(TaskId Id);

  /// Removes the queued task \p Id without running it. Returns false when
  /// the task already started (or finished) - a running task cannot be
  /// cancelled, only waited out. Session shutdown uses this to drop a
  /// departing session's not-yet-started work from a shared pool.
  bool cancel(TaskId Id);

  /// While paused, workers finish the tasks they are running but start no
  /// new ones; enqueue/promote still operate on the queue. Tests use this
  /// to build a deterministic backlog.
  void setPaused(bool Paused);

  /// Blocks until the queue is empty and no task is running.
  void waitIdle();

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Queued-but-not-started tasks (inspection; racy by nature).
  size_t queueDepth() const;

  /// Tasks that let an exception escape. Owners are expected to catch their
  /// own failures; this last-resort guard only exists so a buggy or
  /// fault-injected task can never std::terminate the process.
  uint64_t uncaughtTaskExceptions() const {
    return UncaughtExceptions.load(std::memory_order_relaxed);
  }

  /// The resolved instruments (external where wired, pool-owned
  /// otherwise); par::sampleComputePool reads the process-wide compute
  /// pool through this.
  const MetricsSink &metricsSink() const { return Sink; }

private:
  struct Item {
    TaskId Id;
    std::function<void()> Task;
    Timer Queued; ///< measures enqueue -> pickup latency
  };

  void workerLoop();

  /// Resolved at construction: every entry non-null, external or &Own*.
  MetricsSink Sink;
  struct {
    obs::Counter Enqueued, Finished, Promoted;
    obs::Gauge QueueDepth;
    obs::Histogram QueueSeconds, RunSeconds;
  } Own;
  const char *PrioTag; ///< "idle" or "normal", for trace details

  std::vector<std::thread> Workers;
  std::deque<Item> Queue;
  mutable std::mutex Mutex;
  std::condition_variable HaveWork; ///< signalled on enqueue/resume/shutdown
  std::condition_variable Idle;     ///< signalled when a task finishes
  TaskId NextId = 1;                ///< 0 is never a valid id
  unsigned Running = 0;             ///< tasks currently executing
  bool Paused = false;
  bool Stopping = false;
  std::atomic<uint64_t> UncaughtExceptions{0};
};

} // namespace majic

#endif // MAJIC_SUPPORT_THREADPOOL_H
