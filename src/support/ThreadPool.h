//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool backing the engine's background
/// speculative compilation (Section 2.5: the repository "compiles code on
/// its own, ahead of time", so the user never waits for the compiler).
/// Tasks are plain closures executed FIFO; the destructor finishes every
/// queued task before joining, so enqueued work is never silently lost.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_THREADPOOL_H
#define MAJIC_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace majic {

class ThreadPool {
public:
  /// Worker scheduling priority. Background compilation uses \c Idle so
  /// the workers only consume cycles the interactive thread leaves free -
  /// essential on few-core machines, where a default-priority worker
  /// time-slices against the user's thread and delays the next result.
  enum class Priority { Normal, Idle };

  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads,
                      Priority Prio = Priority::Normal);

  /// Finishes all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Schedules \p Task for execution on some worker.
  void enqueue(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is running.
  void waitIdle();

  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Queued-but-not-started tasks (inspection; racy by nature).
  size_t queueDepth() const;

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable HaveWork; ///< signalled on enqueue/shutdown
  std::condition_variable Idle;     ///< signalled when a task finishes
  unsigned Running = 0;             ///< tasks currently executing
  bool Stopping = false;
};

} // namespace majic

#endif // MAJIC_SUPPORT_THREADPOOL_H
