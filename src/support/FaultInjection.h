//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the execution pipeline. MaJIC's core
/// promise is responsiveness: a failed compile, a failed allocation or a
/// misbehaving background task must degrade to the interpreter, never take
/// the session down. This layer makes those failure paths *exercisable*:
/// named injection sites are threaded through the compile pipeline (parse,
/// type inference, code generation, register allocation, repository
/// insertion), Value allocation and the thread pools, and a seedable
/// schedule decides which hits of which sites raise a fault.
///
/// Schedules are configured through the API (tests) or the MAJIC_FAULTS
/// environment variable. When nothing is armed, a site costs one relaxed
/// atomic load.
///
/// Spec grammar (comma- or semicolon-separated entries):
///
///   <site>=at:<N>          fire exactly once, at the Nth hit (1-based)
///   <site>=every:<N>       fire at every Nth hit
///   <site>=rand:<P>:<SEED> fire each hit with probability P, deterministic
///                          per seed
///   <site>=kill:<N>        raise SIGKILL at the Nth killPoint() hit - the
///                          crash-recovery sweeps' murder weapon. Only
///                          killPoint() honors it; the throwing hooks
///                          ignore kill schedules entirely, so arming one
///                          can never smuggle an exception into a
///                          non-throwing path.
///
/// e.g. MAJIC_FAULTS="codegen=at:2,repo-insert=rand:0.25:7"
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_FAULTINJECTION_H
#define MAJIC_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <exception>
#include <new>
#include <string>

namespace majic {
namespace faults {

/// The named injection sites. One enumerator per guarded subsystem stage.
enum class Site : uint8_t {
  Parse,       ///< ast: parseModule, before the token stream is consumed
  Infer,       ///< backend: before type inference
  CodeGen,     ///< backend: before code selection
  RegAlloc,    ///< backend: before register allocation
  RepoInsert,  ///< repo: before a compiled object is stored
  ValueAlloc,  ///< runtime: Value storage allocation (fires std::bad_alloc)
  PoolEnqueue, ///< support: ThreadPool::enqueue
  RepoSave,    ///< repo: before a compiled object is persisted to disk
  RepoLoad,    ///< repo: before a persisted entry is decoded at startup
  SessionCreate, ///< service: before a session's engine is constructed
  Admission,     ///< service: before a request is admitted to a queue
  BudgetCheck,   ///< service: per-session budget check before dispatch
  SessionSnapshotSave, ///< service: workspace snapshot save (hibernate)
  SessionSnapshotLoad, ///< service: workspace snapshot load (resurrect)
  AtomicWriteStep,     ///< support: each step inside writeFileAtomic
                       ///< (kill-mode only; the write path never throws)
  NativeCompile,       ///< native: before the out-of-process C compile
  NativeLoad,          ///< native: before a shared object is dlopen'd
  NativeRun,           ///< native: before/inside a native-tier execution
};
constexpr unsigned kNumSites = 18;

const char *siteName(Site S);

/// Resolves a spec-grammar site name; returns false when unknown.
bool siteFromName(const std::string &Name, Site &Out);

/// The exception raised at a firing site (every site except ValueAlloc,
/// which raises std::bad_alloc so the injected failure exercises the same
/// recovery path as a real out-of-memory condition).
class InjectedFault : public std::exception {
public:
  explicit InjectedFault(Site S);
  Site site() const { return S; }
  const char *what() const noexcept override { return Msg.c_str(); }

private:
  Site S;
  std::string Msg;
};

/// Per-site trigger counters. Hits are only counted while the site is
/// armed, so an idle process pays nothing for the bookkeeping.
struct SiteStats {
  uint64_t Hits = 0;  ///< times the site was reached while armed
  uint64_t Fired = 0; ///< times a fault was raised
};

/// Disarms every site and zeroes all counters.
void reset();

/// True when at least one site is armed (the fast-path gate).
bool anyArmed();

/// Arms \p S to fire exactly once, at the \p Nth hit from now (1-based).
void armAt(Site S, uint64_t Nth);

/// Arms \p S to fire at every \p Nth hit (1 = every hit).
void armEvery(Site S, uint64_t Nth);

/// Arms \p S to fire each hit independently with probability \p P, using a
/// deterministic per-site PRNG seeded with \p Seed.
void armRandom(Site S, double P, uint64_t Seed);

/// Arms \p S to SIGKILL the process at the \p Nth killPoint() hit
/// (1-based). Hits are counted by killPoint() alone; shouldFire() treats a
/// kill-armed site as disarmed.
void armKill(Site S, uint64_t Nth);

void disarm(Site S);

/// Applies a MAJIC_FAULTS-grammar schedule, replacing the current one
/// (counters reset). Returns false and fills \p Error on a malformed spec.
bool loadSpec(const std::string &Spec, std::string *Error = nullptr);

/// Applies the MAJIC_FAULTS environment variable when set; returns whether
/// a schedule was applied. A malformed spec is rejected loudly: a
/// diagnostic goes to stderr and every site is disarmed (a typo must not
/// silently leave a partial or stale schedule running).
bool loadEnv();

SiteStats stats(Site S);
uint64_t totalFired();

/// The site hook: records a hit and decides whether this hit faults.
/// Kill-armed sites never fire here - killPoint() owns that schedule.
bool shouldFire(Site S);

/// The crash-sweep hook: when \p S is armed with a kill schedule, counts
/// the hit and raises SIGKILL at the Nth one - the process dies mid-step
/// exactly as a power cut or OOM-kill would, with no unwinding and no
/// destructors. A no-op (one relaxed load) in every other mode, so the
/// durable write paths can call it unconditionally.
void killPoint(Site S);

/// Raises InjectedFault when the site fires.
inline void maybeThrow(Site S) {
  if (shouldFire(S))
    throw InjectedFault(S);
}

/// ValueAlloc flavor: raises std::bad_alloc, the same failure the OS would
/// deliver, so injection and reality share one recovery path.
inline void maybeThrowOom(Site S) {
  if (shouldFire(S))
    throw std::bad_alloc();
}

} // namespace faults
} // namespace majic

#endif // MAJIC_SUPPORT_FAULTINJECTION_H
