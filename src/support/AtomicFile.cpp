//===- support/AtomicFile.cpp - Crash-safe file writes ---------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"

#include "support/FaultInjection.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

using namespace majic;
namespace fs = std::filesystem;

const char *const majic::atomicfile::kTempMarker = ".tmp";

namespace {

void setError(std::string *Error, const std::string &What) {
  if (Error)
    *Error = What + ": " + std::strerror(errno);
}

/// fsync the directory containing \p Path so a completed rename is durable.
void syncParentDir(const std::string &Path) {
  fs::path Parent = fs::path(Path).parent_path();
  if (Parent.empty())
    Parent = ".";
  int Fd = ::open(Parent.c_str(), O_RDONLY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

} // namespace

bool majic::atomicfile::writeFileAtomic(const std::string &Path,
                                        const std::string &Bytes,
                                        std::string *Error) {
  // Unique within the process so concurrent saves of the same target never
  // share a temp file; unique-enough across crashed processes because the
  // sweep removes strays by pattern, not by name.
  static std::atomic<uint64_t> Counter{0};
  std::string Tmp = Path + kTempMarker +
                    std::to_string(static_cast<unsigned long>(::getpid())) +
                    "." +
                    std::to_string(Counter.fetch_add(1,
                                                     std::memory_order_relaxed));

  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    setError(Error, "cannot create '" + Tmp + "'");
    return false;
  }
  // Crash-sweep kill points bracket every state transition of the
  // protocol: an empty temp file, a half-written temp file, a full but
  // unsynced temp file, a durable temp file, and a renamed target whose
  // directory entry is not yet synced. killPoint() is a no-op (one relaxed
  // load) unless a test armed a kill schedule; it never throws, so the
  // function's no-exceptions contract holds.
  faults::killPoint(faults::Site::AtomicWriteStep);
  // Write in two halves so the sweep can die with a genuinely torn payload
  // on disk, not just before-any-bytes or after-all-bytes.
  size_t Chunk[2] = {Bytes.size() / 2, Bytes.size()};
  size_t Off = 0;
  for (size_t Limit : Chunk) {
    while (Off < Limit) {
      ssize_t N = ::write(Fd, Bytes.data() + Off, Limit - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        setError(Error, "cannot write '" + Tmp + "'");
        ::close(Fd);
        ::unlink(Tmp.c_str());
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    faults::killPoint(faults::Site::AtomicWriteStep);
  }
  // The data must be on disk before the rename makes it reachable,
  // otherwise a crash could expose a named-but-empty file.
  if (::fsync(Fd) != 0) {
    setError(Error, "cannot fsync '" + Tmp + "'");
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  faults::killPoint(faults::Site::AtomicWriteStep);
  if (::close(Fd) != 0) {
    setError(Error, "cannot close '" + Tmp + "'");
    ::unlink(Tmp.c_str());
    return false;
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    setError(Error, "cannot rename '" + Tmp + "' to '" + Path + "'");
    ::unlink(Tmp.c_str());
    return false;
  }
  faults::killPoint(faults::Site::AtomicWriteStep);
  syncParentDir(Path);
  return true;
}

bool majic::atomicfile::readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  if (In.bad())
    return false;
  Out = std::move(Bytes);
  return true;
}

unsigned majic::atomicfile::sweepTempFiles(const std::string &Dir,
                                           const std::string &Suffix) {
  unsigned Removed = 0;
  std::error_code EC;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    if (!Entry.is_regular_file())
      continue;
    std::string Name = Entry.path().filename().string();
    size_t SuffixAt = Name.find(Suffix + kTempMarker);
    if (SuffixAt == std::string::npos)
      continue;
    std::error_code RmEC;
    if (fs::remove(Entry.path(), RmEC))
      ++Removed;
  }
  return Removed;
}
