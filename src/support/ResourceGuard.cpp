//===- support/ResourceGuard.cpp - Memory and interrupt guards -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGuard.h"

#include "support/Error.h"

#include <atomic>

using namespace majic;

namespace {

std::atomic<uint64_t> Limit{0};
std::atomic<uint64_t> Live{0};
std::atomic<uint64_t> Peak{0};
std::atomic<bool> InterruptFlag{false};

} // namespace

void majic::mem::setLimitBytes(uint64_t Bytes) {
  Limit.store(Bytes, std::memory_order_relaxed);
}

uint64_t majic::mem::limitBytes() {
  return Limit.load(std::memory_order_relaxed);
}

uint64_t majic::mem::liveBytes() {
  return Live.load(std::memory_order_relaxed);
}

uint64_t majic::mem::peakBytes() {
  return Peak.load(std::memory_order_relaxed);
}

void majic::mem::charge(size_t Bytes) {
  uint64_t Now = Live.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t Max = Limit.load(std::memory_order_relaxed);
  if (Max && Now > Max) {
    Live.fetch_sub(Bytes, std::memory_order_relaxed);
    throw std::bad_alloc();
  }
  // Racy max update is fine: Peak is a diagnostic, not a correctness value.
  uint64_t Prev = Peak.load(std::memory_order_relaxed);
  while (Now > Prev &&
         !Peak.compare_exchange_weak(Prev, Now, std::memory_order_relaxed))
    ;
}

void majic::mem::release(size_t Bytes) {
  Live.fetch_sub(Bytes, std::memory_order_relaxed);
}

void majic::exec::requestInterrupt() {
  InterruptFlag.store(true, std::memory_order_relaxed);
}

void majic::exec::clearInterrupt() {
  InterruptFlag.store(false, std::memory_order_relaxed);
}

bool majic::exec::interruptRequested() {
  return InterruptFlag.load(std::memory_order_relaxed);
}

void majic::exec::pollInterrupt() {
  if (InterruptFlag.load(std::memory_order_relaxed))
    throw MatlabError("execution interrupted");
}
