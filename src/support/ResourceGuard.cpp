//===- support/ResourceGuard.cpp - Memory and interrupt guards -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGuard.h"

#include "support/Error.h"

#include <atomic>

using namespace majic;

namespace {

std::atomic<uint64_t> Limit{0};
std::atomic<uint64_t> Live{0};
std::atomic<uint64_t> Peak{0};
std::atomic<bool> InterruptFlag{false};

thread_local mem::Account *CurrentAccount = nullptr;
thread_local exec::Token *CurrentToken = nullptr;

} // namespace

void majic::mem::setLimitBytes(uint64_t Bytes) {
  Limit.store(Bytes, std::memory_order_relaxed);
}

uint64_t majic::mem::limitBytes() {
  return Limit.load(std::memory_order_relaxed);
}

uint64_t majic::mem::liveBytes() {
  return Live.load(std::memory_order_relaxed);
}

uint64_t majic::mem::peakBytes() {
  return Peak.load(std::memory_order_relaxed);
}

bool majic::mem::Account::tryCharge(size_t Bytes) {
  int64_t Now = LiveV.fetch_add(int64_t(Bytes), std::memory_order_relaxed) +
                int64_t(Bytes);
  uint64_t Max = LimitV.load(std::memory_order_relaxed);
  if (Max && Now > 0 && uint64_t(Now) > Max) {
    LiveV.fetch_sub(int64_t(Bytes), std::memory_order_relaxed);
    return false;
  }
  uint64_t Prev = PeakV.load(std::memory_order_relaxed);
  while (Now > 0 && uint64_t(Now) > Prev &&
         !PeakV.compare_exchange_weak(Prev, uint64_t(Now),
                                      std::memory_order_relaxed))
    ;
  return true;
}

majic::mem::Account *majic::mem::currentAccount() { return CurrentAccount; }

majic::mem::Account *majic::mem::setCurrentAccount(Account *A) {
  Account *Prev = CurrentAccount;
  CurrentAccount = A;
  return Prev;
}

void majic::mem::charge(size_t Bytes) {
  // Session account first: its limit is usually the stricter one, and a
  // refused session charge must not disturb the process-wide tally.
  Account *A = CurrentAccount;
  if (A && !A->tryCharge(Bytes))
    throw std::bad_alloc();
  uint64_t Now = Live.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t Max = Limit.load(std::memory_order_relaxed);
  if (Max && Now > Max) {
    Live.fetch_sub(Bytes, std::memory_order_relaxed);
    if (A)
      A->release(Bytes);
    throw std::bad_alloc();
  }
  // Racy max update is fine: Peak is a diagnostic, not a correctness value.
  uint64_t Prev = Peak.load(std::memory_order_relaxed);
  while (Now > Prev &&
         !Peak.compare_exchange_weak(Prev, Now, std::memory_order_relaxed))
    ;
}

void majic::mem::release(size_t Bytes) {
  if (Account *A = CurrentAccount)
    A->release(Bytes);
  Live.fetch_sub(Bytes, std::memory_order_relaxed);
}

void majic::exec::requestInterrupt() {
  InterruptFlag.store(true, std::memory_order_relaxed);
}

void majic::exec::clearInterrupt() {
  InterruptFlag.store(false, std::memory_order_relaxed);
}

bool majic::exec::interruptRequested() {
  return InterruptFlag.load(std::memory_order_relaxed);
}

majic::exec::Token *majic::exec::currentToken() { return CurrentToken; }

majic::exec::Token *majic::exec::setCurrentToken(Token *T) {
  Token *Prev = CurrentToken;
  CurrentToken = T;
  return Prev;
}

void majic::exec::pollInterrupt() {
  if (InterruptFlag.load(std::memory_order_relaxed))
    throw MatlabError("execution interrupted");
  if (Token *T = CurrentToken; T && T->requested())
    throw MatlabError("execution interrupted");
}
