//===- support/FaultInjection.cpp - Deterministic fault injection ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Rng.h"
#include "support/StringUtils.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include <signal.h>
#include <unistd.h>

using namespace majic;
using namespace majic::faults;

namespace {

enum class Mode : uint8_t { Off, At, Every, Rand, Kill };

struct SiteState {
  Mode M = Mode::Off;
  uint64_t N = 0; ///< At/Every parameter
  double P = 0;   ///< Rand probability
  Rng R;          ///< Rand per-site stream
  uint64_t Hits = 0;
  uint64_t Fired = 0;
};

struct Registry {
  std::mutex Mutex;
  SiteState Sites[kNumSites];
  /// Fast-path gate: shouldFire() is on hot paths (every Value allocation),
  /// so the disarmed case must not take the mutex.
  std::atomic<bool> AnyArmed{false};
};

Registry &registry() {
  static Registry R;
  return R;
}

SiteState &stateLocked(Registry &Reg, Site S) {
  return Reg.Sites[static_cast<unsigned>(S)];
}

void refreshAnyArmedLocked(Registry &Reg) {
  bool Armed = false;
  for (const SiteState &St : Reg.Sites)
    Armed |= St.M != Mode::Off;
  Reg.AnyArmed.store(Armed, std::memory_order_relaxed);
}

const char *const SiteNames[kNumSites] = {
    "parse",       "infer",        "codegen",   "regalloc",  "repo-insert",
    "value-alloc", "pool-enqueue", "repo-save", "repo-load",
    "session-create", "admission", "budget-check",
    "session-snapshot-save", "session-snapshot-load", "atomic-write-step",
    "native-compile", "native-load", "native-run"};

/// Strict full-string parses: "5x" or "" must be diagnosed, not silently
/// truncated to a number.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (!End || *End != '\0')
    return false;
  Out = V;
  return true;
}

bool parseProb(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (!End || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

const char *majic::faults::siteName(Site S) {
  return SiteNames[static_cast<unsigned>(S)];
}

bool majic::faults::siteFromName(const std::string &Name, Site &Out) {
  for (unsigned I = 0; I != kNumSites; ++I)
    if (Name == SiteNames[I]) {
      Out = static_cast<Site>(I);
      return true;
    }
  return false;
}

InjectedFault::InjectedFault(Site S)
    : S(S), Msg(format("injected fault at site '%s'", siteName(S))) {}

void majic::faults::reset() {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  for (SiteState &St : Reg.Sites)
    St = SiteState();
  Reg.AnyArmed.store(false, std::memory_order_relaxed);
}

bool majic::faults::anyArmed() {
  return registry().AnyArmed.load(std::memory_order_relaxed);
}

void majic::faults::armAt(Site S, uint64_t Nth) {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  SiteState &St = stateLocked(Reg, S);
  St.M = Mode::At;
  St.N = Nth ? Nth : 1;
  St.Hits = St.Fired = 0;
  refreshAnyArmedLocked(Reg);
}

void majic::faults::armEvery(Site S, uint64_t Nth) {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  SiteState &St = stateLocked(Reg, S);
  St.M = Mode::Every;
  St.N = Nth ? Nth : 1;
  St.Hits = St.Fired = 0;
  refreshAnyArmedLocked(Reg);
}

void majic::faults::armRandom(Site S, double P, uint64_t Seed) {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  SiteState &St = stateLocked(Reg, S);
  St.M = Mode::Rand;
  St.P = P < 0 ? 0 : (P > 1 ? 1 : P);
  St.R.reseed(Seed);
  St.Hits = St.Fired = 0;
  refreshAnyArmedLocked(Reg);
}

void majic::faults::armKill(Site S, uint64_t Nth) {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  SiteState &St = stateLocked(Reg, S);
  St.M = Mode::Kill;
  St.N = Nth ? Nth : 1;
  St.Hits = St.Fired = 0;
  refreshAnyArmedLocked(Reg);
}

void majic::faults::disarm(Site S) {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  stateLocked(Reg, S).M = Mode::Off;
  refreshAnyArmedLocked(Reg);
}

bool majic::faults::loadSpec(const std::string &Spec, std::string *Error) {
  struct Entry {
    Site S;
    Mode M;
    uint64_t N;
    double P;
    uint64_t Seed;
  };
  std::vector<Entry> Entries;

  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find_first_of(",;", Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Item = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;

    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      return Fail("fault entry '" + Item + "' has no '='");
    Entry E;
    if (!siteFromName(Item.substr(0, Eq), E.S))
      return Fail("unknown fault site '" + Item.substr(0, Eq) + "'");
    std::string Action = Item.substr(Eq + 1);
    size_t C1 = Action.find(':');
    std::string Kind = Action.substr(0, C1);
    std::string Args = C1 == std::string::npos ? "" : Action.substr(C1 + 1);
    if (Kind == "at" || Kind == "every" || Kind == "kill") {
      E.M = Kind == "at" ? Mode::At
                         : (Kind == "every" ? Mode::Every : Mode::Kill);
      if (!parseU64(Args, E.N))
        return Fail("fault entry '" + Item + "' has a malformed count '" +
                    Args + "'");
      if (E.N == 0)
        return Fail("fault entry '" + Item + "' needs a positive count");
    } else if (Kind == "rand") {
      E.M = Mode::Rand;
      size_t C2 = Args.find(':');
      if (!parseProb(Args.substr(0, C2), E.P))
        return Fail("fault entry '" + Item + "' has a malformed probability '" +
                    Args.substr(0, C2) + "'");
      E.Seed = 1;
      if (C2 != std::string::npos &&
          !parseU64(Args.substr(C2 + 1), E.Seed))
        return Fail("fault entry '" + Item + "' has a malformed seed '" +
                    Args.substr(C2 + 1) + "'");
      if (!(E.P > 0) || E.P > 1)
        return Fail("fault entry '" + Item + "' needs probability in (0,1]");
    } else {
      return Fail("unknown fault action '" + Kind + "'");
    }
    Entries.push_back(E);
  }

  // Replace the whole schedule only once the spec parsed cleanly.
  reset();
  for (const Entry &E : Entries)
    switch (E.M) {
    case Mode::At:
      armAt(E.S, E.N);
      break;
    case Mode::Every:
      armEvery(E.S, E.N);
      break;
    case Mode::Rand:
      armRandom(E.S, E.P, E.Seed);
      break;
    case Mode::Kill:
      armKill(E.S, E.N);
      break;
    case Mode::Off:
      break;
    }
  return true;
}

bool majic::faults::loadEnv() {
  const char *Spec = std::getenv("MAJIC_FAULTS");
  if (!Spec || !*Spec)
    return false;
  std::string Error;
  if (!loadSpec(Spec, &Error)) {
    // A typo'd schedule must neither run half-armed nor be mistaken for a
    // working one: complain on stderr and disarm everything.
    std::fprintf(stderr,
                 "majic: ignoring malformed MAJIC_FAULTS '%s': %s "
                 "(fault injection disarmed)\n",
                 Spec, Error.c_str());
    reset();
    return false;
  }
  return true;
}

SiteStats majic::faults::stats(Site S) {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  const SiteState &St = stateLocked(Reg, S);
  return {St.Hits, St.Fired};
}

uint64_t majic::faults::totalFired() {
  Registry &Reg = registry();
  std::lock_guard<std::mutex> L(Reg.Mutex);
  uint64_t N = 0;
  for (const SiteState &St : Reg.Sites)
    N += St.Fired;
  return N;
}

bool majic::faults::shouldFire(Site S) {
  Registry &Reg = registry();
  if (!Reg.AnyArmed.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> L(Reg.Mutex);
  SiteState &St = stateLocked(Reg, S);
  // Kill schedules belong to killPoint(): counting their hits here would
  // skew the kill ordinal, and firing them here would throw from paths
  // that must not throw.
  if (St.M == Mode::Off || St.M == Mode::Kill)
    return false;
  ++St.Hits;
  bool Fire = false;
  switch (St.M) {
  case Mode::Off:
  case Mode::Kill:
    break;
  case Mode::At:
    Fire = St.Hits == St.N;
    break;
  case Mode::Every:
    Fire = St.Hits % St.N == 0;
    break;
  case Mode::Rand:
    Fire = St.R.nextDouble() < St.P;
    break;
  }
  if (Fire)
    ++St.Fired;
  return Fire;
}

void majic::faults::killPoint(Site S) {
  Registry &Reg = registry();
  if (!Reg.AnyArmed.load(std::memory_order_relaxed))
    return;
  bool Kill = false;
  {
    std::lock_guard<std::mutex> L(Reg.Mutex);
    SiteState &St = stateLocked(Reg, S);
    if (St.M != Mode::Kill)
      return;
    ++St.Hits;
    Kill = St.Hits == St.N;
    if (Kill)
      ++St.Fired;
  }
  if (Kill) {
    // Die the way a power cut does: no unwinding, no flushing, no atexit.
    ::kill(::getpid(), SIGKILL);
    ::pause(); // unreachable; SIGKILL cannot be blocked
  }
}
