//===- support/Parallel.h - Data-parallel compute primitive ----*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// parallelFor: the runtime's data-parallel primitive, backing the dense
/// kernel layer (runtime/Blas.h) and the element-wise/reduction paths in
/// runtime/Ops.cpp and runtime/Builtins.cpp.
///
/// Work runs on a process-wide pool of ThreadPool workers at *normal*
/// priority - unlike the engine's idle-priority speculation pool, compute
/// workers act on behalf of the thread the user is waiting on. The caller
/// participates: a parallelFor over T threads enqueues T-1 chunks and runs
/// the first chunk itself, so a 1-thread configuration never touches a
/// worker at all.
///
/// Determinism contract: parallelFor splits the index range into contiguous
/// chunks whose boundaries depend on the configured thread count. A body is
/// deterministic across thread counts iff the value it writes for index I
/// depends only on I (true for every kernel in the runtime: disjoint output
/// ranges, no cross-chunk accumulation). Code that *reduces* must instead
/// partition by a fixed chunk size and combine partials in chunk order -
/// see runtime/Builtins.cpp - so the result is bit-identical whether the
/// chunks ran on 1 thread or 16.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_PARALLEL_H
#define MAJIC_SUPPORT_PARALLEL_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace majic {
namespace par {

/// The configured compute-thread count (>= 1). Resolution order: the last
/// setComputeThreads() value; the MAJIC_COMPUTE_THREADS environment
/// variable; std::thread::hardware_concurrency().
unsigned computeThreads();

/// Reconfigures the compute pool to \p N threads; 0 restores the automatic
/// default (environment variable, then hardware concurrency). Safe to call
/// between parallel regions; must not be called from inside one. The pool
/// is (re)created lazily on the next parallelFor that needs it.
void setComputeThreads(unsigned N);

/// Floor applied to element-sized grains: a parallelFor with Grain > 1
/// behaves as if Grain were at least this large, so loops over small
/// vectors (fused elementwise chains included) run inline on the calling
/// thread instead of paying pool dispatch latency for microseconds of
/// work. Grain == 1 is exempt by convention - it designates *coarse task
/// units* (BLAS panels, fixed-size reduction chunks) where each index
/// already represents a large block of work.
constexpr size_t kMinElementGrain = 8192;

/// Runs Body(Begin, End) over disjoint contiguous subranges of [0, N),
/// using at most computeThreads() threads, with at least \p Grain indices
/// per chunk (subject to kMinElementGrain when Grain > 1). Runs serially
/// (a single Body(0, N) call) when N <= Grain, when one thread is
/// configured, or when already inside a parallelFor (no nested
/// parallelism). Exceptions thrown by Body are rethrown on the calling
/// thread after all chunks finish.
void parallelFor(size_t N, size_t Grain,
                 const std::function<void(size_t, size_t)> &Body);

/// True while the calling thread is executing inside a parallelFor body.
bool inParallelRegion();

/// Point-in-time sample of the process-wide compute pool's observability
/// counters (all zero before the first multi-threaded parallelFor spins
/// the pool up). The engine mirrors this into its metrics registry.
struct ComputePoolSample {
  unsigned Threads = 0; ///< configured compute threads (pool holds T-1)
  uint64_t TasksEnqueued = 0;
  uint64_t TasksFinished = 0;
  int64_t QueueDepth = 0;
};
ComputePoolSample sampleComputePool();

} // namespace par
} // namespace majic

#endif // MAJIC_SUPPORT_PARALLEL_H
