//===- support/AtomicFile.h - Crash-safe file writes -----------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-consistent file writes for the persistent code repository. A save
/// writes into a uniquely named temp file next to the target, fsyncs it,
/// and renames it over the target (POSIX rename is atomic within a file
/// system), then fsyncs the directory so the rename itself survives a
/// power cut. A crash at any point leaves either the old file, the new
/// file, or a stray temp file - never a torn target. Temp files left over
/// from a crash are swept by pattern on the next startup.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_ATOMICFILE_H
#define MAJIC_SUPPORT_ATOMICFILE_H

#include <string>

namespace majic {
namespace atomicfile {

/// The marker every temp file name contains; sweepTempFiles matches on it.
extern const char *const kTempMarker;

/// Atomically replaces \p Path with \p Bytes (temp file + fsync + rename +
/// directory fsync). Returns false and fills \p Error on failure; a failed
/// write never leaves a partial target or a temp file behind.
bool writeFileAtomic(const std::string &Path, const std::string &Bytes,
                     std::string *Error = nullptr);

/// Reads all of \p Path into \p Out (binary). Returns false on I/O error.
bool readFile(const std::string &Path, std::string &Out);

/// Deletes every regular file in \p Dir whose name contains both
/// \p Suffix and the temp marker (e.g. leftovers of crashed saves of
/// "*.mjo" files). Returns the number of files removed.
unsigned sweepTempFiles(const std::string &Dir, const std::string &Suffix);

} // namespace atomicfile
} // namespace majic

#endif // MAJIC_SUPPORT_ATOMICFILE_H
